// Package strategy is the public façade over the simulator's data
// management strategies: the access tree strategy of the paper (§2, the
// contribution under evaluation) in its six decomposition-tree variants,
// the fully random embedding of the theoretical analysis, and the fixed
// home baseline. A name-keyed registry makes every variant selectable by
// string — from a config file or a CLI flag — without importing strategy
// packages; the registry entry also carries the decomposition tree the
// paper evaluated the variant with, which diva.New uses as the default.
//
// Applications embedding the simulator can add their own strategies:
// implement the Strategy protocol interface, wrap it in a Factory, and
// Register it under a fresh name.
package strategy

import (
	"fmt"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/registry"
)

// The strategy protocol types, re-exported by alias so embedders never
// import diva/internal/... directly.
type (
	// Strategy is the protocol a data management strategy implements: it
	// decides how many copies of each global variable exist, where they
	// are placed, and how consistency is maintained.
	Strategy = core.Strategy
	// Factory constructs a strategy bound to a machine; it is called once
	// during machine construction, after the network and the
	// decomposition tree exist.
	Factory = core.Factory
	// Tree selects a hierarchical decomposition-tree variant (2-ary,
	// 4-ary, ..., 4-16-ary); it doubles as the access tree shape.
	Tree = decomp.Spec
	// AccessTreeOptions tunes the access tree strategy (random embedding,
	// remap threshold) for variants outside the registry, e.g. ablations.
	AccessTreeOptions = accesstree.Options
)

// AccessTree returns a factory for the access tree strategy with explicit
// options. The registry covers the paper's named variants; this constructor
// serves ablations and custom embeddings.
func AccessTree(o AccessTreeOptions) Factory { return accesstree.FactoryOpts(o) }

// FixedHome returns a factory for the fixed home baseline: every variable
// has one immobile master copy at a random home processor.
func FixedHome() Factory { return fixedhome.Factory() }

// Spec is one registry entry: a named, documented strategy together with
// the decomposition tree it is evaluated with.
type Spec struct {
	// Name is the registry key ("at4", "fixedhome", ...), as used by
	// -strategy flags and configuration files.
	Name string
	// Summary is a one-line description for help texts.
	Summary string
	// Tree is the decomposition-tree variant the strategy runs on by
	// default (the one the paper pairs it with); diva.New applies it when
	// no explicit tree option is given.
	Tree Tree
	// Factory constructs the strategy.
	Factory Factory
}

var reg = registry.New[Spec]("strategy")

// Register adds a strategy to the registry. Registration happens at
// program initialization (from an init function, like image format or SQL
// driver registration), so programming errors — an empty name, a nil
// factory, a duplicate — panic rather than returning an error.
func Register(s Spec) {
	if s.Name == "" || s.Factory == nil {
		panic("strategy: Register needs a name and a factory")
	}
	reg.Register(s.Name, s)
}

// Get returns the registered strategy spec for name. The error of an
// unknown name lists the registered alternatives.
func Get(name string) (Spec, error) { return reg.Get(name) }

// MustGet is Get for names known to be registered; it panics on error.
func MustGet(name string) Spec {
	s, err := Get(name)
	if err != nil {
		panic(err)
	}
	return s
}

// Names returns the registered strategy names, sorted.
func Names() []string { return reg.Names() }

func init() {
	Register(Spec{
		Name:    "fixedhome",
		Summary: "fixed home baseline: one immobile master copy per variable",
		Tree:    decomp.Ary4,
		Factory: fixedhome.Factory(),
	})
	for _, v := range []struct {
		name string
		tree decomp.Spec
	}{
		{"at2", decomp.Ary2},
		{"at4", decomp.Ary4},
		{"at16", decomp.Ary16},
		{"at2k4", decomp.Ary2K4},
		{"at4k8", decomp.Ary4K8},
		{"at4k16", decomp.Ary4K16},
	} {
		Register(Spec{
			Name:    v.name,
			Summary: fmt.Sprintf("%s access tree with the paper's modular embedding", v.tree.Name()),
			Tree:    v.tree,
			Factory: accesstree.Factory(),
		})
	}
	Register(Spec{
		Name:    "atrandom",
		Summary: "4-ary access tree with the fully random embedding of the theoretical analysis",
		Tree:    decomp.Ary4,
		Factory: accesstree.FactoryOpts(accesstree.Options{RandomEmbedding: true}),
	})
}
