package strategy_test

import (
	"reflect"
	"strings"
	"testing"

	"diva/strategy"
)

// TestBuiltinRegistry: the paper's eight strategy variants must be
// registered under their flag names with the trees the paper pairs them
// with.
func TestBuiltinRegistry(t *testing.T) {
	want := []string{"at16", "at2", "at2k4", "at4", "at4k16", "at4k8", "atrandom", "fixedhome"}
	if got := strategy.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	trees := map[string]string{
		"fixedhome": "4-ary", "at2": "2-ary", "at4": "4-ary", "at16": "16-ary",
		"at2k4": "2-4-ary", "at4k8": "4-8-ary", "at4k16": "4-16-ary", "atrandom": "4-ary",
	}
	for name, tree := range trees {
		s, err := strategy.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("Get(%q).Name = %q", name, s.Name)
		}
		if got := s.Tree.Name(); got != tree {
			t.Errorf("Get(%q).Tree = %s, want %s", name, got, tree)
		}
		if s.Factory == nil {
			t.Errorf("Get(%q).Factory is nil", name)
		}
		if s.Summary == "" {
			t.Errorf("Get(%q).Summary is empty", name)
		}
	}
}

// TestGetUnknown: the error of an unknown name lists the alternatives.
func TestGetUnknown(t *testing.T) {
	_, err := strategy.Get("nope")
	if err == nil {
		t.Fatal("Get(\"nope\") succeeded")
	}
	if !strings.Contains(err.Error(), `"nope"`) || !strings.Contains(err.Error(), "at4") {
		t.Errorf("error %q should name the unknown strategy and the alternatives", err)
	}
}

// TestMustGetPanics: MustGet is the panicking variant for registered
// names.
func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet(\"nope\") did not panic")
		}
	}()
	strategy.MustGet("nope")
}

// TestRegisterValidation: registration mistakes are programming errors and
// panic (like image format or SQL driver registration).
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("empty name", func() { strategy.Register(strategy.Spec{Factory: strategy.FixedHome()}) })
	mustPanic("nil factory", func() { strategy.Register(strategy.Spec{Name: "x"}) })
	mustPanic("duplicate", func() {
		strategy.Register(strategy.Spec{Name: "at4", Factory: strategy.FixedHome()})
	})
}
