package diva

import (
	"fmt"

	"diva/fault"
	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/metrics"
	"diva/internal/sim"
	"diva/strategy"
	"diva/topology"
)

// The user-facing simulator types, re-exported by alias so embedding
// applications never import diva/internal/... directly. Aliases (not
// wrappers) keep the public and internal surfaces type-identical, so a
// machine built through New is bit-for-bit the machine the golden
// determinism tests pin.
type (
	// Machine is a simulated parallel machine running the DIVA library.
	Machine = core.Machine
	// Proc is a simulated application process pinned to one processor; the
	// DIVA operations (Alloc, Read, Write, Lock, Barrier, Compute) hang
	// off it.
	Proc = core.Proc
	// VarID names a global variable.
	VarID = core.VarID
	// Strategy is the data management strategy protocol (see
	// diva/strategy).
	Strategy = core.Strategy
	// Factory constructs a strategy bound to a machine.
	Factory = core.Factory
	// Tree selects a hierarchical decomposition-tree variant; the
	// paper's variants are Ary2 ... Ary4K16.
	Tree = decomp.Spec
	// Topology abstracts the interconnect (see diva/topology).
	Topology = mesh.Topology
	// NetParams holds the timing characteristics of the simulated
	// machine; the zero value means GCelParams.
	NetParams = mesh.Params
	// Congestion summarizes link traffic: the per-link maximum and the
	// totals, in messages and bytes.
	Congestion = mesh.Congestion
	// Collector accumulates total and per-phase metrics of a run.
	Collector = metrics.Collector
	// Metrics is one measured interval: simulated time, congestion and
	// local computation time.
	Metrics = metrics.Result
	// Time is a simulated timestamp or duration in microseconds.
	Time = sim.Time
)

// The decomposition-tree variants evaluated in the paper.
var (
	Ary2    = decomp.Ary2
	Ary4    = decomp.Ary4
	Ary16   = decomp.Ary16
	Ary2K4  = decomp.Ary2K4
	Ary4K8  = decomp.Ary4K8
	Ary4K16 = decomp.Ary4K16
)

// GCelParams returns the network timing calibrated against the paper's
// Parsytec GCel measurements (the default of New).
func GCelParams() NetParams { return mesh.GCelParams() }

// options accumulates the functional options of New.
type options struct {
	cfg     core.Config
	treeSet bool
	defTree decomp.Spec
	err     error
}

// Option configures a machine built by New.
type Option func(*options)

// fail records the first option error; New reports it.
func (o *options) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// WithMesh selects the paper's platform: a rows×cols 2D mesh.
func WithMesh(rows, cols int) Option {
	return func(o *options) {
		o.cfg.Rows, o.cfg.Cols = rows, cols
		o.cfg.Topology = nil
	}
}

// WithTopology selects an explicit interconnect (one of diva/topology's
// constructors, or your own Topology implementation).
func WithTopology(t Topology) Option {
	return func(o *options) {
		if t == nil {
			o.fail(fmt.Errorf("diva: WithTopology(nil)"))
			return
		}
		o.cfg.Topology = t
	}
}

// WithTopologyName selects the interconnect by registry name (see
// diva/topology) for the canonical rows×cols machine size.
func WithTopologyName(name string, rows, cols int) Option {
	return func(o *options) {
		t, err := topology.Build(name, rows, cols)
		if err != nil {
			o.fail(err)
			return
		}
		o.cfg.Topology = t
	}
}

// WithStrategy selects the data management strategy by factory. A nil
// factory builds a machine without shared variables (hand-optimized
// message passing programs only). It replaces an earlier strategy option
// entirely, including the default tree a WithStrategyName recorded.
func WithStrategy(f Factory) Option {
	return func(o *options) {
		o.cfg.Strategy = f
		o.defTree = decomp.Spec{}
	}
}

// WithStrategyName selects the data management strategy by registry name
// (see diva/strategy) and applies the registered variant's decomposition
// tree, unless an explicit WithTree overrides it.
func WithStrategyName(name string) Option {
	return func(o *options) {
		s, err := strategy.Get(name)
		if err != nil {
			o.fail(err)
			return
		}
		o.cfg.Strategy = s.Factory
		o.defTree = s.Tree
	}
}

// WithSeed sets the master random seed; identical seeds give identical
// event orders and metrics.
func WithSeed(seed uint64) Option {
	return func(o *options) { o.cfg.Seed = seed }
}

// WithTree sets the decomposition-tree variant used for access trees and
// the barrier, overriding a strategy's registered default.
func WithTree(t Tree) Option {
	return func(o *options) {
		o.cfg.Tree = t
		o.treeSet = true
	}
}

// WithCacheCapacity bounds the memory for variable copies per node, in
// bytes. Zero means unbounded (the paper's default setting).
func WithCacheCapacity(bytes int) Option {
	return func(o *options) { o.cfg.CacheCapacity = bytes }
}

// WithNetParams overrides the network timing (default: GCelParams).
func WithNetParams(p NetParams) Option {
	return func(o *options) { o.cfg.Net = p }
}

// WithConcurrent marks a machine that runs concurrently with other
// machines in the same process (parallel experiment sweeps): it disables
// the kernel's process-wide GOMAXPROCS pin. Simulated results are
// unaffected.
func WithConcurrent(on bool) Option {
	return func(o *options) { o.cfg.Concurrent = on }
}

// WithShards partitions the processors across n event-kernel shards for
// conservative-parallel execution: simulated results are bit-identical to
// the sequential kernel, wall-clock improves on multicore hosts. 0 (the
// default) reads the DIVA_SHARDS environment variable, defaulting to 1.
// The count is clamped to the processor count; machines with a data
// management strategy run sequentially regardless (DSM request/response
// traffic has no lookahead window to parallelize across).
func WithShards(n int) Option {
	return func(o *options) { o.cfg.Shards = n }
}

// WithFaults installs an explicit fault schedule (see diva/fault): timed
// link outages and node churn, applied deterministically in the network's
// global routing order. Repeated options accumulate (and compose with
// WithFaultGen). An invalid schedule — unknown endpoints, a down event
// without a matching up, a mid-state duplicate — fails New.
func WithFaults(s fault.Schedule) Option {
	return func(o *options) { o.cfg.Faults = append(o.cfg.Faults, s...) }
}

// The fault-tolerance modes of WithRecovery.
const (
	// RecoveryOracle is the default mode: the network holds in-flight
	// messages across outages and strategies re-route instantaneously —
	// failure knowledge is free, as if an oracle announced every fault.
	RecoveryOracle = core.RecoveryOracle
	// RecoveryReactive makes fault tolerance earn its keep: messages to a
	// downed endpoint are dropped, every payload message is acknowledged,
	// senders detect failure by retransmission timeout with deterministic
	// exponential backoff, and after max retries the strategy recovers
	// (fixedhome fails the home over, accesstree re-issues over the
	// re-embedded forest). Deterministic: same seed, same run.
	RecoveryReactive = core.RecoveryReactive
)

// WithRecovery selects the fault-tolerance mode, RecoveryOracle (the
// default) or RecoveryReactive. The modes simulate different machines:
// reactive runs carry ack and retransmission traffic, so their metrics
// and fingerprints differ from oracle runs even fault-free.
func WithRecovery(mode string) Option {
	return func(o *options) { o.cfg.Recovery = mode }
}

// WithAckTransport tunes the reactive transport's retransmission policy:
// the initial ack timeout in simulated microseconds (default 2000), the
// retransmission attempts before the strategy is told to recover
// (default 5), and the exponential backoff multiplier between attempts
// (default 2, at least 1). Zero fields keep their defaults. It requires
// WithRecovery(RecoveryReactive); New rejects the combination with the
// oracle mode, where no transport exists to tune.
func WithAckTransport(ackTimeoutUS float64, maxRetries int, backoff float64) Option {
	return func(o *options) {
		o.cfg.AckTimeoutUS = ackTimeoutUS
		o.cfg.MaxRetries = maxRetries
		o.cfg.Backoff = backoff
	}
}

// WithFaultGen draws a randomized fault schedule (see fault.Gen) from the
// machine RNG at construction: the same seed always yields the same
// faults, across re-runs and forks. Composes with WithFaults; the drawn
// schedule can be read back with m.Net.FaultSchedule() and re-declared
// explicitly to reproduce the run elsewhere.
func WithFaultGen(g fault.Gen) Option {
	return func(o *options) { o.cfg.FaultGen = &g }
}

// New builds a simulated DIVA machine from functional options and
// validates the configuration: errors — an unknown registry name,
// non-positive mesh dimensions, an unsupported decomposition tree, a
// negative cache capacity — are returned, never panicked.
//
// A machine needs an interconnect (WithMesh, WithTopology or
// WithTopologyName) and, for programs using global variables, a strategy
// (WithStrategy or WithStrategyName). Everything else has the paper's
// defaults: GCel network timing, the 4-ary decomposition tree, unbounded
// caches, seed 0.
func New(opts ...Option) (*Machine, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if o.err != nil {
		return nil, o.err
	}
	if !o.treeSet && o.defTree != (decomp.Spec{}) {
		o.cfg.Tree = o.defTree
	}
	return core.NewMachine(o.cfg)
}

// MustNew is New for configurations known to be valid; it panics on
// error. Tests and fixed example setups use it.
func MustNew(opts ...Option) *Machine {
	m, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return m
}

// NewCollector attaches a total/per-phase metrics collector to m's
// network. Workloads with phases (Barnes-Hut) record into it; Total and
// Phase report simulated time, congestion and local computation per
// measured interval.
func NewCollector(m *Machine) *Collector { return metrics.New(m.Net) }

// LinkHeatmap renders the per-link message-load heatmap of a mesh machine
// (digits are deciles of the busiest link's load). ok is false when the
// machine's topology is not a 2D mesh — the heatmap is mesh-specific.
func LinkHeatmap(m *Machine) (heatmap string, ok bool) {
	mm, isMesh := m.MeshTopo()
	if !isMesh {
		return "", false
	}
	return metrics.HeatmapMsgs(mm, m.Net.Loads(), nil), true
}

// BusiestLinks describes the k busiest links of a mesh machine, busiest
// first. ok is false when the machine's topology is not a 2D mesh.
func BusiestLinks(m *Machine, k int) (links []string, ok bool) {
	mm, isMesh := m.MeshTopo()
	if !isMesh {
		return nil, false
	}
	return metrics.TopLinks(mm, m.Net.Loads(), k), true
}

// TotalEvictions sums the copy evictions over all node caches (nonzero
// only on machines with a bounded WithCacheCapacity).
func TotalEvictions(m *Machine) uint64 {
	var ev uint64
	for n := 0; n < m.P(); n++ {
		ev += m.Cache(n).Evictions()
	}
	return ev
}
