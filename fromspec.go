package diva

import (
	"fmt"

	"diva/fault"
	"diva/spec"
	"diva/strategy"
	"diva/topology"
)

// The serializable run description, re-exported by alias: diva/spec is
// pure data plus validation, this file turns a Spec into a machine and a
// workload. The divasim command line, the HTTP service and embedders all
// funnel through FromSpec, so one JSON document describes the same run
// everywhere.
type (
	// Spec describes one simulation run (see diva/spec).
	Spec = spec.Spec
	// WorkloadSpec selects the application and its knobs inside a Spec.
	WorkloadSpec = spec.Workload
	// NetSpec is the serializable form of NetParams inside a Spec.
	NetSpec = spec.Net
	// FaultSpec is the serializable fault-injection section of a Spec.
	FaultSpec = spec.Fault
)

// faultKindByName maps spec fault kind names to the fault.Kind constants;
// a guard test pins it against spec.FaultKinds().
var faultKindByName = map[string]fault.Kind{
	"link-down": fault.LinkDown,
	"link-up":   fault.LinkUp,
	"node-down": fault.NodeDown,
	"node-up":   fault.NodeUp,
}

// treeByName maps spec tree names to the decomposition-tree variants; a
// guard test pins it against spec.TreeNames().
var treeByName = map[string]Tree{
	Ary2.Name():    Ary2,
	Ary4.Name():    Ary4,
	Ary16.Name():   Ary16,
	Ary2K4.Name():  Ary2K4,
	Ary4K8.Name():  Ary4K8,
	Ary4K16.Name(): Ary4K16,
}

// MachineFromSpec validates the machine half of s and builds the machine.
// extra options (WithConcurrent for parallel sweeps, typically) are
// applied after the spec-derived ones. The workload half is ignored, for
// embedders that drive their own programs.
func MachineFromSpec(s Spec, extra ...Option) (*Machine, error) {
	if err := s.ValidateMachine(); err != nil {
		return nil, err
	}
	n := s.Normalized()
	shards := n.Shards
	if shards == 0 {
		// A serialized run description must not depend on the environment:
		// spec shards 0 means sequential, never $DIVA_SHARDS.
		shards = 1
	}
	opts := []Option{
		WithTopologyName(n.Topology, n.Rows, n.Cols),
		WithSeed(n.Seed),
		WithCacheCapacity(n.CacheCapacity),
		WithShards(shards),
	}
	if n.Strategy == "" {
		opts = append(opts, WithTree(Ary2))
	} else {
		opts = append(opts, WithStrategyName(n.Strategy))
	}
	if n.Tree != "" {
		opts = append(opts, WithTree(treeByName[n.Tree]))
	}
	if p := n.Net; p != nil {
		opts = append(opts, WithNetParams(NetParams{
			BytesPerUS:      p.BytesPerUS,
			HopLatencyUS:    p.HopLatencyUS,
			StartupSendUS:   p.StartupSendUS,
			StartupRecvUS:   p.StartupRecvUS,
			LocalDeliveryUS: p.LocalDeliveryUS,
			NoBackpressure:  p.NoBackpressure,
		}))
	}
	if n.Recovery != "" {
		opts = append(opts, WithRecovery(n.Recovery))
		if n.Recovery == spec.RecoveryReactive {
			opts = append(opts, WithAckTransport(n.AckTimeoutUS, n.MaxRetries, n.Backoff))
		}
	}
	if f := n.Fault; f != nil {
		if len(f.Events) > 0 {
			sched := make(fault.Schedule, len(f.Events))
			for i, ev := range f.Events {
				sched[i] = fault.Event{AtUS: ev.AtUS, Kind: faultKindByName[ev.Kind], A: ev.A, B: ev.B}
			}
			opts = append(opts, WithFaults(sched))
		}
		if f.LinkFailures > 0 || f.NodeChurn > 0 {
			opts = append(opts, WithFaultGen(fault.Gen{
				LinkFailures: f.LinkFailures,
				NodeChurn:    f.NodeChurn,
				MeanDownUS:   f.MeanDownUS,
				HorizonUS:    f.HorizonUS,
			}))
		}
	}
	return New(append(opts, extra...)...)
}

// WorkloadFromSpec validates s and builds its workload with the
// documented default cost knobs (matmul 3.45 µs per multiply-add, bitonic
// 1.0 µs per comparison, stencil 0.5 µs per halo value).
func WorkloadFromSpec(s Spec) (Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := s.Normalized().Workload
	switch w.Name {
	case "matmul", "matmul-handopt":
		cfg := MatmulConfig{BlockInts: w.Block, WithCompute: w.Compute, OpUS: 3.45, Check: w.Check, Seed: w.Seed}
		if w.Name == "matmul-handopt" {
			return MatmulHandOpt(cfg), nil
		}
		return Matmul(cfg), nil
	case "bitonic", "bitonic-handopt":
		cfg := BitonicConfig{KeysPerProc: w.Keys, WithCompute: w.Compute, CompareUS: 1.0, Check: w.Check, Seed: w.Seed}
		if w.Name == "bitonic-handopt" {
			return BitonicHandOpt(cfg), nil
		}
		return Bitonic(cfg), nil
	case "barneshut":
		return BarnesHut(BarnesHutConfig{
			N: w.Bodies, Steps: w.Steps, MeasureFrom: w.MeasureFrom,
			Seed: w.Seed, WithCompute: true,
		}), nil
	case "stencil":
		return Stencil(StencilConfig{
			Iters: w.Iters, HaloInts: w.Halo, WithCompute: w.Compute,
			OpUS: 0.5, Check: w.Check, Seed: w.Seed,
		}), nil
	}
	return nil, fmt.Errorf("diva: unknown workload %q", w.Name) // unreachable after Validate
}

// FromSpec validates s and builds both the machine and the workload:
// the single entry point behind divasim, the HTTP service and embedders.
// extra options are applied to the machine after the spec-derived ones.
func FromSpec(s Spec, extra ...Option) (*Machine, Workload, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	w, err := WorkloadFromSpec(s)
	if err != nil {
		return nil, nil, err
	}
	m, err := MachineFromSpec(s, extra...)
	if err != nil {
		return nil, nil, err
	}
	return m, w, nil
}

// RegistryEntry describes one registered strategy, topology or workload
// for listings (divasim -list, the service's /v1/registries).
type RegistryEntry = spec.Registered

// Strategies lists the registered data management strategies.
func Strategies() []RegistryEntry {
	names := strategy.Names()
	out := make([]RegistryEntry, len(names))
	for i, n := range names {
		s, _ := strategy.Get(n)
		out[i] = RegistryEntry{Name: n, Summary: s.Summary}
	}
	return out
}

// Topologies lists the registered interconnect topologies.
func Topologies() []RegistryEntry {
	names := topology.Names()
	out := make([]RegistryEntry, len(names))
	for i, n := range names {
		s, _ := topology.Get(n)
		out[i] = RegistryEntry{Name: n, Summary: s.Summary}
	}
	return out
}

// Workloads lists the runnable workloads of the spec layer.
func Workloads() []RegistryEntry { return spec.Workloads() }
