// Package xrand provides a small, deterministic, allocation-free random
// number generator used throughout the simulator.
//
// The simulator must be fully reproducible: every randomized choice (access
// tree root placement, fixed-home selection, workload generation) is drawn
// from an explicitly seeded xoshiro256** generator. No global state is used,
// so independent components can own independent streams.
package xrand

// RNG is a xoshiro256** pseudo random number generator. The zero value is
// not usable; construct with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 is used to seed the xoshiro state from a single word, as
// recommended by the xoshiro authors.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// independent-looking streams; the same seed always gives the same stream.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from r. The derived stream is a
// pure function of r's current state, so splitting is itself deterministic.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// State is the full internal state of an RNG, exposed so a machine snapshot
// can capture a stream mid-sequence and a fork can resume it exactly.
type State [4]uint64

// State returns the generator's current internal state.
func (r *RNG) State() State { return r.s }

// SetState overwrites the generator's internal state. Restoring a state
// obtained from State resumes the stream at exactly the same point.
func (r *RNG) SetState(s State) { r.s = s }

// FromState constructs a generator resuming from a captured state.
func FromState(s State) *RNG { return &RNG{s: s} }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded values.
	un := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, un)
		if lo >= un || lo >= (-un)%un {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * sqrt(-2*ln(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// sqrt and ln are tiny wrappers so the package depends only on math at one
// point; kept here to make the dependency explicit.
func sqrt(x float64) float64 { return mathSqrt(x) }
func ln(x float64) float64   { return mathLog(x) }
