package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for n := 1; n < 40; n++ {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from expectation %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(31)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean %v too far from 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance %v too far from 1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n int) bool {
		if n < 0 {
			n = -n
		}
		n %= 200
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(123)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Fatal("successive splits produced identical streams")
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(6)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 36 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}
