package xrand

import "math"

func mathSqrt(x float64) float64 { return math.Sqrt(x) }
func mathLog(x float64) float64  { return math.Log(x) }
