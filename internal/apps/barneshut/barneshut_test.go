package barneshut

import (
	"math"
	"testing"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
)

func newMachine(rows, cols int, f core.Factory, spec decomp.Spec) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols, Seed: 4242, Tree: spec, Strategy: f,
	})
}

func TestPlummerProperties(t *testing.T) {
	bodies := Plummer(500, 7)
	if len(bodies) != 500 {
		t.Fatalf("got %d bodies", len(bodies))
	}
	var mass float64
	var cm, cv Vec3
	for _, b := range bodies {
		mass += b.Mass
		cm = cm.Add(b.Pos.Scale(b.Mass))
		cv = cv.Add(b.Vel.Scale(b.Mass))
		if b.Cost != 1 {
			t.Fatal("initial body cost must be 1")
		}
	}
	if math.Abs(mass-1) > 1e-9 {
		t.Fatalf("total mass %v, want 1", mass)
	}
	if cm.Norm() > 1e-9 || cv.Norm() > 1e-9 {
		t.Fatalf("not in center-of-mass frame: cm=%v cv=%v", cm, cv)
	}
	// Determinism.
	again := Plummer(500, 7)
	for i := range bodies {
		if bodies[i] != again[i] {
			t.Fatal("Plummer not deterministic")
		}
	}
	// Plummer: the cumulative mass profile M(r) = r³/(1+r²)^(3/2) puts
	// about 57.6% of the bodies within r = 1.5 and ~35% within r = 1.
	inside := 0
	for _, b := range bodies {
		if b.Pos.Norm() < 1.5 {
			inside++
		}
	}
	if inside < 240 || inside > 340 {
		t.Fatalf("%d/500 bodies within r=1.5, want ≈288", inside)
	}
}

func TestOctantSubCenterConsistent(t *testing.T) {
	center := Vec3{1, -2, 3}
	half := 4.0
	for idx := 0; idx < 8; idx++ {
		sc := subCenter(center, half, idx)
		// A point at the sub-center must map back to the same octant.
		got, gotCenter := octant(center, half, sc)
		if got != idx {
			t.Fatalf("octant(subCenter(%d)) = %d", idx, got)
		}
		if gotCenter != sc {
			t.Fatalf("octant returned center %v, want %v", gotCenter, sc)
		}
	}
}

func TestRefEncoding(t *testing.T) {
	for _, id := range []core.VarID{0, 1, 5, 1 << 20} {
		cr := MkCellRef(id)
		br := MkBodyRef(id)
		if cr.Empty() || br.Empty() {
			t.Fatal("non-empty ref reported empty")
		}
		if cr.IsBody() || !br.IsBody() {
			t.Fatal("ref kind confused")
		}
		if cr.VarID() != id || br.VarID() != id {
			t.Fatalf("ref round trip failed for %d", id)
		}
	}
	var zero Ref
	if !zero.Empty() {
		t.Fatal("zero ref not empty")
	}
}

// runSmall is a helper for the physics tests.
func runSmall(t *testing.T, rows, cols, n, steps int, theta, dt float64, f core.Factory) (*core.Machine, Result) {
	t.Helper()
	m := newMachine(rows, cols, f, decomp.Ary4)
	res, err := Run(m, Config{
		N: n, Steps: steps, MeasureFrom: steps, // no measurement needed
		Theta: theta, Dt: dt, Seed: 11,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, res
}

// TestTreeStructure: after a run, the kept final tree contains every body
// exactly once, inside the cube of the cell that holds it, and cell
// geometry halves at each level.
func TestTreeStructure(t *testing.T) {
	m, res := runSmall(t, 2, 2, 64, 1, 1.0, 0, accesstree.Factory())
	seen := make(map[core.VarID]int)
	WalkTree(m, res.FinalRoot, func(ref Ref, depth int, cell *Cell) {
		if ref.IsBody() {
			seen[ref.VarID()]++
		}
	})
	if len(seen) != 64 {
		t.Fatalf("tree holds %d distinct bodies, want 64", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("body %d appears %d times", id, n)
		}
	}
	// Geometry: every body position within its containing cell cube.
	var checkCell func(c Cell)
	checkCell = func(c Cell) {
		for _, ch := range c.Child {
			if ch.Empty() {
				continue
			}
			if ch.IsBody() {
				b := *m.Var(ch.VarID()).Data.(*Body)
				d := b.Pos.Sub(c.Center)
				if math.Abs(d.X) > c.Half*1.0001 || math.Abs(d.Y) > c.Half*1.0001 || math.Abs(d.Z) > c.Half*1.0001 {
					t.Fatalf("body outside its cell: |d|=%v half=%v", d, c.Half)
				}
				continue
			}
			sub := *m.Var(ch.VarID()).Data.(*Cell)
			if math.Abs(sub.Half-c.Half/2) > 1e-12 {
				t.Fatalf("child half %v, parent half %v", sub.Half, c.Half)
			}
			if sub.Level != c.Level+1 {
				t.Fatalf("child level %d under parent level %d", sub.Level, c.Level)
			}
			checkCell(sub)
		}
	}
	checkCell(*m.Var(res.FinalRoot).Data.(*Cell))
}

// TestCOMCorrect: with Dt=0 the bodies do not move, so the final tree's
// root COM/mass must match the exact values.
func TestCOMCorrect(t *testing.T) {
	m, res := runSmall(t, 2, 2, 100, 1, 1.0, 0, accesstree.Factory())
	root := *m.Var(res.FinalRoot).Data.(*Cell)
	bodies := Plummer(100, 11)
	var mass float64
	var com Vec3
	for _, b := range bodies {
		mass += b.Mass
		com = com.Add(b.Pos.Scale(b.Mass))
	}
	com = com.Scale(1 / mass)
	if math.Abs(root.Mass-mass) > 1e-12 {
		t.Fatalf("root mass %v, want %v", root.Mass, mass)
	}
	if root.COM.Sub(com).Norm() > 1e-9 {
		t.Fatalf("root COM %v, want %v", root.COM, com)
	}
	if root.Cost != 100 {
		t.Fatalf("root cost %d, want 100 (initial body costs)", root.Cost)
	}
}

// TestForcesExactWithThetaZero: θ<0 opens every cell, so Barnes-Hut
// degenerates to the direct sum; one step must reproduce it exactly (up to
// floating-point association order).
func TestForcesExactWithThetaZero(t *testing.T) {
	const n = 48
	dt := 0.01
	m, res := runSmall(t, 2, 2, n, 1, -1, dt, accesstree.Factory())
	initial := Plummer(n, 11)
	want := DirectForces(initial, 0.05)
	final := FinalBodies(m, res)
	for i := range final {
		dv := final[i].Vel.Sub(initial[i].Vel).Scale(1 / dt)
		if dv.Sub(want[i]).Norm() > 1e-8*(1+want[i].Norm()) {
			t.Fatalf("body %d acceleration %v, want %v", i, dv, want[i])
		}
	}
}

// TestForcesAccurateWithThetaOne: θ=1 must approximate the direct sum with
// small error (a few percent on average).
func TestForcesAccurateWithThetaOne(t *testing.T) {
	const n = 256
	dt := 0.01
	m, res := runSmall(t, 2, 2, n, 1, 1.0, dt, accesstree.Factory())
	initial := Plummer(n, 11)
	want := DirectForces(initial, 0.05)
	final := FinalBodies(m, res)
	var relErr float64
	for i := range final {
		dv := final[i].Vel.Sub(initial[i].Vel).Scale(1 / dt)
		relErr += dv.Sub(want[i]).Norm() / (want[i].Norm() + 1e-12)
	}
	relErr /= n
	if relErr > 0.05 {
		t.Fatalf("mean relative force error %.3f with theta=1", relErr)
	}
	if relErr == 0 {
		t.Fatal("theta=1 produced exact forces; approximation not exercised")
	}
}

// TestEnergyConservation: a short integration must approximately conserve
// total energy.
func TestEnergyConservation(t *testing.T) {
	const n = 128
	m, res := runSmall(t, 2, 2, n, 4, 0.8, 0.005, accesstree.Factory())
	initial := Plummer(n, 11)
	e0 := Energy(initial, 0.05)
	e1 := Energy(FinalBodies(m, res), 0.05)
	if math.Abs(e1-e0) > 0.05*math.Abs(e0) {
		t.Fatalf("energy drifted from %v to %v", e0, e1)
	}
}

// TestCostzonesBalance: after a few steps the per-processor work counts
// must be roughly balanced and cover all bodies.
func TestCostzonesBalance(t *testing.T) {
	_, res := runSmall(t, 4, 4, 800, 3, 1.0, 0.01, accesstree.Factory())
	totalBodies := 0
	var totalCost, maxCost int64
	for p := range res.BodiesPerProc {
		totalBodies += res.BodiesPerProc[p]
		totalCost += res.CostPerProc[p]
		if res.CostPerProc[p] > maxCost {
			maxCost = res.CostPerProc[p]
		}
	}
	if totalBodies != 800 {
		t.Fatalf("costzones covers %d bodies, want 800", totalBodies)
	}
	avg := float64(totalCost) / float64(len(res.CostPerProc))
	if float64(maxCost) > 2.5*avg {
		t.Fatalf("cost imbalance: max %d vs average %.0f", maxCost, avg)
	}
}

// TestAdaptiveDepth: a clustered (Plummer) distribution subdivides deeper
// than the uniform log8(N) bound.
func TestAdaptiveDepth(t *testing.T) {
	_, res := runSmall(t, 2, 2, 512, 1, 1.0, 0, accesstree.Factory())
	if res.MaxDepth <= 3 {
		t.Fatalf("tree depth %d suspiciously shallow for a Plummer core", res.MaxDepth)
	}
	if res.Interactions == 0 {
		t.Fatal("no interactions counted")
	}
}

// TestBothStrategiesAgreePhysically: the data management strategy must not
// change the computed physics.
func TestBothStrategiesAgreePhysically(t *testing.T) {
	mAT, resAT := runSmall(t, 2, 2, 96, 2, 1.0, 0.01, accesstree.Factory())
	mFH, resFH := runSmall(t, 2, 2, 96, 2, 1.0, 0.01, fixedhome.Factory())
	at := FinalBodies(mAT, resAT)
	fh := FinalBodies(mFH, resFH)
	for i := range at {
		if at[i].Pos.Sub(fh[i].Pos).Norm() > 1e-9 {
			t.Fatalf("body %d position differs between strategies", i)
		}
	}
}

// TestAccessTreeCongestionLower: the paper's headline Barnes-Hut result at
// miniature scale.
func TestAccessTreeCongestionLower(t *testing.T) {
	run := func(f core.Factory, spec decomp.Spec) uint64 {
		m := newMachine(4, 4, f, spec)
		_, err := Run(m, Config{N: 400, Steps: 2, MeasureFrom: 2, Theta: 1.0, Dt: 0.01, Seed: 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxMsgs
	}
	at := run(accesstree.Factory(), decomp.Ary4)
	fh := run(fixedhome.Factory(), decomp.Ary4)
	if at >= fh {
		t.Fatalf("access tree congestion %d not below fixed home %d", at, fh)
	}
}

func TestDeterministicRun(t *testing.T) {
	run := func() float64 {
		m := newMachine(2, 2, accesstree.Factory(), decomp.Ary4)
		res, err := Run(m, Config{N: 64, Steps: 2, Theta: 1, Dt: 0.01, Seed: 3, MeasureFrom: 2}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedUS
	}
	if run() != run() {
		t.Fatal("nondeterministic run")
	}
}

func TestUniformSphereGenerator(t *testing.T) {
	bodies := UniformSphere(200, 3)
	for _, b := range bodies {
		if b.Pos.Norm() > 1.0001 {
			t.Fatal("body outside unit ball")
		}
		if b.Vel.Norm() != 0 {
			t.Fatal("uniform sphere bodies must start at rest")
		}
	}
}

func TestBoundsOf(t *testing.T) {
	c := boundsOf(Vec3{-1, 0, 0}, Vec3{3, 1, 1})
	if c.Center.X != 1 || c.Half < 2 || c.Half > 2.01 {
		t.Fatalf("boundsOf = %+v", c)
	}
	// Degenerate: single point.
	c = boundsOf(Vec3{5, 5, 5}, Vec3{5, 5, 5})
	if c.Half <= 0 {
		t.Fatal("degenerate bounds must have positive half")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (Config{N: 10}).withDefaults()
	if c.Steps != 7 || c.MeasureFrom != 2 || c.Theta != 1.0 {
		t.Fatalf("defaults = %+v", c)
	}
}

// TestWithComputeForcePhaseDominates: with GCel-like interaction costs the
// force phase must dominate execution time, as in the paper (~78%).
func TestWithComputeForcePhaseDominates(t *testing.T) {
	m := newMachine(2, 2, accesstree.Factory(), decomp.Ary4)
	res, err := Run(m, Config{
		N: 200, Steps: 2, MeasureFrom: 2, Theta: 1.0, Dt: 0.01, Seed: 5,
		WithCompute: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ElapsedUS <= 0 {
		t.Fatal("no time elapsed")
	}
}
