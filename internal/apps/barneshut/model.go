package barneshut

import (
	"math"

	"diva/internal/core"
	"diva/internal/xrand"
)

// Body is the value of a body's global variable. Values are immutable:
// every update writes a fresh Body.
type Body struct {
	Pos, Vel Vec3
	Mass     float64
	// Cost is the body's work count from the previous force-computation
	// phase, used by the costzones partitioning.
	Cost int64
}

// BodyBytes is the wire size of a body variable: 7 float64 + cost + tag.
const BodyBytes = 64

// Ref addresses a child of a cell: 0 is empty, n+1 refers to cell variable
// n, -(n+1) refers to body variable n.
type Ref int64

// MkCellRef and MkBodyRef build references.
func MkCellRef(id core.VarID) Ref { return Ref(int64(id) + 1) }
func MkBodyRef(id core.VarID) Ref { return Ref(-(int64(id) + 1)) }

// Empty reports whether the reference is unset.
func (r Ref) Empty() bool { return r == 0 }

// IsBody reports whether the reference names a body.
func (r Ref) IsBody() bool { return r < 0 }

// VarID returns the referenced variable.
func (r Ref) VarID() core.VarID {
	if r > 0 {
		return core.VarID(int64(r) - 1)
	}
	return core.VarID(-int64(r) - 1)
}

// Cell is the value of a cell's global variable: one node of the adaptive
// Barnes-Hut octree. Center/Half give the cube of space the cell covers.
// COM, Mass and Cost are filled in by the center-of-mass phase; ChildCost
// lets the costzones traversal prune subtrees without reading them.
type Cell struct {
	Center Vec3
	Half   float64
	Level  int32
	Child  [8]Ref
	// Filled by the upward (center-of-mass) pass:
	COM       Vec3
	Mass      float64
	Cost      int64
	ChildCost [8]int64
}

// CellBytes is the wire size of a cell variable: geometry (32) + 8 child
// refs (32... 8×8=64) + COM/mass (32) + costs (8+64) as packed on the wire.
// We charge a round 160 bytes.
const CellBytes = 160

// octant returns the index of the sub-cube of (center) containing p, and
// the sub-cube's center for half-size h/2.
func octant(center Vec3, half float64, p Vec3) (int, Vec3) {
	idx := 0
	q := half / 2
	c := center
	if p.X >= center.X {
		idx |= 1
		c.X += q
	} else {
		c.X -= q
	}
	if p.Y >= center.Y {
		idx |= 2
		c.Y += q
	} else {
		c.Y -= q
	}
	if p.Z >= center.Z {
		idx |= 4
		c.Z += q
	} else {
		c.Z -= q
	}
	return idx, c
}

// subCenter returns the center of child octant idx of a cell.
func subCenter(center Vec3, half float64, idx int) Vec3 {
	q := half / 2
	c := center
	if idx&1 != 0 {
		c.X += q
	} else {
		c.X -= q
	}
	if idx&2 != 0 {
		c.Y += q
	} else {
		c.Y -= q
	}
	if idx&4 != 0 {
		c.Z += q
	} else {
		c.Z -= q
	}
	return c
}

// Plummer draws n bodies from the Plummer model, the initial condition the
// SPLASH-2 BARNES application uses (Aarseth's standard construction):
// masses 1/n, density ρ(r) ∝ (1+r²)^(-5/2), isotropic velocities drawn by
// von Neumann rejection from q²(1-q²)^(7/2).
func Plummer(n int, seed uint64) []Body {
	rng := xrand.New(seed)
	bodies := make([]Body, n)
	const mfrac = 0.999 // cut off the outermost mass fraction
	for i := range bodies {
		// Radius from the inverse cumulative mass profile.
		m := mfrac * rng.Float64()
		r := 1 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		pos := randomOnSphere(rng).Scale(r)
		// Speed by rejection: g(q) = q²(1-q²)^(7/2) on [0,1].
		var q float64
		for {
			q = rng.Float64()
			g := q * q * math.Pow(1-q*q, 3.5)
			if 0.1*rng.Float64() < g {
				break
			}
		}
		speed := q * math.Sqrt2 * math.Pow(1+r*r, -0.25)
		vel := randomOnSphere(rng).Scale(speed)
		bodies[i] = Body{Pos: pos, Vel: vel, Mass: 1 / float64(n), Cost: 1}
	}
	// Shift to the center-of-mass frame.
	var cm, cv Vec3
	for _, b := range bodies {
		cm = cm.Add(b.Pos.Scale(b.Mass))
		cv = cv.Add(b.Vel.Scale(b.Mass))
	}
	for i := range bodies {
		bodies[i].Pos = bodies[i].Pos.Sub(cm)
		bodies[i].Vel = bodies[i].Vel.Sub(cv)
	}
	return bodies
}

// randomOnSphere draws a uniform direction.
func randomOnSphere(rng *xrand.RNG) Vec3 {
	for {
		v := Vec3{2*rng.Float64() - 1, 2*rng.Float64() - 1, 2*rng.Float64() - 1}
		if d := v.Dot(v); d > 1e-12 && d <= 1 {
			return v.Scale(1 / math.Sqrt(d))
		}
	}
}

// UniformSphere draws n bodies uniformly from a unit ball at rest —
// a simpler initial condition used by some tests.
func UniformSphere(n int, seed uint64) []Body {
	rng := xrand.New(seed)
	bodies := make([]Body, n)
	for i := range bodies {
		r := math.Cbrt(rng.Float64())
		bodies[i] = Body{
			Pos:  randomOnSphere(rng).Scale(r),
			Mass: 1 / float64(n),
			Cost: 1,
		}
	}
	return bodies
}

// bounds returns a cube enclosing all positions, slightly padded.
type cube struct {
	Center Vec3
	Half   float64
}

func boundsOf(lo, hi Vec3) cube {
	c := lo.Add(hi).Scale(0.5)
	ext := hi.Sub(lo)
	half := math.Max(ext.X, math.Max(ext.Y, ext.Z)) / 2
	if half == 0 {
		half = 1
	}
	return cube{Center: c, Half: half * 1.0001}
}
