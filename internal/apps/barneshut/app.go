// Package barneshut implements the paper's third application (§3.3): the
// Barnes-Hut N-body simulation adapted from the SPLASH-2 benchmark suite,
// running on top of the DIVA library. Every body and every cell of the
// adaptive octree is a global variable; locks attached to the cells
// synchronize the concurrent tree construction; the costzones scheme
// partitions the bodies over the processors so that physical locality
// translates into topological locality (processor ident-numbers are the
// decomposition tree's leaf numbers).
//
// Each time step runs the six barrier-separated phases of the paper:
//
//  1. load the bodies into the tree;
//  2. upward pass to find the center of mass of the cells;
//  3. partition the bodies among the processors (costzones);
//  4. compute the forces on all bodies;
//  5. advance the body positions and velocities;
//  6. compute the new size of space (an all-reduce on the access tree).
package barneshut

import (
	"fmt"

	"diva/internal/core"
	"diva/internal/metrics"
)

// Config parameterizes a simulation run.
type Config struct {
	// N is the number of bodies.
	N int
	// Steps is the number of simulated time steps (the paper uses 7).
	Steps int
	// MeasureFrom is the first measured step (the paper measures the last
	// 5 of 7, i.e. MeasureFrom = 2). Steps before it are warmup.
	MeasureFrom int
	// Theta is the opening criterion: a cell of size l at distance d is
	// approximated by its center of mass when l/d < Theta. SPLASH uses
	// 1.0 (the default). Negative values open every cell — the traversal
	// degenerates to the exact direct sum (used by accuracy tests).
	Theta float64
	// Dt is the integration step; Eps the Plummer softening length.
	Dt, Eps float64
	// Seed generates the initial condition.
	Seed uint64
	// Uniform selects the uniform-ball initial condition instead of the
	// Plummer model.
	Uniform bool
	// WithCompute charges CPU time for force interactions, cell opening
	// tests and integration, calibrated to the GCel's (slow) processors.
	WithCompute bool
	// InteractionUS, OpenTestUS are the CPU costs per body-body/body-cell
	// interaction and per opening test when WithCompute is set.
	InteractionUS, OpenTestUS float64
}

func (c Config) withDefaults() Config {
	if c.Steps == 0 {
		c.Steps = 7
	}
	if c.MeasureFrom == 0 && c.Steps > 2 {
		c.MeasureFrom = 2
	}
	if c.Theta == 0 {
		c.Theta = 1.0
	}
	if c.Dt == 0 {
		c.Dt = 0.025
	}
	if c.Eps == 0 {
		c.Eps = 0.05
	}
	if c.InteractionUS == 0 {
		c.InteractionUS = 150
	}
	if c.OpenTestUS == 0 {
		c.OpenTestUS = 30
	}
	return c
}

// Phase names used with the metrics collector.
const (
	PhaseBuild     = "build"
	PhaseCOM       = "com"
	PhasePartition = "partition"
	PhaseForce     = "force"
	PhaseAdvance   = "advance"
	PhaseBounds    = "bounds"
)

// PhaseNames lists the per-step phases in execution order.
var PhaseNames = []string{PhaseBuild, PhaseCOM, PhasePartition, PhaseForce, PhaseAdvance, PhaseBounds}

// Result reports a finished run.
type Result struct {
	ElapsedUS float64
	// BodyVars are the body variables, in initial order; final state is in
	// their Data fields.
	BodyVars []core.VarID
	// FinalRoot is the root cell variable of the last step's tree (kept
	// for inspection; earlier trees are freed).
	FinalRoot core.VarID
	// Interactions counts force interactions in the last step.
	Interactions int64
	// MaxDepth is the deepest octree level seen.
	MaxDepth int
	// BodiesPerProc and CostPerProc describe the last costzones
	// partitioning, indexed by processor id.
	BodiesPerProc []int
	CostPerProc   []int64
}

// rootInfo is the payload of the ROOT variable through which processor 0
// publishes each step's fresh root cell.
type rootInfo struct {
	Root core.VarID
}

// bbox is the payload of the bounds reduction.
type bbox struct {
	Lo, Hi Vec3
	Some   bool
}

func combineBBox(a, b interface{}) interface{} {
	x, y := a.(bbox), b.(bbox)
	if !x.Some {
		return y
	}
	if !y.Some {
		return x
	}
	return bbox{Lo: x.Lo.Min(y.Lo), Hi: x.Hi.Max(y.Hi), Some: true}
}

func combineMax(a, b interface{}) interface{} {
	if a.(int) >= b.(int) {
		return a
	}
	return b
}

// procState is the per-processor application state.
type procState struct {
	myBodies     []core.VarID
	cellsByLevel [][]core.VarID
	allCells     []core.VarID
	accs         []Vec3
	costs        []int64
	stack        []Ref
}

func (st *procState) addCell(v core.VarID, level int) {
	for len(st.cellsByLevel) <= level {
		st.cellsByLevel = append(st.cellsByLevel, nil)
	}
	st.cellsByLevel[level] = append(st.cellsByLevel[level], v)
	st.allCells = append(st.allCells, v)
}

func (st *procState) resetCells() {
	st.cellsByLevel = st.cellsByLevel[:0]
	st.allCells = st.allCells[:0]
}

// Run executes the simulation on machine m, recording metrics into col
// (which may be nil). The machine must use a data management strategy.
func Run(m *core.Machine, cfg Config, col *metrics.Collector) (Result, error) {
	cfg = cfg.withDefaults()
	if m.Strat == nil {
		return Result{}, fmt.Errorf("barneshut: machine has no data management strategy")
	}
	if cfg.N < 1 {
		return Result{}, fmt.Errorf("barneshut: need at least one body")
	}
	P := m.P()

	var bodies []Body
	if cfg.Uniform {
		bodies = UniformSphere(cfg.N, cfg.Seed)
	} else {
		bodies = Plummer(cfg.N, cfg.Seed)
	}

	// Initial ownership: contiguous slices in decomposition leaf order.
	bodyVars := make([]core.VarID, cfg.N)
	for w := 0; w < P; w++ {
		lo, hi := w*cfg.N/P, (w+1)*cfg.N/P
		owner := m.Tree.ProcOfLeaf[w]
		for i := lo; i < hi; i++ {
			// Bodies live in the DSM as immutable *Body values; copy out
			// of the model slice so nothing aliases it.
			b := bodies[i]
			bodyVars[i] = m.AllocAt(owner, BodyBytes, &b)
		}
	}
	rootVar := m.AllocAt(0, 16, rootInfo{})

	states := make([]*procState, P)
	for i := range states {
		states[i] = &procState{}
	}
	wireOf := make([]int, P)
	for w, pr := range m.Tree.ProcOfLeaf {
		wireOf[pr] = w
	}

	var totalInteractions int64
	maxDepth := 0
	var finalRoot core.VarID
	bodiesPerProc := make([]int, P)
	costPerProc := make([]int64, P)

	runErr := m.Run(func(p *core.Proc) {
		st := states[p.ID]
		w := wireOf[p.ID]
		lo, hi := w*cfg.N/P, (w+1)*cfg.N/P
		st.myBodies = append(st.myBodies, bodyVars[lo:hi]...)

		// Initial size of space (same all-reduce as phase 6).
		space := reduceBounds(p, st)

		mark := func(end string) {
			if p.ID == 0 && col != nil {
				if end != "" {
					col.EndPhase(end)
				}
			}
		}
		open := func() {
			if p.ID == 0 && col != nil {
				col.StartPhase()
			}
		}

		for step := 0; step < cfg.Steps; step++ {
			if p.ID == 0 && col != nil && step == cfg.MeasureFrom {
				col.Baseline()
			}

			// --- Phase 1: build the tree ---
			open()
			var root core.VarID
			if p.ID == 0 {
				root = p.Alloc(CellBytes, &Cell{Center: space.Center, Half: space.Half})
				st.addCell(root, 0)
				p.Write(rootVar, rootInfo{Root: root})
			}
			p.Barrier()
			root = p.Read(rootVar).(rootInfo).Root
			for _, bv := range st.myBodies {
				d := insertBody(p, cfg, st, root, bv)
				if d > maxDepth {
					maxDepth = d
				}
			}
			p.Barrier()
			mark(PhaseBuild)

			// --- Phase 2: centers of mass, deepest level first ---
			open()
			myMax := len(st.cellsByLevel) - 1
			maxLevel := p.BarrierReduce(myMax, 8, combineMax).(int)
			for lvl := maxLevel; lvl >= 0; lvl-- {
				if lvl >= 0 && lvl < len(st.cellsByLevel) {
					for _, cv := range st.cellsByLevel[lvl] {
						computeCOM(p, cfg, cv)
					}
				}
				p.Barrier()
			}
			mark(PhaseCOM)

			// --- Phase 3: costzones partitioning ---
			open()
			costzones(p, cfg, st, root, w, P)
			p.Barrier()
			mark(PhasePartition)

			// --- Phase 4: force computation ---
			open()
			inter := forces(p, cfg, st, root)
			if step == cfg.Steps-1 {
				totalInteractions += inter
			}
			p.Barrier()
			mark(PhaseForce)

			// --- Phase 5: advance bodies ---
			open()
			advance(p, cfg, st)
			p.Barrier()
			mark(PhaseAdvance)

			// --- Phase 6: new size of space ---
			open()
			space = reduceBounds(p, st)
			mark(PhaseBounds)

			// Reclaim this step's tree (every processor frees the cells it
			// created; the final step's tree is kept for inspection).
			if step < cfg.Steps-1 {
				for _, cv := range st.allCells {
					p.M.Free(cv)
				}
				st.resetCells()
			} else {
				if p.ID == 0 {
					finalRoot = root
				}
				bodiesPerProc[p.ID] = len(st.myBodies)
				for _, c := range st.costs {
					costPerProc[p.ID] += c
				}
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	return Result{
		ElapsedUS:     m.Elapsed(),
		BodyVars:      bodyVars,
		FinalRoot:     finalRoot,
		Interactions:  totalInteractions,
		MaxDepth:      maxDepth,
		BodiesPerProc: bodiesPerProc,
		CostPerProc:   costPerProc,
	}, nil
}

// maxTreeDepth bounds octree subdivision; two distinct float64 positions
// always separate well before this depth.
const maxTreeDepth = 96
