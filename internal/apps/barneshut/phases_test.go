package barneshut

import (
	"testing"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/metrics"
)

// The tests in this file validate the per-phase behaviour that Figures 9
// and 10 of the paper are built on.

func runWithPhases(t *testing.T, f core.Factory, spec decomp.Spec, n int) (*core.Machine, *metrics.Collector) {
	t.Helper()
	m := core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 99, Tree: spec, Strategy: f,
	})
	col := metrics.New(m.Net)
	_, err := Run(m, Config{
		N: n, Steps: 3, MeasureFrom: 1, Seed: 21, WithCompute: true,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	return m, col
}

// TestAllPhasesRecorded: the six phases of the paper all appear, in order.
func TestAllPhasesRecorded(t *testing.T) {
	_, col := runWithPhases(t, accesstree.Factory(), decomp.Ary4, 500)
	names := col.PhaseNames()
	if len(names) != len(PhaseNames) {
		t.Fatalf("recorded phases %v, want %v", names, PhaseNames)
	}
	for i, want := range PhaseNames {
		if names[i] != want {
			t.Fatalf("phase order %v, want %v", names, PhaseNames)
		}
	}
}

// TestForcePhaseDominates: "by far the greatest fraction of the execution
// time is spent in the force computation phase."
func TestForcePhaseDominates(t *testing.T) {
	_, col := runWithPhases(t, accesstree.Factory(), decomp.Ary4, 800)
	force, _ := col.Phase(PhaseForce)
	total := col.Total()
	if force.TimeUS < 0.4*total.TimeUS {
		t.Fatalf("force phase is only %.0f%% of the run",
			100*force.TimeUS/total.TimeUS)
	}
}

// TestForcePhaseComputeFraction: with GCel-like costs, a large part of the
// force phase is local computation (the paper reports ~67-75%).
func TestForcePhaseComputeFraction(t *testing.T) {
	_, col := runWithPhases(t, accesstree.Factory(), decomp.Ary4, 800)
	force, _ := col.Phase(PhaseForce)
	frac := force.MaxComputeUS / force.TimeUS
	if frac < 0.1 || frac > 1.0 {
		t.Fatalf("force-phase compute fraction %.2f out of plausible range", frac)
	}
}

// TestBuildPhaseRootHotspot: in the tree-building phase the fixed home
// strategy suffers the root-cell hotspot — its build congestion exceeds
// the access tree's (Figure 9's message).
func TestBuildPhaseRootHotspot(t *testing.T) {
	_, colAT := runWithPhases(t, accesstree.Factory(), decomp.Ary4, 700)
	_, colFH := runWithPhases(t, fixedhome.Factory(), decomp.Ary4, 700)
	at, _ := colAT.Phase(PhaseBuild)
	fh, _ := colFH.Phase(PhaseBuild)
	if at.Cong.MaxMsgs >= fh.Cong.MaxMsgs {
		t.Fatalf("build congestion: access tree %d not below fixed home %d",
			at.Cong.MaxMsgs, fh.Cong.MaxMsgs)
	}
}

// TestPhaseTimesSumToTotal: the six phases partition the measured steps.
func TestPhaseTimesSumToTotal(t *testing.T) {
	_, col := runWithPhases(t, accesstree.Factory(), decomp.Ary4, 400)
	var sum float64
	for _, ph := range PhaseNames {
		r, ok := col.Phase(ph)
		if !ok {
			t.Fatalf("phase %s missing", ph)
		}
		sum += r.TimeUS
	}
	total := col.Total()
	// Free/bookkeeping between phases is tiny; allow 2% slack.
	if sum < 0.98*total.TimeUS || sum > 1.02*total.TimeUS {
		t.Fatalf("phases sum to %.0f of total %.0f", sum, total.TimeUS)
	}
}

// TestWarmupStepsExcluded: metrics only cover steps >= MeasureFrom.
func TestWarmupStepsExcluded(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 2, Cols: 2, Seed: 4, Tree: decomp.Ary4,
		Strategy: accesstree.Factory(),
	})
	col := metrics.New(m.Net)
	res, err := Run(m, Config{
		N: 100, Steps: 3, MeasureFrom: 2, Seed: 5, WithCompute: true,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	total := col.Total()
	if total.TimeUS >= res.ElapsedUS {
		t.Fatalf("measured time %.0f not below elapsed %.0f (warmup not excluded)",
			total.TimeUS, res.ElapsedUS)
	}
	if total.TimeUS <= 0 {
		t.Fatal("nothing measured")
	}
}

// TestCostzonesPrunedTraversal: the partition phase must read far fewer
// cells than exist (the ChildCost pruning) — its congestion stays well
// below the build phase's.
func TestCostzonesPrunedTraversal(t *testing.T) {
	_, col := runWithPhases(t, accesstree.Factory(), decomp.Ary4, 800)
	part, _ := col.Phase(PhasePartition)
	build, _ := col.Phase(PhaseBuild)
	if part.Cong.TotalMsgs >= build.Cong.TotalMsgs {
		t.Fatalf("partition traffic (%d) not below build traffic (%d)",
			part.Cong.TotalMsgs, build.Cong.TotalMsgs)
	}
}

// TestOwnershipMigration: after costzones moves a body to a new owner, the
// body's copies migrate there through the DSM (COMA behaviour) — verified
// indirectly: multi-step runs keep all bodies owned and the simulation
// deterministic across strategies (physics equality is checked in
// barneshut_test.go); here we pin that re-partitioning really moves work.
func TestOwnershipMigration(t *testing.T) {
	_, res := func() (*core.Machine, Result) {
		m := core.MustNewMachine(core.Config{
			Rows: 4, Cols: 4, Seed: 6, Tree: decomp.Ary4,
			Strategy: accesstree.Factory(),
		})
		r, err := Run(m, Config{N: 640, Steps: 3, MeasureFrom: 3, Seed: 8}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return m, r
	}()
	// The Plummer core is dense: the uniform initial split must have been
	// rebalanced into unequal body counts per processor.
	uniform := true
	for _, n := range res.BodiesPerProc {
		if n != 640/16 {
			uniform = false
		}
	}
	if uniform {
		t.Fatal("costzones never moved a body away from the uniform split")
	}
}
