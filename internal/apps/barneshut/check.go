package barneshut

import (
	"math"

	"diva/internal/core"
)

// This file provides reference computations used by tests and the
// experiment harness to validate the simulation physics.

// DirectForces computes the exact O(N²) accelerations for a snapshot.
func DirectForces(bodies []Body, eps float64) []Vec3 {
	acc := make([]Vec3, len(bodies))
	for i := range bodies {
		for j := range bodies {
			if i == j {
				continue
			}
			acc[i] = acc[i].Add(accel(bodies[i].Pos, bodies[j].Pos, bodies[j].Mass, eps))
		}
	}
	return acc
}

// Energy returns the total energy (kinetic + softened potential) of a
// snapshot. Approximately conserved by the integrator for small Dt.
func Energy(bodies []Body, eps float64) float64 {
	var kin, pot float64
	for i := range bodies {
		v := bodies[i].Vel
		kin += 0.5 * bodies[i].Mass * v.Dot(v)
		for j := i + 1; j < len(bodies); j++ {
			d := bodies[i].Pos.Sub(bodies[j].Pos)
			r2 := d.Dot(d) + eps*eps
			pot -= bodies[i].Mass * bodies[j].Mass / math.Sqrt(r2)
		}
	}
	return kin + pot
}

// FinalBodies extracts the body values after a run, in allocation order.
func FinalBodies(m *core.Machine, res Result) []Body {
	out := make([]Body, len(res.BodyVars))
	for i, v := range res.BodyVars {
		out[i] = *m.Var(v).Data.(*Body)
	}
	return out
}

// WalkTree applies fn to every (ref, depth) reachable from the final tree
// root, reading variables directly (outside the simulation). Used by tests
// to validate the octree structure.
func WalkTree(m *core.Machine, root core.VarID, fn func(ref Ref, depth int, cell *Cell)) {
	var rec func(ref Ref, depth int)
	rec = func(ref Ref, depth int) {
		if ref.Empty() {
			return
		}
		if ref.IsBody() {
			fn(ref, depth, nil)
			return
		}
		// Hand the callback a copy: the stored *Cell is live simulator
		// state under the immutable-payload contract, and WalkTree's
		// callers must not be able to mutate it in place.
		c := *m.Var(ref.VarID()).Data.(*Cell)
		fn(ref, depth, &c)
		for _, ch := range c.Child {
			rec(ch, depth+1)
		}
	}
	rec(MkCellRef(root), 0)
}
