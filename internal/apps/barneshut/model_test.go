package barneshut

import (
	"math"
	"testing"
	"testing/quick"
)

// Property tests for the physics substrate.

func TestVec3Algebra(t *testing.T) {
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 1
		}
		return math.Mod(v, 1e9)
	}
	check := func(ax, ay, az, bx, by, bz float64) bool {
		a := Vec3{clamp(ax), clamp(ay), clamp(az)}
		b := Vec3{clamp(bx), clamp(by), clamp(bz)}
		// Commutativity and inverses.
		if a.Add(b) != b.Add(a) {
			return false
		}
		if a.Sub(a) != (Vec3{}) {
			return false
		}
		// Scaling distributes.
		l := a.Add(b).Scale(2)
		r := a.Scale(2).Add(b.Scale(2))
		return math.Abs(l.X-r.X) < 1e-9 && math.Abs(l.Y-r.Y) < 1e-9 && math.Abs(l.Z-r.Z) < 1e-9
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDotNormConsistent(t *testing.T) {
	check := func(x, y, z float64) bool {
		// Clamp to avoid overflow in the square.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 1
			}
			return math.Mod(v, 1e6)
		}
		v := Vec3{clamp(x), clamp(y), clamp(z)}
		n := v.Norm()
		return math.Abs(n*n-v.Dot(v)) <= 1e-6*(1+v.Dot(v))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxEnvelope(t *testing.T) {
	a := Vec3{1, 5, -2}
	b := Vec3{3, -1, 0}
	lo := a.Min(b)
	hi := a.Max(b)
	if lo != (Vec3{1, -1, -2}) || hi != (Vec3{3, 5, 0}) {
		t.Fatalf("Min=%v Max=%v", lo, hi)
	}
}

// TestAccelNewtonianProperties: the softened kernel points from p toward q
// and decays with distance.
func TestAccelNewtonianProperties(t *testing.T) {
	p := Vec3{0, 0, 0}
	near := accel(p, Vec3{1, 0, 0}, 1, 0.05)
	far := accel(p, Vec3{4, 0, 0}, 1, 0.05)
	if near.X <= 0 || near.Y != 0 || near.Z != 0 {
		t.Fatalf("acceleration direction wrong: %v", near)
	}
	if far.X >= near.X {
		t.Fatal("acceleration does not decay with distance")
	}
	// ~1/r² decay: 16x weaker at 4x the distance (softening negligible).
	if ratio := near.X / far.X; ratio < 15 || ratio > 17 {
		t.Fatalf("decay ratio %.1f, want ~16", ratio)
	}
	// Softening bounds the force at zero distance.
	atZero := accel(p, p, 1, 0.05)
	if math.IsNaN(atZero.X) || math.IsInf(atZero.X, 0) {
		t.Fatal("softening failed at zero distance")
	}
}

// TestAccelPairSymmetry: equal masses pull each other equally and
// oppositely.
func TestAccelPairSymmetry(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-2, 0, 1}
	ab := accel(a, b, 0.5, 0.05)
	ba := accel(b, a, 0.5, 0.05)
	sum := ab.Add(ba)
	if sum.Norm() > 1e-12 {
		t.Fatalf("forces not antisymmetric: %v", sum)
	}
}

// TestOctantPartitionsSpace: every point maps to exactly one octant, and
// octant centers are distinct.
func TestOctantPartitionsSpace(t *testing.T) {
	center := Vec3{0, 0, 0}
	seen := make(map[int]bool)
	for i := 0; i < 8; i++ {
		sc := subCenter(center, 2, i)
		idx, _ := octant(center, 2, sc)
		if idx != i {
			t.Fatalf("octant(subCenter(%d)) = %d", i, idx)
		}
		if seen[idx] {
			t.Fatalf("octant %d repeated", idx)
		}
		seen[idx] = true
	}
	check := func(x, y, z float64) bool {
		p := Vec3{math.Mod(x, 2), math.Mod(y, 2), math.Mod(z, 2)}
		idx, sub := octant(center, 2, p)
		if idx < 0 || idx > 7 {
			return false
		}
		// The reported sub-center must be the octant's canonical center.
		return sub == subCenter(center, 2, idx)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectForcesMomentumConservation: internal forces sum to ~zero
// (weighted by mass).
func TestDirectForcesMomentumConservation(t *testing.T) {
	bodies := Plummer(64, 5)
	acc := DirectForces(bodies, 0.05)
	var sum Vec3
	for i, a := range acc {
		sum = sum.Add(a.Scale(bodies[i].Mass))
	}
	if sum.Norm() > 1e-12 {
		t.Fatalf("total internal force %v, want ~0", sum)
	}
}

// TestEnergyNegativeForBoundSystem: a Plummer cluster is gravitationally
// bound: total energy < 0.
func TestEnergyNegativeForBoundSystem(t *testing.T) {
	bodies := Plummer(256, 9)
	if e := Energy(bodies, 0.05); e >= 0 {
		t.Fatalf("Plummer cluster energy %v, want negative", e)
	}
}

// TestPlummerVirialBalance: for the Plummer model in virial equilibrium,
// 2K + U ≈ 0 within sampling noise.
func TestPlummerVirialBalance(t *testing.T) {
	bodies := Plummer(3000, 13)
	var kin float64
	for _, b := range bodies {
		kin += 0.5 * b.Mass * b.Vel.Dot(b.Vel)
	}
	total := Energy(bodies, 0)
	pot := total - kin
	virial := (2*kin + pot) / math.Abs(pot)
	if math.Abs(virial) > 0.15 {
		t.Fatalf("virial ratio (2K+U)/|U| = %.3f, want ~0", virial)
	}
}
