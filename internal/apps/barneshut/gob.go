package barneshut

import "encoding/gob"

// Bodies, tree cells and the ROOT record live in machine variables, so
// they must be gob-registered for a snapshot of a Barnes-Hut-warmed
// machine to persist to disk (diva/snapstore).
func init() {
	gob.RegisterName("diva/barneshut.Body", &Body{})
	gob.RegisterName("diva/barneshut.Cell", &Cell{})
	gob.RegisterName("diva/barneshut.rootInfo", rootInfo{})
	gob.RegisterName("diva/barneshut.Ref", Ref(0))
}
