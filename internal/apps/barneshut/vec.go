package barneshut

import "math"

// Vec3 is a point or vector in 3-space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Min returns the componentwise minimum.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the componentwise maximum.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// accel returns the gravitational acceleration that a point mass m at
// position q exerts on a body at position p, with Plummer softening eps:
// a = G·m·(q-p) / (|q-p|² + eps²)^(3/2), G = 1.
func accel(p, q Vec3, m, eps float64) Vec3 {
	d := q.Sub(p)
	r2 := d.Dot(d) + eps*eps
	inv := 1 / (r2 * math.Sqrt(r2))
	return d.Scale(m * inv)
}
