package barneshut

import (
	"fmt"
	"math"

	"diva/internal/core"
)

// insertBody loads one body into the tree (phase 1). The traversal reads
// cells optimistically and locks a cell only to modify it, re-reading
// under the lock and retrying when another processor raced ahead — the
// synchronization structure of the SPLASH-2 code. Returns the depth at
// which the body was placed.
func insertBody(p *core.Proc, cfg Config, st *procState, root core.VarID, bv core.VarID) int {
	b := p.Read(bv).(*Body)
	cur := root
	for depth := 0; ; depth++ {
		if depth > maxTreeDepth {
			panic(fmt.Sprintf("barneshut: tree deeper than %d (coincident bodies?)", maxTreeDepth))
		}
		c := p.Read(cur).(*Cell)
		oct, _ := octant(c.Center, c.Half, b.Pos)
		child := c.Child[oct]
		switch {
		case child.Empty():
			p.Lock(cur)
			c = p.Read(cur).(*Cell)
			if c.Child[oct].Empty() {
				nc := *c
				nc.Child[oct] = MkBodyRef(bv)
				p.Write(cur, &nc)
				p.Unlock(cur)
				return depth
			}
			p.Unlock(cur) // another processor filled the slot: re-examine

		case !child.IsBody():
			cur = child.VarID()

		default:
			// The slot holds a body: subdivide — replace it by a new cell
			// containing the old body, then continue the descent there.
			p.Lock(cur)
			c = p.Read(cur).(*Cell)
			if c.Child[oct] != child {
				p.Unlock(cur)
				continue
			}
			sc := subCenter(c.Center, c.Half, oct)
			newCell := &Cell{Center: sc, Half: c.Half / 2, Level: c.Level + 1}
			old := p.Read(child.VarID()).(*Body)
			oct2, _ := octant(sc, newCell.Half, old.Pos)
			newCell.Child[oct2] = child
			ncv := p.Alloc(CellBytes, newCell)
			st.addCell(ncv, int(newCell.Level))
			nc := *c
			nc.Child[oct] = MkCellRef(ncv)
			p.Write(cur, &nc)
			p.Unlock(cur)
			cur = ncv
		}
	}
}

// computeCOM fills in one cell's center of mass, total mass and subtree
// cost (phase 2). The cell's children at deeper levels were completed in
// earlier sweep iterations.
func computeCOM(p *core.Proc, cfg Config, cv core.VarID) {
	c := p.Read(cv).(*Cell)
	nc := *c
	var com Vec3
	var mass float64
	var cost int64
	for i, ch := range c.Child {
		if ch.Empty() {
			continue
		}
		var m float64
		var pos Vec3
		var cc int64
		if ch.IsBody() {
			b := p.Read(ch.VarID()).(*Body)
			m, pos, cc = b.Mass, b.Pos, b.Cost
		} else {
			sub := p.Read(ch.VarID()).(*Cell)
			m, pos, cc = sub.Mass, sub.COM, sub.Cost
		}
		mass += m
		com = com.Add(pos.Scale(m))
		cost += cc
		nc.ChildCost[i] = cc
	}
	if mass > 0 {
		nc.COM = com.Scale(1 / mass)
	} else {
		nc.COM = c.Center
	}
	nc.Mass = mass
	nc.Cost = cost
	p.Write(cv, &nc)
	if cfg.WithCompute {
		p.Compute(8 * cfg.OpenTestUS)
	}
}

// costzones reassigns the bodies (phase 3): processor with leaf number w
// takes the bodies whose prefix cost, in a canonical depth-first traversal
// of the octree, falls into [w·T/P, (w+1)·T/P). Subtrees outside the zone
// are pruned using the parent's ChildCost table, so the traversal reads
// only the cells on the zone's boundary paths plus its interior.
func costzones(p *core.Proc, cfg Config, st *procState, root core.VarID, w, procs int) {
	rc := p.Read(root).(*Cell)
	total := rc.Cost
	lo := int64(w) * total / int64(procs)
	hi := int64(w+1) * total / int64(procs)
	st.myBodies = st.myBodies[:0]

	var walk func(c *Cell, prefix int64)
	walk = func(c *Cell, prefix int64) {
		for i, ch := range c.Child {
			if ch.Empty() {
				continue
			}
			cc := c.ChildCost[i]
			start, end := prefix, prefix+cc
			if end > lo && start < hi {
				if ch.IsBody() {
					if start >= lo && start < hi {
						st.myBodies = append(st.myBodies, ch.VarID())
					}
				} else {
					walk(p.Read(ch.VarID()).(*Cell), prefix)
				}
			}
			prefix += cc
		}
	}
	walk(rc, 0)
}

// forces computes the acceleration on every owned body (phase 4) by the
// Barnes-Hut traversal and records the per-body work count (the cost for
// the next costzones). Returns the processor's interaction count.
func forces(p *core.Proc, cfg Config, st *procState, root core.VarID) int64 {
	st.accs = st.accs[:0]
	st.costs = st.costs[:0]
	var totalInter int64
	for _, bv := range st.myBodies {
		b := p.Read(bv).(*Body)
		var acc Vec3
		var inter, opens int64
		st.stack = st.stack[:0]
		st.stack = append(st.stack, MkCellRef(root))
		for len(st.stack) > 0 {
			ref := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			if ref.IsBody() {
				if ref.VarID() != bv {
					o := p.Read(ref.VarID()).(*Body)
					acc = acc.Add(accel(b.Pos, o.Pos, o.Mass, cfg.Eps))
					inter++
				}
				continue
			}
			c := p.Read(ref.VarID()).(*Cell)
			opens++
			d := c.COM.Sub(b.Pos).Norm()
			if 2*c.Half < cfg.Theta*d {
				// Far enough away: the whole subtree acts as one particle.
				acc = acc.Add(accel(b.Pos, c.COM, c.Mass, cfg.Eps))
				inter++
				continue
			}
			for _, ch := range c.Child {
				if !ch.Empty() {
					st.stack = append(st.stack, ch)
				}
			}
		}
		st.accs = append(st.accs, acc)
		cost := inter
		if cost < 1 {
			cost = 1
		}
		st.costs = append(st.costs, cost)
		totalInter += inter
		if cfg.WithCompute {
			p.Compute(float64(inter)*cfg.InteractionUS + float64(opens)*cfg.OpenTestUS)
		}
	}
	return totalInter
}

// advance integrates the owned bodies (phase 5) and stores their new state
// (which invalidates remote copies of the body).
func advance(p *core.Proc, cfg Config, st *procState) {
	for i, bv := range st.myBodies {
		b := p.Read(bv).(*Body)
		nb := *b
		nb.Vel = b.Vel.Add(st.accs[i].Scale(cfg.Dt))
		nb.Pos = b.Pos.Add(nb.Vel.Scale(cfg.Dt))
		nb.Cost = st.costs[i]
		p.Write(bv, &nb)
		if cfg.WithCompute {
			p.Compute(6 * cfg.OpenTestUS)
		}
	}
}

// reduceBounds computes the global bounding cube of all bodies (phase 6)
// with the barrier's all-reduce.
func reduceBounds(p *core.Proc, st *procState) cube {
	local := bbox{Lo: Vec3{math.Inf(1), math.Inf(1), math.Inf(1)},
		Hi: Vec3{math.Inf(-1), math.Inf(-1), math.Inf(-1)}}
	for _, bv := range st.myBodies {
		b := p.Read(bv).(*Body)
		local.Lo = local.Lo.Min(b.Pos)
		local.Hi = local.Hi.Max(b.Pos)
		local.Some = true
	}
	res := p.BarrierReduce(local, 48, combineBBox).(bbox)
	if !res.Some {
		return cube{Half: 1}
	}
	return boundsOf(res.Lo, res.Hi)
}
