package matmul

import (
	"testing"

	"diva/internal/decomp"
	"diva/internal/mesh"
)

// The tests in this file pin the communication structure of the
// hand-optimized strategy against the paper's own analysis (§3.1).

// TestHandOptStartupsPerNode: "the number of startups of the hand-optimized
// strategy is about 2·√P per node".
func TestHandOptStartupsPerNode(t *testing.T) {
	m := newMachine(8, 8, nil, decomp.Ary2)
	if _, err := RunHandOpt(m, Config{BlockInts: 64, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	msgs, _ := m.Net.SendStats()
	sends := msgs[mesh.KindInbox]
	perNode := float64(sends) / float64(m.P())
	// 2·√P = 16; boundary nodes send fewer, so the average is somewhat
	// below; it must be within [√P, 2·√P].
	if perNode < 8 || perNode > 16 {
		t.Fatalf("%.1f sends per node, want within [8,16] (~2*sqrt(P)=16)", perNode)
	}
}

// TestHandOptOnlyNeighborMessages: every message travels exactly one link.
func TestHandOptOnlyNeighborMessages(t *testing.T) {
	m := newMachine(4, 4, nil, decomp.Ary2)
	if _, err := RunHandOpt(m, Config{BlockInts: 16, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	msgs, _ := m.Net.SendStats()
	c := m.Net.Congestion(nil)
	// Total link traversals == number of sends: each message crosses one
	// link (neighbors only).
	if c.TotalMsgs != msgs[mesh.KindInbox] {
		t.Fatalf("%d link traversals for %d messages: non-neighbor sends",
			c.TotalMsgs, msgs[mesh.KindInbox])
	}
}

// TestHandOptTotalLoadMinimal: the total communication load matches the
// closed form: every block travels (s-1) row hops + (s-1) column hops.
func TestHandOptTotalLoadMinimal(t *testing.T) {
	for _, side := range []int{2, 4, 8} {
		m := newMachine(side, side, nil, decomp.Ary2)
		cfg := Config{BlockInts: 64, Seed: 3}
		if _, err := RunHandOpt(m, cfg); err != nil {
			t.Fatal(err)
		}
		c := m.Net.Congestion(nil)
		blocks := uint64(side * side)
		wantTraversals := blocks * uint64(2*(side-1))
		if c.TotalMsgs != wantTraversals {
			t.Fatalf("side %d: %d traversals, want %d", side, c.TotalMsgs, wantTraversals)
		}
		blockWire := uint64(4*cfg.BlockInts + 16)
		if c.TotalBytes != wantTraversals*blockWire {
			t.Fatalf("side %d: %d bytes, want %d", side, c.TotalBytes, wantTraversals*blockWire)
		}
	}
}

// TestHandOptCongestionLinearInBlockSize: congestion grows linearly in m
// ("the hand-optimized strategy achieves minimal congestion growing linear
// in the block size").
func TestHandOptCongestionLinearInBlockSize(t *testing.T) {
	cong := func(block int) uint64 {
		m := newMachine(4, 4, nil, decomp.Ary2)
		if _, err := RunHandOpt(m, Config{BlockInts: block, Seed: 4}); err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes
	}
	c64, c256 := cong(64), cong(256)
	// 4x larger blocks: congestion must grow by slightly less than 4x
	// (headers amortize).
	ratio := float64(c256) / float64(c64)
	if ratio < 3.5 || ratio > 4.0 {
		t.Fatalf("congestion grew %.2fx for 4x blocks", ratio)
	}
}

// TestNonSquareMeshRejected: the hand-optimized pipeline is wired to the
// mesh links and needs a square mesh; the DSM variant only needs a square
// processor count (its block grid lives on processor ids, so it runs on
// any topology).
func TestNonSquareMeshRejected(t *testing.T) {
	m := newMachine(2, 8, nil, decomp.Ary2)
	if _, err := RunHandOpt(m, Config{BlockInts: 16}); err == nil {
		t.Fatal("2x8 mesh accepted by the hand-optimized variant")
	}
	m2 := newMachine(2, 4, nil, decomp.Ary2)
	if _, err := RunDSM(m2, Config{BlockInts: 16}); err == nil {
		t.Fatal("8 processors (not a square count) accepted by DSM variant")
	}
}
