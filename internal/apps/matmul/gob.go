package matmul

import "encoding/gob"

// Matrix blocks live in machine variables and inbox payloads, so they must
// be gob-registered for a snapshot of a matmul-warmed machine to persist
// to disk (diva/snapstore).
func init() {
	gob.RegisterName("diva/matmul.block", block(nil))
}
