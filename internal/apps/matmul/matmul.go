// Package matmul implements the paper's first application (§3.1): squaring
// a matrix, A := A·A, blocked over a √P×√P processor grid.
//
// The matrix square (rather than general multiplication C := A·B) is used
// because it forces the data management strategy to create and invalidate
// copies of the matrix entries.
//
// Each block A[i,j] is one global variable, initialized by (and resident
// at) processor p_{i,j}. The parallel program is the paper's: a "read
// phase" of √P staggered steps — in step k', processor p_{i,j} reads
// A[i,k] and A[k,j] with k = (k'+i+j) mod √P, so at most two processors
// read the same block in the same step — followed by a barrier, then a
// "write phase" storing the locally accumulated block back into A[i,j].
// The copies end up in the initial configuration, so the algorithm can be
// applied repeatedly to compute higher powers.
//
// The hand-optimized message passing strategy pipelines every block along
// its row and column with neighbor-to-neighbor messages, achieving minimal
// total communication load and minimal congestion (m·√P).
package matmul

import (
	"fmt"
	"math"

	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/sim"
	"diva/internal/xrand"
)

// Config parameterizes one matrix-square run.
type Config struct {
	// BlockInts is the paper's block size m: the number of 4-byte integers
	// per block. Must be a perfect square (the block is a b×b submatrix).
	BlockInts int
	// WithCompute charges the CPU cost of the local block multiplications
	// (b³ multiply-adds per step). The paper measures "communication time"
	// with local computation removed; leave false to reproduce that.
	WithCompute bool
	// OpUS is the CPU cost per multiply-add when WithCompute is set.
	OpUS float64
	// Check verifies the result against a sequential matrix square. The
	// actual arithmetic is only performed when Check is set: traffic is
	// identical either way and large runs skip the O(n³) work.
	Check bool
	// Seed generates the input matrix.
	Seed uint64
}

// Result reports a finished run.
type Result struct {
	ElapsedUS float64
	// Verified is set when Check was requested and the result matched.
	Verified bool
}

// block is a b×b submatrix in row-major order.
type block []int32

// Dims derives the grid geometry: s = √P processors per side, b = √m block
// side length.
func (c Config) Dims(p int) (s, b int, err error) {
	s = int(math.Sqrt(float64(p)))
	if s*s != p {
		return 0, 0, fmt.Errorf("matmul: %d processors is not a square grid", p)
	}
	b = int(math.Sqrt(float64(c.BlockInts)))
	if b*b != c.BlockInts || b == 0 {
		return 0, 0, fmt.Errorf("matmul: block size %d is not a positive square", c.BlockInts)
	}
	return s, b, nil
}

// genBlock deterministically generates block (i,j). Entries are small so
// that block products cannot overflow int32.
func genBlock(seed uint64, i, j, b int) block {
	rng := xrand.New(seed ^ uint64(i*7919+j+1)*0x9e3779b97f4a7c15)
	bl := make(block, b*b)
	for k := range bl {
		bl[k] = int32(rng.Intn(15) - 7)
	}
	return bl
}

// mulAdd accumulates h += x·y for b×b blocks.
func mulAdd(h, x, y block, b int) {
	for r := 0; r < b; r++ {
		for k := 0; k < b; k++ {
			xv := x[r*b+k]
			if xv == 0 {
				continue
			}
			row := y[k*b:]
			out := h[r*b:]
			for c := 0; c < b; c++ {
				out[c] += xv * row[c]
			}
		}
	}
}

// RunDSM executes the matrix square through the machine's data management
// strategy (access tree or fixed home).
func RunDSM(m *core.Machine, cfg Config) (Result, error) {
	if m.Strat == nil {
		return Result{}, fmt.Errorf("matmul: machine has no data management strategy (use RunHandOpt, or build the machine with one)")
	}
	// The DSM version communicates only through the data management
	// strategy, so it runs on any topology with a square processor count.
	s, b, err := cfg.Dims(m.P())
	if err != nil {
		return Result{}, err
	}
	blockBytes := 4 * cfg.BlockInts

	// One global variable per block, created at its owner.
	vars := make([]core.VarID, m.P())
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			proc := i*s + j
			var data block
			if cfg.Check {
				data = genBlock(cfg.Seed, i, j, b)
			}
			vars[proc] = m.AllocAt(proc, blockBytes, data)
		}
	}

	runErr := m.Run(func(p *core.Proc) {
		i, j := p.ID/s, p.ID%s
		var h block
		if cfg.Check {
			h = make(block, cfg.BlockInts)
		}
		// Read phase: staggered block reads.
		for kp := 0; kp < s; kp++ {
			k := (kp + i + j) % s
			a := p.Read(vars[i*s+k])
			bb := p.Read(vars[k*s+j])
			if cfg.Check {
				mulAdd(h, a.(block), bb.(block), b)
			}
			if cfg.WithCompute {
				p.Compute(float64(b*b*b) * cfg.OpUS)
			}
		}
		p.Barrier()
		// Write phase: store the accumulated block.
		if cfg.Check {
			p.Write(vars[p.ID], h)
		} else {
			p.Write(vars[p.ID], p.M.Var(vars[p.ID]).Data)
		}
		p.Barrier()
	})
	if runErr != nil {
		return Result{}, runErr
	}

	res := Result{ElapsedUS: m.Elapsed()}
	if cfg.Check {
		if err := verify(m, vars, cfg, s, b); err != nil {
			return res, err
		}
		res.Verified = true
	}
	return res, nil
}

// verify recomputes the square sequentially and compares every block.
func verify(m *core.Machine, vars []core.VarID, cfg Config, s, b int) error {
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			want := make(block, cfg.BlockInts)
			for k := 0; k < s; k++ {
				mulAdd(want, genBlock(cfg.Seed, i, k, b), genBlock(cfg.Seed, k, j, b), b)
			}
			got := m.Var(vars[i*s+j]).Data.(block)
			for x := range want {
				if got[x] != want[x] {
					return fmt.Errorf("matmul: block (%d,%d) entry %d = %d, want %d",
						i, j, x, got[x], want[x])
				}
			}
		}
	}
	return nil
}

// handMsg is a block in flight in the hand-optimized strategy.
type handMsg struct {
	origin int      // owning processor
	dir    mesh.Dir // direction of travel
	data   block
}

// RunHandOpt executes the communication pattern of the hand-optimized
// message passing strategy: every block travels along its row and its
// column via neighbor-to-neighbor store-and-forward messages; every
// processor passed keeps a copy. The machine needs no data management
// strategy.
func RunHandOpt(m *core.Machine, cfg Config) (Result, error) {
	mm, ok := m.MeshTopo()
	if !ok || mm.Rows != mm.Cols {
		return Result{}, fmt.Errorf("matmul: hand-optimized version needs a square mesh, have %s", m.Topo)
	}
	s, b, err := cfg.Dims(m.P())
	if err != nil {
		return Result{}, err
	}
	blockBytes := 4 * cfg.BlockInts
	nw := m.Net

	verified := true
	runErr := m.Run(func(p *core.Proc) {
		i, j := p.ID/s, p.ID%s
		var own block
		if cfg.Check {
			own = genBlock(cfg.Seed, i, j, b)
		}
		// Launch the block in all four directions.
		for _, d := range []mesh.Dir{mesh.East, mesh.West, mesh.South, mesh.North} {
			if mm.HasLink(p.ID, d) {
				nw.SendFrom(p.Proc, &mesh.Msg{
					Src: p.ID, Dst: mm.Neighbor(p.ID, d),
					Size: core.HeaderBytes + blockBytes,
					Kind: mesh.KindInbox, Tag: anyTag,
					Payload: &handMsg{origin: p.ID, dir: d, data: own},
				})
			}
		}
		// Receive 2(s-1) blocks: s-1 from the row, s-1 from the column.
		// Forward each one onward in its direction of travel.
		rowBlocks := make(map[int]block)
		colBlocks := make(map[int]block)
		for got := 0; got < 2*(s-1); got++ {
			msg := recvAny(nw, p.Proc, p.ID)
			hm := msg.Payload.(*handMsg)
			if hm.dir == mesh.East || hm.dir == mesh.West {
				rowBlocks[hm.origin] = hm.data
			} else {
				colBlocks[hm.origin] = hm.data
			}
			if mm.HasLink(p.ID, hm.dir) {
				nw.SendFrom(p.Proc, &mesh.Msg{
					Src: p.ID, Dst: mm.Neighbor(p.ID, hm.dir),
					Size: core.HeaderBytes + blockBytes,
					Kind: mesh.KindInbox, Tag: anyTag,
					Payload: hm,
				})
			}
		}
		if cfg.WithCompute {
			p.Compute(float64(s*b*b*b) * cfg.OpUS)
		}
		if cfg.Check {
			rowBlocks[p.ID] = own
			colBlocks[p.ID] = own
			h := make(block, cfg.BlockInts)
			for k := 0; k < s; k++ {
				mulAdd(h, rowBlocks[i*s+k], colBlocks[k*s+j], b)
			}
			want := make(block, cfg.BlockInts)
			for k := 0; k < s; k++ {
				mulAdd(want, genBlock(cfg.Seed, i, k, b), genBlock(cfg.Seed, k, j, b), b)
			}
			for x := range want {
				if h[x] != want[x] {
					verified = false
				}
			}
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res := Result{ElapsedUS: m.Elapsed()}
	if cfg.Check {
		if !verified {
			return res, fmt.Errorf("matmul: hand-optimized result mismatch")
		}
		res.Verified = true
	}
	return res, nil
}

// recvAny receives the next inbox message on the program's single stream;
// the direction of travel rides in the payload.
func recvAny(nw *mesh.Network, p *sim.Proc, node int) *mesh.Msg {
	return nw.Recv(p, node, anyTag)
}

// anyTag is the single inbox stream used by the hand-optimized program.
const anyTag = 0
