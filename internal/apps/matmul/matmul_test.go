package matmul

import (
	"testing"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
)

func newMachine(rows, cols int, f core.Factory, spec decomp.Spec) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols, Seed: 99, Tree: spec, Strategy: f,
	})
}

func TestDimsValidation(t *testing.T) {
	if _, _, err := (Config{BlockInts: 16}).Dims(6); err == nil {
		t.Error("non-square processor count accepted")
	}
	if _, _, err := (Config{BlockInts: 10}).Dims(4); err == nil {
		t.Error("non-square block size accepted")
	}
	s, b, err := (Config{BlockInts: 64}).Dims(16)
	if err != nil || s != 4 || b != 8 {
		t.Errorf("Dims = (%d,%d,%v)", s, b, err)
	}
}

func TestMulAdd(t *testing.T) {
	// 2x2: h += x*y.
	x := block{1, 2, 3, 4}
	y := block{5, 6, 7, 8}
	h := make(block, 4)
	mulAdd(h, x, y, 2)
	want := block{19, 22, 43, 50}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("mulAdd = %v, want %v", h, want)
		}
	}
}

func TestStaggering(t *testing.T) {
	// At most two processors read the same block in the same step.
	const s = 8
	for kp := 0; kp < s; kp++ {
		readers := make(map[[2]int]int)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				k := (kp + i + j) % s
				readers[[2]int{i, k}]++
				readers[[2]int{k, j}]++
			}
		}
		for blk, n := range readers {
			if n > 2 {
				t.Fatalf("step %d: block %v read by %d processors", kp, blk, n)
			}
		}
	}
}

func TestDSMCorrectness(t *testing.T) {
	for name, f := range map[string]core.Factory{
		"fixedhome":  fixedhome.Factory(),
		"accesstree": accesstree.Factory(),
	} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(2, 2, f, decomp.Ary2)
			res, err := RunDSM(m, Config{BlockInts: 16, Check: true, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("result not verified")
			}
			if res.ElapsedUS <= 0 {
				t.Fatal("no simulated time elapsed")
			}
		})
	}
}

func TestDSMCorrectness4x4(t *testing.T) {
	m := newMachine(4, 4, accesstree.Factory(), decomp.Ary4)
	res, err := RunDSM(m, Config{BlockInts: 16, Check: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("result not verified")
	}
}

func TestHandOptCorrectness(t *testing.T) {
	m := newMachine(4, 4, nil, decomp.Ary2)
	res, err := RunHandOpt(m, Config{BlockInts: 16, Check: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("hand-opt result not verified")
	}
}

// TestHandOptCongestion checks the exact congestion of the hand-optimized
// strategy: the busiest directed link carries s-1 blocks.
func TestHandOptCongestion(t *testing.T) {
	m := newMachine(4, 4, nil, decomp.Ary2)
	cfg := Config{BlockInts: 64, Seed: 1, Check: true}
	if _, err := RunHandOpt(m, cfg); err != nil {
		t.Fatal(err)
	}
	c := m.Net.Congestion(nil)
	blockWire := uint64(core.HeaderBytes + 4*cfg.BlockInts)
	want := 3 * blockWire // s-1 = 3 blocks over the fullest link
	if c.MaxBytes != want {
		t.Fatalf("hand-opt congestion %d bytes, want %d", c.MaxBytes, want)
	}
	// Total: every block visits s-1 row links + s-1 col links twice over...
	// each of the 16 blocks is store-and-forwarded across 2*(s-1) links in
	// rows and 2*(s-1)... row east+west combined cover s-1 links once
	// each direction totals s-1 link traversals. Per block: (s-1) row +
	// (s-1) column traversals = 6; 16 blocks -> 96 link messages.
	if c.TotalMsgs != 96 {
		t.Fatalf("hand-opt total link messages %d, want 96", c.TotalMsgs)
	}
}

// TestCommTimeGrowsWithBlockSize: times must grow roughly linearly in the
// block size (paper: "the communication times of all tested strategies grow
// almost linearly in the block size").
func TestCommTimeGrowsWithBlockSize(t *testing.T) {
	time := func(blockInts int) float64 {
		m := newMachine(4, 4, accesstree.Factory(), decomp.Ary4)
		res, err := RunDSM(m, Config{BlockInts: blockInts})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedUS
	}
	t64, t1024 := time(64), time(1024)
	if t1024 < 4*t64 {
		t.Fatalf("time grew only %.1fx from m=64 to m=1024", t1024/t64)
	}
}

// TestAccessTreeBeatsFixedHome: the headline result on a 8x8 mesh.
func TestAccessTreeBeatsFixedHome(t *testing.T) {
	run := func(f core.Factory, spec decomp.Spec) (uint64, float64) {
		m := newMachine(8, 8, f, spec)
		res, err := RunDSM(m, Config{BlockInts: 256})
		if err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes, res.ElapsedUS
	}
	atCong, atTime := run(accesstree.Factory(), decomp.Ary4)
	fhCong, fhTime := run(fixedhome.Factory(), decomp.Ary4)
	if atCong >= fhCong {
		t.Errorf("access tree congestion %d not below fixed home %d", atCong, fhCong)
	}
	if atTime >= fhTime {
		t.Errorf("access tree time %.0f not below fixed home %.0f", atTime, fhTime)
	}
}

// TestHandOptBeatsBoth: the hand-optimized congestion is minimal.
func TestHandOptBeatsBoth(t *testing.T) {
	cfg := Config{BlockInts: 256}
	hm := newMachine(8, 8, nil, decomp.Ary2)
	if _, err := RunHandOpt(hm, cfg); err != nil {
		t.Fatal(err)
	}
	hand := hm.Net.Congestion(nil).MaxBytes

	am := newMachine(8, 8, accesstree.Factory(), decomp.Ary4)
	if _, err := RunDSM(am, cfg); err != nil {
		t.Fatal(err)
	}
	at := am.Net.Congestion(nil).MaxBytes
	if hand >= at {
		t.Fatalf("hand-opt congestion %d not below access tree %d", hand, at)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, uint64) {
		m := newMachine(4, 4, accesstree.Factory(), decomp.Ary4)
		res, err := RunDSM(m, Config{BlockInts: 64})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedUS, m.Net.Congestion(nil).TotalBytes
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func TestWithComputeAddsTime(t *testing.T) {
	base := func(withCompute bool) float64 {
		m := newMachine(2, 2, accesstree.Factory(), decomp.Ary2)
		res, err := RunDSM(m, Config{BlockInts: 64, WithCompute: withCompute, OpUS: 3.45, Check: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedUS
	}
	if base(true) <= base(false) {
		t.Fatal("WithCompute did not increase the execution time")
	}
}

func TestGenBlockDeterministic(t *testing.T) {
	a := genBlock(1, 2, 3, 8)
	b := genBlock(1, 2, 3, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("genBlock not deterministic")
		}
	}
	c := genBlock(1, 3, 2, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different blocks identical")
	}
}
