package stencil

import "encoding/gob"

// Halo checksum payloads are normally consumed within an iteration, but a
// snapshot may still catch one queued in an inbox; register the payload
// type so such a snapshot can persist to disk (diva/snapstore).
func init() {
	gob.Register(uint64(0))
}
