// Package stencil implements an iterative halo-exchange kernel: every
// processor owns one block of a regular grid and, per iteration, trades
// boundary strips ("halos") with its mesh neighbors, optionally computes
// on its block, and joins a global barrier. The communication pattern —
// nearest-neighbor messages plus one collective per step — is the classic
// complement to the paper's three applications: it exercises the barrier
// on every iteration (matmul and bitonic hand-opt use none) and generates
// uniformly distributed short-haul traffic instead of hotspots.
//
// There is only a hand-optimized message passing variant; the pattern has
// no shared-variable formulation that isn't just this exchange. It is the
// canonical workload of the kernel-shard scaling benchmarks: traffic
// between neighboring processors stays inside a shard's block except at
// block boundaries, so conservative windows stay busy.
package stencil

import (
	"fmt"

	"diva/internal/core"
	"diva/internal/mesh"
)

// Config parameterizes one stencil run.
type Config struct {
	// Iters is the number of exchange-compute-barrier iterations.
	Iters int
	// HaloInts is the number of 4-byte values in each halo strip.
	HaloInts int
	// WithCompute charges OpUS per halo value per neighbor each iteration.
	WithCompute bool
	// OpUS is the CPU cost per halo value when WithCompute.
	OpUS float64
	// Check carries real halo values and verifies every processor's
	// accumulated checksum. Without Check the traffic is identical.
	Check bool
	// Seed generates the halo values.
	Seed uint64
}

// Result reports a finished run.
type Result struct {
	ElapsedUS float64
	Iters     int
	Verified  bool
}

// neighbors returns each processor's halo partners: the up/down/left/right
// grid neighbors on a grid topology, the two id-ring neighbors otherwise.
func neighbors(t mesh.Topology) [][]int {
	n := t.N()
	nb := make([][]int, n)
	if rows, cols, ok := t.Grid(); ok {
		for p := 0; p < n; p++ {
			r, c := p/cols, p%cols
			if r > 0 {
				nb[p] = append(nb[p], p-cols)
			}
			if r < rows-1 {
				nb[p] = append(nb[p], p+cols)
			}
			if c > 0 {
				nb[p] = append(nb[p], p-1)
			}
			if c < cols-1 {
				nb[p] = append(nb[p], p+1)
			}
		}
		return nb
	}
	for p := 0; p < n; p++ {
		nb[p] = append(nb[p], (p+n-1)%n, (p+1)%n)
	}
	return nb
}

// haloVal is the deterministic checksum contribution of src's halo in
// iteration it (mixed so neighboring (src, it) pairs differ everywhere).
func haloVal(seed uint64, src, it int) uint64 {
	x := seed ^ uint64(src+1)*0x9e3779b97f4a7c15 ^ uint64(it+1)*0xbf58476d1ce4e5b9
	x ^= x >> 31
	x *= 0x94d049bb133111eb
	x ^= x >> 29
	return x
}

// Run executes the hand-optimized halo exchange.
func Run(m *core.Machine, cfg Config) (Result, error) {
	if cfg.Iters <= 0 || cfg.HaloInts <= 0 {
		return Result{}, fmt.Errorf("stencil: iterations and halo size must be positive, have %d/%d", cfg.Iters, cfg.HaloInts)
	}
	nb := neighbors(m.Topo)
	haloBytes := 4 * cfg.HaloInts
	sums := make([]uint64, m.P())
	runErr := m.Run(func(pr *core.Proc) {
		var sum uint64
		for it := 0; it < cfg.Iters; it++ {
			var val uint64
			if cfg.Check {
				val = haloVal(cfg.Seed, pr.ID, it)
			}
			for _, d := range nb[pr.ID] {
				m.Net.SendFrom(pr.Proc, &mesh.Msg{
					Src: pr.ID, Dst: d,
					Size: core.HeaderBytes + haloBytes,
					Kind: mesh.KindInbox, Tag: it,
					Payload: val,
				})
			}
			for range nb[pr.ID] {
				got := m.Net.Recv(pr.Proc, pr.ID, it)
				if cfg.Check {
					sum += got.Payload.(uint64)
				}
			}
			if cfg.WithCompute {
				pr.Compute(float64(cfg.HaloInts*len(nb[pr.ID])) * cfg.OpUS)
			}
			pr.Barrier()
		}
		sums[pr.ID] = sum
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res := Result{ElapsedUS: m.Elapsed(), Iters: cfg.Iters}
	if cfg.Check {
		for p := 0; p < m.P(); p++ {
			var want uint64
			for it := 0; it < cfg.Iters; it++ {
				for _, d := range nb[p] {
					want += haloVal(cfg.Seed, d, it)
				}
			}
			if sums[p] != want {
				return res, fmt.Errorf("stencil: processor %d checksum mismatch", p)
			}
		}
		res.Verified = true
	}
	return res, nil
}
