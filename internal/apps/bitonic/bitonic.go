// Package bitonic implements the paper's second application (§3.2): a
// variant of Batcher's bitonic sorting algorithm based on a sorting
// circuit. Every processor simulates one wire and holds a set of m keys in
// a global variable; the compare-exchange operation is replaced by a
// merge&split operation (the processor that would receive the minimum gets
// the lower m keys, the other one the upper m keys).
//
// Wires are mapped to processors by the decomposition tree's leaf
// numbering, so the locality in the arrangement of the merging circuits —
// phase i consists of 2^(logP−i) independent mergers over 2^i neighboring
// wires — matches the 2-ary mesh decomposition. This is the locality the
// access tree strategy exploits (and the reason the 2-ary and 2-4-ary
// variants win on this application).
//
// The hand-optimized strategy simply exchanges two messages between the
// two nodes of every merge&split operation, which is congestion-optimal
// for this embedding of the circuit.
package bitonic

import (
	"fmt"
	"sort"

	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/xrand"
)

// Config parameterizes one sorting run.
type Config struct {
	// KeysPerProc is the paper's m: 4-byte keys per processor.
	KeysPerProc int
	// WithCompute charges CPU time for the initial local sort and each
	// merge&split.
	WithCompute bool
	// CompareUS is the CPU cost per key comparison/move when WithCompute.
	CompareUS float64
	// Check carries real key values and verifies the output is the sorted
	// input. Without Check the traffic is identical (the algorithm is
	// oblivious) but no key arithmetic happens.
	Check bool
	// Seed generates the input keys.
	Seed uint64
}

// Result reports a finished run.
type Result struct {
	ElapsedUS float64
	Verified  bool
	Steps     int // total merge&split steps = logP(logP+1)/2
}

// Comparator is one compare-exchange in the sorting circuit: wires Lo < Hi;
// if Asc the minimum goes to Lo.
type Comparator struct {
	Lo, Hi int
	Asc    bool
}

// Circuit returns the bitonic sorting circuit for p wires (p a power of
// two) as a sequence of parallel steps; Figure 5 of the paper shows the
// p = 8 instance. Phase i (1-based, i = 1..log p) contributes i steps with
// comparators spanning 2^j wires, j = i-1..0; the direction of a
// comparator in phase i depends on bit i of its lower wire.
func Circuit(p int) [][]Comparator {
	if p <= 0 || p&(p-1) != 0 {
		panic(fmt.Sprintf("bitonic: %d wires is not a power of two", p))
	}
	logP := 0
	for 1<<logP < p {
		logP++
	}
	var steps [][]Comparator
	for i := 1; i <= logP; i++ {
		for j := i - 1; j >= 0; j-- {
			var step []Comparator
			for w := 0; w < p; w++ {
				if w&(1<<j) != 0 {
					continue
				}
				step = append(step, Comparator{
					Lo:  w,
					Hi:  w | 1<<j,
					Asc: w>>i&1 == 0,
				})
			}
			steps = append(steps, step)
		}
	}
	return steps
}

// genKeys produces the input keys of a wire.
func genKeys(seed uint64, wire, m int) []int32 {
	rng := xrand.New(seed ^ uint64(wire+1)*0x9e3779b97f4a7c15)
	keys := make([]int32, m)
	for i := range keys {
		keys[i] = int32(rng.Uint64())
	}
	return keys
}

// mergeSplit merges two sorted runs and returns the lower or upper half.
func mergeSplit(a, b []int32, lower bool) []int32 {
	m := len(a)
	out := make([]int32, m)
	if lower {
		i, j := 0, 0
		for k := 0; k < m; k++ {
			if j >= m || (i < m && a[i] <= b[j]) {
				out[k] = a[i]
				i++
			} else {
				out[k] = b[j]
				j++
			}
		}
		return out
	}
	i, j := m-1, m-1
	for k := m - 1; k >= 0; k-- {
		if j < 0 || (i >= 0 && a[i] > b[j]) {
			out[k] = a[i]
			i--
		} else {
			out[k] = b[j]
			j--
		}
	}
	return out
}

// sortCost is the CPU time of the initial local sort.
func (c Config) sortCost() float64 {
	m := c.KeysPerProc
	logM := 0
	for 1<<logM < m {
		logM++
	}
	return float64(m*logM) * c.CompareUS
}

// keepsLower reports whether wire w keeps the lower half in comparator cmp.
func keepsLower(cmp Comparator, w int) bool {
	return (w == cmp.Lo) == cmp.Asc
}

// RunDSM executes bitonic sorting through the machine's data management
// strategy. The machine's processor count must be a power of two.
func RunDSM(m *core.Machine, cfg Config) (Result, error) {
	if m.Strat == nil {
		return Result{}, fmt.Errorf("bitonic: machine has no data management strategy (use RunHandOpt, or build the machine with one)")
	}
	p := m.P()
	if p&(p-1) != 0 {
		return Result{}, fmt.Errorf("bitonic: %d processors is not a power of two", p)
	}
	keyBytes := 4 * cfg.KeysPerProc
	steps := Circuit(p)
	tree := m.Tree

	// wireOf[proc] is the wire the processor simulates (its leaf number);
	// procOf[wire] the inverse.
	procOf := tree.ProcOfLeaf
	wireOf := make([]int, p)
	for w, pr := range procOf {
		wireOf[pr] = w
	}

	// One global variable per wire, holding the wire's current keys.
	vars := make([]core.VarID, p)
	for w := 0; w < p; w++ {
		var keys []int32
		if cfg.Check {
			keys = genKeys(cfg.Seed, w, cfg.KeysPerProc)
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		}
		vars[w] = m.AllocAt(procOf[w], keyBytes, keys)
	}

	// comparatorOf[step] indexed by wire.
	cmpOf := make([]map[int]Comparator, len(steps))
	for si, step := range steps {
		cmpOf[si] = make(map[int]Comparator, len(step))
		for _, c := range step {
			cmpOf[si][c.Lo] = c
			cmpOf[si][c.Hi] = c
		}
	}

	runErr := m.Run(func(pr *core.Proc) {
		w := wireOf[pr.ID]
		if cfg.WithCompute {
			pr.Compute(cfg.sortCost())
		}
		for si := range steps {
			cmp := cmpOf[si][w]
			partner := cmp.Lo + cmp.Hi - w
			other := pr.Read(vars[partner])
			var next []int32
			if cfg.Check {
				// Reading the own variable is a local cache hit: the
				// processor wrote it last step (or created it).
				mine := pr.Read(vars[w]).([]int32)
				next = mergeSplit(mine, other.([]int32), keepsLower(cmp, w))
			}
			if cfg.WithCompute {
				pr.Compute(float64(2*cfg.KeysPerProc) * cfg.CompareUS)
			}
			// The write must not overtake the partner's read of the old
			// value, and the next step's read must see the new value.
			pr.Barrier()
			pr.Write(vars[w], next)
			pr.Barrier()
		}
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res := Result{ElapsedUS: m.Elapsed(), Steps: len(steps)}
	if cfg.Check {
		if err := verifySorted(m, vars, cfg); err != nil {
			return res, err
		}
		res.Verified = true
	}
	return res, nil
}

// verifySorted checks that the wires, in leaf order, hold the ascending
// sorted multiset of all input keys.
func verifySorted(m *core.Machine, vars []core.VarID, cfg Config) error {
	var all []int32
	var prev int32
	first := true
	for w := range vars {
		keys := m.Var(vars[w]).Data.([]int32)
		if len(keys) != cfg.KeysPerProc {
			return fmt.Errorf("bitonic: wire %d holds %d keys", w, len(keys))
		}
		for _, k := range keys {
			if !first && k < prev {
				return fmt.Errorf("bitonic: output not sorted at wire %d", w)
			}
			prev, first = k, false
			all = append(all, k)
		}
	}
	var want []int32
	for w := range vars {
		want = append(want, genKeys(cfg.Seed, w, cfg.KeysPerProc)...)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := range want {
		if all[i] != want[i] {
			return fmt.Errorf("bitonic: output multiset differs from input at %d", i)
		}
	}
	return nil
}

// RunHandOpt executes the hand-optimized message passing strategy: two
// messages between the nodes of every merge&split, no barriers (message
// arrival is the synchronization).
func RunHandOpt(m *core.Machine, cfg Config) (Result, error) {
	p := m.P()
	if p&(p-1) != 0 {
		return Result{}, fmt.Errorf("bitonic: %d processors is not a power of two", p)
	}
	keyBytes := 4 * cfg.KeysPerProc
	steps := Circuit(p)
	tree := m.Tree
	procOf := tree.ProcOfLeaf
	wireOf := make([]int, p)
	for w, pr := range procOf {
		wireOf[pr] = w
	}
	cmpOf := make([]map[int]Comparator, len(steps))
	for si, step := range steps {
		cmpOf[si] = make(map[int]Comparator, len(step))
		for _, c := range step {
			cmpOf[si][c.Lo] = c
			cmpOf[si][c.Hi] = c
		}
	}

	final := make([][]int32, p)
	runErr := m.Run(func(pr *core.Proc) {
		w := wireOf[pr.ID]
		var keys []int32
		if cfg.Check {
			keys = genKeys(cfg.Seed, w, cfg.KeysPerProc)
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		}
		if cfg.WithCompute {
			pr.Compute(cfg.sortCost())
		}
		for si := range steps {
			cmp := cmpOf[si][w]
			partner := cmp.Lo + cmp.Hi - w
			m.Net.SendFrom(pr.Proc, &mesh.Msg{
				Src: pr.ID, Dst: procOf[partner],
				Size: core.HeaderBytes + keyBytes,
				Kind: mesh.KindInbox, Tag: si,
				Payload: keys,
			})
			got := m.Net.Recv(pr.Proc, pr.ID, si)
			if cfg.Check {
				keys = mergeSplit(keys, got.Payload.([]int32), keepsLower(cmp, w))
			}
			if cfg.WithCompute {
				pr.Compute(float64(2*cfg.KeysPerProc) * cfg.CompareUS)
			}
		}
		final[w] = keys
	})
	if runErr != nil {
		return Result{}, runErr
	}
	res := Result{ElapsedUS: m.Elapsed(), Steps: len(steps)}
	if cfg.Check {
		var prev int32
		firstKey := true
		count := 0
		for w := 0; w < p; w++ {
			for _, k := range final[w] {
				if !firstKey && k < prev {
					return res, fmt.Errorf("bitonic: hand-opt output not sorted at wire %d", w)
				}
				prev, firstKey = k, false
				count++
			}
		}
		if count != p*cfg.KeysPerProc {
			return res, fmt.Errorf("bitonic: hand-opt lost keys: %d of %d", count, p*cfg.KeysPerProc)
		}
		res.Verified = true
	}
	return res, nil
}
