package bitonic

import "encoding/gob"

// Key slices live in machine variables and hand-optimized message
// payloads, so they must be gob-registered for a snapshot of a
// bitonic-warmed machine to persist to disk (diva/snapstore).
func init() {
	gob.Register([]int32(nil))
}
