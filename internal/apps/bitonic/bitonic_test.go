package bitonic

import (
	"sort"
	"testing"
	"testing/quick"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
)

func newMachine(rows, cols int, f core.Factory, spec decomp.Spec) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols, Seed: 77, Tree: spec, Strategy: f,
	})
}

// TestCircuitFigure5 pins the structure of the paper's Figure 5 (P = 8):
// the circuit has 6 steps (phases of 1+2+3 steps) with 4 comparators each.
func TestCircuitFigure5(t *testing.T) {
	steps := Circuit(8)
	if len(steps) != 6 {
		t.Fatalf("8-wire circuit has %d steps, want 6", len(steps))
	}
	for si, step := range steps {
		if len(step) != 4 {
			t.Fatalf("step %d has %d comparators, want 4", si, len(step))
		}
	}
	// Phase 1 (step 0): comparators [0:1][2:3][4:5][6:7], alternating
	// direction: blocks of 2 sorted ascending/descending alternately.
	first := steps[0]
	for ci, c := range first {
		if c.Hi != c.Lo+1 || c.Lo != 2*ci {
			t.Fatalf("step 0 comparator %d = %+v", ci, c)
		}
		wantAsc := ci%2 == 0
		if c.Asc != wantAsc {
			t.Fatalf("step 0 comparator %d direction %v, want %v", ci, c.Asc, wantAsc)
		}
	}
	// Final phase (steps 3,4,5): all ascending, spans 4, 2, 1.
	for si, span := range map[int]int{3: 4, 4: 2, 5: 1} {
		for _, c := range steps[si] {
			if !c.Asc {
				t.Fatalf("final-phase step %d has a descending comparator", si)
			}
			if c.Hi-c.Lo != span {
				t.Fatalf("step %d span %d, want %d", si, c.Hi-c.Lo, span)
			}
		}
	}
}

// TestCircuitZeroOnePrinciple: by the 0-1 principle, a comparator network
// sorts all inputs iff it sorts all 0-1 inputs. Exhaustively check P=8 and
// P=16.
func TestCircuitZeroOnePrinciple(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		steps := Circuit(p)
		for mask := 0; mask < 1<<p; mask++ {
			wires := make([]int, p)
			for w := range wires {
				wires[w] = mask >> w & 1
			}
			for _, step := range steps {
				for _, c := range step {
					lo, hi := wires[c.Lo], wires[c.Hi]
					if c.Asc && lo > hi || !c.Asc && lo < hi {
						wires[c.Lo], wires[c.Hi] = hi, lo
					}
				}
			}
			for w := 1; w < p; w++ {
				if wires[w-1] > wires[w] {
					t.Fatalf("P=%d: circuit fails on 0-1 input %b", p, mask)
				}
			}
		}
	}
}

func TestCircuitStepCount(t *testing.T) {
	// logP(logP+1)/2 steps.
	for p, want := range map[int]int{2: 1, 4: 3, 8: 6, 16: 10, 256: 36} {
		if got := len(Circuit(p)); got != want {
			t.Errorf("Circuit(%d) has %d steps, want %d", p, got, want)
		}
	}
}

func TestMergeSplit(t *testing.T) {
	a := []int32{1, 4, 6}
	b := []int32{2, 3, 9}
	lo := mergeSplit(a, b, true)
	hi := mergeSplit(a, b, false)
	wantLo := []int32{1, 2, 3}
	wantHi := []int32{4, 6, 9}
	for i := range lo {
		if lo[i] != wantLo[i] || hi[i] != wantHi[i] {
			t.Fatalf("mergeSplit = %v / %v, want %v / %v", lo, hi, wantLo, wantHi)
		}
	}
}

func TestMergeSplitProperty(t *testing.T) {
	check := func(xs, ys []int32) bool {
		if len(xs) > len(ys) {
			xs = xs[:len(ys)]
		} else {
			ys = ys[:len(xs)]
		}
		if len(xs) == 0 {
			return true
		}
		sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
		sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
		lo := mergeSplit(xs, ys, true)
		hi := mergeSplit(xs, ys, false)
		// Union must be the input multiset; lo sorted ≤ hi sorted.
		all := append(append([]int32{}, lo...), hi...)
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		want := append(append([]int32{}, xs...), ys...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if all[i] != want[i] {
				return false
			}
		}
		return lo[len(lo)-1] <= hi[0]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDSMSortCorrect(t *testing.T) {
	for name, f := range map[string]core.Factory{
		"fixedhome":   fixedhome.Factory(),
		"accesstree2": accesstree.Factory(),
	} {
		t.Run(name, func(t *testing.T) {
			m := newMachine(2, 2, f, decomp.Ary2)
			res, err := RunDSM(m, Config{KeysPerProc: 32, Check: true, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified || res.Steps != 3 {
				t.Fatalf("res = %+v", res)
			}
		})
	}
}

func TestDSMSortCorrect4x4(t *testing.T) {
	for _, spec := range []decomp.Spec{decomp.Ary2, decomp.Ary2K4, decomp.Ary4} {
		t.Run(spec.Name(), func(t *testing.T) {
			m := newMachine(4, 4, accesstree.Factory(), spec)
			res, err := RunDSM(m, Config{KeysPerProc: 16, Check: true, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Verified {
				t.Fatal("not verified")
			}
		})
	}
}

func TestHandOptSortCorrect(t *testing.T) {
	m := newMachine(4, 4, nil, decomp.Ary2)
	res, err := RunHandOpt(m, Config{KeysPerProc: 64, Check: true, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Steps != 10 {
		t.Fatalf("res = %+v", res)
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	m := newMachine(3, 3, accesstree.Factory(), decomp.Ary2)
	if _, err := RunDSM(m, Config{KeysPerProc: 8}); err == nil {
		t.Fatal("9 processors accepted")
	}
}

// TestHandOptCongestionOptimal: the 2-4-ary access tree must produce more
// congestion than the pairwise exchange, but within a small factor (the
// paper's ratio converges to about 3).
func TestStrategyOrdering(t *testing.T) {
	cfg := Config{KeysPerProc: 256}
	hand := func() uint64 {
		m := newMachine(4, 4, nil, decomp.Ary2)
		if _, err := RunHandOpt(m, cfg); err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes
	}()
	at := func() uint64 {
		m := newMachine(4, 4, accesstree.Factory(), decomp.Ary2K4)
		if _, err := RunDSM(m, cfg); err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes
	}()
	fh := func() uint64 {
		m := newMachine(4, 4, fixedhome.Factory(), decomp.Ary2)
		if _, err := RunDSM(m, cfg); err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes
	}()
	if !(hand < at && at < fh) {
		t.Fatalf("congestion ordering violated: hand=%d at=%d fh=%d", hand, at, fh)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		m := newMachine(4, 4, accesstree.Factory(), decomp.Ary2K4)
		res, err := RunDSM(m, Config{KeysPerProc: 64})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedUS
	}
	if run() != run() {
		t.Fatal("nondeterministic elapsed time")
	}
}

func TestSingleProcessorSort(t *testing.T) {
	m := newMachine(1, 1, accesstree.Factory(), decomp.Ary2)
	res, err := RunDSM(m, Config{KeysPerProc: 16, Check: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified || res.Steps != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestWithComputeChargesSortTime(t *testing.T) {
	run := func(wc bool) float64 {
		m := newMachine(2, 2, accesstree.Factory(), decomp.Ary2)
		res, err := RunDSM(m, Config{KeysPerProc: 128, WithCompute: wc, CompareUS: 3.45, Check: true, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.ElapsedUS
	}
	if run(true) <= run(false) {
		t.Fatal("compute cost did not extend the run")
	}
}
