package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"diva/spec"
)

// post sends one spec document and decodes the response.
func post(t *testing.T, ts *httptest.Server, doc string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// mustServer builds a server or fails the test.
func mustServer(t *testing.T, o Options) *Server {
	t.Helper()
	s, err := New(o)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func runDoc(seed uint64) string {
	return fmt.Sprintf(`{"rows":4,"cols":4,"strategy":"at4","seed":%d,
		"workload":{"name":"bitonic","keys":8,"check":true}}`, seed)
}

// TestRunEndpoint pins the happy path: a valid spec returns the simulated
// result with a fingerprint.
func TestRunEndpoint(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Options{Workers: 2}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, runDoc(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr RunResponse
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Workload != "bitonic" || rr.Strategy != "at4" || rr.Topology != "mesh" {
		t.Errorf("identity fields wrong: %+v", rr)
	}
	if rr.ElapsedUS <= 0 || rr.Events == 0 {
		t.Errorf("no simulated outcome: %+v", rr)
	}
	if len(rr.Fingerprint) != 18 || rr.Fingerprint[:2] != "0x" || rr.Fingerprint == "0x0000000000000000" {
		t.Errorf("bad fingerprint %q", rr.Fingerprint)
	}
	if !rr.Verified {
		t.Errorf("check requested but not verified: %+v", rr)
	}
}

// TestConcurrentMatchesSequential is the service determinism contract: 64
// concurrent queries return per-query fingerprints identical to the same
// queries run sequentially.
func TestConcurrentMatchesSequential(t *testing.T) {
	const clients = 64
	ts := httptest.NewServer(mustServer(t, Options{Workers: 8, Queue: clients}).Handler())
	defer ts.Close()

	// Sequential baseline: one response per distinct seed.
	seqFP := make(map[uint64]string)
	for seed := uint64(1); seed <= 8; seed++ {
		resp, body := post(t, ts, runDoc(seed))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, resp.StatusCode, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		seqFP[seed] = rr.Fingerprint
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		seed := uint64(1 + i%8)
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
				bytes.NewReader([]byte(runDoc(seed))))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var rr RunResponse
			if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("seed %d: status %d", seed, resp.StatusCode)
				return
			}
			if rr.Fingerprint != seqFP[seed] {
				errs <- fmt.Errorf("seed %d: concurrent fingerprint %s != sequential %s",
					seed, rr.Fingerprint, seqFP[seed])
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSaturation429 pins the admission control: with one worker and a
// queue of one, a third concurrent request is shed with 429.
func TestSaturation429(t *testing.T) {
	srv := mustServer(t, Options{Workers: 1, Queue: 1})
	hold := make(chan struct{})
	entered := make(chan struct{}, 8)
	srv.gate = func() {
		entered <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	fire := func() {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
				bytes.NewReader([]byte(runDoc(1))))
			if err != nil {
				results <- result{err: err}
				return
			}
			resp.Body.Close()
			results <- result{status: resp.StatusCode}
		}()
	}
	fire()
	<-entered // request 1 holds the only worker
	fire()    // request 2 waits in the queue

	// Wait until request 2 is actually admitted (healthz bypasses the
	// admission gate, so it answers while the worker is held). Then a
	// third request deterministically exceeds Workers+Queue.
	for deadline := time.Now().Add(5 * time.Second); ; {
		resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var hz struct {
			Queued int64 `json:"queued"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if hz.Queued >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request 2 never queued (queued=%d)", hz.Queued)
		}
		time.Sleep(time.Millisecond)
	}
	third, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
		bytes.NewReader([]byte(runDoc(1))))
	if err != nil {
		t.Fatal(err)
	}
	if third.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("request 3: status %d, want 429", third.StatusCode)
	}
	third.Body.Close()

	close(hold) // release requests 1 and 2
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.status != http.StatusOK {
			t.Errorf("held request finished with status %d", r.status)
		}
	}

	// The shed request must show up in the health counters.
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status   string `json:"status"`
		Runs     int64  `json:"runs"`
		Rejected int64  `json:"rejected"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Runs != 2 || hz.Rejected != 1 {
		t.Errorf("healthz %+v, want status ok, 2 runs, 1 rejected", hz)
	}
}

// TestValidationErrors pins the 400 surface: unknown fields and invalid
// specs are rejected with the per-field breakdown.
func TestValidationErrors(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Options{}).Handler())
	defer ts.Close()

	resp, body := post(t, ts, `{"workload":{"name":"matmul"},"bogus":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d: %s", resp.StatusCode, body)
	}

	resp, body = post(t, ts, `{"workload":{"name":"matmul"},"topology":"ring"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d: %s", resp.StatusCode, body)
	}
	var er struct {
		Error  string            `json:"error"`
		Fields []spec.FieldError `json:"fields"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	fields := map[string]bool{}
	for _, f := range er.Fields {
		fields[f.Field] = true
	}
	if !fields["topology"] || !fields["strategy"] {
		t.Errorf("field breakdown missing topology/strategy: %+v", er.Fields)
	}

	if resp, body = post(t, ts, `not json`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d: %s", resp.StatusCode, body)
	}

	getResp, err := ts.Client().Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", getResp.StatusCode)
	}
}

// TestRegistriesEndpoint pins the introspection surface.
func TestRegistriesEndpoint(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Options{}).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/registries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reg struct {
		Strategies []spec.Registered `json:"strategies"`
		Topologies []spec.Registered `json:"topologies"`
		Workloads  []spec.Registered `json:"workloads"`
		Trees      []string          `json:"trees"`
		Faults     []spec.Registered `json:"faults"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if len(reg.Strategies) == 0 || len(reg.Topologies) != 7 ||
		len(reg.Workloads) != 6 || len(reg.Trees) != 6 || len(reg.Faults) != 5 {
		t.Errorf("registries incomplete: %d strategies, %d topologies, %d workloads, %d trees, %d fault fields",
			len(reg.Strategies), len(reg.Topologies), len(reg.Workloads), len(reg.Trees), len(reg.Faults))
	}
	found := false
	for _, tp := range reg.Topologies {
		if strings.HasPrefix(tp.Name, "graph:") {
			found = true
		}
	}
	if !found {
		t.Errorf("registries expose no graph:* topology: %v", reg.Topologies)
	}
}

// TestSnapshotCacheSharing pins that specs differing only in workload
// share one base machine snapshot.
func TestSnapshotCacheSharing(t *testing.T) {
	srv := mustServer(t, Options{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	docs := []string{
		`{"rows":4,"cols":4,"strategy":"at4","seed":1,"workload":{"name":"bitonic","keys":8}}`,
		`{"rows":4,"cols":4,"strategy":"at4","seed":1,"workload":{"name":"matmul","block":16}}`,
		`{"rows":4,"cols":4,"strategy":"fixedhome","seed":1,"workload":{"name":"matmul","block":16}}`,
	}
	for _, doc := range docs {
		if resp, body := post(t, ts, doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	if n := srv.snaps.len(); n != 2 {
		t.Errorf("snapshot cache holds %d machines, want 2 (workloads share)", n)
	}
}
