// Package serve implements simulation-as-a-service: an HTTP server that
// accepts serialized run descriptions (diva/spec documents) and answers
// with simulated results and the event-order fingerprint.
//
// The server is built on machine snapshot/fork. Each distinct machine
// description is constructed once, snapshotted at birth, and cached;
// every request forks an independent machine from the snapshot and runs
// its workload there. Forks share no mutable state, so concurrent queries
// are safe, and fork determinism guarantees a request's result is
// bit-identical however loaded the server is — the smoke tests pin
// concurrent fingerprints against sequential ones.
//
// Admission control is a bounded worker pool plus a bounded wait queue:
// at most Workers runs execute at once, at most Queue more wait, and
// anything beyond that is rejected immediately with 429 — a saturated
// simulation server must shed load, not accumulate unbounded arenas.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"

	"diva"
	"diva/spec"
)

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Workers bounds the simulations running concurrently (default 4).
	Workers int
	// Queue bounds the requests waiting for a worker beyond those running
	// (default 2×Workers). Requests beyond Workers+Queue get 429.
	Queue int
	// SnapshotCache bounds the distinct machine descriptions whose birth
	// snapshots are kept warm (default 8, least recently used eviction).
	SnapshotCache int
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	if o.SnapshotCache <= 0 {
		o.SnapshotCache = 8
	}
}

// Server handles the /v1 simulation API. Create with New, expose with
// Handler.
type Server struct {
	opts Options
	mux  *http.ServeMux
	sem  chan struct{}

	queued   atomic.Int64 // requests admitted and not yet finished
	inflight atomic.Int64 // requests holding a worker
	runs     atomic.Int64 // completed successfully
	rejected atomic.Int64 // shed with 429

	snaps snapCache

	// gate, when set by a test, runs while holding a worker slot — it
	// lets the saturation test pin the 429 path deterministically.
	gate func()
}

// New returns a server with the given options.
func New(o Options) *Server {
	o.defaults()
	s := &Server{opts: o, sem: make(chan struct{}, o.Workers)}
	s.snaps.cap = o.SnapshotCache
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/registries", s.handleRegistries)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return s
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// RunResponse is the /v1/run answer: the run's identity, the simulated
// outcome and the event-order fingerprint. Two responses with equal
// fingerprints executed the bit-identical event trajectory.
type RunResponse struct {
	Workload    string  `json:"workload"`
	Topology    string  `json:"topology"`
	Strategy    string  `json:"strategy"`
	Shards      int     `json:"shards"`
	Seed        uint64  `json:"seed"`
	ElapsedUS   float64 `json:"elapsed_us"`
	Fingerprint string  `json:"fingerprint"`
	Events      uint64  `json:"events"`
	Verified    bool    `json:"verified"`
	Congestion  Cong    `json:"congestion"`
	Evictions   uint64  `json:"evictions,omitempty"`
	// Faults reports the degradation counters of a faulty run; absent on
	// fault-free machines.
	Faults *FaultSummary `json:"faults,omitempty"`
}

// Cong is the congestion summary of a run.
type Cong struct {
	MaxMsgs    uint64 `json:"max_msgs"`
	MaxBytes   uint64 `json:"max_bytes"`
	TotalMsgs  uint64 `json:"total_msgs"`
	TotalBytes uint64 `json:"total_bytes"`
}

// FaultSummary is the degradation summary of a faulty run: availability
// (fraction of messages deliverable at departure), spanning-tree re-route
// counts and path stretch, and the recovery traffic of retransmissions.
type FaultSummary struct {
	Availability float64 `json:"availability"`
	Routed       uint64  `json:"routed"`
	Rerouted     uint64  `json:"rerouted"`
	Stretch      float64 `json:"stretch"`
	Held         uint64  `json:"held"`
	RetryMsgs    uint64  `json:"retry_msgs"`
	RetryBytes   uint64  `json:"retry_bytes"`
	HeldUS       float64 `json:"held_us"`
}

// errorResponse is every non-200 body: a message, plus the per-field
// breakdown for validation failures.
type errorResponse struct {
	Error  string            `json:"error"`
	Fields []spec.FieldError `json:"fields,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST a spec document", nil)
		return
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var sp spec.Spec
	if err := dec.Decode(&sp); err != nil {
		writeError(w, http.StatusBadRequest, "malformed spec: "+err.Error(), nil)
		return
	}
	if err := sp.Validate(); err != nil {
		var fields []spec.FieldError
		if ve, ok := err.(*spec.ValidationError); ok {
			fields = ve.Fields
		}
		writeError(w, http.StatusBadRequest, err.Error(), fields)
		return
	}

	// Admission: at most Workers running plus Queue waiting; shed beyond.
	if s.queued.Add(1) > int64(s.opts.Workers+s.opts.Queue) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server saturated: try again later", nil)
		return
	}
	defer s.queued.Add(-1)
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	if s.gate != nil {
		s.gate()
	}

	resp, status, err := s.run(sp)
	if err != nil {
		writeError(w, status, err.Error(), nil)
		return
	}
	s.runs.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// run executes one validated spec on a fork of the cached base machine.
func (s *Server) run(sp spec.Spec) (*RunResponse, int, error) {
	n := sp.Normalized()
	snap, err := s.snaps.get(n)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	m, err := diva.Fork(snap, diva.ForkConcurrent(true))
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	wl, err := diva.WorkloadFromSpec(n)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	res, err := wl.Run(m, nil)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("run failed: %w", err)
	}
	c := m.Net.Congestion(nil)
	stratName := n.Strategy
	if stratName == "" {
		stratName = "handopt"
	}
	return &RunResponse{
		Workload:    wl.Name(),
		Topology:    n.Topology,
		Strategy:    stratName,
		Shards:      m.Shards(),
		Seed:        n.Seed,
		ElapsedUS:   res.ElapsedUS,
		Fingerprint: fmt.Sprintf("0x%016x", m.K.Fingerprint()),
		Events:      m.K.Stat.Events,
		Verified:    res.Verified,
		Congestion: Cong{
			MaxMsgs: c.MaxMsgs, MaxBytes: c.MaxBytes,
			TotalMsgs: c.TotalMsgs, TotalBytes: c.TotalBytes,
		},
		Evictions: diva.TotalEvictions(m),
		Faults:    faultSummary(m),
	}, 0, nil
}

// faultSummary extracts the degradation counters; nil when the machine
// ran fault-free.
func faultSummary(m *diva.Machine) *FaultSummary {
	if m.Net.FaultSchedule() == nil {
		return nil
	}
	st := m.Net.FaultStats()
	return &FaultSummary{
		Availability: st.Availability(),
		Routed:       st.Routed,
		Rerouted:     st.Rerouted,
		Stretch:      st.Stretch(),
		Held:         st.Held,
		RetryMsgs:    st.RetryMsgs,
		RetryBytes:   st.RetryBytes,
		HeldUS:       st.HeldUS,
	}
}

// registriesResponse lists every registered name the spec layer accepts.
type registriesResponse struct {
	Strategies []diva.RegistryEntry `json:"strategies"`
	Topologies []diva.RegistryEntry `json:"topologies"`
	Workloads  []diva.RegistryEntry `json:"workloads"`
	Trees      []string             `json:"trees"`
	// Faults documents the fault-schedule spec fields (spec.Fault).
	Faults []diva.RegistryEntry `json:"faults"`
}

func (s *Server) handleRegistries(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, registriesResponse{
		Strategies: diva.Strategies(),
		Topologies: diva.Topologies(),
		Workloads:  diva.Workloads(),
		Trees:      spec.TreeNames(),
		Faults:     spec.FaultFields(),
	})
}

// healthzResponse reports liveness and the admission counters.
type healthzResponse struct {
	Status    string `json:"status"`
	Runs      int64  `json:"runs"`
	Inflight  int64  `json:"inflight"`
	Queued    int64  `json:"queued"`
	Rejected  int64  `json:"rejected"`
	Snapshots int    `json:"snapshots"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:    "ok",
		Runs:      s.runs.Load(),
		Inflight:  s.inflight.Load(),
		Queued:    s.queued.Load(),
		Rejected:  s.rejected.Load(),
		Snapshots: s.snaps.len(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string, fields []spec.FieldError) {
	writeJSON(w, status, errorResponse{Error: msg, Fields: fields})
}

// snapCache caches birth snapshots of base machines, one per distinct
// machine description, with least-recently-used eviction. A base machine
// is built once, snapshotted before any process runs, and every request
// forks from the snapshot — construction cost is amortized across
// requests, and forks give per-request isolation.
type snapCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*snapEntry
	order []string // least recently used first
}

type snapEntry struct {
	once sync.Once
	snap *diva.Snapshot
	err  error
}

// get returns the snapshot for the machine half of a normalized spec,
// building the base machine on first use. Concurrent requests for the
// same machine build it once (sync.Once); requests for different
// machines build in parallel.
func (c *snapCache) get(n spec.Spec) (*diva.Snapshot, error) {
	// The cache key is the canonical JSON of the machine fields only:
	// specs differing just in workload share one base machine.
	n.Workload = spec.Workload{}
	key, err := json.Marshal(n)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*snapEntry)
	}
	e, ok := c.m[string(key)]
	if ok {
		c.touch(string(key))
	} else {
		e = &snapEntry{}
		c.m[string(key)] = e
		c.order = append(c.order, string(key))
		for len(c.order) > c.cap {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		var m *diva.Machine
		m, e.err = diva.MachineFromSpec(n, diva.WithConcurrent(true))
		if e.err != nil {
			return
		}
		e.snap, e.err = m.Snapshot()
	})
	return e.snap, e.err
}

func (c *snapCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

func (c *snapCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
