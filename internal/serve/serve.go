// Package serve implements simulation-as-a-service: an HTTP server that
// accepts serialized run descriptions (diva/spec documents) and answers
// with simulated results and the event-order fingerprint.
//
// The server is built on machine snapshot/fork. Each distinct machine
// description is constructed once, snapshotted at birth, and cached;
// every request forks an independent machine from the snapshot and runs
// its workload there. Forks share no mutable state, so concurrent queries
// are safe, and fork determinism guarantees a request's result is
// bit-identical however loaded the server is — the smoke tests pin
// concurrent fingerprints against sequential ones.
//
// Admission control is a bounded worker pool plus a bounded wait queue:
// at most Workers runs execute at once, at most Queue more wait, and
// anything beyond that is rejected immediately with 429 and a Retry-After
// derived from the queue depth — a saturated simulation server must shed
// load, not accumulate unbounded arenas.
//
// Operational hardening. Every run is tied to its request context: a
// client disconnect or a deadline (the spec's timeout_ms, capped by
// Options.RunTimeout) raises the kernel's cooperative cancellation flag
// and the run stops at the next checkpoint — deadline expiry answers 504
// with progress diagnostics, a vanished client just aborts the fork. A
// panicking run answers 500 and leaves the pool healthy. Drain stops
// admission (503 + Retry-After) and waits for in-flight runs, cancelling
// whatever is still running at the drain deadline. With Options.
// SnapshotDir set, warmed machine snapshots persist to a crash-consistent
// on-disk store (diva/snapstore): POST /v1/snapshots runs a warm-up spec
// once and answers a handle, /v1/run?snapshot=<handle> forks from the
// stored state — including after a server restart.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"diva"
	"diva/snapstore"
	"diva/spec"
)

// Options configures a Server. Zero values select the defaults.
type Options struct {
	// Workers bounds the simulations running concurrently (default 4).
	Workers int
	// Queue bounds the requests waiting for a worker beyond those running
	// (default 2×Workers). Requests beyond Workers+Queue get 429.
	Queue int
	// SnapshotCache bounds the distinct machine descriptions whose birth
	// snapshots are kept warm (default 8, least recently used eviction).
	SnapshotCache int
	// SnapshotDir, when non-empty, enables the on-disk snapshot store:
	// POST /v1/snapshots persists warmed machines there and
	// /v1/run?snapshot=<handle> forks from them, surviving restarts.
	SnapshotDir string
	// RunTimeout caps every run's wall-clock duration, in addition to the
	// per-request timeout_ms (the tighter bound wins). Zero means no
	// server-side cap.
	RunTimeout time.Duration
}

func (o *Options) defaults() {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	if o.SnapshotCache <= 0 {
		o.SnapshotCache = 8
	}
}

// maxSpecBytes bounds the request body: a spec document is small, and an
// unbounded read is a trivial memory DoS.
const maxSpecBytes = 1 << 20

// Server handles the /v1 simulation API. Create with New, expose with
// Handler, stop with Drain.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	sem   chan struct{}
	store *snapstore.Store // nil without Options.SnapshotDir

	// baseCtx is canceled at the drain deadline: it is the ancestor of
	// every run's context, so cancelling it aborts whatever is still
	// simulating.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	drainOnce  sync.Once
	wg         sync.WaitGroup // admitted requests

	queued      atomic.Int64 // requests admitted and not yet finished
	inflight    atomic.Int64 // requests holding a worker
	runs        atomic.Int64 // completed successfully
	rejected    atomic.Int64 // shed with 429
	panics      atomic.Int64 // runs that panicked (answered 500)
	timeouts    atomic.Int64 // runs canceled by deadline (answered 504)
	disconnects atomic.Int64 // runs aborted by client disconnect

	snaps snapCache

	encodeLogOnce sync.Once

	// gate, when set by a test, runs while holding a worker slot — it
	// lets the saturation, drain and panic tests pin their paths
	// deterministically.
	gate func()
}

// New returns a server with the given options. It fails only when
// Options.SnapshotDir is set but unusable.
func New(o Options) (*Server, error) {
	o.defaults()
	s := &Server{opts: o, sem: make(chan struct{}, o.Workers)}
	if o.SnapshotDir != "" {
		st, err := snapstore.Open(o.SnapshotDir)
		if err != nil {
			return nil, err
		}
		s.store = st
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.snaps.cap = o.SnapshotCache
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/snapshots", s.handleSnapshots)
	s.mux.HandleFunc("/v1/registries", s.handleRegistries)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the HTTP handler serving the /v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully stops the server: admission closes immediately (new
// runs get 503 with Retry-After; healthz keeps answering, reporting
// "draining"), in-flight runs get until timeout to finish, and whatever is
// still simulating at the deadline is canceled at its next kernel
// checkpoint. Drain returns when no run remains; it is idempotent, and
// concurrent calls all block until the first completes.
func (s *Server) Drain(timeout time.Duration) {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		t := time.AfterFunc(timeout, s.baseCancel)
		defer t.Stop()
		s.wg.Wait()
		s.baseCancel()
	})
	s.wg.Wait()
}

// RunResponse is the /v1/run answer: the run's identity, the simulated
// outcome and the event-order fingerprint. Two responses with equal
// fingerprints executed the bit-identical event trajectory.
type RunResponse struct {
	Workload    string  `json:"workload"`
	Topology    string  `json:"topology"`
	Strategy    string  `json:"strategy"`
	Shards      int     `json:"shards"`
	Seed        uint64  `json:"seed"`
	ElapsedUS   float64 `json:"elapsed_us"`
	Fingerprint string  `json:"fingerprint"`
	Events      uint64  `json:"events"`
	Verified    bool    `json:"verified"`
	Congestion  Cong    `json:"congestion"`
	Evictions   uint64  `json:"evictions,omitempty"`
	// Faults reports the degradation counters of a faulty run; absent on
	// fault-free machines.
	Faults *FaultSummary `json:"faults,omitempty"`
	// Recovery reports the reactive transport's counters; absent on
	// oracle-mode machines (the default).
	Recovery *RecoverySummary `json:"recovery,omitempty"`
}

// Cong is the congestion summary of a run.
type Cong struct {
	MaxMsgs    uint64 `json:"max_msgs"`
	MaxBytes   uint64 `json:"max_bytes"`
	TotalMsgs  uint64 `json:"total_msgs"`
	TotalBytes uint64 `json:"total_bytes"`
}

// FaultSummary is the degradation summary of a faulty run: availability
// (fraction of messages deliverable at departure), spanning-tree re-route
// counts and path stretch, and the recovery traffic of retransmissions.
type FaultSummary struct {
	Availability float64 `json:"availability"`
	Routed       uint64  `json:"routed"`
	Rerouted     uint64  `json:"rerouted"`
	Stretch      float64 `json:"stretch"`
	Held         uint64  `json:"held"`
	RetryMsgs    uint64  `json:"retry_msgs"`
	RetryBytes   uint64  `json:"retry_bytes"`
	HeldUS       float64 `json:"held_us"`
}

// RecoverySummary is the reactive-mode transport and failure-detector
// summary of a run: the traffic fault tolerance cost (acks,
// retransmissions, duplicates), the detector's outcomes (detections with
// mean latency, false timeouts, recovered suspects) and the strategy's
// recoveries (home failovers, re-issued requests).
type RecoverySummary struct {
	Dropped       uint64  `json:"dropped"`
	AckMsgs       uint64  `json:"ack_msgs"`
	AckBytes      uint64  `json:"ack_bytes"`
	Retransmits   uint64  `json:"retransmits"`
	DupDrops      uint64  `json:"dup_drops"`
	FalseTimeouts uint64  `json:"false_timeouts"`
	Detected      uint64  `json:"detected"`
	MeanDetectUS  float64 `json:"mean_detect_us"`
	Recovered     uint64  `json:"recovered"`
	Failovers     uint64  `json:"failovers"`
	Reissues      uint64  `json:"reissues"`
}

// SnapshotResponse is the POST /v1/snapshots answer.
type SnapshotResponse struct {
	Handle string `json:"handle"`
	Shards int    `json:"shards"`
	// Restored reports that the handle was recovered from disk rather than
	// warmed by this request — after a restart, typically.
	Restored bool `json:"restored,omitempty"`
}

// errorResponse is every non-200 body: a message, the per-field breakdown
// for validation failures, and the progress diagnostics of a 504 (how far
// the canceled run got, in events, simulated time and wall clock).
type errorResponse struct {
	Error        string            `json:"error"`
	Fields       []spec.FieldError `json:"fields,omitempty"`
	Events       uint64            `json:"events,omitempty"`
	SimElapsedUS float64           `json:"sim_elapsed_us,omitempty"`
	WallMS       int64             `json:"wall_ms,omitempty"`
}

// decodeSpec reads one bounded spec document from the request.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (spec.Spec, bool) {
	var sp spec.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("spec document exceeds %d bytes", tooBig.Limit), nil)
		} else {
			s.writeError(w, http.StatusBadRequest, "malformed spec: "+err.Error(), nil)
		}
		return sp, false
	}
	return sp, true
}

// admit applies admission control and registers the request with the
// drain group. On success the caller owns a worker slot and must call the
// returned release.
func (s *Server) admit(w http.ResponseWriter) (release func(), ok bool) {
	// The wg.Add precedes the draining check: Drain sets the flag before
	// waiting, so every request it must wait for is already registered.
	s.wg.Add(1)
	if s.draining.Load() {
		s.wg.Done()
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusServiceUnavailable, "server draining: not accepting new runs", nil)
		return nil, false
	}
	if q := s.queued.Add(1); q > int64(s.opts.Workers+s.opts.Queue) {
		s.queued.Add(-1)
		s.wg.Done()
		s.rejected.Add(1)
		// Estimate the queue drain time from its depth: with q-1 requests
		// ahead, a fresh attempt after depth/workers run-slots is likely to
		// be admitted.
		retry := 1 + (int(q)-1)/s.opts.Workers
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		s.writeError(w, http.StatusTooManyRequests, "server saturated: try again later", nil)
		return nil, false
	}
	s.sem <- struct{}{}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		<-s.sem
		s.queued.Add(-1)
		s.wg.Done()
	}, true
}

// runCtx derives the context governing one run: the request's own context
// (client disconnect), the server's drain deadline, and the effective
// timeout — the tighter of the spec's timeout_ms and Options.RunTimeout.
func (s *Server) runCtx(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.baseCtx, cancel)
	d := s.opts.RunTimeout
	if t := time.Duration(timeoutMS) * time.Millisecond; t > 0 && (d == 0 || t < d) {
		d = t
	}
	if d > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, d)
		prev := cancel
		cancel = func() { cancelT(); prev() }
	}
	prev := cancel
	return ctx, func() { stop(); prev() }
}

// finishRun classifies a run error and writes the response: client gone →
// nothing (the connection is dead), drain deadline → 503, request
// deadline → 504 with progress diagnostics, anything else → its status.
func (s *Server) finishRun(w http.ResponseWriter, r *http.Request, status int, err error, started time.Time) {
	var ce *diva.CanceledError
	if errors.As(err, &ce) {
		switch {
		case r.Context().Err() != nil:
			s.disconnects.Add(1)
			return
		case s.baseCtx.Err() != nil:
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, "server draining: run aborted", nil)
			return
		default:
			s.timeouts.Add(1)
			s.writeJSON(w, http.StatusGatewayTimeout, errorResponse{
				Error:        "deadline exceeded: run canceled at a kernel checkpoint",
				Events:       ce.Events,
				SimElapsedUS: float64(ce.At),
				WallMS:       time.Since(started).Milliseconds(),
			})
			return
		}
	}
	s.writeError(w, status, err.Error(), nil)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST a spec document", nil)
		return
	}
	sp, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	handle := r.URL.Query().Get("snapshot")
	if handle == "" {
		// Snapshot runs validate after merging with the stored machine
		// spec; plain runs validate the document as-is, up front.
		if err := sp.Validate(); err != nil {
			var fields []spec.FieldError
			if ve, ok := err.(*spec.ValidationError); ok {
				fields = ve.Fields
			}
			s.writeError(w, http.StatusBadRequest, err.Error(), fields)
			return
		}
	} else if s.store == nil {
		s.writeError(w, http.StatusNotImplemented, "snapshot store not configured (start with a snapshot directory)", nil)
		return
	}

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.runCtx(r, sp.TimeoutMS)
	defer cancel()
	started := time.Now()
	resp, status, err := s.runSafe(ctx, sp, handle)
	if err != nil {
		s.finishRun(w, r, status, err, started)
		return
	}
	s.runs.Add(1)
	s.writeJSON(w, http.StatusOK, resp)
}

// runSafe is run behind a panic barrier: one faulty run answers 500 and
// increments the panic counter instead of taking the process down.
func (s *Server) runSafe(ctx context.Context, sp spec.Spec, handle string) (resp *RunResponse, status int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			log.Printf("serve: run panicked: %v\n%s", r, debug.Stack())
			resp, status, err = nil, http.StatusInternalServerError, fmt.Errorf("internal error: run panicked")
		}
	}()
	if s.gate != nil {
		s.gate()
	}
	if err := ctx.Err(); err != nil {
		// The deadline (or the client) expired while queued: report it as a
		// canceled run that executed nothing.
		return nil, 0, &diva.CanceledError{}
	}
	return s.run(ctx, sp, handle)
}

// run executes one spec on a fork — of the cached base machine, or of the
// stored snapshot when a handle is given (the stored spec supplies the
// machine half; the request supplies the workload).
func (s *Server) run(ctx context.Context, sp spec.Spec, handle string) (*RunResponse, int, error) {
	n := sp.Normalized()
	var snap *diva.Snapshot
	if handle != "" {
		e, err := s.snapshotByHandle(handle)
		if err != nil {
			return nil, http.StatusNotFound, err
		}
		merged := e.sp
		merged.Workload = sp.Workload
		merged.TimeoutMS = sp.TimeoutMS
		if err := merged.Validate(); err != nil {
			return nil, http.StatusBadRequest, err
		}
		n = merged.Normalized()
		snap = e.snap
	} else {
		var err error
		snap, err = s.snaps.base(n)
		if err != nil {
			return nil, http.StatusUnprocessableEntity, err
		}
	}
	m, err := diva.Fork(snap, diva.ForkConcurrent(true))
	if err != nil {
		return nil, http.StatusInternalServerError, err
	}
	wl, err := diva.WorkloadFromSpec(n)
	if err != nil {
		return nil, http.StatusUnprocessableEntity, err
	}
	res, err := diva.WorkloadContext(ctx, wl).Run(m, nil)
	if err != nil {
		if errors.Is(err, diva.ErrCanceled) {
			return nil, 0, err
		}
		return nil, http.StatusUnprocessableEntity, fmt.Errorf("run failed: %w", err)
	}
	c := m.Net.Congestion(nil)
	stratName := n.Strategy
	if stratName == "" {
		stratName = "handopt"
	}
	return &RunResponse{
		Workload:    wl.Name(),
		Topology:    n.Topology,
		Strategy:    stratName,
		Shards:      m.Shards(),
		Seed:        n.Seed,
		ElapsedUS:   res.ElapsedUS,
		Fingerprint: fmt.Sprintf("0x%016x", m.K.Fingerprint()),
		Events:      m.K.Stat.Events,
		Verified:    res.Verified,
		Congestion: Cong{
			MaxMsgs: c.MaxMsgs, MaxBytes: c.MaxBytes,
			TotalMsgs: c.TotalMsgs, TotalBytes: c.TotalBytes,
		},
		Evictions: diva.TotalEvictions(m),
		Faults:    faultSummary(m),
		Recovery:  recoverySummary(m),
	}, 0, nil
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, http.StatusNotImplemented, "snapshot store not configured (start with a snapshot directory)", nil)
		return
	}
	switch r.Method {
	case http.MethodGet:
		entries, err := s.store.List()
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, err.Error(), nil)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]interface{}{"snapshots": entries})
	case http.MethodPost:
		s.handleSnapshotCreate(w, r)
	default:
		s.writeError(w, http.StatusMethodNotAllowed, "POST a warm-up spec, or GET the list", nil)
	}
}

// handleSnapshotCreate warms a machine from the posted spec (machine +
// warm-up workload), snapshots it at quiescence and persists it under its
// canonical handle. Idempotent: re-posting an existing handle answers
// without re-running, including after a restart (the store is consulted
// before warming).
func (s *Server) handleSnapshotCreate(w http.ResponseWriter, r *http.Request) {
	sp, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	if err := sp.Validate(); err != nil {
		var fields []spec.FieldError
		if ve, ok := err.(*spec.ValidationError); ok {
			fields = ve.Fields
		}
		s.writeError(w, http.StatusBadRequest, err.Error(), fields)
		return
	}

	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()

	ctx, cancel := s.runCtx(r, sp.TimeoutMS)
	defer cancel()
	started := time.Now()
	resp, status, err := s.snapshotSafe(ctx, sp)
	if err != nil {
		s.finishRun(w, r, status, err, started)
		return
	}
	s.runs.Add(1)
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) snapshotSafe(ctx context.Context, sp spec.Spec) (resp *SnapshotResponse, status int, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			log.Printf("serve: snapshot warm-up panicked: %v\n%s", r, debug.Stack())
			resp, status, err = nil, http.StatusInternalServerError, fmt.Errorf("internal error: warm-up panicked")
		}
	}()
	if s.gate != nil {
		s.gate()
	}
	handle := snapstore.Handle(sp)
	e, err := s.warmOrLoad(ctx, handle, sp)
	if err != nil {
		if errors.Is(err, diva.ErrCanceled) {
			return nil, 0, err
		}
		return nil, http.StatusUnprocessableEntity, err
	}
	shards := e.sp.Shards
	if shards == 0 {
		shards = 1
	}
	return &SnapshotResponse{Handle: handle, Shards: shards, Restored: e.restored}, 0, nil
}

// faultSummary extracts the degradation counters; nil when the machine
// ran fault-free.
func faultSummary(m *diva.Machine) *FaultSummary {
	if m.Net.FaultSchedule() == nil {
		return nil
	}
	st := m.Net.FaultStats()
	return &FaultSummary{
		Availability: st.Availability(),
		Routed:       st.Routed,
		Rerouted:     st.Rerouted,
		Stretch:      st.Stretch(),
		Held:         st.Held,
		RetryMsgs:    st.RetryMsgs,
		RetryBytes:   st.RetryBytes,
		HeldUS:       st.HeldUS,
	}
}

// recoverySummary condenses the reactive transport counters of a run;
// nil when the machine runs in the default oracle mode.
func recoverySummary(m *diva.Machine) *RecoverySummary {
	if !m.Net.Reactive() {
		return nil
	}
	st := m.Net.FaultStats()
	mean := 0.0
	if st.Detected > 0 {
		mean = st.DetectUS / float64(st.Detected)
	}
	return &RecoverySummary{
		Dropped:       st.Dropped,
		AckMsgs:       st.AckMsgs,
		AckBytes:      st.AckBytes,
		Retransmits:   st.Retransmits,
		DupDrops:      st.DupDrops,
		FalseTimeouts: st.FalseTimeouts,
		Detected:      st.Detected,
		MeanDetectUS:  mean,
		Recovered:     st.Recovered,
		Failovers:     st.Failovers,
		Reissues:      st.Reissues,
	}
}

// registriesResponse lists every registered name the spec layer accepts.
type registriesResponse struct {
	Strategies []diva.RegistryEntry `json:"strategies"`
	Topologies []diva.RegistryEntry `json:"topologies"`
	Workloads  []diva.RegistryEntry `json:"workloads"`
	Trees      []string             `json:"trees"`
	// Faults documents the fault-schedule spec fields (spec.Fault).
	Faults []diva.RegistryEntry `json:"faults"`
	// Recovery documents the fault-tolerance mode spec fields.
	Recovery []diva.RegistryEntry `json:"recovery"`
}

func (s *Server) handleRegistries(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, registriesResponse{
		Strategies: diva.Strategies(),
		Topologies: diva.Topologies(),
		Workloads:  diva.Workloads(),
		Trees:      spec.TreeNames(),
		Faults:     spec.FaultFields(),
		Recovery:   spec.RecoveryFields(),
	})
}

// healthzResponse reports liveness, the admission counters and the
// hardening counters.
type healthzResponse struct {
	Status      string `json:"status"` // "ok" or "draining"
	Runs        int64  `json:"runs"`
	Inflight    int64  `json:"inflight"`
	Queued      int64  `json:"queued"`
	Rejected    int64  `json:"rejected"`
	Panics      int64  `json:"panics"`
	Timeouts    int64  `json:"timeouts"`
	Disconnects int64  `json:"disconnects"`
	Snapshots   int    `json:"snapshots"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.writeJSON(w, http.StatusOK, healthzResponse{
		Status:      status,
		Runs:        s.runs.Load(),
		Inflight:    s.inflight.Load(),
		Queued:      s.queued.Load(),
		Rejected:    s.rejected.Load(),
		Panics:      s.panics.Load(),
		Timeouts:    s.timeouts.Load(),
		Disconnects: s.disconnects.Load(),
		Snapshots:   s.snaps.len(),
	})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// Almost always a client that went away mid-write; log the first
		// occurrence, not one line per dead connection.
		s.encodeLogOnce.Do(func() {
			log.Printf("serve: response encode failed (further occurrences suppressed): %v", err)
		})
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string, fields []spec.FieldError) {
	s.writeJSON(w, status, errorResponse{Error: msg, Fields: fields})
}

// snapCache caches machine snapshots with least-recently-used eviction,
// under two kinds of key: birth snapshots of base machines ("spec:" +
// machine description, shared by every workload and timeout) and warmed
// snapshots by store handle ("snap:" + handle). A base machine is built
// once, snapshotted before any process runs, and every request forks from
// the snapshot — construction cost is amortized across requests, and
// forks give per-request isolation.
type snapCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*snapEntry
	order []string // least recently used first
}

type snapEntry struct {
	once     sync.Once
	sp       spec.Spec // stored spec (handle entries only)
	snap     *diva.Snapshot
	restored bool // loaded from disk, not warmed by a request
	err      error
}

// entry returns the cached entry under key, creating (and LRU-evicting)
// as needed. The caller fills it under e.once.
func (c *snapCache) entry(key string) *snapEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = make(map[string]*snapEntry)
	}
	e, ok := c.m[key]
	if ok {
		c.touch(key)
		return e
	}
	e = &snapEntry{}
	c.m[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.cap {
		delete(c.m, c.order[0])
		c.order = c.order[1:]
	}
	return e
}

// drop removes a failed entry so a later request can retry: run-time
// failures (a canceled warm-up, a vanished file) are not permanent
// properties of the key the way validation failures are.
func (c *snapCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.m, key)
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
}

// base returns the birth snapshot for the machine half of a normalized
// spec, building the base machine on first use. Concurrent requests for
// the same machine build it once (sync.Once); requests for different
// machines build in parallel.
func (c *snapCache) base(n spec.Spec) (*diva.Snapshot, error) {
	// The cache key is the canonical JSON of the machine fields only:
	// specs differing just in workload or timeout share one base machine.
	n.Workload = spec.Workload{}
	n.TimeoutMS = 0
	key, err := json.Marshal(n)
	if err != nil {
		return nil, err
	}
	e := c.entry("spec:" + string(key))
	e.once.Do(func() {
		var m *diva.Machine
		m, e.err = diva.MachineFromSpec(n, diva.WithConcurrent(true))
		if e.err != nil {
			return
		}
		e.snap, e.err = m.Snapshot()
	})
	return e.snap, e.err
}

// snapshotByHandle resolves a stored snapshot: from the warm cache if the
// handle is resident, from disk otherwise.
func (s *Server) snapshotByHandle(handle string) (*snapEntry, error) {
	key := "snap:" + handle
	e := s.snaps.entry(key)
	e.once.Do(func() {
		e.sp, e.snap, e.err = s.store.Load(handle, diva.WithConcurrent(true))
		e.restored = true
		if e.err != nil {
			e.err = fmt.Errorf("unknown snapshot %q: %w", handle, e.err)
		}
	})
	if e.err != nil {
		s.snaps.drop(key)
		return nil, e.err
	}
	return e, nil
}

// warmOrLoad resolves the handle for POST /v1/snapshots: an existing file
// is loaded (idempotent re-posts, restart recovery), otherwise the spec's
// machine is built, warmed under ctx, snapshotted and persisted.
func (s *Server) warmOrLoad(ctx context.Context, handle string, sp spec.Spec) (*snapEntry, error) {
	key := "snap:" + handle
	e := s.snaps.entry(key)
	e.once.Do(func() {
		if s.store.Has(handle) {
			e.sp, e.snap, e.err = s.store.Load(handle, diva.WithConcurrent(true))
			e.restored = true
			return
		}
		n := sp.Normalized()
		m, wl, err := diva.FromSpec(n, diva.WithConcurrent(true))
		if err != nil {
			e.err = err
			return
		}
		if _, err := diva.WorkloadContext(ctx, wl).Run(m, nil); err != nil {
			e.err = err
			return
		}
		snap, err := m.Snapshot()
		if err != nil {
			e.err = err
			return
		}
		if err := s.store.Save(handle, n, snap); err != nil {
			e.err = err
			return
		}
		// Pin the resolved shard count, as Save does on disk, so run
		// requests merge against exactly what a restarted server would
		// load.
		n.Shards = m.Shards()
		e.sp, e.snap = n, snap
	})
	if e.err != nil {
		s.snaps.drop(key)
		return nil, e.err
	}
	return e, nil
}

func (c *snapCache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
}

func (c *snapCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
