// Operational-hardening tests: request deadlines surface as 504 with
// progress diagnostics, panics in a run answer 500 and leave the pool
// healthy, oversized bodies are shed before buffering, graceful drain
// rejects new runs while finishing in-flight ones without leaking
// simulation goroutines, and on-disk snapshots round-trip through a
// server restart with identical fingerprints.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func healthz(t *testing.T, ts *httptest.Server) healthzResponse {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz healthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	return hz
}

// TestOversizedBody413 pins the request-size guard: a spec document past
// the 1 MiB bound is rejected without buffering it.
func TestOversizedBody413(t *testing.T) {
	ts := httptest.NewServer(mustServer(t, Options{}).Handler())
	defer ts.Close()
	huge := `{"filler":"` + strings.Repeat("x", maxSpecBytes) + `"}`
	resp, body := post(t, ts, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %.200s", resp.StatusCode, body)
	}
}

// TestDeadline504 pins the deadline surface: a run whose timeout_ms
// expires is canceled at a kernel checkpoint and answered with 504 plus
// progress diagnostics. The gate outlasts the 10ms deadline while holding
// the worker slot, so the expiry is deterministic.
func TestDeadline504(t *testing.T) {
	srv := mustServer(t, Options{Workers: 1})
	srv.gate = func() { time.Sleep(50 * time.Millisecond) }
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	doc := `{"rows":4,"cols":4,"strategy":"at4","timeout_ms":10,
		"workload":{"name":"bitonic","keys":8}}`
	resp, body := post(t, ts, doc)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("504 body lacks a deadline message: %+v", er)
	}
	if hz := healthz(t, ts); hz.Timeouts != 1 {
		t.Errorf("healthz timeouts = %d, want 1", hz.Timeouts)
	}
}

// TestPanic500 pins panic isolation: a run that panics answers 500, the
// counter increments, and the worker pool stays healthy — the next
// request succeeds.
func TestPanic500(t *testing.T) {
	srv := mustServer(t, Options{Workers: 1})
	var first atomic.Bool
	first.Store(true)
	srv.gate = func() {
		if first.CompareAndSwap(true, false) {
			panic("injected run fault")
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := post(t, ts, runDoc(1))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking run: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte("panicked")) {
		t.Errorf("500 body does not mention the panic: %s", body)
	}
	resp, body = post(t, ts, runDoc(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run after panic: status %d: %s (pool unhealthy)", resp.StatusCode, body)
	}
	hz := healthz(t, ts)
	if hz.Panics != 1 || hz.Runs != 1 || hz.Inflight != 0 {
		t.Errorf("healthz %+v, want 1 panic, 1 run, 0 inflight", hz)
	}
}

// simGoroutines counts live goroutines with a simulation-kernel frame.
func simGoroutines() int {
	buf := make([]byte, 1<<22)
	n := runtime.Stack(buf, true)
	count := 0
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "diva/internal/sim.") {
			count++
		}
	}
	return count
}

// TestDrain pins graceful shutdown: once Drain starts, new runs get 503
// with Retry-After while in-flight runs finish with 200; after Drain
// returns, no simulation goroutine survives.
func TestDrain(t *testing.T) {
	srv := mustServer(t, Options{Workers: 2})
	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv.gate = func() {
		entered <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
				bytes.NewReader([]byte(runDoc(1))))
			if err != nil {
				results <- -1
				return
			}
			resp.Body.Close()
			results <- resp.StatusCode
		}()
	}
	<-entered
	<-entered // both workers held in-flight

	drained := make(chan struct{})
	go func() {
		srv.Drain(10 * time.Second)
		close(drained)
	}()
	for deadline := time.Now().Add(5 * time.Second); ; {
		if healthz(t, ts).Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(time.Millisecond)
	}

	// Admission is closed: a new run is rejected with 503 + Retry-After.
	resp, body := post(t, ts, runDoc(2))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("run during drain: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("drain 503 lacks Retry-After")
	}

	// In-flight runs are not dropped: both finish with 200.
	close(hold)
	for i := 0; i < 2; i++ {
		if status := <-results; status != http.StatusOK {
			t.Errorf("in-flight run finished with status %d during drain", status)
		}
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("Drain did not return after in-flight runs finished")
	}

	// No simulation goroutine survives the drain (forked machines are torn
	// down when their runs return; poll briefly for the stragglers).
	deadline := time.Now().Add(5 * time.Second)
	for simGoroutines() > 0 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<22)
			n := runtime.Stack(buf, true)
			t.Fatalf("simulation goroutines leaked after drain:\n%s", buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSnapshotRestartRecovery pins the store round trip at the HTTP
// surface: a snapshot warmed through one Server instance answers
// fingerprint-identical runs through a second instance on the same
// directory — the restart story.
func TestSnapshotRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	warmDoc := `{"rows":4,"cols":4,"strategy":"at4","seed":1,
		"workload":{"name":"matmul","block":16,"seed":3}}`
	queryDoc := `{"workload":{"name":"bitonic","keys":8,"check":true,"seed":5}}`

	srv1 := mustServer(t, Options{Workers: 2, SnapshotDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()

	resp, body := ts1post(t, ts1, "/v1/snapshots", warmDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create snapshot: status %d: %s", resp.StatusCode, body)
	}
	var sr SnapshotResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Handle == "" || sr.Restored {
		t.Fatalf("bad snapshot response: %+v", sr)
	}

	// Re-posting the same warm-up is idempotent: same handle, no re-run.
	resp, body = ts1post(t, ts1, "/v1/snapshots", warmDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-create snapshot: status %d: %s", resp.StatusCode, body)
	}
	var sr2 SnapshotResponse
	if err := json.Unmarshal(body, &sr2); err != nil {
		t.Fatal(err)
	}
	if sr2.Handle != sr.Handle {
		t.Fatalf("handles differ across idempotent posts: %q vs %q", sr2.Handle, sr.Handle)
	}

	run := func(ts *httptest.Server, label string) RunResponse {
		t.Helper()
		resp, body := ts1post(t, ts, "/v1/run?snapshot="+sr.Handle, queryDoc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, resp.StatusCode, body)
		}
		var rr RunResponse
		if err := json.Unmarshal(body, &rr); err != nil {
			t.Fatal(err)
		}
		return rr
	}
	base := run(ts1, "run on warming server")
	if !base.Verified || base.Fingerprint == "0x0000000000000000" {
		t.Fatalf("bad baseline run: %+v", base)
	}

	// A second server on the same directory — a restarted process — serves
	// the same handle with the bit-identical fingerprint.
	srv2 := mustServer(t, Options{Workers: 2, SnapshotDir: dir})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if got := run(ts2, "run after restart"); got.Fingerprint != base.Fingerprint ||
		got.Events != base.Events || got.ElapsedUS != base.ElapsedUS {
		t.Errorf("restart run diverged:\n got: %+v\nbase: %+v", got, base)
	}

	// The restarted server lists the stored snapshot.
	resp2, err := ts2.Client().Get(ts2.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var listing struct {
		Snapshots []struct {
			Handle string `json:"handle"`
		} `json:"snapshots"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Snapshots) != 1 || listing.Snapshots[0].Handle != sr.Handle {
		t.Errorf("listing = %+v, want exactly [%s]", listing.Snapshots, sr.Handle)
	}

	// Unknown handles are 404; without a store the feature is 501.
	if resp, _ := ts1post(t, ts1, "/v1/run?snapshot=0123456789abcdef", queryDoc); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown handle: status %d, want 404", resp.StatusCode)
	}
	bare := httptest.NewServer(mustServer(t, Options{}).Handler())
	defer bare.Close()
	if resp, _ := ts1post(t, bare, "/v1/run?snapshot="+sr.Handle, queryDoc); resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("snapshot run without store: status %d, want 501", resp.StatusCode)
	}
	if resp, _ := ts1post(t, bare, "/v1/snapshots", warmDoc); resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("snapshot create without store: status %d, want 501", resp.StatusCode)
	}
}

// ts1post posts a document to an arbitrary path.
func ts1post(t *testing.T, ts *httptest.Server, path, doc string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestRetryAfterOn429 pins the queue-depth Retry-After on shed requests.
func TestRetryAfterOn429(t *testing.T) {
	srv := mustServer(t, Options{Workers: 1, Queue: 1})
	hold := make(chan struct{})
	entered := make(chan struct{}, 4)
	srv.gate = func() {
		entered <- struct{}{}
		<-hold
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(hold)

	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/run", "application/json",
				bytes.NewReader([]byte(runDoc(1))))
			if err == nil {
				resp.Body.Close()
			}
			done <- struct{}{}
		}()
	}
	<-entered // worker held
	for deadline := time.Now().Add(5 * time.Second); ; {
		if healthz(t, ts).Queued >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := post(t, ts, runDoc(1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("429 lacks Retry-After")
	}
	var secs int
	if _, err := fmt.Sscanf(ra, "%d", &secs); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want a positive integer of seconds", ra)
	}
}
