package experiments

import (
	"fmt"

	"diva"
	"diva/fault"
	"diva/internal/apps/matmul"
	"diva/internal/mesh"
)

// This file implements the recovery sweep ("recovery"): the matrix
// multiplication workload under a seeded fault schedule, run once in the
// oracle fault-tolerance mode (PR 8's network: failure knowledge is free,
// messages are held and retransmitted at the exact heal time) and once in
// the reactive mode (messages into the failure are dropped, senders detect
// by retransmission timeout and the strategy recovers on its own). The
// paper's strategy comparison is repeated on both modes and both network
// shapes, asking how much each strategy pays when nobody tells it the
// network broke.

// recoveryCell is one (topology, mode, strategy) measurement.
type recoveryCell struct {
	timeUS  float64
	congMax uint64
	stats   mesh.FaultStats
}

// runRecoveryCell runs the DSM matrix square for one recovery-sweep cell.
// The reactive transport is tuned fast (0.5 ms initial timeout, 3 retries)
// so detection beats the ~20 ms outages and the strategies actually fail
// over, instead of the transport quietly retrying across the heal.
func (r *Runner) runRecoveryCell(topo string, side int, reactive bool, strat string, concurrent bool) (recoveryCell, error) {
	opts := []diva.Option{
		diva.WithTopologyName(topo, side, side),
		diva.WithSeed(r.Seed),
		diva.WithStrategyName(strat),
		diva.WithShards(r.Shards),
		diva.WithConcurrent(concurrent),
		diva.WithFaultGen(fault.Gen{
			LinkFailures: 2, NodeChurn: 1,
			MeanDownUS: 20000, HorizonUS: 100000,
		}),
	}
	if reactive {
		opts = append(opts,
			diva.WithRecovery(diva.RecoveryReactive),
			diva.WithAckTransport(500, 3, 2),
		)
	}
	m, err := diva.New(opts...)
	if err != nil {
		return recoveryCell{}, err
	}
	block := 256
	if r.Quick {
		block = 64
	}
	res, err := matmul.RunDSM(m, matmul.Config{BlockInts: block, Seed: r.Seed})
	if err != nil {
		return recoveryCell{}, err
	}
	return recoveryCell{
		timeUS:  res.ElapsedUS,
		congMax: m.Net.Congestion(nil).MaxMsgs,
		stats:   m.Net.FaultStats(),
	}, nil
}

// FigRecovery produces the "recovery" figure: oracle vs reactive fault
// tolerance across strategies and network shapes. The (topology, mode,
// strategy) cells are independent simulations and fan out across the
// runner's worker pool; every cell's schedule is drawn from the machine
// seed, so the assembled output is byte-identical to a sequential run.
func (r *Runner) FigRecovery() error {
	topos := []string{"mesh", "graph:degraded"}
	modes := []string{"oracle", "reactive"}
	strategies := []string{"fixedhome", "at4"}
	side := 8
	if r.Quick {
		side = 4
	}
	r.header(fmt.Sprintf("Recovery: oracle vs reactive fault tolerance (%dx%d)", side, side))
	fmt.Fprintf(r.W, "matmul under a seeded fault schedule (2 link outages, 1 churn). Oracle\n")
	fmt.Fprintf(r.W, "mode holds messages across outages; reactive mode drops them, detects by\n")
	fmt.Fprintf(r.W, "retransmission timeout (0.5 ms initial, 3 retries, 2x backoff) and lets\n")
	fmt.Fprintf(r.W, "the strategy recover: fixedhome fails homes over, the access tree\n")
	fmt.Fprintf(r.W, "re-issues over the re-embedded spanning forest.\n")

	nCells := len(topos) * len(modes) * len(strategies)
	cells, err := runCells(r, nCells, func(i int, concurrent bool) (recoveryCell, error) {
		ti := i / (len(modes) * len(strategies))
		mi := i / len(strategies) % len(modes)
		si := i % len(strategies)
		return r.runRecoveryCell(topos[ti], side, mi == 1, strategies[si], concurrent)
	})
	if err != nil {
		return err
	}
	at := func(ti, mi, si int) recoveryCell {
		return cells[(ti*len(modes)+mi)*len(strategies)+si]
	}

	rows := [][]string{{"topology", "strategy", "mode", "time (s)", "congestion",
		"dropped", "retransmits", "acks", "detected", "failover+reissue"}}
	for ti, topo := range topos {
		for si, strat := range strategies {
			for mi, mode := range modes {
				c := at(ti, mi, si)
				rows = append(rows, []string{
					topo, strat, mode,
					f2(c.timeUS / 1e6), fmt.Sprint(c.congMax),
					fmt.Sprint(c.stats.Dropped), fmt.Sprint(c.stats.Retransmits),
					fmt.Sprint(c.stats.AckMsgs), fmt.Sprint(c.stats.Detected),
					fmt.Sprint(c.stats.Failovers + c.stats.Reissues),
				})
			}
		}
	}
	table(r.W, rows)

	// The price of not being told: reactive vs oracle elapsed time on the
	// same topology and strategy.
	fmt.Fprintln(r.W, "\nreactive/oracle time (same topology and strategy):")
	rows = [][]string{{"topology"}}
	for _, strat := range strategies {
		rows[0] = append(rows[0], strat)
	}
	for ti, topo := range topos {
		row := []string{topo}
		for si := range strategies {
			row = append(row, pct(at(ti, 1, si).timeUS/at(ti, 0, si).timeUS))
		}
		rows = append(rows, row)
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nReactive runs carry the transport's ack and retransmission traffic even")
	fmt.Fprintln(r.W, "where the network is healthy — that is the standing cost of detection —")
	fmt.Fprintln(r.W, "and pay detection latency where it is not. Both modes are deterministic:")
	fmt.Fprintln(r.W, "timeouts and backoff jitter are drawn from dedicated seed-derived RNG")
	fmt.Fprintln(r.W, "streams, so every cell is bit-reproducible at any kernel shard count.")
	return nil
}
