package experiments

import (
	"fmt"

	"diva"
	"diva/internal/apps/barneshut"
	"diva/internal/core/accesstree"
	"diva/internal/decomp"
	"diva/internal/metrics"
)

// AblationReplacement demonstrates the replacement behaviour the paper
// mentions for the 2-ary access tree at 60,000 bodies ("the increase of
// the congestion for the 2-ary access tree from 50,000 to 60,000 bodies is
// due to copy replacement"): with bounded per-node memory, LRU replacement
// kicks in and congestion rises because copies have to be re-fetched.
func (r *Runner) AblationReplacement() error {
	side := 4
	n := 600
	steps := 4
	if !r.Quick {
		side = 8
		n = 4000
	}
	r.header(fmt.Sprintf("Ablation: bounded memory and LRU replacement (Barnes-Hut, %dx%d, N=%d, 2-ary)", side, side, n))
	rows := [][]string{{"capacity/node", "congestion(msgs)", "time(s)", "evictions"}}
	for _, capacity := range []int{0, 512 * 1024, 96 * 1024, 48 * 1024} {
		m := diva.MustNew(
			diva.WithMesh(side, side),
			diva.WithSeed(r.Seed),
			diva.WithTree(decomp.Ary2),
			diva.WithStrategyName("at2"),
			diva.WithCacheCapacity(capacity),
			diva.WithShards(r.Shards),
			diva.WithConcurrent(r.concurrent),
		)
		col := metrics.New(m.Net)
		_, err := barneshut.Run(m, barneshut.Config{
			N: n, Steps: steps, MeasureFrom: 1, Seed: r.Seed, WithCompute: true,
		}, col)
		if err != nil {
			return err
		}
		ev := uint64(0)
		for node := 0; node < m.P(); node++ {
			ev += m.Cache(node).Evictions()
		}
		tot := col.Total()
		label := "unbounded"
		if capacity > 0 {
			label = fmt.Sprintf("%d KB", capacity/1024)
		}
		rows = append(rows, []string{
			label,
			fmt.Sprint(tot.Cong.MaxMsgs),
			f1(tot.TimeUS / 1e6),
			fmt.Sprint(ev),
		})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nPaper (§3.3): replacement starts for the 2-ary tree at 60,000 bodies and")
	fmt.Fprintln(r.W, "shows as a congestion increase; tighter memory means more re-fetches.")
	return nil
}

// AblationRemap evaluates the remapping step of the theoretical strategy
// that the paper's implementation omits (design decision D3): whether
// migrating over-accessed access tree nodes pays off in practice. The
// workload is the Barnes-Hut tree build, whose repeatedly rewritten top
// cells are exactly the "too many accesses to the same node" case.
func (r *Runner) AblationRemap() error {
	side := 4
	n := 600
	if !r.Quick {
		side = 8
		n = 3000
	}
	r.header(fmt.Sprintf("Ablation: theoretical remapping of hot tree nodes (Barnes-Hut, %dx%d, N=%d)", side, side, n))
	rows := [][]string{{"variant", "congestion(msgs)", "time(s)", "migrations"}}
	for _, mode := range []struct {
		name string
		opts accesstree.Options
	}{
		{"random embedding, no remap (paper's D3 choice)", accesstree.Options{RandomEmbedding: true}},
		{"random embedding, remap@256 accesses", accesstree.Options{RandomEmbedding: true, RemapThreshold: 256}},
		{"random embedding, remap@64 accesses", accesstree.Options{RandomEmbedding: true, RemapThreshold: 64}},
	} {
		m := diva.MustNew(
			diva.WithMesh(side, side),
			diva.WithSeed(r.Seed),
			diva.WithTree(decomp.Ary4),
			diva.WithStrategy(accesstree.FactoryOpts(mode.opts)),
			diva.WithShards(r.Shards),
			diva.WithConcurrent(r.concurrent),
		)
		col := metrics.New(m.Net)
		if _, err := barneshut.Run(m, barneshut.Config{
			N: n, Steps: 4, MeasureFrom: 1, Seed: r.Seed, WithCompute: true,
		}, col); err != nil {
			return err
		}
		migrations := accesstree.TotalRemaps(m.Strat)
		tot := col.Total()
		rows = append(rows, []string{
			mode.name,
			fmt.Sprint(tot.Cong.MaxMsgs),
			f1(tot.TimeUS / 1e6),
			fmt.Sprint(migrations),
		})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nPaper (§2): \"we omit this remapping as we believe that the constant")
	fmt.Fprintln(r.W, "overhead induced by this procedure will not be retained in practice.\"")
	return nil
}
