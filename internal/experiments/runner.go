// Package experiments regenerates every figure of the paper's evaluation
// (§3): the matrix multiplication ratio studies (Figures 3 and 4), the
// bitonic sorting ratio studies (Figures 6 and 7), the Barnes-Hut curves
// (Figures 8, 9, 10), the Barnes-Hut scaling study (Figure 11), and the
// illustrative Figures 1, 2 and 5. Each figure prints the measured series
// next to the values reported in the paper. Beyond the paper, the
// "topologies" sweep repeats the Figure-8 strategy comparison on the
// torus, hypercube and fat-tree at matched processor counts, and the
// "faults" sweep measures strategy degradation under seeded link-failure
// and churn schedules on the mesh and an irregular degraded-mesh graph.
//
// Absolute times depend on the simulated machine's constants; the paper's
// qualitative shape — who wins, by what factor, how ratios scale with
// network size — is what these experiments reproduce (see EXPERIMENTS.md).
package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"

	"diva"
	"diva/internal/core"
	"diva/internal/decomp"
	"diva/strategy"
)

// Runner executes figures. Quick mode shrinks meshes and inputs so the full
// suite completes in seconds-to-minutes instead of tens of minutes.
type Runner struct {
	W     io.Writer
	Quick bool
	Seed  uint64
	// Workers sets the runner's degree of parallelism: when > 1, whole
	// figures and the cells of in-figure fan-outs (the Barnes-Hut sweep,
	// the topologies sweep, the matmul/bitonic ratio figures) all draw
	// from one shared pool of this many slots — a figure goroutine lends
	// its slot to its own fan-out, so the pool bounds the number of
	// concurrently running simulations across the whole run. Every
	// parallel machine runs with the kernels' GOMAXPROCS pin disabled (it
	// is process-wide and would serialize the workers). Output is buffered
	// per figure and emitted in figure order, so the bytes written to W
	// are identical to a sequential run's.
	Workers int
	// Shards is the event-kernel shard count per machine, passed through
	// to diva.WithShards (0 reads $DIVA_SHARDS; figures are identical for
	// every count).
	Shards int
	// Recovery selects the fault-tolerance mode of the degradation sweep's
	// machines ("" or "oracle": the default oracle mode; "reactive": the
	// timeout-based mode with its default transport tuning). The dedicated
	// "recovery" figure always compares both modes and ignores this.
	Recovery string

	// pool is the shared slot pool (created on first parallel use and
	// inherited by worker clones); holding marks a clone whose figure
	// goroutine currently occupies a slot, so runCells can lend it out.
	pool    chan struct{}
	holding bool

	// concurrent marks a worker clone: its machines run alongside others.
	concurrent bool

	bhCache *bhCache
}

// ensurePool creates the shared slot pool. Callers invoke it before any
// fan-out goroutines exist (runParallel setup, or a direct in-figure
// fan-out on a sequentially-driven runner), so creation is single-threaded.
func (r *Runner) ensurePool() {
	if r.pool == nil {
		r.pool = make(chan struct{}, r.Workers)
	}
}

// runCells evaluates n independent simulation cells through compute,
// fanning them across the runner's global worker pool when it has one, and
// returns the results in index order — so the caller's output is
// independent of completion order and byte-identical to a sequential run.
// A figure goroutine that itself holds a pool slot lends it to the fan-out
// for the duration: whole figures and cells share one pool without nested
// acquisitions, which keeps the pool deadlock-free. Cells run on machines
// marked concurrent (no GOMAXPROCS pin); simulated results are unaffected.
func runCells[T any](r *Runner, n int, compute func(i int, concurrent bool) (T, error)) ([]T, error) {
	out := make([]T, n)
	if r.Workers <= 1 || n <= 1 {
		for i := range out {
			v, err := compute(i, r.concurrent)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}
	r.ensurePool()
	if r.holding {
		<-r.pool
		defer func() { r.pool <- struct{}{} }()
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.pool <- struct{}{}
			defer func() { <-r.pool }()
			out[i], errs[i] = compute(i, true)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// New returns a runner writing to w.
func New(w io.Writer, quick bool, seed uint64) *Runner {
	return &Runner{W: w, Quick: quick, Seed: seed, bhCache: newBHCache()}
}

// Figures lists the available experiment names in order.
var Figures = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "11",
	"topologies", "faults", "recovery",
	"ablation-embed", "ablation-arity", "ablation-remap", "ablation-replacement"}

// Run executes one figure by name.
func (r *Runner) Run(name string) error {
	switch name {
	case "1":
		return r.Fig1()
	case "2":
		return r.Fig2()
	case "3":
		return r.Fig3()
	case "4":
		return r.Fig4()
	case "5":
		return r.Fig5()
	case "6":
		return r.Fig6()
	case "7":
		return r.Fig7()
	case "8":
		return r.Fig8()
	case "9":
		return r.Fig9()
	case "10":
		return r.Fig10()
	case "11":
		return r.Fig11()
	case "topologies":
		return r.FigTopologies()
	case "faults":
		return r.FigFaults()
	case "recovery":
		return r.FigRecovery()
	case "ablation-embed":
		return r.AblationEmbedding()
	case "ablation-arity":
		return r.AblationArity()
	case "ablation-remap":
		return r.AblationRemap()
	case "ablation-replacement":
		return r.AblationReplacement()
	}
	return fmt.Errorf("experiments: unknown figure %q (have %v)", name, Figures)
}

// RunAll executes every figure, fanning them across a worker pool when
// Workers > 1. Figures are independent (each builds its machines from the
// runner's seed alone), so the parallel run produces byte-identical output.
func (r *Runner) RunAll() error { return r.RunFigures(Figures) }

// RunFigures executes the named figures in order, in parallel when
// Workers > 1 (output order and bytes are the same either way).
func (r *Runner) RunFigures(names []string) error {
	if r.Workers > 1 {
		return r.runParallel(names)
	}
	for _, f := range names {
		if err := r.Run(f); err != nil {
			return fmt.Errorf("figure %s: %w", f, err)
		}
		fmt.Fprintln(r.W)
	}
	return nil
}

func (r *Runner) runParallel(names []string) error {
	type result struct {
		buf bytes.Buffer
		err error
	}
	r.ensurePool()
	results := make([]result, len(names))
	var wg sync.WaitGroup
	for i, f := range names {
		wg.Add(1)
		go func(i int, f string) {
			defer wg.Done()
			r.pool <- struct{}{}
			defer func() { <-r.pool }()
			// Workers share the parent's slot pool (figures and their
			// in-figure fan-outs bounded together) and the parent's
			// Barnes-Hut cache: Figures 8-10 view the same deterministic
			// sweep, so one worker computes it and the others reuse the
			// rows.
			sub := &Runner{
				W: &results[i].buf, Quick: r.Quick, Seed: r.Seed,
				Workers: r.Workers, Shards: r.Shards, Recovery: r.Recovery,
				pool: r.pool, holding: true,
				concurrent: true, bhCache: r.bhCache,
			}
			results[i].err = sub.Run(f)
		}(i, f)
	}
	wg.Wait()
	for i, f := range names {
		if results[i].err != nil {
			return fmt.Errorf("figure %s: %w", f, results[i].err)
		}
		if _, err := io.Copy(r.W, &results[i].buf); err != nil {
			return err
		}
		fmt.Fprintln(r.W)
	}
	return nil
}

// machine builds a machine for one experiment run through the public
// diva API (the machines here are exactly the ones embedders get).
func (r *Runner) machine(rows, cols int, f core.Factory, spec decomp.Spec) *core.Machine {
	return r.machineConc(rows, cols, f, spec, false)
}

// machineConc is machine with an explicit concurrency mark for in-figure
// fan-outs (cells running alongside each other disable the kernel's
// process-wide GOMAXPROCS pin; simulated results are unaffected).
func (r *Runner) machineConc(rows, cols int, f core.Factory, spec decomp.Spec, concurrent bool) *core.Machine {
	return diva.MustNew(
		diva.WithMesh(rows, cols),
		diva.WithSeed(r.Seed),
		diva.WithTree(spec),
		diva.WithStrategy(f),
		diva.WithShards(r.Shards),
		diva.WithConcurrent(r.concurrent || concurrent),
	)
}

// strategyUnderTest pairs a display name with its configuration.
type strategyUnderTest struct {
	name string
	spec decomp.Spec
	fact core.Factory
}

// atNames maps the paper's tree variants to their strategy registry names:
// the public registry is the single source of truth for the factory/tree
// pairs the figures run.
var atNames = map[decomp.Spec]string{
	decomp.Ary2:    "at2",
	decomp.Ary4:    "at4",
	decomp.Ary16:   "at16",
	decomp.Ary2K4:  "at2k4",
	decomp.Ary4K8:  "at4k8",
	decomp.Ary4K16: "at4k16",
}

func atStrategy(spec decomp.Spec) strategyUnderTest {
	s := strategy.MustGet(atNames[spec])
	return strategyUnderTest{name: s.Tree.Name() + " AT", spec: s.Tree, fact: s.Factory}
}

func fhStrategy() strategyUnderTest {
	s := strategy.MustGet("fixedhome")
	return strategyUnderTest{name: "fixed home", spec: s.Tree, fact: s.Factory}
}

// atFactory and fhFactory resolve the registry factories for figures that
// pair a strategy with a non-default decomposition tree (e.g. the fixed
// home on the 2-ary tree of the sorting studies).
func atFactory() core.Factory { return strategy.MustGet("at4").Factory }
func fhFactory() core.Factory { return strategy.MustGet("fixedhome").Factory }

// --- formatting helpers ---

func (r *Runner) header(title string) {
	fmt.Fprintf(r.W, "%s\n%s\n", title, strings.Repeat("=", len(title)))
}

// table prints aligned columns.
func table(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func f1(x float64) string  { return fmt.Sprintf("%.1f", x) }
func f2(x float64) string  { return fmt.Sprintf("%.2f", x) }
func pct(x float64) string { return fmt.Sprintf("%.0f%%", 100*x) }
