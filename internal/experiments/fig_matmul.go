package experiments

import (
	"fmt"

	"diva/internal/apps/matmul"
	"diva/internal/core"
	"diva/internal/decomp"
)

// mmPoint is one matmul measurement.
type mmPoint struct {
	congBytes uint64
	timeUS    float64
}

// runMatmulOn runs the DSM matrix square on a prepared machine and returns
// the communication time (used by the ablation experiments).
func runMatmulOn(m *core.Machine, blockInts int, seed uint64) (float64, error) {
	res, err := matmul.RunDSM(m, matmul.Config{BlockInts: blockInts, Seed: seed})
	if err != nil {
		return 0, err
	}
	return res.ElapsedUS, nil
}

// mmRatioRow holds the three cells of one ratio-figure row.
type mmRatioRow struct {
	hand, fh, at mmPoint
}

// runRatioCells evaluates the rows of a matmul/bitonic ratio figure —
// (hand-optimized, fixed home, access tree) per parameter value — through
// the runner's cell fan-out: every cell is an independent simulation, so
// they spread across the shared worker pool and reassemble in row order.
func runRatioCells(r *Runner, n int, cell func(row, kind int, concurrent bool) (mmPoint, error)) ([]mmRatioRow, error) {
	points, err := runCells(r, 3*n, func(i int, concurrent bool) (mmPoint, error) {
		return cell(i/3, i%3, concurrent)
	})
	if err != nil {
		return nil, err
	}
	rows := make([]mmRatioRow, n)
	for i := range rows {
		rows[i] = mmRatioRow{hand: points[3*i], fh: points[3*i+1], at: points[3*i+2]}
	}
	return rows, nil
}

// runMatmul measures one (mesh, block, strategy) configuration in the
// paper's communication-time mode. concurrent marks a call from a cell
// fan-out (simulated results are unaffected).
func (r *Runner) runMatmul(side, blockInts int, f core.Factory, spec decomp.Spec, concurrent bool) (mmPoint, error) {
	m := r.machineConc(side, side, f, spec, concurrent)
	cfg := matmul.Config{BlockInts: blockInts, Seed: r.Seed}
	var (
		res matmul.Result
		err error
	)
	if f == nil {
		res, err = matmul.RunHandOpt(m, cfg)
	} else {
		res, err = matmul.RunDSM(m, cfg)
	}
	if err != nil {
		return mmPoint{}, err
	}
	return mmPoint{congBytes: m.Net.Congestion(nil).MaxBytes, timeUS: res.ElapsedUS}, nil
}

// fig3Paper holds the values read off Figure 3 of the paper (16×16 mesh).
var fig3Paper = map[int][4]float64{
	// block: {FH cong ratio, AT4 cong ratio, FH time ratio, AT4 time ratio}
	64:   {33.32, 9.25, 13.83, 7.54},
	256:  {26.61, 7.19, 11.89, 6.08},
	1024: {24.94, 6.67, 10.71, 4.93},
	4096: {24.52, 6.55, 10.32, 4.50},
}

// Fig3 reproduces Figure 3: matrix multiplication on a 16×16 mesh,
// congestion ratio and communication time ratio versus block size, for the
// fixed home and the 4-ary access tree strategy (relative to the
// hand-optimized message passing strategy).
func (r *Runner) Fig3() error {
	side := 16
	blocks := []int{64, 256, 1024, 4096}
	if r.Quick {
		side = 8
		blocks = []int{64, 256, 1024}
	}
	r.header(fmt.Sprintf("Figure 3: matrix multiplication on a %dx%d mesh (ratios vs hand-optimized)", side, side))

	fh, at := fhFactory(), atFactory()
	cells, err := runRatioCells(r, len(blocks), func(row, kind int, concurrent bool) (mmPoint, error) {
		switch kind {
		case 0:
			return r.runMatmul(side, blocks[row], nil, decomp.Ary2, concurrent)
		case 1:
			return r.runMatmul(side, blocks[row], fh, decomp.Ary4, concurrent)
		default:
			return r.runMatmul(side, blocks[row], at, decomp.Ary4, concurrent)
		}
	})
	if err != nil {
		return err
	}

	rows := [][]string{{"block", "congFH", "congAT4", "AT/FH", "timeFH", "timeAT4", "AT/FH", "", "paper(16x16): congFH", "congAT4", "timeFH", "timeAT4"}}
	for i, blk := range blocks {
		c := cells[i]
		congFH := float64(c.fh.congBytes) / float64(c.hand.congBytes)
		congAT := float64(c.at.congBytes) / float64(c.hand.congBytes)
		timeFH := c.fh.timeUS / c.hand.timeUS
		timeAT := c.at.timeUS / c.hand.timeUS
		p, hasPaper := fig3Paper[blk]
		paper := []string{"", "", "", ""}
		if hasPaper {
			paper = []string{f2(p[0]), f2(p[1]), f2(p[2]), f2(p[3])}
		}
		rows = append(rows, []string{
			fmt.Sprint(blk),
			f2(congFH), f2(congAT), pct(congAT / congFH),
			f2(timeFH), f2(timeAT), pct(timeAT / timeFH),
			"|", paper[0], paper[1], paper[2], paper[3],
		})
	}
	table(r.W, rows)
	return nil
}

// fig4Paper: values read off Figure 4 (block size 4096).
var fig4Paper = map[int][4]float64{
	// mesh side: {FH cong, AT4 cong, FH time, AT4 time}
	4:  {5.52, 3.87, 2.79, 2.77},
	8:  {12.25, 5.56, 6.21, 3.78},
	16: {24.52, 6.55, 10.32, 4.50},
	32: {47.98, 8.10, 19.90, 5.67},
}

// Fig4 reproduces Figure 4: matrix multiplication with a fixed block size,
// scaling the network from 4×4 to 32×32.
func (r *Runner) Fig4() error {
	block := 4096
	sides := []int{4, 8, 16, 32}
	if r.Quick {
		block = 1024
		sides = []int{4, 8, 16}
	}
	r.header(fmt.Sprintf("Figure 4: matrix multiplication with block size %d (ratios vs hand-optimized)", block))

	fh, at := fhFactory(), atFactory()
	cells, err := runRatioCells(r, len(sides), func(row, kind int, concurrent bool) (mmPoint, error) {
		switch kind {
		case 0:
			return r.runMatmul(sides[row], block, nil, decomp.Ary2, concurrent)
		case 1:
			return r.runMatmul(sides[row], block, fh, decomp.Ary4, concurrent)
		default:
			return r.runMatmul(sides[row], block, at, decomp.Ary4, concurrent)
		}
	})
	if err != nil {
		return err
	}

	rows := [][]string{{"mesh", "congFH", "congAT4", "AT/FH", "timeFH", "timeAT4", "AT/FH", "", "paper(4096): congFH", "congAT4", "timeFH", "timeAT4"}}
	for i, side := range sides {
		c := cells[i]
		congFH := float64(c.fh.congBytes) / float64(c.hand.congBytes)
		congAT := float64(c.at.congBytes) / float64(c.hand.congBytes)
		timeFH := c.fh.timeUS / c.hand.timeUS
		timeAT := c.at.timeUS / c.hand.timeUS
		p := fig4Paper[side]
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", side, side),
			f2(congFH), f2(congAT), pct(congAT / congFH),
			f2(timeFH), f2(timeAT), pct(timeAT / timeFH),
			"|", f2(p[0]), f2(p[1]), f2(p[2]), f2(p[3]),
		})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nExpected shape: FH congestion ratio grows ~sqrt(P); AT ratio grows ~log(P);")
	fmt.Fprintln(r.W, "the access tree advantage increases with the network size.")
	return nil
}
