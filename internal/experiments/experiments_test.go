package experiments

import (
	"bytes"
	"strings"
	"testing"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
)

// coreMachine builds a side×side machine for shape tests.
func coreMachine(side int, f core.Factory) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: side, Cols: side, Seed: 8, Tree: decomp.Ary4, Strategy: f,
	})
}

// TestIllustrativeFigures: Figures 1, 2 and 5 must render and contain the
// structural landmarks of the paper's figures.
func TestIllustrativeFigures(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, true, 1)
	for _, fig := range []string{"1", "2", "5"} {
		if err := r.Run(fig); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "level 4") {
		t.Error("Figure 1 missing level 4 (M(4,3) has decomposition levels 0..4)")
	}
	if !strings.Contains(out, "fixed home") || !strings.Contains(out, "4-ary AT") {
		t.Error("Figure 2 must compare both strategies")
	}
	if !strings.Contains(out, "[0:1]") {
		t.Error("Figure 5 missing first-phase comparators")
	}
}

// TestFig2StarVsTree: the Figure 2 phenomenon in numbers — for a single
// block read by a whole row, the fixed home's star pattern concentrates
// more bytes on its busiest link than the access tree's multicast.
func TestFig2StarVsTree(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, true, 7)
	if err := r.Fig2(); err != nil {
		t.Fatal(err)
	}
	// Shape assertion via the underlying machines.
	congestion := func(s strategyUnderTest) uint64 {
		m := r.machine(8, 8, s.fact, s.spec)
		owner := 8*4 + 4
		v := m.AllocAt(owner, 4096, "x")
		if err := m.Run(func(p *core.Proc) {
			if p.ID/8 == 4 {
				p.Read(v)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes
	}
	fh := congestion(fhStrategy())
	at := congestion(atStrategy(decomp.Ary4))
	if at >= fh {
		t.Fatalf("access tree multicast congestion %d not below fixed home star %d", at, fh)
	}
}

// TestFig3QuickShapes runs the scaled-down Figure 3 measurements directly
// and asserts the orderings the paper reports.
func TestFig3QuickShapes(t *testing.T) {
	r := New(&bytes.Buffer{}, true, 3)
	hand, err := r.runMatmul(8, 256, nil, decomp.Ary2, false)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := r.runMatmul(8, 256, fixedhome.Factory(), decomp.Ary4, false)
	if err != nil {
		t.Fatal(err)
	}
	at, err := r.runMatmul(8, 256, accesstree.Factory(), decomp.Ary4, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(hand.congBytes < at.congBytes && at.congBytes < fh.congBytes) {
		t.Fatalf("congestion ordering violated: hand=%d at=%d fh=%d",
			hand.congBytes, at.congBytes, fh.congBytes)
	}
	if !(hand.timeUS < at.timeUS && at.timeUS < fh.timeUS) {
		t.Fatalf("time ordering violated: hand=%.0f at=%.0f fh=%.0f",
			hand.timeUS, at.timeUS, fh.timeUS)
	}
}

// TestFig4ScalingShape: the access tree's advantage must grow with the
// network size (the paper's headline claim).
func TestFig4ScalingShape(t *testing.T) {
	r := New(&bytes.Buffer{}, true, 4)
	ratio := func(side int) float64 {
		fh, err := r.runMatmul(side, 256, fixedhome.Factory(), decomp.Ary4, false)
		if err != nil {
			t.Fatal(err)
		}
		at, err := r.runMatmul(side, 256, accesstree.Factory(), decomp.Ary4, false)
		if err != nil {
			t.Fatal(err)
		}
		return float64(at.congBytes) / float64(fh.congBytes)
	}
	small, large := ratio(4), ratio(16)
	if large >= small {
		t.Fatalf("AT/FH congestion ratio did not improve with size: %4x4=%.2f 16x16=%.2f",
			'=', small, large)
	}
}

// TestFig6BitonicShapes: bitonic orderings.
func TestFig6BitonicShapes(t *testing.T) {
	r := New(&bytes.Buffer{}, true, 5)
	hand, err := r.runBitonic(8, 512, nil, decomp.Ary2, false)
	if err != nil {
		t.Fatal(err)
	}
	at, err := r.runBitonic(8, 512, accesstree.Factory(), decomp.Ary2K4, false)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := r.runBitonic(8, 512, fixedhome.Factory(), decomp.Ary2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !(hand.congBytes < at.congBytes && at.congBytes < fh.congBytes) {
		t.Fatalf("congestion ordering violated: hand=%d at=%d fh=%d",
			hand.congBytes, at.congBytes, fh.congBytes)
	}
	if !(at.timeUS < fh.timeUS) {
		t.Fatalf("access tree (%.0f) not faster than fixed home (%.0f)", at.timeUS, fh.timeUS)
	}
}

// TestFig8OrderingQuick: the Barnes-Hut strategy ordering at miniature
// scale — congestion decreases with tree depth, fixed home worst.
func TestFig8OrderingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("barnes-hut sweep in short mode")
	}
	r := New(&bytes.Buffer{}, true, 6)
	cong := make(map[string]uint64)
	for _, s := range []strategyUnderTest{
		fhStrategy(), atStrategy(decomp.Ary16), atStrategy(decomp.Ary4), atStrategy(decomp.Ary2),
	} {
		row, err := r.runBarnesHut(4, 4, 600, s, false)
		if err != nil {
			t.Fatal(err)
		}
		cong[s.name] = row.total.Cong.MaxMsgs
	}
	if !(cong["2-ary AT"] <= cong["4-ary AT"] &&
		cong["4-ary AT"] <= cong["16-ary AT"] &&
		cong["16-ary AT"] < cong["fixed home"]) {
		t.Fatalf("congestion ordering violated: %v", cong)
	}
}

// TestRunAllQuickFast exercises the fast figures end to end.
func TestRunAllQuickFast(t *testing.T) {
	var buf bytes.Buffer
	r := New(&buf, true, 9)
	for _, fig := range []string{"1", "5", "ablation-arity", "ablation-embed"} {
		if err := r.Run(fig); err != nil {
			t.Fatalf("figure %s: %v", fig, err)
		}
	}
	if err := r.Run("nope"); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if len(buf.String()) < 200 {
		t.Fatal("suspiciously little output")
	}
}

// TestTopologiesSweepDeterministic: the cross-topology sweep must emit
// byte-identical output whether its cells run sequentially or fanned out
// across the worker pool, and the quick-mode output at the canonical seed
// is pinned by a golden fingerprint: a change here means the simulated
// cross-topology results changed, not just the formatting.
func TestTopologiesSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-topology barnes-hut sweep in short mode")
	}
	var seq bytes.Buffer
	rs := New(&seq, true, 1999)
	if err := rs.Run("topologies"); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	rp := New(&par, true, 1999)
	rp.Workers = 4
	if err := rp.Run("topologies"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel sweep output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
			seq.String(), par.String())
	}
	out := seq.String()
	for _, want := range []string{"4x4 mesh", "4x4 torus", "4-cube", "depth-4 fat-tree", "fixed home", "2-ary AT"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	// Golden fingerprint of the quick-mode sweep at seed 1999 (FNV-1a).
	const golden = uint64(0x8a4b5d10c2f40df9)
	if got := fnv1a(seq.Bytes()); got != golden {
		t.Errorf("sweep output fingerprint = %#x, want %#x (simulated results changed)", got, golden)
	}
}

// TestFaultsSweepDeterministic: the degradation sweep must emit
// byte-identical output whether its cells run sequentially or fanned out
// across the worker pool, and the quick-mode output at the canonical seed
// is pinned by a golden fingerprint: a change here means the simulated
// degradation results changed, not just the formatting.
func TestFaultsSweepDeterministic(t *testing.T) {
	var seq bytes.Buffer
	rs := New(&seq, true, 1999)
	if err := rs.Run("faults"); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	rp := New(&par, true, 1999)
	rp.Workers = 4
	if err := rp.Run("faults"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel sweep output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
			seq.String(), par.String())
	}
	out := seq.String()
	for _, want := range []string{"graph:degraded", "fixedhome", "at4", "availability", "stretch"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	// The zero-fault row must report full availability and no stretch, and
	// some faulty cell must actually degrade.
	if !strings.Contains(out, "100%") {
		t.Error("no cell reports 100% availability")
	}
	// Golden fingerprint of the quick-mode sweep at seed 1999 (FNV-1a).
	const golden = uint64(0xf7d2935213b35533)
	if got := fnv1a(seq.Bytes()); got != golden {
		t.Errorf("sweep output fingerprint = %#x, want %#x (simulated results changed)", got, golden)
	}
}

// TestRecoverySweepDeterministic: the oracle-vs-reactive recovery sweep
// must emit byte-identical output whether its cells run sequentially or
// fanned out across the worker pool, and the quick-mode output at the
// canonical seed is pinned by a golden fingerprint: a change here means
// the simulated recovery results changed, not just the formatting.
func TestRecoverySweepDeterministic(t *testing.T) {
	var seq bytes.Buffer
	rs := New(&seq, true, 1999)
	if err := rs.Run("recovery"); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	rp := New(&par, true, 1999)
	rp.Workers = 4
	if err := rp.Run("recovery"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel sweep output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
			seq.String(), par.String())
	}
	out := seq.String()
	for _, want := range []string{"oracle", "reactive", "graph:degraded", "fixedhome", "at4", "failover+reissue"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q", want)
		}
	}
	// Golden fingerprint of the quick-mode sweep at seed 1999 (FNV-1a).
	const golden = uint64(0xe9ff992a6218df5a)
	if got := fnv1a(seq.Bytes()); got != golden {
		t.Errorf("sweep output fingerprint = %#x, want %#x (simulated results changed)", got, golden)
	}
}

// TestFig8InFigureFanOut: the Figure 8 five-strategy Barnes-Hut sweep must
// emit byte-identical output whether its (strategy, N) cells run
// sequentially or fanned out across the worker pool, and the quick-mode
// output at the canonical seed is pinned by a golden fingerprint: a change
// here means the simulated sweep results changed, not just the formatting.
func TestFig8InFigureFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("barnes-hut strategy sweep in short mode")
	}
	var seq bytes.Buffer
	rs := New(&seq, true, 1999)
	if err := rs.Run("8"); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	rp := New(&par, true, 1999)
	rp.Workers = 4
	if err := rp.Run("8"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("fanned-out Figure 8 output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
			seq.String(), par.String())
	}
	// Golden fingerprint of the quick-mode figure at seed 1999 (FNV-1a).
	const golden = uint64(0x90d69ced226709b8)
	if got := fnv1a(seq.Bytes()); got != golden {
		t.Errorf("figure 8 output fingerprint = %#x, want %#x (simulated results changed)", got, golden)
	}
}

// TestRatioFiguresInFigureFanOut: the matmul and bitonic ratio figures
// (3, 4, 6, 7) must emit byte-identical output whether their
// (parameter, strategy) cells run sequentially or fanned out across the
// shared worker pool, and each quick-mode output at the canonical seed is
// pinned by a golden fingerprint: a change means the simulated ratio
// results changed, not just the formatting.
func TestRatioFiguresInFigureFanOut(t *testing.T) {
	if testing.Short() {
		t.Skip("ratio figure sweeps in short mode")
	}
	for _, fig := range []string{"3", "4", "6", "7"} {
		fig := fig
		t.Run("fig"+fig, func(t *testing.T) {
			t.Parallel()
			var seq bytes.Buffer
			rs := New(&seq, true, 1999)
			if err := rs.Run(fig); err != nil {
				t.Fatal(err)
			}
			var par bytes.Buffer
			rp := New(&par, true, 1999)
			rp.Workers = 4
			if err := rp.Run(fig); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seq.Bytes(), par.Bytes()) {
				t.Fatalf("fanned-out figure %s output differs from sequential:\n--- sequential\n%s\n--- parallel\n%s",
					fig, seq.String(), par.String())
			}
			// Golden fingerprints of the quick-mode figures at seed 1999
			// (FNV-1a); the sequential output was verified byte-identical
			// to the pre-fan-out implementation when these were captured.
			want := map[string]uint64{
				"3": 0x41415e6be0ccd73c,
				"4": 0x117b29f48968f308,
				"6": 0x243822e0eebdd27e,
				"7": 0xeed5106aff0d24e5,
			}[fig]
			if got := fnv1a(seq.Bytes()); got != want {
				t.Errorf("figure %s output fingerprint = %#x, want %#x (simulated results changed)", fig, got, want)
			}
		})
	}
}

// fnv1a is the 64-bit FNV-1a hash (inlined to keep the golden value
// self-contained).
func fnv1a(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// TestAblationEmbeddingShape: the modular embedding must not be slower
// than the fully random one (it shortens expected tree-edge routes).
func TestAblationEmbeddingShape(t *testing.T) {
	times := make(map[bool]float64)
	for _, random := range []bool{false, true} {
		m := coreMachine(8, accesstree.FactoryOpts(accesstree.Options{RandomEmbedding: random}))
		el, err := runMatmulOn(m, 256, 11)
		if err != nil {
			t.Fatal(err)
		}
		times[random] = el
	}
	if times[false] > times[true]*1.15 {
		t.Fatalf("modular embedding (%.0f) much slower than random (%.0f)",
			times[false], times[true])
	}
}

// TestTableFormatting pins the column alignment helper.
func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	table(&buf, [][]string{{"a", "bb"}, {"ccc", "d"}})
	want := "a    bb\nccc  d\n"
	if buf.String() != want {
		t.Fatalf("table output %q, want %q", buf.String(), want)
	}
	table(&buf, nil) // must not panic
}
