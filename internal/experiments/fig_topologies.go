package experiments

import (
	"fmt"

	"diva"
	"diva/internal/apps/barneshut"
	"diva/internal/mesh"
	"diva/internal/metrics"
)

// This file implements the cross-topology strategy sweep ("topologies"):
// the Figure-8-style Barnes-Hut strategy comparison repeated on every
// network topology at a matched processor count. The paper evaluates its
// provably good strategy only on the 2D mesh of the Parsytec GCel; the
// strategy itself is defined for arbitrary networks via hierarchical
// decomposition, and this sweep asks how the strategy ranking transfers
// to richer interconnects (torus, hypercube, fat-tree).

// topoSweepSet returns the topologies of the sweep at matched processor
// counts (quick: 16, full: 64).
func topoSweepSet(quick bool) []mesh.Topology {
	if quick {
		return []mesh.Topology{
			mesh.New(4, 4),
			mesh.NewTorus(4, 4),
			mesh.NewHypercube(4),
			mesh.NewFatTree(4),
		}
	}
	return []mesh.Topology{
		mesh.New(8, 8),
		mesh.NewTorus(8, 8),
		mesh.NewHypercube(6),
		mesh.NewFatTree(6),
	}
}

// topoCell is one (topology, strategy) measurement of the sweep.
type topoCell struct {
	cong  uint64  // max messages over any link, measured steps
	time  float64 // simulated time of the measured steps, us
	total uint64  // total messages over all links
}

// runTopoCell runs the Barnes-Hut workload for one sweep cell.
func (r *Runner) runTopoCell(topo mesh.Topology, s strategyUnderTest, n, steps int, concurrent bool) (topoCell, error) {
	m, err := diva.New(
		diva.WithTopology(topo),
		diva.WithSeed(r.Seed),
		diva.WithTree(s.spec),
		diva.WithStrategy(s.fact),
		diva.WithShards(r.Shards),
		diva.WithConcurrent(concurrent),
	)
	if err != nil {
		return topoCell{}, err
	}
	col := metrics.New(m.Net)
	_, err = barneshut.Run(m, barneshut.Config{
		N: n, Steps: steps, MeasureFrom: 2, Seed: r.Seed, WithCompute: true,
	}, col)
	if err != nil {
		return topoCell{}, err
	}
	tot := col.Total()
	return topoCell{cong: tot.Cong.MaxMsgs, time: tot.TimeUS, total: tot.Cong.TotalMsgs}, nil
}

// FigTopologies produces the "topologies" figure. The (topology, strategy)
// cells are independent simulations, so they fan out across the runner's
// worker pool like whole figures do; the assembled output is byte-identical
// to a sequential run.
func (r *Runner) FigTopologies() error {
	topos := topoSweepSet(r.Quick)
	strategies := bhStrategies()
	n, steps := 4000, 7
	if r.Quick {
		n, steps = 600, 4
	}
	r.header(fmt.Sprintf("Topologies: Barnes-Hut strategy sweep across networks (P=%d, N=%d)", topos[0].N(), n))

	// The network structures under comparison.
	rows := [][]string{{"topology", "procs", "nodes", "links", "diameter", "bisection"}}
	for _, tp := range topos {
		links := 0
		tp.ForEachLink(func(_, _, _ int) { links++ })
		rows = append(rows, []string{
			tp.String(), fmt.Sprint(tp.N()), fmt.Sprint(tp.Nodes()),
			fmt.Sprint(links), fmt.Sprint(tp.Diameter()), fmt.Sprint(tp.Bisection()),
		})
	}
	table(r.W, rows)

	// Run the sweep: cells are independent, so they fan out across the
	// runner's shared worker pool (each machine is marked Concurrent to
	// keep the per-kernel GOMAXPROCS pin off).
	cells, err := runCells(r, len(topos)*len(strategies), func(i int, concurrent bool) (topoCell, error) {
		return r.runTopoCell(topos[i/len(strategies)], strategies[i%len(strategies)], n, steps, concurrent)
	})
	if err != nil {
		return err
	}

	for _, metric := range []struct {
		name string
		get  func(topoCell) string
	}{
		{"congestion (messages on the busiest link)", func(c topoCell) string { return fmt.Sprint(c.cong) }},
		{"execution time (seconds)", func(c topoCell) string { return f1(c.time / 1e6) }},
		{"total load (1000 messages)", func(c topoCell) string { return f1(float64(c.total) / 1000) }},
	} {
		fmt.Fprintf(r.W, "\n%s:\n", metric.name)
		rows = [][]string{{"topology"}}
		for _, s := range strategies {
			rows[0] = append(rows[0], s.name)
		}
		for ti, tp := range topos {
			row := []string{tp.String()}
			for si := range strategies {
				row = append(row, metric.get(cells[ti*len(strategies)+si]))
			}
			rows = append(rows, row)
		}
		table(r.W, rows)
	}

	// How much the access tree buys over the fixed home on each network.
	fmt.Fprintln(r.W, "\naccess tree advantage (4-ary AT / fixed home):")
	rows = [][]string{{"topology", "congestion", "time"}}
	fhIdx, atIdx := -1, -1
	for i, s := range strategies {
		switch s.name {
		case "fixed home":
			fhIdx = i
		case "4-ary AT":
			atIdx = i
		}
	}
	if fhIdx < 0 || atIdx < 0 {
		return fmt.Errorf("topologies: strategy set lost %q or %q", "fixed home", "4-ary AT")
	}
	for ti, tp := range topos {
		fh := cells[ti*len(strategies)+fhIdx]
		at := cells[ti*len(strategies)+atIdx]
		rows = append(rows, []string{
			tp.String(),
			pct(float64(at.cong) / float64(fh.cong)),
			pct(at.time / fh.time),
		})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nThe strategy is defined for arbitrary networks via hierarchical")
	fmt.Fprintln(r.W, "decomposition (§2); the paper evaluates it on the mesh only. Across")
	fmt.Fprintln(r.W, "topologies the access trees cut the total communication load well below")
	fmt.Fprintln(r.W, "the fixed home everywhere; the congestion gain is largest where routes")
	fmt.Fprintln(r.W, "are long and cuts narrow (mesh), and flattens on networks whose extra")
	fmt.Fprintln(r.W, "capacity already absorbs the fixed home's hotspot (torus, fat-tree).")
	return nil
}
