package experiments

import (
	"fmt"
	"sync"

	"diva/internal/apps/barneshut"
	"diva/internal/decomp"
	"diva/internal/metrics"
)

// bhRow is one Barnes-Hut measurement: total and per-phase metrics for one
// (strategy, N) configuration, over the measured (last 5 of 7) steps.
type bhRow struct {
	strategy string
	n        int
	total    metrics.Result
	build    metrics.Result
	force    metrics.Result
}

// bhCache memoizes Barnes-Hut runs: Figures 8, 9 and 10 are three views of
// the same strategy sweep. The cache is shared between the worker clones of
// a parallel RunAll, with singleflight deduplication so concurrent figures
// wait for an in-flight run instead of recomputing it (the results are
// deterministic, so whoever computes a key stores the same rows).
type bhCache struct {
	mu       sync.Mutex
	rows     map[string]bhRow
	inflight map[string]chan struct{}
}

func newBHCache() *bhCache {
	return &bhCache{rows: make(map[string]bhRow), inflight: make(map[string]chan struct{})}
}

// getOrCompute returns the cached row for key, waiting for a concurrent
// computation of the same key, or computing (and storing) it itself.
func (c *bhCache) getOrCompute(key string, compute func() (bhRow, error)) (bhRow, error) {
	c.mu.Lock()
	for {
		if row, ok := c.rows[key]; ok {
			c.mu.Unlock()
			return row, nil
		}
		ch, busy := c.inflight[key]
		if !busy {
			break
		}
		c.mu.Unlock()
		<-ch
		c.mu.Lock()
	}
	ch := make(chan struct{})
	c.inflight[key] = ch
	c.mu.Unlock()

	row, err := compute()

	c.mu.Lock()
	if err == nil {
		c.rows[key] = row
	}
	delete(c.inflight, key)
	close(ch)
	c.mu.Unlock()
	return row, err
}

// bhStrategies are the five strategies of Figures 8-10, in the paper's
// legend order.
func bhStrategies() []strategyUnderTest {
	return []strategyUnderTest{
		fhStrategy(),
		atStrategy(decomp.Ary16),
		atStrategy(decomp.Ary4K16),
		atStrategy(decomp.Ary4),
		atStrategy(decomp.Ary2),
	}
}

// bhSizes returns the body counts of the sweep.
func (r *Runner) bhSizes() []int {
	if r.Quick {
		return []int{1000, 2000, 3000}
	}
	return []int{10000, 20000, 30000, 40000, 50000, 60000}
}

func (r *Runner) bhMeshSide() int {
	if r.Quick {
		return 8
	}
	return 16
}

// runBarnesHut executes one configuration and extracts the metrics.
// concurrent marks a call from an in-figure fan-out: the machine then runs
// alongside the other cells' machines (simulated results are unaffected).
func (r *Runner) runBarnesHut(rows, cols, n int, s strategyUnderTest, concurrent bool) (bhRow, error) {
	key := fmt.Sprintf("%dx%d/%d/%s", rows, cols, n, s.name)
	return r.bhCache.getOrCompute(key, func() (bhRow, error) {
		m := r.machineConc(rows, cols, s.fact, s.spec, concurrent)
		col := metrics.New(m.Net)
		steps, measureFrom := 7, 2
		if r.Quick {
			steps, measureFrom = 4, 2
		}
		_, err := barneshut.Run(m, barneshut.Config{
			N: n, Steps: steps, MeasureFrom: measureFrom,
			Seed: r.Seed, WithCompute: true,
		}, col)
		if err != nil {
			return bhRow{}, err
		}
		row := bhRow{strategy: s.name, n: n, total: col.Total()}
		if b, ok := col.Phase(barneshut.PhaseBuild); ok {
			row.build = b
		}
		if f, ok := col.Phase(barneshut.PhaseForce); ok {
			row.force = f
		}
		return row, nil
	})
}

// bhSweep runs (and caches) the full Figures 8-10 sweep. The
// (strategy, N) cells are independent simulations, so when the runner has
// workers they fan out across the shared global pool first; the rows are
// then assembled from the cache in deterministic order, making the result
// identical to a sequential sweep.
func (r *Runner) bhSweep() (map[string][]bhRow, error) {
	side := r.bhMeshSide()
	strategies := bhStrategies()
	sizes := r.bhSizes()
	if r.Workers > 1 {
		_, err := runCells(r, len(strategies)*len(sizes), func(i int, concurrent bool) (bhRow, error) {
			return r.runBarnesHut(side, side, sizes[i%len(sizes)], strategies[i/len(sizes)], concurrent)
		})
		if err != nil {
			return nil, err
		}
	}
	out := make(map[string][]bhRow)
	for _, s := range strategies {
		for _, n := range sizes {
			row, err := r.runBarnesHut(side, side, n, s, false)
			if err != nil {
				return nil, err
			}
			out[s.name] = append(out[s.name], row)
		}
	}
	return out, nil
}

// Fig8 reproduces Figure 8: Barnes-Hut congestion (in messages) and
// execution time versus the number of bodies, for the fixed home strategy
// and the 16-, 4-16-, 4- and 2-ary access trees on a 16×16 mesh
// (7 simulated steps, the last 5 measured).
func (r *Runner) Fig8() error {
	side := r.bhMeshSide()
	r.header(fmt.Sprintf("Figure 8: Barnes-Hut on a %dx%d mesh — totals over the measured steps", side, side))
	sweep, err := r.bhSweep()
	if err != nil {
		return err
	}
	r.printBH(sweep, func(row bhRow) (uint64, float64) {
		return row.total.Cong.MaxMsgs, row.total.TimeUS
	}, "")
	fmt.Fprintln(r.W, "\nPaper shape: congestion FH > 16-ary > 4-16-ary > 4-ary > 2-ary;")
	fmt.Fprintln(r.W, "execution time: 4-ary best (startup/congestion compromise), FH worst.")
	return nil
}

// Fig9 reproduces Figure 9: the tree-building phase.
func (r *Runner) Fig9() error {
	side := r.bhMeshSide()
	r.header(fmt.Sprintf("Figure 9: Barnes-Hut tree building phase (%dx%d mesh)", side, side))
	sweep, err := r.bhSweep()
	if err != nil {
		return err
	}
	r.printBH(sweep, func(row bhRow) (uint64, float64) {
		return row.build.Cong.MaxMsgs, row.build.TimeUS
	}, "")
	fmt.Fprintln(r.W, "\nPaper shape: the access trees distribute the copy of the (hot) root via a")
	fmt.Fprintln(r.W, "multicast tree; the fixed home serves every processor one by one, giving a")
	fmt.Fprintln(r.W, "large congestion offset that grows with the number of processors.")
	return nil
}

// Fig10 reproduces Figure 10: the force-computation phase, including the
// local computation time.
func (r *Runner) Fig10() error {
	side := r.bhMeshSide()
	r.header(fmt.Sprintf("Figure 10: Barnes-Hut force computation phase (%dx%d mesh)", side, side))
	sweep, err := r.bhSweep()
	if err != nil {
		return err
	}
	r.printBH(sweep, func(row bhRow) (uint64, float64) {
		return row.force.Cong.MaxMsgs, row.force.TimeUS
	}, "")
	// Local computation (strategy-independent; report from the 4-ary runs).
	fmt.Fprintln(r.W, "\nlocal computation time in the force phase:")
	rows := [][]string{{"bodies", "compute(s)", "phase(s)", "fraction"}}
	for _, row := range sweep["4-ary AT"] {
		rows = append(rows, []string{
			fmt.Sprint(row.n),
			f1(row.force.MaxComputeUS / 1e6),
			f1(row.force.TimeUS / 1e6),
			pct(row.force.MaxComputeUS / row.force.TimeUS),
		})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nPaper: at 60,000 bodies the 4-ary tree spends ~25% of the force phase on")
	fmt.Fprintln(r.W, "communication, the fixed home ~33%; cache hit ratios are ~99%.")
	return nil
}

// printBH prints congestion and time tables for a metric extractor.
func (r *Runner) printBH(sweep map[string][]bhRow, get func(bhRow) (uint64, float64), note string) {
	strategies := bhStrategies()
	head := []string{"bodies"}
	for _, s := range strategies {
		head = append(head, s.name)
	}
	fmt.Fprintln(r.W, "congestion (1000 messages):")
	rows := [][]string{head}
	for i, n := range r.bhSizes() {
		row := []string{fmt.Sprint(n)}
		for _, s := range strategies {
			c, _ := get(sweep[s.name][i])
			row = append(row, f1(float64(c)/1000))
		}
		rows = append(rows, row)
	}
	table(r.W, rows)

	fmt.Fprintln(r.W, "\nexecution time (seconds):")
	rows = [][]string{head}
	for i, n := range r.bhSizes() {
		row := []string{fmt.Sprint(n)}
		for _, s := range strategies {
			_, t := get(sweep[s.name][i])
			row = append(row, f1(t/1e6))
		}
		rows = append(rows, row)
	}
	table(r.W, rows)
	if note != "" {
		fmt.Fprintln(r.W, note)
	}
}

// fig11Paper: values reconstructed from Figure 11 (N = 200·P, 4-8-ary
// access tree vs fixed home): congestion in 1000 messages, time in
// seconds, local computation time of the force phase in seconds.
var fig11Paper = map[int][5]float64{
	// P: {AT cong, FH cong, AT time, FH time, local compute}
	64:  {97, 187, 519, 628, 299},
	128: {145, 408, 611, 795, 315},
	256: {166, 471, 764, 1166, 398},
	512: {249, 1014, 954, 1939, 458},
}

// Fig11 reproduces Figure 11: scaling the Barnes-Hut simulation with
// N = 200·P over meshes 8×8, 8×16, 16×16 and 16×32, comparing the 4-8-ary
// access tree with the fixed home strategy.
func (r *Runner) Fig11() error {
	meshes := [][2]int{{8, 8}, {8, 16}, {16, 16}, {16, 32}}
	perProc := 200
	if r.Quick {
		meshes = [][2]int{{4, 4}, {4, 8}, {8, 8}}
		perProc = 50
	}
	r.header(fmt.Sprintf("Figure 11: Barnes-Hut scaling, N = %d*P (4-8-ary access tree vs fixed home)", perProc))
	at := atStrategy(decomp.Ary4K8)
	fh := fhStrategy()
	rows := [][]string{{"mesh", "P", "N",
		"congAT(k)", "congFH(k)", "AT/FH",
		"timeAT(s)", "timeFH(s)", "AT/FH", "compute(s)",
		"", "paper: congAT", "congFH", "timeAT", "timeFH", "compute"}}
	for _, ms := range meshes {
		p := ms[0] * ms[1]
		n := perProc * p
		ra, err := r.runBarnesHut(ms[0], ms[1], n, at, false)
		if err != nil {
			return err
		}
		rf, err := r.runBarnesHut(ms[0], ms[1], n, fh, false)
		if err != nil {
			return err
		}
		paper := []string{"", "", "", "", ""}
		if pv, ok := fig11Paper[p]; ok && !r.Quick {
			paper = []string{f1(pv[0]), f1(pv[1]), f1(pv[2]), f1(pv[3]), f1(pv[4])}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", ms[0], ms[1]), fmt.Sprint(p), fmt.Sprint(n),
			f1(float64(ra.total.Cong.MaxMsgs) / 1000),
			f1(float64(rf.total.Cong.MaxMsgs) / 1000),
			pct(float64(ra.total.Cong.MaxMsgs) / float64(rf.total.Cong.MaxMsgs)),
			f1(ra.total.TimeUS / 1e6), f1(rf.total.TimeUS / 1e6),
			pct(ra.total.TimeUS / rf.total.TimeUS),
			f1(ra.force.MaxComputeUS / 1e6),
			"|", paper[0], paper[1], paper[2], paper[3], paper[4],
		})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nPaper: the access tree's advantage grows with the number of processors;")
	fmt.Fprintln(r.W, "at 512 processors it is ~2x faster overall and ~3x on communication time.")
	return nil
}
