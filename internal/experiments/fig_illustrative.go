package experiments

import (
	"fmt"

	"diva"
	"diva/internal/apps/bitonic"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/metrics"
)

// Fig1 renders Figure 1: the hierarchical decomposition of the 4×3 mesh,
// level by level. Each processor is labeled with the id of the submesh it
// belongs to at that level.
func (r *Runner) Fig1() error {
	r.header("Figure 1: the partitions of M(4,3)")
	m := mesh.New(4, 3)
	t := decomp.Build(m, decomp.Ary2)
	for level := 0; level <= t.MaxDepth; level++ {
		fmt.Fprintf(r.W, "level %d:\n", level)
		// Label each cell with the index (at this level) of its submesh.
		label := make(map[int]int)
		idx := 0
		for _, n := range t.Nodes {
			effLevel := n.Depth
			if effLevel > level {
				continue
			}
			// A node "covers" this level if it is at the level, or it is a
			// leaf above it.
			if effLevel == level || (n.Leaf() && effLevel < level) {
				rect := n.Region.(decomp.Rect)
				for row := rect.R0; row < rect.R0+rect.Rows; row++ {
					for col := rect.C0; col < rect.C0+rect.Cols; col++ {
						label[m.ID(mesh.Coord{Row: row, Col: col})] = idx
					}
				}
				idx++
			}
		}
		for row := 0; row < m.Rows; row++ {
			for col := 0; col < m.Cols; col++ {
				fmt.Fprintf(r.W, " %2d", label[m.ID(mesh.Coord{Row: row, Col: col})])
			}
			fmt.Fprintln(r.W)
		}
	}
	return nil
}

// Fig2 reproduces the data flow of Figure 2: a single data block is read
// by every processor of one mesh row (the read phase pattern of the matrix
// multiplication), under the fixed home and the access tree strategy. The
// per-link load heatmap shows the fixed home's star pattern versus the
// access tree's balanced multicast tree.
func (r *Runner) Fig2() error {
	r.header("Figure 2: data flow for one block read by a full row (16x16 mesh)")
	side := 16
	if r.Quick {
		side = 8
	}
	for _, s := range []strategyUnderTest{fhStrategy(), atStrategy(decomp.Ary4)} {
		m := r.machine(side, side, s.fact, s.spec)
		mm, _ := m.MeshTopo()
		owner := mm.ID(mesh.Coord{Row: side / 2, Col: side / 2})
		v := m.AllocAt(owner, 4096, "block")
		err := m.Run(func(p *core.Proc) {
			if p.ID/side == side/2 { // the owner's row reads the block
				p.Read(v)
			}
		})
		if err != nil {
			return err
		}
		c := m.Net.Congestion(nil)
		fmt.Fprintf(r.W, "\n%s: congestion %d bytes, total load %d bytes\n",
			s.name, c.MaxBytes, c.TotalBytes)
		fmt.Fprint(r.W, metrics.HeatmapMsgs(mm, m.Net.Loads(), nil))
	}
	fmt.Fprintln(r.W, "\n(width of a line in the paper's figure = bytes over the link;")
	fmt.Fprintln(r.W, "digits above are deciles of the busiest link's load)")
	return nil
}

// Fig5 renders Figure 5: the bitonic sorting circuit for P = 8.
func (r *Runner) Fig5() error {
	r.header("Figure 5: the bitonic sorting circuit for P = 8")
	steps := bitonic.Circuit(8)
	for w := 0; w < 8; w++ {
		fmt.Fprintf(r.W, "%d ", w)
		for _, step := range steps {
			drawn := false
			for _, c := range step {
				if c.Lo == w || c.Hi == w {
					arrow := "v" // maximum moves to Hi
					if !c.Asc {
						arrow = "^"
					}
					if c.Lo == w {
						fmt.Fprintf(r.W, "--%s[%d:%d]", arrow, c.Lo, c.Hi)
					} else {
						fmt.Fprintf(r.W, "--%s[%d:%d]", arrow, c.Lo, c.Hi)
					}
					drawn = true
					break
				}
			}
			if !drawn {
				fmt.Fprint(r.W, "---------")
			}
		}
		fmt.Fprintln(r.W)
	}
	fmt.Fprintln(r.W, "\nphases: 1 step | 2 steps | 3 steps; v = ascending comparator, ^ = descending")
	return nil
}

// AblationEmbedding compares the paper's modular ("modified") embedding
// with the fully random embedding of the theoretical analysis (design
// decision D1 in DESIGN.md).
func (r *Runner) AblationEmbedding() error {
	side := 16
	block := 1024
	if r.Quick {
		side = 8
		block = 256
	}
	r.header(fmt.Sprintf("Ablation: modular vs random access tree embedding (matmul, %dx%d, block %d)", side, side, block))
	rows := [][]string{{"embedding", "congestion(bytes)", "comm time(us)"}}
	for _, mode := range []struct {
		name string
		opts accesstree.Options
	}{
		{"modular (paper)", accesstree.Options{}},
		{"fully random", accesstree.Options{RandomEmbedding: true}},
	} {
		m := diva.MustNew(
			diva.WithMesh(side, side),
			diva.WithSeed(r.Seed),
			diva.WithTree(decomp.Ary4),
			diva.WithStrategy(accesstree.FactoryOpts(mode.opts)),
			diva.WithShards(r.Shards),
			diva.WithConcurrent(r.concurrent),
		)
		res, err := runMatmulOn(m, block, r.Seed)
		if err != nil {
			return err
		}
		c := m.Net.Congestion(nil)
		rows = append(rows, []string{mode.name, fmt.Sprint(c.MaxBytes), f1(res)})
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nThe modular embedding shortens expected parent-child distances; the")
	fmt.Fprintln(r.W, "random embedding matches the theoretical analysis but routes further.")
	return nil
}

// AblationArity sweeps the access tree arity on the matrix multiplication,
// reproducing the paper's §3.1 finding: lower degree gives lower
// congestion, but the 4-ary tree gives the best time (startup compromise).
func (r *Runner) AblationArity() error {
	side := 16
	block := 1024
	if r.Quick {
		side = 8
		block = 256
	}
	r.header(fmt.Sprintf("Ablation: access tree arity (matmul, %dx%d, block %d)", side, side, block))
	rows := [][]string{{"arity", "congestion(bytes)", "comm time(us)"}}
	for _, spec := range []decomp.Spec{decomp.Ary2, decomp.Ary2K4, decomp.Ary4, decomp.Ary4K16, decomp.Ary16} {
		m := r.machine(side, side, atFactory(), spec)
		res, err := runMatmulOn(m, block, r.Seed)
		if err != nil {
			return err
		}
		c := m.Net.Congestion(nil)
		rows = append(rows, []string{spec.Name(), fmt.Sprint(c.MaxBytes), f1(res)})
	}
	fh := fhStrategy()
	m := r.machine(side, side, fh.fact, fh.spec)
	res, err := runMatmulOn(m, block, r.Seed)
	if err != nil {
		return err
	}
	rows = append(rows, []string{"fixed home (=P-ary)", fmt.Sprint(m.Net.Congestion(nil).MaxBytes), f1(res)})
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nPaper: the smaller the degree, the smaller the congestion; the 4-ary")
	fmt.Fprintln(r.W, "tree is the best compromise between congestion and startups.")
	return nil
}
