package experiments

import (
	"fmt"

	"diva"
	"diva/fault"
	"diva/internal/apps/matmul"
	"diva/internal/mesh"
)

// This file implements the degradation sweep ("faults"): the matrix
// multiplication workload under rising fault rates, comparing the fixed
// home strategy against the 4-ary access tree on the healthy mesh and on
// an irregular degraded-mesh graph. The paper evaluates its strategy on a
// fault-free machine; this sweep asks how gracefully each strategy
// degrades when links fail and nodes churn mid-run — re-routes over the
// live spanning tree stretch paths, partitions hold messages until the
// schedule heals them, and the strategy's locality decides how much
// traffic crosses the damaged region at all.

// faultRate is one point of the sweep: a randomized schedule drawn from
// the machine seed with this many link outages and node churns.
type faultRate struct {
	links, churn int
}

// faultRates returns the sweep points (quick: up to 4 link outages).
func faultRates(quick bool) []faultRate {
	if quick {
		return []faultRate{{0, 0}, {2, 0}, {4, 1}}
	}
	return []faultRate{{0, 0}, {2, 0}, {4, 1}, {8, 2}}
}

// faultCell is one (topology, rate, strategy) measurement.
type faultCell struct {
	timeUS  float64
	congMax uint64
	stats   mesh.FaultStats
}

// runFaultCell runs the DSM matrix square for one degradation cell. The
// runner's Recovery field selects the fault-tolerance mode (default
// oracle; "reactive" repeats the sweep with timeout-based detection).
func (r *Runner) runFaultCell(topo string, side int, rate faultRate, strat string, concurrent bool) (faultCell, error) {
	opts := []diva.Option{
		diva.WithTopologyName(topo, side, side),
		diva.WithSeed(r.Seed),
		diva.WithStrategyName(strat),
		diva.WithShards(r.Shards),
		diva.WithConcurrent(concurrent),
		diva.WithFaultGen(fault.Gen{
			LinkFailures: rate.links, NodeChurn: rate.churn,
			MeanDownUS: 20000, HorizonUS: 100000,
		}),
	}
	if r.Recovery != "" && r.Recovery != diva.RecoveryOracle {
		opts = append(opts, diva.WithRecovery(r.Recovery))
	}
	m, err := diva.New(opts...)
	if err != nil {
		return faultCell{}, err
	}
	block := 256
	if r.Quick {
		block = 64
	}
	res, err := matmul.RunDSM(m, matmul.Config{BlockInts: block, Seed: r.Seed})
	if err != nil {
		return faultCell{}, err
	}
	return faultCell{
		timeUS:  res.ElapsedUS,
		congMax: m.Net.Congestion(nil).MaxMsgs,
		stats:   m.Net.FaultStats(),
	}, nil
}

// FigFaults produces the "faults" figure: strategy degradation under link
// failure and churn. The (topology, rate, strategy) cells are independent
// simulations and fan out across the runner's worker pool; every cell's
// schedule is drawn from the machine seed, so the assembled output is
// byte-identical to a sequential run.
func (r *Runner) FigFaults() error {
	topos := []string{"mesh", "graph:degraded"}
	strategies := []string{"fixedhome", "at4"}
	rates := faultRates(r.Quick)
	side := 8
	if r.Quick {
		side = 4
	}
	r.header(fmt.Sprintf("Faults: strategy degradation under link failure and churn (%dx%d)", side, side))
	fmt.Fprintf(r.W, "matmul under a seeded fault schedule: outages last 20000 us on average,\n")
	fmt.Fprintf(r.W, "starting inside the first 100000 us; churn takes a node's interface down.\n")

	nCells := len(topos) * len(rates) * len(strategies)
	cells, err := runCells(r, nCells, func(i int, concurrent bool) (faultCell, error) {
		ti := i / (len(rates) * len(strategies))
		ri := i / len(strategies) % len(rates)
		si := i % len(strategies)
		return r.runFaultCell(topos[ti], side, rates[ri], strategies[si], concurrent)
	})
	if err != nil {
		return err
	}
	at := func(ti, ri, si int) faultCell {
		return cells[(ti*len(rates)+ri)*len(strategies)+si]
	}

	rows := [][]string{{"topology", "strategy", "link faults", "churn", "time (s)",
		"congestion", "availability", "stretch", "retry bytes"}}
	for ti, topo := range topos {
		for si, strat := range strategies {
			for ri, rate := range rates {
				c := at(ti, ri, si)
				rows = append(rows, []string{
					topo, strat, fmt.Sprint(rate.links), fmt.Sprint(rate.churn),
					f2(c.timeUS / 1e6), fmt.Sprint(c.congMax),
					pct(c.stats.Availability()), f2(c.stats.Stretch()),
					fmt.Sprint(c.stats.RetryBytes),
				})
			}
		}
	}
	table(r.W, rows)

	// Degradation relative to each cell's own fault-free run: how much of
	// the access tree's advantage survives a damaged network.
	fmt.Fprintln(r.W, "\nslowdown vs fault-free (same topology and strategy):")
	rows = [][]string{{"topology", "link faults"}}
	for _, strat := range strategies {
		rows[0] = append(rows[0], strat)
	}
	rows[0] = append(rows[0], "at4/fixedhome time")
	for ti, topo := range topos {
		for ri, rate := range rates {
			if rate.links == 0 && rate.churn == 0 {
				continue
			}
			row := []string{topo, fmt.Sprint(rate.links)}
			for si := range strategies {
				row = append(row, pct(at(ti, ri, si).timeUS/at(ti, 0, si).timeUS))
			}
			row = append(row, pct(at(ti, ri, 1).timeUS/at(ti, ri, 0).timeUS))
			rows = append(rows, row)
		}
	}
	table(r.W, rows)
	fmt.Fprintln(r.W, "\nFaults are applied in the network's deterministic routing order, so")
	fmt.Fprintln(r.W, "every cell is bit-reproducible at any kernel shard count. Re-routes ride")
	fmt.Fprintln(r.W, "the live spanning forest (stretch > 1); messages into a partition are")
	fmt.Fprintln(r.W, "held until the schedule heals it and retransmitted (retry bytes). Both")
	fmt.Fprintln(r.W, "strategies slow down by similar factors — the schedule hits links, not")
	fmt.Fprintln(r.W, "strategy structures — but the access tree's shorter, more local routes")
	fmt.Fprintln(r.W, "stretch further when forced onto the spanning forest: locality is a")
	fmt.Fprintln(r.W, "mixed blessing on a damaged machine.")
	return nil
}
