package experiments

import (
	"fmt"

	"diva/internal/apps/bitonic"
	"diva/internal/core"
	"diva/internal/decomp"
)

// runBitonic measures one (mesh, keys, strategy) configuration with
// execution time (the paper: local computation is very limited, so the
// execution time is reported; we charge the compare/merge costs).
// concurrent marks a call from a cell fan-out (results are unaffected).
func (r *Runner) runBitonic(side, keys int, f core.Factory, spec decomp.Spec, concurrent bool) (mmPoint, error) {
	m := r.machineConc(side, side, f, spec, concurrent)
	cfg := bitonic.Config{
		KeysPerProc: keys, Seed: r.Seed,
		WithCompute: true, CompareUS: 1.0,
	}
	var (
		res bitonic.Result
		err error
	)
	if f == nil {
		res, err = bitonic.RunHandOpt(m, cfg)
	} else {
		res, err = bitonic.RunDSM(m, cfg)
	}
	if err != nil {
		return mmPoint{}, err
	}
	return mmPoint{congBytes: m.Net.Congestion(nil).MaxBytes, timeUS: res.ElapsedUS}, nil
}

// fig6Paper: values read off Figure 6 (16×16 mesh, 2-4-ary access tree).
var fig6Paper = map[int][4]float64{
	// keys: {FH cong, AT cong, FH time, AT time}
	256:   {8.11, 2.95, 6.00, 4.11},
	1024:  {7.26, 2.72, 6.01, 3.41},
	4096:  {7.07, 2.76, 6.09, 3.06},
	16384: {7.07, 2.75, 5.86, 2.83},
}

// Fig6 reproduces Figure 6: bitonic sorting on a 16×16 mesh, congestion
// and execution time ratio versus keys per processor, for the fixed home
// and the 2-4-ary access tree strategy.
func (r *Runner) Fig6() error {
	side := 16
	keys := []int{256, 1024, 4096, 16384}
	if r.Quick {
		side = 8
		keys = []int{256, 1024, 4096}
	}
	r.header(fmt.Sprintf("Figure 6: bitonic sorting on a %dx%d mesh (ratios vs hand-optimized)", side, side))

	fh, at := fhFactory(), atFactory()
	cells, err := runRatioCells(r, len(keys), func(row, kind int, concurrent bool) (mmPoint, error) {
		switch kind {
		case 0:
			return r.runBitonic(side, keys[row], nil, decomp.Ary2, concurrent)
		case 1:
			return r.runBitonic(side, keys[row], fh, decomp.Ary2, concurrent)
		default:
			return r.runBitonic(side, keys[row], at, decomp.Ary2K4, concurrent)
		}
	})
	if err != nil {
		return err
	}

	rows := [][]string{{"keys", "congFH", "congAT24", "AT/FH", "timeFH", "timeAT24", "AT/FH", "", "paper(16x16): congFH", "congAT24", "timeFH", "timeAT24"}}
	for i, k := range keys {
		c := cells[i]
		congFH := float64(c.fh.congBytes) / float64(c.hand.congBytes)
		congAT := float64(c.at.congBytes) / float64(c.hand.congBytes)
		timeFH := c.fh.timeUS / c.hand.timeUS
		timeAT := c.at.timeUS / c.hand.timeUS
		p := fig6Paper[k]
		rows = append(rows, []string{
			fmt.Sprint(k),
			f2(congFH), f2(congAT), pct(congAT / congFH),
			f2(timeFH), f2(timeAT), pct(timeAT / timeFH),
			"|", f2(p[0]), f2(p[1]), f2(p[2]), f2(p[3]),
		})
	}
	table(r.W, rows)
	return nil
}

// fig7Paper: values read off Figure 7 (4096 keys per processor).
var fig7Paper = map[int][4]float64{
	// side: {FH cong, AT cong, FH time, AT time}
	4:  {2.81, 2.08, 2.46, 2.03},
	8:  {4.74, 2.23, 4.57, 2.76},
	16: {7.03, 2.76, 6.11, 3.06},
	32: {10.48, 2.90, 7.61, 3.07},
}

// Fig7 reproduces Figure 7: bitonic sorting with 4096 keys per processor,
// scaling the network from 4×4 to 32×32. The paper's analysis: the FH
// congestion ratio grows like log²P; the AT ratio converges to ≈3.
func (r *Runner) Fig7() error {
	keys := 4096
	sides := []int{4, 8, 16, 32}
	if r.Quick {
		keys = 1024
		sides = []int{4, 8, 16}
	}
	r.header(fmt.Sprintf("Figure 7: bitonic sorting with %d keys per processor (ratios vs hand-optimized)", keys))

	fh, at := fhFactory(), atFactory()
	cells, err := runRatioCells(r, len(sides), func(row, kind int, concurrent bool) (mmPoint, error) {
		switch kind {
		case 0:
			return r.runBitonic(sides[row], keys, nil, decomp.Ary2, concurrent)
		case 1:
			return r.runBitonic(sides[row], keys, fh, decomp.Ary2, concurrent)
		default:
			return r.runBitonic(sides[row], keys, at, decomp.Ary2K4, concurrent)
		}
	})
	if err != nil {
		return err
	}

	rows := [][]string{{"mesh", "congFH", "congAT24", "AT/FH", "timeFH", "timeAT24", "AT/FH", "", "paper(4096): congFH", "congAT24", "timeFH", "timeAT24"}}
	for i, side := range sides {
		c := cells[i]
		congFH := float64(c.fh.congBytes) / float64(c.hand.congBytes)
		congAT := float64(c.at.congBytes) / float64(c.hand.congBytes)
		timeFH := c.fh.timeUS / c.hand.timeUS
		timeAT := c.at.timeUS / c.hand.timeUS
		p := fig7Paper[side]
		rows = append(rows, []string{
			fmt.Sprintf("%dx%d", side, side),
			f2(congFH), f2(congAT), pct(congAT / congFH),
			f2(timeFH), f2(timeAT), pct(timeAT / timeFH),
			"|", f2(p[0]), f2(p[1]), f2(p[2]), f2(p[3]),
		})
	}
	table(r.W, rows)
	return nil
}
