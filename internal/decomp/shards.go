package decomp

import "diva/internal/mesh"

// ShardBlocks partitions a topology's processors into k topology-aware
// blocks for the sharded event kernel (sim.Cluster): contiguous submeshes
// on grids, contiguous id ranges (subcubes / subtrees) otherwise. The
// blocks come from repeatedly applying the paper's halving rule to the
// largest remaining region — the same splits the decomposition tree uses —
// so shard-internal traffic is short-haul and cross-shard traffic crosses
// few region boundaries. Returns the proc → shard map; shards are numbered
// in decomposition order and differ in size by at most one halving step.
// k must be in [1, N].
func ShardBlocks(t mesh.Topology, k int) []int {
	if k < 1 || k > t.N() {
		panic("decomp: shard count out of range")
	}
	regions := []Region{rootRegion(t)}
	for len(regions) < k {
		// Split the largest region (ties: first in decomposition order).
		li := 0
		for i, r := range regions {
			if r.Size() > regions[li].Size() {
				li = i
			}
		}
		a, b := regions[li].Halves()
		regions = append(regions, nil)
		copy(regions[li+2:], regions[li+1:])
		regions[li], regions[li+1] = a, b
	}
	shardOf := make([]int, t.N())
	for p := range shardOf {
		shardOf[p] = -1
		for i, r := range regions {
			if r.ContainsProc(p) {
				shardOf[p] = i
				break
			}
		}
		if shardOf[p] < 0 {
			panic("decomp: shard blocks do not cover the topology")
		}
	}
	return shardOf
}
