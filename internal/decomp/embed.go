package decomp

import (
	"diva/internal/xrand"
)

// This file implements the embeddings of access trees into the network.
// Positions are processor ids; the region types translate the paper's
// coordinate rules into id arithmetic (bit-identically for the mesh).
//
// The theoretical strategy maps every access tree node uniformly at random
// into its region. The paper's practical improvement ("modified
// embedding") instead maps only the root randomly and derives every other
// node from its parent with a modular rule, which shortens the expected
// distance between neighboring tree nodes: if the parent is mapped to the
// node in row i, column j of its submesh M', then the child is mapped to
// the node in row i mod m1, column j mod m2 of its submesh M (Region.Embed
// generalizes this rule to non-grid regions via decomposition-order
// ranks).

// EmbedChild applies the modular rule: given the processor simulating the
// parent of node childID, it returns the processor simulating childID
// within its own region.
func (t *Tree) EmbedChild(parentProc int, childID int) int {
	c := &t.Nodes[childID]
	return c.Region.Embed(t.Nodes[c.Parent].Region, parentProc)
}

// EmbedPathDown returns the processors of the nodes on the root-down path
// `path` (as produced by PathDown) under the modular embedding with the
// given root processor.
func (t *Tree) EmbedPathDown(rootProc int, path []int) []int {
	out := make([]int, len(path))
	out[0] = rootProc
	for i := 1; i < len(path); i++ {
		out[i] = t.EmbedChild(out[i-1], path[i])
	}
	return out
}

// EmbedAll returns the processor of every tree node under the modular
// embedding with the given root processor, indexed by node id.
func (t *Tree) EmbedAll(rootProc int) []int {
	out := make([]int, len(t.Nodes))
	out[0] = rootProc
	for id := 1; id < len(t.Nodes); id++ {
		out[id] = t.EmbedChild(out[t.Nodes[id].Parent], id)
	}
	return out
}

// RandomPos returns a processor uniformly at random within the region of
// node id, as a pure function of (seed, id) — the fully random embedding
// of the theoretical analysis, kept for the embedding ablation.
func (t *Tree) RandomPos(seed uint64, id int) int {
	rng := xrand.New(seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	return t.Nodes[id].Region.Draw(rng)
}

// RandomRoot draws a root processor uniformly from the whole network.
func (t *Tree) RandomRoot(rng *xrand.RNG) int {
	return t.Nodes[0].Region.Draw(rng)
}
