package decomp

import (
	"diva/internal/mesh"
	"diva/internal/xrand"
)

// This file implements the embeddings of access trees into the mesh.
//
// The theoretical strategy maps every access tree node uniformly at random
// into its submesh. The paper's practical improvement ("modified
// embedding") instead maps only the root randomly and derives every other
// node from its parent with a modular rule, which shortens the expected
// distance between neighboring tree nodes: if the parent is mapped to the
// node in row i, column j of its submesh M', then the child is mapped to
// the node in row i mod m1, column j mod m2 of its submesh M.

// EmbedChild applies the modular rule: given the (absolute) mesh position
// of the parent of node childID, it returns the absolute position of
// childID within its own submesh.
func (t *Tree) EmbedChild(parentPos mesh.Coord, childID int) mesh.Coord {
	c := &t.Nodes[childID]
	p := &t.Nodes[c.Parent]
	i := parentPos.Row - p.Rect.R0
	j := parentPos.Col - p.Rect.C0
	return mesh.Coord{
		Row: c.Rect.R0 + i%c.Rect.Rows,
		Col: c.Rect.C0 + j%c.Rect.Cols,
	}
}

// EmbedPathDown returns the positions of the nodes on the root-down path
// `path` (as produced by PathDown) under the modular embedding with the
// given root position.
func (t *Tree) EmbedPathDown(rootPos mesh.Coord, path []int) []mesh.Coord {
	out := make([]mesh.Coord, len(path))
	out[0] = rootPos
	for i := 1; i < len(path); i++ {
		out[i] = t.EmbedChild(out[i-1], path[i])
	}
	return out
}

// EmbedAll returns the position of every tree node under the modular
// embedding with the given root position, indexed by node id.
func (t *Tree) EmbedAll(rootPos mesh.Coord) []mesh.Coord {
	out := make([]mesh.Coord, len(t.Nodes))
	out[0] = rootPos
	for id := 1; id < len(t.Nodes); id++ {
		out[id] = t.EmbedChild(out[t.Nodes[id].Parent], id)
	}
	return out
}

// RandomPos returns a position uniformly at random within the submesh of
// node id, as a pure function of (seed, id) — the fully random embedding of
// the theoretical analysis, kept for the embedding ablation.
func (t *Tree) RandomPos(seed uint64, id int) mesh.Coord {
	r := &t.Nodes[id].Rect
	rng := xrand.New(seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
	return mesh.Coord{
		Row: r.R0 + rng.Intn(r.Rows),
		Col: r.C0 + rng.Intn(r.Cols),
	}
}

// RandomRoot draws a root position uniformly from the whole mesh.
func (t *Tree) RandomRoot(rng *xrand.RNG) mesh.Coord {
	return mesh.Coord{Row: rng.Intn(t.M.Rows), Col: rng.Intn(t.M.Cols)}
}
