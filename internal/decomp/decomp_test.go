package decomp

import (
	"testing"
	"testing/quick"

	"diva/internal/mesh"
)

func TestSplitRule(t *testing.T) {
	// The longer side is split ⌈m1/2⌉ / ⌊m1/2⌋ (rows on ties).
	a, b := (Rect{Rows: 5, Cols: 3}).Split()
	if a.Rows != 3 || b.Rows != 2 || a.Cols != 3 || b.Cols != 3 {
		t.Fatalf("5x3 split into %+v and %+v", a, b)
	}
	a, b = (Rect{Rows: 2, Cols: 6}).Split()
	if a.Cols != 3 || b.Cols != 3 || a.Rows != 2 {
		t.Fatalf("2x6 split into %+v and %+v", a, b)
	}
	a, b = (Rect{Rows: 4, Cols: 4}).Split() // tie: split rows
	if a.Rows != 2 || a.Cols != 4 {
		t.Fatalf("4x4 tie split into %+v and %+v", a, b)
	}
	if a.R0 != 0 || b.R0 != 2 {
		t.Fatalf("split offsets wrong: %+v %+v", a, b)
	}
}

// TestFigure1Partitions reproduces Figure 1 of the paper: the partitions of
// M(4,3) at levels 0..4.
func TestFigure1Partitions(t *testing.T) {
	tr := Build(mesh.New(4, 3), Ary2)
	if tr.MaxDepth != 4 {
		t.Fatalf("M(4,3) decomposition depth %d, want 4 (levels 0..4)", tr.MaxDepth)
	}
	// Level 1: two 2x3 submeshes.
	var l1 []Rect
	for _, n := range tr.Nodes {
		if n.Depth == 1 {
			l1 = append(l1, n.Region.(Rect))
		}
	}
	if len(l1) != 2 || l1[0].Rows != 2 || l1[0].Cols != 3 || l1[1].Rows != 2 || l1[1].Cols != 3 {
		t.Fatalf("level 1 partitions %+v, want two 2x3", l1)
	}
	// Level 2: each 2x3 splits into 2x2 and 2x1.
	count22, count21 := 0, 0
	for _, n := range tr.Nodes {
		if n.Depth == 2 {
			rect := n.Region.(Rect)
			switch {
			case rect.Rows == 2 && rect.Cols == 2:
				count22++
			case rect.Rows == 2 && rect.Cols == 1:
				count21++
			default:
				t.Fatalf("unexpected level-2 rect %+v", rect)
			}
		}
	}
	if count22 != 2 || count21 != 2 {
		t.Fatalf("level 2 has %d 2x2 and %d 2x1, want 2 and 2", count22, count21)
	}
	if len(tr.Leaves) != 12 {
		t.Fatalf("%d leaves, want 12", len(tr.Leaves))
	}
}

func TestTreeInvariants2ary(t *testing.T) {
	checkTreeInvariants(t, Build(mesh.New(8, 8), Ary2), 2)
	checkTreeInvariants(t, Build(mesh.New(16, 16), Ary2), 2)
	checkTreeInvariants(t, Build(mesh.New(5, 9), Ary2), 2)
}

func TestTreeInvariants4ary(t *testing.T) {
	checkTreeInvariants(t, Build(mesh.New(8, 8), Ary4), 4)
	checkTreeInvariants(t, Build(mesh.New(16, 16), Ary4), 4)
	checkTreeInvariants(t, Build(mesh.New(6, 3), Ary4), 4)
}

func TestTreeInvariants16ary(t *testing.T) {
	checkTreeInvariants(t, Build(mesh.New(16, 16), Ary16), 16)
	checkTreeInvariants(t, Build(mesh.New(32, 32), Ary16), 16)
}

// regionProcs enumerates the processors of a region via its leaves.
func regionProcs(r Region) []int {
	if r.Single() {
		return []int{r.FirstProc()}
	}
	a, b := r.Halves()
	return append(regionProcs(a), regionProcs(b)...)
}

// checkTreeInvariants verifies structural soundness for any tree: children
// partition the parent's region, degrees are bounded by the arity, leaves
// are single processors covering the whole network in order.
func checkTreeInvariants(t *testing.T, tr *Tree, maxDeg int) {
	t.Helper()
	if tr.Spec.TermK > maxDeg {
		maxDeg = tr.Spec.TermK
	}
	root := tr.Nodes[0]
	if root.Region.Size() != tr.T.N() {
		t.Fatal("root does not cover the network")
	}
	for _, n := range tr.Nodes {
		if n.Leaf() {
			if !n.Region.Single() {
				t.Fatalf("leaf %d is not a single processor: %+v", n.ID, n.Region)
			}
			continue
		}
		if len(n.Children) < 2 || len(n.Children) > maxDeg {
			t.Fatalf("node %d has degree %d (max %d)", n.ID, len(n.Children), maxDeg)
		}
		// Children partition the parent's region.
		area := 0
		for i, c := range n.Children {
			cn := tr.Nodes[c]
			if cn.Parent != n.ID || cn.ChildIndex != i || cn.Depth != n.Depth+1 {
				t.Fatalf("child bookkeeping wrong at node %d child %d", n.ID, c)
			}
			area += cn.Region.Size()
			for _, p := range regionProcs(cn.Region) {
				if !n.Region.ContainsProc(p) {
					t.Fatalf("child %d escapes parent %d", c, n.ID)
				}
			}
		}
		if area != n.Region.Size() {
			t.Fatalf("children of %d cover %d cells of %d", n.ID, area, n.Region.Size())
		}
	}
	// Leaf numbering is a bijection with processors.
	seen := make(map[int]bool)
	for li, nid := range tr.Leaves {
		if tr.Nodes[nid].LeafIndex != li {
			t.Fatalf("leaf index mismatch at %d", li)
		}
		p := tr.ProcOfLeaf[li]
		if seen[p] {
			t.Fatalf("processor %d appears twice in leaf order", p)
		}
		seen[p] = true
		if tr.LeafOfProc[p] != nid {
			t.Fatalf("LeafOfProc inverse broken for %d", p)
		}
	}
	if len(seen) != tr.T.N() {
		t.Fatalf("leaf order covers %d of %d processors", len(seen), tr.T.N())
	}
}

// Test4arySkipsOddLevels: the 4-ary tree's submeshes are exactly the 2-ary
// tree's even-depth submeshes.
func Test4arySkipsOddLevels(t *testing.T) {
	m := mesh.New(16, 16)
	t2 := Build(m, Ary2)
	t4 := Build(m, Ary4)
	evens := make(map[Rect]bool)
	for _, n := range t2.Nodes {
		if n.Depth%2 == 0 || n.Leaf() {
			evens[n.Region.(Rect)] = true
		}
	}
	for _, n := range t4.Nodes {
		if !evens[n.Region.(Rect)] {
			t.Fatalf("4-ary node %+v is not an even-level 2-ary submesh", n.Region)
		}
	}
	// Depth halves (16x16: 2-ary depth 8 -> 4-ary depth 4).
	if t2.MaxDepth != 8 || t4.MaxDepth != 4 {
		t.Fatalf("depths: 2-ary %d (want 8), 4-ary %d (want 4)", t2.MaxDepth, t4.MaxDepth)
	}
}

func Test16aryDepth(t *testing.T) {
	t16 := Build(mesh.New(16, 16), Ary16)
	if t16.MaxDepth != 2 {
		t.Fatalf("16-ary depth on 16x16 = %d, want 2", t16.MaxDepth)
	}
	root := t16.Nodes[0]
	if len(root.Children) != 16 {
		t.Fatalf("16-ary root has %d children, want 16", len(root.Children))
	}
}

// TestTermKAttachesProcessors: ℓ-k-ary trees terminate at submeshes of size
// ≤ k whose children are the individual processors.
func TestTermKAttachesProcessors(t *testing.T) {
	tr := Build(mesh.New(8, 8), Ary2K4)
	checkTreeInvariants(t, tr, 4)
	for _, n := range tr.Nodes {
		if n.Leaf() {
			continue
		}
		if n.Region.Size() <= 4 {
			// Terminal node: all children must be leaves, one per processor.
			if len(n.Children) != n.Region.Size() {
				t.Fatalf("terminal node %+v has %d children", n.Region, len(n.Children))
			}
			for _, c := range n.Children {
				if !tr.Nodes[c].Leaf() {
					t.Fatalf("terminal node child %d is internal", c)
				}
			}
		} else {
			for _, c := range n.Children {
				cn := tr.Nodes[c]
				if cn.Region.Size() > 4 && len(cn.Children) > 2 {
					t.Fatalf("non-terminal region has degree >2")
				}
			}
		}
	}
}

func Test4K8Tree(t *testing.T) {
	tr := Build(mesh.New(8, 16), Ary4K8)
	checkTreeInvariants(t, tr, 8)
}

// TestLeafOrderLocality: leaves that are close in leaf order are close in
// the mesh — the numbering follows the decomposition hierarchy, so any
// aligned block of 2^d consecutive leaves lies inside one submesh of the
// decomposition (this is what bitonic sorting and costzones exploit).
func TestLeafOrderLocality(t *testing.T) {
	m := mesh.New(8, 8)
	tr := Build(m, Ary2)
	// Consecutive leaf pairs (2-aligned) must be mesh neighbors: they share
	// a depth-(max-1) submesh of size 2.
	for i := 0; i+1 < len(tr.Leaves); i += 2 {
		a, b := tr.ProcOfLeaf[i], tr.ProcOfLeaf[i+1]
		if m.Dist(a, b) != 1 {
			t.Fatalf("leaf pair %d,%d not adjacent (procs %d,%d)", i, i+1, a, b)
		}
	}
	// Any aligned block of 16 consecutive leaves spans a 4x4 submesh.
	for start := 0; start+16 <= len(tr.Leaves); start += 16 {
		minR, maxR, minC, maxC := 99, -1, 99, -1
		for i := start; i < start+16; i++ {
			c := m.CoordOf(tr.ProcOfLeaf[i])
			if c.Row < minR {
				minR = c.Row
			}
			if c.Row > maxR {
				maxR = c.Row
			}
			if c.Col < minC {
				minC = c.Col
			}
			if c.Col > maxC {
				maxC = c.Col
			}
		}
		if (maxR-minR+1)*(maxC-minC+1) != 16 {
			t.Fatalf("leaf block at %d spans %dx%d region",
				start, maxR-minR+1, maxC-minC+1)
		}
	}
}

func TestPathToRootAndTreePath(t *testing.T) {
	tr := Build(mesh.New(4, 4), Ary2)
	leaf := tr.Leaves[0]
	up := tr.PathToRoot(leaf)
	if up[0] != leaf || up[len(up)-1] != tr.Root() {
		t.Fatalf("PathToRoot endpoints wrong: %v", up)
	}
	down := tr.PathDown(leaf)
	if down[0] != tr.Root() || down[len(down)-1] != leaf {
		t.Fatalf("PathDown endpoints wrong: %v", down)
	}
	// TreePath between two leaves passes through their LCA exactly once.
	a, b := tr.Leaves[0], tr.Leaves[len(tr.Leaves)-1]
	path := tr.TreePath(a, b)
	if path[0] != a || path[len(path)-1] != b {
		t.Fatalf("TreePath endpoints wrong: %v", path)
	}
	if path[len(path)/2] != tr.Root() {
		// First and last leaves are in different halves: LCA is the root.
		found := false
		for _, n := range path {
			if n == tr.Root() {
				found = true
			}
		}
		if !found {
			t.Fatalf("TreePath of extreme leaves misses the root: %v", path)
		}
	}
	for i := 1; i < len(path); i++ {
		pa, pb := path[i-1], path[i]
		if tr.Nodes[pa].Parent != pb && tr.Nodes[pb].Parent != pa {
			t.Fatalf("TreePath has non-adjacent step %d->%d", pa, pb)
		}
	}
	// Self path.
	if p := tr.TreePath(a, a); len(p) != 1 || p[0] != a {
		t.Fatalf("self TreePath = %v", p)
	}
}

func TestTreePathSymmetricLength(t *testing.T) {
	tr := Build(mesh.New(6, 7), Ary2)
	check := func(x, y uint16) bool {
		a := tr.Leaves[int(x)%len(tr.Leaves)]
		b := tr.Leaves[int(y)%len(tr.Leaves)]
		return len(tr.TreePath(a, b)) == len(tr.TreePath(b, a))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTreeInvariantsRandomSizes property-checks arbitrary mesh shapes.
func TestTreeInvariantsRandomSizes(t *testing.T) {
	specs := []Spec{Ary2, Ary4, Ary16, Ary2K4, Ary4K16}
	check := func(r, c uint8, si uint8) bool {
		rows := int(r)%20 + 1
		cols := int(c)%20 + 1
		spec := specs[int(si)%len(specs)]
		tr := Build(mesh.New(rows, cols), spec)
		if len(tr.Leaves) != rows*cols {
			return false
		}
		for _, n := range tr.Nodes {
			if n.Leaf() != n.Region.Single() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSpecNames(t *testing.T) {
	cases := map[string]Spec{
		"2-ary":    Ary2,
		"4-ary":    Ary4,
		"16-ary":   Ary16,
		"2-4-ary":  Ary2K4,
		"4-16-ary": Ary4K16,
		"4-8-ary":  Ary4K8,
	}
	for want, spec := range cases {
		if got := spec.Name(); got != want {
			t.Errorf("Name(%+v) = %q, want %q", spec, got, want)
		}
		if !spec.Valid() {
			t.Errorf("spec %q invalid", want)
		}
	}
	if (Spec{Base: 3}).Valid() {
		t.Error("Base 3 accepted")
	}
	if (Spec{Base: 4, TermK: 2}).Valid() {
		t.Error("TermK < Base accepted")
	}
}

// TestTreeInvariantsNonGrid: the decomposition generalizes to non-grid
// topologies — hypercube regions are subcubes, fat-tree regions subtree
// host ranges; all structural invariants carry over.
func TestTreeInvariantsNonGrid(t *testing.T) {
	for _, topo := range []mesh.Topology{
		mesh.NewHypercube(4), mesh.NewHypercube(6),
		mesh.NewFatTree(4), mesh.NewFatTree(6),
	} {
		checkTreeInvariants(t, Build(topo, Ary2), 2)
		checkTreeInvariants(t, Build(topo, Ary4), 4)
		checkTreeInvariants(t, Build(topo, Ary16), 16)
		checkTreeInvariants(t, Build(topo, Ary4K8), 8)
	}
	// A power-of-two span decomposes into subcubes: every region of the
	// 2-ary tree on the 4-cube is an aligned power-of-two range.
	tr := Build(mesh.NewHypercube(4), Ary2)
	for _, n := range tr.Nodes {
		s := n.Region.(Span)
		size := s.Hi - s.Lo
		if size&(size-1) != 0 || s.Lo%size != 0 {
			t.Fatalf("hypercube region %+v is not an aligned subcube", s)
		}
	}
}

func TestLeafDist(t *testing.T) {
	tr := Build(mesh.New(4, 4), Ary2)
	p := tr.ProcOfLeaf[0]
	if tr.LeafDist(p, p) != 0 {
		t.Fatal("self leaf distance not zero")
	}
	q := tr.ProcOfLeaf[1]
	if d := tr.LeafDist(p, q); d != 2 {
		t.Fatalf("adjacent leaf distance %d, want 2 (via shared parent)", d)
	}
}
