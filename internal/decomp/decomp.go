// Package decomp implements the hierarchical network decomposition of the
// paper (§2) and the decomposition trees derived from it, generalized from
// the paper's 2D mesh to any mesh.Topology.
//
// The 2-ary decomposition of an m1×m2 mesh (m1 ≥ m2) recursively splits the
// longer side into ⌈m1/2⌉×m2 and ⌊m1/2⌋×m2 submeshes until single
// processors remain (Figure 1 of the paper). The decomposition tree has one
// node per submesh; the access tree of every global variable is a copy of
// this tree. Non-grid topologies decompose the same way over their
// processor-id space (see Region): on the hypercube the halves are
// subcubes, on the fat-tree they are switch subtrees.
//
// Flatter trees reduce startup costs: the 4-ary decomposition skips the odd
// levels of the 2-ary one, the 16-ary skips the odd levels of the 4-ary
// one, and the ℓ-k-ary decomposition terminates at submeshes of size ≤ k,
// whose processors become direct children ("an access tree node that
// represents a submesh of size k' ≤ k gets k' children").
//
// The left-to-right order of the tree's leaves defines the processor
// ident-numbers used by bitonic sorting and the costzones partitioning.
package decomp

import (
	"fmt"

	"diva/internal/mesh"
)

// Spec selects a decomposition-tree variant.
type Spec struct {
	// Base is ℓ: 2, 4 or 16. A tree edge descends log2(Base) levels of the
	// underlying 2-ary decomposition.
	Base int
	// TermK is k: if nonzero, the decomposition terminates at submeshes of
	// size ≤ k and attaches their processors as direct children. Zero means
	// decompose down to single processors.
	TermK int
}

// The variants evaluated in the paper.
var (
	Ary2    = Spec{Base: 2}
	Ary4    = Spec{Base: 4}
	Ary16   = Spec{Base: 16}
	Ary2K4  = Spec{Base: 2, TermK: 4}
	Ary4K8  = Spec{Base: 4, TermK: 8}
	Ary4K16 = Spec{Base: 4, TermK: 16}
)

// Valid reports whether the spec is one the library supports.
func (s Spec) Valid() bool {
	switch s.Base {
	case 2, 4, 16:
	default:
		return false
	}
	return s.TermK == 0 || s.TermK >= s.Base
}

// Name returns the paper's name for the variant ("2-ary", "2-4-ary", ...).
func (s Spec) Name() string {
	if s.TermK > 0 {
		return fmt.Sprintf("%d-%d-ary", s.Base, s.TermK)
	}
	return fmt.Sprintf("%d-ary", s.Base)
}

// levelsPerEdge returns how many 2-ary decomposition levels one tree edge
// descends.
func (s Spec) levelsPerEdge() int {
	switch s.Base {
	case 2:
		return 1
	case 4:
		return 2
	case 16:
		return 4
	}
	panic("decomp: invalid Base " + fmt.Sprint(s.Base))
}

// Node is one node of a decomposition tree.
type Node struct {
	ID       int
	Parent   int // -1 for the root
	Children []int
	Region   Region
	Depth    int // depth in this tree (root = 0)
	// ChildIndex is this node's index in its parent's Children slice
	// (-1 for the root).
	ChildIndex int
	// LeafIndex is the left-to-right leaf number (-1 for internal nodes).
	LeafIndex int
}

// Leaf reports whether the node is a leaf (a single processor).
func (n *Node) Leaf() bool { return len(n.Children) == 0 }

// Tree is a decomposition tree over a topology.
type Tree struct {
	T     mesh.Topology
	Spec  Spec
	Nodes []Node

	// Leaves maps leaf index -> node id, in left-to-right order.
	Leaves []int
	// LeafOfProc maps a processor id to its leaf node id.
	LeafOfProc []int
	// ProcOfLeaf maps leaf index -> processor id. This is the processor
	// ident-numbering used by bitonic sorting and costzones.
	ProcOfLeaf []int
	// MaxDepth is the depth of the deepest leaf.
	MaxDepth int
}

// Build constructs the decomposition tree for topology t according to
// spec.
func Build(t mesh.Topology, spec Spec) *Tree {
	if !spec.Valid() {
		panic(fmt.Sprintf("decomp: invalid spec %+v", spec))
	}
	tr := &Tree{T: t, Spec: spec, LeafOfProc: make([]int, t.N())}
	for i := range tr.LeafOfProc {
		tr.LeafOfProc[i] = -1
	}
	tr.build(rootRegion(t), -1, -1, 0)
	if len(tr.Leaves) != t.N() {
		panic(fmt.Sprintf("decomp: built %d leaves for %d processors", len(tr.Leaves), t.N()))
	}
	return tr
}

// build materializes the node for region and recursively its children.
func (t *Tree) build(region Region, parent, childIndex, depth int) int {
	id := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{
		ID: id, Parent: parent, Region: region, Depth: depth,
		ChildIndex: childIndex, LeafIndex: -1,
	})
	if depth > t.MaxDepth {
		t.MaxDepth = depth
	}
	switch {
	case region.Single():
		t.addLeaf(id, region)
	case t.Spec.TermK > 0 && region.Size() <= t.Spec.TermK:
		// Terminal node: one leaf child per processor, in the 2-ary
		// decomposition order of the region.
		for _, cell := range decompOrder(region) {
			cid := t.build(cell, id, len(t.Nodes[id].Children), depth+1)
			t.Nodes[id].Children = append(t.Nodes[id].Children, cid)
		}
	default:
		for _, sub := range descend(region, t.Spec.levelsPerEdge()) {
			cid := t.build(sub, id, len(t.Nodes[id].Children), depth+1)
			t.Nodes[id].Children = append(t.Nodes[id].Children, cid)
		}
	}
	return id
}

func (t *Tree) addLeaf(id int, region Region) {
	proc := region.FirstProc()
	t.Nodes[id].LeafIndex = len(t.Leaves)
	t.Leaves = append(t.Leaves, id)
	t.ProcOfLeaf = append(t.ProcOfLeaf, proc)
	t.LeafOfProc[proc] = id
}

// descend splits region through `levels` binary levels and returns the
// resulting regions in decomposition order. Regions that reach a single
// processor early are returned as-is (this is how a 4-ary tree attaches a
// leaf that appears at an odd 2-ary level).
func descend(region Region, levels int) []Region {
	if levels == 0 || region.Single() {
		return []Region{region}
	}
	a, b := region.Halves()
	return append(descend(a, levels-1), descend(b, levels-1)...)
}

// decompOrder returns the single processors of region in the order of the
// 2-ary decomposition's leaves.
func decompOrder(region Region) []Region {
	if region.Single() {
		return []Region{region}
	}
	a, b := region.Halves()
	return append(decompOrder(a), decompOrder(b)...)
}

// Root returns the root node id (always 0).
func (t *Tree) Root() int { return 0 }

// PathToRoot returns the node ids from `node` up to and including the root.
func (t *Tree) PathToRoot(node int) []int {
	var path []int
	for node != -1 {
		path = append(path, node)
		node = t.Nodes[node].Parent
	}
	return path
}

// PathDown returns the node ids from the root down to `node`, inclusive.
func (t *Tree) PathDown(node int) []int {
	up := t.PathToRoot(node)
	for i, j := 0, len(up)-1; i < j; i, j = i+1, j-1 {
		up[i], up[j] = up[j], up[i]
	}
	return up
}

// TreePath returns the unique tree path between nodes a and b, inclusive of
// both endpoints.
func (t *Tree) TreePath(a, b int) []int {
	pa := t.PathToRoot(a) // a ... root
	pb := t.PathToRoot(b) // b ... root
	// Trim the common suffix down to the lowest common ancestor.
	i, j := len(pa)-1, len(pb)-1
	for i > 0 && j > 0 && pa[i-1] == pb[j-1] {
		i--
		j--
	}
	path := append([]int{}, pa[:i+1]...) // a ... lca
	for k := j - 1; k >= 0; k-- {        // lca-1 ... b
		path = append(path, pb[k])
	}
	return path
}

// LeafDist returns the tree distance (number of edges) between the leaves
// of processors p and q.
func (t *Tree) LeafDist(p, q int) int {
	return len(t.TreePath(t.LeafOfProc[p], t.LeafOfProc[q])) - 1
}
