// Package decomp implements the hierarchical mesh decomposition of the
// paper (§2) and the decomposition trees derived from it.
//
// The 2-ary decomposition of an m1×m2 mesh (m1 ≥ m2) recursively splits the
// longer side into ⌈m1/2⌉×m2 and ⌊m1/2⌋×m2 submeshes until single
// processors remain (Figure 1 of the paper). The decomposition tree has one
// node per submesh; the access tree of every global variable is a copy of
// this tree.
//
// Flatter trees reduce startup costs: the 4-ary decomposition skips the odd
// levels of the 2-ary one, the 16-ary skips the odd levels of the 4-ary
// one, and the ℓ-k-ary decomposition terminates at submeshes of size ≤ k,
// whose processors become direct children ("an access tree node that
// represents a submesh of size k' ≤ k gets k' children").
//
// The left-to-right order of the tree's leaves defines the processor
// ident-numbers used by bitonic sorting and the costzones partitioning.
package decomp

import (
	"fmt"

	"diva/internal/mesh"
)

// Spec selects a decomposition-tree variant.
type Spec struct {
	// Base is ℓ: 2, 4 or 16. A tree edge descends log2(Base) levels of the
	// underlying 2-ary decomposition.
	Base int
	// TermK is k: if nonzero, the decomposition terminates at submeshes of
	// size ≤ k and attaches their processors as direct children. Zero means
	// decompose down to single processors.
	TermK int
}

// The variants evaluated in the paper.
var (
	Ary2    = Spec{Base: 2}
	Ary4    = Spec{Base: 4}
	Ary16   = Spec{Base: 16}
	Ary2K4  = Spec{Base: 2, TermK: 4}
	Ary4K8  = Spec{Base: 4, TermK: 8}
	Ary4K16 = Spec{Base: 4, TermK: 16}
)

// Valid reports whether the spec is one the library supports.
func (s Spec) Valid() bool {
	switch s.Base {
	case 2, 4, 16:
	default:
		return false
	}
	return s.TermK == 0 || s.TermK >= s.Base
}

// Name returns the paper's name for the variant ("2-ary", "2-4-ary", ...).
func (s Spec) Name() string {
	if s.TermK > 0 {
		return fmt.Sprintf("%d-%d-ary", s.Base, s.TermK)
	}
	return fmt.Sprintf("%d-ary", s.Base)
}

// levelsPerEdge returns how many 2-ary decomposition levels one tree edge
// descends.
func (s Spec) levelsPerEdge() int {
	switch s.Base {
	case 2:
		return 1
	case 4:
		return 2
	case 16:
		return 4
	}
	panic("decomp: invalid Base " + fmt.Sprint(s.Base))
}

// Rect is a submesh: rows [R0, R0+Rows) × columns [C0, C0+Cols).
type Rect struct {
	R0, C0, Rows, Cols int
}

// Size returns the number of processors in the submesh.
func (r Rect) Size() int { return r.Rows * r.Cols }

// Single reports whether the submesh is a single processor.
func (r Rect) Single() bool { return r.Rows == 1 && r.Cols == 1 }

// Contains reports whether the coordinate lies in the submesh.
func (r Rect) Contains(c mesh.Coord) bool {
	return c.Row >= r.R0 && c.Row < r.R0+r.Rows && c.Col >= r.C0 && c.Col < r.C0+r.Cols
}

// Split applies the paper's halving rule: the longer side (rows on ties) is
// split into ⌈n/2⌉ and ⌊n/2⌋. Splitting a single processor panics.
func (r Rect) Split() (a, b Rect) {
	if r.Single() {
		panic("decomp: splitting a single processor")
	}
	if r.Rows >= r.Cols {
		h := (r.Rows + 1) / 2
		a = Rect{R0: r.R0, C0: r.C0, Rows: h, Cols: r.Cols}
		b = Rect{R0: r.R0 + h, C0: r.C0, Rows: r.Rows - h, Cols: r.Cols}
		return a, b
	}
	w := (r.Cols + 1) / 2
	a = Rect{R0: r.R0, C0: r.C0, Rows: r.Rows, Cols: w}
	b = Rect{R0: r.R0, C0: r.C0 + w, Rows: r.Rows, Cols: r.Cols - w}
	return a, b
}

// Node is one node of a decomposition tree.
type Node struct {
	ID       int
	Parent   int // -1 for the root
	Children []int
	Rect     Rect
	Depth    int // depth in this tree (root = 0)
	// ChildIndex is this node's index in its parent's Children slice
	// (-1 for the root).
	ChildIndex int
	// LeafIndex is the left-to-right leaf number (-1 for internal nodes).
	LeafIndex int
}

// Leaf reports whether the node is a leaf (a single processor).
func (n *Node) Leaf() bool { return len(n.Children) == 0 }

// Tree is a decomposition tree over a mesh.
type Tree struct {
	M     mesh.Mesh
	Spec  Spec
	Nodes []Node

	// Leaves maps leaf index -> node id, in left-to-right order.
	Leaves []int
	// LeafOfProc maps a row-major processor id to its leaf node id.
	LeafOfProc []int
	// ProcOfLeaf maps leaf index -> row-major processor id. This is the
	// processor ident-numbering used by bitonic sorting and costzones.
	ProcOfLeaf []int
	// MaxDepth is the depth of the deepest leaf.
	MaxDepth int
}

// Build constructs the decomposition tree for m according to spec.
func Build(m mesh.Mesh, spec Spec) *Tree {
	if !spec.Valid() {
		panic(fmt.Sprintf("decomp: invalid spec %+v", spec))
	}
	t := &Tree{M: m, Spec: spec, LeafOfProc: make([]int, m.N())}
	for i := range t.LeafOfProc {
		t.LeafOfProc[i] = -1
	}
	root := Rect{Rows: m.Rows, Cols: m.Cols}
	t.build(root, -1, -1, 0)
	if len(t.Leaves) != m.N() {
		panic(fmt.Sprintf("decomp: built %d leaves for %d processors", len(t.Leaves), m.N()))
	}
	return t
}

// build materializes the node for rect and recursively its children.
func (t *Tree) build(rect Rect, parent, childIndex, depth int) int {
	id := len(t.Nodes)
	t.Nodes = append(t.Nodes, Node{
		ID: id, Parent: parent, Rect: rect, Depth: depth,
		ChildIndex: childIndex, LeafIndex: -1,
	})
	if depth > t.MaxDepth {
		t.MaxDepth = depth
	}
	switch {
	case rect.Single():
		t.addLeaf(id, rect)
	case t.Spec.TermK > 0 && rect.Size() <= t.Spec.TermK:
		// Terminal node: one leaf child per processor, in the 2-ary
		// decomposition order of the submesh.
		for _, cell := range decompOrder(rect) {
			cid := t.build(cell, id, len(t.Nodes[id].Children), depth+1)
			t.Nodes[id].Children = append(t.Nodes[id].Children, cid)
		}
	default:
		for _, sub := range descend(rect, t.Spec.levelsPerEdge()) {
			cid := t.build(sub, id, len(t.Nodes[id].Children), depth+1)
			t.Nodes[id].Children = append(t.Nodes[id].Children, cid)
		}
	}
	return id
}

func (t *Tree) addLeaf(id int, rect Rect) {
	proc := t.M.ID(mesh.Coord{Row: rect.R0, Col: rect.C0})
	t.Nodes[id].LeafIndex = len(t.Leaves)
	t.Leaves = append(t.Leaves, id)
	t.ProcOfLeaf = append(t.ProcOfLeaf, proc)
	t.LeafOfProc[proc] = id
}

// descend splits rect through `levels` binary levels and returns the
// resulting submeshes in decomposition order. Submeshes that reach a single
// processor early are returned as-is (this is how a 4-ary tree attaches a
// leaf that appears at an odd 2-ary level).
func descend(rect Rect, levels int) []Rect {
	if levels == 0 || rect.Single() {
		return []Rect{rect}
	}
	a, b := rect.Split()
	return append(descend(a, levels-1), descend(b, levels-1)...)
}

// decompOrder returns the single processors of rect in the order of the
// 2-ary decomposition's leaves.
func decompOrder(rect Rect) []Rect {
	if rect.Single() {
		return []Rect{rect}
	}
	a, b := rect.Split()
	return append(decompOrder(a), decompOrder(b)...)
}

// Root returns the root node id (always 0).
func (t *Tree) Root() int { return 0 }

// PathToRoot returns the node ids from `node` up to and including the root.
func (t *Tree) PathToRoot(node int) []int {
	var path []int
	for node != -1 {
		path = append(path, node)
		node = t.Nodes[node].Parent
	}
	return path
}

// PathDown returns the node ids from the root down to `node`, inclusive.
func (t *Tree) PathDown(node int) []int {
	up := t.PathToRoot(node)
	for i, j := 0, len(up)-1; i < j; i, j = i+1, j-1 {
		up[i], up[j] = up[j], up[i]
	}
	return up
}

// TreePath returns the unique tree path between nodes a and b, inclusive of
// both endpoints.
func (t *Tree) TreePath(a, b int) []int {
	pa := t.PathToRoot(a) // a ... root
	pb := t.PathToRoot(b) // b ... root
	// Trim the common suffix down to the lowest common ancestor.
	i, j := len(pa)-1, len(pb)-1
	for i > 0 && j > 0 && pa[i-1] == pb[j-1] {
		i--
		j--
	}
	path := append([]int{}, pa[:i+1]...) // a ... lca
	for k := j - 1; k >= 0; k-- {        // lca-1 ... b
		path = append(path, pb[k])
	}
	return path
}

// LeafDist returns the tree distance (number of edges) between the leaves
// of processors p and q.
func (t *Tree) LeafDist(p, q int) int {
	return len(t.TreePath(t.LeafOfProc[p], t.LeafOfProc[q])) - 1
}
