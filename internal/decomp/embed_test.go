package decomp

import (
	"testing"
	"testing/quick"

	"diva/internal/mesh"
	"diva/internal/xrand"
)

// TestEmbedChildStaysInSubmesh: the modular embedding always maps a node
// into its own submesh.
func TestEmbedChildStaysInSubmesh(t *testing.T) {
	for _, spec := range []Spec{Ary2, Ary4, Ary16, Ary2K4, Ary4K16} {
		tr := Build(mesh.New(16, 16), spec)
		rng := xrand.New(11)
		for trial := 0; trial < 20; trial++ {
			root := tr.RandomRoot(rng)
			pos := tr.EmbedAll(root)
			for id, n := range tr.Nodes {
				if !n.Rect.Contains(pos[id]) {
					t.Fatalf("%s: node %d at %v outside %+v", spec.Name(), id, pos[id], n.Rect)
				}
			}
		}
	}
}

// TestEmbedLeafIsItself: a leaf's submesh is a single processor, so every
// embedding maps the leaf onto that processor.
func TestEmbedLeafIsItself(t *testing.T) {
	tr := Build(mesh.New(8, 8), Ary2)
	pos := tr.EmbedAll(mesh.Coord{Row: 3, Col: 5})
	for _, nid := range tr.Leaves {
		n := tr.Nodes[nid]
		want := mesh.Coord{Row: n.Rect.R0, Col: n.Rect.C0}
		if pos[nid] != want {
			t.Fatalf("leaf %d embedded at %v, want %v", nid, pos[nid], want)
		}
	}
}

// TestModularRule checks the paper's formula directly on a known case.
func TestModularRule(t *testing.T) {
	tr := Build(mesh.New(4, 4), Ary2)
	root := tr.Nodes[0]
	// Root at row 3, col 2. First child is the top 2x4 submesh:
	// i = 3, j = 2 relative to root; child pos = (3 mod 2, 2 mod 4) = (1, 2).
	child := tr.Nodes[root.Children[0]]
	got := tr.EmbedChild(mesh.Coord{Row: 3, Col: 2}, child.ID)
	want := mesh.Coord{Row: child.Rect.R0 + 1, Col: child.Rect.C0 + 2}
	if got != want {
		t.Fatalf("EmbedChild = %v, want %v", got, want)
	}
}

// TestEmbedDeterministic: same root, same positions.
func TestEmbedDeterministic(t *testing.T) {
	tr := Build(mesh.New(16, 16), Ary4)
	a := tr.EmbedAll(mesh.Coord{Row: 7, Col: 9})
	b := tr.EmbedAll(mesh.Coord{Row: 7, Col: 9})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

// TestEmbedPathDownMatchesEmbedAll: incremental path embedding agrees with
// the full embedding.
func TestEmbedPathDownMatchesEmbedAll(t *testing.T) {
	tr := Build(mesh.New(16, 16), Ary2)
	root := mesh.Coord{Row: 2, Col: 13}
	all := tr.EmbedAll(root)
	check := func(x uint16) bool {
		leaf := tr.Leaves[int(x)%len(tr.Leaves)]
		path := tr.PathDown(leaf)
		pos := tr.EmbedPathDown(root, path)
		for i, nid := range path {
			if pos[i] != all[nid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomPosInSubmesh: the ablation embedding also stays inside the
// submesh and is a pure function of (seed, node).
func TestRandomPosInSubmesh(t *testing.T) {
	tr := Build(mesh.New(16, 16), Ary4)
	for id, n := range tr.Nodes {
		p1 := tr.RandomPos(12345, id)
		p2 := tr.RandomPos(12345, id)
		if p1 != p2 {
			t.Fatal("RandomPos not deterministic")
		}
		if !n.Rect.Contains(p1) {
			t.Fatalf("RandomPos %v outside %+v", p1, n.Rect)
		}
	}
}

// TestModularEmbeddingShortensPaths: the point of the modified embedding —
// expected parent-child mesh distance is smaller than under the fully
// random embedding.
func TestModularEmbeddingShortensPaths(t *testing.T) {
	tr := Build(mesh.New(16, 16), Ary2)
	rng := xrand.New(99)
	var modular, random float64
	count := 0
	for trial := 0; trial < 50; trial++ {
		root := tr.RandomRoot(rng)
		pos := tr.EmbedAll(root)
		seed := rng.Uint64()
		for id, n := range tr.Nodes {
			if n.Parent == -1 {
				continue
			}
			pm := pos[id]
			pp := pos[n.Parent]
			modular += float64(abs(pm.Row-pp.Row) + abs(pm.Col-pp.Col))
			rm := tr.RandomPos(seed, id)
			rp := tr.RandomPos(seed, n.Parent)
			random += float64(abs(rm.Row-rp.Row) + abs(rm.Col-rp.Col))
			count++
		}
	}
	if modular >= random {
		t.Fatalf("modular embedding (%0.1f) not shorter than random (%0.1f)",
			modular/float64(count), random/float64(count))
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
