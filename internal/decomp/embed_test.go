package decomp

import (
	"testing"
	"testing/quick"

	"diva/internal/mesh"
	"diva/internal/xrand"
)

// TestEmbedChildStaysInSubmesh: the modular embedding always maps a node
// into its own region.
func TestEmbedChildStaysInSubmesh(t *testing.T) {
	for _, spec := range []Spec{Ary2, Ary4, Ary16, Ary2K4, Ary4K16} {
		tr := Build(mesh.New(16, 16), spec)
		rng := xrand.New(11)
		for trial := 0; trial < 20; trial++ {
			root := tr.RandomRoot(rng)
			pos := tr.EmbedAll(root)
			for id, n := range tr.Nodes {
				if !n.Region.ContainsProc(pos[id]) {
					t.Fatalf("%s: node %d at %v outside %+v", spec.Name(), id, pos[id], n.Region)
				}
			}
		}
	}
}

// TestEmbedLeafIsItself: a leaf's region is a single processor, so every
// embedding maps the leaf onto that processor.
func TestEmbedLeafIsItself(t *testing.T) {
	m := mesh.New(8, 8)
	tr := Build(m, Ary2)
	pos := tr.EmbedAll(m.ID(mesh.Coord{Row: 3, Col: 5}))
	for li, nid := range tr.Leaves {
		if pos[nid] != tr.ProcOfLeaf[li] {
			t.Fatalf("leaf %d embedded at %v, want %v", nid, pos[nid], tr.ProcOfLeaf[li])
		}
	}
}

// TestModularRule checks the paper's formula directly on a known case.
func TestModularRule(t *testing.T) {
	m := mesh.New(4, 4)
	tr := Build(m, Ary2)
	root := tr.Nodes[0]
	// Root at row 3, col 2. First child is the top 2x4 submesh:
	// i = 3, j = 2 relative to root; child pos = (3 mod 2, 2 mod 4) = (1, 2).
	child := tr.Nodes[root.Children[0]]
	got := tr.EmbedChild(m.ID(mesh.Coord{Row: 3, Col: 2}), child.ID)
	rect := child.Region.(Rect)
	want := m.ID(mesh.Coord{Row: rect.R0 + 1, Col: rect.C0 + 2})
	if got != want {
		t.Fatalf("EmbedChild = %v, want %v", got, want)
	}
}

// TestEmbedDeterministic: same root, same positions.
func TestEmbedDeterministic(t *testing.T) {
	m := mesh.New(16, 16)
	tr := Build(m, Ary4)
	a := tr.EmbedAll(m.ID(mesh.Coord{Row: 7, Col: 9}))
	b := tr.EmbedAll(m.ID(mesh.Coord{Row: 7, Col: 9}))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

// TestEmbedPathDownMatchesEmbedAll: incremental path embedding agrees with
// the full embedding.
func TestEmbedPathDownMatchesEmbedAll(t *testing.T) {
	m := mesh.New(16, 16)
	tr := Build(m, Ary2)
	root := m.ID(mesh.Coord{Row: 2, Col: 13})
	all := tr.EmbedAll(root)
	check := func(x uint16) bool {
		leaf := tr.Leaves[int(x)%len(tr.Leaves)]
		path := tr.PathDown(leaf)
		pos := tr.EmbedPathDown(root, path)
		for i, nid := range path {
			if pos[i] != all[nid] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomPosInSubmesh: the ablation embedding also stays inside the
// region and is a pure function of (seed, node).
func TestRandomPosInSubmesh(t *testing.T) {
	tr := Build(mesh.New(16, 16), Ary4)
	for id, n := range tr.Nodes {
		p1 := tr.RandomPos(12345, id)
		p2 := tr.RandomPos(12345, id)
		if p1 != p2 {
			t.Fatal("RandomPos not deterministic")
		}
		if !n.Region.ContainsProc(p1) {
			t.Fatalf("RandomPos %v outside %+v", p1, n.Region)
		}
	}
}

// TestModularEmbeddingShortensPaths: the point of the modified embedding —
// expected parent-child mesh distance is smaller than under the fully
// random embedding.
func TestModularEmbeddingShortensPaths(t *testing.T) {
	m := mesh.New(16, 16)
	tr := Build(m, Ary2)
	rng := xrand.New(99)
	var modular, random float64
	count := 0
	for trial := 0; trial < 50; trial++ {
		root := tr.RandomRoot(rng)
		pos := tr.EmbedAll(root)
		seed := rng.Uint64()
		for id, n := range tr.Nodes {
			if n.Parent == -1 {
				continue
			}
			modular += float64(m.Dist(pos[id], pos[n.Parent]))
			random += float64(m.Dist(tr.RandomPos(seed, id), tr.RandomPos(seed, n.Parent)))
			count++
		}
	}
	if modular >= random {
		t.Fatalf("modular embedding (%0.1f) not shorter than random (%0.1f)",
			modular/float64(count), random/float64(count))
	}
}

// TestNonGridEmbedding: on non-grid topologies (hypercube, fat-tree) the
// span regions keep every embedding inside its region and pin leaves to
// their processors.
func TestNonGridEmbedding(t *testing.T) {
	for _, topo := range []mesh.Topology{mesh.NewHypercube(5), mesh.NewFatTree(5)} {
		for _, spec := range []Spec{Ary2, Ary4, Ary4K8} {
			tr := Build(topo, spec)
			rng := xrand.New(23)
			for trial := 0; trial < 10; trial++ {
				pos := tr.EmbedAll(tr.RandomRoot(rng))
				for id, n := range tr.Nodes {
					if !n.Region.ContainsProc(pos[id]) {
						t.Fatalf("%s/%s: node %d at %d outside %+v",
							topo, spec.Name(), id, pos[id], n.Region)
					}
				}
				for li, nid := range tr.Leaves {
					if pos[nid] != tr.ProcOfLeaf[li] {
						t.Fatalf("%s/%s: leaf %d not pinned", topo, spec.Name(), nid)
					}
				}
			}
		}
	}
}
