package decomp

import (
	"fmt"

	"diva/internal/mesh"
	"diva/internal/xrand"
)

// Region is one piece of a hierarchical network decomposition: a set of
// processors together with the shape information the paper's halving rule
// and modular embedding need. Grid topologies (mesh, torus) use Rect —
// the paper's submeshes with the coordinate-wise modular rule; non-grid
// topologies (hypercube, fat-tree) use Span — contiguous processor-id
// ranges with the rank-wise analogue of the same rule.
type Region interface {
	// Size returns the number of processors in the region.
	Size() int
	// Single reports whether the region is a single processor.
	Single() bool
	// Halves splits the region by the paper's halving rule into the two
	// decomposition-ordered halves. Halving a single processor panics.
	Halves() (a, b Region)
	// ContainsProc reports whether processor p lies in the region.
	ContainsProc(p int) bool
	// FirstProc returns the decomposition-order first processor of the
	// region (for a single region: its processor).
	FirstProc() int
	// Embed maps the position of this region's parent tree node (a
	// processor in parent) to a position inside this region, following
	// the paper's modular embedding rule.
	Embed(parent Region, parentProc int) int
	// Draw returns a uniformly random processor of the region.
	Draw(rng *xrand.RNG) int
}

// rootRegion returns the whole-network region of a topology: its grid
// rectangle when the paper's submesh decomposition applies, the full
// processor-id span otherwise.
func rootRegion(t mesh.Topology) Region {
	if rows, cols, ok := t.Grid(); ok {
		return Rect{W: cols, Rows: rows, Cols: cols}
	}
	return Span{Lo: 0, Hi: t.N()}
}

// Rect is a submesh of a grid topology: rows [R0, R0+Rows) × columns
// [C0, C0+Cols) of a grid whose full width is W columns (row-major
// processor ids, as in the paper's numbering).
type Rect struct {
	W                  int // column count of the underlying grid
	R0, C0, Rows, Cols int
}

// Size returns the number of processors in the submesh.
func (r Rect) Size() int { return r.Rows * r.Cols }

// Single reports whether the submesh is a single processor.
func (r Rect) Single() bool { return r.Rows == 1 && r.Cols == 1 }

// Contains reports whether the coordinate lies in the submesh.
func (r Rect) Contains(c mesh.Coord) bool {
	return c.Row >= r.R0 && c.Row < r.R0+r.Rows && c.Col >= r.C0 && c.Col < r.C0+r.Cols
}

// ContainsProc implements Region.
func (r Rect) ContainsProc(p int) bool {
	return r.Contains(mesh.Coord{Row: p / r.W, Col: p % r.W})
}

// FirstProc implements Region: the top-left corner.
func (r Rect) FirstProc() int { return r.R0*r.W + r.C0 }

// Split applies the paper's halving rule: the longer side (rows on ties)
// is split into ⌈n/2⌉ and ⌊n/2⌋. Splitting a single processor panics.
func (r Rect) Split() (a, b Rect) {
	if r.Single() {
		panic("decomp: splitting a single processor")
	}
	if r.Rows >= r.Cols {
		h := (r.Rows + 1) / 2
		a = Rect{W: r.W, R0: r.R0, C0: r.C0, Rows: h, Cols: r.Cols}
		b = Rect{W: r.W, R0: r.R0 + h, C0: r.C0, Rows: r.Rows - h, Cols: r.Cols}
		return a, b
	}
	w := (r.Cols + 1) / 2
	a = Rect{W: r.W, R0: r.R0, C0: r.C0, Rows: r.Rows, Cols: w}
	b = Rect{W: r.W, R0: r.R0, C0: r.C0 + w, Rows: r.Rows, Cols: r.Cols - w}
	return a, b
}

// Halves implements Region.
func (r Rect) Halves() (a, b Region) {
	x, y := r.Split()
	return x, y
}

// Embed implements Region with the paper's coordinate-wise modular rule:
// if the parent is mapped to the node in row i, column j of its submesh,
// the child is mapped to the node in row i mod m1, column j mod m2 of its
// own submesh.
func (r Rect) Embed(parent Region, parentProc int) int {
	p, ok := parent.(Rect)
	if !ok {
		panic(fmt.Sprintf("decomp: embedding Rect under %T parent", parent))
	}
	i := parentProc/r.W - p.R0
	j := parentProc%r.W - p.C0
	return (r.R0+i%r.Rows)*r.W + (r.C0 + j%r.Cols)
}

// Draw implements Region (row drawn before column, preserving the RNG
// stream of the original mesh-only implementation).
func (r Rect) Draw(rng *xrand.RNG) int {
	row := r.R0 + rng.Intn(r.Rows)
	col := r.C0 + rng.Intn(r.Cols)
	return row*r.W + col
}

// Span is a contiguous processor-id range [Lo, Hi) of a non-grid
// topology. Halving a span follows the paper's ⌈n/2⌉ / ⌊n/2⌋ rule over
// the id order; on the hypercube this fixes the range's highest free bit
// (every region is a subcube), on the fat-tree it follows the switch
// hierarchy (every region is a subtree's host range).
type Span struct {
	Lo, Hi int
}

// Size implements Region.
func (s Span) Size() int { return s.Hi - s.Lo }

// Single implements Region.
func (s Span) Single() bool { return s.Hi-s.Lo == 1 }

// Halves implements Region.
func (s Span) Halves() (a, b Region) {
	if s.Single() {
		panic("decomp: splitting a single processor")
	}
	mid := s.Lo + (s.Size()+1)/2
	return Span{Lo: s.Lo, Hi: mid}, Span{Lo: mid, Hi: s.Hi}
}

// ContainsProc implements Region.
func (s Span) ContainsProc(p int) bool { return p >= s.Lo && p < s.Hi }

// FirstProc implements Region.
func (s Span) FirstProc() int { return s.Lo }

// Embed implements Region with the rank-wise modular rule: the parent's
// rank within its span, modulo this span's size.
func (s Span) Embed(parent Region, parentProc int) int {
	p, ok := parent.(Span)
	if !ok {
		panic(fmt.Sprintf("decomp: embedding Span under %T parent", parent))
	}
	return s.Lo + (parentProc-p.Lo)%s.Size()
}

// Draw implements Region.
func (s Span) Draw(rng *xrand.RNG) int { return s.Lo + rng.Intn(s.Size()) }
