package mesh

import (
	"fmt"
	"sort"

	"diva/internal/xrand"
)

// Graph is a general connected-graph topology: an arbitrary undirected
// simple graph over n processor nodes with precomputed BFS route tables.
// It opens the strategy evaluation — defined for arbitrary networks via
// hierarchical decomposition — to irregular interconnects: random regular
// graphs, Erdős–Rényi graphs, and meshes degraded by removing links.
//
// Undirected edge e between nodes a < b carries the directed link ids 2e
// (a→b) and 2e+1 (b→a), so link ids are dense. Routing is deterministic
// shortest-path: for every destination a BFS fixes, per node, the next hop
// minimizing distance with ties broken toward the lowest neighbor id —
// the same pair always walks the same link sequence. The route tables are
// O(n²) ints, so constructors cap n at graphMaxNodes.
type Graph struct {
	name  string
	n     int
	edges [][2]int // canonical undirected edge list, a < b, sorted

	adj      [][]graphHalf // per node, sorted by (to, link)
	linkTo   []int32       // directed link id -> destination node
	nextLink []int32       // (src*n + dst) -> first link of the route; -1 when src == dst
	dist     []int32       // (src*n + dst) -> route length
	diameter int
	bisect   int
}

// graphHalf is one directed adjacency entry.
type graphHalf struct {
	to   int32
	link int32
}

// graphMaxNodes bounds the processor count: the route tables are O(n²).
const graphMaxNodes = 4096

// NewGraph builds a general-graph topology from an undirected edge list.
// The graph must be simple (no self loops, no duplicate edges) and
// connected. The name is the String() identity, shown in figures and
// listings.
func NewGraph(name string, n int, edges [][2]int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mesh: graph needs a positive node count, have %d", n)
	}
	if n > graphMaxNodes {
		return nil, fmt.Errorf("mesh: graph route tables are O(n^2); %d nodes exceeds the %d cap", n, graphMaxNodes)
	}
	// Canonicalize: a < b per edge, edges sorted lexicographically. The
	// edge order fixes the link ids, so the topology is a pure function of
	// the (unordered) edge set.
	es := make([][2]int, 0, len(edges))
	for _, e := range edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == b {
			return nil, fmt.Errorf("mesh: graph has a self loop at node %d", a)
		}
		if a < 0 || b >= n {
			return nil, fmt.Errorf("mesh: graph edge (%d,%d) outside [0,%d)", e[0], e[1], n)
		}
		es = append(es, [2]int{a, b})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i][0] != es[j][0] {
			return es[i][0] < es[j][0]
		}
		return es[i][1] < es[j][1]
	})
	for i := 1; i < len(es); i++ {
		if es[i] == es[i-1] {
			return nil, fmt.Errorf("mesh: graph has duplicate edge (%d,%d)", es[i][0], es[i][1])
		}
	}
	g := &Graph{name: name, n: n, edges: es}
	g.adj = make([][]graphHalf, n)
	g.linkTo = make([]int32, 2*len(es))
	for e, ed := range es {
		a, b := ed[0], ed[1]
		g.adj[a] = append(g.adj[a], graphHalf{to: int32(b), link: int32(2 * e)})
		g.adj[b] = append(g.adj[b], graphHalf{to: int32(a), link: int32(2*e + 1)})
		g.linkTo[2*e] = int32(b)
		g.linkTo[2*e+1] = int32(a)
	}
	for i := range g.adj {
		a := g.adj[i]
		sort.Slice(a, func(x, y int) bool {
			if a[x].to != a[y].to {
				return a[x].to < a[y].to
			}
			return a[x].link < a[y].link
		})
	}
	if err := g.buildRoutes(); err != nil {
		return nil, err
	}
	g.bisect = 0
	for _, ed := range es {
		// The canonical halving cut is the id-space split the hierarchical
		// decomposition uses for non-grid topologies: ids below n/2 vs. the
		// rest. One-directional capacity, as for the other families.
		if ed[0] < n/2 && ed[1] >= n/2 {
			g.bisect++
		}
	}
	return g, nil
}

// buildRoutes runs one BFS per destination and fills the next-hop and
// distance tables. Next hops prefer the lowest neighbor id among the
// neighbors closest to the destination (and the lowest link id to it,
// though simple graphs have exactly one).
func (g *Graph) buildRoutes() error {
	n := g.n
	g.nextLink = make([]int32, n*n)
	g.dist = make([]int32, n*n)
	depth := make([]int32, n)
	queue := make([]int32, 0, n)
	for dst := 0; dst < n; dst++ {
		for i := range depth {
			depth[i] = -1
		}
		depth[dst] = 0
		queue = append(queue[:0], int32(dst))
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, h := range g.adj[u] {
				if depth[h.to] == -1 {
					depth[h.to] = depth[u] + 1
					queue = append(queue, h.to)
				}
			}
		}
		for u := 0; u < n; u++ {
			if depth[u] == -1 {
				return fmt.Errorf("mesh: graph %q is disconnected (no path %d->%d)", g.name, u, dst)
			}
			g.dist[u*n+dst] = depth[u]
			if int(depth[u]) > g.diameter {
				g.diameter = int(depth[u])
			}
			if u == dst {
				g.nextLink[u*n+dst] = -1
				continue
			}
			next := int32(-1)
			for _, h := range g.adj[u] { // sorted by (to, link): first match is canonical
				if depth[h.to] == depth[u]-1 {
					next = h.link
					break
				}
			}
			g.nextLink[u*n+dst] = next
		}
	}
	return nil
}

// N returns the number of processor nodes.
func (g *Graph) N() int { return g.n }

// Nodes returns the number of network nodes (no switch elements).
func (g *Graph) Nodes() int { return g.n }

// NumLinks returns the directed-link id space: two per undirected edge.
func (g *Graph) NumLinks() int { return 2 * len(g.edges) }

// Dist returns the length of the deterministic route from a to b.
func (g *Graph) Dist(a, b int) int { return int(g.dist[a*g.n+b]) }

// Diameter returns the maximum Dist over all pairs.
func (g *Graph) Diameter() int { return g.diameter }

// Bisection returns the one-directional link capacity across the id-space
// halving cut (ids < n/2 vs. the rest), the first split of the
// hierarchical decomposition on non-grid topologies.
func (g *Graph) Bisection() int { return g.bisect }

// AppendRoute appends the deterministic shortest path from a to b.
func (g *Graph) AppendRoute(buf []int, a, b int) []int {
	u := a
	for u != b {
		li := g.nextLink[u*g.n+b]
		buf = append(buf, int(li))
		u = int(g.linkTo[li])
	}
	return buf
}

// ForEachLink enumerates both directions of every edge.
func (g *Graph) ForEachLink(f func(link, from, to int)) {
	for e, ed := range g.edges {
		f(2*e, ed[0], ed[1])
		f(2*e+1, ed[1], ed[0])
	}
}

// Grid reports no canonical 2D layout: graphs are decomposed over their
// processor id space.
func (g *Graph) Grid() (rows, cols int, ok bool) { return 0, 0, false }

// Degree returns node u's number of incident undirected edges.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

func (g *Graph) String() string { return g.name }

// NewRandomRegular builds a connected random d-regular graph over n nodes
// via the configuration model: stubs are paired from a seeded shuffle,
// rejecting pairings with self loops or duplicate edges, until a simple
// connected graph emerges. n*d must be even, d in [2, n).
func NewRandomRegular(n, d int, seed uint64) (*Graph, error) {
	if d < 2 || d >= n {
		return nil, fmt.Errorf("mesh: random-regular degree must be in [2, %d), have %d", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("mesh: random-regular needs an even n*d, have %d*%d", n, d)
	}
	rng := xrand.New(seed)
	stubs := make([]int, n*d)
	for i := range stubs {
		stubs[i] = i / d
	}
	for attempt := 0; attempt < 1000; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		edges, ok := pairStubs(stubs)
		if !ok {
			continue
		}
		g, err := NewGraph(fmt.Sprintf("random %d-regular graph (%d nodes)", d, n), n, edges)
		if err == nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("mesh: no connected simple %d-regular graph on %d nodes after 1000 pairings", d, n)
}

// pairStubs pairs consecutive stubs into edges, rejecting self loops and
// duplicates.
func pairStubs(stubs []int) ([][2]int, bool) {
	edges := make([][2]int, 0, len(stubs)/2)
	seen := make(map[[2]int]bool, len(stubs)/2)
	for i := 0; i < len(stubs); i += 2 {
		a, b := stubs[i], stubs[i+1]
		if a == b {
			return nil, false
		}
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			return nil, false
		}
		seen[k] = true
		edges = append(edges, k)
	}
	return edges, true
}

// NewErdosRenyi builds a connected Erdős–Rényi G(n, p) graph with
// p = avgDegree/(n-1). Components left by the random draw are joined by
// deterministic bridge edges (lowest node of each component to the lowest
// node of the next), so the result is always connected; the bridges
// slightly raise the realized average degree on sparse draws.
func NewErdosRenyi(n int, avgDegree float64, seed uint64) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("mesh: Erdős–Rényi needs at least 2 nodes, have %d", n)
	}
	if avgDegree <= 0 || avgDegree > float64(n-1) {
		return nil, fmt.Errorf("mesh: Erdős–Rényi average degree must be in (0, %d], have %g", n-1, avgDegree)
	}
	rng := xrand.New(seed)
	p := avgDegree / float64(n-1)
	var edges [][2]int
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < p {
				edges = append(edges, [2]int{a, b})
			}
		}
	}
	edges = bridgeComponents(n, edges)
	return NewGraph(fmt.Sprintf("Erdős–Rényi graph (%d nodes, deg %.1f)", n, avgDegree), n, edges)
}

// bridgeComponents adds one edge between consecutive components (by lowest
// member id) until the graph is connected.
func bridgeComponents(n int, edges [][2]int) [][2]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, e := range edges {
		union(e[0], e[1])
	}
	// Lowest member per root, in id order.
	var heads []int
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		r := find(i)
		if !seen[r] {
			seen[r] = true
			heads = append(heads, i)
		}
	}
	for i := 1; i < len(heads); i++ {
		edges = append(edges, [2]int{heads[i-1], heads[i]})
		union(heads[i-1], heads[i])
	}
	return edges
}

// NewDegradedMesh builds a rows×cols mesh with `drop` of its undirected
// links removed at random — the "mesh after manufacturing defects or
// failed links were fenced out" topology. Removals that would disconnect
// the graph are skipped; when fewer than `drop` removable links exist the
// result keeps the graph connected with as many removed as possible.
func NewDegradedMesh(rows, cols, drop int, seed uint64) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("mesh: degraded mesh dimensions must be positive, have %dx%d", rows, cols)
	}
	if drop < 0 {
		return nil, fmt.Errorf("mesh: degraded mesh cannot drop %d links", drop)
	}
	n := rows * cols
	var edges [][2]int
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	rng := xrand.New(seed)
	order := rng.Perm(len(edges))
	removed := make([]bool, len(edges))
	dropped := 0
	for _, ei := range order {
		if dropped >= drop {
			break
		}
		removed[ei] = true
		if connectedWithout(n, edges, removed) {
			dropped++
		} else {
			removed[ei] = false
		}
	}
	kept := make([][2]int, 0, len(edges)-dropped)
	for ei, e := range edges {
		if !removed[ei] {
			kept = append(kept, e)
		}
	}
	return NewGraph(fmt.Sprintf("%dx%d mesh, %d links dropped", rows, cols, dropped), n, kept)
}

// connectedWithout reports whether the graph stays connected when the
// marked edges are removed.
func connectedWithout(n int, edges [][2]int, removed []bool) bool {
	adj := make([][]int, n)
	for ei, e := range edges {
		if removed[ei] {
			continue
		}
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	seen[0] = true
	stack := []int{0}
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}
