package mesh

import (
	"fmt"
	"testing"
)

// topoCase pairs a topology with the closed forms its structure must
// satisfy.
type topoCase struct {
	t        Topology
	procs    int // N(): processor count
	nodes    int // Nodes(): including switches
	links    int // existing directed links (ForEachLink count)
	diameter int
	bisect   int
}

func topoCases() []topoCase {
	return []topoCase{
		// R×C mesh: N = RC, directed links = 2(R(C-1) + C(R-1)).
		{New(1, 1), 1, 1, 0, 0, 0},
		{New(4, 4), 16, 16, 2 * (4*3 + 4*3), 6, 4},
		{New(5, 7), 35, 35, 2 * (5*6 + 7*4), 10, 5},
		{New(8, 8), 64, 64, 2 * (8*7 + 8*7), 14, 8},
		// R×C torus: all four link slots exist when the dimension wraps;
		// directed links = 4RC (2RC for a single-row/column ring).
		{NewTorus(4, 4), 16, 16, 4 * 16, 4, 8},
		{NewTorus(5, 7), 35, 35, 4 * 35, 5, 10},
		{NewTorus(1, 8), 8, 8, 2 * 8, 4, 2},
		{NewTorus(8, 8), 64, 64, 4 * 64, 8, 16},
		// d-cube: N = 2^d, every node has d links.
		{NewHypercube(0), 1, 1, 0, 0, 0},
		{NewHypercube(4), 16, 16, 16 * 4, 4, 8},
		{NewHypercube(6), 64, 64, 64 * 6, 6, 32},
		// Depth-h binary fat-tree: 2^h hosts, 2^h - 1 switches, 2·N·h
		// directed links (each of the h levels carries N up + N down).
		{NewFatTree(1), 2, 3, 4, 2, 1},
		{NewFatTree(4), 16, 31, 2 * 16 * 4, 8, 8},
		{NewFatTree(6), 64, 127, 2 * 64 * 6, 12, 32},
		// Hand-built general graph: a 5-cycle with one chord (0-2).
		// 6 edges = 12 directed links; diameter 2 (4 reaches 1 via 0 or 3);
		// the id cut {0,1} vs {2,3,4} severs 0-2, 0-4, 1-2: 3 links.
		{mustGraph("5-cycle+chord", 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}}), 5, 5, 12, 2, 3},
	}
}

func mustGraph(name string, n int, edges [][2]int) *Graph {
	g, err := NewGraph(name, n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// generatedGraphs builds one instance per graph constructor family — the
// shapes behind the graph:* registry entries — for the invariant tests,
// where closed forms do not exist.
func generatedGraphs(tb testing.TB) []Topology {
	rr, err := NewRandomRegular(16, 4, 42)
	if err != nil {
		tb.Fatal(err)
	}
	er, err := NewErdosRenyi(16, 4, 42)
	if err != nil {
		tb.Fatal(err)
	}
	dm, err := NewDegradedMesh(4, 4, 2, 42)
	if err != nil {
		tb.Fatal(err)
	}
	return []Topology{rr, er, dm}
}

// TestTopologyClosedForms: node, link, diameter and bisection counts match
// the closed forms of each family.
func TestTopologyClosedForms(t *testing.T) {
	for _, tc := range topoCases() {
		t.Run(tc.t.String(), func(t *testing.T) {
			if got := tc.t.N(); got != tc.procs {
				t.Errorf("N() = %d, want %d", got, tc.procs)
			}
			if got := tc.t.Nodes(); got != tc.nodes {
				t.Errorf("Nodes() = %d, want %d", got, tc.nodes)
			}
			count := 0
			seen := make(map[int]bool)
			tc.t.ForEachLink(func(link, from, to int) {
				count++
				if seen[link] {
					t.Fatalf("link id %d enumerated twice", link)
				}
				seen[link] = true
				if link < 0 || link >= tc.t.NumLinks() {
					t.Fatalf("link id %d outside [0, %d)", link, tc.t.NumLinks())
				}
				if from < 0 || from >= tc.t.Nodes() || to < 0 || to >= tc.t.Nodes() {
					t.Fatalf("link %d endpoints %d->%d outside node space", link, from, to)
				}
			})
			if count != tc.links {
				t.Errorf("ForEachLink enumerated %d links, want %d", count, tc.links)
			}
			if got := tc.t.Diameter(); got != tc.diameter {
				t.Errorf("Diameter() = %d, want %d", got, tc.diameter)
			}
			if got := tc.t.Bisection(); got != tc.bisect {
				t.Errorf("Bisection() = %d, want %d", got, tc.bisect)
			}
		})
	}
}

// linkGraph builds adjacency and link-endpoint tables from ForEachLink.
func linkGraph(tp Topology) (adj [][]int, ends map[int][2]int) {
	adj = make([][]int, tp.Nodes())
	ends = make(map[int][2]int)
	tp.ForEachLink(func(link, from, to int) {
		adj[from] = append(adj[from], to)
		ends[link] = [2]int{from, to}
	})
	return adj, ends
}

// bfsDist returns the link-count distances from src over the full node
// graph (switches included).
func bfsDist(adj [][]int, src int) []int {
	dist := make([]int, len(adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] == -1 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// TestRoutesAreShortestAndDeterministic: for every processor pair, the
// deterministic route is a connected walk from a to b whose length equals
// both Dist(a, b) and the BFS shortest-path distance in the link graph,
// and routing the same pair twice yields the same links. The diameter is
// the maximum observed distance.
func TestRoutesAreShortestAndDeterministic(t *testing.T) {
	for _, tc := range topoCases() {
		t.Run(tc.t.String(), func(t *testing.T) {
			checkRouteInvariants(t, tc.t)
		})
	}
}

// TestGraphConstructorRouteInvariants: the generated-graph constructors
// behind the graph:* registry entries satisfy the same route invariants
// as the closed-form families.
func TestGraphConstructorRouteInvariants(t *testing.T) {
	for _, tp := range generatedGraphs(t) {
		t.Run(tp.String(), func(t *testing.T) {
			checkRouteInvariants(t, tp)
		})
	}
}

func checkRouteInvariants(t *testing.T, tp Topology) {
	t.Helper()
	adj, ends := linkGraph(tp)
	maxDist := 0
	for a := 0; a < tp.N(); a++ {
		dist := bfsDist(adj, a)
		for b := 0; b < tp.N(); b++ {
			route := tp.AppendRoute(nil, a, b)
			again := tp.AppendRoute(nil, a, b)
			if fmt.Sprint(route) != fmt.Sprint(again) {
				t.Fatalf("route %d->%d not deterministic", a, b)
			}
			if len(route) != tp.Dist(a, b) {
				t.Fatalf("route %d->%d has %d links, Dist says %d",
					a, b, len(route), tp.Dist(a, b))
			}
			if dist[b] == -1 && a != b {
				t.Fatalf("no path %d->%d in link graph", a, b)
			}
			if len(route) != dist[b] {
				t.Fatalf("route %d->%d has %d links, BFS shortest is %d",
					a, b, len(route), dist[b])
			}
			if tp.Dist(a, b) > maxDist {
				maxDist = tp.Dist(a, b)
			}
			// The route is a connected walk from a to b.
			cur := a
			for _, l := range route {
				e, ok := ends[l]
				if !ok {
					t.Fatalf("route %d->%d uses unknown link %d", a, b, l)
				}
				if e[0] != cur {
					t.Fatalf("route %d->%d: link %d leaves %d, walk is at %d",
						a, b, l, e[0], cur)
				}
				cur = e[1]
			}
			if cur != b {
				t.Fatalf("route %d->%d ends at %d", a, b, cur)
			}
		}
	}
	if tp.N() > 1 && maxDist != tp.Diameter() {
		t.Errorf("max route length %d != Diameter() %d", maxDist, tp.Diameter())
	}
}

// TestMeshRouteUnchanged: the extracted AppendRoute preserves the exact
// dimension-order link sequence of the original mesh router (columns
// before rows) — the delivery hot path the golden determinism tests pin.
func TestMeshRouteUnchanged(t *testing.T) {
	m := New(4, 5)
	// From (0,0)=0 to (2,3)=13: three East links, then two South links.
	want := []int{
		m.LinkID(0, East), m.LinkID(1, East), m.LinkID(2, East),
		m.LinkID(3, South), m.LinkID(8, South),
	}
	got := m.AppendRoute(nil, 0, 13)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("AppendRoute(0, 13) = %v, want %v", got, want)
	}
	if pl := m.PathLinks(0, 13); fmt.Sprint(pl) != fmt.Sprint(want) {
		t.Fatalf("PathLinks(0, 13) = %v, want %v", pl, want)
	}
}

// TestTorusWrapRouting: the torus goes the shorter way around, taking the
// positive direction on ties.
func TestTorusWrapRouting(t *testing.T) {
	tor := NewTorus(1, 8)
	// 0 -> 6: two West hops around the wrap, not six East hops.
	route := tor.AppendRoute(nil, 0, 6)
	want := []int{tor.LinkID(0, West), tor.LinkID(7, West)}
	if fmt.Sprint(route) != fmt.Sprint(want) {
		t.Fatalf("wrap route = %v, want %v", route, want)
	}
	// 0 -> 4 is a tie: the positive (East) way is taken.
	route = tor.AppendRoute(nil, 0, 4)
	if len(route) != 4 || route[0] != tor.LinkID(0, East) {
		t.Fatalf("tie route = %v, want 4 East links", route)
	}
}

// TestFatTreeParallelLinkSpreading: the d-mod-k rule spreads flows from
// distinct sources across the parallel links of a shared up-edge.
func TestFatTreeParallelLinkSpreading(t *testing.T) {
	ft := NewFatTree(3)
	// Hosts 0..3 all cross the root to reach host 7; their final up-edge
	// (left level-1 switch -> root, multiplicity 4) must use 4 distinct
	// parallel links.
	used := make(map[int]bool)
	for src := 0; src < 4; src++ {
		route := ft.AppendRoute(nil, src, 7)
		// Route shape: host-up, up(level 2), up(level 1), down(level 1),
		// down(level 2), host-down.
		if len(route) != 6 {
			t.Fatalf("route %d->7 has %d links, want 6", src, len(route))
		}
		used[route[2]] = true
	}
	if len(used) != 4 {
		t.Fatalf("4 sources used %d distinct parallel top links, want 4", len(used))
	}
}
