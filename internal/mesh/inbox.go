package mesh

import "diva/internal/sim"

// nodeInbox queues KindInbox messages per tag until a process receives
// them. Each (node, tag) stream is FIFO.
type nodeInbox struct {
	queues  map[int][]*Msg
	waiters map[int][]*sim.Future
}

func (ib *nodeInbox) init() {
	if ib.queues == nil {
		ib.queues = make(map[int][]*Msg)
		ib.waiters = make(map[int][]*sim.Future)
	}
}

func (nw *Network) deliverInbox(m *Msg) {
	// Inbox messages outlive their delivery (they wait in the queue until a
	// process Recvs them), so they must never return to the free list.
	m.pooled = false
	ib := &nw.inboxes[m.Dst]
	ib.init()
	if ws := ib.waiters[m.Tag]; len(ws) > 0 {
		ib.waiters[m.Tag] = ws[1:]
		ws[0].Complete(nw.kOf(m.Dst), m)
		return
	}
	ib.queues[m.Tag] = append(ib.queues[m.Tag], m)
}

// Recv blocks process p until a KindInbox message with the given tag
// arrives at node, and returns it. Messages with equal tags are received in
// arrival order; concurrent receivers on one tag are served FIFO.
func (nw *Network) Recv(p *sim.Proc, node, tag int) *Msg {
	ib := &nw.inboxes[node]
	ib.init()
	if q := ib.queues[tag]; len(q) > 0 {
		ib.queues[tag] = q[1:]
		return q[0]
	}
	f := sim.NewFuture()
	ib.waiters[tag] = append(ib.waiters[tag], f)
	return f.Await(p).(*Msg)
}

// TryRecv returns a queued message with the given tag, or nil. It never
// blocks.
func (nw *Network) TryRecv(node, tag int) *Msg {
	ib := &nw.inboxes[node]
	ib.init()
	if q := ib.queues[tag]; len(q) > 0 {
		ib.queues[tag] = q[1:]
		return q[0]
	}
	return nil
}
