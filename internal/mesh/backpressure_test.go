package mesh

import (
	"testing"

	"diva/internal/sim"
)

// newNet builds a network with or without wormhole backpressure.
func newNet(rows, cols int, noBP bool) (*sim.Kernel, *Network) {
	k := sim.New()
	p := testParams()
	p.NoBackpressure = noBP
	return k, NewNetwork(k, New(rows, cols), p)
}

// TestBackpressureUnblockedTimingEqual: without contention, the two models
// deliver at the same time.
func TestBackpressureUnblockedTimingEqual(t *testing.T) {
	var times [2]sim.Time
	for i, noBP := range []bool{false, true} {
		k, nw := newNet(1, 5, noBP)
		nw.Handle(42, func(m *Msg) { times[i] = k.Now() })
		k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 4, Size: 500, Kind: 42}) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	if times[0] != times[1] {
		t.Fatalf("uncontended delivery differs: %v vs %v", times[0], times[1])
	}
}

// TestBackpressureHoldsUpstreamLinks: a message blocked behind a busy link
// keeps its upstream links occupied, delaying traffic that only crosses
// those upstream links.
func TestBackpressureHoldsUpstreamLinks(t *testing.T) {
	delivery := func(noBP bool) sim.Time {
		k, nw := newNet(1, 4, noBP)
		var bystander sim.Time
		nw.Handle(42, func(m *Msg) {
			if m.Tag == 3 {
				bystander = k.Now()
			}
		})
		k.At(0, func() {
			// Saturate the last link (2->3).
			nw.Send(&Msg{Src: 2, Dst: 3, Size: 4000, Kind: 42, Tag: 1})
			// A long message 0->3 queues behind it at link 2->3.
			nw.Send(&Msg{Src: 0, Dst: 3, Size: 4000, Kind: 42, Tag: 2})
		})
		// A bystander crossing only link 0->1 after the long message's
		// head has passed: with backpressure it must wait for the long
		// message to drain; without, link 0->1 frees early.
		k.At(5000, func() {
			nw.Send(&Msg{Src: 0, Dst: 1, Size: 10, Kind: 42, Tag: 3})
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return bystander
	}
	with := delivery(false)
	without := delivery(true)
	if with <= without {
		t.Fatalf("backpressure did not delay upstream bystander: with=%v without=%v", with, without)
	}
}

// TestBackpressureCongestionCountsEqual: the traffic counters are a pure
// counting property, identical across timing models.
func TestBackpressureCongestionCountsEqual(t *testing.T) {
	counts := func(noBP bool) Congestion {
		k, nw := newNet(4, 4, noBP)
		nw.Handle(42, func(m *Msg) {})
		k.At(0, func() {
			for src := 0; src < 16; src++ {
				nw.Send(&Msg{Src: src, Dst: 15 - src, Size: 100, Kind: 42})
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return nw.Congestion(nil)
	}
	a, b := counts(false), counts(true)
	if a != b {
		t.Fatalf("congestion differs across timing models: %+v vs %+v", a, b)
	}
}

// TestHotspotSaturationOrdering: many senders into one node — with
// backpressure the completion time is at least the no-backpressure time.
func TestHotspotSaturationOrdering(t *testing.T) {
	finish := func(noBP bool) sim.Time {
		k, nw := newNet(8, 8, noBP)
		nw.Handle(42, func(m *Msg) {})
		k.At(0, func() {
			for src := 1; src < 64; src++ {
				nw.Send(&Msg{Src: src, Dst: 0, Size: 1000, Kind: 42})
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now()
	}
	if with, without := finish(false), finish(true); with < without {
		t.Fatalf("backpressure finished earlier (%v) than without (%v)", with, without)
	}
}

// TestSendStats: per-kind accounting.
func TestSendStats(t *testing.T) {
	k, nw := newNet(1, 2, false)
	nw.Handle(42, func(m *Msg) {})
	nw.Handle(43, func(m *Msg) {})
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 10, Kind: 42})
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 20, Kind: 42})
		nw.Send(&Msg{Src: 1, Dst: 1, Size: 30, Kind: 43}) // local counts too
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	msgs, bytes := nw.SendStats()
	if msgs[42] != 2 || bytes[42] != 30 {
		t.Fatalf("kind 42: %d msgs %d bytes", msgs[42], bytes[42])
	}
	if msgs[43] != 1 || bytes[43] != 30 {
		t.Fatalf("kind 43: %d msgs %d bytes", msgs[43], bytes[43])
	}
}

// TestChargeCPUDelaysHandlers: protocol bookkeeping time on a node pushes
// later receive processing.
func TestChargeCPUDelaysHandlers(t *testing.T) {
	k, nw := newNet(1, 2, false)
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	nw.ChargeCPU(1, 5000) // node 1 CPU busy until 5000
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 10, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Arrival ~220; CPU busy until 5000; +100 recv = 5100.
	if at != 5100 {
		t.Fatalf("handler ran at %v, want 5100", at)
	}
}
