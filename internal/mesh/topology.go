package mesh

import "fmt"

// Topology abstracts the interconnect of the simulated machine: a set of
// processor nodes (ids 0..N-1), directed links with stable integer ids, and
// a deterministic shortest-path route between any two processors. The 2D
// mesh of the paper's Parsytec GCel is one implementation; the torus,
// hypercube and fat-tree open the strategy evaluation to other network
// structures.
//
// The contract every implementation must satisfy:
//
//   - AppendRoute is a pure function of (a, b): the same pair always yields
//     the same link sequence (deterministic routing, as on the GCel's
//     wormhole router). The route's length equals Dist(a, b).
//   - Link ids are dense enough to index a per-link table of NumLinks()
//     entries; distinct directed links have distinct ids.
//   - Some topologies (the fat-tree) route through pure switch elements
//     that host no processor; Nodes() counts those too, N() does not.
type Topology interface {
	fmt.Stringer

	// N returns the number of processor nodes.
	N() int
	// Nodes returns the number of network nodes including pure switch
	// elements (== N() except for indirect topologies like the fat-tree).
	Nodes() int
	// NumLinks returns the size of the directed-link id space. Ids in
	// [0, NumLinks()) may be sparse (unused border slots), but every link
	// returned by AppendRoute or ForEachLink lies in the range.
	NumLinks() int
	// Dist returns the number of links on the deterministic route from a
	// to b (0 iff a == b).
	Dist(a, b int) int
	// Diameter returns the maximum Dist over all processor pairs.
	Diameter() int
	// Bisection returns the one-directional link capacity across the
	// canonical halving cut of the topology (the first split of its
	// hierarchical decomposition): the number of directed links leading
	// from one half to the other.
	Bisection() int
	// AppendRoute appends the directed link ids of the deterministic
	// shortest path from a to b to buf and returns the extended slice.
	// a == b appends nothing.
	AppendRoute(buf []int, a, b int) []int
	// ForEachLink calls f for every existing directed link (switch-level
	// links included), identifying its endpoints by node id in [0, Nodes()).
	ForEachLink(f func(link, from, to int))
	// Grid reports the row/column dimensions of the topology's canonical
	// 2D layout when the paper's rectangle decomposition applies (mesh,
	// torus). Non-grid topologies return ok == false and are decomposed
	// over their processor id space instead.
	Grid() (rows, cols int, ok bool)
}

// Interface conformance of the concrete topologies.
var (
	_ Topology = Mesh{}
	_ Topology = Torus{}
	_ Topology = Hypercube{}
	_ Topology = FatTree{}
	_ Topology = (*Graph)(nil)
)
