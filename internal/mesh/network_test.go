package mesh

import (
	"testing"

	"diva/internal/sim"
)

// testParams gives round numbers for hand-computable timing checks.
func testParams() Params {
	return Params{
		BytesPerUS:      1,
		HopLatencyUS:    5,
		StartupSendUS:   100,
		StartupRecvUS:   100,
		LocalDeliveryUS: 2,
	}
}

func newTestNet(rows, cols int) (*sim.Kernel, *Network) {
	k := sim.New()
	nw := NewNetwork(k, New(rows, cols), testParams())
	return k, nw
}

func TestSendDeliversToHandler(t *testing.T) {
	k, nw := newTestNet(4, 4)
	var got *Msg
	nw.Handle(42, func(m *Msg) { got = m })
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 15, Size: 100, Kind: 42, Payload: "hi"})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Payload != "hi" {
		t.Fatal("message not delivered")
	}
}

func TestDeliveryTiming(t *testing.T) {
	k, nw := newTestNet(1, 3)
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 2, Size: 50, Kind: 42})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// startupSend(100) + 2 hops * 5 + size 50 + startupRecv(100) = 260.
	if at != 260 {
		t.Fatalf("delivered at %v, want 260", at)
	}
}

func TestLocalDelivery(t *testing.T) {
	k, nw := newTestNet(2, 2)
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(0, func() {
		nw.Send(&Msg{Src: 1, Dst: 1, Size: 1000, Kind: 42})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// startup(100) + local(2) + recv(100); size is irrelevant locally.
	if at != 202 {
		t.Fatalf("local delivery at %v, want 202", at)
	}
	if c := nw.Congestion(nil); c.TotalMsgs != 0 {
		t.Fatal("local message counted on links")
	}
}

func TestCongestionCounting(t *testing.T) {
	k, nw := newTestNet(1, 4)
	nw.Handle(42, func(m *Msg) {})
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 3, Size: 10, Kind: 42})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	c := nw.Congestion(nil)
	if c.TotalMsgs != 3 { // three links traversed
		t.Fatalf("total link messages %d, want 3", c.TotalMsgs)
	}
	if c.MaxMsgs != 1 || c.MaxBytes != 10 {
		t.Fatalf("max = (%d msgs, %d bytes), want (1, 10)", c.MaxMsgs, c.MaxBytes)
	}
	if c.TotalBytes != 30 {
		t.Fatalf("total bytes %d, want 30", c.TotalBytes)
	}
}

func TestCongestionSnapshotDelta(t *testing.T) {
	k, nw := newTestNet(1, 2)
	nw.Handle(42, func(m *Msg) {})
	send := func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 8, Kind: 42}) }
	var snap []LinkLoad
	k.At(0, send)
	k.At(1000, func() { snap = nw.Loads() })
	k.At(2000, send)
	k.At(2001, send)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	c := nw.Congestion(snap)
	if c.MaxMsgs != 2 {
		t.Fatalf("delta congestion %d msgs, want 2", c.MaxMsgs)
	}
	if tot := nw.Congestion(nil); tot.MaxMsgs != 3 {
		t.Fatalf("total congestion %d msgs, want 3", tot.MaxMsgs)
	}
}

// TestLinkContentionSerializes: two messages crossing the same link must be
// serialized by its bandwidth.
func TestLinkContentionSerializes(t *testing.T) {
	k, nw := newTestNet(1, 2)
	var times []sim.Time
	nw.Handle(42, func(m *Msg) { times = append(times, k.Now()) })
	k.At(0, func() {
		// Two sends from node 0; the second pays the startup after the
		// first (CPU) and then queues behind it on the link.
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 1000, Kind: 42})
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 1000, Kind: 42})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// First: depart 100, head 105, tail 1105, recv done 1205. The link is
	// held until the tail drains (1105).
	if times[0] != 1205 {
		t.Fatalf("first delivery %v, want 1205", times[0])
	}
	// Second: depart 200 (CPU), link free at 1105 -> head 1110, tail
	// 2110, + recv 100 = 2210.
	if times[1] != 2210 {
		t.Fatalf("second delivery %v, want 2210", times[1])
	}
}

// TestOppositeDirectionsIndependent: the paper measured that both directions
// of a link are independent; verify opposing traffic does not contend.
func TestOppositeDirectionsIndependent(t *testing.T) {
	k, nw := newTestNet(1, 2)
	var times []sim.Time
	nw.Handle(42, func(m *Msg) { times = append(times, k.Now()) })
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 1000, Kind: 42})
		nw.Send(&Msg{Src: 1, Dst: 0, Size: 1000, Kind: 42})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if times[0] != 1205 || times[1] != 1205 {
		t.Fatalf("deliveries %v, want both 1205 (independent directions)", times)
	}
}

func TestFIFOBetweenSamePair(t *testing.T) {
	k, nw := newTestNet(1, 8)
	var order []int
	nw.Handle(42, func(m *Msg) { order = append(order, m.Tag) })
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 7, Size: 5000, Kind: 42, Tag: 1})
		nw.Send(&Msg{Src: 0, Dst: 7, Size: 10, Kind: 42, Tag: 2})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("messages reordered: %v", order)
	}
}

func TestComputeAccounting(t *testing.T) {
	k, nw := newTestNet(2, 2)
	k.Spawn("p", func(p *sim.Proc) {
		nw.Compute(p, 3, 500)
		if p.Now() != 500 {
			t.Errorf("compute did not advance time: %v", p.Now())
		}
		nw.Compute(p, 3, 250)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	ct := nw.ComputeTime()
	if ct[3] != 750 {
		t.Fatalf("compute time %v, want 750", ct[3])
	}
	if ct[0] != 0 {
		t.Fatal("compute charged to wrong node")
	}
}

func TestInboxRecv(t *testing.T) {
	k, nw := newTestNet(2, 2)
	var got []int
	k.Spawn("recv", func(p *sim.Proc) {
		m1 := nw.Recv(p, 3, 7)
		got = append(got, m1.Payload.(int))
		m2 := nw.Recv(p, 3, 7)
		got = append(got, m2.Payload.(int))
	})
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 3, Size: 10, Kind: KindInbox, Tag: 7, Payload: 1})
		nw.Send(&Msg{Src: 0, Dst: 3, Size: 10, Kind: KindInbox, Tag: 7, Payload: 2})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("inbox order %v", got)
	}
}

func TestInboxTagsSeparate(t *testing.T) {
	k, nw := newTestNet(2, 2)
	var got int
	k.Spawn("recv", func(p *sim.Proc) {
		m := nw.Recv(p, 3, 9)
		got = m.Payload.(int)
	})
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 3, Size: 10, Kind: KindInbox, Tag: 8, Payload: 100})
		nw.Send(&Msg{Src: 1, Dst: 3, Size: 10, Kind: KindInbox, Tag: 9, Payload: 200})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Fatalf("received tag-8 message on tag 9: %d", got)
	}
	if nw.TryRecv(3, 8) == nil {
		t.Fatal("tag-8 message lost")
	}
	if nw.TryRecv(3, 8) != nil {
		t.Fatal("TryRecv returned a message twice")
	}
}

func TestSendFromDelaysProcess(t *testing.T) {
	k, nw := newTestNet(1, 2)
	nw.Handle(42, func(m *Msg) {})
	k.Spawn("s", func(p *sim.Proc) {
		nw.SendFrom(p, &Msg{Src: 0, Dst: 1, Size: 10, Kind: 42})
		if p.Now() != 100 {
			t.Errorf("sender resumed at %v, want 100 (startup)", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownKindPanics(t *testing.T) {
	k, nw := newTestNet(1, 2)
	k.At(0, func() {
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 1, Kind: 99})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("unregistered kind did not panic")
		}
	}()
	_ = k.Run()
}

func TestHandlerDoubleRegisterPanics(t *testing.T) {
	_, nw := newTestNet(1, 2)
	nw.Handle(42, func(m *Msg) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double register did not panic")
		}
	}()
	nw.Handle(42, func(m *Msg) {})
}
