package mesh

import (
	"fmt"
	"math/bits"
)

// Hypercube is a d-dimensional binary hypercube: N = 2^d processors, node
// ids are bit strings, and two nodes are linked iff their ids differ in
// exactly one bit.
//
// Routing is e-cube (dimension-order) routing: differing bits are fixed
// from the lowest to the highest dimension, which yields a unique,
// deterministic shortest path — the hypercube analogue of the mesh's
// dimension-order routing.
type Hypercube struct {
	Dim int
}

// NewHypercube returns a hypercube of the given dimension (N = 2^dim). It
// panics on negative dimensions or cubes whose id space would overflow.
func NewHypercube(dim int) Hypercube {
	if dim < 0 || dim > 30 {
		panic(fmt.Sprintf("mesh: invalid hypercube dimension %d", dim))
	}
	return Hypercube{Dim: dim}
}

// N returns the number of nodes.
func (h Hypercube) N() int { return 1 << h.Dim }

// Nodes implements Topology: every hypercube node hosts a processor.
func (h Hypercube) Nodes() int { return h.N() }

// NumLinks implements Topology: each node has one link per dimension.
func (h Hypercube) NumLinks() int { return h.N() * h.Dim }

// LinkID returns the directed link leaving node along dimension bit.
func (h Hypercube) LinkID(node, bit int) int { return node*h.Dim + bit }

// Dist implements Topology: the Hamming distance.
func (h Hypercube) Dist(a, b int) int { return bits.OnesCount(uint(a ^ b)) }

// Diameter implements Topology: all bits differ.
func (h Hypercube) Diameter() int { return h.Dim }

// Bisection implements Topology: the halving cut fixes the highest
// dimension; every node of one half has exactly one link into the other.
func (h Hypercube) Bisection() int {
	if h.Dim == 0 {
		return 0
	}
	return h.N() / 2
}

// AppendRoute implements Topology: e-cube routing, lowest dimension first.
func (h Hypercube) AppendRoute(buf []int, a, b int) []int {
	cur := a
	for bit := 0; bit < h.Dim; bit++ {
		if (cur^b)&(1<<bit) != 0 {
			buf = append(buf, h.LinkID(cur, bit))
			cur ^= 1 << bit
		}
	}
	return buf
}

// ForEachLink implements Topology.
func (h Hypercube) ForEachLink(f func(link, from, to int)) {
	for n := 0; n < h.N(); n++ {
		for bit := 0; bit < h.Dim; bit++ {
			f(h.LinkID(n, bit), n, n^(1<<bit))
		}
	}
}

// Grid implements Topology: the hypercube decomposes over its id space
// (halving a 2^k id range fixes the range's highest bit, so every
// decomposition region is a subcube).
func (h Hypercube) Grid() (rows, cols int, ok bool) { return 0, 0, false }

// String implements fmt.Stringer.
func (h Hypercube) String() string { return fmt.Sprintf("%d-cube", h.Dim) }
