package mesh

import (
	"fmt"

	"diva/internal/sim"
)

// Params holds the timing characteristics of the simulated machine. The
// defaults (GCelParams) are calibrated against the numbers reported in §3 of
// the paper for the Parsytec GCel.
type Params struct {
	// BytesPerUS is the link bandwidth in bytes per microsecond
	// (1.0 ≈ 1 MB/s, the measured GCel link bandwidth). Both directions of
	// a link are independent, as measured in the paper.
	BytesPerUS float64
	// HopLatencyUS is the per-hop head latency of the wormhole router.
	HopLatencyUS float64
	// StartupSendUS is the per-message software overhead at the sender
	// ("the sending of a message by a processor is called a startup").
	StartupSendUS float64
	// StartupRecvUS is the overhead of the receiving processor, which the
	// paper includes in the startup cost.
	StartupRecvUS float64
	// LocalDeliveryUS is the cost of a message between two simulated tree
	// nodes hosted on the same processor (a function call, no network).
	LocalDeliveryUS float64
	// NoBackpressure disables wormhole path holding: links are then
	// occupied independently for one message duration each. The default
	// (false) models wormhole routing, where a message holds every link
	// of its path until its tail has drained — so congestion around a
	// hotspot backs up the paths leading to it, as on the real machine.
	NoBackpressure bool
}

// GCelParams returns timing parameters modeled on the Parsytec GCel: 1
// byte/µs links, large per-message startup (full bandwidth is only reached
// near 1 KB messages), link/processor speed ratio ≈ 0.86, and a
// substantial per-hop latency (the T805-era routing involves processors
// that are roughly as slow as the links).
func GCelParams() Params {
	return Params{
		BytesPerUS:      1.0,
		HopLatencyUS:    40,
		StartupSendUS:   100,
		StartupRecvUS:   100,
		LocalDeliveryUS: 2,
	}
}

// Msg is a message in flight. Size is the wire size in bytes including
// headers; Kind selects the registered handler at the destination; Tag and
// Payload are opaque to the network.
//
// Messages obtained from Network.AcquireMsg are recycled onto a free list
// as soon as their destination handler returns; handlers must not retain
// such a message (retaining the Payload is fine). Messages constructed
// directly with &Msg{...} are never recycled and may be kept forever.
type Msg struct {
	Src, Dst int
	Size     int
	Kind     uint8
	pooled   bool
	Tag      int
	Payload  interface{}

	// Reactive-transport header (reactive.go), zero in oracle mode: the
	// per-channel sequence number stamped on first transmission (0 = not
	// yet stamped) and the transmission attempt it was part of (echoed in
	// the ack, so the sender can count false timeouts exactly).
	xseq uint32
	xatt uint16
}

// LinkLoad is the accumulated traffic of one directed link.
type LinkLoad struct {
	Msgs  uint64
	Bytes uint64
}

type link struct {
	busyUntil sim.Time
	load      LinkLoad
}

// Handler processes a delivered message at its destination, in event
// context. Handlers must not block; they may send further messages and
// complete futures.
type Handler func(*Msg)

// Network simulates the interconnect of any Topology: routing, contention,
// congestion accounting, per-node CPU/startup accounting and message
// dispatch.
type Network struct {
	K *sim.Kernel
	T Topology
	P Params

	n        int // cached T.N(): the route memo's row stride
	links    []link
	handlers [256]Handler

	cpuFree   []sim.Time // per node: time the CPU becomes available
	computeUS []float64  // per node: accumulated application compute time

	// sends counts messages and payload bytes by message kind
	// (diagnostics; local deliveries included).
	sendMsgs  [256]uint64
	sendBytes [256]uint64

	inboxes []nodeInbox

	// arriveFn/readyFn are the two delivery stages, bound once so every
	// message schedules through the kernel's typed-callback events
	// instead of two fresh closures. In the fused pipeline (the default)
	// the arrive stage runs on the kernel's lazy tier — same (t, seq)
	// position, same charges, no regular event — so a hop costs one
	// regular kernel event; in two-stage mode both stages are regular
	// events.
	arriveFn func(interface{})
	readyFn  func(interface{})

	// twoStage forces the classic two-event arrive → ready pair for
	// every hop: the oracle the fused pipeline is A/B tested against
	// (SetTwoStageDelivery).
	twoStage bool
	// freeMsgs is the Msg free list (the simulation is single-threaded, so
	// a plain slice does what sync.Pool would, without the overhead).
	freeMsgs []*Msg

	// routeBuf/startBuf are the reusable route buffers of the delivery hot
	// path, sized once from the topology's diameter (no route is longer).
	// route() fully consumes them within one call and the simulation is
	// single-threaded per kernel, so reuse across messages is safe.
	routeBuf []int
	startBuf []sim.Time

	// routes memoizes the topology's deterministic route per (src, dst)
	// pair, filled lazily on first use: routing every message through
	// AppendRoute's coordinate walk was ~15% of the Barnes-Hut profile,
	// a slab load is not. An entry packs offset<<8 | length into the
	// shared link-id slab (0 = not cached yet), so the table costs four
	// bytes per pair and the paths one int32 per link — read-only once
	// built, no per-pair allocations.
	routes     []uint32
	routeSlab  []int32
	route32Buf []int32 // scratch for routes the packed table cannot hold

	// ilj journals Inline* charges between InlineBegin and
	// InlineCommit/InlineAbort so a speculative replay can be reverted.
	ilj inlineJournal

	// faults is the lazily-applied fault schedule engine (fault.go); nil
	// on a fault-free network, which then routes on the exact pre-fault
	// code path.
	faults *faultState

	// react is the reactive-mode transport state (reactive.go); nil in
	// oracle mode, which stays on the exact pre-reactive code path.
	react *reactState
	// reactTimeoutFn is the bound retransmission-timeout callback, so
	// timer scheduling allocates no closures (the arriveFn pattern).
	reactTimeoutFn func(interface{})

	// Sharded-cluster state (shard.go); nil on a single-kernel network.
	kernels []*sim.Kernel    // per-shard kernels, indexed by shard
	shardOf []int            // node -> shard
	freeSh  [][]*Msg         // per-shard Msg free lists
	statSh  []shardSendStats // per-shard send counters (in-window local sends)
	defSh   [][]deferredSend // per-shard deferred cross-node sends
	defCur  []int            // replay cursors into defSh
}

// inlineJournal records every mutation the Inline* helpers (and routeRaw
// under them) perform, so InlineAbort can restore the exact prior state.
// Old values are replayed in reverse on abort, which makes duplicate
// entries for the same resource harmless; counter deltas are subtracted.
type inlineJournal struct {
	active bool
	cpus   []cpuSave
	busys  []busySave
	loads  []loadSave
	stats  []statSave

	// Fault-engine save: the schedule cursor and counters at InlineBegin,
	// so an aborted replay rewinds lazily-applied fault events too.
	faultSaved  bool
	faultCursor int
	faultStats  FaultStats
}

type cpuSave struct {
	node int32
	old  sim.Time
}

type busySave struct {
	link int32
	old  sim.Time
}

type loadSave struct {
	link int32
	size int32
}

type statSave struct {
	kind uint8
	size int32
}

// InlineBegin starts journaling Inline* charges for a speculative replay.
func (nw *Network) InlineBegin() {
	if nw.ilj.active {
		panic("mesh: nested InlineBegin")
	}
	nw.ilj.active = true
	if nw.faults != nil {
		nw.ilj.faultSaved = true
		nw.ilj.faultCursor = nw.faults.cursor
		nw.ilj.faultStats = nw.faults.stats
	}
}

// InlineCommit keeps all charges since InlineBegin and drops the journal.
func (nw *Network) InlineCommit() {
	j := &nw.ilj
	j.active = false
	j.cpus = j.cpus[:0]
	j.busys = j.busys[:0]
	j.loads = j.loads[:0]
	j.stats = j.stats[:0]
	j.faultSaved = false
}

// InlineAbort reverts every charge since InlineBegin, leaving the network
// state exactly as before the speculative replay.
func (nw *Network) InlineAbort() {
	j := &nw.ilj
	for i := len(j.cpus) - 1; i >= 0; i-- {
		nw.cpuFree[j.cpus[i].node] = j.cpus[i].old
	}
	for i := len(j.busys) - 1; i >= 0; i-- {
		nw.links[j.busys[i].link].busyUntil = j.busys[i].old
	}
	for _, l := range j.loads {
		nw.links[l.link].load.Msgs--
		nw.links[l.link].load.Bytes -= uint64(l.size)
	}
	for _, s := range j.stats {
		nw.sendMsgs[s.kind]--
		nw.sendBytes[s.kind] -= uint64(s.size)
	}
	if j.faultSaved {
		nw.faults.stats = j.faultStats
		if nw.faults.cursor != j.faultCursor {
			nw.faults.resetTo(j.faultCursor)
		}
	}
	nw.InlineCommit()
}

// NewNetwork creates a network over topology t using kernel k.
func NewNetwork(k *sim.Kernel, t Topology, p Params) *Network {
	if p.BytesPerUS <= 0 {
		panic("mesh: BytesPerUS must be positive")
	}
	nw := &Network{
		K:         k,
		T:         t,
		P:         p,
		n:         t.N(),
		links:     make([]link, t.NumLinks()),
		cpuFree:   make([]sim.Time, t.N()),
		computeUS: make([]float64, t.N()),
		inboxes:   make([]nodeInbox, t.N()),
		routeBuf:  make([]int, 0, t.Diameter()+1),
		startBuf:  make([]sim.Time, 0, t.Diameter()+1),
	}
	nw.handlers[KindInbox] = nw.deliverInbox
	nw.arriveFn = nw.msgArrive
	nw.readyFn = nw.msgReady
	// The route memo table costs 4 bytes per (src, dst) pair; past ~2k
	// nodes (16 MB) the table would dwarf the simulation itself, so huge
	// machines keep the per-message route walk instead.
	if n := t.N(); n*n <= 1<<22 {
		nw.routes = make([]uint32, n*n)
	}
	return nw
}

// SetTwoStageDelivery forces the classic two-event (arrive → ready)
// delivery pipeline for every hop instead of the fused single-event
// pipeline. Both produce bit-identical simulated results — the switch
// exists as the exact-by-construction oracle for A/B tests.
func (nw *Network) SetTwoStageDelivery(on bool) { nw.twoStage = on }

// AcquireMsg returns a zeroed message from the network's free list (or a
// fresh one). It is recycled automatically after its destination handler
// returns; see Msg for the retention contract. SendPooled wraps the common
// acquire-fill-send sequence.
func (nw *Network) AcquireMsg() *Msg {
	if n := len(nw.freeMsgs); n > 0 {
		m := nw.freeMsgs[n-1]
		nw.freeMsgs = nw.freeMsgs[:n-1]
		return m
	}
	return &Msg{pooled: true}
}

// SendPooled sends a recycled message: protocol hot paths use it to make a
// full send-route-deliver cycle allocation-free.
func (nw *Network) SendPooled(src, dst, size int, kind uint8, payload interface{}) {
	m := nw.acquireMsgFor(src)
	m.Src, m.Dst, m.Size, m.Kind, m.Payload = src, dst, size, kind, payload
	nw.Send(m)
}

// SendPooledTag is SendPooled with a Tag, for protocols that pack their
// per-hop state into the tag instead of allocating a payload.
func (nw *Network) SendPooledTag(src, dst, size int, kind uint8, tag int, payload interface{}) {
	m := nw.acquireMsgFor(src)
	m.Src, m.Dst, m.Size, m.Kind, m.Tag, m.Payload = src, dst, size, kind, tag, payload
	nw.Send(m)
}

// releaseMsg returns a pooled message to the free list — the list of the
// shard that just ran its handler (the destination's) when clustered.
func (nw *Network) releaseMsg(m *Msg) {
	if nw.shardOf != nil {
		si := nw.shardOf[m.Dst]
		*m = Msg{pooled: true}
		nw.freeSh[si] = append(nw.freeSh[si], m)
		return
	}
	*m = Msg{pooled: true}
	nw.freeMsgs = append(nw.freeMsgs, m)
}

// Handle registers the handler for a message kind. Registering kind 0
// (KindInbox) panics; it is reserved for process-level receives.
func (nw *Network) Handle(kind uint8, h Handler) {
	if kind == KindInbox {
		panic("mesh: kind 0 is reserved for the inbox")
	}
	if kind == KindTransportAck && nw.react != nil {
		panic(fmt.Sprintf("mesh: kind %d is reserved for transport acks in reactive mode", KindTransportAck))
	}
	if nw.handlers[kind] != nil {
		panic(fmt.Sprintf("mesh: handler for kind %d registered twice", kind))
	}
	nw.handlers[kind] = h
}

// Send routes m from m.Src to m.Dst, accounting startup cost on the source
// CPU, link occupancy and congestion along the dimension-order path, and
// receive overhead at the destination, then dispatches to the handler for
// m.Kind. Send never blocks; it may be called from event or process
// context. Use SendFrom when the sending process itself should be delayed
// by the startup cost.
func (nw *Network) Send(m *Msg) {
	depart := nw.chargeSend(m.Src)
	nw.deliverAfterRoute(m, depart)
}

// SendFrom is Send for application processes: the calling process is
// blocked until its CPU has finished the send startup, modeling the
// synchronous send call of the message-passing library.
func (nw *Network) SendFrom(p *sim.Proc, m *Msg) {
	depart := nw.chargeSend(m.Src)
	nw.deliverAfterRoute(m, depart)
	p.WaitUntil(depart)
}

// SendStats reports how many messages (and payload bytes) of each kind
// were sent, including node-local deliveries.
func (nw *Network) SendStats() (msgs, bytes [256]uint64) {
	msgs, bytes = nw.sendMsgs, nw.sendBytes
	for i := range nw.statSh {
		st := &nw.statSh[i]
		for k := range st.msgs {
			msgs[k] += st.msgs[k]
			bytes[k] += st.bytes[k]
		}
	}
	return msgs, bytes
}

// chargeSend reserves the source CPU for the send startup and returns the
// time the message leaves the node.
func (nw *Network) chargeSend(src int) sim.Time {
	t := nw.kOf(src).Now()
	if nw.cpuFree[src] > t {
		t = nw.cpuFree[src]
	}
	depart := t + nw.P.StartupSendUS
	nw.cpuFree[src] = depart
	return depart
}

// deliverAfterRoute routes m starting at depart and schedules the arrival
// stage. In the fused pipeline (the default) the arrive stage runs on the
// kernel's lazy event tier: it executes at the exact (time, schedule
// order) position its regular event would occupy — charging the
// destination CPU identically and interleaving identically with every
// other event — but without costing a regular kernel event, so a hop's
// regular event traffic is the single ready event. In two-stage mode
// (SetTwoStageDelivery, the A/B oracle) the arrive stage is a regular
// event, the classic pair. Either way both stages are typed events
// carrying the *Msg itself — no closures, no allocations.
func (nw *Network) deliverAfterRoute(m *Msg, depart sim.Time) {
	if nw.react != nil {
		// Reactive mode: stamp the channel sequence, register the
		// outstanding record and schedule the retransmission timer before
		// the delivery below allocates the arrival sequence (or defers it
		// to the boundary merge) — both modes then allocate in the same
		// order. No-op for local messages, acks and retransmissions.
		nw.reactOnSend(m, depart)
	}
	if nw.shardOf != nil {
		if ks := nw.kOf(m.Src); ks.InWindow() {
			if m.Src != m.Dst {
				// Cross-node send inside a window: routing would touch
				// the shared link state, so the send is deferred —
				// logged in the shard's op log and replayed by the
				// coordinator at the boundary merge in exact global
				// order (replayDeferred in shard.go).
				ks.LogDefer()
				si := nw.shardOf[m.Src]
				nw.defSh[si] = append(nw.defSh[si], deferredSend{m, depart})
				return
			}
			// Node-local delivery: no link access, stays inline on the
			// owning shard; counters go to the per-shard stats.
			st := &nw.statSh[nw.shardOf[m.Src]]
			st.msgs[m.Kind]++
			st.bytes[m.Kind] += uint64(m.Size)
			arrive := depart + nw.P.LocalDeliveryUS
			if nw.twoStage {
				ks.Stat.TwoStageDeliveries++
				ks.AtCall(arrive, nw.arriveFn, m)
				return
			}
			ks.Stat.FusedDeliveries++
			ks.AtLazyCall(arrive, nw.arriveFn, m)
			return
		}
	}
	nw.sendMsgs[m.Kind]++
	nw.sendBytes[m.Kind] += uint64(m.Size)
	arrive, delivered := nw.routeRawEx(m.Src, m.Dst, m.Size, depart)
	kd := nw.kOf(m.Dst)
	if !delivered {
		// The message vanished at a failure point (reactive mode): no
		// arrival event exists, only the sequence it would have carried is
		// consumed — mirroring the boundary merge, which allocates a
		// global sequence per deferred send before the replay outcome is
		// known (shard.go).
		kd.SkipSeq()
		if m.pooled {
			nw.releaseMsg(m)
		}
		return
	}
	if nw.twoStage {
		kd.Stat.TwoStageDeliveries++
		kd.AtCall(arrive, nw.arriveFn, m)
		return
	}
	kd.Stat.FusedDeliveries++
	kd.AtLazyCall(arrive, nw.arriveFn, m)
}

// msgArrive charges the receive overhead on the destination CPU and
// schedules the handler dispatch. It runs at the arrival time — on the
// lazy tier in the fused pipeline, as a regular event in two-stage mode;
// the charging is identical.
func (nw *Network) msgArrive(x interface{}) {
	m := x.(*Msg)
	k := nw.kOf(m.Dst)
	t := k.Now()
	if f := nw.cpuFree[m.Dst]; f > t {
		// The receiver's CPU is busy at arrival: the receive startup
		// queues behind it. Still one regular event in the fused
		// pipeline — but worth counting, because a send-time fusion
		// (predicting the ready time when the message departs) would
		// have had to fall back to the two-event path here.
		t = f
		if !nw.twoStage {
			k.Stat.FusedBusyRecv++
		}
	}
	ready := t + nw.P.StartupRecvUS
	nw.cpuFree[m.Dst] = ready
	k.AtCall(ready, nw.readyFn, m)
}

// msgReady dispatches m to its kind's handler and recycles pooled messages.
// In reactive mode the transport intercepts first: acks retire their
// sender-side records, and duplicate data messages are re-acked and
// dropped without dispatch.
func (nw *Network) msgReady(x interface{}) {
	m := x.(*Msg)
	if nw.react != nil && m.Src != m.Dst {
		if m.Kind == KindTransportAck {
			nw.reactOnAck(m)
			if m.pooled {
				nw.releaseMsg(m)
			}
			return
		}
		if m.xseq != 0 && !nw.reactAccept(m) {
			if m.pooled {
				nw.releaseMsg(m)
			}
			return
		}
	}
	h := nw.handlers[m.Kind]
	if h == nil {
		panic(fmt.Sprintf("mesh: no handler for message kind %d", m.Kind))
	}
	h(m)
	if m.pooled {
		nw.releaseMsg(m)
	}
}

// InlineSendAt models Send issued at simulated time `now` without
// scheduling delivery events: identical charging — send startup on the
// source CPU, send stats, link occupancy and congestion along the route —
// and returns the arrival time at the destination. InlineRecvAt is the
// matching receive side. Together they let a protocol replay a whole
// deterministic message cascade inside one event callback (the batched
// barrier release does this under kernel quiescence); the caller is
// responsible for interleaving the per-message charges in global
// (time, schedule-order) order, exactly as the kernel would have.
func (nw *Network) InlineSendAt(now sim.Time, src, dst, size int, kind uint8) sim.Time {
	t := now
	if nw.cpuFree[src] > t {
		t = nw.cpuFree[src]
	}
	depart := t + nw.P.StartupSendUS
	if nw.ilj.active {
		nw.ilj.cpus = append(nw.ilj.cpus, cpuSave{int32(src), nw.cpuFree[src]})
		nw.ilj.stats = append(nw.ilj.stats, statSave{kind, int32(size)})
	}
	nw.cpuFree[src] = depart
	nw.sendMsgs[kind]++
	nw.sendBytes[kind] += uint64(size)
	return nw.routeRaw(src, dst, size, depart)
}

// InlineRecvAt models the arrival stage (msgArrive) at the destination:
// it charges the receive startup on the destination CPU at the given
// arrival time and returns the time the message handler would have run.
func (nw *Network) InlineRecvAt(dst int, arrive sim.Time) sim.Time {
	t := arrive
	if nw.cpuFree[dst] > t {
		t = nw.cpuFree[dst]
	}
	ready := t + nw.P.StartupRecvUS
	if nw.ilj.active {
		nw.ilj.cpus = append(nw.ilj.cpus, cpuSave{int32(dst), nw.cpuFree[dst]})
	}
	nw.cpuFree[dst] = ready
	return ready
}

// scratchRoute computes (src, dst)'s route into the reusable scratch
// buffer, for machines without a memo table.
func (nw *Network) scratchRoute(src, dst int) []int32 {
	p := nw.T.AppendRoute(nw.routeBuf[:0], src, dst)
	nw.routeBuf = p[:0] // keep any growth beyond the initial diameter sizing
	return nw.appendRoute32(p)
}

// appendRoute32 copies a route into the reusable int32 scratch buffer.
func (nw *Network) appendRoute32(p []int) []int32 {
	nw.route32Buf = nw.route32Buf[:0]
	for _, li := range p {
		nw.route32Buf = append(nw.route32Buf, int32(li))
	}
	return nw.route32Buf
}

// routeRaw is route without the message object: the same charging from
// scalar (src, dst, size), shared by the event-driven delivery path and the
// inline replay helpers. With a fault schedule installed, routing goes
// through the fault engine (fault.go); node-local delivery never touches
// the network and is immune to faults. routeRaw itself is the oracle-mode
// entry: a reactive-mode drop cannot reach it (the delivery paths go
// through routeRawEx, and the inline helpers are gated off under reactive
// mode), so a drop here is a bug.
func (nw *Network) routeRaw(src, dst, size int, depart sim.Time) sim.Time {
	t, delivered := nw.routeRawEx(src, dst, size, depart)
	if !delivered {
		panic("mesh: message dropped on a hold-free routing path")
	}
	return t
}

// routeRawEx is routeRaw with an explicit delivery outcome: delivered is
// false when reactive mode dropped the message at a failure point (the
// arrival time is then meaningless). In oracle mode delivered is always
// true — undeliverable messages are held and retransmitted at heal time
// inside the fault engine instead.
func (nw *Network) routeRawEx(src, dst, size int, depart sim.Time) (arrive sim.Time, delivered bool) {
	if src == dst {
		return depart + nw.P.LocalDeliveryUS, true
	}
	if nw.faults != nil {
		return nw.faults.route(nw, src, dst, size, depart)
	}
	return nw.chargePath(nw.healthyPath(src, dst), size, depart), true
}

// healthyPath returns the topology's deterministic shortest route for
// (src, dst), src != dst. Routes come from the memo table — AppendRoute's
// coordinate walk runs once per pair, not once per message. The returned
// slice is valid until the next healthyPath call (slab entries live
// forever; scratch entries are reused).
func (nw *Network) healthyPath(src, dst int) []int32 {
	if nw.routes == nil {
		// Machine too large for the memo table: walk the route directly.
		return nw.scratchRoute(src, dst)
	}
	if ent := nw.routes[src*nw.n+dst]; ent != 0 {
		return nw.routeSlab[ent>>8 : ent>>8+ent&0xff]
	}
	p := nw.T.AppendRoute(nw.routeBuf[:0], src, dst)
	nw.routeBuf = p[:0] // keep any growth beyond the initial diameter sizing
	// Entries pack offset<<8 | length; a route longer than 255 links
	// or a slab past 2^24 entries (neither reachable at the paper's
	// machine sizes) is recomputed per message instead.
	if s := len(nw.routeSlab); len(p) <= 0xff && s <= 1<<24-1 {
		for _, li := range p {
			nw.routeSlab = append(nw.routeSlab, int32(li))
		}
		nw.routes[src*nw.n+dst] = uint32(s)<<8 | uint32(len(p))
		return nw.routeSlab[s:]
	}
	return nw.appendRoute32(p)
}

// chargePath models wormhole transmission of size bytes along path
// starting at depart: link occupancy, congestion counters, backpressure.
// Returns the arrival time at the path's end.
func (nw *Network) chargePath(path []int32, size int, depart sim.Time) sim.Time {
	dur := float64(size) / nw.P.BytesPerUS
	t := depart
	starts := nw.startBuf[:0]
	journal := nw.ilj.active
	for _, li := range path {
		l := &nw.links[li]
		s := t
		if l.busyUntil > s {
			s = l.busyUntil
		}
		starts = append(starts, s)
		if journal {
			nw.ilj.busys = append(nw.ilj.busys, busySave{int32(li), l.busyUntil})
			nw.ilj.loads = append(nw.ilj.loads, loadSave{int32(li), int32(size)})
		}
		if nw.P.NoBackpressure {
			l.busyUntil = s + dur
		}
		l.load.Msgs++
		l.load.Bytes += uint64(size)
		t = s + nw.P.HopLatencyUS
	}
	arrive := t + dur
	if !nw.P.NoBackpressure {
		// Wormhole flit flow: link i is released when the tail flit has
		// passed it, i.e. when the message has drained far enough
		// downstream — max(own transmission end, drain time minus the
		// pipeline slack to the last link). When nothing blocks, this is
		// barely more than one message duration; when the head stalls
		// downstream, upstream links stay held and congestion spreads
		// toward the sender, as on the real machine.
		for i, li := range path {
			l := &nw.links[li]
			release := arrive - float64(len(path)-1-i)*nw.P.HopLatencyUS
			if own := starts[i] + dur; own > release {
				release = own
			}
			if release > l.busyUntil {
				if journal {
					nw.ilj.busys = append(nw.ilj.busys, busySave{int32(li), l.busyUntil})
				}
				l.busyUntil = release
			}
		}
	}
	// Keep any growth: spanning-tree detours exceed the healthy-net
	// diameter the buffer was initially sized for.
	nw.startBuf = starts[:0]
	return arrive
}

// Compute charges d microseconds of application computation to the process
// p running on node; the process resumes when its CPU has executed it. The
// time is also accumulated for the "local computation time" metric.
func (nw *Network) Compute(p *sim.Proc, node int, d float64) {
	if d <= 0 {
		return
	}
	t := nw.kOf(node).Now()
	if nw.cpuFree[node] > t {
		t = nw.cpuFree[node]
	}
	end := t + d
	nw.cpuFree[node] = end
	nw.computeUS[node] += d
	p.WaitUntil(end)
}

// ChargeCPU charges d microseconds of protocol bookkeeping on node without
// blocking anyone and without counting it as application compute.
func (nw *Network) ChargeCPU(node int, d float64) {
	t := nw.kOf(node).Now()
	if nw.cpuFree[node] > t {
		t = nw.cpuFree[node]
	}
	nw.cpuFree[node] = t + d
}

// ComputeTime returns the accumulated application compute time per node.
func (nw *Network) ComputeTime() []float64 {
	out := make([]float64, len(nw.computeUS))
	copy(out, nw.computeUS)
	return out
}

// Loads returns a copy of the per-link traffic counters, indexed by LinkID.
func (nw *Network) Loads() []LinkLoad {
	out := make([]LinkLoad, len(nw.links))
	for i := range nw.links {
		out[i] = nw.links[i].load
	}
	return out
}

// Congestion summarizes traffic accumulated since snapshot before (pass nil
// for "since the beginning"): the maximum and total message count and byte
// count over all directed links.
func (nw *Network) Congestion(before []LinkLoad) (c Congestion) {
	for i := range nw.links {
		l := nw.links[i].load
		if before != nil {
			l.Msgs -= before[i].Msgs
			l.Bytes -= before[i].Bytes
		}
		if l.Msgs > c.MaxMsgs {
			c.MaxMsgs = l.Msgs
		}
		if l.Bytes > c.MaxBytes {
			c.MaxBytes = l.Bytes
		}
		c.TotalMsgs += l.Msgs
		c.TotalBytes += l.Bytes
	}
	return c
}

// Congestion is a summary of link traffic. MaxBytes over a run is the
// paper's congestion measure (weighted with the inverse bandwidth, which is
// uniform here); MaxMsgs is the measure used for the Barnes-Hut figures.
type Congestion struct {
	MaxMsgs    uint64
	MaxBytes   uint64
	TotalMsgs  uint64
	TotalBytes uint64
}

// KindInbox is the reserved message kind delivered to per-node inboxes and
// received with Recv (used by the hand-optimized message passing programs).
const KindInbox uint8 = 0
