package mesh

import (
	"fmt"
	"math/bits"
)

// FatTree is a binary fat-tree of height H: N = 2^H processors ("hosts")
// sit at the leaves of a complete binary tree of switches, and the link
// capacity doubles toward the root — the edge between a switch whose
// subtree holds m hosts and its parent consists of m parallel links, so
// the tree has full bisection capacity. Switches are pure routing
// elements: they forward traffic but host no processor (Nodes() > N()).
//
// Node ids: hosts are 0..N-1 (left to right); switch s at level ℓ
// (root = level 0, leaf switches = level H-1) has id N + (2^ℓ - 1) + s.
//
// Routing goes up from the source host to the lowest common ancestor
// switch and down to the destination. Among the m parallel links of an
// up-edge the route picks link `src mod m`, and on a down-edge link
// `dst mod m` — the deterministic d-mod-k rule used by real fat-tree
// fabrics, which spreads distinct flows across the parallel links without
// randomness.
type FatTree struct {
	H int
}

// NewFatTree returns a binary fat-tree with 2^h hosts. It panics on
// negative heights or trees whose id space would overflow.
func NewFatTree(h int) FatTree {
	if h < 0 || h > 24 {
		panic(fmt.Sprintf("mesh: invalid fat-tree height %d", h))
	}
	return FatTree{H: h}
}

// N returns the number of processors (hosts).
func (ft FatTree) N() int { return 1 << ft.H }

// Nodes implements Topology: hosts plus the 2^H - 1 switches.
func (ft FatTree) Nodes() int { return 2*ft.N() - 1 }

// switchID returns the node id of switch s at level level.
func (ft FatTree) switchID(level, s int) int { return ft.N() + (1 << level) - 1 + s }

// NumLinks implements Topology. Each of the H link levels (host links plus
// the H-1 switch levels) carries N up-links and N down-links: level ℓ has
// 2^ℓ up-edges of multiplicity 2^(H-ℓ) each.
func (ft FatTree) NumLinks() int { return 2 * ft.N() * ft.H }

// levelBase returns the id of the first up-link of switch level ℓ
// (1 ≤ ℓ ≤ H-1); the level's down-links follow its up-links. Host links
// occupy [0, 2N): up-link of host u is u, down-link to host v is N + v.
func (ft FatTree) levelBase(level int) int { return 2*ft.N() + (level-1)*2*ft.N() }

// lcaLevel returns the level of the lowest common ancestor switch of
// hosts a != b.
func (ft FatTree) lcaLevel(a, b int) int { return ft.H - bits.Len(uint(a^b)) }

// Dist implements Topology: up to the LCA and down again.
func (ft FatTree) Dist(a, b int) int {
	if a == b {
		return 0
	}
	return 2 * (ft.H - ft.lcaLevel(a, b))
}

// Diameter implements Topology: via the root.
func (ft FatTree) Diameter() int { return 2 * ft.H }

// Bisection implements Topology: the halving cut separates the two
// root subtrees; all N/2 parallel links of one root edge cross it.
func (ft FatTree) Bisection() int {
	if ft.H == 0 {
		return 0
	}
	return ft.N() / 2
}

// AppendRoute implements Topology: up with src-mod-m link selection, down
// with dst-mod-m.
func (ft FatTree) AppendRoute(buf []int, a, b int) []int {
	if a == b {
		return buf
	}
	lca := ft.lcaLevel(a, b)
	buf = append(buf, a) // host up-link
	for level := ft.H - 1; level > lca; level-- {
		m := 1 << (ft.H - level) // parallel links of this up-edge
		s := a >> (ft.H - level) // the switch whose subtree holds a
		buf = append(buf, ft.levelBase(level)+s*m+(a&(m-1)))
	}
	for level := lca + 1; level <= ft.H-1; level++ {
		m := 1 << (ft.H - level)
		s := b >> (ft.H - level)
		buf = append(buf, ft.levelBase(level)+ft.N()+s*m+(b&(m-1)))
	}
	return append(buf, ft.N()+b) // host down-link
}

// ForEachLink implements Topology.
func (ft FatTree) ForEachLink(f func(link, from, to int)) {
	n := ft.N()
	for u := 0; u < n && ft.H > 0; u++ {
		leaf := ft.switchID(ft.H-1, u/2)
		f(u, u, leaf)
		f(n+u, leaf, u)
	}
	for level := 1; level <= ft.H-1; level++ {
		m := 1 << (ft.H - level)
		base := ft.levelBase(level)
		for s := 0; s < 1<<level; s++ {
			child := ft.switchID(level, s)
			parent := ft.switchID(level-1, s/2)
			for k := 0; k < m; k++ {
				f(base+s*m+k, child, parent)
				f(base+n+s*m+k, parent, child)
			}
		}
	}
}

// Grid implements Topology: the fat-tree decomposes over its host id
// space (halving a host range follows the switch hierarchy exactly).
func (ft FatTree) Grid() (rows, cols int, ok bool) { return 0, 0, false }

// String implements fmt.Stringer.
func (ft FatTree) String() string { return fmt.Sprintf("depth-%d fat-tree", ft.H) }
