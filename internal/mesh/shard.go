package mesh

import "diva/internal/sim"

// This file is the network's side of the sharded conservative-parallel
// kernel (sim/cluster.go). The link array, the route memo and the global
// send counters are shared, non-commutative state: two shards routing
// concurrently would both race and change the charge order, so inside a
// window every cross-node send is deferred — logged in the sending
// shard's op log and replayed by the cluster coordinator at the boundary
// merge, in exact global (t, seq) execution order, with the final
// sequence number its arrival event carries. The window lookahead is (at
// least) StartupSendUS + HopLatencyUS, which lower-bounds every deferred
// arrival delay, so a replayed arrival always lands at or beyond the
// horizon — never amid events its shard already executed. Node-local
// deliveries touch no shared state and stay inline, charged to per-shard
// stat counters.

// shardSendStats are the per-shard send counters for in-window node-local
// deliveries (the only sends charged outside the coordinator's
// single-threaded contexts). SendStats sums them into the global arrays.
type shardSendStats struct {
	msgs  [256]uint64
	bytes [256]uint64
}

// deferredSend is one in-window cross-node send awaiting boundary replay.
type deferredSend struct {
	m      *Msg
	depart sim.Time
}

// Shard attaches the network to a kernel cluster: shardOf maps each node
// to its shard, and the cluster's deferred-send replay hook is pointed at
// this network. Must be called before any message is sent.
func (nw *Network) Shard(cl *sim.Cluster, shardOf []int) {
	ks := cl.Kernels()
	if len(shardOf) != nw.n {
		panic("mesh: shard map does not cover the topology")
	}
	nw.kernels = ks
	nw.shardOf = shardOf
	nw.freeSh = make([][]*Msg, len(ks))
	nw.statSh = make([]shardSendStats, len(ks))
	nw.defSh = make([][]deferredSend, len(ks))
	nw.defCur = make([]int, len(ks))
	cl.SetReplayHook(nw.replayDeferred)
}

// kOf returns the kernel owning node: the shard's kernel when clustered,
// the network's single kernel otherwise. Every Now() read and event
// scheduled for a node must go through its owner.
func (nw *Network) kOf(node int) *sim.Kernel {
	if nw.kernels == nil {
		return nw.K
	}
	return nw.kernels[nw.shardOf[node]]
}

// replayDeferred is the cluster's replay hook: called at a boundary merge
// once per deferred send of shard si, in exact global execution order —
// the order the op log was appended in, which makes the cursor
// correspondence exact: the i-th opDefer of a shard's log is the i-th
// entry of its deferral list. All shards are parked, so charging the
// shared link state and scheduling on the destination shard are safe, and
// the charge order equals the sequential kernel's bit for bit.
func (nw *Network) replayDeferred(si int, gseq uint64) {
	d := nw.defSh[si][nw.defCur[si]]
	nw.defCur[si]++
	if nw.defCur[si] == len(nw.defSh[si]) {
		nw.defSh[si] = nw.defSh[si][:0]
		nw.defCur[si] = 0
	}
	m := d.m
	nw.sendMsgs[m.Kind]++
	nw.sendBytes[m.Kind] += uint64(m.Size)
	arrive, delivered := nw.routeRawEx(m.Src, m.Dst, m.Size, d.depart)
	if !delivered {
		// Reactive-mode drop at the failure point: no arrival event is
		// injected and the pre-allocated gseq stays consumed — exactly
		// what the sequential kernel does with SkipSeq on its drop path.
		if m.pooled {
			nw.releaseMsg(m)
		}
		return
	}
	kd := nw.kOf(m.Dst)
	if nw.twoStage {
		kd.Stat.TwoStageDeliveries++
		kd.InjectCallAt(arrive, gseq, false, nw.arriveFn, m)
		return
	}
	kd.Stat.FusedDeliveries++
	kd.InjectCallAt(arrive, gseq, true, nw.arriveFn, m)
}

// acquireMsgFor returns a pooled message from the free list of src's
// shard (the executing shard: sends always run on the sender's owner).
func (nw *Network) acquireMsgFor(src int) *Msg {
	if nw.shardOf == nil {
		return nw.AcquireMsg()
	}
	fl := nw.freeSh[nw.shardOf[src]]
	if n := len(fl); n > 0 {
		m := fl[n-1]
		nw.freeSh[nw.shardOf[src]] = fl[:n-1]
		return m
	}
	return &Msg{pooled: true}
}
