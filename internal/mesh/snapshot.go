package mesh

import (
	"fmt"
	"sort"

	"diva/internal/sim"
	"diva/internal/xrand"
)

// This file captures and restores a Network's mutable simulated state for
// machine snapshot/fork. The capture is only legal at kernel quiescence —
// no messages in flight, no processes blocked in Recv — which the machine
// layer verifies before calling in here; the network-level checks below
// are the defensive remainder (inbox waiters, deferred sends, an open
// inline journal).
//
// Deliberately NOT captured, because a fork starting fresh is provably
// indistinguishable: the Msg free lists (recycled messages are zeroed on
// acquire, their identity never observable), the route memo (a pure
// function of the topology, rebuilt lazily — and per fork, so concurrently
// running forks never share the lazily-appended slab), and the per-shard
// send counters (folded into the global counters here; SendStats only ever
// reports the sum).

// NetworkState is a deep copy of a Network's mutable simulated state. It is
// immutable after capture; any number of forks can restore from one.
type NetworkState struct {
	links     []link
	cpuFree   []sim.Time
	computeUS []float64
	sendMsgs  [256]uint64
	sendBytes [256]uint64
	inboxes   []inboxState

	// Fault engine position: the schedule cursor plus counters. The
	// schedule itself is part of the machine configuration (replayed at
	// fork construction), so the position fully determines link state —
	// restore re-applies the schedule prefix.
	faultCursor int
	faultStats  FaultStats

	// Reactive transport state (nil for oracle-mode captures): per-node
	// jitter-RNG positions, channel sequence counters, receiver dedup
	// state and suspect sets, plus the folded transport counters. No
	// outstanding transmissions or timers exist at quiescence (a live
	// record always holds a pending timer, which blocks the capture).
	react *reactCapture
}

// reactCapture is the reactive transport's captured state.
type reactCapture struct {
	stats FaultStats // folded per-node counters plus any restored baseline
	nodes []reactNodeCap
}

// reactNodeCap is one node's transport state in canonical (sorted-key)
// form, so captures of identical runs are identical.
type reactNodeCap struct {
	rng       xrand.State
	sendDst   []int
	sendSeq   []uint32
	recvSrc   []int
	recvFloor []uint32
	recvSeen  [][]uint32
	suspDst   []int
	suspAt    []sim.Time
}

// inboxState is one node's queued inbox messages, per tag in ascending tag
// order, each tag's queue in FIFO order. Msg values are copied (payloads
// are shared by reference; the library-wide contract treats them as
// immutable).
type inboxState struct {
	tags   []int
	queues [][]Msg
}

// SnapshotState captures the network's state. It fails when state that
// cannot be captured is live: processes blocked in Recv, deferred
// cross-shard sends awaiting replay, or an open inline journal.
func (nw *Network) SnapshotState() (*NetworkState, error) {
	if nw.ilj.active {
		return nil, fmt.Errorf("mesh: inline journal open")
	}
	for i := range nw.defSh {
		if nw.defCur[i] != 0 || len(nw.defSh[i]) > 0 {
			return nil, fmt.Errorf("mesh: shard %d has deferred sends awaiting replay", i)
		}
	}
	st := &NetworkState{
		links:     append([]link(nil), nw.links...),
		cpuFree:   append([]sim.Time(nil), nw.cpuFree...),
		computeUS: append([]float64(nil), nw.computeUS...),
		sendMsgs:  nw.sendMsgs,
		sendBytes: nw.sendBytes,
		inboxes:   make([]inboxState, len(nw.inboxes)),
	}
	if nw.faults != nil {
		st.faultCursor = nw.faults.cursor
		st.faultStats = nw.faults.stats
	}
	// Fold the per-shard counters of in-window node-local sends into the
	// global arrays: SendStats reports the sum, so the split is invisible.
	for i := range nw.statSh {
		sh := &nw.statSh[i]
		for k := range sh.msgs {
			st.sendMsgs[k] += sh.msgs[k]
			st.sendBytes[k] += sh.bytes[k]
		}
	}
	if r := nw.react; r != nil {
		rc := &reactCapture{stats: r.base, nodes: make([]reactNodeCap, len(r.nodes))}
		for i := range r.nodes {
			n := &r.nodes[i]
			if len(n.out) > 0 {
				// Unreachable at quiescence: every record holds a pending
				// timer, which keeps the kernel busy. Defensive.
				return nil, fmt.Errorf("mesh: node %d has %d outstanding transmissions", i, len(n.out))
			}
			rc.stats = rc.stats.add(n.stats)
			nc := &rc.nodes[i]
			nc.rng = n.rng.State()
			nc.sendDst = make([]int, 0, len(n.nextSend))
			for d := range n.nextSend {
				nc.sendDst = append(nc.sendDst, d)
			}
			sort.Ints(nc.sendDst)
			nc.sendSeq = make([]uint32, len(nc.sendDst))
			for j, d := range nc.sendDst {
				nc.sendSeq[j] = n.nextSend[d]
			}
			nc.recvSrc = make([]int, 0, len(n.recv))
			for s := range n.recv {
				nc.recvSrc = append(nc.recvSrc, s)
			}
			sort.Ints(nc.recvSrc)
			nc.recvFloor = make([]uint32, len(nc.recvSrc))
			nc.recvSeen = make([][]uint32, len(nc.recvSrc))
			for j, s := range nc.recvSrc {
				ch := n.recv[s]
				nc.recvFloor[j] = ch.floor
				for sq := range ch.seen {
					nc.recvSeen[j] = append(nc.recvSeen[j], sq)
				}
				sort.Slice(nc.recvSeen[j], func(a, b int) bool { return nc.recvSeen[j][a] < nc.recvSeen[j][b] })
			}
			nc.suspDst = make([]int, 0, len(n.suspect))
			for d := range n.suspect {
				nc.suspDst = append(nc.suspDst, d)
			}
			sort.Ints(nc.suspDst)
			nc.suspAt = make([]sim.Time, len(nc.suspDst))
			for j, d := range nc.suspDst {
				nc.suspAt[j] = n.suspect[d]
			}
		}
		st.react = rc
	}
	for n := range nw.inboxes {
		ib := &nw.inboxes[n]
		for tag, ws := range ib.waiters {
			if len(ws) > 0 {
				return nil, fmt.Errorf("mesh: node %d has a process blocked in Recv(tag=%d)", n, tag)
			}
		}
		is := &st.inboxes[n]
		for tag, q := range ib.queues {
			if len(q) > 0 {
				is.tags = append(is.tags, tag)
			}
		}
		sort.Ints(is.tags)
		is.queues = make([][]Msg, len(is.tags))
		for i, tag := range is.tags {
			q := make([]Msg, len(ib.queues[tag]))
			for j, m := range ib.queues[tag] {
				q[j] = *m
				q[j].pooled = false // inbox messages are never recycled
			}
			is.queues[i] = q
		}
	}
	return st, nil
}

// RestoreState overwrites a freshly constructed network's state with a
// captured one. The topology (link and node counts) must match.
func (nw *Network) RestoreState(st *NetworkState) error {
	if len(st.links) != len(nw.links) {
		return fmt.Errorf("mesh: snapshot has %d links, network has %d", len(st.links), len(nw.links))
	}
	if len(st.cpuFree) != len(nw.cpuFree) {
		return fmt.Errorf("mesh: snapshot has %d nodes, network has %d", len(st.cpuFree), len(nw.cpuFree))
	}
	if st.faultCursor != 0 || st.faultStats != (FaultStats{}) {
		if nw.faults == nil {
			return fmt.Errorf("mesh: snapshot is mid fault schedule but the network has none installed")
		}
	}
	if (st.react != nil) != (nw.react != nil) {
		return fmt.Errorf("mesh: snapshot and network disagree on reactive mode")
	}
	if st.react != nil && len(st.react.nodes) != len(nw.react.nodes) {
		return fmt.Errorf("mesh: snapshot has reactive state for %d nodes, network has %d", len(st.react.nodes), len(nw.react.nodes))
	}
	if nw.faults != nil {
		nw.faults.resetTo(st.faultCursor)
		nw.faults.stats = st.faultStats
	}
	if rc := st.react; rc != nil {
		r := nw.react
		r.base = rc.stats
		for i := range rc.nodes {
			nc := &rc.nodes[i]
			n := &r.nodes[i]
			n.rng.SetState(nc.rng)
			n.stats = FaultStats{} // folded into base at capture
			n.nextSend = make(map[int]uint32, len(nc.sendDst))
			for j, d := range nc.sendDst {
				n.nextSend[d] = nc.sendSeq[j]
			}
			n.out = make(map[uint64]*xmit)
			n.recv = make(map[int]*recvChan, len(nc.recvSrc))
			for j, s := range nc.recvSrc {
				ch := &recvChan{floor: nc.recvFloor[j]}
				for _, sq := range nc.recvSeen[j] {
					if ch.seen == nil {
						ch.seen = make(map[uint32]struct{}, len(nc.recvSeen[j]))
					}
					ch.seen[sq] = struct{}{}
				}
				n.recv[s] = ch
			}
			n.suspect = make(map[int]sim.Time, len(nc.suspDst))
			for j, d := range nc.suspDst {
				n.suspect[d] = nc.suspAt[j]
			}
		}
	}
	copy(nw.links, st.links)
	copy(nw.cpuFree, st.cpuFree)
	copy(nw.computeUS, st.computeUS)
	nw.sendMsgs = st.sendMsgs
	nw.sendBytes = st.sendBytes
	for n := range st.inboxes {
		is := &st.inboxes[n]
		if len(is.tags) == 0 {
			continue
		}
		ib := &nw.inboxes[n]
		ib.init()
		for i, tag := range is.tags {
			q := make([]*Msg, len(is.queues[i]))
			for j := range is.queues[i] {
				m := is.queues[i][j] // copy, so forks never share a Msg
				q[j] = &m
			}
			ib.queues[tag] = q
		}
	}
	return nil
}
