package mesh

import "fmt"

// Torus is an R×C 2D torus: the mesh with wrap-around links in both
// dimensions. Node ids, link slots and the row-major numbering match the
// mesh exactly; only the neighbor relation (and thus routing) differs.
//
// Routing is dimension-order like the mesh (columns before rows), going
// the shorter way around each ring; on a tie the positive direction
// (East / South) is taken, which keeps routes deterministic.
type Torus struct {
	Rows, Cols int
}

// NewTorus returns a torus with the given dimensions. It panics on
// non-positive dimensions.
func NewTorus(rows, cols int) Torus {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mesh: invalid torus dimensions %dx%d", rows, cols))
	}
	return Torus{Rows: rows, Cols: cols}
}

// mesh returns the grid companion used for id arithmetic.
func (t Torus) mesh() Mesh { return Mesh{Rows: t.Rows, Cols: t.Cols} }

// N returns the number of nodes.
func (t Torus) N() int { return t.Rows * t.Cols }

// Nodes implements Topology: every torus node hosts a processor.
func (t Torus) Nodes() int { return t.N() }

// NumLinks returns the directed-link id space (the mesh's 4 slots per
// node; on a torus every slot of a dimension with more than one line is a
// real link).
func (t Torus) NumLinks() int { return t.N() * int(numDirs) }

// LinkID returns the directed link index for the link leaving node in
// direction d.
func (t Torus) LinkID(node int, d Dir) int { return node*int(numDirs) + int(d) }

// LinkOf inverts LinkID.
func (t Torus) LinkOf(link int) (node int, d Dir) {
	return link / int(numDirs), Dir(link % int(numDirs))
}

// HasLink reports whether node has an outgoing link in direction d: all
// four exist unless the dimension is a single line.
func (t Torus) HasLink(node int, d Dir) bool {
	switch d {
	case East, West:
		return t.Cols > 1
	case South, North:
		return t.Rows > 1
	}
	return false
}

// Neighbor returns the node reached from node in direction d, wrapping
// around the torus.
func (t Torus) Neighbor(node int, d Dir) int {
	c := t.mesh().CoordOf(node)
	switch d {
	case East:
		c.Col = (c.Col + 1) % t.Cols
	case West:
		c.Col = (c.Col - 1 + t.Cols) % t.Cols
	case South:
		c.Row = (c.Row + 1) % t.Rows
	case North:
		c.Row = (c.Row - 1 + t.Rows) % t.Rows
	}
	return t.mesh().ID(c)
}

// ringSteps returns the number of steps and the direction (positive or
// negative) of the shorter way around a ring of the given size from x to
// y. Ties take the positive direction.
func ringSteps(x, y, size int) (steps int, positive bool) {
	fwd := ((y-x)%size + size) % size
	bwd := size - fwd
	if fwd == 0 {
		return 0, true
	}
	if fwd <= bwd {
		return fwd, true
	}
	return bwd, false
}

// Dist implements Topology: the sum of the per-dimension ring distances.
func (t Torus) Dist(a, b int) int {
	ca, cb := t.mesh().CoordOf(a), t.mesh().CoordOf(b)
	dc, _ := ringSteps(ca.Col, cb.Col, t.Cols)
	dr, _ := ringSteps(ca.Row, cb.Row, t.Rows)
	return dc + dr
}

// Diameter implements Topology: half way around both rings.
func (t Torus) Diameter() int { return t.Rows/2 + t.Cols/2 }

// Bisection implements Topology: the halving cut splits the longer side;
// a torus cut crosses two line boundaries (the split and the wrap-around).
func (t Torus) Bisection() int {
	short, long := t.Cols, t.Rows
	if t.Rows < t.Cols {
		short, long = t.Rows, t.Cols
	}
	if long == 1 {
		return 0 // a single node has no cut
	}
	return 2 * short
}

// AppendRoute implements Topology: dimension-order, columns before rows,
// the shorter way around each ring.
func (t Torus) AppendRoute(buf []int, a, b int) []int {
	cur, dst := t.mesh().CoordOf(a), t.mesh().CoordOf(b)
	steps, positive := ringSteps(cur.Col, dst.Col, t.Cols)
	for ; steps > 0; steps-- {
		d := East
		if !positive {
			d = West
		}
		node := t.mesh().ID(cur)
		buf = append(buf, t.LinkID(node, d))
		cur = t.mesh().CoordOf(t.Neighbor(node, d))
	}
	steps, positive = ringSteps(cur.Row, dst.Row, t.Rows)
	for ; steps > 0; steps-- {
		d := South
		if !positive {
			d = North
		}
		node := t.mesh().ID(cur)
		buf = append(buf, t.LinkID(node, d))
		cur = t.mesh().CoordOf(t.Neighbor(node, d))
	}
	return buf
}

// ForEachLink implements Topology.
func (t Torus) ForEachLink(f func(link, from, to int)) {
	for n := 0; n < t.N(); n++ {
		for d := East; d < numDirs; d++ {
			if t.HasLink(n, d) {
				f(t.LinkID(n, d), n, t.Neighbor(n, d))
			}
		}
	}
}

// Grid implements Topology: the torus decomposes over its grid layout
// like the mesh (submeshes of a torus are ordinary rectangles).
func (t Torus) Grid() (rows, cols int, ok bool) { return t.Rows, t.Cols, true }

// String implements fmt.Stringer.
func (t Torus) String() string { return fmt.Sprintf("%dx%d torus", t.Rows, t.Cols) }
