package mesh

import (
	"testing"
	"testing/quick"
)

func TestIDCoordRoundTrip(t *testing.T) {
	m := New(4, 7)
	for id := 0; id < m.N(); id++ {
		if got := m.ID(m.CoordOf(id)); got != id {
			t.Fatalf("round trip %d -> %v -> %d", id, m.CoordOf(id), got)
		}
	}
}

func TestRowMajorNumbering(t *testing.T) {
	m := New(3, 5)
	if m.ID(Coord{Row: 0, Col: 0}) != 0 {
		t.Fatal("origin is not node 0")
	}
	if m.ID(Coord{Row: 1, Col: 0}) != 5 {
		t.Fatal("numbering is not row-major")
	}
	if m.ID(Coord{Row: 2, Col: 4}) != 14 {
		t.Fatal("last node id wrong")
	}
}

func TestInvalidMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 3) did not panic")
		}
	}()
	New(0, 3)
}

func TestNeighborsAndLinks(t *testing.T) {
	m := New(3, 3)
	center := m.ID(Coord{Row: 1, Col: 1})
	for _, d := range []Dir{East, West, South, North} {
		if !m.HasLink(center, d) {
			t.Fatalf("center node missing %v link", d)
		}
	}
	corner := m.ID(Coord{Row: 0, Col: 0})
	if m.HasLink(corner, West) || m.HasLink(corner, North) {
		t.Fatal("corner node has out-of-mesh links")
	}
	if !m.HasLink(corner, East) || !m.HasLink(corner, South) {
		t.Fatal("corner node missing in-mesh links")
	}
	if m.Neighbor(center, East) != m.ID(Coord{Row: 1, Col: 2}) {
		t.Fatal("East neighbor wrong")
	}
	if m.Neighbor(center, North) != m.ID(Coord{Row: 0, Col: 1}) {
		t.Fatal("North neighbor wrong")
	}
}

func TestLinkIDRoundTrip(t *testing.T) {
	m := New(5, 4)
	for node := 0; node < m.N(); node++ {
		for _, d := range []Dir{East, West, South, North} {
			n, dd := m.LinkOf(m.LinkID(node, d))
			if n != node || dd != d {
				t.Fatalf("LinkOf(LinkID(%d,%v)) = (%d,%v)", node, d, n, dd)
			}
		}
	}
}

// TestDimensionOrderPath checks the "first dimension 1, then dimension 2"
// rule: the path changes columns before rows.
func TestDimensionOrderPath(t *testing.T) {
	m := New(4, 4)
	a := m.ID(Coord{Row: 3, Col: 0})
	b := m.ID(Coord{Row: 0, Col: 3})
	nodes := m.PathNodes(a, b)
	// Expect: (3,0) (3,1) (3,2) (3,3) (2,3) (1,3) (0,3)
	want := []Coord{{3, 0}, {3, 1}, {3, 2}, {3, 3}, {2, 3}, {1, 3}, {0, 3}}
	if len(nodes) != len(want) {
		t.Fatalf("path has %d nodes, want %d", len(nodes), len(want))
	}
	for i, id := range nodes {
		if m.CoordOf(id) != want[i] {
			t.Fatalf("path[%d] = %v, want %v", i, m.CoordOf(id), want[i])
		}
	}
}

func TestPathLengthEqualsManhattan(t *testing.T) {
	m := New(8, 6)
	check := func(a, b uint16) bool {
		x, y := int(a)%m.N(), int(b)%m.N()
		return len(m.PathLinks(x, y)) == m.Dist(x, y)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPathConsecutiveAdjacency(t *testing.T) {
	m := New(7, 9)
	check := func(a, b uint16) bool {
		x, y := int(a)%m.N(), int(b)%m.N()
		nodes := m.PathNodes(x, y)
		if nodes[0] != x || nodes[len(nodes)-1] != y {
			return false
		}
		for i := 1; i < len(nodes); i++ {
			if m.Dist(nodes[i-1], nodes[i]) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfPathEmpty(t *testing.T) {
	m := New(3, 3)
	if len(m.PathLinks(4, 4)) != 0 {
		t.Fatal("self path not empty")
	}
	n := m.PathNodes(4, 4)
	if len(n) != 1 || n[0] != 4 {
		t.Fatalf("self PathNodes = %v", n)
	}
}

func TestDegenerateMeshes(t *testing.T) {
	// 1xN and Nx1 meshes must route correctly (they appear as submeshes).
	m := New(1, 8)
	if got := len(m.PathLinks(0, 7)); got != 7 {
		t.Fatalf("1x8 path length %d, want 7", got)
	}
	m = New(8, 1)
	if got := len(m.PathLinks(0, 7)); got != 7 {
		t.Fatalf("8x1 path length %d, want 7", got)
	}
	m = New(1, 1)
	if m.N() != 1 || len(m.PathLinks(0, 0)) != 0 {
		t.Fatal("1x1 mesh broken")
	}
}
