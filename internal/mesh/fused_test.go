package mesh

import (
	"testing"

	"diva/internal/sim"
)

// TestFusedBusyRecvTiming pins the busy-CPU case of the fused delivery
// pipeline with hand-computed times: when a message arrives while the
// destination CPU is still working off an earlier receive startup, its
// handler must run only once the CPU frees up — exactly as in the classic
// two-stage pipeline — and the kernel stat must count the busy arrival.
func TestFusedBusyRecvTiming(t *testing.T) {
	k, nw := newTestNet(1, 2)
	var times []sim.Time
	nw.Handle(42, func(m *Msg) { times = append(times, k.Now()) })
	k.At(0, func() {
		// First message: depart 100, head 105, tail 105+200, arrive 305,
		// recv done 405. Second: depart 200 (CPU), waits for the link
		// (busy until 305), head 310, arrive 320 — while the CPU is
		// busy until 405 — so its receive startup runs 405..505.
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 200, Kind: 42})
		nw.Send(&Msg{Src: 0, Dst: 1, Size: 10, Kind: 42})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] != 405 || times[1] != 505 {
		t.Fatalf("delivery times %v, want [405 505]", times)
	}
	if got := k.Stat.FusedDeliveries; got != 2 {
		t.Errorf("FusedDeliveries = %d, want 2", got)
	}
	if got := k.Stat.FusedBusyRecv; got != 1 {
		t.Errorf("FusedBusyRecv = %d, want 1 (second arrival found the CPU busy)", got)
	}
	if got := k.Stat.TwoStageDeliveries; got != 0 {
		t.Errorf("TwoStageDeliveries = %d, want 0 in fused mode", got)
	}
}

// stormRun drives a deterministic message storm (cross traffic, shared
// destinations, mixed sizes, node-local deliveries) through one pipeline
// and returns every observable: per-delivery (tag, time) order, link
// loads, congestion, send stats, compute times and the kernel's event-
// order fingerprint.
func stormRun(t *testing.T, twoStage bool) (deliv []sim.Time, tags []int, cong Congestion, loads []LinkLoad, fp uint64, stat sim.Stats) {
	t.Helper()
	k := sim.New()
	nw := NewNetwork(k, New(4, 4), testParams())
	nw.SetTwoStageDelivery(twoStage)
	const kind = 9
	nw.Handle(kind, func(m *Msg) {
		deliv = append(deliv, k.Now())
		tags = append(tags, m.Tag)
		// Every third delivery triggers a reply, so handler-issued sends
		// interleave with the scheduled bursts.
		if m.Tag%3 == 0 && m.Tag < 900 {
			nw.SendPooledTag(m.Dst, m.Src, 17+m.Tag%31, kind, 900+m.Tag, nil)
		}
	})
	// Bursts at staggered times: pseudo-random but fixed pattern.
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < 200; i++ {
		h = h*6364136223846793005 + 1442695040888963407
		src := int(h>>33) % 16
		dst := int(h>>17) % 16
		size := 8 + int(h>>7)%300
		at := sim.Time(int(h>>45)%500) * 3
		tag := i
		k.At(at, func() { nw.SendPooledTag(src, dst, size, kind, tag, nil) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	return deliv, tags, nw.Congestion(nil), nw.Loads(), k.Fingerprint(), k.Stat
}

// TestFusedMatchesTwoStage is the pipeline A/B: the fused single-event
// delivery must reproduce the classic two-stage pipeline on every
// observable — delivery order and times, congestion, per-link loads, and
// even the kernel's executed (t, seq) fingerprint, because the lazy
// arrive stage occupies the exact queue position of the skipped arrive
// event.
func TestFusedMatchesTwoStage(t *testing.T) {
	dF, tagF, congF, loadsF, fpF, statF := stormRun(t, false)
	dT, tagT, congT, loadsT, fpT, statT := stormRun(t, true)
	if len(dF) != len(dT) {
		t.Fatalf("delivery counts differ: fused %d, two-stage %d", len(dF), len(dT))
	}
	for i := range dF {
		if dF[i] != dT[i] || tagF[i] != tagT[i] {
			t.Fatalf("delivery %d differs: fused (tag %d, t=%v), two-stage (tag %d, t=%v)",
				i, tagF[i], dF[i], tagT[i], dT[i])
		}
	}
	if congF != congT {
		t.Errorf("congestion differs: fused %+v, two-stage %+v", congF, congT)
	}
	for i := range loadsF {
		if loadsF[i] != loadsT[i] {
			t.Errorf("link %d load differs: fused %+v, two-stage %+v", i, loadsF[i], loadsT[i])
		}
	}
	if fpF != fpT {
		t.Errorf("kernel fingerprints differ: fused %#x, two-stage %#x (event order not bit-identical)", fpF, fpT)
	}
	if statF.FusedDeliveries == 0 || statF.TwoStageDeliveries != 0 {
		t.Errorf("fused run stats: %+v, want all hops fused", statF)
	}
	if statT.FusedDeliveries != 0 || statT.TwoStageDeliveries == 0 {
		t.Errorf("two-stage run stats: %+v, want all hops two-stage", statT)
	}
	if statF.FusedDeliveries != statT.TwoStageDeliveries {
		t.Errorf("hop counts differ: fused %d, two-stage %d",
			statF.FusedDeliveries, statT.TwoStageDeliveries)
	}
	if statF.FusedBusyRecv == 0 {
		t.Error("storm produced no busy-CPU arrivals; the test no longer covers the fallback charging")
	}
}

// TestFusedTimingGoldens re-runs the hand-computed timing checks of the
// classic pipeline through the two-stage oracle, pinning that the suite's
// other timing tests (which run fused by default) cover the same math.
func TestFusedTimingGoldens(t *testing.T) {
	for _, twoStage := range []bool{false, true} {
		k, nw := newTestNet(1, 3)
		nw.SetTwoStageDelivery(twoStage)
		var at sim.Time
		nw.Handle(42, func(m *Msg) { at = k.Now() })
		k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 2, Size: 50, Kind: 42}) })
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if at != 260 {
			t.Fatalf("twoStage=%v: delivered at %v, want 260", twoStage, at)
		}
	}
}
