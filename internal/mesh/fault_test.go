package mesh

import (
	"strings"
	"testing"

	"diva/internal/sim"
	"diva/internal/xrand"
)

// faultNet builds a kernel + network over an arbitrary topology with the
// round-number test params and an installed schedule.
func faultNet(t *testing.T, tp Topology, sched FaultSchedule) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.New()
	nw := NewNetwork(k, tp, testParams())
	if err := nw.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	return k, nw
}

// TestFaultScheduleValidation: malformed schedules are rejected at install
// time with errors naming the problem.
func TestFaultScheduleValidation(t *testing.T) {
	cases := []struct {
		name  string
		sched FaultSchedule
		want  string
	}{
		{"negative time", FaultSchedule{
			{AtUS: -1, Kind: FaultLinkDown, A: 0, B: 1},
			{AtUS: 1, Kind: FaultLinkUp, A: 0, B: 1},
		}, "finite and non-negative"},
		{"no such pair", FaultSchedule{
			{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 3},
			{AtUS: 1, Kind: FaultLinkUp, A: 0, B: 3},
		}, "share no link"},
		{"self pair", FaultSchedule{
			{AtUS: 0, Kind: FaultLinkDown, A: 1, B: 1},
			{AtUS: 1, Kind: FaultLinkUp, A: 1, B: 1},
		}, "no such node pair"},
		{"overlapping downs left unhealed", FaultSchedule{
			// Overlapping windows merge (depth counting), so the two downs
			// collapse to one outage — which the single up closes at depth 1,
			// leaving the merged outage open.
			{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 1},
			{AtUS: 1, Kind: FaultLinkDown, A: 0, B: 1},
			{AtUS: 2, Kind: FaultLinkUp, A: 0, B: 1},
		}, "never healed"},
		{"up before down", FaultSchedule{
			{AtUS: 0, Kind: FaultLinkUp, A: 0, B: 1},
		}, "already in that state"},
		{"never healed", FaultSchedule{
			{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 1},
		}, "never healed"},
		{"node out of range", FaultSchedule{
			{AtUS: 0, Kind: FaultNodeDown, A: 9},
			{AtUS: 1, Kind: FaultNodeUp, A: 9},
		}, "no such node"},
		{"node never healed", FaultSchedule{
			{AtUS: 0, Kind: FaultNodeDown, A: 2},
		}, "never healed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nw := NewNetwork(sim.New(), New(2, 2), testParams())
			err := nw.InstallFaults(tc.sched)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestFaultInstallEmptyAndDouble: an empty schedule is a no-op and a second
// install is rejected.
func TestFaultInstallEmptyAndDouble(t *testing.T) {
	nw := NewNetwork(sim.New(), New(2, 2), testParams())
	if err := nw.InstallFaults(nil); err != nil {
		t.Fatal(err)
	}
	if nw.FaultSchedule() != nil {
		t.Fatal("empty install left a schedule behind")
	}
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 1},
		{AtUS: 1, Kind: FaultLinkUp, A: 0, B: 1},
	}
	if err := nw.InstallFaults(sched); err != nil {
		t.Fatal(err)
	}
	if err := nw.InstallFaults(sched); err == nil {
		t.Fatal("double install succeeded")
	}
	if got := nw.FaultSchedule(); len(got) != 2 {
		t.Fatalf("FaultSchedule() has %d events, want 2", len(got))
	}
}

// TestFaultRerouteOverSpanningTree: with the direct link down, a message is
// delivered over the live spanning tree and the stretch counters record the
// detour. 2x2 mesh, pair (0,1) down: the only live 0->1 route is
// 0-2, 2-3, 3-1 (three hops instead of one).
func TestFaultRerouteOverSpanningTree(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 1},
		{AtUS: 100000, Kind: FaultLinkUp, A: 0, B: 1},
	}
	k, nw := faultNet(t, New(2, 2), sched)
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// startupSend(100) + 3 hops * 5 + size 50 + startupRecv(100) = 265.
	if at != 265 {
		t.Fatalf("rerouted delivery at %v, want 265", at)
	}
	st := nw.FaultStats()
	if st.Routed != 1 || st.Rerouted != 1 || st.ReroutedHops != 3 || st.BaseHops != 1 {
		t.Fatalf("stats = %+v, want 1 rerouted over 3 hops vs 1", st)
	}
	if st.Stretch() != 3 {
		t.Fatalf("Stretch() = %v, want 3", st.Stretch())
	}
	if st.Availability() != 1 {
		t.Fatalf("Availability() = %v, want 1 (nothing held)", st.Availability())
	}
}

// TestFaultDetourGrowsRouteBuffers: a spanning-tree detour longer than the
// healthy-net diameter must grow the persistent charge buffer (sized
// Diameter()+1 at construction) instead of clobbering memory, and the
// growth must stick for the next message. 2x3 mesh (diameter 3): with
// (0,1) and (1,4) down, node 1 hangs off node 2 and the 0->1 tree path is
// 0-3, 3-4, 4-5, 5-2, 2-1 — five hops.
func TestFaultDetourGrowsRouteBuffers(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 1},
		{AtUS: 0, Kind: FaultLinkDown, A: 1, B: 4},
		{AtUS: 100000, Kind: FaultLinkUp, A: 0, B: 1},
		{AtUS: 100000, Kind: FaultLinkUp, A: 1, B: 4},
	}
	tp := New(2, 3)
	k, nw := faultNet(t, tp, sched)
	if cap(nw.startBuf) != tp.Diameter()+1 {
		t.Fatalf("initial startBuf cap %d, want Diameter()+1 = %d", cap(nw.startBuf), tp.Diameter()+1)
	}
	var at sim.Time
	deliveries := 0
	nw.Handle(42, func(m *Msg) { at = k.Now(); deliveries++ })
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 50, Kind: 42}) })
	k.At(1000, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if deliveries != 2 {
		t.Fatalf("%d deliveries, want 2", deliveries)
	}
	// Second message: startupSend(100) + 5 hops * 5 + 50 + startupRecv(100).
	if at != 1275 {
		t.Fatalf("detour delivery at %v, want 1275", at)
	}
	if cap(nw.startBuf) < 5 {
		t.Fatalf("startBuf cap %d after a 5-hop detour, growth did not persist", cap(nw.startBuf))
	}
	if st := nw.FaultStats(); st.ReroutedHops != 10 || st.BaseHops != 2 {
		t.Fatalf("stats = %+v, want 10 rerouted hops vs 2 base", st)
	}
}

// TestFaultHeldUntilHeal: a message to a churned-out node is held until the
// schedule heals it, then retransmitted with a fresh send startup.
func TestFaultHeldUntilHeal(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 1},
		{AtUS: 5000, Kind: FaultNodeUp, A: 1},
	}
	k, nw := faultNet(t, New(2, 2), sched)
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Held from depart (t=100, after the send startup) to the heal at 5000,
	// then a fresh startup: depart2 = 5100, + 1 hop * 5 + 50 + recv 100.
	if at != 5255 {
		t.Fatalf("held delivery at %v, want 5255", at)
	}
	st := nw.FaultStats()
	if st.Held != 1 || st.RetryMsgs != 1 || st.RetryBytes != 50 {
		t.Fatalf("stats = %+v, want 1 held, 1 retry of 50 bytes", st)
	}
	if st.HeldUS != 5000 {
		t.Fatalf("HeldUS = %v, want 5000", st.HeldUS)
	}
	// The retransmission is routed again: availability = 1 - 1/2.
	if st.Routed != 2 || st.Availability() != 0.5 {
		t.Fatalf("Routed = %d, Availability() = %v, want 2 and 0.5", st.Routed, st.Availability())
	}
}

// TestFaultNodeChurnLocalDeliveryUnaffected: churn takes the interface
// down, not the CPU — node-local messages still deliver on time.
func TestFaultNodeChurnLocalDeliveryUnaffected(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 1},
		{AtUS: 5000, Kind: FaultNodeUp, A: 1},
	}
	k, nw := faultNet(t, New(2, 2), sched)
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(0, func() { nw.Send(&Msg{Src: 1, Dst: 1, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 202 { // startup(100) + local(2) + recv(100), as fault-free
		t.Fatalf("local delivery at %v, want 202", at)
	}
	if st := nw.FaultStats(); st.Routed != 0 {
		t.Fatalf("local delivery hit the fault engine: %+v", st)
	}
}

// TestFaultCursorResetTo: resetTo rewinds the link state to an exact
// schedule position by replaying the prefix.
func TestFaultCursorResetTo(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 10, Kind: FaultLinkDown, A: 0, B: 1},
		{AtUS: 20, Kind: FaultNodeDown, A: 3},
		{AtUS: 30, Kind: FaultNodeUp, A: 3},
		{AtUS: 40, Kind: FaultLinkUp, A: 0, B: 1},
	}
	_, nw := faultNet(t, New(2, 2), sched)
	fs := nw.faults
	fs.sync(25)
	if fs.cursor != 2 || !fs.nodeDown[3] || fs.nDown == 0 {
		t.Fatalf("after sync(25): cursor=%d nodeDown[3]=%v nDown=%d", fs.cursor, fs.nodeDown[3], fs.nDown)
	}
	fs.resetTo(1)
	if fs.cursor != 1 || fs.nodeDown[3] || fs.nodesDown != 0 {
		t.Fatalf("after resetTo(1): cursor=%d nodeDown[3]=%v nodesDown=%d", fs.cursor, fs.nodeDown[3], fs.nodesDown)
	}
	// Only the (0,1) link outage should be active.
	if fs.nDown != 2 {
		t.Fatalf("after resetTo(1): %d directed links down, want 2", fs.nDown)
	}
	fs.resetTo(0)
	if fs.anyDown() {
		t.Fatal("resetTo(0) left faults active")
	}
}

// TestFaultGenDeterministicAndComplete: the generator draws the same
// schedule from the same RNG state, respects the requested counts, and the
// result passes install-time validation on its own topology.
func TestFaultGenDeterministicAndComplete(t *testing.T) {
	g := FaultGen{LinkFailures: 3, NodeChurn: 2, MeanDownUS: 1000, HorizonUS: 8000}
	tp := New(4, 4)
	s1, err := g.Generate(tp, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := g.Generate(tp, xrand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != 2*(3+2) {
		t.Fatalf("generated %d events, want %d", len(s1), 2*(3+2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed diverged at event %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	nw := NewNetwork(sim.New(), tp, testParams())
	if err := nw.InstallFaults(s1); err != nil {
		t.Fatalf("generated schedule fails validation: %v", err)
	}
}

// TestFaultGenErrors: impossible requests are errors, not panics.
func TestFaultGenErrors(t *testing.T) {
	tp := New(2, 2)
	rng := xrand.New(1)
	cases := []struct {
		name string
		g    FaultGen
		want string
	}{
		{"negative", FaultGen{LinkFailures: -1, MeanDownUS: 1, HorizonUS: 1}, "non-negative"},
		{"no mean", FaultGen{LinkFailures: 1, HorizonUS: 1}, "positive mean_down_us"},
		{"too many links", FaultGen{LinkFailures: 100, MeanDownUS: 1, HorizonUS: 1}, "only 4 link pairs"},
		{"too much churn", FaultGen{NodeChurn: 100, MeanDownUS: 1, HorizonUS: 1}, "only 4 processors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.g.Generate(tp, rng)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
	if s, err := (FaultGen{}).Generate(tp, rng); err != nil || s != nil {
		t.Fatalf("zero generator = %v, %v, want nil, nil", s, err)
	}
}

// TestGraphConstructorErrors: the graph constructors reject malformed
// inputs with errors naming the problem.
func TestGraphConstructorErrors(t *testing.T) {
	if _, err := NewGraph("x", 0, nil); err == nil {
		t.Error("NewGraph with 0 nodes succeeded")
	}
	if _, err := NewGraph("x", 3, [][2]int{{0, 0}}); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := NewGraph("x", 3, [][2]int{{0, 1}, {1, 0}, {1, 2}}); err == nil {
		t.Error("duplicate edge accepted")
	}
	if _, err := NewGraph("x", 3, [][2]int{{0, 5}}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := NewGraph("x", 4, [][2]int{{0, 1}, {2, 3}}); err == nil {
		t.Error("disconnected graph accepted")
	}
	if _, err := NewGraph("x", graphMaxNodes+1, nil); err == nil {
		t.Error("over-cap node count accepted")
	}
	if _, err := NewRandomRegular(8, 1, 1); err == nil {
		t.Error("degree 1 accepted")
	}
	if _, err := NewRandomRegular(5, 3, 1); err == nil {
		t.Error("odd n*d accepted")
	}
	if _, err := NewErdosRenyi(1, 1, 1); err == nil {
		t.Error("single-node ER accepted")
	}
	if _, err := NewErdosRenyi(8, 0, 1); err == nil {
		t.Error("zero-degree ER accepted")
	}
	if _, err := NewDegradedMesh(0, 4, 1, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := NewDegradedMesh(4, 4, -1, 1); err == nil {
		t.Error("negative drop accepted")
	}
}

// TestGraphConstructorsDeterministic: the seeded constructors are pure
// functions of their arguments.
func TestGraphConstructorsDeterministic(t *testing.T) {
	build := func() []Topology {
		return generatedGraphs(t)
	}
	a, b := build(), build()
	for i := range a {
		var la, lb [][3]int
		a[i].ForEachLink(func(link, from, to int) { la = append(la, [3]int{link, from, to}) })
		b[i].ForEachLink(func(link, from, to int) { lb = append(lb, [3]int{link, from, to}) })
		if len(la) != len(lb) {
			t.Fatalf("%s: rebuild has %d links, first build %d", a[i], len(lb), len(la))
		}
		for j := range la {
			if la[j] != lb[j] {
				t.Fatalf("%s: link %d differs across rebuilds", a[i], j)
			}
		}
	}
	// Degree invariant of the regular constructor.
	rr, err := NewRandomRegular(16, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < rr.N(); u++ {
		if rr.Degree(u) != 4 {
			t.Fatalf("node %d has degree %d, want 4", u, rr.Degree(u))
		}
	}
}

// TestDegradedMeshDropsLinks: the degraded mesh removes the requested
// links while staying connected (connectivity is verified by NewGraph).
func TestDegradedMeshDropsLinks(t *testing.T) {
	full := 4*3 + 4*3 // undirected edges of a 4x4 mesh
	dm, err := NewDegradedMesh(4, 4, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if got := dm.NumLinks() / 2; got != full-5 {
		t.Fatalf("degraded mesh keeps %d edges, want %d", got, full-5)
	}
}
