package mesh

import (
	"fmt"

	"diva/internal/sim"
)

// Wire forms of the network snapshot, for on-disk persistence
// (diva/snapstore): NetworkState's fields are unexported — the in-memory
// capture is private to the fork machinery — so serialization goes through
// an exported mirror with a lossless conversion in both directions.
// Message payloads ride along as interface values; the concrete payload
// types are registered with encoding/gob by their defining packages.

// NetworkWire is the gob-encodable form of a NetworkState.
type NetworkWire struct {
	LinkBusy    []sim.Time
	LinkLoad    []LinkLoad
	CPUFree     []sim.Time
	ComputeUS   []float64
	SendMsgs    []uint64
	SendBytes   []uint64
	Inboxes     []InboxWire
	FaultCursor int
	FaultStats  FaultStats
	React       *ReactWire // nil for oracle-mode captures
}

// ReactWire is the serializable reactive-transport state.
type ReactWire struct {
	Stats FaultStats
	Nodes []ReactNodeWire
}

// ReactNodeWire is one node's transport state: parallel key/value slices
// with keys ascending (the canonical form the capture produces).
type ReactNodeWire struct {
	RNG       [4]uint64
	SendDst   []int
	SendSeq   []uint32
	RecvSrc   []int
	RecvFloor []uint32
	RecvSeen  [][]uint32
	SuspDst   []int
	SuspAt    []sim.Time
}

// InboxWire is one node's queued inbox messages: Queues[i] holds tag
// Tags[i]'s FIFO, tags ascending.
type InboxWire struct {
	Tags   []int
	Queues [][]MsgWire
}

// MsgWire is the serializable form of one queued Msg.
type MsgWire struct {
	Src, Dst int
	Size     int
	Kind     uint8
	Tag      int
	Payload  interface{}
}

// Wire converts a captured NetworkState to its serializable form. The
// state is immutable, so the per-message copies are safe to take at any
// time.
func (st *NetworkState) Wire() *NetworkWire {
	w := &NetworkWire{
		LinkBusy:    make([]sim.Time, len(st.links)),
		LinkLoad:    make([]LinkLoad, len(st.links)),
		CPUFree:     append([]sim.Time(nil), st.cpuFree...),
		ComputeUS:   append([]float64(nil), st.computeUS...),
		SendMsgs:    append([]uint64(nil), st.sendMsgs[:]...),
		SendBytes:   append([]uint64(nil), st.sendBytes[:]...),
		Inboxes:     make([]InboxWire, len(st.inboxes)),
		FaultCursor: st.faultCursor,
		FaultStats:  st.faultStats,
	}
	for i, l := range st.links {
		w.LinkBusy[i] = l.busyUntil
		w.LinkLoad[i] = l.load
	}
	if rc := st.react; rc != nil {
		rw := &ReactWire{Stats: rc.stats, Nodes: make([]ReactNodeWire, len(rc.nodes))}
		for i := range rc.nodes {
			nc := &rc.nodes[i]
			rw.Nodes[i] = ReactNodeWire{
				RNG:       nc.rng,
				SendDst:   append([]int(nil), nc.sendDst...),
				SendSeq:   append([]uint32(nil), nc.sendSeq...),
				RecvSrc:   append([]int(nil), nc.recvSrc...),
				RecvFloor: append([]uint32(nil), nc.recvFloor...),
				RecvSeen:  make([][]uint32, len(nc.recvSeen)),
				SuspDst:   append([]int(nil), nc.suspDst...),
				SuspAt:    append([]sim.Time(nil), nc.suspAt...),
			}
			for j, s := range nc.recvSeen {
				rw.Nodes[i].RecvSeen[j] = append([]uint32(nil), s...)
			}
		}
		w.React = rw
	}
	for n := range st.inboxes {
		is := &st.inboxes[n]
		iw := InboxWire{Tags: append([]int(nil), is.tags...), Queues: make([][]MsgWire, len(is.queues))}
		for i, q := range is.queues {
			mq := make([]MsgWire, len(q))
			for j, m := range q {
				mq[j] = MsgWire{Src: m.Src, Dst: m.Dst, Size: m.Size, Kind: m.Kind, Tag: m.Tag, Payload: m.Payload}
			}
			iw.Queues[i] = mq
		}
		w.Inboxes[n] = iw
	}
	return w
}

// State converts a wire form back to a NetworkState, validating its
// internal shape (Network.RestoreState validates it against the machine).
func (w *NetworkWire) State() (*NetworkState, error) {
	if len(w.LinkBusy) != len(w.LinkLoad) {
		return nil, fmt.Errorf("mesh: wire has %d link clocks but %d link loads", len(w.LinkBusy), len(w.LinkLoad))
	}
	if len(w.SendMsgs) != 256 || len(w.SendBytes) != 256 {
		return nil, fmt.Errorf("mesh: wire send counters have %d/%d kinds, want 256", len(w.SendMsgs), len(w.SendBytes))
	}
	if len(w.Inboxes) != len(w.CPUFree) {
		return nil, fmt.Errorf("mesh: wire has %d inboxes but %d nodes", len(w.Inboxes), len(w.CPUFree))
	}
	st := &NetworkState{
		links:       make([]link, len(w.LinkBusy)),
		cpuFree:     append([]sim.Time(nil), w.CPUFree...),
		computeUS:   append([]float64(nil), w.ComputeUS...),
		inboxes:     make([]inboxState, len(w.Inboxes)),
		faultCursor: w.FaultCursor,
		faultStats:  w.FaultStats,
	}
	copy(st.sendMsgs[:], w.SendMsgs)
	copy(st.sendBytes[:], w.SendBytes)
	for i := range st.links {
		st.links[i] = link{busyUntil: w.LinkBusy[i], load: w.LinkLoad[i]}
	}
	if rw := w.React; rw != nil {
		if len(rw.Nodes) != len(w.CPUFree) {
			return nil, fmt.Errorf("mesh: wire has reactive state for %d nodes but %d nodes", len(rw.Nodes), len(w.CPUFree))
		}
		rc := &reactCapture{stats: rw.Stats, nodes: make([]reactNodeCap, len(rw.Nodes))}
		for i := range rw.Nodes {
			nw := &rw.Nodes[i]
			if len(nw.SendDst) != len(nw.SendSeq) ||
				len(nw.RecvSrc) != len(nw.RecvFloor) || len(nw.RecvSrc) != len(nw.RecvSeen) ||
				len(nw.SuspDst) != len(nw.SuspAt) {
				return nil, fmt.Errorf("mesh: wire reactive node %d has mismatched key/value slices", i)
			}
			rc.nodes[i] = reactNodeCap{
				rng:       nw.RNG,
				sendDst:   append([]int(nil), nw.SendDst...),
				sendSeq:   append([]uint32(nil), nw.SendSeq...),
				recvSrc:   append([]int(nil), nw.RecvSrc...),
				recvFloor: append([]uint32(nil), nw.RecvFloor...),
				recvSeen:  make([][]uint32, len(nw.RecvSeen)),
				suspDst:   append([]int(nil), nw.SuspDst...),
				suspAt:    append([]sim.Time(nil), nw.SuspAt...),
			}
			for j, s := range nw.RecvSeen {
				rc.nodes[i].recvSeen[j] = append([]uint32(nil), s...)
			}
		}
		st.react = rc
	}
	for n := range w.Inboxes {
		iw := &w.Inboxes[n]
		if len(iw.Tags) != len(iw.Queues) {
			return nil, fmt.Errorf("mesh: wire inbox %d has %d tags but %d queues", n, len(iw.Tags), len(iw.Queues))
		}
		is := inboxState{tags: append([]int(nil), iw.Tags...), queues: make([][]Msg, len(iw.Queues))}
		for i, mq := range iw.Queues {
			q := make([]Msg, len(mq))
			for j, m := range mq {
				q[j] = Msg{Src: m.Src, Dst: m.Dst, Size: m.Size, Kind: m.Kind, Tag: m.Tag, Payload: m.Payload}
			}
			is.queues[i] = q
		}
		st.inboxes[n] = is
	}
	return st, nil
}
