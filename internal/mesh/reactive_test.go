package mesh

import (
	"strings"
	"testing"

	"diva/internal/sim"
)

// reactiveNet builds a kernel + network with an installed schedule and the
// reactive transport enabled (install order mirrors the machine layer).
func reactiveNet(t *testing.T, tp Topology, sched FaultSchedule, p ReactParams) (*sim.Kernel, *Network) {
	t.Helper()
	k := sim.New()
	nw := NewNetwork(k, tp, testParams())
	if sched != nil {
		if err := nw.InstallFaults(sched); err != nil {
			t.Fatal(err)
		}
	}
	if err := nw.EnableReactive(p, 7); err != nil {
		t.Fatal(err)
	}
	return k, nw
}

// fastReact is a transport tuning with round numbers for tests.
func fastReact() ReactParams {
	return ReactParams{AckTimeoutUS: 1000, MaxRetries: 10, Backoff: 2}
}

// TestFaultOverlapMergeLink: overlapping link-down windows install as their
// union (depth counting), not as a malformed alternation. Windows [0, 20000]
// and [10000, 40000] on the 2x2 pair (0,1) merge to one outage [0, 40000]:
// a message sent after the inner up (t=25000) still reroutes over the
// spanning tree.
func TestFaultOverlapMergeLink(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultLinkDown, A: 0, B: 1},
		{AtUS: 10000, Kind: FaultLinkDown, A: 0, B: 1},
		{AtUS: 20000, Kind: FaultLinkUp, A: 0, B: 1},
		{AtUS: 40000, Kind: FaultLinkUp, A: 0, B: 1},
	}
	k, nw := faultNet(t, New(2, 2), sched)
	if got := nw.FaultSchedule(); len(got) != 2 {
		t.Fatalf("merged schedule has %d events, want 2", len(got))
	}
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(25000, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Rerouted: startupSend(100) + 3 hops * 5 + size 50 + startupRecv(100).
	if at != 25265 {
		t.Fatalf("delivery at %v, want 25265 (rerouted: the merged outage is still open)", at)
	}
}

// TestFaultOverlapMergeNode: overlapping node-churn windows act as their
// union — a message into the node is held until the *last* up, not the
// inner one.
func TestFaultOverlapMergeNode(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 2},
		{AtUS: 5000, Kind: FaultNodeDown, A: 2},
		{AtUS: 10000, Kind: FaultNodeUp, A: 2},
		{AtUS: 20000, Kind: FaultNodeUp, A: 2},
	}
	k, nw := faultNet(t, New(2, 2), sched)
	if got := nw.FaultSchedule(); len(got) != 2 {
		t.Fatalf("merged schedule has %d events, want 2", len(got))
	}
	var at sim.Time
	nw.Handle(42, func(m *Msg) { at = k.Now() })
	k.At(1, func() { nw.Send(&Msg{Src: 0, Dst: 2, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at < 20000 {
		t.Fatalf("delivery at %v, want >= 20000 (held across the merged window)", at)
	}
}

// TestReactiveAckRoundTrip: on a healthy network the reliable transport
// delivers once, the receiver acks once, and nothing retransmits.
func TestReactiveAckRoundTrip(t *testing.T) {
	k, nw := reactiveNet(t, New(2, 2), nil, fastReact())
	got := 0
	nw.Handle(42, func(m *Msg) { got++ })
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 3, Size: 100, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d times, want 1", got)
	}
	s := nw.FaultStats()
	if s.AckMsgs != 1 || s.AckBytes != TransportAckBytes {
		t.Fatalf("acks = %d (%d bytes), want 1 (%d bytes)", s.AckMsgs, s.AckBytes, TransportAckBytes)
	}
	if s.Retransmits != 0 || s.Dropped != 0 || s.Detected != 0 {
		t.Fatalf("healthy run has retransmits=%d dropped=%d detected=%d, want all 0",
			s.Retransmits, s.Dropped, s.Detected)
	}
	if n := k.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after quiescence, want 0", n)
	}
}

// TestReactiveRetransmitAcrossOutage: a message into a down node is dropped
// and the sender's timeout-driven retransmissions carry it across the heal —
// delivered exactly once, with drops and retransmits accounted.
func TestReactiveRetransmitAcrossOutage(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 3},
		{AtUS: 5000, Kind: FaultNodeUp, A: 3},
	}
	k, nw := reactiveNet(t, New(2, 2), sched, fastReact())
	got := 0
	var at sim.Time
	nw.Handle(42, func(m *Msg) { got++; at = k.Now() })
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 3, Size: 100, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d times, want 1", got)
	}
	if at < 5000 {
		t.Fatalf("delivered at %v, before the heal at 5000", at)
	}
	s := nw.FaultStats()
	if s.Dropped == 0 || s.Retransmits == 0 {
		t.Fatalf("dropped=%d retransmits=%d, want both > 0", s.Dropped, s.Retransmits)
	}
	if s.AckMsgs != 1 {
		t.Fatalf("acks = %d, want 1 (only the surviving copy reaches the receiver)", s.AckMsgs)
	}
	if n := k.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after quiescence, want 0", n)
	}
}

// TestReactiveGiveUpDrop: after MaxRetries+1 unacknowledged transmissions
// the sender detects the failure and consults the kind's give-up handler;
// GiveUpDrop abandons the message and retires the channel cleanly.
func TestReactiveGiveUpDrop(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 3},
		{AtUS: 100000, Kind: FaultNodeUp, A: 3},
	}
	p := ReactParams{AckTimeoutUS: 100, MaxRetries: 2, Backoff: 2}
	k, nw := reactiveNet(t, New(2, 2), sched, p)
	delivered := 0
	nw.Handle(42, func(m *Msg) { delivered++ })
	var gu *GiveUp
	nw.OnGiveUp(42, func(g *GiveUp) (int, GiveUpAction) {
		if gu == nil {
			cp := *g
			gu = &cp
		}
		if !nw.NodeDownNow(3) {
			t.Error("NodeDownNow(3) = false inside the give-up window")
		}
		return g.Dst, GiveUpDrop
	})
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 3, Size: 100, Kind: 42, Tag: 9, Payload: "p"}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("dropped message delivered %d times", delivered)
	}
	if gu == nil {
		t.Fatal("give-up handler never called")
	}
	if gu.Src != 0 || gu.Dst != 3 || gu.Kind != 42 || gu.Tag != 9 || gu.Payload != "p" {
		t.Fatalf("give-up fields = %+v", *gu)
	}
	if gu.Attempts != p.MaxRetries+1 {
		t.Fatalf("give-up after %d attempts, want %d", gu.Attempts, p.MaxRetries+1)
	}
	s := nw.FaultStats()
	if s.Detected != 1 {
		t.Fatalf("Detected = %d, want 1", s.Detected)
	}
	if n := k.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after drop, want 0", n)
	}
}

// TestReactiveGiveUpRedirect: GiveUpRedirect retires the channel and
// re-targets the message at the handler's destination — the fixedhome
// failover shape — counting one failover.
func TestReactiveGiveUpRedirect(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 3},
		{AtUS: 100000, Kind: FaultNodeUp, A: 3},
	}
	p := ReactParams{AckTimeoutUS: 100, MaxRetries: 2, Backoff: 2}
	k, nw := reactiveNet(t, New(2, 2), sched, p)
	var deliveredAt []int
	nw.Handle(42, func(m *Msg) { deliveredAt = append(deliveredAt, m.Dst) })
	nw.OnGiveUp(42, func(g *GiveUp) (int, GiveUpAction) {
		return 2, GiveUpRedirect
	})
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 3, Size: 100, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 1 || deliveredAt[0] != 2 {
		t.Fatalf("deliveries at %v, want exactly one at node 2", deliveredAt)
	}
	s := nw.FaultStats()
	if s.Failovers != 1 || s.Detected != 1 {
		t.Fatalf("failovers=%d detected=%d, want 1/1", s.Failovers, s.Detected)
	}
}

// TestReactiveGiveUpReissue: GiveUpReissue restarts the detection cycle on
// the same channel; the retransmissions eventually cross the heal and the
// message is delivered exactly once.
func TestReactiveGiveUpReissue(t *testing.T) {
	sched := FaultSchedule{
		{AtUS: 0, Kind: FaultNodeDown, A: 3},
		{AtUS: 2000, Kind: FaultNodeUp, A: 3},
	}
	p := ReactParams{AckTimeoutUS: 300, MaxRetries: 1, Backoff: 2}
	k, nw := reactiveNet(t, New(2, 2), sched, p)
	got := 0
	nw.Handle(42, func(m *Msg) { got++ })
	nw.OnGiveUp(42, func(g *GiveUp) (int, GiveUpAction) {
		return g.Dst, GiveUpReissue
	})
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 3, Size: 100, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d times, want 1", got)
	}
	s := nw.FaultStats()
	if s.Reissues == 0 {
		t.Fatal("Reissues = 0, want > 0")
	}
	if s.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1 (the suspect destination acked)", s.Recovered)
	}
	if n := k.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after quiescence, want 0", n)
	}
}

// TestReactiveFalseTimeouts: an ack timeout shorter than the healthy round
// trip makes the sender retransmit messages the receiver already has — the
// receiver dedups the copies (handler runs once), re-acks each, and the
// sender accounts the spurious attempts as false timeouts.
func TestReactiveFalseTimeouts(t *testing.T) {
	// Healthy 1x2 mesh: round trip ~ 2*(100+5+size) + ack size; timeout 50
	// forces several retransmissions before the first ack lands.
	p := ReactParams{AckTimeoutUS: 50, MaxRetries: 100, Backoff: 2}
	k, nw := reactiveNet(t, New(1, 2), nil, p)
	got := 0
	nw.Handle(42, func(m *Msg) { got++ })
	k.At(0, func() { nw.Send(&Msg{Src: 0, Dst: 1, Size: 100, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("delivered %d times, want 1 (duplicates must be dedup'd)", got)
	}
	s := nw.FaultStats()
	if s.Retransmits == 0 || s.DupDrops == 0 || s.FalseTimeouts == 0 {
		t.Fatalf("retransmits=%d dupDrops=%d falseTimeouts=%d, want all > 0",
			s.Retransmits, s.DupDrops, s.FalseTimeouts)
	}
	if s.Detected != 0 {
		t.Fatalf("Detected = %d on a healthy network, want 0", s.Detected)
	}
	if n := k.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after quiescence, want 0", n)
	}
}

// TestReactiveRegistrationPanics: the reactive mode's registration guards.
func TestReactiveRegistrationPanics(t *testing.T) {
	mustPanic := func(name, want string, f func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: no panic", name)
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %v, want mention of %q", name, r, want)
			}
		}()
		f()
	}

	oracle := NewNetwork(sim.New(), New(2, 2), testParams())
	mustPanic("OnGiveUp on oracle", "oracle-mode", func() {
		oracle.OnGiveUp(42, func(*GiveUp) (int, GiveUpAction) { return 0, GiveUpDrop })
	})

	_, nw := reactiveNet(t, New(2, 2), nil, fastReact())
	mustPanic("OnGiveUp for ack kind", "no give-up handler", func() {
		nw.OnGiveUp(KindTransportAck, func(*GiveUp) (int, GiveUpAction) { return 0, GiveUpDrop })
	})
	nw.OnGiveUp(42, func(*GiveUp) (int, GiveUpAction) { return 0, GiveUpDrop })
	mustPanic("OnGiveUp twice", "registered twice", func() {
		nw.OnGiveUp(42, func(*GiveUp) (int, GiveUpAction) { return 0, GiveUpDrop })
	})
	mustPanic("Handle for ack kind", "reserved for transport acks", func() {
		nw.Handle(KindTransportAck, func(*Msg) {})
	})
}

// TestEnableReactiveValidation: parameter validation and double-enable.
func TestEnableReactiveValidation(t *testing.T) {
	cases := []struct {
		name string
		p    ReactParams
		want string
	}{
		{"zero timeout", ReactParams{AckTimeoutUS: 0, MaxRetries: 1, Backoff: 1}, "ack timeout"},
		{"zero retries", ReactParams{AckTimeoutUS: 1, MaxRetries: 0, Backoff: 1}, "max retries"},
		{"backoff below one", ReactParams{AckTimeoutUS: 1, MaxRetries: 1, Backoff: 0.5}, "backoff"},
	}
	for _, tc := range cases {
		nw := NewNetwork(sim.New(), New(2, 2), testParams())
		err := nw.EnableReactive(tc.p, 1)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	nw := NewNetwork(sim.New(), New(2, 2), testParams())
	if err := nw.EnableReactive(DefaultReactParams(), 1); err != nil {
		t.Fatal(err)
	}
	if err := nw.EnableReactive(DefaultReactParams(), 1); err == nil {
		t.Fatal("double EnableReactive succeeded")
	}
	if !nw.Reactive() {
		t.Fatal("Reactive() = false after enable")
	}
	if nw.ReactParams() != DefaultReactParams() {
		t.Fatalf("ReactParams() = %+v", nw.ReactParams())
	}
}
