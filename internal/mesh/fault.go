package mesh

import (
	"fmt"
	"math"
	"sort"

	"diva/internal/sim"
	"diva/internal/xrand"
)

// FaultKind classifies one fault-schedule event.
type FaultKind uint8

const (
	// FaultLinkDown takes down every link between nodes A and B (both
	// directions, all parallel links).
	FaultLinkDown FaultKind = iota
	// FaultLinkUp heals a prior FaultLinkDown on the same pair.
	FaultLinkUp
	// FaultNodeDown takes down node A's network interface: every link
	// incident to A, both directions. The node's CPU and processes keep
	// running — node-local delivery and computation are unaffected —
	// but no message can be routed to or from it (churn, not crash).
	FaultNodeDown
	// FaultNodeUp heals a prior FaultNodeDown on the same node.
	FaultNodeUp
)

func (k FaultKind) String() string {
	switch k {
	case FaultLinkDown:
		return "link-down"
	case FaultLinkUp:
		return "link-up"
	case FaultNodeDown:
		return "node-down"
	case FaultNodeUp:
		return "node-up"
	}
	return fmt.Sprintf("FaultKind(%d)", uint8(k))
}

// FaultEvent is one entry of a fault schedule: at simulated time AtUS the
// links named by (Kind, A, B) change state. B is ignored for node events.
type FaultEvent struct {
	AtUS float64
	Kind FaultKind
	A, B int
}

// FaultSchedule is a deterministic sequence of fault events. Order within
// the slice breaks AtUS ties (the install sort is stable), so a schedule
// is a complete, serializable description of a faulty run.
type FaultSchedule []FaultEvent

// normalized returns a sorted copy: ascending AtUS, declaration order
// preserved among equal times.
func (s FaultSchedule) normalized() FaultSchedule {
	out := make(FaultSchedule, len(s))
	copy(out, s)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtUS < out[j].AtUS })
	return out
}

// FaultGen describes a randomized fault schedule to be drawn from the
// machine RNG at construction: LinkFailures distinct link-pair outages and
// NodeChurn distinct node churns, each starting uniformly in
// [0, HorizonUS) and lasting MeanDownUS·[0.5, 1.5) (uniform — the machine
// RNG's primitives keep the draw portable and replayable). Because the
// draw happens at a fixed point of machine construction, forks and
// re-runs of the same seed regenerate the identical schedule.
type FaultGen struct {
	LinkFailures int
	NodeChurn    int
	MeanDownUS   float64
	HorizonUS    float64
}

// Generate draws the schedule over topology t. Link outages pick distinct
// undirected node pairs among t's links; churn picks distinct processor
// nodes (switch elements of indirect topologies stay up — fence a switch
// with link faults instead). The result is unsorted; InstallFaults sorts.
func (g FaultGen) Generate(t Topology, rng *xrand.RNG) (FaultSchedule, error) {
	if g.LinkFailures < 0 || g.NodeChurn < 0 {
		return nil, fmt.Errorf("mesh: fault generator counts must be non-negative, have %d link failures, %d node churns", g.LinkFailures, g.NodeChurn)
	}
	if g.LinkFailures == 0 && g.NodeChurn == 0 {
		return nil, nil
	}
	if !(g.MeanDownUS > 0) || !(g.HorizonUS > 0) {
		return nil, fmt.Errorf("mesh: fault generator needs positive mean_down_us and horizon_us, have %g and %g", g.MeanDownUS, g.HorizonUS)
	}
	pairSet := make(map[[2]int]bool)
	t.ForEachLink(func(_, from, to int) {
		a, b := from, to
		if a > b {
			a, b = b, a
		}
		pairSet[[2]int{a, b}] = true
	})
	pairs := make([][2]int, 0, len(pairSet))
	for p := range pairSet {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if g.LinkFailures > len(pairs) {
		return nil, fmt.Errorf("mesh: %d link failures requested but the topology has only %d link pairs", g.LinkFailures, len(pairs))
	}
	if g.NodeChurn > t.N() {
		return nil, fmt.Errorf("mesh: %d node churns requested but the machine has only %d processors", g.NodeChurn, t.N())
	}
	var out FaultSchedule
	outage := func() (start, dur float64) {
		start = rng.Float64() * g.HorizonUS
		dur = g.MeanDownUS * (0.5 + rng.Float64())
		return start, dur
	}
	for _, pi := range rng.Perm(len(pairs))[:g.LinkFailures] {
		p := pairs[pi]
		start, dur := outage()
		out = append(out,
			FaultEvent{AtUS: start, Kind: FaultLinkDown, A: p[0], B: p[1]},
			FaultEvent{AtUS: start + dur, Kind: FaultLinkUp, A: p[0], B: p[1]})
	}
	for _, node := range rng.Perm(t.N())[:g.NodeChurn] {
		start, dur := outage()
		out = append(out,
			FaultEvent{AtUS: start, Kind: FaultNodeDown, A: node},
			FaultEvent{AtUS: start + dur, Kind: FaultNodeUp, A: node})
	}
	return out, nil
}

// FaultStats counts routing outcomes while a fault schedule is installed.
// The counters implement the degradation vocabulary of the P2P and
// data-grid evaluations: availability is 1 − Held/Routed, re-route path
// stretch is ReroutedHops/BaseHops, and recovery traffic is
// RetryMsgs/RetryBytes (the extra startups and bytes spent retransmitting
// held messages after the partition heals).
type FaultStats struct {
	// Routed counts every cross-node message routed (the denominator of
	// availability).
	Routed uint64
	// Rerouted counts messages whose deterministic shortest path crossed
	// a dead link and that were delivered over the live spanning tree
	// instead; ReroutedHops and BaseHops accumulate the tree-path and
	// shortest-path lengths of exactly those messages.
	Rerouted     uint64
	ReroutedHops uint64
	BaseHops     uint64
	// Held counts messages that could not be delivered at their departure
	// time — source or destination unreachable (network partition or a
	// dead endpoint interface). Each held message waits for the schedule
	// event that reconnects the pair and is then retransmitted, costing a
	// fresh send startup (RetryMsgs/RetryBytes) after HeldUS microseconds
	// of accumulated waiting.
	Held       uint64
	HeldBytes  uint64
	RetryMsgs  uint64
	RetryBytes uint64
	HeldUS     float64

	// Reactive-mode counters (reactive.go); all zero in oracle mode.
	// Dropped counts messages that vanished at a failure point instead of
	// being oracle-held; the transport counters account the recovery
	// traffic (acks, retransmissions, duplicates discarded at receivers,
	// retransmissions the receiver had in fact already seen); the
	// detection counters measure the failure detector: Detected counts
	// give-up declarations (DetectUS the summed latency from first
	// transmission to declaration), Recovered counts suspects later
	// acknowledged again (RecoverUS the summed suspicion time), Failovers
	// counts give-ups redirected to a new destination and Reissues
	// give-ups restarted by a strategy after refreshing its own state.
	Dropped         uint64
	DroppedBytes    uint64
	AckMsgs         uint64
	AckBytes        uint64
	Retransmits     uint64
	RetransmitBytes uint64
	DupDrops        uint64
	FalseTimeouts   uint64
	Detected        uint64
	DetectUS        float64
	Recovered       uint64
	RecoverUS       float64
	Failovers       uint64
	Reissues        uint64
}

// Sub returns s − b, counter-wise (for phase baselines).
func (s FaultStats) Sub(b FaultStats) FaultStats {
	return FaultStats{
		Routed:          s.Routed - b.Routed,
		Rerouted:        s.Rerouted - b.Rerouted,
		ReroutedHops:    s.ReroutedHops - b.ReroutedHops,
		BaseHops:        s.BaseHops - b.BaseHops,
		Held:            s.Held - b.Held,
		HeldBytes:       s.HeldBytes - b.HeldBytes,
		RetryMsgs:       s.RetryMsgs - b.RetryMsgs,
		RetryBytes:      s.RetryBytes - b.RetryBytes,
		HeldUS:          s.HeldUS - b.HeldUS,
		Dropped:         s.Dropped - b.Dropped,
		DroppedBytes:    s.DroppedBytes - b.DroppedBytes,
		AckMsgs:         s.AckMsgs - b.AckMsgs,
		AckBytes:        s.AckBytes - b.AckBytes,
		Retransmits:     s.Retransmits - b.Retransmits,
		RetransmitBytes: s.RetransmitBytes - b.RetransmitBytes,
		DupDrops:        s.DupDrops - b.DupDrops,
		FalseTimeouts:   s.FalseTimeouts - b.FalseTimeouts,
		Detected:        s.Detected - b.Detected,
		DetectUS:        s.DetectUS - b.DetectUS,
		Recovered:       s.Recovered - b.Recovered,
		RecoverUS:       s.RecoverUS - b.RecoverUS,
		Failovers:       s.Failovers - b.Failovers,
		Reissues:        s.Reissues - b.Reissues,
	}
}

// add returns s + b, counter-wise (FaultStats aggregates the per-node
// transport counters of reactive mode).
func (s FaultStats) add(b FaultStats) FaultStats {
	return FaultStats{
		Routed:          s.Routed + b.Routed,
		Rerouted:        s.Rerouted + b.Rerouted,
		ReroutedHops:    s.ReroutedHops + b.ReroutedHops,
		BaseHops:        s.BaseHops + b.BaseHops,
		Held:            s.Held + b.Held,
		HeldBytes:       s.HeldBytes + b.HeldBytes,
		RetryMsgs:       s.RetryMsgs + b.RetryMsgs,
		RetryBytes:      s.RetryBytes + b.RetryBytes,
		HeldUS:          s.HeldUS + b.HeldUS,
		Dropped:         s.Dropped + b.Dropped,
		DroppedBytes:    s.DroppedBytes + b.DroppedBytes,
		AckMsgs:         s.AckMsgs + b.AckMsgs,
		AckBytes:        s.AckBytes + b.AckBytes,
		Retransmits:     s.Retransmits + b.Retransmits,
		RetransmitBytes: s.RetransmitBytes + b.RetransmitBytes,
		DupDrops:        s.DupDrops + b.DupDrops,
		FalseTimeouts:   s.FalseTimeouts + b.FalseTimeouts,
		Detected:        s.Detected + b.Detected,
		DetectUS:        s.DetectUS + b.DetectUS,
		Recovered:       s.Recovered + b.Recovered,
		RecoverUS:       s.RecoverUS + b.RecoverUS,
		Failovers:       s.Failovers + b.Failovers,
		Reissues:        s.Reissues + b.Reissues,
	}
}

// DetectLatencyUS is the mean failure-detection latency: time from a
// message's first transmission to its sender declaring the destination
// suspect (0 when nothing was detected).
func (s FaultStats) DetectLatencyUS() float64 {
	if s.Detected == 0 {
		return 0
	}
	return s.DetectUS / float64(s.Detected)
}

// RecoveryUS is the mean time-to-recovery: how long a suspect destination
// stayed suspect before an ack from it arrived again (0 when nothing
// recovered).
func (s FaultStats) RecoveryUS() float64 {
	if s.Recovered == 0 {
		return 0
	}
	return s.RecoverUS / float64(s.Recovered)
}

// Availability is the fraction of routed messages that were deliverable at
// departure: 1 − (Held+Dropped)/Routed (1 when nothing was routed). Held
// counts oracle-mode holds, Dropped reactive-mode losses; at most one of
// the two is ever nonzero.
func (s FaultStats) Availability() float64 {
	if s.Routed == 0 {
		return 1
	}
	return 1 - float64(s.Held+s.Dropped)/float64(s.Routed)
}

// Stretch is the mean path stretch of re-routed messages:
// ReroutedHops/BaseHops (1 when nothing was re-routed).
func (s FaultStats) Stretch() float64 {
	if s.BaseHops == 0 {
		return 1
	}
	return float64(s.ReroutedHops) / float64(s.BaseHops)
}

// faultState is the link-fault engine of a Network. Faults are applied
// lazily: no kernel events exist for them. Every routing decision first
// advances the schedule cursor to the message's departure time — and
// because both the sequential kernel and the sharded cluster route
// messages in the exact global (time, seq) send order (cross-shard sends
// are deferred and replayed at the merge in that order), the cursor
// advances through an identical interleaving at every shard count. That
// is what keeps faulty runs fingerprint-stable across shards and lets
// quiescent machines snapshot mid-schedule with nothing in flight.
type faultState struct {
	sched  FaultSchedule // normalized + validated
	cursor int           // next schedule entry to apply

	nNodes    int
	adjOut    [][]graphHalf      // node -> outgoing (to, link), sorted by (to, link)
	dirLinks  map[[2]int][]int32 // (from, to) -> directed link ids, ascending
	nodeLinks [][]int32          // node -> incident directed links, both directions

	// downCount counts, per directed link, how many active faults cover
	// it (a link outage on its pair, a churn on either endpoint). A link
	// is live iff its count is zero, so overlapping node and link faults
	// compose without special cases.
	downCount []int32
	nodeDown  []bool
	nDown     int // directed links with downCount > 0
	nodesDown int

	// Live spanning forest, rebuilt lazily after any state change: per
	// component (root = lowest live node id) a BFS tree with Yggdrasil-
	// style parent preference — among equal-depth candidates the parent
	// with the higher live degree wins, ties to the lower id — so trees
	// hang off well-connected hubs and survive further failures with
	// fewer reassignments.
	treeDirty bool
	parent    []int32
	depth     []int32
	comp      []int32 // component root, -1 for down nodes
	upLink    []int32 // node -> live link to parent (-1 at roots)
	dnLink    []int32 // node -> live link from parent
	liveDeg   []int32

	stats FaultStats

	// Scratch buffers (persistent, grown on demand).
	queue       []int32
	upBuf       []int32
	dnBuf       []int32
	seen        []bool
	scratchDown []int32
	scratchNode []bool
}

// InstallFaults installs a fault schedule on the network: a sorted copy is
// kept and applied lazily as routing reaches each event's time. The
// schedule must be well-formed — valid endpoints, down/up alternation per
// link pair and per node, and every outage healed by a matching up event —
// so that any held message has a heal time to wait for. Installing an
// empty schedule is a no-op: the network stays on the exact fault-free
// routing path, bit-identical to a network that never saw this call.
func (nw *Network) InstallFaults(s FaultSchedule) error {
	if len(s) == 0 {
		return nil
	}
	if nw.faults != nil {
		return fmt.Errorf("mesh: fault schedule already installed")
	}
	fs := &faultState{nNodes: nw.T.Nodes(), treeDirty: true}
	fs.adjOut = make([][]graphHalf, fs.nNodes)
	fs.dirLinks = make(map[[2]int][]int32)
	fs.nodeLinks = make([][]int32, fs.nNodes)
	fs.downCount = make([]int32, nw.T.NumLinks())
	nw.T.ForEachLink(func(link, from, to int) {
		fs.adjOut[from] = append(fs.adjOut[from], graphHalf{to: int32(to), link: int32(link)})
		fs.dirLinks[[2]int{from, to}] = append(fs.dirLinks[[2]int{from, to}], int32(link))
		fs.nodeLinks[from] = append(fs.nodeLinks[from], int32(link))
		fs.nodeLinks[to] = append(fs.nodeLinks[to], int32(link))
	})
	for u := range fs.adjOut {
		a := fs.adjOut[u]
		sort.Slice(a, func(i, j int) bool {
			if a[i].to != a[j].to {
				return a[i].to < a[j].to
			}
			return a[i].link < a[j].link
		})
	}
	for _, ls := range fs.dirLinks {
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	}
	fs.nodeDown = make([]bool, fs.nNodes)
	fs.parent = make([]int32, fs.nNodes)
	fs.depth = make([]int32, fs.nNodes)
	fs.comp = make([]int32, fs.nNodes)
	fs.upLink = make([]int32, fs.nNodes)
	fs.dnLink = make([]int32, fs.nNodes)
	fs.liveDeg = make([]int32, fs.nNodes)
	fs.sched = mergeOverlaps(s.normalized())
	if err := fs.validate(); err != nil {
		return err
	}
	nw.faults = fs
	return nil
}

// mergeOverlaps coalesces overlapping outage windows on the same link pair
// or node into their union: a depth counter per target keeps only the
// 0→1 down and the 1→0 up transitions. Composed schedules — explicit
// events plus a drawn fault.Gen schedule, or a generator whose windows
// happen to overlap — would otherwise fail validation with a spurious
// "already in that state" error. The transform is the identity for any
// schedule that already alternates correctly, so every existing run is
// bit-identical; genuinely malformed schedules (an up with no active down,
// a down never healed) still reach validate untouched and error there.
func mergeOverlaps(s FaultSchedule) FaultSchedule {
	pairDepth := make(map[[2]int]int)
	nodeDepth := make(map[int]int)
	out := make(FaultSchedule, 0, len(s))
	for _, ev := range s {
		keep := true
		switch ev.Kind {
		case FaultLinkDown, FaultLinkUp:
			a, b := ev.A, ev.B
			if a > b {
				a, b = b, a
			}
			p := [2]int{a, b}
			if ev.Kind == FaultLinkDown {
				keep = pairDepth[p] == 0
				pairDepth[p]++
			} else if pairDepth[p] > 0 {
				pairDepth[p]--
				keep = pairDepth[p] == 0
			}
		case FaultNodeDown, FaultNodeUp:
			if ev.Kind == FaultNodeDown {
				keep = nodeDepth[ev.A] == 0
				nodeDepth[ev.A]++
			} else if nodeDepth[ev.A] > 0 {
				nodeDepth[ev.A]--
				keep = nodeDepth[ev.A] == 0
			}
		}
		if keep {
			out = append(out, ev)
		}
	}
	return out
}

// FaultSchedule returns a copy of the installed schedule in applied
// (sorted) order, or nil when the network is fault-free. Declaring the
// returned schedule explicitly on a fresh machine reproduces this run.
func (nw *Network) FaultSchedule() FaultSchedule {
	if nw.faults == nil {
		return nil
	}
	out := make(FaultSchedule, len(nw.faults.sched))
	copy(out, nw.faults.sched)
	return out
}

// FaultStats returns the accumulated fault counters: the routing-order
// engine counters plus, in reactive mode, the per-node transport counters
// and a restored snapshot's baseline. Zero when neither a schedule nor
// reactive mode is installed.
func (nw *Network) FaultStats() FaultStats {
	var st FaultStats
	if nw.faults != nil {
		st = nw.faults.stats
	}
	if r := nw.react; r != nil {
		st = st.add(r.base)
		for i := range r.nodes {
			st = st.add(r.nodes[i].stats)
		}
	}
	return st
}

// validate checks the normalized schedule: endpoints exist, downs and ups
// alternate per pair and per node, and everything is healed at the end.
func (fs *faultState) validate() error {
	pairDown := make(map[[2]int]bool)
	nodeDown := make(map[int]bool)
	for i, ev := range fs.sched {
		if !(ev.AtUS >= 0) || math.IsInf(ev.AtUS, 0) {
			return fmt.Errorf("mesh: fault event %d: at_us must be finite and non-negative, have %g", i, ev.AtUS)
		}
		switch ev.Kind {
		case FaultLinkDown, FaultLinkUp:
			a, b := ev.A, ev.B
			if a > b {
				a, b = b, a
			}
			if a < 0 || b >= fs.nNodes || a == b {
				return fmt.Errorf("mesh: fault event %d: no such node pair (%d,%d)", i, ev.A, ev.B)
			}
			if len(fs.dirLinks[[2]int{a, b}])+len(fs.dirLinks[[2]int{b, a}]) == 0 {
				return fmt.Errorf("mesh: fault event %d: nodes %d and %d share no link", i, ev.A, ev.B)
			}
			p := [2]int{a, b}
			if down := ev.Kind == FaultLinkDown; down == pairDown[p] {
				return fmt.Errorf("mesh: fault event %d: %v on pair (%d,%d) while already in that state", i, ev.Kind, a, b)
			}
			pairDown[p] = ev.Kind == FaultLinkDown
		case FaultNodeDown, FaultNodeUp:
			if ev.A < 0 || ev.A >= fs.nNodes {
				return fmt.Errorf("mesh: fault event %d: no such node %d", i, ev.A)
			}
			if down := ev.Kind == FaultNodeDown; down == nodeDown[ev.A] {
				return fmt.Errorf("mesh: fault event %d: %v on node %d while already in that state", i, ev.Kind, ev.A)
			}
			nodeDown[ev.A] = ev.Kind == FaultNodeDown
		default:
			return fmt.Errorf("mesh: fault event %d: unknown kind %d", i, ev.Kind)
		}
	}
	for p, down := range pairDown {
		if down {
			return fmt.Errorf("mesh: link pair (%d,%d) is never healed — every outage needs a matching up event", p[0], p[1])
		}
	}
	for n, down := range nodeDown {
		if down {
			return fmt.Errorf("mesh: node %d is never healed — every churn needs a matching up event", n)
		}
	}
	return nil
}

// sync applies every schedule event at or before t. Cursor movement is
// monotonic; the global routing order makes it shard-count-invariant.
func (fs *faultState) sync(t sim.Time) {
	for fs.cursor < len(fs.sched) && fs.sched[fs.cursor].AtUS <= t {
		fs.apply(fs.sched[fs.cursor])
		fs.cursor++
	}
}

// apply transitions the link state for one event.
func (fs *faultState) apply(ev FaultEvent) {
	switch ev.Kind {
	case FaultLinkDown:
		fs.bumpPair(ev.A, ev.B, 1)
	case FaultLinkUp:
		fs.bumpPair(ev.A, ev.B, -1)
	case FaultNodeDown:
		fs.nodeDown[ev.A] = true
		fs.nodesDown++
		fs.bumpLinks(fs.nodeLinks[ev.A], 1)
	case FaultNodeUp:
		fs.nodeDown[ev.A] = false
		fs.nodesDown--
		fs.bumpLinks(fs.nodeLinks[ev.A], -1)
	}
	fs.treeDirty = true
}

func (fs *faultState) bumpPair(a, b int, d int32) {
	fs.bumpLinks(fs.dirLinks[[2]int{a, b}], d)
	fs.bumpLinks(fs.dirLinks[[2]int{b, a}], d)
}

func (fs *faultState) bumpLinks(links []int32, d int32) {
	for _, li := range links {
		was := fs.downCount[li]
		fs.downCount[li] = was + d
		if was == 0 && d > 0 {
			fs.nDown++
		} else if was+d == 0 && d < 0 {
			fs.nDown--
		}
	}
}

func (fs *faultState) anyDown() bool { return fs.nDown > 0 || fs.nodesDown > 0 }

// liveAll reports whether every link of the path is up. Links incident to
// a churned node carry its down count, so dead intermediate hops (e.g. a
// fenced switch) fail this check without a separate node walk.
func (fs *faultState) liveAll(path []int32) bool {
	for _, li := range path {
		if fs.downCount[li] != 0 {
			return false
		}
	}
	return true
}

// rebuildTree recomputes the live spanning forest.
func (fs *faultState) rebuildTree() {
	n := fs.nNodes
	for u := 0; u < n; u++ {
		fs.liveDeg[u] = 0
		fs.comp[u] = -1
		fs.upLink[u] = -1
		fs.dnLink[u] = -1
	}
	for u := 0; u < n; u++ {
		if fs.nodeDown[u] {
			continue
		}
		for _, h := range fs.adjOut[u] {
			if fs.downCount[h.link] == 0 {
				fs.liveDeg[u]++
			}
		}
	}
	for root := 0; root < n; root++ {
		if fs.nodeDown[root] || fs.comp[root] != -1 {
			continue
		}
		fs.comp[root] = int32(root)
		fs.depth[root] = 0
		fs.parent[root] = -1
		fs.queue = append(fs.queue[:0], int32(root))
		for qi := 0; qi < len(fs.queue); qi++ {
			u := int(fs.queue[qi])
			for _, h := range fs.adjOut[u] {
				if fs.downCount[h.link] != 0 {
					continue
				}
				v := int(h.to)
				if fs.comp[v] == -1 {
					fs.comp[v] = int32(root)
					fs.depth[v] = fs.depth[u] + 1
					fs.parent[v] = int32(u)
					fs.queue = append(fs.queue, h.to)
				} else if fs.depth[v] == fs.depth[u]+1 && int(fs.parent[v]) != u {
					// Equal-depth candidate parent: prefer the better-
					// connected one (then the lower id). v is still on the
					// frontier — every depth-d node is processed before any
					// depth-d+1 node — so reassigning its parent is safe
					// and the choice is order-independent.
					p := int(fs.parent[v])
					if fs.liveDeg[u] > fs.liveDeg[p] || (fs.liveDeg[u] == fs.liveDeg[p] && u < p) {
						fs.parent[v] = int32(u)
					}
				}
			}
		}
	}
	for u := 0; u < n; u++ {
		if fs.comp[u] == -1 || fs.parent[u] == -1 {
			continue
		}
		p := int(fs.parent[u])
		fs.upLink[u] = fs.lowestLive(u, p)
		fs.dnLink[u] = fs.lowestLive(p, u)
	}
	fs.treeDirty = false
}

// lowestLive returns the lowest live directed link from a to b (-1 when
// none; unreachable for tree edges, which were discovered over live links).
func (fs *faultState) lowestLive(a, b int) int32 {
	for _, li := range fs.dirLinks[[2]int{a, b}] {
		if fs.downCount[li] == 0 {
			return li
		}
	}
	return -1
}

// treePath builds the spanning-tree route from src to dst (same
// component): up-links to the lowest common ancestor, then the reversed
// chain of down-links to dst. The buffers persist and grow on demand —
// tree detours routinely exceed the healthy-net diameter.
func (fs *faultState) treePath(src, dst int) []int32 {
	up := fs.upBuf[:0]
	dn := fs.dnBuf[:0]
	u, v := int32(src), int32(dst)
	for fs.depth[u] > fs.depth[v] {
		up = append(up, fs.upLink[u])
		u = fs.parent[u]
	}
	for fs.depth[v] > fs.depth[u] {
		dn = append(dn, fs.dnLink[v])
		v = fs.parent[v]
	}
	for u != v {
		up = append(up, fs.upLink[u])
		u = fs.parent[u]
		dn = append(dn, fs.dnLink[v])
		v = fs.parent[v]
	}
	for i := len(dn) - 1; i >= 0; i-- {
		up = append(up, dn[i])
	}
	fs.upBuf = up[:0]
	fs.dnBuf = dn[:0]
	return up[:len(up):len(up)]
}

// healTime returns the schedule time after which src and dst are
// connected with both interfaces up, by replaying the remaining events on
// scratch state. Validation guarantees the schedule ends fully healed and
// every topology is connected, so the walk terminates.
func (fs *faultState) healTime(src, dst int) sim.Time {
	if cap(fs.scratchDown) < len(fs.downCount) {
		fs.scratchDown = make([]int32, len(fs.downCount))
		fs.scratchNode = make([]bool, fs.nNodes)
	}
	down := fs.scratchDown[:len(fs.downCount)]
	node := fs.scratchNode[:fs.nNodes]
	copy(down, fs.downCount)
	copy(node, fs.nodeDown)
	for k := fs.cursor; k < len(fs.sched); k++ {
		ev := fs.sched[k]
		d := int32(1)
		switch ev.Kind {
		case FaultLinkDown, FaultLinkUp:
			if ev.Kind == FaultLinkUp {
				d = -1
			}
			for _, li := range fs.dirLinks[[2]int{ev.A, ev.B}] {
				down[li] += d
			}
			for _, li := range fs.dirLinks[[2]int{ev.B, ev.A}] {
				down[li] += d
			}
		case FaultNodeDown, FaultNodeUp:
			if ev.Kind == FaultNodeUp {
				d = -1
			}
			node[ev.A] = ev.Kind == FaultNodeDown
			for _, li := range fs.nodeLinks[ev.A] {
				down[li] += d
			}
		}
		if fs.connectedOn(down, node, src, dst) {
			return ev.AtUS
		}
	}
	// Unreachable: the schedule ends healed and the topology is connected.
	panic(fmt.Sprintf("mesh: nodes %d and %d never reconnect under the installed schedule", src, dst))
}

// connectedOn reports src–dst connectivity under the scratch link state.
func (fs *faultState) connectedOn(down []int32, nodeDown []bool, src, dst int) bool {
	if nodeDown[src] || nodeDown[dst] {
		return false
	}
	if src == dst {
		return true
	}
	if fs.seen == nil {
		fs.seen = make([]bool, fs.nNodes)
	}
	for i := range fs.seen {
		fs.seen[i] = false
	}
	fs.seen[src] = true
	fs.queue = append(fs.queue[:0], int32(src))
	for qi := 0; qi < len(fs.queue); qi++ {
		u := int(fs.queue[qi])
		for _, h := range fs.adjOut[u] {
			if down[h.link] != 0 || fs.seen[h.to] {
				continue
			}
			if int(h.to) == dst {
				return true
			}
			fs.seen[h.to] = true
			fs.queue = append(fs.queue, h.to)
		}
	}
	return false
}

// route is routeRaw under an installed fault schedule: advance the
// schedule to the departure time, then deliver over the shortest path if
// it is fully live, over the live spanning tree if src and dst are still
// connected — and otherwise hold the message until the schedule reconnects
// them and retransmit (oracle mode), or drop it at the failure point
// (reactive mode: delivered=false, the ack/retransmit transport recovers).
// In-flight liveness is sampled at departure: a message that left on a
// live path is not recalled by a later failure (circuit already
// established — the wormhole charges model the path as held for the
// transmission anyway).
func (fs *faultState) route(nw *Network, src, dst, size int, depart sim.Time) (sim.Time, bool) {
	fs.sync(depart)
	fs.stats.Routed++
	if !fs.anyDown() {
		return nw.chargePath(nw.healthyPath(src, dst), size, depart), true
	}
	if !fs.nodeDown[src] && !fs.nodeDown[dst] {
		path := nw.healthyPath(src, dst)
		if fs.liveAll(path) {
			return nw.chargePath(path, size, depart), true
		}
		if fs.treeDirty {
			fs.rebuildTree()
		}
		if fs.comp[src] == fs.comp[dst] {
			base := uint64(len(path))
			p := fs.treePath(src, dst)
			fs.stats.Rerouted++
			fs.stats.ReroutedHops += uint64(len(p))
			fs.stats.BaseHops += base
			return nw.chargePath(p, size, depart), true
		}
	}
	if nw.react != nil {
		// Reactive mode: the message vanishes at the failure point —
		// no event, no link charges, no oracle knowledge. The sender's
		// retransmission timer is the only recovery.
		fs.stats.Dropped++
		fs.stats.DroppedBytes += uint64(size)
		return 0, false
	}
	healT := fs.healTime(src, dst)
	fs.stats.Held++
	fs.stats.HeldBytes += uint64(size)
	// The retransmission departs one send startup after the heal: the held
	// message sits in the source's network interface and the retry startup
	// is interface work, not CPU work — deliberately independent of
	// nw.cpuFree, which sharded runs advance between a send and its
	// deferred replay. healT > depart (sync already applied every event at
	// or before depart), so the charge is a pure function of the departure
	// time and both execution modes compute it identically.
	depart2 := healT + nw.P.StartupSendUS
	fs.stats.RetryMsgs++
	fs.stats.RetryBytes += uint64(size)
	fs.stats.HeldUS += depart2 - depart
	// Recurse: sync(depart2) applies at least the healing event, so the
	// cursor strictly advances and the retransmission terminates.
	return fs.route(nw, src, dst, size, depart2)
}

// resetTo rewinds the engine to schedule position cursor by replaying the
// prefix from scratch (snapshot restore, inline-replay abort).
func (fs *faultState) resetTo(cursor int) {
	for i := range fs.downCount {
		fs.downCount[i] = 0
	}
	for i := range fs.nodeDown {
		fs.nodeDown[i] = false
	}
	fs.nDown = 0
	fs.nodesDown = 0
	fs.cursor = 0
	for fs.cursor < cursor {
		fs.apply(fs.sched[fs.cursor])
		fs.cursor++
	}
	fs.treeDirty = true
}
