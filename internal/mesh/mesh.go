// Package mesh models the interconnect of a simulated parallel machine:
// wormhole routing with per-link bandwidth, per-message startup cost, and
// per-link congestion accounting (both message counts and bytes), over a
// pluggable network Topology.
//
// The 2-dimensional mesh below models the Parsytec GCel used in the paper
// (dimension-order wormhole routing); Torus, Hypercube and FatTree extend
// the evaluation to other hierarchically decomposable networks. All four
// share the Network simulation layer and the deterministic-routing
// contract the Topology interface documents.
package mesh

import "fmt"

// Coord is a mesh position. Row 0 is the top row, column 0 the left column.
type Coord struct {
	Row, Col int
}

// Mesh describes an R×C mesh. Node IDs are assigned in row-major order,
// matching the paper's processor numbering ("processors are numbered from 0
// to P-1 in row major order").
type Mesh struct {
	Rows, Cols int
}

// New returns a mesh with the given dimensions. It panics on non-positive
// dimensions.
func New(rows, cols int) Mesh {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mesh: invalid dimensions %dx%d", rows, cols))
	}
	return Mesh{Rows: rows, Cols: cols}
}

// N returns the number of nodes.
func (m Mesh) N() int { return m.Rows * m.Cols }

// ID returns the row-major node id of c.
func (m Mesh) ID(c Coord) int {
	if !m.Contains(c) {
		panic(fmt.Sprintf("mesh: coord %v outside %dx%d", c, m.Rows, m.Cols))
	}
	return c.Row*m.Cols + c.Col
}

// CoordOf returns the coordinates of node id.
func (m Mesh) CoordOf(id int) Coord {
	if id < 0 || id >= m.N() {
		panic(fmt.Sprintf("mesh: node %d outside %dx%d", id, m.Rows, m.Cols))
	}
	return Coord{Row: id / m.Cols, Col: id % m.Cols}
}

// Contains reports whether c lies inside the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.Row >= 0 && c.Row < m.Rows && c.Col >= 0 && c.Col < m.Cols
}

// Dist returns the Manhattan distance between nodes a and b, which equals
// the length of the dimension-order path.
func (m Mesh) Dist(a, b int) int {
	ca, cb := m.CoordOf(a), m.CoordOf(b)
	return abs(ca.Row-cb.Row) + abs(ca.Col-cb.Col)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Dir identifies one of the four directed link directions leaving a node.
type Dir uint8

// Link directions. East increases the column, South increases the row.
const (
	East Dir = iota
	West
	South
	North
	numDirs
)

// String implements fmt.Stringer.
func (d Dir) String() string {
	switch d {
	case East:
		return "E"
	case West:
		return "W"
	case South:
		return "S"
	case North:
		return "N"
	}
	return "?"
}

// NumLinks returns the size of the directed-link index space (4 slots per
// node; border slots exist but are never used).
func (m Mesh) NumLinks() int { return m.N() * int(numDirs) }

// LinkID returns the directed link index for the link leaving node in
// direction d. The caller must ensure the link exists (HasLink).
func (m Mesh) LinkID(node int, d Dir) int { return node*int(numDirs) + int(d) }

// LinkOf inverts LinkID.
func (m Mesh) LinkOf(link int) (node int, d Dir) {
	return link / int(numDirs), Dir(link % int(numDirs))
}

// HasLink reports whether node has an outgoing link in direction d.
func (m Mesh) HasLink(node int, d Dir) bool {
	c := m.CoordOf(node)
	switch d {
	case East:
		return c.Col+1 < m.Cols
	case West:
		return c.Col > 0
	case South:
		return c.Row+1 < m.Rows
	case North:
		return c.Row > 0
	}
	return false
}

// Neighbor returns the node reached from node in direction d. The link must
// exist.
func (m Mesh) Neighbor(node int, d Dir) int {
	c := m.CoordOf(node)
	switch d {
	case East:
		c.Col++
	case West:
		c.Col--
	case South:
		c.Row++
	case North:
		c.Row--
	}
	return m.ID(c)
}

// PathLinks returns the directed links of the dimension-order path from a
// to b: first all edges of dimension 1 (columns / X), then all edges of
// dimension 2 (rows / Y) — the unique shortest path the GCel wormhole
// router uses. a == b yields an empty path.
func (m Mesh) PathLinks(a, b int) []int {
	return m.AppendRoute(make([]int, 0, m.Dist(a, b)), a, b)
}

// AppendRoute implements Topology: the dimension-order path, columns
// before rows.
func (m Mesh) AppendRoute(buf []int, a, b int) []int {
	cur, dst := m.CoordOf(a), m.CoordOf(b)
	for cur.Col != dst.Col {
		d := East
		if dst.Col < cur.Col {
			d = West
		}
		node := m.ID(cur)
		buf = append(buf, m.LinkID(node, d))
		cur = m.CoordOf(m.Neighbor(node, d))
	}
	for cur.Row != dst.Row {
		d := South
		if dst.Row < cur.Row {
			d = North
		}
		node := m.ID(cur)
		buf = append(buf, m.LinkID(node, d))
		cur = m.CoordOf(m.Neighbor(node, d))
	}
	return buf
}

// Nodes implements Topology: every mesh node hosts a processor.
func (m Mesh) Nodes() int { return m.N() }

// Diameter implements Topology: corner to opposite corner.
func (m Mesh) Diameter() int { return m.Rows + m.Cols - 2 }

// Bisection implements Topology: the halving cut splits the longer side,
// crossing one link per line of the shorter side.
func (m Mesh) Bisection() int {
	if m.N() == 1 {
		return 0
	}
	if m.Rows >= m.Cols {
		return m.Cols
	}
	return m.Rows
}

// ForEachLink implements Topology.
func (m Mesh) ForEachLink(f func(link, from, to int)) {
	for n := 0; n < m.N(); n++ {
		for d := East; d < numDirs; d++ {
			if m.HasLink(n, d) {
				f(m.LinkID(n, d), n, m.Neighbor(n, d))
			}
		}
	}
}

// Grid implements Topology: the mesh is its own grid layout.
func (m Mesh) Grid() (rows, cols int, ok bool) { return m.Rows, m.Cols, true }

// PathNodes returns the node sequence of the dimension-order path from a to
// b, inclusive of both endpoints.
func (m Mesh) PathNodes(a, b int) []int {
	nodes := []int{a}
	for _, l := range m.PathLinks(a, b) {
		n, d := m.LinkOf(l)
		nodes = append(nodes, m.Neighbor(n, d))
	}
	return nodes
}

// String implements fmt.Stringer.
func (m Mesh) String() string { return fmt.Sprintf("%dx%d mesh", m.Rows, m.Cols) }
