package mesh

import (
	"fmt"

	"diva/internal/sim"
	"diva/internal/xrand"
)

// This file is the reliable-transport shim of the network's reactive
// fault-tolerance mode. In oracle mode (the default) a message that cannot
// be delivered consults global link state and is held until the exact heal
// time; no simulated protocol ever detects a failure. In reactive mode the
// network is lossy — a message crossing a failure point is silently
// dropped (fault.go) — and delivery is recovered end to end: every
// cross-node message carries a per-channel sequence number, the receiver
// acknowledges it with a fire-and-forget ack, and the sender runs a
// retransmission timer (kernel timer tier, sim/timer.go) with exponential
// backoff and deterministic jitter drawn from per-node seed-derived RNG
// streams. After MaxRetries consecutive timeouts the sender declares the
// destination suspect — timeout-based failure detection — and consults the
// message kind's give-up handler, which is where the strategies hook their
// recovery (fixedhome home failover, accesstree re-issue).
//
// Everything is deterministic by construction: timers are ordinary
// (t, seq) events, per-channel sequence numbers and RNG draws advance in
// each node's event order (every node is owned by exactly one kernel
// shard), and the drop decision happens in the global routing order. Runs
// are therefore fingerprint-identical across DIVA_SHARDS and fork/restore.

// KindTransportAck is the message kind reserved for transport
// acknowledgements in reactive mode. It is intercepted by the delivery
// path before handler dispatch; registering a handler for it on a reactive
// network panics.
const KindTransportAck uint8 = 255

// TransportAckBytes is the wire size of one transport ack.
const TransportAckBytes = 8

// reactMaxBackoff caps the retransmission backoff at this multiple of the
// base timeout, so a sender waiting out a long outage keeps probing.
const reactMaxBackoff = 64

// ReactParams configures the reliable transport of reactive mode.
type ReactParams struct {
	// AckTimeoutUS is the base retransmission timeout: the time a sender
	// waits for an ack before retransmitting (scaled by backoff and
	// jitter on every subsequent attempt).
	AckTimeoutUS float64
	// MaxRetries is the number of consecutive unacknowledged
	// retransmissions after which the sender declares the destination
	// suspect and consults the kind's give-up handler.
	MaxRetries int
	// Backoff is the timeout multiplier per attempt (exponential backoff,
	// capped at reactMaxBackoff times the base).
	Backoff float64
}

// DefaultReactParams returns the reactive-transport defaults: 2 ms base
// timeout (a healthy request/response round trip is well under 1 ms at
// GCel timings), 5 retries, doubling backoff.
func DefaultReactParams() ReactParams {
	return ReactParams{AckTimeoutUS: 2000, MaxRetries: 5, Backoff: 2}
}

// Validate reports the first invalid field, or nil.
func (p ReactParams) Validate() error {
	if !(p.AckTimeoutUS > 0) {
		return fmt.Errorf("mesh: ack timeout must be positive, have %g", p.AckTimeoutUS)
	}
	if p.MaxRetries < 1 {
		return fmt.Errorf("mesh: max retries must be at least 1, have %d", p.MaxRetries)
	}
	if !(p.Backoff >= 1) {
		return fmt.Errorf("mesh: backoff must be at least 1, have %g", p.Backoff)
	}
	return nil
}

// GiveUpAction is a give-up handler's verdict on an undeliverable message.
type GiveUpAction uint8

const (
	// GiveUpRetry keeps retransmitting on the same channel at the capped
	// backoff (the default for kinds without a handler: delivery is
	// eventually guaranteed because every fault schedule ends healed).
	GiveUpRetry GiveUpAction = iota
	// GiveUpReissue restarts the attempt counter and backoff on the same
	// channel: the strategy has refreshed its own state (e.g. the spanning
	// forest re-embedded) and wants a fresh detection cycle. The transport
	// sequence number is kept, so a late duplicate of the original is
	// still deduplicated.
	GiveUpReissue
	// GiveUpRedirect retires the channel and re-targets the message at the
	// new destination the handler returned (fixedhome home failover).
	GiveUpRedirect
	// GiveUpDrop abandons the message: the handler has compensated at the
	// protocol level (e.g. treated a dead copy holder as invalidated).
	GiveUpDrop
)

// GiveUp describes an undeliverable message to its kind's give-up handler:
// MaxRetries+1 transmissions went unacknowledged. The handler may mutate
// protocol state and send messages; it returns the action to take and, for
// GiveUpRedirect, the new destination.
type GiveUp struct {
	Src, Dst    int
	Size        int
	Kind        uint8
	Tag         int
	Payload     interface{}
	Attempts    int      // transmissions so far
	FirstDepart sim.Time // departure of the first transmission
}

// GiveUpHandler decides what to do with an undeliverable message.
// newDst is only consulted for GiveUpRedirect.
type GiveUpHandler func(g *GiveUp) (newDst int, action GiveUpAction)

// xmit is one outstanding (unacknowledged) transmission at its sender.
// A live record always has exactly one pending retransmission timer, so
// at kernel quiescence no records exist — snapshots capture none.
type xmit struct {
	src, dst    int
	size        int
	kind        uint8
	tag         int
	payload     interface{}
	xseq        uint32
	attempt     int  // transmissions so far
	gaveUp      bool // this detection cycle already counted in Detected
	delayUS     float64
	firstDepart sim.Time
	timer       sim.TimerID
}

// recvChan is one directed channel's receiver-side dedup state: every
// sequence at or below floor was delivered; seen holds the delivered
// sequences above it (out-of-order arrivals, bounded by the outstanding
// window).
type recvChan struct {
	floor uint32
	seen  map[uint32]struct{}
}

// accept reports whether xseq is fresh, recording it.
func (c *recvChan) accept(xseq uint32) bool {
	if xseq <= c.floor {
		return false
	}
	if _, ok := c.seen[xseq]; ok {
		return false
	}
	if xseq == c.floor+1 {
		c.floor++
		for {
			if _, ok := c.seen[c.floor+1]; !ok {
				break
			}
			delete(c.seen, c.floor+1)
			c.floor++
		}
		return true
	}
	if c.seen == nil {
		c.seen = make(map[uint32]struct{})
	}
	c.seen[xseq] = struct{}{}
	return true
}

// reactNode is one node's transport state. Every field is touched only in
// the node's own event context (its owning kernel shard), so sharded runs
// are race-free and advance each field in the exact sequential order.
type reactNode struct {
	rng      *xrand.RNG
	nextSend map[int]uint32    // dst -> last channel sequence issued
	out      map[uint64]*xmit  // (dst, xseq) -> outstanding transmission
	recv     map[int]*recvChan // src -> receiver dedup state
	suspect  map[int]sim.Time  // dst -> time the sender declared it suspect
	stats    FaultStats        // event-context counters (summed by FaultStats)
}

// reactState is the network's reactive-mode state; nil in oracle mode.
type reactState struct {
	p      ReactParams
	seed   uint64 // the derived transport seed (for RNG re-derivation)
	nodes  []reactNode
	giveUp [256]GiveUpHandler
	base   FaultStats // restored-snapshot baseline of the folded node stats
	free   []*xmit
}

// xkey packs a channel identity (destination, channel sequence).
func xkey(dst int, xseq uint32) uint64 {
	return uint64(uint32(dst))<<32 | uint64(xseq)
}

// reactNodeSeed derives node's private RNG stream from the transport seed.
func reactNodeSeed(seed uint64, node int) uint64 {
	return seed ^ (uint64(node)+1)*0x9e3779b97f4a7c15
}

// EnableReactive switches the network to reactive fault-tolerance mode:
// lossy delivery at failure points plus the ack/retransmit transport. seed
// is the dedicated transport seed (the machine layer derives it from the
// run seed under a private salt, the fault.Gen pattern); the per-node
// jitter streams split off it. Must be called before any message is sent.
func (nw *Network) EnableReactive(p ReactParams, seed uint64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if nw.react != nil {
		return fmt.Errorf("mesh: reactive mode already enabled")
	}
	if nw.handlers[KindTransportAck] != nil {
		return fmt.Errorf("mesh: message kind %d is reserved for transport acks in reactive mode", KindTransportAck)
	}
	r := &reactState{p: p, seed: seed, nodes: make([]reactNode, nw.T.N())}
	for i := range r.nodes {
		n := &r.nodes[i]
		n.rng = xrand.New(reactNodeSeed(seed, i))
		n.nextSend = make(map[int]uint32)
		n.out = make(map[uint64]*xmit)
		n.recv = make(map[int]*recvChan)
		n.suspect = make(map[int]sim.Time)
	}
	nw.react = r
	nw.reactTimeoutFn = nw.reactTimeout
	return nil
}

// Reactive reports whether the network runs in reactive mode.
func (nw *Network) Reactive() bool { return nw.react != nil }

// ReactParams returns the transport parameters (zero value in oracle mode).
func (nw *Network) ReactParams() ReactParams {
	if nw.react == nil {
		return ReactParams{}
	}
	return nw.react.p
}

// OnGiveUp registers kind's give-up handler: called when MaxRetries+1
// transmissions of a message went unacknowledged. Strategies register
// their recovery here. Panics on kind 255 (the ack kind never gives up —
// acks are fire-and-forget) and on double registration.
func (nw *Network) OnGiveUp(kind uint8, h GiveUpHandler) {
	if nw.react == nil {
		panic("mesh: OnGiveUp on an oracle-mode network")
	}
	if kind == KindTransportAck {
		panic("mesh: transport acks have no give-up handler")
	}
	if nw.react.giveUp[kind] != nil {
		panic(fmt.Sprintf("mesh: give-up handler for kind %d registered twice", kind))
	}
	nw.react.giveUp[kind] = h
}

// NodeDownNow reports whether node's network interface is down at the
// fault schedule's current position (false without a schedule). Give-up
// handlers consult it to choose between "wait for heal" and "fail over";
// the detection *timing* stays reactive — this is only read after the
// transport has already timed out.
func (nw *Network) NodeDownNow(node int) bool {
	if nw.faults == nil {
		return false
	}
	return nw.faults.nodeDown[node]
}

// ReactReseed re-derives the per-node jitter streams from a fresh
// transport seed (fork-with-reseed; mirrors the strategy Reseed contract).
func (nw *Network) ReactReseed(seed uint64) {
	if nw.react == nil {
		return
	}
	nw.react.seed = seed
	for i := range nw.react.nodes {
		nw.react.nodes[i].rng = xrand.New(reactNodeSeed(seed, i))
	}
}

func (r *reactState) acquireXmit() *xmit {
	if n := len(r.free); n > 0 {
		x := r.free[n-1]
		r.free = r.free[:n-1]
		return x
	}
	return &xmit{}
}

func (r *reactState) releaseXmit(x *xmit) {
	*x = xmit{}
	r.free = append(r.free, x)
}

// jitter draws the deterministic timeout jitter, uniform in [1, 1.25),
// from the node's private stream.
func (sn *reactNode) jitter() float64 { return 1 + sn.rng.Float64()/4 }

// reactOnSend intercepts a first transmission at the top of
// deliverAfterRoute: it stamps the channel sequence, registers the
// outstanding record and schedules the retransmission timer — before the
// delivery (or its in-window deferral) allocates the arrival sequence, so
// both execution modes allocate (timer, arrival) in the same order.
// Node-local messages, acks and retransmissions (xseq already stamped)
// pass through untouched.
func (nw *Network) reactOnSend(m *Msg, depart sim.Time) {
	if m.Src == m.Dst || m.Kind == KindTransportAck || m.xseq != 0 {
		return
	}
	r := nw.react
	sn := &r.nodes[m.Src]
	sn.nextSend[m.Dst]++
	m.xseq = sn.nextSend[m.Dst]
	m.xatt = 1
	x := r.acquireXmit()
	*x = xmit{
		src: m.Src, dst: m.Dst, size: m.Size, kind: m.Kind, tag: m.Tag,
		payload: m.Payload, xseq: m.xseq, attempt: 1,
		delayUS: r.p.AckTimeoutUS, firstDepart: depart,
	}
	sn.out[xkey(m.Dst, m.xseq)] = x
	x.timer = nw.kOf(m.Src).TimerAt(depart+x.delayUS*sn.jitter(), nw.reactTimeoutFn, x)
}

// reactTimeout fires when a transmission's ack timeout expires, in the
// sender's event context: retransmit with backed-off timeout, or — after
// MaxRetries+1 unacknowledged transmissions — declare the destination
// suspect and consult the kind's give-up handler.
func (nw *Network) reactTimeout(xi interface{}) {
	x := xi.(*xmit)
	r := nw.react
	sn := &r.nodes[x.src]
	k := nw.kOf(x.src)
	if x.attempt > r.p.MaxRetries {
		if !x.gaveUp {
			// Detection: the first give-up of this cycle.
			x.gaveUp = true
			sn.stats.Detected++
			sn.stats.DetectUS += k.Now() - x.firstDepart
			if _, ok := sn.suspect[x.dst]; !ok {
				sn.suspect[x.dst] = k.Now()
			}
		}
		g := GiveUp{
			Src: x.src, Dst: x.dst, Size: x.size, Kind: x.kind, Tag: x.tag,
			Payload: x.payload, Attempts: x.attempt, FirstDepart: x.firstDepart,
		}
		newDst, action := x.dst, GiveUpRetry
		if h := r.giveUp[x.kind]; h != nil {
			newDst, action = h(&g)
		}
		switch action {
		case GiveUpDrop:
			delete(sn.out, xkey(x.dst, x.xseq))
			r.releaseXmit(x)
			return
		case GiveUpRedirect:
			sn.stats.Failovers++
			src, size, kind, tag, payload := x.src, x.size, x.kind, x.tag, x.payload
			delete(sn.out, xkey(x.dst, x.xseq))
			r.releaseXmit(x)
			m := nw.acquireMsgFor(src)
			m.Src, m.Dst, m.Size, m.Kind, m.Tag, m.Payload = src, newDst, size, kind, tag, payload
			nw.Send(m) // a fresh first transmission on the new channel
			return
		case GiveUpReissue:
			// Fresh detection cycle on the same channel: reset the attempt
			// counter and backoff; the retransmission below is attempt 1.
			sn.stats.Reissues++
			x.attempt = 0
			x.gaveUp = false
			x.delayUS = r.p.AckTimeoutUS / r.p.Backoff // restored by the bump below
			x.firstDepart = k.Now()
		case GiveUpRetry:
			// Keep probing at the capped backoff.
		}
	}
	// Retransmit: fresh copy, fresh send startup, backed-off timer.
	x.attempt++
	sn.stats.Retransmits++
	sn.stats.RetransmitBytes += uint64(x.size)
	if x.delayUS *= r.p.Backoff; x.delayUS > r.p.AckTimeoutUS*reactMaxBackoff {
		x.delayUS = r.p.AckTimeoutUS * reactMaxBackoff
	}
	m := nw.acquireMsgFor(x.src)
	m.Src, m.Dst, m.Size, m.Kind, m.Tag, m.Payload = x.src, x.dst, x.size, x.kind, x.tag, x.payload
	m.xseq, m.xatt = x.xseq, uint16(x.attempt)
	depart := nw.chargeSend(x.src)
	x.timer = nw.kOf(x.src).TimerAt(depart+x.delayUS*sn.jitter(), nw.reactTimeoutFn, x)
	nw.deliverAfterRoute(m, depart)
}

// reactAccept runs in the receiver's event context when a transport-
// sequenced message is ready: acknowledge it (always — a duplicate
// usually means the previous ack was lost) and report whether it is fresh.
// Duplicates are dropped without handler dispatch, which is what makes
// strategy-level redirects protocol-safe.
func (nw *Network) reactAccept(m *Msg) bool {
	r := nw.react
	dn := &r.nodes[m.Dst]
	ch := dn.recv[m.Src]
	if ch == nil {
		ch = &recvChan{}
		dn.recv[m.Src] = ch
	}
	fresh := ch.accept(m.xseq)
	if !fresh {
		dn.stats.DupDrops++
	}
	dn.stats.AckMsgs++
	dn.stats.AckBytes += TransportAckBytes
	ack := nw.acquireMsgFor(m.Dst)
	ack.Src, ack.Dst, ack.Size, ack.Kind = m.Dst, m.Src, TransportAckBytes, KindTransportAck
	ack.xseq, ack.xatt = m.xseq, m.xatt
	depart := nw.chargeSend(m.Dst)
	nw.deliverAfterRoute(ack, depart)
	return fresh
}

// reactOnAck runs in the original sender's event context when an ack
// arrives: cancel the retransmission timer, retire the record, account
// false timeouts (retransmissions of attempts the receiver had already
// seen) and clear the destination's suspect entry.
func (nw *Network) reactOnAck(m *Msg) {
	r := nw.react
	sn := &r.nodes[m.Dst]
	x := sn.out[xkey(m.Src, m.xseq)]
	if x == nil {
		return // duplicate ack for an already-retired record
	}
	nw.kOf(m.Dst).CancelTimer(x.timer)
	if a := int(m.xatt); a < x.attempt {
		sn.stats.FalseTimeouts += uint64(x.attempt - a)
	}
	if t, ok := sn.suspect[m.Src]; ok {
		sn.stats.Recovered++
		sn.stats.RecoverUS += nw.kOf(m.Dst).Now() - t
		delete(sn.suspect, m.Src)
	}
	delete(sn.out, xkey(m.Src, m.xseq))
	r.releaseXmit(x)
}
