// Package registry implements the name-keyed, concurrency-safe registry
// shared by the public diva/strategy and diva/topology façades: register
// at init time (panicking on programming errors, like image format or SQL
// driver registration), look up by name with an error listing the
// alternatives, enumerate sorted for help texts.
package registry

import (
	"fmt"
	"sort"
	"sync"
)

// Registry maps names to specs of type T. The kind string ("strategy",
// "topology") names the spec family in messages.
type Registry[T any] struct {
	kind string
	mu   sync.RWMutex
	m    map[string]T
}

// New returns an empty registry for the given spec kind.
func New[T any](kind string) *Registry[T] {
	return &Registry[T]{kind: kind, m: make(map[string]T)}
}

// Register adds a spec under name. An empty name or a duplicate is a
// programming error and panics; the caller validates spec contents first.
func (r *Registry[T]) Register(name string, spec T) {
	if name == "" {
		panic(fmt.Sprintf("%s: Register needs a name", r.kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.m[name]; dup {
		panic(fmt.Sprintf("%s: Register called twice for %q", r.kind, name))
	}
	r.m[name] = spec
}

// Get returns the spec registered under name. The error of an unknown
// name lists the registered alternatives.
func (r *Registry[T]) Get(name string) (T, error) {
	r.mu.RLock()
	spec, ok := r.m[name]
	r.mu.RUnlock()
	if !ok {
		var zero T
		return zero, fmt.Errorf("%s: unknown %s %q (have %v)", r.kind, r.kind, name, r.Names())
	}
	return spec, nil
}

// Names returns the registered names, sorted.
func (r *Registry[T]) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.m))
	for name := range r.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
