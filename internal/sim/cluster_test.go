package sim

import (
	"errors"
	"testing"
)

// newTestCluster returns a 2-shard cluster with a small lookahead.
func newTestCluster(t *testing.T) *Cluster {
	t.Helper()
	cl := NewCluster(2, 10)
	for _, k := range cl.Kernels() {
		k.SetPinned(false)
	}
	return cl
}

// TestClusterDeferredCrossShardWake: a future completed by shard 0 for a
// process on shard 1, at or beyond the horizon, must wake it through the
// boundary merge.
func TestClusterDeferredCrossShardWake(t *testing.T) {
	cl := newTestCluster(t)
	ks := cl.Kernels()
	fut := NewFuture()
	var got interface{}
	ks[1].Spawn("waiter", func(p *Proc) {
		got = fut.Await(p)
	})
	ks[0].Spawn("completer", func(p *Proc) {
		// Wait past the first window so the waiter's park (window 0)
		// happens-before this completion — cross-shard completion inside
		// the same window as the park is outside the cluster contract.
		p.Wait(15)
		fut.CompleteAt(ks[0], 30, "done")
	})
	if err := ks[0].Run(); err != nil {
		t.Fatal(err)
	}
	if got != "done" {
		t.Fatalf("cross-shard wake value = %v, want done", got)
	}
	if n0, n1 := ks[0].Now(), ks[1].Now(); n0 != n1 {
		t.Fatalf("shard clocks diverged at finish: %v vs %v", n0, n1)
	}
}

// TestClusterCrossShardDeadlock: blocked processes on different shards
// come back as one DeadlockError, names sorted.
func TestClusterCrossShardDeadlock(t *testing.T) {
	cl := newTestCluster(t)
	ks := cl.Kernels()
	futA, futB := NewFuture(), NewFuture()
	ks[0].Spawn("b-stuck", func(p *Proc) { p.Wait(1); futB.Await(p) })
	ks[1].Spawn("a-stuck", func(p *Proc) { p.Wait(2); futA.Await(p) })
	err := ks[0].Run()
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run() = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 2 || de.Blocked[0] != "a-stuck" || de.Blocked[1] != "b-stuck" {
		t.Fatalf("blocked = %v, want sorted [a-stuck b-stuck]", de.Blocked)
	}
}

// TestClusterFingerprintMatchesSequential: a program of purely local
// activity on 2 shards must reproduce the sequential kernel's
// executed-event-order fingerprint (spawn order defines the global
// sequence order on both).
func TestClusterFingerprintMatchesSequential(t *testing.T) {
	program := func(spawn func(i int, name string, body func(*Proc))) {
		for i := 0; i < 8; i++ {
			i := i
			spawn(i, "p", func(p *Proc) {
				for j := 0; j < 20; j++ {
					p.Wait(Time(1 + (i+j)%7))
				}
			})
		}
	}

	seq := New()
	seq.SetPinned(false)
	program(func(i int, name string, body func(*Proc)) { seq.Spawn(name, body) })
	if err := seq.Run(); err != nil {
		t.Fatal(err)
	}

	cl := newTestCluster(t)
	ks := cl.Kernels()
	program(func(i int, name string, body func(*Proc)) { ks[i%2].Spawn(name, body) })
	if err := ks[0].Run(); err != nil {
		t.Fatal(err)
	}

	if sf, cf := seq.Fingerprint(), ks[0].Fingerprint(); sf != cf {
		t.Fatalf("cluster fingerprint %#x != sequential %#x", cf, sf)
	}
	if sn, cn := seq.Now(), ks[0].Now(); sn != cn {
		t.Fatalf("cluster end time %v != sequential %v", cn, sn)
	}
}

// TestKillDuringWindow is the sharded kill/stop stress (run under -race in
// CI): kills issued from event context inside conservative windows — by
// the victim's own shard, and by a killer process woken across shards via
// the deferred-wake path — and a Stop landing mid-window must all
// terminate cleanly with nobody executing after being killed.
func TestKillDuringWindow(t *testing.T) {
	for _, mode := range []string{"kill-own-shard", "kill-cross-shard", "stop-mid-window"} {
		t.Run(mode, func(t *testing.T) {
			cl := newTestCluster(t)
			ks := cl.Kernels()
			killed := false
			victim := ks[1].Spawn("victim", func(p *Proc) {
				for {
					if killed {
						panic("victim executed after kill")
					}
					p.Wait(3)
				}
			})
			// Keep both shards busy so windows stay multi-shard.
			for i := 0; i < 2; i++ {
				ks[i].Spawn("churn", func(p *Proc) {
					for j := 0; j < 40; j++ {
						p.Wait(2)
					}
				})
			}
			switch mode {
			case "kill-own-shard":
				ks[1].At(10, func() {
					killed = true
					victim.kill()
				})
			case "kill-cross-shard":
				// Kills must run on the victim's shard; the cross-shard hop
				// is a killer process there, woken by shard 0 through the
				// deferred beyond-horizon wake path.
				trigger := NewFuture()
				ks[1].Spawn("killer", func(p *Proc) {
					trigger.Await(p)
					killed = true
					victim.kill()
				})
				ks[0].Spawn("trigger", func(p *Proc) {
					// Park of the killer (window 0) must happen-before
					// this cross-shard completion: wait out the window.
					p.Wait(15)
					trigger.CompleteAt(ks[0], 30, nil)
				})
			case "stop-mid-window":
				ks[0].At(10, func() { ks[0].Stop() })
			}
			err := ks[0].Run()
			if mode == "stop-mid-window" {
				// The stop abandons parked processes mid-run: Run reports
				// them (same as a sequential kernel's Stop), and Shutdown
				// must still clean up without hanging.
				var de *DeadlockError
				if err != nil && !errors.As(err, &de) {
					t.Fatal(err)
				}
				ks[0].Shutdown()
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
