package sim

import (
	"testing"
	"testing/quick"

	"diva/internal/xrand"
)

// TestHeavyEventChurn pushes many interleaved events and timers through
// the kernel and verifies global time ordering.
func TestHeavyEventChurn(t *testing.T) {
	k := New()
	rng := xrand.New(42)
	var last Time
	ordered := true
	n := 0
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(100000))
		k.At(at, func() {
			if k.Now() < last {
				ordered = false
			}
			last = k.Now()
			n++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ordered {
		t.Fatal("events executed out of time order")
	}
	if n != 5000 {
		t.Fatalf("%d events executed, want 5000", n)
	}
}

// TestEventsScheduledFromEvents: cascading schedules keep ordering.
func TestEventsScheduledFromEvents(t *testing.T) {
	k := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(1, recurse)
		}
	}
	k.At(0, recurse)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 100 || k.Now() != 99 {
		t.Fatalf("depth %d at time %v", depth, k.Now())
	}
}

// TestProcsAndEventsInterleaved: processes waiting amid a storm of events.
func TestProcsAndEventsInterleaved(t *testing.T) {
	k := New()
	events := 0
	for i := 0; i < 500; i++ {
		k.At(Time(i*3), func() { events++ })
	}
	woke := 0
	for i := 0; i < 50; i++ {
		d := Time(i * 17 % 1400)
		k.Spawn("p", func(p *Proc) {
			p.Wait(d)
			woke++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if events != 500 || woke != 50 {
		t.Fatalf("events=%d woke=%d", events, woke)
	}
}

// TestFutureChains: processes waking each other through futures.
func TestFutureChains(t *testing.T) {
	k := New()
	const n = 64
	futs := make([]*Future, n+1)
	for i := range futs {
		futs[i] = NewFuture()
	}
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("link", func(p *Proc) {
			futs[i].Await(p)
			p.Wait(10)
			futs[i+1].Complete(k, i+1)
		})
	}
	k.At(5, func() { futs[0].Complete(k, 0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := futs[n].Value(); got != n {
		t.Fatalf("chain value %v, want %d", got, n)
	}
	if k.Now() != 5+10*n {
		t.Fatalf("chain finished at %v, want %v", k.Now(), 5+10*n)
	}
}

// TestDeterministicUnderRandomLoad: identical seeds give identical
// trajectories, via quick-checked seeds.
func TestDeterministicUnderRandomLoad(t *testing.T) {
	trajectory := func(seed uint64) (Time, int) {
		k := New()
		rng := xrand.New(seed)
		sum := 0
		for i := 0; i < 60; i++ {
			delay := Time(rng.Intn(500))
			k.Spawn("p", func(p *Proc) {
				p.Wait(delay)
				sum += int(p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), sum
	}
	check := func(seed uint64) bool {
		t1, s1 := trajectory(seed)
		t2, s2 := trajectory(seed)
		return t1 == t2 && s1 == s2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlockReportsAllBlocked: every stuck process appears in the error.
func TestDeadlockReportsAllBlocked(t *testing.T) {
	k := New()
	f := NewFuture()
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) { f.Await(p) })
	}
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if len(de.Blocked) != 3 {
		t.Fatalf("blocked = %v, want 3 processes", de.Blocked)
	}
	if de.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestKernelReusableAfterRun: more events can be scheduled and run again.
func TestKernelReusableAfterRun(t *testing.T) {
	k := New()
	ran := 0
	k.At(10, func() { ran++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.At(20, func() { ran++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 || k.Now() != 20 {
		t.Fatalf("ran=%d now=%v", ran, k.Now())
	}
}

// TestNegativeWaitPanics and friends: API misuse is loud.
func TestNegativeWaitPanics(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Wait did not panic")
			}
		}()
		p.Wait(-1)
	})
	_ = k.Run()
	k.Shutdown()
}

func TestNegativeAfterPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	k.After(-5, func() {})
}

func TestWaitGroupUnderflowPanics(t *testing.T) {
	k := New()
	var wg WaitGroup
	defer func() {
		if recover() == nil {
			t.Fatal("WaitGroup underflow did not panic")
		}
	}()
	wg.DoneOne(k)
}

func TestProcString(t *testing.T) {
	k := New()
	p := k.Spawn("zed", func(p *Proc) {})
	if p.String() != "proc(zed)" || p.Name() != "zed" {
		t.Fatalf("String=%q Name=%q", p.String(), p.Name())
	}
	if p.Kernel() != k {
		t.Fatal("Kernel() mismatch")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
