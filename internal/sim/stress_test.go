package sim

import (
	"testing"
	"testing/quick"

	"diva/internal/xrand"
)

// TestHeavyEventChurn pushes many interleaved events and timers through
// the kernel and verifies global time ordering.
func TestHeavyEventChurn(t *testing.T) {
	k := New()
	rng := xrand.New(42)
	var last Time
	ordered := true
	n := 0
	for i := 0; i < 5000; i++ {
		at := Time(rng.Intn(100000))
		k.At(at, func() {
			if k.Now() < last {
				ordered = false
			}
			last = k.Now()
			n++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !ordered {
		t.Fatal("events executed out of time order")
	}
	if n != 5000 {
		t.Fatalf("%d events executed, want 5000", n)
	}
}

// TestEventsScheduledFromEvents: cascading schedules keep ordering.
func TestEventsScheduledFromEvents(t *testing.T) {
	k := New()
	depth := 0
	var recurse func()
	recurse = func() {
		depth++
		if depth < 100 {
			k.After(1, recurse)
		}
	}
	k.At(0, recurse)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if depth != 100 || k.Now() != 99 {
		t.Fatalf("depth %d at time %v", depth, k.Now())
	}
}

// TestProcsAndEventsInterleaved: processes waiting amid a storm of events.
func TestProcsAndEventsInterleaved(t *testing.T) {
	k := New()
	events := 0
	for i := 0; i < 500; i++ {
		k.At(Time(i*3), func() { events++ })
	}
	woke := 0
	for i := 0; i < 50; i++ {
		d := Time(i * 17 % 1400)
		k.Spawn("p", func(p *Proc) {
			p.Wait(d)
			woke++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if events != 500 || woke != 50 {
		t.Fatalf("events=%d woke=%d", events, woke)
	}
}

// TestFutureChains: processes waking each other through futures.
func TestFutureChains(t *testing.T) {
	k := New()
	const n = 64
	futs := make([]*Future, n+1)
	for i := range futs {
		futs[i] = NewFuture()
	}
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("link", func(p *Proc) {
			futs[i].Await(p)
			p.Wait(10)
			futs[i+1].Complete(k, i+1)
		})
	}
	k.At(5, func() { futs[0].Complete(k, 0) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got := futs[n].Value(); got != n {
		t.Fatalf("chain value %v, want %d", got, n)
	}
	if k.Now() != 5+10*n {
		t.Fatalf("chain finished at %v, want %v", k.Now(), 5+10*n)
	}
}

// TestDeterministicUnderRandomLoad: identical seeds give identical
// trajectories, via quick-checked seeds.
func TestDeterministicUnderRandomLoad(t *testing.T) {
	trajectory := func(seed uint64) (Time, int) {
		k := New()
		rng := xrand.New(seed)
		sum := 0
		for i := 0; i < 60; i++ {
			delay := Time(rng.Intn(500))
			k.Spawn("p", func(p *Proc) {
				p.Wait(delay)
				sum += int(p.Now())
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Now(), sum
	}
	check := func(seed uint64) bool {
		t1, s1 := trajectory(seed)
		t2, s2 := trajectory(seed)
		return t1 == t2 && s1 == s2
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// --- kill-during-handoff stress ---
//
// The single-rendezvous handoff must preserve the synchronous-kill
// guarantees of the old two-channel scheduler: once kill() returns, the
// target never executes user code again, regardless of whether it was
// parked with no wakeup, runnable with a wakeup queued, or not yet first
// scheduled (mid-Spawn). These tests run under -race in CI.

// TestKillParkedProc: killing a process blocked on a future unwinds it
// without resuming the body.
func TestKillParkedProc(t *testing.T) {
	k := New()
	fut := NewFuture()
	resumed := false
	p := k.Spawn("parked", func(p *Proc) {
		fut.Await(p)
		resumed = true
	})
	k.At(5, func() { p.kill() })
	if err := k.Run(); err != nil {
		t.Fatalf("killed proc reported as deadlock: %v", err)
	}
	if resumed {
		t.Fatal("killed process executed past its park point")
	}
}

// TestKillRunnableProc: killing a process whose wakeup event is already
// queued must not resume it when that event pops.
func TestKillRunnableProc(t *testing.T) {
	k := New()
	resumed := false
	p := k.Spawn("runnable", func(p *Proc) {
		p.Wait(10) // wakeup queued for t=10
		resumed = true
	})
	k.At(5, func() { p.kill() }) // kill while the wakeup is pending
	later := false
	k.At(20, func() { later = true })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Fatal("killed process resumed from its queued wakeup")
	}
	if !later {
		t.Fatal("kernel stopped executing after skipping the dead wakeup")
	}
}

// TestKillMidSpawn: a process killed before its first scheduling must never
// start its body, and its pending kick-off event must be skipped.
func TestKillMidSpawn(t *testing.T) {
	k := New()
	started := false
	k.At(1, func() {
		p := k.Spawn("doomed", func(p *Proc) { started = true })
		p.kill() // before the spawn kick-off event ran
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if started {
		t.Fatal("mid-spawn-killed process started its body")
	}
}

// TestKillStressMixed is the randomized kill-during-handoff stress: a churn
// of waiting, yielding and future-chained processes with kills injected
// from event context at random times against parked, runnable and
// freshly-spawned targets. Two runs of every seed must execute the same
// event sequence (fingerprint), nobody may run after being killed, and
// survivors must complete. Run under -race in CI to pin the rendezvous
// memory ordering.
func TestKillStressMixed(t *testing.T) {
	trial := func(seed uint64) (uint64, int) {
		k := New()
		rng := xrand.New(seed)
		const n = 24
		alive := make([]bool, n)
		killed := make([]bool, n)
		procs := make([]*Proc, n)
		fut := NewFuture()
		for i := 0; i < n; i++ {
			i := i
			switch i % 3 {
			case 0: // timed waiter: mostly runnable or parked with a wakeup
				d := Time(1 + rng.Intn(40))
				procs[i] = k.Spawn("waiter", func(p *Proc) {
					for j := 0; j < 20; j++ {
						if killed[i] {
							panic("killed waiter still running")
						}
						p.Wait(d)
					}
					alive[i] = true
				})
			case 1: // parked on a shared future
				procs[i] = k.Spawn("await", func(p *Proc) {
					fut.Await(p)
					if killed[i] {
						panic("killed awaiter resumed")
					}
					alive[i] = true
				})
			case 2: // yield churn: frequently in the now-queue
				procs[i] = k.Spawn("yield", func(p *Proc) {
					for j := 0; j < 50; j++ {
						if killed[i] {
							panic("killed yielder still running")
						}
						p.Yield()
					}
					alive[i] = true
				})
			}
		}
		// Kill a third of the processes from event context, at random times
		// relative to their wakeups; spawn-and-kill a few more on the spot.
		kills := 0
		for i := 0; i < n; i += 3 {
			i := i
			k.At(Time(rng.Intn(60)), func() {
				if procs[i].done {
					return // already finished; nothing to kill
				}
				killed[i] = true
				procs[i].kill()
				kills++
			})
		}
		for j := 0; j < 4; j++ {
			k.At(Time(rng.Intn(60)), func() {
				p := k.Spawn("instakill", func(p *Proc) {
					panic("instakilled process ran")
				})
				p.kill()
			})
		}
		k.At(70, func() { fut.Complete(k, nil) })
		if err := k.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		survivors := 0
		for i := range alive {
			if alive[i] {
				survivors++
			}
			if alive[i] && killed[i] {
				t.Fatalf("seed %d: process %d completed after being killed", seed, i)
			}
		}
		if kills == 0 {
			t.Fatalf("seed %d: no kills executed", seed)
		}
		return k.Fingerprint(), survivors
	}
	for seed := uint64(0); seed < 12; seed++ {
		fp1, s1 := trial(seed)
		fp2, s2 := trial(seed)
		if fp1 != fp2 || s1 != s2 {
			t.Fatalf("seed %d: nondeterministic under kills: fp %x/%x, survivors %d/%d",
				seed, fp1, fp2, s1, s2)
		}
		if s1 == 0 {
			t.Fatalf("seed %d: no survivors — kill stress killed everyone?", seed)
		}
	}
}

// TestDeadlockReportsAllBlocked: every stuck process appears in the error.
func TestDeadlockReportsAllBlocked(t *testing.T) {
	k := New()
	f := NewFuture()
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Proc) { f.Await(p) })
	}
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if len(de.Blocked) != 3 {
		t.Fatalf("blocked = %v, want 3 processes", de.Blocked)
	}
	if de.Error() == "" {
		t.Fatal("empty error string")
	}
}

// TestKernelReusableAfterRun: more events can be scheduled and run again.
func TestKernelReusableAfterRun(t *testing.T) {
	k := New()
	ran := 0
	k.At(10, func() { ran++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.At(20, func() { ran++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 || k.Now() != 20 {
		t.Fatalf("ran=%d now=%v", ran, k.Now())
	}
}

// TestNegativeWaitPanics and friends: API misuse is loud.
func TestNegativeWaitPanics(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("negative Wait did not panic")
			}
		}()
		p.Wait(-1)
	})
	_ = k.Run()
	k.Shutdown()
}

func TestNegativeAfterPanics(t *testing.T) {
	k := New()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	k.After(-5, func() {})
}

func TestWaitGroupUnderflowPanics(t *testing.T) {
	k := New()
	var wg WaitGroup
	defer func() {
		if recover() == nil {
			t.Fatal("WaitGroup underflow did not panic")
		}
	}()
	wg.DoneOne(k)
}

func TestProcString(t *testing.T) {
	k := New()
	p := k.Spawn("zed", func(p *Proc) {})
	if p.String() != "proc(zed)" || p.Name() != "zed" {
		t.Fatalf("String=%q Name=%q", p.String(), p.Name())
	}
	if p.Kernel() != k {
		t.Fatal("Kernel() mismatch")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
