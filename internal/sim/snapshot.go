package sim

import "fmt"

// This file implements kernel and cluster state capture for machine
// snapshot/fork (core.Machine.Snapshot). A kernel's processes are
// goroutines, whose stacks cannot be copied, so capture is only legal at
// quiescence: no pending events on any tier and no live processes. At that
// point the kernel's entire observable state is the clock, the sequence
// counter, the fingerprint chain and the stat counters — the queues are
// empty and the payload slot table holds only recycled slots (slot indices
// never influence event order, so a fork starting with a fresh table is
// indistinguishable).

// KernelState is a quiescent kernel's captured state.
type KernelState struct {
	Now  Time
	Seq  uint64
	FP   uint64
	Stat Stats
}

// SnapshotState captures the kernel's state. It fails unless the kernel is
// quiescent: events still pending (or a clustered kernel — use the
// Cluster's SnapshotState) make the capture meaningless.
func (k *Kernel) SnapshotState() (KernelState, error) {
	if k.sh != nil {
		return KernelState{}, fmt.Errorf("sim: SnapshotState on a clustered kernel; snapshot the cluster")
	}
	if err := k.checkQuiescent(); err != nil {
		return KernelState{}, err
	}
	return KernelState{Now: k.now, Seq: k.seq, FP: k.fp, Stat: k.Stat}, nil
}

// RestoreState overwrites the kernel's clock, sequence counter, fingerprint
// and stats with a captured state. The kernel must be fresh (quiescent, no
// processes ever spawned); events scheduled afterwards continue the
// original's (t, seq) numbering exactly.
func (k *Kernel) RestoreState(st KernelState) error {
	if err := k.checkQuiescent(); err != nil {
		return err
	}
	if len(k.procs) > 0 {
		return fmt.Errorf("sim: RestoreState on a kernel with processes")
	}
	k.now, k.seq, k.fp, k.Stat = st.Now, st.Seq, st.FP, st.Stat
	return nil
}

// checkQuiescent reports why the kernel cannot be captured, or nil.
func (k *Kernel) checkQuiescent() error {
	if k.stopped {
		return fmt.Errorf("sim: kernel was stopped")
	}
	if n := k.localPending(); n > 0 {
		return fmt.Errorf("sim: %d events still pending", n)
	}
	for _, p := range k.procs {
		if !p.done {
			return fmt.Errorf("sim: process %s still live", p.name)
		}
	}
	return nil
}

// ClusterState is a quiescent cluster's captured state: the global sequence
// counter and fingerprint plus every shard kernel's state. After a run the
// per-shard stats are already aggregated into shard 0 and the cluster
// fingerprint mirrored there (finish), so the per-kernel capture preserves
// that layout exactly.
type ClusterState struct {
	GSeq    uint64
	FP      uint64
	Kernels []KernelState
}

// SnapshotState captures the cluster's state; all shards must be quiescent.
func (cl *Cluster) SnapshotState() (ClusterState, error) {
	if cl.stopped {
		return ClusterState{}, fmt.Errorf("sim: cluster was stopped")
	}
	if cl.window {
		return ClusterState{}, fmt.Errorf("sim: cluster inside a window")
	}
	st := ClusterState{GSeq: cl.gseq, FP: cl.fp, Kernels: make([]KernelState, len(cl.ks))}
	for i, k := range cl.ks {
		if err := k.checkQuiescent(); err != nil {
			return ClusterState{}, fmt.Errorf("shard %d: %w", i, err)
		}
		st.Kernels[i] = KernelState{Now: k.now, Seq: k.seq, FP: k.fp, Stat: k.Stat}
	}
	return st, nil
}

// RestoreState overwrites a fresh cluster's counters and shard kernels with
// a captured state. The shard count must match the capture's.
func (cl *Cluster) RestoreState(st ClusterState) error {
	if len(st.Kernels) != len(cl.ks) {
		return fmt.Errorf("sim: cluster has %d shards, snapshot has %d", len(cl.ks), len(st.Kernels))
	}
	for i, k := range cl.ks {
		if err := k.checkQuiescent(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		if len(k.procs) > 0 {
			return fmt.Errorf("sim: shard %d already has processes", i)
		}
		ks := st.Kernels[i]
		k.now, k.seq, k.fp, k.Stat = ks.Now, ks.Seq, ks.FP, ks.Stat
	}
	cl.gseq, cl.fp = st.GSeq, st.FP
	return nil
}

// Done reports whether the process has finished (its body returned or it
// was force-terminated). Safe to read once Run has returned.
func (p *Proc) Done() bool { return p.done }
