//go:build diva_heapq

package sim

// defaultHeapQueue under the diva_heapq build tag: every kernel runs on
// the retained 4-ary heap oracle instead of the ladder queue.
const defaultHeapQueue = true
