package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrCanceled is the sentinel a canceled run unwraps to. A run is canceled
// cooperatively: an external party sets the flag installed by SetCancel
// and the kernel notices it at the next checkpoint (every cancelCheckEvery
// executed events on a sequential kernel; additionally once per window on
// a cluster). errors.Is(err, ErrCanceled) identifies a canceled run; the
// concrete *CanceledError carries the progress diagnostics.
var ErrCanceled = errors.New("sim: run canceled")

// CanceledError reports a run stopped at a cancellation checkpoint: the
// simulated time it had reached and the number of events it had executed.
// Cancellation leaves no partial observable state behind — the machine is
// stopped (never quiescent, so it cannot be snapshotted) and every live
// process has been killed; any snapshot taken before the run remains
// valid and forks from it replay identically.
type CanceledError struct {
	At     Time
	Events uint64
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at t=%v after %d events", e.At, e.Events)
}

// Unwrap makes errors.Is(err, ErrCanceled) hold.
func (e *CanceledError) Unwrap() error { return ErrCanceled }

// cancelCheckEvery is the cancellation polling period in executed events.
// A power of two: the checkpoint is one counter increment and mask per
// event plus an atomic load every 1024th, and nothing at all when no flag
// is installed — the benchmark gate pins that the unset path costs nothing
// measurable.
const cancelCheckEvery = 1024

// SetCancel installs flag as the kernel's cooperative cancellation
// checkpoint; a nil flag uninstalls it. Once flag is true the run stops at
// the next checkpoint and Run returns a *CanceledError. On a clustered
// kernel the flag is shared across every shard and checked once per shard
// window as well. Install before Run or between runs; the flag itself may
// be set from any goroutine at any time.
func (k *Kernel) SetCancel(flag *atomic.Bool) {
	if k.sh != nil {
		k.sh.cl.setCancel(flag)
		return
	}
	k.cancel = flag
}

func (cl *Cluster) setCancel(flag *atomic.Bool) {
	cl.cancel = flag
	for _, k := range cl.ks {
		k.cancel = flag
	}
}

// cancelRequested reports whether a cancellation flag is installed and set.
func (k *Kernel) cancelRequested() bool {
	return k.cancel != nil && k.cancel.Load()
}

// checkCancel is the per-event checkpoint: called once per executed event
// from the loop, it polls the flag every cancelCheckEvery events and marks
// the kernel canceled+stopped when it is set. Returns true when the loop
// must stop.
func (k *Kernel) checkCancel() bool {
	k.cancelCtr++
	if k.cancelCtr&(cancelCheckEvery-1) != 0 {
		return false
	}
	if !k.cancel.Load() {
		return false
	}
	k.canceled = true
	k.stopped = true
	return true
}
