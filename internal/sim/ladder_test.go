package sim

import (
	"math"
	"math/rand"
	"testing"
)

// drive feeds the same interleaved push/pop workload to a queue and
// returns the popped order. ops encodes the workload: each step pushes
// pushes[i] events (timestamps from ts) and then pops pops[i] events.
type qops struct {
	ts    []Time // timestamps, consumed in order
	pushN []int
	popN  []int
}

type evQueue interface {
	push(event)
	pop() event
	len() int
}

func runQueue(q evQueue, ops qops) []event {
	var out []event
	seq := uint64(0)
	ti := 0
	now := Time(0) // monotone floor, as the kernel guarantees
	for i := range ops.pushN {
		for j := 0; j < ops.pushN[i]; j++ {
			t := ops.ts[ti%len(ops.ts)]
			ti++
			if t < now {
				t = now
			}
			seq++
			q.push(event{t: t, seq: seq, slot: int32(seq)})
		}
		for j := 0; j < ops.popN[i] && q.len() > 0; j++ {
			e := q.pop()
			if e.t < now {
				panic("queue popped backwards in time")
			}
			now = e.t
			out = append(out, e)
		}
	}
	for q.len() > 0 {
		out = append(out, q.pop())
	}
	return out
}

// checkIdentical is the differential property: the ladder queue must pop
// the byte-identical event order the retained heap oracle pops.
func checkIdentical(t *testing.T, ops qops) {
	t.Helper()
	lq := &ladderQueue{}
	lq.init()
	got := runQueue(lq, ops)
	want := runQueue(&heapQueue{}, ops)
	if len(got) != len(want) {
		t.Fatalf("ladder popped %d events, heap %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pop %d: ladder (t=%v seq=%d slot=%d), heap (t=%v seq=%d slot=%d)",
				i, got[i].t, got[i].seq, got[i].slot, want[i].t, want[i].seq, want[i].slot)
		}
	}
	// The strict order is also checkable directly: (t, seq) must ascend.
	for i := 1; i < len(got); i++ {
		if !got[i-1].before(&got[i]) {
			t.Fatalf("pop %d not in strict (t, seq) order: (%v,%d) then (%v,%d)",
				i, got[i-1].t, got[i-1].seq, got[i].t, got[i].seq)
		}
	}
}

// randomOps builds a random workload from a seeded source: bursty pushes
// and pops with timestamp distributions that exercise every ladder tier —
// dense ties, uniform spreads, heavy far-future tails and tiny deltas
// that stress the canonical bucket-edge comparisons.
func randomOps(rng *rand.Rand, steps int) qops {
	var ops qops
	base := Time(0)
	n := 50 + rng.Intn(2000)
	for i := 0; i < n; i++ {
		var t Time
		switch rng.Intn(5) {
		case 0: // exact ties
			t = base + Time(rng.Intn(4))*100
		case 1: // uniform near future
			t = base + rng.Float64()*1000
		case 2: // far-future tail
			t = base + 1e6 + rng.Float64()*1e6
		case 3: // sub-ulp-ish deltas around a hot timestamp
			t = base + 500 + rng.Float64()*1e-9
		default: // GCel-like constant increments
			t = base + Time(1+rng.Intn(3))*Time([]float64{2, 40, 100}[rng.Intn(3)])
		}
		ops.ts = append(ops.ts, t)
		if rng.Intn(50) == 0 {
			base += rng.Float64() * 1e5
		}
	}
	for i := 0; i < steps; i++ {
		ops.pushN = append(ops.pushN, rng.Intn(40))
		ops.popN = append(ops.popN, rng.Intn(40))
	}
	return ops
}

// TestQueueDifferentialRandom is the seed-corpus property run: many
// random (t, seq) workloads popped through the ladder queue and the heap
// oracle must produce byte-identical event order. CI runs it under -race.
func TestQueueDifferentialRandom(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		checkIdentical(t, randomOps(rng, 30+rng.Intn(100)))
	}
}

// TestQueueDifferentialEdgeCases pins hand-built boundary workloads:
// all-equal timestamps (zero span, seq-only order), boundary-exact
// timestamps hitting canonical bucket edges, monotone drains, front
// spills, and deep same-timestamp pileups that exhaust the rung depth.
func TestQueueDifferentialEdgeCases(t *testing.T) {
	burst := func(ts []Time, push, pop int, steps int) qops {
		ops := qops{ts: ts}
		for i := 0; i < steps; i++ {
			ops.pushN = append(ops.pushN, push)
			ops.popN = append(ops.popN, pop)
		}
		return ops
	}
	t.Run("all-equal", func(t *testing.T) {
		checkIdentical(t, burst([]Time{42}, 37, 11, 40))
	})
	t.Run("two-values", func(t *testing.T) {
		checkIdentical(t, burst([]Time{100, 200}, 23, 7, 60))
	})
	t.Run("push-all-then-drain", func(t *testing.T) {
		ts := make([]Time, 3000)
		rng := rand.New(rand.NewSource(7))
		for i := range ts {
			ts[i] = rng.Float64() * 1e6
		}
		ops := qops{ts: ts, pushN: []int{3000}, popN: []int{3000}}
		checkIdentical(t, ops)
	})
	t.Run("front-spill", func(t *testing.T) {
		// Interleave pops with pushes landing below frontEnd so the
		// sorted front grows past lqFrontCap and spills into a rung.
		ts := make([]Time, 4000)
		rng := rand.New(rand.NewSource(9))
		for i := range ts {
			ts[i] = 1000 + rng.Float64()*10
		}
		checkIdentical(t, burst(ts, 400, 1, 9))
	})
	t.Run("bucket-edges", func(t *testing.T) {
		// Timestamps exactly on canonical bucket boundaries of the rung
		// a 2048-event tail conversion creates.
		var ts []Time
		for i := 0; i < 64; i++ {
			ts = append(ts, Time(i)*math.Pi*100)
		}
		checkIdentical(t, burst(ts, 2048/32, 9, 40))
	})
	t.Run("ulp-span", func(t *testing.T) {
		// The whole workload spans a few ulps: width underflow paths.
		base := Time(1e12)
		ts := []Time{base, math.Nextafter(base, 2e12), math.Nextafter(math.Nextafter(base, 2e12), 2e12)}
		checkIdentical(t, burst(ts, 97, 13, 30))
	})
}

// FuzzQueueDifferential feeds arbitrary byte strings decoded into (t, seq)
// workloads through both queues. The seed corpus (f.Add) runs on every
// plain `go test`, including the -race CI job.
func FuzzQueueDifferential(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 0, 128, 7, 9})
	f.Add([]byte("ladder-queue-vs-heap-oracle-seed"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// Decode: each byte steers a small push/pop burst; timestamps
		// derive from a rolling hash so ties and spreads both occur.
		var ops qops
		h := uint64(14695981039346656037)
		for _, b := range data {
			h = (h ^ uint64(b)) * 1099511628211
			switch b % 4 {
			case 0:
				ops.ts = append(ops.ts, Time(h%1000))
			case 1:
				ops.ts = append(ops.ts, Time(h%16)*1e5)
			case 2:
				ops.ts = append(ops.ts, Time(h%(1<<30))/256)
			default:
				ops.ts = append(ops.ts, 777)
			}
			ops.pushN = append(ops.pushN, int(b%13))
			ops.popN = append(ops.popN, int((b>>4)%9))
		}
		checkIdentical(t, ops)
	})
}
