//go:build !diva_heapq

package sim

// defaultHeapQueue selects the event queue New installs: the ladder queue
// by default; `-tags diva_heapq` flips every kernel onto the retained
// 4-ary heap oracle for whole-build A/B runs.
const defaultHeapQueue = false
