// Package sim implements a deterministic, sequential discrete-event
// simulation kernel with cooperative processes.
//
// The kernel advances virtual time by executing events from a priority
// queue. Exactly one thing runs at a time: either an event callback or one
// process goroutine. Processes hand control back to the kernel whenever they
// block (Wait, Await, ...), so all executions are serialized and the whole
// simulation is reproducible — same inputs, same event order, same results.
//
// Two execution contexts exist:
//
//   - Event context: callbacks scheduled with At/After/AtCall run inline in
//     the kernel loop. They must not block. Protocol handlers (message
//     deliveries) run in this context.
//   - Process context: goroutines spawned with Spawn. They may block on
//     futures and timed waits. Application programs (one per simulated
//     processor) run in this context.
//
// Time is measured in microseconds (float64); ties are broken by schedule
// order, which makes runs deterministic.
//
// # The event queue
//
// The event queue is the hottest data structure of the whole simulator, so
// it avoids container/heap: events live unboxed in a plain []event backing
// array organized as a 4-ary min-heap with inlined sift-up/sift-down (a
// 4-ary heap halves the tree depth vs. a binary heap and keeps the four
// children of a node on one cache line pair). A queue entry is 32 bytes —
// timestamp, sequence, and either the *Proc to wake (the most frequent
// event, inline) or a slot index into a recycled payload table holding the
// callback variants — so the sift memory traffic stays minimal and the hot
// paths (proc wakeups, message deliveries) schedule with zero allocations.
//
// Events scheduled at the current timestamp — future completions, yields,
// spawn kick-offs: the bulk of the protocol layer's churn — bypass the
// heap entirely through a FIFO, which is exact: such an event is younger
// than every queued event of the same timestamp, so FIFO order is
// (time, sequence) order.
//
// # The single-rendezvous handoff
//
// The kernel loop is not pinned to one goroutine. Whichever goroutine
// currently runs — the one that called Run, or any process goroutine —
// holds a conceptual baton; it executes the loop (popping events and
// running event callbacks inline) until it pops a wakeup for a different
// process. It then hands the baton over with a single send on that
// process's buffered resume channel and blocks on (or, for a finished
// process, exits instead of) its own rendezvous. A full context switch
// therefore costs exactly one channel rendezvous — one futex wake plus one
// sleep — instead of the two of the classic park/resume ping-pong through a
// dedicated scheduler goroutine, and a process that parks and is the next
// to wake (a timed Wait with nothing in between, the most common pattern)
// resumes with zero channel operations: it pops its own wakeup inside the
// loop it is already running.
//
// States of a process goroutine:
//
//	SPAWNED --(first wakeup popped: baton handed over)--> RUNNING
//	RUNNING --(park: Wait/WaitUntil/Yield/Await)--------> DRIVING
//	DRIVING --(pops own wakeup)-------------------------> RUNNING   (0 rendezvous)
//	DRIVING --(pops another proc's wakeup: hand baton)--> PARKED    (1 rendezvous)
//	DRIVING --(event it ran killed it: baton to Run)----> EXITED    (unwinds via panic)
//	PARKED  --(own wakeup popped elsewhere: baton in)---> RUNNING
//	RUNNING --(body returns)----------------------------> DRIVING (done)
//	DRIVING (done) --(hand baton or queue drained)------> EXITED
//	SPAWNED/PARKED --(kill)-----------------------------> EXITED   (unwinds via panic)
//
// DRIVING means the goroutine is executing the kernel loop inline (inside
// park, or as the continuation after its body returned). The goroutine that
// called Run is a regular participant: it drives until it hands the baton
// to the first process and then sleeps on the kernel's main channel; it
// does not take part in per-switch ping-pong at all. The main channel is
// signaled when the simulation terminates (queue drained or Stop) — or by
// a driving goroutine that must unwind because an event callback it just
// executed killed its own process; the Run goroutine then resumes driving
// the remaining events.
//
// Exactly one goroutine is ever runnable per kernel: every handoff is a
// send to a goroutine that is blocked (or about to block) on its own
// channel, immediately followed by the sender blocking or exiting. The
// happens-before chain of those channel operations is also what makes the
// kernel's state safely visible across the goroutines under `go test
// -race`, even when several kernels run concurrently (SetPinned(false)).
//
// Killing a process (kernel shutdown, deadlock cleanup, tests) marks it
// done and deposits a kill signal in its resume buffer; the process unwinds
// with a panic the Spawn wrapper swallows. A killed process that still has
// a wakeup queued is skipped when that event pops — the event is still
// folded into the Fingerprint, which hashes every popped event.
package sim
