// Package sim implements a deterministic, sequential discrete-event
// simulation kernel with cooperative processes.
//
// The kernel advances virtual time by executing events from a priority
// queue. Exactly one thing runs at a time: either an event callback or one
// process goroutine. Processes hand control back to the kernel whenever they
// block (Wait, Await, ...), so all executions are serialized and the whole
// simulation is reproducible — same inputs, same event order, same results.
//
// Two execution contexts exist:
//
//   - Event context: callbacks scheduled with At/After/AtCall run inline in
//     the kernel loop. They must not block. Protocol handlers (message
//     deliveries) run in this context.
//   - Process context: goroutines spawned with Spawn. They may block on
//     futures and timed waits. Application programs (one per simulated
//     processor) run in this context.
//
// Time is measured in microseconds (float64); ties are broken by schedule
// order, which makes runs deterministic.
//
// # The event queue
//
// The event queue is the hottest data structure of the whole simulator, so
// it avoids container/heap entirely. Events live unboxed in plain []event
// arrays; a queue entry is 32 bytes — timestamp, sequence, and either the
// *Proc to wake (the most frequent event, inline) or a slot index into a
// recycled payload table holding the callback variants — and the hot
// paths (proc wakeups, message deliveries) schedule with zero
// allocations.
//
// The default queue is a ladder/calendar queue (ladder.go) with three
// nested tiers: a sorted "front" (the current epoch, popped by index
// increment — O(1)), a stack of rungs whose equal-width buckets partition
// successive time intervals (each deeper rung refines one bucket of its
// parent), and an unsorted far-future tail. Every event is appended O(1)
// into its tier and participates in exactly one small sort when its
// bucket becomes the front, so the amortized cost per event is constant
// where a heap pays O(log n) sift traffic per push and pop
// (BenchmarkKernelQueue*: flat ns/op from 256 to 65536 standing events,
// 2.5-3x over the heap). Its exactness invariants:
//
//   - the tiers partition time with canonical bucket-edge comparisons
//     (edge(i) = start + width*i, the same expression on every path), so
//     floating-point rounding can never place an event on the wrong side
//     of a boundary: front < rungs[deepest] < ... < rungs[0] < tail;
//   - the front is refilled only when empty, from the next nonempty
//     bucket of the deepest rung (sorted by (t, seq), oversized buckets
//     spread into a child rung first) or by converting the tail — by the
//     partition invariant the refill holds exactly the globally smallest
//     remaining events;
//   - pushes below the front's bound insert in sorted position; a front
//     grown past a small cap spills into a fresh deepest rung, so sorted
//     insertion cost stays bounded;
//   - ties are broken by the globally monotone sequence number
//     everywhere, so pop order is the strict (t, seq) order.
//
// The retained 4-ary min-heap (heapq.go) pops in the provably identical
// order and stays behind Kernel.SetHeapQueue and the diva_heapq build tag
// as the differential-test oracle: randomized and fuzzed (t, seq)
// workloads must produce byte-identical pop sequences from both
// (ladder_test.go), and the whole test suite runs against the heap build
// in CI.
//
// Events scheduled at the current timestamp — future completions, yields,
// spawn kick-offs: the bulk of the protocol layer's churn — bypass the
// queue entirely through a FIFO, which is exact: such an event is younger
// than every queued event of the same timestamp, so FIFO order is
// (time, sequence) order.
//
// # The lazy event tier
//
// AtLazyCall schedules a callback that executes at the exact (t, seq)
// position a regular event would occupy — the loop runs due lazy events
// inline during event selection, advancing the clock and folding them
// into the fingerprint exactly as if popped — but without a regular
// event's pop. A lazy event can never resume a process. The network's
// fused delivery pipeline runs the per-hop arrive stage here: a message
// hop costs one regular kernel event (the handler dispatch) instead of
// two, while charging, event interleaving, sequence allocation and thus
// every simulated metric stay bit-identical to the two-stage pipeline
// (Network.SetTwoStageDelivery is the A/B oracle; the A/B tests pin equal
// kernel fingerprints across all four queue x pipeline combinations).
//
// # The single-rendezvous handoff
//
// The kernel loop is not pinned to one goroutine. Whichever goroutine
// currently runs — the one that called Run, or any process goroutine —
// holds a conceptual baton; it executes the loop (popping events and
// running event callbacks inline) until it pops a wakeup for a different
// process. It then hands the baton over with a single send on that
// process's buffered resume channel and blocks on (or, for a finished
// process, exits instead of) its own rendezvous. A full context switch
// therefore costs exactly one channel rendezvous — one futex wake plus one
// sleep — instead of the two of the classic park/resume ping-pong through a
// dedicated scheduler goroutine, and a process that parks and is the next
// to wake (a timed Wait with nothing in between, the most common pattern)
// resumes with zero channel operations: it pops its own wakeup inside the
// loop it is already running.
//
// States of a process goroutine:
//
//	SPAWNED --(first wakeup popped: baton handed over)--> RUNNING
//	RUNNING --(park: Wait/WaitUntil/Yield/Await)--------> DRIVING
//	DRIVING --(pops own wakeup)-------------------------> RUNNING   (0 rendezvous)
//	DRIVING --(pops another proc's wakeup: hand baton)--> PARKED    (1 rendezvous)
//	DRIVING --(event it ran killed it: baton to Run)----> EXITED    (unwinds via panic)
//	PARKED  --(own wakeup popped elsewhere: baton in)---> RUNNING
//	RUNNING --(body returns)----------------------------> DRIVING (done)
//	DRIVING (done) --(hand baton or queue drained)------> EXITED
//	SPAWNED/PARKED --(kill)-----------------------------> EXITED   (unwinds via panic)
//
// DRIVING means the goroutine is executing the kernel loop inline (inside
// park, or as the continuation after its body returned). The goroutine that
// called Run is a regular participant: it drives until it hands the baton
// to the first process and then sleeps on the kernel's main channel; it
// does not take part in per-switch ping-pong at all. The main channel is
// signaled when the simulation terminates (queue drained or Stop) — or by
// a driving goroutine that must unwind because an event callback it just
// executed killed its own process; the Run goroutine then resumes driving
// the remaining events.
//
// Exactly one goroutine is ever runnable per kernel: every handoff is a
// send to a goroutine that is blocked (or about to block) on its own
// channel, immediately followed by the sender blocking or exiting. The
// happens-before chain of those channel operations is also what makes the
// kernel's state safely visible across the goroutines under `go test
// -race`, even when several kernels run concurrently (SetPinned(false)).
//
// Killing a process (kernel shutdown, deadlock cleanup, tests) marks it
// done and deposits a kill signal in its resume buffer; the process unwinds
// with a panic the Spawn wrapper swallows. A killed process that still has
// a wakeup queued is skipped when that event pops — the event is still
// folded into the Fingerprint, which hashes every popped event.
//
// # Sharded conservative-parallel execution
//
// A Cluster (cluster.go) runs K kernels as shards of one simulation,
// conservatively parallel: the caller partitions its simulated processors
// across the shards (the machine layer cuts topology-aware blocks via
// decomp.ShardBlocks) and provides a lookahead L — a proven lower bound
// on the delay between any cross-shard cause and its earliest effect. The
// machine derives L from the link model: a message needs at least
// StartupSendUS + HopLatencyUS·d to reach another node, with d = 1
// whenever a shard holds more than one node (any cross-node send touches
// the globally shared wormhole link state) and the genuine minimum
// cross-shard distance only in the all-singleton case. A DSM strategy
// shares protocol state with zero simulated delay, so those machines get
// no window at all: the shard request collapses to one kernel.
//
// Execution alternates windows and boundary merges:
//
//   - Window: with t0 the global minimum due time, every shard runs its
//     own events in [t0, t0+L) — shards whose next event lies at or past
//     the horizon sit the window out. Multi-shard windows run on
//     persistent per-shard runner goroutines (channel rendezvous per
//     window, zero atomics in simulated code); a single-active-shard
//     window runs inline on the coordinating goroutine.
//   - Merge: at the barrier the coordinator walks the shards' executed-
//     event logs in global (t, seq) order, assigning the definitive
//     sequence numbers and folding the shared fingerprint.
//
// Determinism hinges on sequence numbers. Inside a window a shard cannot
// know how many events the others will execute first, so it allocates
// temporaries (watermark-relative) and logs every allocation in program
// order. The merge replays those logs in the exact order the sequential
// kernel would have executed — each executed event closes the batch of
// sequence numbers its callback allocated — so the final numbering, and
// therefore every future pop order, is bit-identical to the sequential
// kernel's. The fingerprint is folded from the merged order, which is why
// shards=K and shards=1 produce equal Fingerprint values (pinned by the
// A/B and fuzz suites at the repository root).
//
// Cross-shard interactions never touch another shard's queue mid-window:
//
//   - Sends to another shard's node are deferred (the network logs the
//     departure with LogDefer and replays routing + delivery injection at
//     the merge, via the Cluster replay hook) — legal because the arrival
//     lies at least L past the departure, hence past the horizon.
//   - Wakes for another shard (future completions) must land at or past
//     the horizon and are buffered as deferred wakes, injected in merge
//     order. An exception exists for a single-active-shard window: the
//     other shards are provably quiescent at the barrier, so the active
//     shard may inject below-horizon wakes directly (the batched barrier
//     release depends on this; the injection curtails the window so the
//     woken shards re-enter immediately). Pending() is exact in that
//     quiescent state — the barrier's release gate relies on it — and
//     conservative (a lower bound of 2) only while a multi-shard window
//     is actually executing.
//
// Contract and limitations: processes on different shards may not share
// mutable Go state with same-window timing (a cross-shard Future
// completion must be scheduled at least one window after the waiter
// parks — message passing through the network layer always satisfies
// this); kills are shard-local operations (a cross-shard kill must be
// requested via a process on the victim's shard); Stop() takes effect for
// other shards at the current window boundary. Clocks join at the global
// maximum when the cluster drains, statistics aggregate into the first
// kernel, and cross-shard deadlocks are reported exactly like sequential
// ones (TestClusterCrossShardDeadlock).
package sim
