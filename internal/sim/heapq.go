package sim

// heapQueue is the retained 4-ary min-heap event queue: the oracle the
// ladder queue (ladder.go) is differentially tested against, and the
// kernel's queue implementation when the diva_heapq build tag — or
// Kernel.SetHeapQueue — selects it. Both implementations pop events in
// the exact same strict (t, seq) order; see the fuzz/property tests in
// ladder_test.go.
//
// Entries live unboxed in a plain []event backing array with inlined
// sift-up/sift-down (a 4-ary heap halves the tree depth vs. a binary heap
// and keeps the four children of a node on one cache line pair).
type heapQueue struct {
	h []event
}

func (q *heapQueue) len() int { return len(q.h) }

// remapSeqs rewrites every queued event's sequence number through f. The
// rewrite is order-preserving (see Kernel.remapSeqs), so the heap
// property is untouched.
func (q *heapQueue) remapSeqs(f func(uint64) uint64) {
	for i := range q.h {
		q.h[i].seq = f(q.h[i].seq)
	}
}

// push inserts e with inlined sift-up.
func (q *heapQueue) push(e event) {
	h := append(q.h, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	q.h = h
}

// pop removes and returns the minimum event with inlined sift-down (hole
// method: move the last element down instead of repeated swaps).
func (q *heapQueue) pop() event {
	h := q.h
	top := h[0]
	last := len(h) - 1
	e := h[last]
	h = h[:last]
	q.h = h
	if last > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= last {
				break
			}
			m := c
			end := c + 4
			if end > last {
				end = last
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return top
}
