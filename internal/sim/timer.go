package sim

// This file is the kernel's timer tier: cancelable timeout events for the
// reactive transport and strategy-level failure detection. A timer is an
// ordinary event in every observable respect — it is allocated a sequence
// number when scheduled, executes at its exact (t, seq) position in the
// global order, advances the clock, counts in Stat.Events and folds into
// the fingerprint — but it lives in its own indexed heap so cancellation
// is a true removal: a canceled timer leaves no tombstone behind, consumes
// no pop, and never perturbs the (t, seq) trajectory of the surviving
// events. That is what keeps runs with many canceled retransmission timers
// (the common case: almost every ack cancels one) fingerprint-identical
// across kernel shard counts and fork/restore.
//
// Like the lazy tier, timers execute inline at the loop's pop boundary and
// can never be the event that resumes a process; callbacks must not block.

// TimerID identifies a pending timer for cancellation. The zero TimerID is
// never issued. Slots are recycled under a generation counter, so a stale
// ID (its timer already fired or was canceled) is detected, never aliased
// to a newer timer in the same slot.
type TimerID struct {
	slot int32
	gen  uint32
}

// timerEvent is one pending timer in the indexed heap.
type timerEvent struct {
	t    Time
	seq  uint64
	fn   func(interface{})
	arg  interface{}
	slot int32
}

// timerQueue is a binary min-heap by (t, seq) with a slot→position index,
// so removal by TimerID is O(log n) without tombstones.
type timerQueue struct {
	h    []timerEvent
	pos  []int32 // slot -> heap index, -1 when inactive
	gen  []uint32
	free []int32
}

func (q *timerQueue) len() int { return len(q.h) }

func (q *timerQueue) peek() *timerEvent {
	if len(q.h) == 0 {
		return nil
	}
	return &q.h[0]
}

// push schedules e and returns its TimerID. The generation is bumped at
// slot reuse, invalidating every ID issued for the slot's prior lives.
func (q *timerQueue) push(e timerEvent) TimerID {
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
	} else {
		slot = int32(len(q.pos))
		q.pos = append(q.pos, -1)
		q.gen = append(q.gen, 1)
	}
	e.slot = slot
	q.h = append(q.h, e)
	q.pos[slot] = int32(len(q.h) - 1)
	q.siftUp(len(q.h) - 1)
	return TimerID{slot: slot, gen: q.gen[slot]}
}

// popFront removes and returns the earliest timer.
func (q *timerQueue) popFront() timerEvent {
	e := q.h[0]
	q.release(e.slot)
	last := len(q.h) - 1
	if last > 0 {
		q.h[0] = q.h[last]
		q.pos[q.h[0].slot] = 0
	}
	q.h[last] = timerEvent{} // drop fn/arg references
	q.h = q.h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return e
}

// remove cancels the timer identified by id; false when the id is stale.
func (q *timerQueue) remove(id TimerID) bool {
	if id.slot < 0 || int(id.slot) >= len(q.pos) || q.gen[id.slot] != id.gen {
		return false
	}
	i := int(q.pos[id.slot])
	if i < 0 {
		return false
	}
	q.release(id.slot)
	last := len(q.h) - 1
	if i < last {
		q.h[i] = q.h[last]
		q.pos[q.h[i].slot] = int32(i)
	}
	q.h[last] = timerEvent{}
	q.h = q.h[:last]
	if i < last {
		q.siftDown(i)
		q.siftUp(i)
	}
	return true
}

// release retires a slot: bump the generation, mark inactive, recycle.
func (q *timerQueue) release(slot int32) {
	q.pos[slot] = -1
	q.gen[slot]++
	q.free = append(q.free, slot)
}

// remapSeqs rewrites every pending timer's sequence through f (window
// boundary renumbering). The map is monotone over each shard's window
// allocations, so heap order is preserved.
func (q *timerQueue) remapSeqs(f func(uint64) uint64) {
	for i := range q.h {
		q.h[i].seq = f(q.h[i].seq)
	}
}

func (q *timerQueue) less(i, j int) bool {
	a, b := &q.h[i], &q.h[j]
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

func (q *timerQueue) swap(i, j int) {
	q.h[i], q.h[j] = q.h[j], q.h[i]
	q.pos[q.h[i].slot] = int32(i)
	q.pos[q.h[j].slot] = int32(j)
}

func (q *timerQueue) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.less(i, p) {
			return
		}
		q.swap(i, p)
		i = p
	}
}

func (q *timerQueue) siftDown(i int) {
	n := len(q.h)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && q.less(r, c) {
			c = r
		}
		if !q.less(c, i) {
			return
		}
		q.swap(i, c)
		i = c
	}
}

// TimerAt schedules fn(arg) as a cancelable timeout at absolute time t and
// returns its TimerID. The callback runs in event context at the exact
// (t, schedule-order) position a regular AtCall event would occupy; it must
// not block, and it can never be the event that resumes a process. Unlike
// every other scheduling call, a pending timer can be revoked — CancelTimer
// removes it outright, as if it had never been scheduled (only its sequence
// number stays consumed, which both execution modes agree on).
func (k *Kernel) TimerAt(t Time, fn func(interface{}), arg interface{}) TimerID {
	k.checkPast(t)
	return k.tq.push(timerEvent{t: t, seq: k.allocSeq(), fn: fn, arg: arg})
}

// CancelTimer revokes a pending timer. It returns false when the timer
// already fired or was already canceled (the ID is stale); the caller can
// treat that as "the timeout won the race".
func (k *Kernel) CancelTimer(id TimerID) bool {
	return k.tq.remove(id)
}

// PendingTimers returns the number of scheduled timers that have neither
// fired nor been canceled (diagnostics and quiescence checks).
func (k *Kernel) PendingTimers() int { return k.tq.len() }
