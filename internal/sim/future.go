package sim

// Future is a one-shot value that processes can block on. Complete may be
// called from event or process context; Await must be called from process
// context. A Future may have any number of waiters; all are woken when the
// value arrives. The zero value is ready for use.
//
// The first waiter is stored inline: almost every future in the simulator
// has exactly one (a transaction, a lock, a barrier entry), so the waiter
// slice — and its allocation — only materializes for fan-in futures.
type Future struct {
	done    bool
	val     interface{}
	w0      *Proc   // first waiter, inline
	waiters []*Proc // further waiters (rare)
}

// NewFuture returns an incomplete future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Value returns the completed value (nil if not complete).
func (f *Future) Value() interface{} { return f.val }

// Complete resolves the future and wakes all waiters (in arrival order, at
// the current simulation time). Completing twice panics: it always
// indicates a protocol bug.
func (f *Future) Complete(k *Kernel, val interface{}) {
	f.CompleteAt(k, k.now, val)
}

// CompleteAt resolves the future now but schedules its waiters to wake at
// the future time t (>= now): the batched barrier release computes leaf
// wake-up times ahead of the simulated clock. The value is visible
// immediately, so a process calling Await between now and t returns without
// waiting — callers must ensure no new waiters arrive in that window (the
// barrier guarantees it: the woken process owns the future exclusively).
func (f *Future) CompleteAt(k *Kernel, t Time, val interface{}) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = val
	if f.w0 != nil {
		k.atProc(t, f.w0)
		f.w0 = nil
	}
	for _, p := range f.waiters {
		k.atProc(t, p)
	}
	f.waiters = nil
}

// Await blocks the calling process until the future completes and returns
// its value. If the future is already complete it returns immediately.
func (f *Future) Await(p *Proc) interface{} {
	if f.done {
		return f.val
	}
	if f.w0 == nil {
		f.w0 = p
	} else {
		f.waiters = append(f.waiters, p)
	}
	p.park()
	return f.val
}

// WaitGroup counts outstanding operations; processes can block until the
// count reaches zero. Unlike sync.WaitGroup this is simulation-time aware
// and single-threaded.
type WaitGroup struct {
	n      int
	waiter *Future
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) { w.n += delta }

// DoneOne decrements the counter; at zero, wakes the waiter (if any).
func (w *WaitGroup) DoneOne(k *Kernel) {
	w.n--
	if w.n < 0 {
		panic("sim: WaitGroup counter below zero")
	}
	if w.n == 0 && w.waiter != nil {
		f := w.waiter
		w.waiter = nil
		f.Complete(k, nil)
	}
}

// Wait blocks the process until the counter is zero. Only a single process
// may wait on a WaitGroup at a time.
func (w *WaitGroup) Wait(p *Proc) {
	if w.n == 0 {
		return
	}
	if w.waiter != nil {
		panic("sim: WaitGroup already has a waiter")
	}
	w.waiter = NewFuture()
	w.waiter.Await(p)
}

// Queue is a FIFO of processes blocked waiting for a resource. It underpins
// the per-variable transaction serialization and home-based locks.
type Queue struct {
	futs []*Future
}

// Enqueue appends a new future to the queue and returns it.
func (q *Queue) Enqueue() *Future {
	f := NewFuture()
	q.futs = append(q.futs, f)
	return f
}

// Len returns the number of queued waiters.
func (q *Queue) Len() int { return len(q.futs) }

// WakeFront completes the first queued future, if any.
func (q *Queue) WakeFront(k *Kernel) bool {
	if len(q.futs) == 0 {
		return false
	}
	f := q.futs[0]
	q.futs = q.futs[1:]
	f.Complete(k, nil)
	return true
}
