package sim

import (
	"errors"
	"sync/atomic"
	"testing"
)

// TestCancelMidRun: a flag set from inside an event callback stops the run
// at the next checkpoint — deterministically, since the checkpoint period
// is in executed events — kills the parked processes, and surfaces the
// typed error.
func TestCancelMidRun(t *testing.T) {
	k := New()
	flag := new(atomic.Bool)
	k.SetCancel(flag)
	total := 8 * cancelCheckEvery
	ran := 0
	for i := 0; i < total; i++ {
		k.At(Time(i+1), func() { ran++ })
	}
	k.At(0.5, func() { flag.Store(true) })
	k.Spawn("parked", func(p *Proc) { NewFuture().Await(p) }) // would deadlock if not canceled
	err := k.Run()
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("Run() = %v, want *CanceledError", err)
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("errors.Is(%v, ErrCanceled) = false", err)
	}
	if ran == 0 || ran >= total {
		t.Fatalf("ran %d of %d events; want a strict mid-run stop", ran, total)
	}
	if ce.Events == 0 || ce.Events > uint64(total)+2 {
		t.Fatalf("CanceledError.Events = %d", ce.Events)
	}
	for _, p := range k.procs {
		if !p.done {
			t.Fatalf("process %s still live after cancellation", p.name)
		}
	}
}

// TestCancelBeforeRun: an already-set flag (an expired deadline) stops the
// run before the first event.
func TestCancelBeforeRun(t *testing.T) {
	k := New()
	flag := new(atomic.Bool)
	flag.Store(true)
	k.SetCancel(flag)
	ran := false
	k.At(1, func() { ran = true })
	err := k.Run()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Run() = %v, want ErrCanceled", err)
	}
	if ran {
		t.Fatal("event executed despite pre-run cancellation")
	}
	if _, err := k.SnapshotState(); err == nil {
		t.Fatal("a canceled kernel must not be capturable")
	}
}

// TestCancelUnsetIsFree: with no flag installed the run completes exactly
// as before (the checkpoint is dormant).
func TestCancelUnsetIsFree(t *testing.T) {
	k := New()
	ran := 0
	for i := 0; i < 2*cancelCheckEvery; i++ {
		k.At(Time(i+1), func() { ran++ })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2*cancelCheckEvery {
		t.Fatalf("ran %d events, want %d", ran, 2*cancelCheckEvery)
	}
}

// TestClusterCancel: the shared flag stops a 2-shard cluster — pre-run at
// the coordinator's between-window checkpoint, and mid-run through a shard
// kernel's in-window checkpoint — with processes on both shards killed.
func TestClusterCancel(t *testing.T) {
	for _, pre := range []bool{true, false} {
		cl := newTestCluster(t)
		ks := cl.Kernels()
		flag := new(atomic.Bool)
		ks[0].SetCancel(flag)
		if pre {
			flag.Store(true)
		}
		for i, k := range ks {
			i := i
			k.Spawn("worker", func(p *Proc) {
				for j := 0; j < 4*cancelCheckEvery; j++ {
					p.Wait(Time(1 + (i+j)%3))
				}
			})
		}
		if !pre {
			ks[0].At(2, func() { flag.Store(true) })
		}
		err := ks[0].Run()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("pre=%v: Run() = %v, want ErrCanceled", pre, err)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("pre=%v: Run() = %v, want *CanceledError", pre, err)
		}
		for _, k := range ks {
			for _, p := range k.procs {
				if !p.done {
					t.Fatalf("pre=%v: process %s still live after cancellation", pre, p.name)
				}
			}
		}
		if _, err := cl.SnapshotState(); err == nil {
			t.Fatalf("pre=%v: a canceled cluster must not be capturable", pre)
		}
	}
}
