package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
)

// Time is simulated time in microseconds.
type Time = float64

// event is one scheduled occurrence: a process wakeup (proc != nil) or a
// callback whose payload lives in the kernel's slot table (slot). Process
// wakeups — the most frequent event by far — carry their payload inline;
// callbacks pay one indirection. Keeping the queue entry at 32 bytes
// (vs. 56 with the callback variants unboxed inline) nearly halves the
// memory traffic of the sift operations, which dominate pop.
type event struct {
	t    Time
	seq  uint64
	proc *Proc
	slot int32
}

// payload holds a callback event's fields: a typed callback applied to arg,
// or a func() closure as the fallback. Slots are recycled through a free
// stack, so scheduling stays allocation-free in steady state.
type payload struct {
	hfn func(interface{})
	arg interface{}
	fn  func()
}

// before is the queue's strict ordering: time, then schedule order.
func (e *event) before(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// Kernel is the simulation engine. The zero value is not usable; construct
// with New.
type Kernel struct {
	now   Time
	seq   uint64
	pq    []event // 4-ary min-heap ordered by (t, seq)
	procs []*Proc
	// mainCh hands the baton back to the goroutine that called Run: at
	// termination (queue drained or Stop), or when the goroutine driving
	// the loop was itself killed by an event it executed and must unwind.
	// The Run goroutine resumes driving either way; its loop condition
	// detects termination. Buffered so the send never blocks the sender.
	mainCh  chan struct{}
	stopped bool
	noPin   bool
	fp      uint64 // running hash of the executed event order

	pay     []payload // callback payload slots referenced by event.slot
	payFree []int32   // recycled payload slots

	// nowq is a FIFO bypass for events scheduled at the current time —
	// future completions, yields, spawn kick-offs. Such an event is always
	// younger (higher seq) than every queued event of the same timestamp,
	// so FIFO order is (t, seq) order and the heap's O(log n) sift is
	// avoided entirely for the same-timestamp churn of the protocol layer.
	nowq     []event
	nowqHead int
}

// New returns an empty kernel at time 0.
func New() *Kernel {
	return &Kernel{mainCh: make(chan struct{}, 1)}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of scheduled events that have not executed
// yet. Event callbacks can use it as a quiescence check: Pending() == 0
// means nothing else is in flight besides the running callback.
func (k *Kernel) Pending() int { return len(k.pq) + len(k.nowq) - k.nowqHead }

// SetPinned controls whether Run pins GOMAXPROCS to 1 (the default).
// Disable the pin when several independent kernels run concurrently —
// e.g. parallel experiment sweeps — where the process-wide GOMAXPROCS
// setting would serialize all of them.
func (k *Kernel) SetPinned(pinned bool) { k.noPin = !pinned }

// Fingerprint returns a hash chain over the executed event order: every
// popped event folds its (time, sequence) pair into the running value.
// Two runs with the same fingerprint executed the exact same events in the
// exact same order — the determinism regression tests rely on this.
func (k *Kernel) Fingerprint() uint64 { return k.fp }

// checkPast panics when t lies before now: it would make time run backwards.
func (k *Kernel) checkPast(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
}

// push inserts e with inlined sift-up.
func (k *Kernel) push(e event) {
	h := append(k.pq, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	k.pq = h
}

// pop removes and returns the minimum event with inlined sift-down (hole
// method: move the last element down instead of repeated swaps).
func (k *Kernel) pop() event {
	h := k.pq
	top := h[0]
	last := len(h) - 1
	e := h[last]
	h[last] = event{} // release payload references to the GC
	h = h[:last]
	k.pq = h
	if last > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= last {
				break
			}
			m := c
			end := c + 4
			if end > last {
				end = last
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return top
}

// sched enqueues e: same-timestamp events take the FIFO bypass, future
// events the heap. Both orders compose to the global (t, seq) order — see
// the nowq field comment.
func (k *Kernel) sched(e event) {
	if e.t == k.now {
		k.nowq = append(k.nowq, e)
		return
	}
	k.push(e)
}

// popNext removes and returns the globally next event: heap events of the
// current timestamp first (they are older than anything in the bypass),
// then the bypass FIFO, then the heap advances time.
func (k *Kernel) popNext() event {
	if len(k.pq) > 0 && k.pq[0].t == k.now {
		return k.pop()
	}
	if k.nowqHead < len(k.nowq) {
		e := k.nowq[k.nowqHead]
		k.nowq[k.nowqHead] = event{}
		k.nowqHead++
		if k.nowqHead == len(k.nowq) {
			k.nowq = k.nowq[:0]
			k.nowqHead = 0
		}
		return e
	}
	return k.pop()
}

// slot stores a callback payload and returns its table index.
func (k *Kernel) slot(p payload) int32 {
	if n := len(k.payFree); n > 0 {
		s := k.payFree[n-1]
		k.payFree = k.payFree[:n-1]
		k.pay[s] = p
		return s
	}
	k.pay = append(k.pay, p)
	return int32(len(k.pay) - 1)
}

// At schedules fn to run in event context at absolute time t. Scheduling in
// the past panics: it would make time run backwards.
func (k *Kernel) At(t Time, fn func()) {
	k.checkPast(t)
	k.seq++
	k.sched(event{t: t, seq: k.seq, slot: k.slot(payload{fn: fn})})
}

// AtCall schedules fn(arg) to run in event context at absolute time t.
// Unlike At it captures no closure: callers keep one long-lived fn and pass
// per-event state through arg (a pointer, so no boxing allocation either).
func (k *Kernel) AtCall(t Time, fn func(interface{}), arg interface{}) {
	k.checkPast(t)
	k.seq++
	k.sched(event{t: t, seq: k.seq, slot: k.slot(payload{hfn: fn, arg: arg})})
}

// atProc schedules p to resume at absolute time t, with no allocation.
func (k *Kernel) atProc(t Time, p *Proc) {
	k.checkPast(t)
	k.seq++
	k.sched(event{t: t, seq: k.seq, proc: p})
}

// After schedules fn to run in event context after delay d (d >= 0).
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+d, fn)
}

// Run executes events until the queue is empty or Stop is called. It
// returns an error if, at the end, some processes are still blocked — that
// indicates a deadlock (or a forgotten wake-up) in the simulated system.
//
// The simulation is strictly sequential: exactly one goroutine (the caller
// or one process) runs at any time; see doc.go for the baton-passing
// handoff that enforces it with one rendezvous per context switch. Running
// on a single P makes those handoffs cheap scheduler switches instead of
// cross-core futex wake-ups (~2x end-to-end), so Run pins GOMAXPROCS to 1
// for its duration and restores it afterwards — unless SetPinned(false)
// opted out because several kernels run concurrently.
func (k *Kernel) Run() error {
	if !k.noPin {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}
	k.loop(nil, false)
	var blocked []string
	for _, p := range k.procs {
		if !p.done {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		k.killAll()
		return &DeadlockError{Blocked: blocked, At: k.now}
	}
	return nil
}

// loop executes events on the calling goroutine — the current baton holder
// (see doc.go). self is nil for the Run goroutine; continuation marks a
// process goroutine whose body already returned and that is driving the
// loop only until it can hand the baton off. The loop ends when:
//
//   - it pops the wakeup of self: return, so park (and thus Wait/Await)
//     returns into the process body with zero channel operations;
//   - it pops the wakeup of another process: hand the baton over with one
//     buffered send; the Run goroutine then sleeps until the baton comes
//     back (termination, or a killed holder handing over) and resumes
//     driving, a continuation exits, and a parked process blocks on its
//     own rendezvous until its wakeup is popped elsewhere — or a kill
//     unwinds it;
//   - an event callback it just executed killed self (kill targets the
//     process whose goroutine is driving): hand the baton to the Run
//     goroutine and unwind — the body must never resume;
//   - the queue drains or Stop was called: the Run goroutine returns to
//     Run; anyone else signals the Run goroutine, then exits
//     (continuation) or blocks for the inevitable kill (a drained queue
//     with a parked process is a deadlock).
func (k *Kernel) loop(self *Proc, continuation bool) {
	for k.Pending() > 0 && !k.stopped {
		e := k.popNext()
		k.now = e.t
		k.fp = k.fp*0x9e3779b97f4a7c15 + (math.Float64bits(e.t) ^ e.seq)
		if p := e.proc; p != nil {
			if p.done {
				continue // killed while runnable; the pop is already folded
			}
			if p == self {
				return
			}
			p.resume <- procSignal{}
			if self == nil {
				// The baton returns on termination or from a killed
				// holder; either way, resume driving (the loop condition
				// detects termination).
				<-k.mainCh
				continue
			}
			if continuation {
				return // finished body: the goroutine exits
			}
			sig := <-self.resume
			if sig.kill {
				panic(killed{})
			}
			return // our wakeup was popped by another holder; park returns
		}
		pl := &k.pay[e.slot]
		hfn, arg, fn := pl.hfn, pl.arg, pl.fn
		*pl = payload{} // release references before the callback runs
		k.payFree = append(k.payFree, e.slot)
		if hfn != nil {
			hfn(arg)
		} else {
			fn()
		}
		if self != nil && !continuation && self.done {
			// The callback we just ran killed us. The body must not resume:
			// hand the baton to the Run goroutine and unwind. (done is only
			// ever written in kernel context, which we are, so this read is
			// race-free.)
			k.mainCh <- struct{}{}
			panic(killed{})
		}
	}
	if self == nil {
		return
	}
	k.mainCh <- struct{}{}
	if continuation {
		return
	}
	// Parked with no wakeup scheduled and nothing left to run: that is a
	// deadlock; Run (now holding the baton) will kill us.
	sig := <-self.resume
	if sig.kill {
		panic(killed{})
	}
}

// Stop makes Run return after the current event completes. Remaining
// processes are not killed; call Shutdown for that.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown force-terminates all live processes. It is safe to call after
// Run has returned; used by tests to avoid goroutine leaks.
func (k *Kernel) Shutdown() { k.killAll() }

func (k *Kernel) killAll() {
	for _, p := range k.procs {
		if !p.done {
			p.kill()
		}
	}
}

// DeadlockError reports processes that never completed.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v, blocked processes: %v", e.At, e.Blocked)
}
