package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
)

// Time is simulated time in microseconds.
type Time = float64

// event is one scheduled occurrence: a process wakeup (proc != nil) or a
// callback whose payload lives in the kernel's slot table (slot). Process
// wakeups — the most frequent event by far — carry their payload inline;
// callbacks pay one indirection. Keeping the queue entry at 32 bytes
// (vs. 56 with the callback variants unboxed inline) nearly halves the
// memory traffic of the sift operations, which dominate pop.
type event struct {
	t    Time
	seq  uint64
	proc *Proc
	slot int32
}

// payload holds a callback event's fields: a typed callback applied to arg,
// or a func() closure as the fallback. Slots are recycled through a free
// stack, so scheduling stays allocation-free in steady state.
type payload struct {
	hfn func(interface{})
	arg interface{}
	fn  func()
}

// before is the queue's strict ordering: time, then schedule order.
func (e *event) before(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// Stats are cumulative counters of kernel activity. Events counts every
// executed event — regular pops and lazy-tier executions (including
// skipped wakeups of killed processes). The delivery counters are
// maintained by the network layer: FusedDeliveries counts message hops
// delivered through the fused single-event pipeline (the arrive stage ran
// on the lazy tier), FusedBusyRecv the subset of those that found the
// receiver's CPU busy at arrival (the receive startup then queues behind
// it — still one regular event, but the case a send-time fusion would
// have had to fall back on), and TwoStageDeliveries counts hops through
// the classic arrive → ready event pair when two-stage delivery is
// forced. FusedDeliveries / (FusedDeliveries + TwoStageDeliveries) is the
// fused hit rate PERF.md tracks.
type Stats struct {
	Events             uint64
	FusedDeliveries    uint64
	FusedBusyRecv      uint64
	TwoStageDeliveries uint64
}

// Kernel is the simulation engine. The zero value is not usable; construct
// with New.
type Kernel struct {
	now Time
	seq uint64
	lq  ladderQueue // default event queue (ladder.go)
	hq  heapQueue   // oracle event queue, selected by SetHeapQueue
	// lazyq is the lazy event tier (AtLazyCall): callbacks executed
	// inline at the loop's pop boundary, in their exact (t, seq) queue
	// position, without costing a regular event pop. The network's fused
	// delivery runs every arrive stage here, making a message hop one
	// regular kernel event instead of two.
	lazyq ladderQueue
	// tq is the timer tier (TimerAt/CancelTimer, timer.go): cancelable
	// timeout events in an indexed heap, executed inline like the lazy
	// tier but removable without tombstones.
	tq timerQueue
	// useHeap routes scheduling through the retained 4-ary heap instead
	// of the ladder queue: the differential-test oracle, and a whole-run
	// A/B switch (default from the diva_heapq build tag).
	useHeap bool
	procs   []*Proc

	// Stat is written by the kernel and — for the delivery counters — by
	// the network layer; read it after Run for hit-rate reporting.
	Stat Stats
	// mainCh hands the baton back to the goroutine that called Run: at
	// termination (queue drained or Stop), or when the goroutine driving
	// the loop was itself killed by an event it executed and must unwind.
	// The Run goroutine resumes driving either way; its loop condition
	// detects termination. Buffered so the send never blocks the sender.
	mainCh  chan struct{}
	stopped bool
	noPin   bool
	fp      uint64 // running hash of the executed event order

	// Cooperative cancellation (cancel.go): when cancel is non-nil the
	// loop polls it every cancelCheckEvery executed events (cancelCtr is
	// only ever touched by the current baton holder — or the shard's own
	// executing goroutine — so it needs no synchronization); canceled
	// marks a run stopped by the flag rather than by Stop.
	cancel    *atomic.Bool
	cancelCtr uint32
	canceled  bool

	pay     []payload // callback payload slots referenced by event.slot
	payFree []int32   // recycled payload slots

	// nowq is a FIFO bypass for events scheduled at the current time —
	// future completions, yields, spawn kick-offs. Such an event is always
	// younger (higher seq) than every queued event of the same timestamp,
	// so FIFO order is (t, seq) order and the heap's O(log n) sift is
	// avoided entirely for the same-timestamp churn of the protocol layer.
	nowq     []event
	nowqHead int

	// sh is non-nil when this kernel is one shard of a Cluster
	// (cluster.go): sequence numbers then come from the cluster (direct
	// mode) or a per-window temporary namespace, the loop stops at window
	// horizons, and Run drives the whole cluster.
	sh *shard
}

// New returns an empty kernel at time 0.
func New() *Kernel {
	k := &Kernel{mainCh: make(chan struct{}, 1), useHeap: defaultHeapQueue}
	k.lq.init()
	k.lazyq.init()
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Pending returns the number of scheduled events that have not executed
// yet, including lazy-tier events. Event callbacks can use it as a
// quiescence check: Pending() == 0 means nothing else is in flight
// besides the running callback. On a clustered kernel the answer covers
// all shards: exact outside windows and in exclusive windows (where
// deferred sends and wakeups each count as the one event they will
// materialize into); in a multi-shard window it reports the count at
// window open, which is necessarily positive — quiescence gates stay
// conservatively closed (see cluster.go).
func (k *Kernel) Pending() int {
	if k.sh != nil {
		return k.sh.cl.pending(k)
	}
	return k.localPending()
}

// localPending counts this kernel's own unexecuted events across all
// tiers (the pre-cluster Pending).
func (k *Kernel) localPending() int {
	return k.lq.len() + k.hq.len() + k.lazyq.len() + k.tq.len() + len(k.nowq) - k.nowqHead
}

// minDue returns the timestamp of this kernel's earliest unexecuted
// event; ok is false when nothing is pending. The cluster coordinator
// derives window bounds from it between windows.
func (k *Kernel) minDue() (Time, bool) {
	var best Time
	ok := false
	if k.nowqHead < len(k.nowq) {
		best, ok = k.nowq[k.nowqHead].t, true
	}
	if k.useHeap {
		if k.hq.len() > 0 {
			if t := k.hq.h[0].t; !ok || t < best {
				best, ok = t, true
			}
		}
	} else if e := k.lq.peek(); e != nil {
		if !ok || e.t < best {
			best, ok = e.t, true
		}
	}
	if k.lazyq.len() > 0 {
		if e := k.lazyq.peek(); !ok || e.t < best {
			best, ok = e.t, true
		}
	}
	if te := k.tq.peek(); te != nil {
		if !ok || te.t < best {
			best, ok = te.t, true
		}
	}
	return best, ok
}

// remapSeqs rewrites the sequence numbers of every queued event through f
// (the boundary renumbering of temporary sequences). Within one shard and
// window, temporaries are allocated in the same relative order their
// final sequences are assigned in, so the rewrite preserves the strict
// (t, seq) order of any two queued events and every queue invariant.
func (k *Kernel) remapSeqs(f func(uint64) uint64) {
	k.lq.remapSeqs(f)
	k.hq.remapSeqs(f)
	k.lazyq.remapSeqs(f)
	k.tq.remapSeqs(f)
	for i := k.nowqHead; i < len(k.nowq); i++ {
		k.nowq[i].seq = f(k.nowq[i].seq)
	}
}

// InWindow reports whether this kernel is a shard currently executing
// inside a conservative window (the network layer defers cross-node
// sends exactly then).
func (k *Kernel) InWindow() bool { return k.sh != nil && k.sh.window }

// LogDefer records a deferred cross-node send in the shard's window op
// log, holding its place in the global sequence-allocation order until
// the boundary merge replays it.
func (k *Kernel) LogDefer() {
	k.sh.ops = append(k.sh.ops, opDefer)
	k.sh.deferN++
}

// InjectCallAt buffers a callback event carrying a pre-assigned final
// sequence number for this shard's queue (lazy tier when lazy is set).
// Only the cluster's deferred-send replay uses it, during a boundary
// merge; the buffered events are pushed after the queues are renumbered.
func (k *Kernel) InjectCallAt(t Time, seq uint64, lazy bool, fn func(interface{}), arg interface{}) {
	cl := k.sh.cl
	cl.mat = append(cl.mat, matEvent{k: k, lazy: lazy,
		e: event{t: t, seq: seq, slot: k.slot(payload{hfn: fn, arg: arg})}})
}

// SetHeapQueue selects the event queue implementation: the retained 4-ary
// heap oracle (true) or the default ladder queue (false). Both pop in the
// exact same (t, seq) order, so whole-run results are identical; the
// switch exists for A/B tests and the diva_heapq build tag flips the
// default. It must be called before any event is scheduled.
func (k *Kernel) SetHeapQueue(useHeap bool) {
	if k.Pending() > 0 {
		panic("sim: SetHeapQueue with events already scheduled")
	}
	k.useHeap = useHeap
}

// SetPinned controls whether Run pins GOMAXPROCS to 1 (the default).
// Disable the pin when several independent kernels run concurrently —
// e.g. parallel experiment sweeps — where the process-wide GOMAXPROCS
// setting would serialize all of them.
func (k *Kernel) SetPinned(pinned bool) { k.noPin = !pinned }

// Fingerprint returns a hash chain over the executed event order: every
// popped event folds its (time, sequence) pair into the running value.
// Two runs with the same fingerprint executed the exact same events in the
// exact same order — the determinism regression tests rely on this.
func (k *Kernel) Fingerprint() uint64 { return k.fp }

// fold records an executed event's (time, sequence) pair in the
// fingerprint hash chain. Every executed event — regular pop, FIFO
// bypass, or lazy tier — folds through this one function, so the
// bit-identical-order guarantees pinned by the A/B tests cannot drift
// between execution sites. On a shard executing inside a window the
// event is logged instead: the boundary merge folds it into the cluster
// fingerprint with its final sequence, in exact global order.
func (k *Kernel) fold(e *event) {
	if sh := k.sh; sh != nil {
		if sh.window {
			sh.logExec(e)
			return
		}
		sh.cl.fp = sh.cl.fp*fpGolden + (math.Float64bits(e.t) ^ e.seq)
		return
	}
	k.fp = k.fp*fpGolden + (math.Float64bits(e.t) ^ e.seq)
}

// allocSeq returns the next sequence number for an event scheduled by
// this kernel: the kernel's own monotone counter normally; on a clustered
// kernel, the cluster's global counter (direct mode) or a per-window
// temporary above the watermark, recorded in the op log so the boundary
// merge can assign the final sequence in exact global allocation order.
func (k *Kernel) allocSeq() uint64 {
	if sh := k.sh; sh != nil {
		if sh.window {
			k.seq++
			sh.ops = append(sh.ops, opLocal)
			return k.seq
		}
		cl := sh.cl
		cl.gseq++
		return cl.gseq
	}
	k.seq++
	return k.seq
}

// SkipSeq consumes one sequence number without scheduling an event. The
// network's reactive mode calls it when a routed message is dropped at a
// failure point: the sequential kernel then burns the sequence its arrival
// event would have carried, mirroring the sharded cluster — whose boundary
// merge allocates a global sequence per deferred send before it knows the
// replay outcome — so both execution modes number every subsequent event
// identically. Dropped events are never executed, so the skipped sequence
// never reaches the fingerprint in either mode.
func (k *Kernel) SkipSeq() { k.allocSeq() }

// takeSlot fetches and recycles a callback event's payload. The slot is
// recycled without clearing: it is fully overwritten on reuse, and until
// then it retains only a bounded number of already-executed callback
// references.
func (k *Kernel) takeSlot(slot int32) payload {
	pl := k.pay[slot]
	k.payFree = append(k.payFree, slot)
	return pl
}

// checkPast panics when t lies before now: it would make time run backwards.
func (k *Kernel) checkPast(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
}

// sched enqueues e: same-timestamp events take the FIFO bypass, future
// events the selected queue (ladder by default, heap in oracle mode).
// Both orders compose to the global (t, seq) order — see the nowq field
// comment.
func (k *Kernel) sched(e event) {
	if e.t == k.now {
		k.nowq = append(k.nowq, e)
		return
	}
	if k.useHeap {
		k.hq.push(e)
		return
	}
	k.lq.push(e)
}

// next selects and removes the globally next event by strict (t, seq)
// order across all tiers — the main queue, the same-timestamp FIFO
// bypass, and the lazy tier. Due lazy events are executed inline here
// (with the clock advanced to their timestamps, exactly as if popped);
// the returned event is always a regular one. ok is false when the
// pending events were all lazy (everything ran inline) or a lazy
// callback stopped the kernel — the caller re-evaluates.
func (k *Kernel) next() (event, bool) {
	for {
		var reg *event
		if k.useHeap {
			if k.hq.len() > 0 {
				reg = &k.hq.h[0]
			}
		} else {
			reg = k.lq.peek()
		}
		fromNowq := false
		if k.nowqHead < len(k.nowq) {
			// A bypass entry is younger than every queued event of its
			// timestamp, so the (t, seq) comparison reproduces the
			// "queue first at equal time" rule exactly.
			if h := &k.nowq[k.nowqHead]; reg == nil || h.before(reg) {
				reg = h
				fromNowq = true
			}
		}
		// The inline tiers — lazy events and timers — execute at the pop
		// boundary in their exact (t, seq) positions. Pick the earlier of
		// the two tier heads, then compare against the regular candidate.
		le := k.lazyq.peek()
		te := k.tq.peek()
		if le != nil || te != nil {
			useTimer := le == nil || (te != nil && (te.t < le.t || (te.t == le.t && te.seq < le.seq)))
			var ct Time
			var cs uint64
			if useTimer {
				ct, cs = te.t, te.seq
			} else {
				ct, cs = le.t, le.seq
			}
			if reg == nil || ct < reg.t || (ct == reg.t && cs < reg.seq) {
				if sh := k.sh; sh != nil && sh.window && ct >= sh.horizon {
					// The globally next local event lies at or beyond the
					// window horizon: the window is over for this shard.
					sh.paused = true
					return event{}, false
				}
				if useTimer {
					t := k.tq.popFront()
					k.now = t.t
					k.Stat.Events++
					e := event{t: t.t, seq: t.seq}
					k.fold(&e)
					t.fn(t.arg)
				} else {
					e := k.lazyq.popFront()
					k.now = e.t
					k.Stat.Events++
					k.fold(&e)
					pl := k.takeSlot(e.slot)
					pl.hfn(pl.arg)
				}
				if k.stopped {
					return event{}, false
				}
				continue // the callback may have refilled any tier
			}
		}
		if reg == nil {
			return event{}, false
		}
		if sh := k.sh; sh != nil && sh.window && reg.t >= sh.horizon {
			sh.paused = true
			return event{}, false
		}
		if fromNowq {
			e := *reg
			k.nowqHead++
			if k.nowqHead == len(k.nowq) {
				k.nowq = k.nowq[:0]
				k.nowqHead = 0
			}
			return e, true
		}
		if k.useHeap {
			return k.hq.pop(), true
		}
		return k.lq.popFront(), true
	}
}

// slot stores a callback payload and returns its table index.
func (k *Kernel) slot(p payload) int32 {
	if n := len(k.payFree); n > 0 {
		s := k.payFree[n-1]
		k.payFree = k.payFree[:n-1]
		k.pay[s] = p
		return s
	}
	k.pay = append(k.pay, p)
	return int32(len(k.pay) - 1)
}

// At schedules fn to run in event context at absolute time t. Scheduling in
// the past panics: it would make time run backwards.
func (k *Kernel) At(t Time, fn func()) {
	k.checkPast(t)
	k.sched(event{t: t, seq: k.allocSeq(), slot: k.slot(payload{fn: fn})})
}

// AtCall schedules fn(arg) to run in event context at absolute time t.
// Unlike At it captures no closure: callers keep one long-lived fn and pass
// per-event state through arg (a pointer, so no boxing allocation either).
func (k *Kernel) AtCall(t Time, fn func(interface{}), arg interface{}) {
	k.checkPast(t)
	k.sched(event{t: t, seq: k.allocSeq(), slot: k.slot(payload{hfn: fn, arg: arg})})
}

// AtLazyCall schedules fn(arg) on the lazy event tier. The callback runs
// in event context at the exact (t, schedule-order) position a regular
// AtCall event would occupy — same Now(), same interleaving with every
// other event, same sequence numbers allocated by everything it schedules
// — but it is executed inline inside the loop's event selection instead
// of costing a regular queue pop, and it can never be the event that
// resumes a process. Whole-run behavior is therefore bit-identical to
// AtCall; the point is price: the network's fused delivery runs the
// per-hop arrive stage here, halving the regular event traffic of every
// message. The callback must not block; scheduling further events (lazy
// or regular) from it is fine.
func (k *Kernel) AtLazyCall(t Time, fn func(interface{}), arg interface{}) {
	k.checkPast(t)
	k.lazyq.push(event{t: t, seq: k.allocSeq(), slot: k.slot(payload{hfn: fn, arg: arg})})
}

// atProc schedules p to resume at absolute time t, with no allocation. A
// process owned by another shard of the same cluster is routed through
// the cluster's cross-shard wakeup path (deferred past the horizon,
// injected in an exclusive window).
func (k *Kernel) atProc(t Time, p *Proc) {
	if p.k != k {
		if k.sh == nil || p.k.sh == nil || p.k.sh.cl != k.sh.cl {
			panic("sim: scheduling a wakeup for a process of an unrelated kernel")
		}
		k.sh.cl.crossWake(k, t, p)
		return
	}
	k.checkPast(t)
	k.sched(event{t: t, seq: k.allocSeq(), proc: p})
}

// After schedules fn to run in event context after delay d (d >= 0).
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+d, fn)
}

// Run executes events until the queue is empty or Stop is called. It
// returns an error if, at the end, some processes are still blocked — that
// indicates a deadlock (or a forgotten wake-up) in the simulated system.
//
// The simulation is strictly sequential: exactly one goroutine (the caller
// or one process) runs at any time; see doc.go for the baton-passing
// handoff that enforces it with one rendezvous per context switch. Running
// on a single P makes those handoffs cheap scheduler switches instead of
// cross-core futex wake-ups (~2x end-to-end), so Run pins GOMAXPROCS to 1
// for its duration and restores it afterwards — unless SetPinned(false)
// opted out because several kernels run concurrently.
func (k *Kernel) Run() error {
	if k.sh != nil {
		// A clustered kernel is one shard: Run drives the whole cluster
		// under conservative windows (cluster.go), unpinned so shards can
		// execute in parallel.
		return k.sh.cl.Run()
	}
	if !k.noPin {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}
	if k.cancelRequested() {
		// Canceled before the first event (e.g. an already-expired
		// deadline): stop deterministically without executing anything.
		k.canceled = true
		k.stopped = true
	}
	k.loop(nil, false)
	if k.canceled {
		k.killAll()
		return &CanceledError{At: k.now, Events: k.Stat.Events}
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		k.killAll()
		return &DeadlockError{Blocked: blocked, At: k.now}
	}
	return nil
}

// loop executes events on the calling goroutine — the current baton holder
// (see doc.go). self is nil for the Run goroutine; continuation marks a
// process goroutine whose body already returned and that is driving the
// loop only until it can hand the baton off. The loop ends when:
//
//   - it pops the wakeup of self: return, so park (and thus Wait/Await)
//     returns into the process body with zero channel operations;
//   - it pops the wakeup of another process: hand the baton over with one
//     buffered send; the Run goroutine then sleeps until the baton comes
//     back (termination, or a killed holder handing over) and resumes
//     driving, a continuation exits, and a parked process blocks on its
//     own rendezvous until its wakeup is popped elsewhere — or a kill
//     unwinds it;
//   - an event callback it just executed killed self (kill targets the
//     process whose goroutine is driving): hand the baton to the Run
//     goroutine and unwind — the body must never resume;
//   - the queue drains or Stop was called: the Run goroutine returns to
//     Run; anyone else signals the Run goroutine, then exits
//     (continuation) or blocks for the inevitable kill (a drained queue
//     with a parked process is a deadlock).
func (k *Kernel) loop(self *Proc, continuation bool) {
	for k.localPending() > 0 && !k.stopped {
		if sh := k.sh; sh != nil && sh.window && (sh.paused || sh.cl.curtail) {
			break // window over: horizon reached, or curtailed by an injection
		}
		if k.cancel != nil && k.checkCancel() {
			break // cancellation checkpoint hit; Run returns CanceledError
		}
		e, ok := k.next()
		if !ok {
			continue // only lazy events were due (or the horizon hit); re-evaluate
		}
		k.now = e.t
		k.Stat.Events++
		k.fold(&e)
		if p := e.proc; p != nil {
			if p.done {
				continue // killed while runnable; the pop is already folded
			}
			if p == self {
				return
			}
			p.resume <- procSignal{}
			if self == nil {
				// The baton returns on termination or from a killed
				// holder; either way, resume driving (the loop condition
				// detects termination).
				<-k.mainCh
				continue
			}
			if continuation {
				return // finished body: the goroutine exits
			}
			sig := <-self.resume
			if sig.kill {
				panic(killed{})
			}
			return // our wakeup was popped by another holder; park returns
		}
		pl := k.takeSlot(e.slot)
		if pl.hfn != nil {
			pl.hfn(pl.arg)
		} else {
			pl.fn()
		}
		if self != nil && !continuation && self.done {
			// The callback we just ran killed us. The body must not resume:
			// hand the baton to the Run goroutine and unwind. (done is only
			// ever written in kernel context, which we are, so this read is
			// race-free.)
			k.mainCh <- struct{}{}
			panic(killed{})
		}
	}
	if self == nil {
		return
	}
	k.mainCh <- struct{}{}
	if continuation {
		return
	}
	// Parked with no wakeup scheduled and nothing left to run: that is a
	// deadlock; Run (now holding the baton) will kill us.
	sig := <-self.resume
	if sig.kill {
		panic(killed{})
	}
}

// Stop makes Run return after the current event completes. Remaining
// processes are not killed; call Shutdown for that.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown force-terminates all live processes (on every shard, for a
// clustered kernel). It is safe to call after Run has returned; used by
// tests to avoid goroutine leaks.
func (k *Kernel) Shutdown() {
	if k.sh != nil {
		k.sh.cl.shutdown()
		return
	}
	k.killAll()
}

func (k *Kernel) killAll() {
	for _, p := range k.procs {
		if !p.done {
			p.kill()
		}
	}
}

// DeadlockError reports processes that never completed.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v, blocked processes: %v", e.At, e.Blocked)
}
