// Package sim implements a deterministic, sequential discrete-event
// simulation kernel with cooperative processes.
//
// The kernel advances virtual time by executing events from a priority
// queue. Exactly one thing runs at a time: either an event callback or one
// process goroutine. Processes hand control back to the kernel whenever they
// block (Wait, Await, ...), so all executions are serialized and the whole
// simulation is reproducible — same inputs, same event order, same results.
//
// Two execution contexts exist:
//
//   - Event context: callbacks scheduled with At/After run inline in the
//     kernel loop. They must not block. Protocol handlers (message
//     deliveries) run in this context.
//   - Process context: goroutines spawned with Spawn. They may block on
//     futures and timed waits. Application programs (one per simulated
//     processor) run in this context.
//
// Time is measured in microseconds (float64); ties are broken by schedule
// order, which makes runs deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sort"
)

// Time is simulated time in microseconds.
type Time = float64

type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine. The zero value is not usable; construct
// with New.
type Kernel struct {
	now     Time
	seq     uint64
	pq      eventHeap
	procs   []*Proc
	parked  chan struct{} // signaled by a proc when it hands control back
	stopped bool
}

// New returns an empty kernel at time 0.
func New() *Kernel {
	return &Kernel{parked: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in event context at absolute time t. Scheduling in
// the past panics: it would make time run backwards.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
	k.seq++
	heap.Push(&k.pq, event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run in event context after delay d (d >= 0).
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+d, fn)
}

// Run executes events until the queue is empty or Stop is called. It
// returns an error if, at the end, some processes are still blocked — that
// indicates a deadlock (or a forgotten wake-up) in the simulated system.
//
// The simulation is strictly sequential: exactly one goroutine (the kernel
// or one process) runs at any time. Running on a single P makes the
// kernel/process handoffs cheap scheduler switches instead of cross-core
// futex wake-ups (~2x end-to-end), so Run pins GOMAXPROCS to 1 for its
// duration and restores it afterwards.
func (k *Kernel) Run() error {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	for len(k.pq) > 0 && !k.stopped {
		e := heap.Pop(&k.pq).(event)
		k.now = e.t
		e.fn()
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		k.killAll()
		return &DeadlockError{Blocked: blocked, At: k.now}
	}
	return nil
}

// Stop makes Run return after the current event completes. Remaining
// processes are not killed; call Shutdown for that.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown force-terminates all live processes. It is safe to call after
// Run has returned; used by tests to avoid goroutine leaks.
func (k *Kernel) Shutdown() { k.killAll() }

func (k *Kernel) killAll() {
	for _, p := range k.procs {
		if !p.done {
			p.kill()
		}
	}
}

// DeadlockError reports processes that never completed.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v, blocked processes: %v", e.At, e.Blocked)
}

// runProc transfers control to p and waits until p parks again.
func (k *Kernel) runProc(p *Proc) {
	p.resume <- procSignal{}
	<-k.parked
}
