// Package sim implements a deterministic, sequential discrete-event
// simulation kernel with cooperative processes.
//
// The kernel advances virtual time by executing events from a priority
// queue. Exactly one thing runs at a time: either an event callback or one
// process goroutine. Processes hand control back to the kernel whenever they
// block (Wait, Await, ...), so all executions are serialized and the whole
// simulation is reproducible — same inputs, same event order, same results.
//
// Two execution contexts exist:
//
//   - Event context: callbacks scheduled with At/After/AtCall run inline in
//     the kernel loop. They must not block. Protocol handlers (message
//     deliveries) run in this context.
//   - Process context: goroutines spawned with Spawn. They may block on
//     futures and timed waits. Application programs (one per simulated
//     processor) run in this context.
//
// Time is measured in microseconds (float64); ties are broken by schedule
// order, which makes runs deterministic.
//
// The event queue is the hottest data structure of the whole simulator, so
// it avoids container/heap: events live unboxed in a plain []event backing
// array organized as a 4-ary min-heap with inlined sift-up/sift-down (a
// 4-ary heap halves the tree depth vs. a binary heap and keeps the four
// children of a node on one cache line pair). An event is a small tagged
// union — a process wakeup, a typed callback with one pointer argument, or
// a func() closure as the fallback — so the hot paths (proc wakeups,
// message deliveries) schedule with zero allocations.
package sim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
)

// Time is simulated time in microseconds.
type Time = float64

// event is one scheduled occurrence. Exactly one of the payload fields is
// set: proc (resume a parked process), hfn (typed callback applied to arg),
// or fn (closure fallback). Keeping the variants unboxed in one struct is
// what makes the queue allocation-free.
type event struct {
	t    Time
	seq  uint64
	proc *Proc
	hfn  func(interface{})
	arg  interface{}
	fn   func()
}

// before is the queue's strict ordering: time, then schedule order.
func (e *event) before(o *event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	return e.seq < o.seq
}

// Kernel is the simulation engine. The zero value is not usable; construct
// with New.
type Kernel struct {
	now     Time
	seq     uint64
	pq      []event // 4-ary min-heap ordered by (t, seq)
	procs   []*Proc
	parked  chan struct{} // signaled by a proc when it hands control back
	stopped bool
	noPin   bool
	fp      uint64 // running hash of the executed event order
}

// New returns an empty kernel at time 0.
func New() *Kernel {
	return &Kernel{parked: make(chan struct{})}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// SetPinned controls whether Run pins GOMAXPROCS to 1 (the default).
// Disable the pin when several independent kernels run concurrently —
// e.g. parallel experiment sweeps — where the process-wide GOMAXPROCS
// setting would serialize all of them.
func (k *Kernel) SetPinned(pinned bool) { k.noPin = !pinned }

// Fingerprint returns a hash chain over the executed event order: every
// popped event folds its (time, sequence) pair into the running value.
// Two runs with the same fingerprint executed the exact same events in the
// exact same order — the determinism regression tests rely on this.
func (k *Kernel) Fingerprint() uint64 { return k.fp }

// checkPast panics when t lies before now: it would make time run backwards.
func (k *Kernel) checkPast(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, k.now))
	}
}

// push inserts e with inlined sift-up.
func (k *Kernel) push(e event) {
	h := append(k.pq, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !h[i].before(&h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	k.pq = h
}

// pop removes and returns the minimum event with inlined sift-down (hole
// method: move the last element down instead of repeated swaps).
func (k *Kernel) pop() event {
	h := k.pq
	top := h[0]
	last := len(h) - 1
	e := h[last]
	h[last] = event{} // release payload references to the GC
	h = h[:last]
	k.pq = h
	if last > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= last {
				break
			}
			m := c
			end := c + 4
			if end > last {
				end = last
			}
			for j := c + 1; j < end; j++ {
				if h[j].before(&h[m]) {
					m = j
				}
			}
			if !h[m].before(&e) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = e
	}
	return top
}

// At schedules fn to run in event context at absolute time t. Scheduling in
// the past panics: it would make time run backwards.
func (k *Kernel) At(t Time, fn func()) {
	k.checkPast(t)
	k.seq++
	k.push(event{t: t, seq: k.seq, fn: fn})
}

// AtCall schedules fn(arg) to run in event context at absolute time t.
// Unlike At it captures no closure: callers keep one long-lived fn and pass
// per-event state through arg (a pointer, so no boxing allocation either).
func (k *Kernel) AtCall(t Time, fn func(interface{}), arg interface{}) {
	k.checkPast(t)
	k.seq++
	k.push(event{t: t, seq: k.seq, hfn: fn, arg: arg})
}

// atProc schedules p to resume at absolute time t, with no allocation.
func (k *Kernel) atProc(t Time, p *Proc) {
	k.checkPast(t)
	k.seq++
	k.push(event{t: t, seq: k.seq, proc: p})
}

// After schedules fn to run in event context after delay d (d >= 0).
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic("sim: negative delay")
	}
	k.At(k.now+d, fn)
}

// Run executes events until the queue is empty or Stop is called. It
// returns an error if, at the end, some processes are still blocked — that
// indicates a deadlock (or a forgotten wake-up) in the simulated system.
//
// The simulation is strictly sequential: exactly one goroutine (the kernel
// or one process) runs at any time. Running on a single P makes the
// kernel/process handoffs cheap scheduler switches instead of cross-core
// futex wake-ups (~2x end-to-end), so Run pins GOMAXPROCS to 1 for its
// duration and restores it afterwards — unless SetPinned(false) opted out
// because several kernels run concurrently.
func (k *Kernel) Run() error {
	if !k.noPin {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	}
	for len(k.pq) > 0 && !k.stopped {
		e := k.pop()
		k.now = e.t
		k.fp = k.fp*0x9e3779b97f4a7c15 + (math.Float64bits(e.t) ^ e.seq)
		switch {
		case e.proc != nil:
			k.runProc(e.proc)
		case e.hfn != nil:
			e.hfn(e.arg)
		default:
			e.fn()
		}
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		k.killAll()
		return &DeadlockError{Blocked: blocked, At: k.now}
	}
	return nil
}

// Stop makes Run return after the current event completes. Remaining
// processes are not killed; call Shutdown for that.
func (k *Kernel) Stop() { k.stopped = true }

// Shutdown force-terminates all live processes. It is safe to call after
// Run has returned; used by tests to avoid goroutine leaks.
func (k *Kernel) Shutdown() { k.killAll() }

func (k *Kernel) killAll() {
	for _, p := range k.procs {
		if !p.done {
			p.kill()
		}
	}
}

// DeadlockError reports processes that never completed.
type DeadlockError struct {
	Blocked []string
	At      Time
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at t=%v, blocked processes: %v", e.At, e.Blocked)
}

// runProc transfers control to p and waits until p parks again.
func (k *Kernel) runProc(p *Proc) {
	p.resume <- procSignal{}
	<-k.parked
}
