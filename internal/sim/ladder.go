package sim

import (
	"math"
	"math/bits"
)

// ladderQueue is the kernel's default event queue: a ladder/calendar queue
// with an O(1) sorted-epoch front, rung buckets partitioned by timestamp,
// and an unsorted overflow tail. Amortized it does O(1) work per event —
// every event is appended to a bucket or the tail a bounded number of
// times and participates in exactly one sort whose cost is shared by its
// whole epoch — where a heap pays O(log n) sift traffic on every push and
// pop. Pop order is provably identical to the heap's strict (t, seq)
// order; the retained heapQueue (heapq.go) is the differential-test
// oracle pinning that claim (ladder_test.go).
//
// Structure, nearest times first:
//
//	front   sorted []event, consumed from the head: the current "epoch".
//	        All queue minima live here; pop is an index increment.
//	rungs   a stack of rungs, each splitting a time interval into
//	        lqBuckets equal-width buckets of unsorted events. rungs[d+1]
//	        always refines one bucket of rungs[d], so the remaining
//	        ranges nest: front < rungs[deepest] < ... < rungs[0] < tail.
//	tail    unsorted far-future events beyond the shallowest rung.
//
// Invariants (the exactness argument):
//
//  1. Every event in front has t < frontEnd; every event in a rung lies
//     in that rung's unconsumed range (above frontEnd and every deeper
//     rung, below the rung's end); every tail event has t >= the
//     shallowest rung's end (or >= frontEnd when no rungs exist). The
//     partition is decided with canonical bucket-edge comparisons
//     (edge(i) = start + width*i, computed identically on every path),
//     so floating-point rounding can never place an event on the wrong
//     side of a boundary.
//  2. Pops only ever come from the sorted front, and the front is
//     refilled only when empty — from the next nonempty bucket of the
//     deepest rung (sorted by (t, seq)), recursively spreading
//     oversized buckets into child rungs, or by converting the tail
//     into a fresh rung. By (1) the refill holds exactly the globally
//     smallest remaining events.
//  3. Ties are broken by seq everywhere a sort or an insertion happens,
//     and equal-t events can never straddle a partition boundary in the
//     wrong order: boundaries are half-open with canonical comparisons,
//     and any region consumed earlier only ever held events scheduled
//     earlier (seq is globally monotone).
//
// Pushes below frontEnd insert into the sorted front (binary search +
// memmove); a front grown past lqFrontCap spills into a fresh deepest
// rung so the insertion cost stays bounded.
type ladderQueue struct {
	n int // total events across front, rungs and tail

	front    []event // sorted ascending by (t, seq), consumed from fh
	fh       int     // head index into front
	frontEnd Time    // exclusive time bound of the front partition

	rungs  []*lrung // rungs[len-1] is the deepest (currently consumed)
	spare  []*lrung // recycled rung structs (bucket capacity retained)
	idxBuf []uint8  // scratch bucket indices for spread

	tail []event // unsorted overflow beyond the shallowest rung

	sortBuf []event // cached epoch-sort scratch, reused across materializations
}

const (
	lqBuckets    = 32 // buckets per rung
	lqSpawn      = 64 // bucket/tail size beyond which it becomes a rung
	lqFrontCap   = 32 // live front size beyond which a push spills it
	lqMaxRungs   = 12 // depth cap; beyond it buckets are sorted as-is
	lqSmallEpoch = 24 // epoch size at or below which insertion sort runs directly
)

// lrung splits [start, end) into lqBuckets equal-width buckets. occ is
// the nonempty-bucket bitmask: bit b set iff bkts[b] holds events, so
// consumed buckets need no cursor and finding the next epoch is one
// TrailingZeros instead of a scan.
type lrung struct {
	start Time
	width Time
	end   Time
	n     int    // events remaining across all buckets
	occ   uint32 // nonempty-bucket bits (lqBuckets <= 32)
	bkts  [lqBuckets][]event
}

// edge returns the canonical lower boundary of bucket i. Every partition
// decision compares against this exact expression, so all placements
// agree even when (t-start)/width rounds across a boundary.
func (r *lrung) edge(i int) Time { return r.start + r.width*Time(i) }

// bucketOf returns the canonical bucket index of t: the unique i with
// edge(i) <= t < edge(i+1), clamped to the rung.
func (r *lrung) bucketOf(t Time) int {
	f := (t - r.start) / r.width
	i := 0
	if f >= lqBuckets {
		i = lqBuckets - 1
	} else if f > 0 {
		i = int(f)
	}
	for i > 0 && t < r.edge(i) {
		i--
	}
	for i+1 < lqBuckets && t >= r.edge(i+1) {
		i++
	}
	return i
}

// add appends e to its canonical bucket. The caller has checked that e
// lies in the rung's remaining (unconsumed) range, so the bucket it
// lands in has not been materialized yet.
func (r *lrung) add(e event) {
	b := r.bucketOf(e.t)
	r.bkts[b] = append(r.bkts[b], e)
	r.occ |= 1 << b
	r.n++
}

// spread bulk-distributes evs into a fresh rung's buckets with
// exact-capacity allocation: one pass bins, then each touched bucket is
// sized once, then events are placed — no append-doubling garbage, which
// dominated the ladder's allocation profile when clustered epochs spawned
// child rungs repeatedly.
func (q *ladderQueue) spread(r *lrung, evs []event) {
	if cap(q.idxBuf) < len(evs) {
		q.idxBuf = make([]uint8, len(evs))
	}
	idx := q.idxBuf[:len(evs)]
	var cnt [lqBuckets]int32
	for i := range evs {
		b := r.bucketOf(evs[i].t)
		idx[i] = uint8(b)
		cnt[b]++
	}
	for b, c := range cnt {
		if c > 0 {
			if cap(r.bkts[b]) < int(c) {
				r.bkts[b] = make([]event, 0, c)
			}
			r.occ |= 1 << b
		}
	}
	for i := range evs {
		b := idx[i]
		r.bkts[b] = append(r.bkts[b], evs[i])
	}
	r.n += len(evs)
}

func (q *ladderQueue) init() {
	q.frontEnd = math.Inf(1)
}

func (q *ladderQueue) len() int { return q.n }

// push inserts e, deciding its tier by the nested range invariant.
func (q *ladderQueue) push(e event) {
	q.n++
	if e.t < q.frontEnd {
		q.pushFront(e)
		return
	}
	for i := len(q.rungs) - 1; i >= 0; i-- {
		r := q.rungs[i]
		if e.t < r.end {
			r.add(e)
			return
		}
	}
	q.tail = append(q.tail, e)
}

// pushFront inserts e into the sorted front at its (t, seq) position.
func (q *ladderQueue) pushFront(e event) {
	if q.fh == len(q.front) {
		q.front = append(q.front[:0], e)
		q.fh = 0
		return
	}
	if len(q.front)-q.fh >= lqFrontCap && q.spillFront() {
		// The front became a rung; re-route through the normal tiers.
		q.n--
		q.push(e)
		return
	}
	// Binary search for the first element after e.
	lo, hi := q.fh, len(q.front)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.front[mid].before(&e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	q.front = append(q.front, event{})
	copy(q.front[lo+1:], q.front[lo:len(q.front)-1])
	q.front[lo] = e
}

// spillFront converts the live front into a fresh deepest rung so sorted
// insertion never degenerates past lqFrontCap. Reports false when the
// front cannot be subdivided (zero time span or rung depth exhausted).
func (q *ladderQueue) spillFront() bool {
	if len(q.rungs) >= lqMaxRungs {
		return false
	}
	live := q.front[q.fh:]
	start, max := live[0].t, live[len(live)-1].t
	end := q.frontEnd
	if math.IsInf(end, 1) {
		// No outer tier bounds the front; close the rung just above its
		// current maximum. Later events go to the tail, as usual.
		end = math.Nextafter(max, math.Inf(1))
	}
	r := q.newRung(start, end)
	if r == nil {
		return false
	}
	q.spread(r, live)
	q.front, q.fh = q.front[:0], 0
	q.rungs = append(q.rungs, r)
	q.frontEnd = start
	return true
}

// newRung returns a recycled (or fresh) rung over [start, end), or nil
// when the interval is too narrow to subdivide.
func (q *ladderQueue) newRung(start, end Time) *lrung {
	width := (end - start) / lqBuckets
	if !(width > 0) {
		return nil
	}
	var r *lrung
	if k := len(q.spare); k > 0 {
		r = q.spare[k-1]
		q.spare = q.spare[:k-1]
	} else {
		r = new(lrung)
	}
	r.start, r.width, r.end, r.n, r.occ = start, width, end, 0, 0
	return r
}

// peek returns a pointer to the minimum event; nil when empty. It may
// materialize the next epoch into the front (amortized against pops).
func (q *ladderQueue) peek() *event {
	if !q.ensureFront() {
		return nil
	}
	return &q.front[q.fh]
}

// pop removes and returns the minimum event. Consumed entries are left
// in place until their backing is reused: an event holds no payload —
// only a *Proc (alive via Kernel.procs regardless) or a payload-table
// slot index — so stale copies retain nothing the GC could free.
func (q *ladderQueue) pop() event {
	q.ensureFront()
	return q.popFront()
}

// popFront removes the front head; the caller has already peeked it (so
// the front is known nonempty). Small enough to inline into the kernel's
// event selection.
func (q *ladderQueue) popFront() event {
	e := q.front[q.fh]
	q.fh++
	q.n--
	return e
}

// ensureFront refills the sorted front from the deeper tiers until it is
// nonempty; reports false when the whole queue is empty.
func (q *ladderQueue) ensureFront() bool {
	for q.fh == len(q.front) {
		if d := len(q.rungs) - 1; d >= 0 {
			r := q.rungs[d]
			if r.n == 0 {
				q.spare = append(q.spare, r)
				q.rungs[d] = nil
				q.rungs = q.rungs[:d]
				continue
			}
			c := bits.TrailingZeros32(r.occ)
			r.occ &^= 1 << c
			b := r.bkts[c]
			r.n -= len(b)
			bEnd := r.edge(c + 1)
			if c == lqBuckets-1 {
				bEnd = r.end
			}
			if len(b) > lqSpawn && len(q.rungs) < lqMaxRungs {
				if child := q.newRung(r.edge(c), bEnd); child != nil {
					q.spread(child, b)
					r.bkts[c] = b[:0]
					q.rungs = append(q.rungs, child)
					continue
				}
			}
			// This bucket is the next epoch: sort it in place and swap
			// it in as the front — the consumed front backing becomes
			// the bucket's empty backing, no copying. spread's
			// exact-capacity allocation keeps the swapped capacities
			// from churning.
			q.sortEpoch(b)
			old := q.front[:0]
			q.front, q.fh = b, 0
			r.bkts[c] = old
			q.frontEnd = bEnd
			continue
		}
		if len(q.tail) == 0 {
			return false
		}
		q.convertTail()
	}
	return true
}

// convertTail turns the unsorted tail into a fresh rung 0 — or, when it
// is small or spans no time range, directly into the sorted front.
func (q *ladderQueue) convertTail() {
	min, max := q.tail[0].t, q.tail[0].t
	for _, e := range q.tail[1:] {
		if e.t < min {
			min = e.t
		}
		if e.t > max {
			max = e.t
		}
	}
	// A tail beyond the front cap becomes a rung, closed just above max
	// so the maximum's bucket is half-open like every other; new arrivals
	// beyond it re-enter the tail. Smaller tails (a near-empty queue)
	// skip the rung machinery and become the sorted front directly —
	// should the queue then grow while frontEnd sits past every event in
	// play, the spill cap converts the front into a rung before sorted
	// insertion degenerates.
	if len(q.tail) > lqFrontCap {
		if r := q.newRung(min, math.Nextafter(max, math.Inf(1))); r != nil {
			q.spread(r, q.tail)
			q.tail = q.tail[:0]
			q.rungs = append(q.rungs, r)
			q.frontEnd = min
			return
		}
	}
	// Small tail (or zero time span): the whole tail is one epoch,
	// swapped in as the front without copying.
	q.sortEpoch(q.tail)
	old := q.front[:0]
	q.front, q.fh = q.tail, 0
	q.tail = old
	q.frontEnd = math.Nextafter(max, math.Inf(1))
}

// remapSeqs rewrites every queued event's sequence number through f. The
// rewrite is order-preserving (see Kernel.remapSeqs), so sorted fronts
// stay sorted and the time-partition invariants are untouched — bucket
// membership depends only on timestamps.
func (q *ladderQueue) remapSeqs(f func(uint64) uint64) {
	if q.n == 0 {
		return
	}
	for i := q.fh; i < len(q.front); i++ {
		q.front[i].seq = f(q.front[i].seq)
	}
	for _, r := range q.rungs {
		for b := range r.bkts {
			bk := r.bkts[b]
			for i := range bk {
				bk[i].seq = f(bk[i].seq)
			}
		}
	}
	for i := range q.tail {
		q.tail[i].seq = f(q.tail[i].seq)
	}
}

// sortEpoch sorts one epoch by strict (t, seq) order. Small epochs — the
// common case at GCel event densities — take the insertion fast path with
// no further dispatch. Larger epochs run a bottom-up merge sort whose
// scratch buffer is cached on the queue and reused across epoch
// materializations, so the ~5% epoch-sort share of a run costs no
// per-epoch allocation and each merge pass is a sequential scan (with an
// already-ordered shortcut) instead of the random exchanges of the
// previous quicksort. seq values are unique, so the order is total and
// stability is irrelevant.
func (q *ladderQueue) sortEpoch(a []event) {
	n := len(a)
	if n <= lqSmallEpoch {
		insertionSortEvents(a)
		return
	}
	for lo := 0; lo < n; lo += lqSmallEpoch {
		hi := lo + lqSmallEpoch
		if hi > n {
			hi = n
		}
		insertionSortEvents(a[lo:hi])
	}
	if cap(q.sortBuf) < n {
		q.sortBuf = make([]event, n)
	}
	buf := q.sortBuf[:n]
	src, dst := a, buf
	for width := lqSmallEpoch; width < n; width <<= 1 {
		for lo := 0; lo < n; lo += width << 1 {
			mid, hi := lo+width, lo+(width<<1)
			if mid >= n {
				copy(dst[lo:n], src[lo:n])
				break
			}
			if hi > n {
				hi = n
			}
			mergeEvents(dst[lo:hi], src[lo:mid], src[mid:hi])
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// insertionSortEvents is the small-epoch fast path: plain binary-free
// insertion, optimal for the short, mostly-ordered runs bucket appends
// produce.
func insertionSortEvents(a []event) {
	for i := 1; i < len(a); i++ {
		e := a[i]
		j := i - 1
		for j >= 0 && e.before(&a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = e
	}
}

// mergeEvents merges the sorted runs a and b into dst
// (len(dst) == len(a)+len(b)). Runs that are already in order — frequent,
// since bucket contents arrive in near-schedule order — reduce to two
// copies.
func mergeEvents(dst, a, b []event) {
	if len(b) == 0 || !b[0].before(&a[len(a)-1]) {
		copy(dst, a)
		copy(dst[len(a):], b)
		return
	}
	i, j, o := 0, 0, 0
	for i < len(a) && j < len(b) {
		if b[j].before(&a[i]) {
			dst[o] = b[j]
			j++
		} else {
			dst[o] = a[i]
			i++
		}
		o++
	}
	copy(dst[o:], a[i:])
	copy(dst[o+len(a)-i:], b[j:])
}
