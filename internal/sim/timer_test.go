package sim

import (
	"sort"
	"testing"
)

// TestTimerOrderWithEvents: timers execute at their exact (t, schedule-order)
// position among regular events — a timer scheduled between two At calls at
// the same instant fires between them.
func TestTimerOrderWithEvents(t *testing.T) {
	k := New()
	var order []string
	k.At(10, func() { order = append(order, "a") })
	k.TimerAt(10, func(arg interface{}) { order = append(order, arg.(string)) }, "b")
	k.At(10, func() { order = append(order, "c") })
	k.TimerAt(5, func(interface{}) { order = append(order, "early") }, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"early", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if k.Now() != 10 {
		t.Fatalf("final time %v, want 10", k.Now())
	}
}

// TestTimerAdvancesClockAndCounts: a timer is an ordinary event — it
// advances the clock and counts in Stat.Events.
func TestTimerAdvancesClockAndCounts(t *testing.T) {
	k := New()
	var at Time
	k.TimerAt(42, func(interface{}) { at = k.Now() }, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 42 || k.Now() != 42 {
		t.Fatalf("timer fired at %v, clock %v, want 42", at, k.Now())
	}
	if k.Stat.Events != 1 {
		t.Fatalf("Stat.Events = %d, want 1", k.Stat.Events)
	}
}

// TestTimerCancel: CancelTimer removes a pending timer (it never fires),
// returns true once, and false for every later use of the stale ID.
func TestTimerCancel(t *testing.T) {
	k := New()
	fired := false
	id := k.TimerAt(100, func(interface{}) { fired = true }, nil)
	if n := k.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d, want 1", n)
	}
	if !k.CancelTimer(id) {
		t.Fatal("first cancel returned false")
	}
	if k.CancelTimer(id) {
		t.Fatal("second cancel of the same ID returned true")
	}
	if n := k.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers after cancel = %d, want 0", n)
	}
	k.At(200, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("canceled timer fired")
	}
}

// TestTimerCancelAfterFire: once a timer has fired its ID is stale —
// cancellation reports "the timeout won the race".
func TestTimerCancelAfterFire(t *testing.T) {
	k := New()
	id := k.TimerAt(5, func(interface{}) {}, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.CancelTimer(id) {
		t.Fatal("cancel after fire returned true")
	}
}

// TestTimerGenerationOnSlotReuse: canceling a timer and scheduling another
// recycles the heap slot under a bumped generation, so the old ID can never
// alias the new timer.
func TestTimerGenerationOnSlotReuse(t *testing.T) {
	k := New()
	var fired []string
	a := k.TimerAt(10, func(interface{}) { fired = append(fired, "a") }, nil)
	if !k.CancelTimer(a) {
		t.Fatal("cancel a failed")
	}
	b := k.TimerAt(20, func(interface{}) { fired = append(fired, "b") }, nil)
	// a's slot was recycled for b; a's stale ID must not cancel b.
	if k.CancelTimer(a) {
		t.Fatal("stale ID canceled the recycled slot's new timer")
	}
	if n := k.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d, want 1", n)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != "b" {
		t.Fatalf("fired %v, want [b]", fired)
	}
	_ = b
}

// TestTimerCancelIsTrueRemoval: cancellation is a removal, not a tombstone —
// a canceled timer consumes no event pop (Stat.Events counts only the events
// that actually executed), and the same schedule-and-cancel pattern is
// fingerprint-reproducible run to run.
func TestTimerCancelIsTrueRemoval(t *testing.T) {
	run := func() (uint64, uint64) {
		k := New()
		for i := 0; i < 8; i++ {
			id := k.TimerAt(Time(50+i), func(interface{}) {
				t.Error("canceled timer fired")
			}, nil)
			k.CancelTimer(id)
		}
		k.At(10, func() {})
		k.TimerAt(20, func(interface{}) {}, nil)
		k.At(30, func() {})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Fingerprint(), k.Stat.Events
	}
	fp1, ev1 := run()
	fp2, ev2 := run()
	if ev1 != 3 {
		t.Fatalf("Stat.Events = %d, want 3 (canceled timers must not cost pops)", ev1)
	}
	if fp1 != fp2 || ev1 != ev2 {
		t.Fatalf("identical runs diverged: fp %#x/%#x, events %d/%d", fp1, fp2, ev1, ev2)
	}
}

// TestTimerHeapStress: many timers at colliding pseudo-random times, with a
// deterministic subset canceled, fire in exact (t, schedule-order) sequence.
func TestTimerHeapStress(t *testing.T) {
	k := New()
	const n = 400
	type stamp struct {
		t   Time
		seq int
	}
	var want []stamp
	var got []stamp
	rng := uint64(1999)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	ids := make([]TimerID, n)
	for i := 0; i < n; i++ {
		at := Time(next() % 64) // heavy collisions: ~6 timers per instant
		seq := i
		ids[i] = k.TimerAt(at, func(interface{}) {
			got = append(got, stamp{at, seq})
		}, nil)
		if seq%3 != 0 {
			want = append(want, stamp{at, seq})
		}
	}
	canceled := 0
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			if !k.CancelTimer(ids[i]) {
				t.Fatalf("cancel of pending timer %d failed", i)
			}
			canceled++
		}
	}
	if n := k.PendingTimers(); n != len(want) {
		t.Fatalf("PendingTimers = %d, want %d", n, len(want))
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Survivors fire in (t, scheduling-order): stable sort by time.
	sort.SliceStable(want, func(i, j int) bool { return want[i].t < want[j].t })
	if len(got) != len(want) {
		t.Fatalf("%d timers fired, want %d (%d canceled)", len(got), len(want), canceled)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if k.PendingTimers() != 0 {
		t.Fatalf("PendingTimers after run = %d, want 0", k.PendingTimers())
	}
}
