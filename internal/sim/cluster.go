package sim

import (
	"math"
	"sort"
	"sync/atomic"
)

// fpGolden is the multiplier of the fingerprint hash chain (see fold).
const fpGolden = 0x9e3779b97f4a7c15

// Op log entries of a shard's window execution. Non-negative values index
// the shard's deferred-wake list; the two sentinels mark a local sequence
// allocation and a deferred network send. The op log records, in exact
// program order, every global-sequence allocation an event's execution
// would have performed on the sequential kernel, so the boundary merge can
// replay the allocations in exact global order.
const (
	opLocal int32 = -1 // a seq allocated for a locally scheduled event
	opDefer int32 = -2 // a deferred cross-node send (seq of its arrival)
)

// execRec is one executed event in a shard's window log: its timestamp,
// the (possibly temporary) sequence it was executed under, and how many
// op-log entries its execution appended.
type execRec struct {
	t    Time
	seq  uint64
	nops int32
}

// wakeRec is a deferred cross-shard process wakeup (a Future completion
// landing on a processor owned by another shard, at or beyond the window
// horizon). It materializes as a regular event at the boundary merge.
type wakeRec struct {
	t Time
	p *Proc
}

// matEvent is an event materialized during the boundary merge — a
// deferred send's arrival or a deferred cross-shard wakeup — destined for
// kernel k's regular queue (or lazy tier when lazy is set). Materialized
// events are buffered and pushed only after the pending queues have been
// renumbered: their final sequences lie above the window watermark and
// would otherwise collide with the temporary-sequence range.
type matEvent struct {
	k    *Kernel
	lazy bool
	e    event
}

// shard is the per-kernel sharding state hung off Kernel.sh. All fields
// are accessed only by the shard's own executing goroutine during a
// window, or by the coordinator between windows; the window-boundary
// channel operations order the two.
type shard struct {
	cl  *Cluster
	k   *Kernel
	idx int

	// Window state, valid while window is set: the shard may execute
	// events strictly below horizon. paused is set by next() when the
	// shard's earliest due event lies at or beyond the horizon.
	window  bool
	active  bool
	horizon Time
	paused  bool

	// Window logs: executed events, their op logs, deferred wakes, and
	// the count of deferred sends (for the exact Pending answer in
	// exclusive windows).
	execs   []execRec
	ops     []int32
	wakes   []wakeRec
	opsMark int
	deferN  int
}

// logExec records an executed event in the window log (the window-mode
// body of fold). The previous record's op count is closed off first: ops
// appended since it was logged belong to its execution.
func (sh *shard) logExec(e *event) {
	if n := len(sh.execs); n > 0 {
		sh.execs[n-1].nops = int32(len(sh.ops) - sh.opsMark)
		sh.opsMark = len(sh.ops)
	}
	sh.execs = append(sh.execs, execRec{t: e.t, seq: e.seq})
}

// openWindow arms the shard for one conservative window ending at h.
// Temporary sequences start right above the cluster watermark.
func (sh *shard) openWindow(h Time) {
	sh.window = true
	sh.horizon = h
	sh.paused = false
	sh.k.seq = sh.cl.watermark
	sh.execs = sh.execs[:0]
	sh.ops = sh.ops[:0]
	sh.wakes = sh.wakes[:0]
	sh.opsMark = 0
	sh.deferN = 0
}

// Cluster runs K kernels (shards) under conservative time windows: every
// window, each shard executes its due events strictly below a horizon
// derived from the cluster's link-delay lookahead, and the coordinator
// merges the per-shard execution logs in exact global (t, seq) order at
// the boundary — resolving temporary sequence numbers, folding the
// fingerprint, and replaying deferred cross-node sends. See doc.go,
// "Sharded conservative-parallel execution", for the invariants.
type Cluster struct {
	ks []*Kernel
	la Time // lookahead: window length, a proven lower bound on any deferred arrival delay

	gseq      uint64 // global sequence counter (final sequence numbers)
	watermark uint64 // gseq at the current window's start
	fp        uint64 // global fingerprint chain, folded at merges

	window    bool
	exclusive bool // exactly one shard active this window
	activeIdx int
	curtail   bool // an exclusive-window cross-shard injection ends the window early
	frozen    int  // exclusive windows: pending events on the inactive shards
	pendAtOpn int  // multi windows: total pending at window open

	tempMaps [][]uint64 // per shard: temp index -> final gseq, filled at merge
	mat      []matEvent

	replay func(shard int, gseq uint64) // deferred-send replay hook (the network layer)

	goChs  []chan struct{}
	doneCh chan struct{}

	stopped bool

	// Cooperative cancellation (cancel.go): the flag shared with every
	// shard kernel, checked by the coordinator between windows; canceled
	// is set when it (or any shard's in-window checkpoint) fired.
	cancel   *atomic.Bool
	canceled bool
}

// NewCluster returns shards kernels coordinated under conservative
// windows of length lookahead (µs). Every kernel schedules and runs as
// usual; Run on any of them drives the whole cluster.
func NewCluster(shards int, lookahead Time) *Cluster {
	if shards < 2 {
		panic("sim: NewCluster needs at least 2 shards")
	}
	if !(lookahead > 0) {
		panic("sim: NewCluster needs a positive lookahead")
	}
	cl := &Cluster{la: lookahead}
	cl.ks = make([]*Kernel, shards)
	cl.tempMaps = make([][]uint64, shards)
	for i := range cl.ks {
		k := New()
		k.sh = &shard{cl: cl, k: k, idx: i}
		cl.ks[i] = k
	}
	return cl
}

// Kernels returns the shard kernels, indexed by shard.
func (cl *Cluster) Kernels() []*Kernel { return cl.ks }

// Lookahead returns the window length in µs.
func (cl *Cluster) Lookahead() Time { return cl.la }

// SetReplayHook installs the deferred-send replay callback: at each
// boundary merge it is invoked once per deferred send of each shard, in
// exact global execution order, with the final sequence number the
// arrival event must carry. The network layer routes the message there.
func (cl *Cluster) SetReplayHook(fn func(shard int, gseq uint64)) { cl.replay = fn }

// pending answers Kernel.Pending for a clustered kernel. Outside windows
// it is the exact global count. In an exclusive window it is exact too:
// the active shard's local count, the frozen shards' (which cannot
// change except through the cluster's own injections, counted in frozen),
// plus one per deferred send or wake (each materializes exactly one
// event). In a multi-shard window an exact global count would require
// cross-shard synchronization mid-window, so the count at window open is
// reported — necessarily ≥ 2, which keeps quiescence gates (Pending()==0)
// conservatively closed; see the doc.go limitations note.
func (cl *Cluster) pending(k *Kernel) int {
	if !cl.window {
		n := 0
		for _, kk := range cl.ks {
			n += kk.localPending()
		}
		return n
	}
	if cl.exclusive {
		sh := cl.ks[cl.activeIdx].sh
		return cl.ks[cl.activeIdx].localPending() + cl.frozen + sh.deferN + len(sh.wakes)
	}
	return cl.pendAtOpn
}

// crossWake handles a wakeup scheduled from kernel k for a process owned
// by another shard (the only cross-shard interaction the kernel layer
// itself performs; sends go through the network's deferral path).
func (cl *Cluster) crossWake(k *Kernel, t Time, p *Proc) {
	sh := k.sh
	if !cl.window {
		// Direct mode (setup, between windows): allocate a final global
		// sequence and schedule on the owner directly.
		p.k.checkPast(t)
		cl.gseq++
		p.k.sched(event{t: t, seq: cl.gseq, proc: p})
		return
	}
	if t >= sh.horizon {
		// At or beyond the horizon: defer; the boundary merge
		// materializes the wakeup with its final sequence.
		sh.ops = append(sh.ops, int32(len(sh.wakes)))
		sh.wakes = append(sh.wakes, wakeRec{t: t, p: p})
		return
	}
	if cl.exclusive {
		// Below the horizon, but this window is exclusive: the active
		// shard is the only executor, so it may inject directly into the
		// owner's queue using its own temporary-sequence namespace (the
		// only nonempty one, so the boundary renumbering is unambiguous),
		// and curtails the window so the next window re-derives the global
		// minimum and interleaves the injected wakeups exactly.
		p.k.checkPast(t)
		seq := k.allocSeq()
		p.k.sched(event{t: t, seq: seq, proc: p})
		cl.frozen++
		cl.curtail = true
		return
	}
	panic("sim: cross-shard wakeup below the lookahead horizon in a multi-shard window " +
		"(zero-lookahead interaction between shards); run with shards=1")
}

// Run drives the cluster to completion: windows are derived from the
// global minimum due time and the lookahead, executed (inline for an
// exclusive window, on per-shard runner goroutines otherwise), and merged.
// Mirrors Kernel.Run's contract: an error reports processes still blocked
// at the end. GOMAXPROCS is not pinned — shards are meant to run in
// parallel; on a single-CPU host they interleave through the scheduler.
func (cl *Cluster) Run() error {
	for !cl.stopped {
		if cl.cancel != nil && cl.cancel.Load() {
			// Between-window checkpoint. stopped is set too so a canceled
			// cluster can never pass the quiescence check and be captured.
			cl.canceled = true
			cl.stopped = true
			break
		}
		t0 := math.Inf(1)
		for _, k := range cl.ks {
			if t, ok := k.minDue(); ok && t < t0 {
				t0 = t
			}
		}
		if math.IsInf(t0, 1) {
			break
		}
		h := t0 + cl.la
		cl.watermark = cl.gseq
		cl.curtail = false
		nAct, act := 0, -1
		for i, k := range cl.ks {
			k.sh.active = false
			if t, ok := k.minDue(); ok && t < h {
				k.sh.active = true
				nAct++
				act = i
			}
		}
		cl.exclusive = nAct == 1
		cl.activeIdx = act
		if cl.exclusive {
			cl.frozen = 0
			for i, k := range cl.ks {
				if i != act {
					cl.frozen += k.localPending()
				}
			}
			k := cl.ks[act]
			k.sh.openWindow(h)
			cl.window = true
			k.loop(nil, false)
		} else {
			cl.pendAtOpn = 0
			for _, k := range cl.ks {
				cl.pendAtOpn += k.localPending()
			}
			cl.ensureRunners()
			cl.window = true
			n := 0
			for i, k := range cl.ks {
				if k.sh.active {
					k.sh.openWindow(h)
					cl.goChs[i] <- struct{}{}
					n++
				}
			}
			for j := 0; j < n; j++ {
				<-cl.doneCh
			}
		}
		cl.window = false
		for _, k := range cl.ks {
			if k.stopped {
				cl.stopped = true
			}
			if k.canceled {
				cl.canceled = true
			}
		}
		cl.merge()
		for _, k := range cl.ks {
			k.sh.window = false
		}
	}
	return cl.finish()
}

// ensureRunners starts the persistent per-shard runner goroutines (lazily:
// an all-exclusive run never needs them). finish closes them down.
func (cl *Cluster) ensureRunners() {
	if cl.goChs != nil {
		return
	}
	cl.goChs = make([]chan struct{}, len(cl.ks))
	cl.doneCh = make(chan struct{}, len(cl.ks))
	for i := range cl.ks {
		cl.goChs[i] = make(chan struct{})
		go func(i int) {
			for range cl.goChs[i] {
				cl.ks[i].loop(nil, false)
				cl.doneCh <- struct{}{}
			}
		}(i)
	}
}

// merge is the boundary step: walk the per-shard execution logs in exact
// global (t, resolved seq) order, fold the fingerprint, assign final
// sequences to every temporary in allocation order, replay deferred sends
// and materialize deferred wakeups, then renumber the pending queues and
// push the materialized events.
func (cl *Cluster) merge() {
	for _, k := range cl.ks {
		sh := k.sh
		if n := len(sh.execs); n > 0 {
			sh.execs[n-1].nops = int32(len(sh.ops) - sh.opsMark)
			sh.opsMark = len(sh.ops)
		}
	}
	watermark := cl.watermark
	resolve := func(si int, s uint64) uint64 {
		if s <= watermark {
			return s
		}
		ti := s - watermark - 1
		mp := cl.tempMaps[si]
		if ti >= uint64(len(mp)) {
			panic("sim: unresolved temporary sequence at window merge")
		}
		return mp[ti]
	}
	cursors := make([]int, len(cl.ks)) // next exec per shard; op cursor is implicit
	opCur := make([]int, len(cl.ks))
	for {
		best := -1
		var bt Time
		var bs uint64
		for i, k := range cl.ks {
			sh := k.sh
			if cursors[i] >= len(sh.execs) {
				continue
			}
			er := &sh.execs[cursors[i]]
			rs := resolve(i, er.seq)
			if best < 0 || er.t < bt || (er.t == bt && rs < bs) {
				best, bt, bs = i, er.t, rs
			}
		}
		if best < 0 {
			break
		}
		cl.fp = cl.fp*fpGolden + (math.Float64bits(bt) ^ bs)
		sh := cl.ks[best].sh
		er := &sh.execs[cursors[best]]
		cursors[best]++
		for j := int32(0); j < er.nops; j++ {
			op := sh.ops[opCur[best]]
			opCur[best]++
			cl.gseq++
			switch {
			case op == opLocal:
				cl.tempMaps[best] = append(cl.tempMaps[best], cl.gseq)
			case op == opDefer:
				cl.replay(best, cl.gseq)
			default:
				w := sh.wakes[op]
				cl.mat = append(cl.mat, matEvent{k: w.p.k, e: event{t: w.t, seq: cl.gseq, proc: w.p}})
			}
		}
	}
	// Renumber queued temporaries. In an exclusive window the active
	// shard's temporaries may sit in any shard's queue (direct
	// injection); its map is the only nonempty one, so applying it
	// everywhere is unambiguous. In a multi-shard window each shard's
	// queues hold only its own temporaries.
	for i, k := range cl.ks {
		mp := cl.tempMaps[i]
		if cl.exclusive {
			mp = cl.tempMaps[cl.activeIdx]
		}
		if len(mp) == 0 {
			continue
		}
		k.remapSeqs(func(s uint64) uint64 {
			if s <= watermark {
				return s
			}
			ti := s - watermark - 1
			if ti >= uint64(len(mp)) {
				panic("sim: unresolved queued temporary sequence at window merge")
			}
			return mp[ti]
		})
	}
	for _, me := range cl.mat {
		switch {
		case me.lazy:
			me.k.lazyq.push(me.e)
		case me.k.useHeap:
			me.k.hq.push(me.e)
		default:
			me.k.lq.push(me.e)
		}
	}
	cl.mat = cl.mat[:0]
	for i := range cl.tempMaps {
		cl.tempMaps[i] = cl.tempMaps[i][:0]
	}
	// Clear every shard's window log — openWindow only resets shards that
	// are active in the NEXT window, and a stale log would be re-merged.
	for _, k := range cl.ks {
		sh := k.sh
		sh.execs = sh.execs[:0]
		sh.ops = sh.ops[:0]
		sh.wakes = sh.wakes[:0]
		sh.opsMark = 0
		sh.deferN = 0
	}
}

// finish mirrors the tail of Kernel.Run across all shards: clocks join at
// the global end time, stats and the fingerprint aggregate into shard 0
// (the kernel the embedding layer exposes), runners shut down, and
// still-blocked processes come back as one DeadlockError.
func (cl *Cluster) finish() error {
	end := Time(0)
	for _, k := range cl.ks {
		if k.now > end {
			end = k.now
		}
	}
	k0 := cl.ks[0]
	for _, k := range cl.ks {
		k.now = end
		if k != k0 {
			k0.Stat.Events += k.Stat.Events
			k0.Stat.FusedDeliveries += k.Stat.FusedDeliveries
			k0.Stat.FusedBusyRecv += k.Stat.FusedBusyRecv
			k0.Stat.TwoStageDeliveries += k.Stat.TwoStageDeliveries
			k.Stat = Stats{}
		}
	}
	k0.fp = cl.fp
	if cl.goChs != nil {
		for _, ch := range cl.goChs {
			close(ch)
		}
		cl.goChs = nil
	}
	if cl.canceled {
		cl.shutdown()
		return &CanceledError{At: end, Events: k0.Stat.Events}
	}
	var blocked []string
	for _, k := range cl.ks {
		for _, p := range k.procs {
			if !p.done {
				blocked = append(blocked, p.name)
			}
		}
	}
	if len(blocked) > 0 {
		sort.Strings(blocked)
		for _, k := range cl.ks {
			k.killAll()
		}
		return &DeadlockError{Blocked: blocked, At: end}
	}
	return nil
}

// shutdown force-terminates processes on every shard (Kernel.Shutdown on
// a clustered kernel).
func (cl *Cluster) shutdown() {
	for _, k := range cl.ks {
		k.killAll()
	}
}
