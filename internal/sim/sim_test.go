package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	k := New()
	var order []int
	k.At(3, func() { order = append(order, 3) })
	k.At(1, func() { order = append(order, 1) })
	k.At(2, func() { order = append(order, 2) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events out of order: %v", order)
	}
	if k.Now() != 3 {
		t.Fatalf("final time %v, want 3", k.Now())
	}
}

func TestEventTieBreakFIFO(t *testing.T) {
	k := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	k := New()
	var at Time
	k.At(10, func() {
		k.After(5, func() { at = k.Now() })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("After fired at %v, want 15", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New()
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcWait(t *testing.T) {
	k := New()
	var times []Time
	k.Spawn("w", func(p *Proc) {
		times = append(times, p.Now())
		p.Wait(7)
		times = append(times, p.Now())
		p.Wait(3)
		times = append(times, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 7, 10}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := New()
		var trace []string
		for _, n := range []string{"a", "b", "c"} {
			name := n
			k.Spawn(name, func(p *Proc) {
				for i := 0; i < 3; i++ {
					trace = append(trace, name)
					p.Wait(2)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return trace
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("nondeterministic interleaving: %v vs %v", first, again)
			}
		}
	}
}

func TestFutureCompleteBeforeAwait(t *testing.T) {
	k := New()
	f := NewFuture()
	var got interface{}
	k.At(0, func() { f.Complete(k, 42) })
	k.Spawn("r", func(p *Proc) {
		p.Wait(5)
		got = f.Await(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("Await returned %v, want 42", got)
	}
}

func TestFutureWakesAllWaiters(t *testing.T) {
	k := New()
	f := NewFuture()
	woke := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(p *Proc) {
			if f.Await(p) != "x" {
				t.Error("wrong future value")
			}
			woke++
		})
	}
	k.At(9, func() { f.Complete(k, "x") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != 4 {
		t.Fatalf("only %d/4 waiters woke", woke)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	k := New()
	f := NewFuture()
	f.Complete(k, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("double complete did not panic")
		}
	}()
	f.Complete(k, 2)
}

func TestDeadlockDetection(t *testing.T) {
	k := New()
	f := NewFuture() // never completed
	k.Spawn("stuck", func(p *Proc) { f.Await(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("expected DeadlockError, got %v", err)
	}
	if len(de.Blocked) != 1 || de.Blocked[0] != "stuck" {
		t.Fatalf("wrong blocked set: %v", de.Blocked)
	}
}

func TestShutdownAfterStop(t *testing.T) {
	k := New()
	f := NewFuture()
	k.Spawn("s", func(p *Proc) { f.Await(p) })
	k.At(1, func() { k.Stop() })
	k.At(2, func() { t.Error("event after Stop executed") })
	_ = k.Run()
	k.Shutdown() // must not hang or panic
}

func TestWaitGroup(t *testing.T) {
	k := New()
	var wg WaitGroup
	wg.Add(3)
	done := false
	k.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		done = true
		if p.Now() != 30 {
			t.Errorf("waiter woke at %v, want 30", p.Now())
		}
	})
	for i := 1; i <= 3; i++ {
		d := Time(i * 10)
		k.At(d, func() { wg.DoneOne(k) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("WaitGroup never released the waiter")
	}
}

func TestQueueFIFO(t *testing.T) {
	k := New()
	var q Queue
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		f := q.Enqueue()
		k.Spawn("q", func(p *Proc) {
			f.Await(p)
			order = append(order, i)
		})
	}
	k.At(1, func() { q.WakeFront(k) })
	k.At(2, func() { q.WakeFront(k) })
	k.At(3, func() { q.WakeFront(k) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("queue not FIFO: %v", order)
		}
	}
}

func TestYield(t *testing.T) {
	k := New()
	var trace []string
	k.Spawn("a", func(p *Proc) {
		trace = append(trace, "a1")
		p.Yield()
		trace = append(trace, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		trace = append(trace, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestWaitUntilPastIsNoop(t *testing.T) {
	k := New()
	k.Spawn("p", func(p *Proc) {
		p.Wait(10)
		p.WaitUntil(5) // already past
		if p.Now() != 10 {
			t.Errorf("WaitUntil moved time backwards to %v", p.Now())
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcs(t *testing.T) {
	k := New()
	const n = 1000
	count := 0
	for i := 0; i < n; i++ {
		k.Spawn("p", func(p *Proc) {
			p.Wait(1)
			count++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("%d/%d procs completed", count, n)
	}
}
