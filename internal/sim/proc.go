package sim

import "fmt"

// procSignal is the token handed to a process when it may run. kill makes
// the process unwind instead of resuming.
type procSignal struct {
	kill bool
}

// killed is the panic value used to unwind force-terminated processes.
type killed struct{}

// Proc is a cooperative simulated process. A Proc runs on its own
// goroutine, but the kernel guarantees that at most one process (or event
// callback) executes at a time, so process code needs no locking against
// other simulated activity.
type Proc struct {
	k    *Kernel
	name string
	// resume is the process's rendezvous: a context switch to this process
	// is one buffered send here by the previous baton holder (see doc.go).
	// Capacity 1 so the sender never sleeps on the handoff — at most one
	// signal is ever in flight, because kernel code only runs again after
	// the receiver consumed it.
	resume chan procSignal
	done   bool
}

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process executing body. The process starts (in FIFO order
// with other events) at the current simulation time.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan procSignal, 1)}
	k.procs = append(k.procs, p)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killed); ok {
					return // force-terminated by the kernel; swallow
				}
				panic(r) // real bug: re-raise
			}
		}()
		sig := <-p.resume // wait for first scheduling
		if sig.kill {
			panic(killed{})
		}
		body(p)
		p.done = true
		// Final hand-back: the goroutine keeps driving the kernel loop as a
		// continuation. It exits at the next handoff (one rendezvous, the
		// send) — or with none at all when the queue drains first. In
		// particular a body that never parks costs at most one rendezvous
		// total after the initial wakeup.
		k.loop(p, true)
	}()
	k.atProc(k.now, p)
	return p
}

// park hands control back to the kernel and blocks until resumed: the
// process itself keeps driving the kernel loop until it pops either its own
// wakeup (park returns directly, no channel operation) or another process's
// (one rendezvous). Must only be called from process context.
func (p *Proc) park() {
	p.k.loop(p, false)
}

// kill unblocks a process so it unwinds instead of resuming. Must be called
// from kernel context (an event callback, or after Run returned): the
// target is then blocked on — or headed for — <-p.resume with an empty
// buffer, so the buffered send cannot be reordered with a pending resume.
// Marking done first makes any still-queued wakeup event a no-op.
func (p *Proc) kill() {
	if p.done {
		return
	}
	p.done = true
	p.resume <- procSignal{kill: true}
}

// Wait suspends the process for d microseconds of simulated time.
func (p *Proc) Wait(d Time) {
	if d < 0 {
		panic("sim: negative wait")
	}
	if d == 0 {
		return
	}
	p.k.atProc(p.k.now+d, p)
	p.park()
}

// WaitUntil suspends the process until absolute time t (no-op if t <= now).
func (p *Proc) WaitUntil(t Time) {
	if t <= p.k.now {
		return
	}
	p.k.atProc(t, p)
	p.park()
}

// Yield reschedules the process at the current time behind already-queued
// events. Useful to let pending deliveries run.
func (p *Proc) Yield() {
	p.k.atProc(p.k.now, p)
	p.park()
}

// String implements fmt.Stringer.
func (p *Proc) String() string { return fmt.Sprintf("proc(%s)", p.name) }
