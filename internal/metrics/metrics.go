// Package metrics collects the two quantities the paper evaluates —
// congestion (the maximum traffic across any network link) and execution
// time — with optional phase scoping (the Barnes-Hut figures report the
// tree-building and force-computation phases separately) and warmup
// exclusion (the paper simulates 7 time steps and measures the last 5).
package metrics

import (
	"fmt"
	"sort"

	"diva/internal/mesh"
	"diva/internal/sim"
)

// Result summarizes one measured interval (or the union of the intervals
// accumulated under one phase name).
type Result struct {
	Cong mesh.Congestion
	// TimeUS is the summed wall-clock duration of the interval(s).
	TimeUS float64
	// MaxComputeUS is the maximum per-node application compute time inside
	// the interval(s) — the paper's "local computation time".
	MaxComputeUS float64
	// TotalComputeUS sums compute over all nodes.
	TotalComputeUS float64
	// Faults holds the degradation counters accumulated since Baseline
	// (availability, re-route stretch, recovery traffic); all zero on a
	// fault-free machine. Only Total fills it — phase scoping of fault
	// counters is not supported.
	Faults mesh.FaultStats
}

// Collector accumulates per-link traffic deltas. Before Baseline is called
// every recording method is a no-op, which makes warmup rounds trivial to
// exclude: run them, call Baseline, keep going.
type Collector struct {
	nw      *mesh.Network
	enabled bool

	baseLoads   []mesh.LinkLoad
	baseTime    sim.Time
	baseCompute []float64
	baseFaults  mesh.FaultStats

	phaseOpen    bool
	phaseLoads   []mesh.LinkLoad
	phaseTime    sim.Time
	phaseCompute []float64

	phases map[string]*phaseAcc
	order  []string
}

type phaseAcc struct {
	links   []mesh.LinkLoad
	timeUS  float64
	compute []float64
}

// New returns a collector for the network. It starts disabled.
func New(nw *mesh.Network) *Collector {
	return &Collector{nw: nw, phases: make(map[string]*phaseAcc)}
}

// Enabled reports whether Baseline has been called.
func (c *Collector) Enabled() bool { return c.enabled }

// Baseline starts measurement: everything before this call (warmup) is
// excluded from Total and from phases.
func (c *Collector) Baseline() {
	c.enabled = true
	c.baseLoads = c.nw.Loads()
	c.baseTime = c.nw.K.Now()
	c.baseCompute = c.nw.ComputeTime()
	c.baseFaults = c.nw.FaultStats()
}

// StartPhase opens a phase interval. No-op before Baseline. Phases must not
// nest.
func (c *Collector) StartPhase() {
	if !c.enabled {
		return
	}
	if c.phaseOpen {
		panic("metrics: StartPhase while a phase is open")
	}
	c.phaseOpen = true
	c.phaseLoads = c.nw.Loads()
	c.phaseTime = c.nw.K.Now()
	c.phaseCompute = c.nw.ComputeTime()
}

// EndPhase closes the open interval and accumulates it under name. Calling
// EndPhase for the same name across several rounds sums the intervals
// (per-link, so phase congestion is the max over links of the summed
// traffic, as in the paper).
func (c *Collector) EndPhase(name string) {
	if !c.enabled {
		return
	}
	if !c.phaseOpen {
		panic("metrics: EndPhase without StartPhase")
	}
	c.phaseOpen = false
	acc := c.phases[name]
	if acc == nil {
		acc = &phaseAcc{
			links:   make([]mesh.LinkLoad, len(c.phaseLoads)),
			compute: make([]float64, len(c.phaseCompute)),
		}
		c.phases[name] = acc
		c.order = append(c.order, name)
	}
	now := c.nw.Loads()
	for i := range now {
		acc.links[i].Msgs += now[i].Msgs - c.phaseLoads[i].Msgs
		acc.links[i].Bytes += now[i].Bytes - c.phaseLoads[i].Bytes
	}
	acc.timeUS += c.nw.K.Now() - c.phaseTime
	comp := c.nw.ComputeTime()
	for i := range comp {
		acc.compute[i] += comp[i] - c.phaseCompute[i]
	}
}

// Total returns the metrics accumulated since Baseline.
func (c *Collector) Total() Result {
	if !c.enabled {
		panic("metrics: Total before Baseline")
	}
	r := Result{
		Cong:   c.nw.Congestion(c.baseLoads),
		TimeUS: c.nw.K.Now() - c.baseTime,
		Faults: c.nw.FaultStats().Sub(c.baseFaults),
	}
	comp := c.nw.ComputeTime()
	for i := range comp {
		d := comp[i] - c.baseCompute[i]
		r.TotalComputeUS += d
		if d > r.MaxComputeUS {
			r.MaxComputeUS = d
		}
	}
	return r
}

// Phase returns the accumulated result for a phase name.
func (c *Collector) Phase(name string) (Result, bool) {
	acc, ok := c.phases[name]
	if !ok {
		return Result{}, false
	}
	var r Result
	r.TimeUS = acc.timeUS
	for i := range acc.links {
		l := acc.links[i]
		if l.Msgs > r.Cong.MaxMsgs {
			r.Cong.MaxMsgs = l.Msgs
		}
		if l.Bytes > r.Cong.MaxBytes {
			r.Cong.MaxBytes = l.Bytes
		}
		r.Cong.TotalMsgs += l.Msgs
		r.Cong.TotalBytes += l.Bytes
	}
	for _, d := range acc.compute {
		r.TotalComputeUS += d
		if d > r.MaxComputeUS {
			r.MaxComputeUS = d
		}
	}
	return r, true
}

// PhaseNames returns the phase names in first-use order.
func (c *Collector) PhaseNames() []string {
	out := make([]string, len(c.order))
	copy(out, c.order)
	return out
}

// String gives a compact one-line summary of a result.
func (r Result) String() string {
	return fmt.Sprintf("time=%.0fus congestion=%d msgs / %d bytes (total %d/%d) compute(max)=%.0fus",
		r.TimeUS, r.Cong.MaxMsgs, r.Cong.MaxBytes, r.Cong.TotalMsgs, r.Cong.TotalBytes, r.MaxComputeUS)
}

// HeatmapMsgs renders per-link message counts as a coarse ASCII heatmap of
// horizontal link loads (used by the Figure 2 demo). Each cell shows the
// decile (0-9) of the busier direction of the horizontal link to the cell's
// right.
func HeatmapMsgs(m mesh.Mesh, loads []mesh.LinkLoad, before []mesh.LinkLoad) string {
	var max uint64
	val := func(node int, d mesh.Dir) uint64 {
		li := m.LinkID(node, d)
		v := loads[li].Bytes
		if before != nil {
			v -= before[li].Bytes
		}
		return v
	}
	for n := 0; n < m.N(); n++ {
		for _, d := range []mesh.Dir{mesh.East, mesh.West, mesh.South, mesh.North} {
			if m.HasLink(n, d) && val(n, d) > max {
				max = val(n, d)
			}
		}
	}
	if max == 0 {
		max = 1
	}
	out := ""
	for r := 0; r < m.Rows; r++ {
		row := ""
		for col := 0; col+1 < m.Cols; col++ {
			n := m.ID(mesh.Coord{Row: r, Col: col})
			e := val(n, mesh.East)
			w := val(m.Neighbor(n, mesh.East), mesh.West)
			v := e
			if w > v {
				v = w
			}
			row += fmt.Sprintf("%d", v*9/max)
		}
		out += row + "\n"
	}
	return out
}

// TopLinks lists the k busiest directed links by bytes (diagnostics).
func TopLinks(m mesh.Mesh, loads []mesh.LinkLoad, k int) []string {
	type entry struct {
		li    int
		bytes uint64
	}
	var es []entry
	for li := range loads {
		n, d := m.LinkOf(li)
		if m.HasLink(n, d) && loads[li].Bytes > 0 {
			es = append(es, entry{li, loads[li].Bytes})
		}
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].bytes != es[j].bytes {
			return es[i].bytes > es[j].bytes
		}
		return es[i].li < es[j].li
	})
	if len(es) > k {
		es = es[:k]
	}
	out := make([]string, len(es))
	for i, e := range es {
		n, d := m.LinkOf(e.li)
		c := m.CoordOf(n)
		out[i] = fmt.Sprintf("(%d,%d)->%s: %d bytes, %d msgs", c.Row, c.Col, d, e.bytes, loads[e.li].Msgs)
	}
	return out
}
