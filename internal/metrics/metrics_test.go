package metrics

import (
	"strings"
	"testing"

	"diva/internal/mesh"
	"diva/internal/sim"
)

func setup() (*sim.Kernel, *mesh.Network, *Collector) {
	k := sim.New()
	nw := mesh.NewNetwork(k, mesh.New(1, 4), mesh.Params{
		BytesPerUS: 1, HopLatencyUS: 1, StartupSendUS: 10, StartupRecvUS: 10,
		LocalDeliveryUS: 1,
	})
	nw.Handle(42, func(m *mesh.Msg) {})
	return k, nw, New(nw)
}

func TestWarmupExcluded(t *testing.T) {
	k, nw, c := setup()
	k.At(0, func() { nw.Send(&mesh.Msg{Src: 0, Dst: 3, Size: 100, Kind: 42}) })
	k.At(1000, func() { c.Baseline() })
	k.At(2000, func() { nw.Send(&mesh.Msg{Src: 0, Dst: 3, Size: 50, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	r := c.Total()
	if r.Cong.MaxBytes != 50 {
		t.Fatalf("warmup not excluded: max bytes %d, want 50", r.Cong.MaxBytes)
	}
	if r.Cong.TotalMsgs != 3 {
		t.Fatalf("total msgs %d, want 3 (one message over 3 links)", r.Cong.TotalMsgs)
	}
}

func TestPhaseAccumulation(t *testing.T) {
	k, nw, c := setup()
	k.At(0, func() { c.Baseline() })
	// Two "rounds" of the same phase, plus another phase in between.
	k.At(100, func() { c.StartPhase() })
	k.At(110, func() { nw.Send(&mesh.Msg{Src: 0, Dst: 1, Size: 30, Kind: 42}) })
	k.At(500, func() { c.EndPhase("force") })
	k.At(600, func() { c.StartPhase() })
	k.At(610, func() { nw.Send(&mesh.Msg{Src: 2, Dst: 3, Size: 99, Kind: 42}) })
	k.At(700, func() { c.EndPhase("build") })
	k.At(800, func() { c.StartPhase() })
	k.At(810, func() { nw.Send(&mesh.Msg{Src: 0, Dst: 1, Size: 70, Kind: 42}) })
	k.At(1200, func() { c.EndPhase("force") })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	force, ok := c.Phase("force")
	if !ok {
		t.Fatal("phase force missing")
	}
	// Same link both rounds: accumulated bytes 100.
	if force.Cong.MaxBytes != 100 {
		t.Fatalf("force phase max bytes %d, want 100", force.Cong.MaxBytes)
	}
	if force.TimeUS != 800 {
		t.Fatalf("force phase time %v, want 800", force.TimeUS)
	}
	build, _ := c.Phase("build")
	if build.Cong.MaxBytes != 99 || build.TimeUS != 100 {
		t.Fatalf("build phase %+v", build)
	}
	names := c.PhaseNames()
	if len(names) != 2 || names[0] != "force" || names[1] != "build" {
		t.Fatalf("phase order %v", names)
	}
	if _, ok := c.Phase("missing"); ok {
		t.Fatal("unknown phase reported present")
	}
}

func TestPhaseNoopBeforeBaseline(t *testing.T) {
	k, _, c := setup()
	c.StartPhase() // must not panic or record
	c.EndPhase("x")
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Phase("x"); ok {
		t.Fatal("phase recorded before baseline")
	}
}

func TestNestedPhasePanics(t *testing.T) {
	_, _, c := setup()
	c.Baseline()
	c.StartPhase()
	defer func() {
		if recover() == nil {
			t.Fatal("nested StartPhase did not panic")
		}
	}()
	c.StartPhase()
}

func TestComputeTracking(t *testing.T) {
	k, nw, c := setup()
	c.Baseline()
	k.Spawn("p", func(p *sim.Proc) {
		c.StartPhase()
		nw.Compute(p, 2, 500)
		nw.Compute(p, 1, 200)
		c.EndPhase("work")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Phase("work")
	if r.MaxComputeUS != 500 || r.TotalComputeUS != 700 {
		t.Fatalf("compute max=%v total=%v, want 500/700", r.MaxComputeUS, r.TotalComputeUS)
	}
	tot := c.Total()
	if tot.MaxComputeUS != 500 {
		t.Fatalf("total compute max %v", tot.MaxComputeUS)
	}
}

func TestHeatmap(t *testing.T) {
	k, nw, _ := setup()
	k.At(0, func() { nw.Send(&mesh.Msg{Src: 0, Dst: 3, Size: 90, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	h := HeatmapMsgs(nw.T.(mesh.Mesh), nw.Loads(), nil)
	if !strings.Contains(h, "999") {
		t.Fatalf("heatmap of uniform path should be all-max: %q", h)
	}
}

func TestTopLinks(t *testing.T) {
	k, nw, _ := setup()
	k.At(0, func() { nw.Send(&mesh.Msg{Src: 0, Dst: 2, Size: 10, Kind: 42}) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	top := TopLinks(nw.T.(mesh.Mesh), nw.Loads(), 10)
	if len(top) != 2 {
		t.Fatalf("TopLinks returned %d entries, want 2", len(top))
	}
	if !strings.Contains(top[0], "10 bytes") {
		t.Fatalf("unexpected entry %q", top[0])
	}
}

func TestResultString(t *testing.T) {
	r := Result{TimeUS: 1000}
	if !strings.Contains(r.String(), "time=1000us") {
		t.Fatalf("String() = %q", r.String())
	}
}
