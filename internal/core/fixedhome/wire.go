package fixedhome

import (
	"encoding/gob"

	"diva/internal/core"
	"diva/internal/xrand"
)

// Wire form of the fixed-home strategy snapshot (core.WireSnapshotter /
// core.StratWire), mirroring snapState with exported, gob-encodable
// fields.

// Wire is the serializable fixed-home strategy state.
type Wire struct {
	RNG  xrand.State
	Vars []VarWire // indexed by VarID; Present=false for freed variables
}

// VarWire is one variable's directory record. Values, not pointers: gob
// rejects nil elements in pointer slices, and freed variables leave holes.
type VarWire struct {
	Present bool
	Home    int
	Owner   int
	Holders []int // sorted
}

func init() {
	gob.RegisterName("diva/fixedhome.Wire", &Wire{})
}

// Wire implements core.WireSnapshotter.
func (st *snapState) Wire() core.StratWire {
	w := &Wire{RNG: st.rng, Vars: make([]VarWire, len(st.vars))}
	for i, vsn := range st.vars {
		if vsn == nil {
			continue
		}
		w.Vars[i] = VarWire{
			Present: true,
			Home:    vsn.home,
			Owner:   vsn.owner,
			Holders: append([]int(nil), vsn.holders...),
		}
	}
	return w
}

// Blob implements core.StratWire.
func (w *Wire) Blob() interface{} {
	st := &snapState{rng: w.RNG, vars: make([]*varSnapState, len(w.Vars))}
	for i := range w.Vars {
		vw := &w.Vars[i]
		if !vw.Present {
			continue
		}
		st.vars[i] = &varSnapState{
			home:    vw.Home,
			owner:   vw.Owner,
			holders: append([]int(nil), vw.Holders...),
		}
	}
	return st
}

// CacheKey implements core.StratWire.
func (w *Wire) CacheKey(k core.KeyWire) interface{} {
	return fhKey{v: core.VarID(k.Var), node: k.Node}
}

// WireKey implements core.WireKeyer.
func (k fhKey) WireKey() core.KeyWire {
	return core.KeyWire{Var: int32(k.v), Node: k.node}
}
