// Package fixedhome implements the paper's baseline data management
// strategy: every global variable is assigned a uniformly random home
// processor that keeps track of the variable's copies, and consistency is
// maintained with the classic ownership scheme (§2, "The fixed home
// strategy"). This realizes a CC-NUMA-like concept on the mesh.
//
// At any time either one of the processors or the home (playing the role of
// the central main memory module) owns a variable:
//
//   - A read by a processor without a valid copy asks the home; if a
//     processor owns the variable, the home first fetches the current copy
//     (ownership moves back to the home), then sends a copy to the reader.
//   - A write by the owner is served locally. Any other write invalidates
//     all existing copies via the home (with acknowledgments) and makes the
//     writer the owner, holding the only copy.
//
// Since the original scheme's snoopy bus invalidation does not exist in a
// network, the home sends an explicit invalidation message to every copy
// holder.
//
// Locks are managed by a FIFO queue at the variable's home.
package fixedhome

import (
	"fmt"
	"sort"

	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/sim"
	"diva/internal/xrand"
)

// Factory returns a core.Factory for the fixed home strategy.
func Factory() core.Factory {
	return func(m *core.Machine) core.Strategy { return newStrategy(m) }
}

// Message kinds.
const (
	kindReadReq = core.KindStrategyBase + iota
	kindFetch
	kindFetchData
	kindData
	kindWriteReq
	kindInval
	kindAck
	kindGrant
	kindLockReq
	kindLockGrant
	kindLockRel
	kindEvictNote
)

type strategy struct {
	m   *core.Machine
	rng *xrand.RNG
	// react mirrors the machine's reactive-recovery mode: the protocol
	// handlers tolerate the duplicate deliveries a strategy-level redirect
	// can produce (see recovery.go) instead of treating them as bugs.
	react bool
	// txns arena-allocates transaction records in slabs, each record next
	// to its future (a core.TxnArena, shared machinery with accesstree).
	txns core.TxnArena[req]
}

// acquireReq returns a transaction record from the arena.
func (s *strategy) acquireReq(v *core.Variable, from int) *req {
	if s.txns.Init == nil {
		s.txns.Init = func(recs []req) {
			futs := make([]sim.Future, len(recs))
			for i := range recs {
				recs[i].fut = &futs[i]
			}
		}
	}
	r := s.txns.Acquire()
	r.v = v
	r.from = from
	*r.fut = sim.Future{}
	return r
}

// releaseReq recycles a completed transaction record. Safe only after the
// requester's Await returned: no message or event references it anymore.
// In reactive mode that premise fails — a redirected request can still be
// delivered (and dispatched to a handler) after the transaction completed
// through the redirect — so records are never recycled there: leaking them
// in the arena is what makes the late reference safe.
func (s *strategy) releaseReq(r *req) {
	if s.react {
		return
	}
	r.v = nil
	r.write = false
	r.val = nil
	s.txns.Release(r)
}

func newStrategy(m *core.Machine) *strategy {
	s := &strategy{m: m, rng: m.RNG.Split()}
	net := m.Net
	net.Handle(kindReadReq, s.onReadReq)
	net.Handle(kindFetch, s.onFetch)
	net.Handle(kindFetchData, s.onFetchData)
	net.Handle(kindData, s.onData)
	net.Handle(kindWriteReq, s.onWriteReq)
	net.Handle(kindInval, s.onInval)
	net.Handle(kindAck, s.onAck)
	net.Handle(kindGrant, s.onGrant)
	net.Handle(kindLockReq, s.onLockReq)
	net.Handle(kindLockGrant, s.onLockGrant)
	net.Handle(kindLockRel, s.onLockRel)
	net.Handle(kindEvictNote, func(*mesh.Msg) {}) // directory already updated
	if net.Reactive() {
		s.react = true
		s.enableRecovery()
	}
	return s
}

func (s *strategy) Name() string { return "fixed home" }

// varState is the per-variable record: the directory lives at the home
// processor; holders doubles as each processor's local validity flag (they
// are kept consistent because transactions on one variable are serialized).
type varState struct {
	home    int
	owner   int // processor id; == home when "main memory" owns it
	holders map[int]struct{}
	pending *writeWait
	lock    *lockState
}

type writeWait struct {
	n   int
	req *req
}

// req is a read or write transaction in flight.
type req struct {
	v     *core.Variable
	from  int // requesting processor
	write bool
	val   interface{}
	fut   *sim.Future
}

func vstate(v *core.Variable) *varState { return v.State.(*varState) }

func (s *strategy) InitVar(v *core.Variable) {
	vs := &varState{
		home:    s.rng.Intn(s.m.P()),
		owner:   v.Creator,
		holders: map[int]struct{}{v.Creator: {}},
	}
	v.State = vs
	v.SetLocal(v.Creator)
	s.cacheInsert(v, v.Creator)
}

func (s *strategy) FreeVar(v *core.Variable) {
	vs := vstate(v)
	for h := range vs.holders {
		s.m.Cache(h).Remove(fhKey{v.ID, h})
	}
	v.State = nil
}

// Read implements core.Strategy (shared transaction slot held).
func (s *strategy) Read(p *core.Proc, v *core.Variable) interface{} {
	vs := vstate(v)
	if _, ok := vs.holders[p.ID]; ok {
		if c := s.m.Cache(p.ID); c.Bounded() {
			c.Touch(fhKey{v.ID, p.ID})
		}
		return v.Data
	}
	r := s.acquireReq(v, p.ID)
	s.m.Net.SendPooled(p.ID, vs.home, core.ReadReqBytes, kindReadReq, r)
	val := r.fut.Await(p.Proc)
	s.releaseReq(r)
	return val
}

func (s *strategy) onReadReq(m *mesh.Msg) {
	r := m.Payload.(*req)
	vs := vstate(r.v)
	if s.react {
		if r.fut.Done() {
			return // late duplicate of a completed transaction
		}
		if m.Dst != vs.home {
			// The variable failed over while this request was in flight:
			// the old home forwards it to the current one.
			s.m.Net.SendPooled(m.Dst, vs.home, m.Size, m.Kind, r)
			return
		}
	}
	if _, ok := vs.holders[vs.home]; ok || vs.owner == vs.home {
		s.replyData(r)
		return
	}
	// A processor owns the variable: fetch the copy; ownership moves back
	// to the home ("a read access issued by another processor moves the
	// ownership back to the main memory").
	s.m.Net.SendPooled(vs.home, vs.owner, core.HeaderBytes, kindFetch, r)
}

func (s *strategy) onFetch(m *mesh.Msg) {
	r := m.Payload.(*req)
	vs := vstate(r.v)
	if s.react && r.fut.Done() {
		return // stale fetch: a give-up already answered this read
	}
	// The owner keeps its copy valid; the home becomes a holder too. When
	// ownership moved while this fetch was in flight (a concurrent read's
	// fetch completed first, or a give-up reclaimed a dead owner), vs.owner
	// already points at the home and the data hop is home-local — exactly
	// how the oracle mode serves fetch pile-ups.
	s.m.Net.SendPooled(vs.owner, vs.home, core.DataBytes(r.v.Size), kindFetchData, r)
}

func (s *strategy) onFetchData(m *mesh.Msg) {
	r := m.Payload.(*req)
	vs := vstate(r.v)
	vs.owner = vs.home
	vs.holders[vs.home] = struct{}{}
	r.v.SetLocal(vs.home)
	s.cacheInsert(r.v, vs.home)
	s.replyData(r)
}

// replyData sends the value from the home to the reader.
func (s *strategy) replyData(r *req) {
	vs := vstate(r.v)
	s.m.Net.SendPooled(vs.home, r.from, core.DataBytes(r.v.Size), kindData, r)
}

func (s *strategy) onData(m *mesh.Msg) {
	r := m.Payload.(*req)
	vs := vstate(r.v)
	if s.react && r.fut.Done() {
		return // duplicate reply via a redirected request
	}
	vs.holders[r.from] = struct{}{}
	r.v.SetLocal(r.from)
	s.cacheInsert(r.v, r.from)
	r.fut.Complete(s.m.K, r.v.Data)
}

// Write implements core.Strategy (exclusive transaction slot held).
func (s *strategy) Write(p *core.Proc, v *core.Variable, val interface{}) {
	vs := vstate(v)
	if vs.owner == p.ID {
		// "Write accesses of the owner can be served locally."
		v.Data = val
		if c := s.m.Cache(p.ID); c.Bounded() {
			c.Touch(fhKey{v.ID, p.ID})
		}
		return
	}
	r := s.acquireReq(v, p.ID)
	r.write = true
	r.val = val
	s.m.Net.SendPooled(p.ID, vs.home, core.InvalBytes, kindWriteReq, r)
	r.fut.Await(p.Proc)
	s.releaseReq(r)
}

func (s *strategy) onWriteReq(m *mesh.Msg) {
	r := m.Payload.(*req)
	vs := vstate(r.v)
	if s.react {
		if r.fut.Done() || (vs.pending != nil && vs.pending.req == r) {
			return // late duplicate: done, or its invalidations are in flight
		}
		if m.Dst != vs.home {
			s.m.Net.SendPooled(m.Dst, vs.home, m.Size, m.Kind, r)
			return
		}
	}
	targets := make([]int, 0, len(vs.holders))
	for h := range vs.holders {
		if h != r.from {
			targets = append(targets, h)
		}
	}
	sort.Ints(targets)
	if len(targets) == 0 {
		s.finishWrite(r)
		return
	}
	vs.pending = &writeWait{n: len(targets), req: r}
	for _, h := range targets {
		s.m.Net.SendPooled(vs.home, h, core.InvalBytes, kindInval, r)
	}
}

func (s *strategy) onInval(m *mesh.Msg) {
	r := m.Payload.(*req)
	s.m.Cache(m.Dst).Remove(fhKey{r.v.ID, m.Dst})
	s.m.Net.SendPooled(m.Dst, vstate(r.v).home, core.AckBytes, kindAck, r)
}

func (s *strategy) onAck(m *mesh.Msg) {
	r := m.Payload.(*req)
	vs := vstate(r.v)
	w := vs.pending
	if w == nil || w.req != r {
		if s.react {
			// A real ack racing an emulated one (invalGiveUp), or the ack
			// of an invalidation wave a redirect already completed.
			return
		}
		panic("fixedhome: stray invalidation ack")
	}
	w.n--
	if w.n == 0 {
		vs.pending = nil
		s.finishWrite(r)
	}
}

// finishWrite installs the writer as owner and sole holder and grants the
// write.
func (s *strategy) finishWrite(r *req) {
	vs := vstate(r.v)
	for h := range vs.holders {
		if h != r.from {
			delete(vs.holders, h)
		}
	}
	vs.owner = r.from
	vs.holders[r.from] = struct{}{}
	r.v.ClearAllLocal()
	r.v.SetLocal(r.from)
	s.m.Net.SendPooled(vs.home, r.from, core.GrantBytes, kindGrant, r)
}

func (s *strategy) onGrant(m *mesh.Msg) {
	r := m.Payload.(*req)
	if s.react && r.fut.Done() {
		return // duplicate grant via a redirected request
	}
	r.v.Data = r.val
	s.cacheInsert(r.v, r.from)
	r.fut.Complete(s.m.K, nil)
}

// fhKey identifies a copy in a node cache.
type fhKey struct {
	v    core.VarID
	node int
}

// cacheInsert registers a copy for replacement tracking. Fixed-home copies
// may always be dropped (except the owner's, which holds the only current
// value), with a small notification to the home directory. With unbounded
// caches this is free.
func (s *strategy) cacheInsert(v *core.Variable, proc int) {
	c := s.m.Cache(proc)
	if !c.Bounded() {
		return
	}
	key := fhKey{v.ID, proc}
	c.Insert(key, v.Size, func() bool {
		return s.tryEvict(v, proc)
	})
}

func (s *strategy) tryEvict(v *core.Variable, proc int) bool {
	if v.State == nil || !v.Idle() {
		return false
	}
	vs := vstate(v)
	if vs.owner == proc || vs.home == proc {
		return false // the owner's copy is the only current one
	}
	if _, ok := vs.holders[proc]; !ok {
		return false
	}
	delete(vs.holders, proc)
	v.ClearLocal(proc)
	s.m.Cache(proc).Remove(fhKey{v.ID, proc})
	// Notify the home so the directory stays exact (a real implementation
	// may also use lazy directory cleaning; the message keeps congestion
	// accounting honest).
	s.m.Net.Send(&mesh.Msg{
		Src: proc, Dst: vs.home,
		Size: core.AckBytes, Kind: kindEvictNote,
		Payload: &lockMsg{v: v, from: proc},
	})
	return true
}

// String implements fmt.Stringer for debugging.
func (s *strategy) String() string { return fmt.Sprintf("fixedhome(P=%d)", s.m.P()) }
