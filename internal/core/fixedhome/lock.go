package fixedhome

import (
	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/sim"
)

// Locks in the fixed home strategy are managed by the variable's home
// processor with a FIFO queue: LOCK-REQ travels to the home, the home
// grants the lock or queues the requester, and UNLOCK releases it at the
// home, which grants the next requester.

type lockState struct {
	held  bool
	owner int
	// holder is the home's view of who the lock is granted to (-1 when
	// free): the reactive-mode duplicate guards key on it — a redirected
	// request or release can be delivered twice, once per channel.
	holder int
	queue  []int
	// waiting maps a requesting processor to its blocked process future.
	waiting map[int]*sim.Future
}

type lockMsg struct {
	v    *core.Variable
	from int
}

func (s *strategy) lockOf(v *core.Variable) *lockState {
	vs := vstate(v)
	if vs.lock == nil {
		vs.lock = &lockState{owner: -1, holder: -1, waiting: make(map[int]*sim.Future)}
	}
	return vs.lock
}

// Lock implements core.Strategy.
func (s *strategy) Lock(p *core.Proc, v *core.Variable) {
	ls := s.lockOf(v)
	if ls.owner == p.ID {
		panic("fixedhome: recursive lock")
	}
	f := sim.NewFuture()
	ls.waiting[p.ID] = f
	s.m.Net.Send(&mesh.Msg{
		Src: p.ID, Dst: vstate(v).home,
		Size: core.LockBytes, Kind: kindLockReq,
		Payload: &lockMsg{v: v, from: p.ID},
	})
	f.Await(p.Proc)
	ls.owner = p.ID
}

func (s *strategy) onLockReq(m *mesh.Msg) {
	lm := m.Payload.(*lockMsg)
	ls := s.lockOf(lm.v)
	if s.react {
		if m.Dst != vstate(lm.v).home {
			// The lock manager failed over: forward to the current home.
			s.m.Net.SendPooled(m.Dst, vstate(lm.v).home, m.Size, m.Kind, lm)
			return
		}
		if ls.held && ls.holder == lm.from {
			return // duplicate of the request that holds the lock
		}
		for _, q := range ls.queue {
			if q == lm.from {
				return // duplicate of an already-queued request
			}
		}
	}
	if ls.held {
		ls.queue = append(ls.queue, lm.from)
		return
	}
	ls.held = true
	s.grantLock(lm.v, lm.from)
}

func (s *strategy) grantLock(v *core.Variable, to int) {
	s.lockOf(v).holder = to
	s.m.Net.Send(&mesh.Msg{
		Src: vstate(v).home, Dst: to,
		Size: core.LockBytes, Kind: kindLockGrant,
		Payload: &lockMsg{v: v, from: to},
	})
}

func (s *strategy) onLockGrant(m *mesh.Msg) {
	lm := m.Payload.(*lockMsg)
	ls := s.lockOf(lm.v)
	f := ls.waiting[lm.from]
	if f == nil {
		if s.react {
			return // duplicate grant via a redirected request
		}
		panic("fixedhome: lock granted to a non-waiter")
	}
	delete(ls.waiting, lm.from)
	f.Complete(s.m.K, nil)
}

// Unlock implements core.Strategy.
func (s *strategy) Unlock(p *core.Proc, v *core.Variable) {
	ls := s.lockOf(v)
	if ls.owner != p.ID {
		panic("fixedhome: unlock by non-holder")
	}
	ls.owner = -1
	s.m.Net.Send(&mesh.Msg{
		Src: p.ID, Dst: vstate(v).home,
		Size: core.LockBytes, Kind: kindLockRel,
		Payload: &lockMsg{v: v, from: p.ID},
	})
}

func (s *strategy) onLockRel(m *mesh.Msg) {
	lm := m.Payload.(*lockMsg)
	ls := s.lockOf(lm.v)
	if s.react {
		if m.Dst != vstate(lm.v).home {
			s.m.Net.SendPooled(m.Dst, vstate(lm.v).home, m.Size, m.Kind, lm)
			return
		}
		if !ls.held || ls.holder != lm.from {
			return // duplicate release: the lock already moved on
		}
	}
	if !ls.held {
		panic("fixedhome: release of a free lock")
	}
	if len(ls.queue) > 0 {
		next := ls.queue[0]
		ls.queue = ls.queue[1:]
		s.grantLock(lm.v, next)
		return
	}
	ls.held = false
	ls.holder = -1
}
