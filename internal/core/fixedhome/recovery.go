package fixedhome

import (
	"diva/internal/core"
	"diva/internal/mesh"
)

// Reactive recovery for the fixed home strategy (machines with
// core.Config.Recovery == "reactive"): the home processor is a single point
// of failure, so when the transport gives up on a message addressed to a
// home — MaxRetries+1 transmissions unacknowledged and the node's interface
// down — the variable fails over to a deterministic successor: the next
// node in rank order whose interface is up. The failover is sticky (the
// directory never moves back when the old home heals; a healed node simply
// finds its variables re-homed, like a rebooted memory module that lost its
// directory) and per variable (each variable's home moves when one of its
// own messages times out, so detection latency is paid per variable, not
// globally).
//
// Give-up verdicts by message kind:
//
//   - Requests addressed to the home (READ-REQ, WRITE-REQ, LOCK-REQ,
//     LOCK-REL): redirect to the current home — failing over first when
//     the home itself is the dead endpoint. If the home moved while the
//     message was in flight, the redirect simply chases it.
//   - INVAL to a dead copy holder: the holder's copy dies with its node;
//     emulate the acknowledgment (drop the holder from the directory and
//     advance the pending-write count) and abandon the message.
//   - FETCH to a dead owner: the home reclaims ownership (the simulator's
//     value store is global, so the current value survives; a real
//     implementation would restore from the last checkpointed copy) and
//     answers the read itself.
//   - Everything else (data replies, grants, acks, evict notes): keep
//     retransmitting at the capped backoff — the destination is the
//     blocked requester or a directory note; delivery resumes at heal.
//
// Because a give-up can race a late successful delivery (the transport
// deduplicates per channel, but a redirect opens a new channel), the
// protocol handlers tolerate duplicates in reactive mode: completed futures
// are never re-completed, stray invalidation acks and duplicate lock
// traffic are ignored, and transaction records are never recycled (the
// arena leak bounds use-after-free; see releaseReq).

// enableRecovery registers the give-up handlers. Called from newStrategy on
// reactive-mode machines only.
func (s *strategy) enableRecovery() {
	net := s.m.Net
	net.OnGiveUp(kindReadReq, s.homeGiveUpReq)
	net.OnGiveUp(kindWriteReq, s.homeGiveUpReq)
	net.OnGiveUp(kindLockReq, s.homeGiveUpLock)
	net.OnGiveUp(kindLockRel, s.homeGiveUpLock)
	net.OnGiveUp(kindInval, s.invalGiveUp)
	net.OnGiveUp(kindFetch, s.fetchGiveUp)
}

// successor returns the next node in rank order after dead whose interface
// is up — the deterministic failover target. Returns dead itself when every
// other node is down (keep probing; schedules end healed).
func (s *strategy) successor(dead int) int {
	p := s.m.P()
	for i := 1; i < p; i++ {
		c := (dead + i) % p
		if !s.m.Net.NodeDownNow(c) {
			return c
		}
	}
	return dead
}

// failover moves v's home from the dead node to its successor. The
// directory travels: if the dead home owned the variable (main-memory
// ownership) or held a copy, the successor takes both roles — the dead
// node's copy is gone with it.
func (s *strategy) failover(v *core.Variable, from, to int) {
	vs := vstate(v)
	vs.home = to
	if vs.owner == from {
		vs.owner = to
	}
	if _, ok := vs.holders[from]; ok {
		delete(vs.holders, from)
		v.ClearLocal(from)
		s.m.Cache(from).Remove(fhKey{v.ID, from})
		vs.holders[to] = struct{}{}
		v.SetLocal(to)
		s.cacheInsert(v, to)
	}
}

// homeGiveUp redirects an undeliverable home-addressed request to the
// variable's current home, failing over first when the home is down.
func (s *strategy) homeGiveUp(g *mesh.GiveUp, v *core.Variable) (int, mesh.GiveUpAction) {
	vs := vstate(v)
	if g.Dst != vs.home {
		// The home moved while this message was in flight: chase it.
		return vs.home, mesh.GiveUpRedirect
	}
	if s.m.Net.NodeDownNow(vs.home) {
		if next := s.successor(vs.home); next != vs.home {
			s.failover(v, vs.home, next)
			return next, mesh.GiveUpRedirect
		}
	}
	// The home is up (a link outage, or congestion outlasting the retry
	// budget): keep probing on the same channel.
	return g.Dst, mesh.GiveUpRetry
}

func (s *strategy) homeGiveUpReq(g *mesh.GiveUp) (int, mesh.GiveUpAction) {
	return s.homeGiveUp(g, g.Payload.(*req).v)
}

func (s *strategy) homeGiveUpLock(g *mesh.GiveUp) (int, mesh.GiveUpAction) {
	return s.homeGiveUp(g, g.Payload.(*lockMsg).v)
}

// invalGiveUp handles an invalidation the transport could not deliver: a
// dead copy holder's copy died with it, so the home emulates the ack.
func (s *strategy) invalGiveUp(g *mesh.GiveUp) (int, mesh.GiveUpAction) {
	if !s.m.Net.NodeDownNow(g.Dst) {
		return g.Dst, mesh.GiveUpRetry
	}
	r := g.Payload.(*req)
	vs := vstate(r.v)
	if _, ok := vs.holders[g.Dst]; ok {
		delete(vs.holders, g.Dst)
		r.v.ClearLocal(g.Dst)
		s.m.Cache(g.Dst).Remove(fhKey{r.v.ID, g.Dst})
	}
	if w := vs.pending; w != nil && w.req == r {
		w.n--
		if w.n == 0 {
			vs.pending = nil
			s.finishWrite(r)
		}
	}
	return g.Dst, mesh.GiveUpDrop
}

// fetchGiveUp handles a FETCH the transport could not deliver: the owner is
// dead, so the home reclaims ownership and serves the read itself.
func (s *strategy) fetchGiveUp(g *mesh.GiveUp) (int, mesh.GiveUpAction) {
	if !s.m.Net.NodeDownNow(g.Dst) {
		return g.Dst, mesh.GiveUpRetry
	}
	r := g.Payload.(*req)
	vs := vstate(r.v)
	if vs.owner == g.Dst {
		vs.owner = vs.home
		if _, ok := vs.holders[g.Dst]; ok {
			delete(vs.holders, g.Dst)
			r.v.ClearLocal(g.Dst)
			s.m.Cache(g.Dst).Remove(fhKey{r.v.ID, g.Dst})
		}
		vs.holders[vs.home] = struct{}{}
		r.v.SetLocal(vs.home)
		s.cacheInsert(r.v, vs.home)
	}
	if !r.fut.Done() {
		s.replyData(r)
	}
	return g.Dst, mesh.GiveUpDrop
}
