package fixedhome

import (
	"fmt"
	"sort"

	"diva/internal/core"
	"diva/internal/xrand"
)

// core.Forker implementation for the fixed home strategy. Captured per
// variable: the home, the owner and the holder set. A quiescent lock has no
// persistent state (free, empty queue), so locks only need the quiescence
// check; the transaction arena holds no live records at quiescence.

type snapState struct {
	rng  xrand.State
	vars []*varSnapState // indexed by VarID; nil for freed variables
}

type varSnapState struct {
	home    int
	owner   int
	holders []int // sorted
}

// SnapshotState implements core.Forker.
func (s *strategy) SnapshotState(vars []*core.Variable) (interface{}, error) {
	st := &snapState{rng: s.rng.State(), vars: make([]*varSnapState, len(vars))}
	for i, v := range vars {
		if v == nil {
			continue
		}
		vs := vstate(v)
		if vs.pending != nil {
			return nil, fmt.Errorf("fixedhome: variable %d has a write in flight", v.ID)
		}
		if ls := vs.lock; ls != nil && (ls.held || len(ls.queue) > 0 || len(ls.waiting) > 0) {
			return nil, fmt.Errorf("fixedhome: variable %d has lock activity in flight", v.ID)
		}
		vsn := &varSnapState{home: vs.home, owner: vs.owner, holders: make([]int, 0, len(vs.holders))}
		for h := range vs.holders {
			vsn.holders = append(vsn.holders, h)
		}
		sort.Ints(vsn.holders)
		st.vars[i] = vsn
	}
	return st, nil
}

// RestoreState implements core.Forker.
func (s *strategy) RestoreState(state interface{}, vars []*core.Variable) error {
	st, ok := state.(*snapState)
	if !ok {
		return fmt.Errorf("fixedhome: foreign snapshot state %T", state)
	}
	if len(st.vars) != len(vars) {
		return fmt.Errorf("fixedhome: snapshot has %d variables, machine has %d", len(st.vars), len(vars))
	}
	s.rng.SetState(st.rng)
	for i, vsn := range st.vars {
		if vsn == nil {
			continue
		}
		v := vars[i]
		if v == nil {
			return fmt.Errorf("fixedhome: snapshot has state for freed variable %d", i)
		}
		vs := &varState{
			home:    vsn.home,
			owner:   vsn.owner,
			holders: make(map[int]struct{}, len(vsn.holders)),
		}
		for _, h := range vsn.holders {
			vs.holders[h] = struct{}{}
		}
		v.State = vs
	}
	return nil
}

// RestoreCacheEntry implements core.Forker.
func (s *strategy) RestoreCacheEntry(vars []*core.Variable, key interface{}) error {
	k, ok := key.(fhKey)
	if !ok {
		return fmt.Errorf("fixedhome: foreign cache key %T", key)
	}
	if int(k.v) < 0 || int(k.v) >= len(vars) || vars[k.v] == nil {
		return fmt.Errorf("fixedhome: cache entry for unknown variable %d", k.v)
	}
	v := vars[k.v]
	proc := k.node
	s.m.Cache(proc).InsertRestored(key, v.Size, func() bool {
		return s.tryEvict(v, proc)
	})
	return nil
}

// Reseed implements core.Forker.
func (s *strategy) Reseed(seed uint64) {
	s.rng = xrand.New(seed ^ 0x632be59bd9b4e019)
}
