package fixedhome

import (
	"testing"

	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/xrand"
)

func newTestMachine(rows, cols int, seed uint64) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols, Seed: seed, Tree: decomp.Ary2,
		Strategy: Factory(),
	})
}

// checkDirectory validates the ownership-scheme invariants for a variable:
// the holder set is non-empty; if a processor (not the home) is the owner,
// it is the unique holder of the current value... more precisely, after a
// processor-write the writer is the sole holder; after reads the owner is
// the home and holders include the home and all readers.
func checkDirectory(t *testing.T, v *core.Variable) *varState {
	t.Helper()
	vs := vstate(v)
	if len(vs.holders) == 0 {
		t.Fatal("no copy of the variable exists")
	}
	if _, ok := vs.holders[vs.owner]; !ok {
		t.Fatalf("owner %d does not hold a copy", vs.owner)
	}
	return vs
}

func TestOwnershipMovesToHomeOnRead(t *testing.T) {
	m := newTestMachine(4, 4, 1)
	v := m.AllocAt(3, 64, "val")
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 10 {
			if got := p.Read(v); got != "val" {
				t.Errorf("read %v", got)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	vs := checkDirectory(t, m.Var(v))
	// "A read access issued by another processor moves the ownership back
	// to the main memory" — unless the reader happens to be the creator.
	if vs.owner != vs.home {
		t.Fatalf("owner %d after remote read, want home %d", vs.owner, vs.home)
	}
	for _, h := range []int{3, 10, vs.home} {
		if _, ok := vs.holders[h]; !ok {
			t.Fatalf("holder %d missing after read (holders %v)", h, vs.holders)
		}
	}
}

func TestWriteMakesWriterSoleOwner(t *testing.T) {
	m := newTestMachine(4, 4, 2)
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		_ = p.Read(v)
		p.Barrier()
		if p.ID == 7 {
			p.Write(v, 1)
		}
	}); err != nil {
		t.Fatal(err)
	}
	vs := checkDirectory(t, m.Var(v))
	if vs.owner != 7 {
		t.Fatalf("owner %d after write, want 7", vs.owner)
	}
	if len(vs.holders) != 1 {
		t.Fatalf("%d holders after write, want 1 (invalidation incomplete)", len(vs.holders))
	}
	if m.Var(v).Data != 1 {
		t.Fatalf("value %v, want 1", m.Var(v).Data)
	}
}

func TestOwnerWriteIsLocal(t *testing.T) {
	m := newTestMachine(4, 4, 3)
	v := m.AllocAt(6, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		if p.ID != 6 {
			return
		}
		// The creator is the owner: its writes must be free.
		for i := 0; i < 5; i++ {
			p.Write(v, i)
		}
	}); err != nil {
		t.Fatal(err)
	}
	vs := checkDirectory(t, m.Var(v))
	if vs.owner != 6 {
		t.Fatalf("owner %d, want 6", vs.owner)
	}
	if c := m.Net.Congestion(nil); c.TotalMsgs != 0 {
		t.Fatalf("owner writes produced %d messages", c.TotalMsgs)
	}
}

// TestHomeIsUniformRandom: homes of many variables should cover the mesh.
func TestHomeSpread(t *testing.T) {
	m := newTestMachine(4, 4, 4)
	seen := make(map[int]bool)
	for i := 0; i < 256; i++ {
		v := m.AllocAt(0, 8, nil)
		seen[vstate(m.Var(v)).home] = true
	}
	if len(seen) < 14 { // 16 nodes; allow a little slack
		t.Fatalf("homes cover only %d of 16 processors", len(seen))
	}
}

func TestRandomTrafficDirectoryInvariants(t *testing.T) {
	m := newTestMachine(4, 4, 5)
	const nvars = 8
	vars := make([]core.VarID, nvars)
	for i := range vars {
		vars[i] = m.AllocAt(i%m.P(), 32, -1)
	}
	if err := m.Run(func(p *core.Proc) {
		r := xrand.New(uint64(p.ID)*13 + 1)
		for step := 0; step < 15; step++ {
			vi := r.Intn(nvars)
			if r.Intn(3) == 0 {
				p.Write(vars[vi], p.ID*100+step)
			} else {
				_ = p.Read(vars[vi])
			}
			if step%5 == 4 {
				p.Barrier()
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range vars {
		checkDirectory(t, m.Var(id))
	}
}

// TestReadFetchesFromOwner: a remote read after a remote write must fetch
// the fresh value from the owner through the home.
func TestReadFetchesFromOwner(t *testing.T) {
	m := newTestMachine(4, 4, 6)
	v := m.AllocAt(0, 64, "stale")
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 1 {
			p.Write(v, "fresh")
		}
		p.Barrier()
		if p.ID == 14 {
			if got := p.Read(v); got != "fresh" {
				t.Errorf("read %v, want fresh", got)
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	vs := checkDirectory(t, m.Var(v))
	if vs.owner != vs.home {
		t.Fatalf("ownership did not return to the home on read")
	}
}

func TestLockQueueFIFO(t *testing.T) {
	m := newTestMachine(4, 4, 7)
	v := m.AllocAt(0, 16, nil)
	var order []int
	if err := m.Run(func(p *core.Proc) {
		// Processes request in staggered time order; the home queue must
		// grant in request order.
		p.Wait(float64(p.ID) * 5000)
		p.Lock(v)
		order = append(order, p.ID)
		p.Wait(20000) // force contention: later requesters queue up
		p.Unlock(v)
	}); err != nil {
		t.Fatal(err)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("lock grant order %v not FIFO", order)
		}
	}
}

func TestEvictionNotifiesDirectory(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 2, Cols: 2, Seed: 8, Tree: decomp.Ary2,
		Strategy:      Factory(),
		CacheCapacity: 200, // room for ~3 copies of 64 bytes
	})
	vars := make([]core.VarID, 8)
	for i := range vars {
		vars[i] = m.AllocAt(0, 64, i)
	}
	if err := m.Run(func(p *core.Proc) {
		if p.ID != 3 {
			return
		}
		for _, v := range vars {
			_ = p.Read(v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if ev := m.Cache(3).Evictions(); ev == 0 {
		t.Fatal("bounded cache performed no replacements")
	}
	if b := m.Cache(3).Bytes(); b > 200 {
		t.Fatalf("cache holds %d bytes over the 200-byte capacity", b)
	}
	// All variables must still be readable with correct values.
	held := 0
	for i, id := range vars {
		v := m.Var(id)
		checkDirectory(t, v)
		if v.Data != i {
			t.Fatalf("var %d value %v", i, v.Data)
		}
		if _, ok := vstate(v).holders[3]; ok {
			held++
		}
	}
	if held == len(vars) {
		t.Fatal("directory still lists evicted copies")
	}
}
