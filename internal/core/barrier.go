package core

import (
	"math"

	"diva/internal/mesh"
	"diva/internal/sim"
)

// barrier implements the library's barrier synchronization (§2,
// "synchronization mechanisms"): arrivals are combined up the decomposition
// tree and the release is multicast down it, so no node ever handles more
// than its tree degree of messages. The same mechanism doubles as a global
// all-reduce (used, e.g., for the Barnes-Hut bounding-box phase).
//
// The barrier tree is the machine's decomposition tree under the modular
// embedding with one randomly placed root, chosen at machine construction.
//
// The release direction is batched when it is provably exact: if the
// kernel is quiescent when the root completes (every process parked in the
// barrier, nothing else in flight), the whole downward multicast is
// speculatively replayed inline inside the root-completion event instead
// of cascading ~2P messages (each two kernel events plus a handler
// dispatch) through the kernel queue. The replay performs the exact same
// network charging (send startups, link occupancy, congestion counters,
// send stats, receive startups) in the exact order the kernel would have —
// a local (time, seq) min-heap mirrors the queue's tie-breaking — and
// computes every leaf's precise release time; one kernel event thus
// releases all leaves of an epoch, and the only queue traffic left is the
// per-leaf process wakeup.
//
// Exactness is enforced, not assumed: a process released early in the
// epoch starts computing — and sending — while the release is still
// propagating to other subtrees, and those sends contend for the CPUs and
// links the remaining release hops charge. The replay therefore journals
// every charge (Network.InlineBegin) and aborts the moment a charge could
// have interleaved with an already-released process: any fan-out strictly
// after the earliest wake-up (links are touchable by a send immediately),
// or any arrival charge after a wake-up on the same processor or late
// enough for a released process's first message to have reached it
// (startup + one hop). On abort the journal restores the network state
// bit-exactly and the release falls back to the plain message cascade,
// which is exact by construction. The batch therefore commits only when
// the release provably finishes before any released process could touch
// shared state — tight-wake-spread epochs; with the GCel's 100us
// startups the serialized fan-outs usually spread the wakes enough that
// the cascade path runs instead (see PERF.md for measured hit rates).
type barrier struct {
	m   *Machine
	pos []int // embedding of every tree node: the simulating processor

	epoch   []uint64      // per processor: next epoch to enter
	waiting []*sim.Future // per processor: outstanding completion

	// state holds the partial arrival combines, one map per kernel shard:
	// a tree node's arrivals all execute on the shard owning its host
	// processor, so sharding the map by executing shard removes the only
	// map the barrier would otherwise share across shards. Sequential
	// machines have exactly one.
	state []map[barKey]*barState

	// relHeap is the reusable frontier heap of the batched release replay,
	// wakeBuf its deferred leaf wake-ups and wokenAt the per-processor wake
	// times of the epoch being replayed (+Inf = not yet released); msgFree
	// and stFree recycle the cascade's payload records (the simulation is
	// single-threaded, plain slices suffice).
	relHeap []relEvent
	wakeBuf []relWake
	wokenAt []sim.Time

	// batched/cascaded count release epochs by path; aborted counts the
	// cascaded epochs whose speculative replay started and was rolled
	// back by the exactness gate (for tests and PERF.md).
	batched  uint64
	cascaded uint64
	aborted  uint64
	// noBatch forces the cascade path: set by tests, and always on a
	// reactive-mode machine — the batched replay charges sends through the
	// network's hold-free inline path, which has no transport (no channel
	// sequences, no acks) and would panic on a dropped hop. The cascade
	// sends real messages, which the reactive transport covers like any
	// other traffic.
	noBatch bool

	// msgs/sts recycle the cascade's payload and combining records through
	// the package's slab arenas, one per kernel shard (records acquired on
	// one shard and handled on another simply migrate free lists, like the
	// network's pooled messages).
	msgs []TxnArena[barMsg]
	sts  []TxnArena[barState]
}

type barKey struct {
	node  int
	epoch uint64
}

type barState struct {
	arrived int
	val     interface{}
	combine func(a, b interface{}) interface{}
	size    int
}

type barMsg struct {
	node    int // receiving tree node
	epoch   uint64
	val     interface{}
	size    int
	combine func(a, b interface{}) interface{}
}

func newBarrier(m *Machine) *barrier {
	b := &barrier{
		m:       m,
		epoch:   make([]uint64, m.P()),
		waiting: make([]*sim.Future, m.P()),
		state:   make([]map[barKey]*barState, m.Shards()),
		msgs:    make([]TxnArena[barMsg], m.Shards()),
		sts:     make([]TxnArena[barState], m.Shards()),
	}
	for i := range b.state {
		b.state[i] = make(map[barKey]*barState)
	}
	b.noBatch = m.Net.Reactive()
	b.pos = m.Tree.EmbedAll(m.Tree.RandomRoot(m.RNG))
	b.wokenAt = make([]sim.Time, m.P())
	for i := range b.wokenAt {
		b.wokenAt[i] = math.Inf(1)
	}
	m.Net.Handle(KindBarrierArrive, b.onArrive)
	m.Net.Handle(KindBarrierRelease, b.onRelease)
	return b
}

// proc returns the processor simulating tree node n.
func (b *barrier) proc(n int) int { return b.pos[n] }

// releaseMsg recycles a barrier payload whose message was handled; si is
// the executing kernel shard (the handling processor's).
func (b *barrier) releaseMsg(si int, bm *barMsg) {
	*bm = barMsg{}
	b.msgs[si].Release(bm)
}

// wait enters the barrier from process p, optionally contributing a
// reduction value.
func (b *barrier) wait(p *Proc, val interface{}, combine func(a, b interface{}) interface{}, size int) interface{} {
	t := b.m.Tree
	leaf := t.LeafOfProc[p.ID]
	epoch := b.epoch[p.ID]
	b.epoch[p.ID]++
	if b.m.P() == 1 {
		return val
	}
	f := sim.NewFuture()
	if b.waiting[p.ID] != nil {
		panic("core: process entered barrier twice")
	}
	b.waiting[p.ID] = f
	parent := t.Nodes[leaf].Parent
	bm := b.msgs[b.m.ShardOf(p.ID)].Acquire()
	bm.node, bm.epoch, bm.val, bm.size, bm.combine = parent, epoch, val, size, combine
	b.m.Net.SendPooled(p.ID, b.proc(parent), BarrierBytes+size, KindBarrierArrive, bm)
	return f.Await(p.Proc)
}

func (b *barrier) onArrive(m *mesh.Msg) {
	bm := m.Payload.(*barMsg)
	t := b.m.Tree
	si := b.m.ShardOf(m.Dst)
	key := barKey{node: bm.node, epoch: bm.epoch}
	st := b.state[si][key]
	if st == nil {
		st = b.sts[si].Acquire()
		st.arrived, st.val, st.combine, st.size = 0, bm.val, bm.combine, bm.size
		b.state[si][key] = st
	} else if st.combine != nil {
		st.val = st.combine(st.val, bm.val)
	}
	st.arrived++
	node := &t.Nodes[bm.node]
	if st.arrived < len(node.Children) {
		b.releaseMsg(si, bm)
		return
	}
	delete(b.state[si], key)
	if node.Parent == -1 {
		// Root complete: release downward.
		b.release(bm.node, bm.epoch, st.val, st.size)
		b.releaseMsg(si, bm)
	} else {
		// Forward the combined arrival upward, reusing the payload record.
		bm.node, bm.val, bm.size, bm.combine = node.Parent, st.val, st.size, st.combine
		b.m.Net.SendPooled(b.proc(key.node), b.proc(node.Parent), BarrierBytes+st.size,
			KindBarrierArrive, bm)
	}
	st.val, st.combine = nil, nil
	b.sts[si].Release(st)
}

// relEvent is one in-flight release message of the batched replay: the
// arrival stage charges the receive startup, the ready stage runs the
// handler effect (fan out further, or wake a leaf). (t, seq) mirrors the
// kernel queue's (time, schedule order) tie-breaking exactly.
type relEvent struct {
	t      sim.Time
	seq    int32
	node   int32
	arrive bool
}

func relBefore(a, b *relEvent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// release starts the downward multicast from tree node n at the current
// simulated time: batched when the kernel is quiescent and the speculative
// replay proves itself exact, as a per-hop message cascade otherwise.
func (b *barrier) release(n int, epoch uint64, val interface{}, size int) {
	if !b.noBatch && b.m.KernelAt(b.proc(n)).Pending() == 0 && b.releaseBatched(n, val, size) {
		b.batched++
		return
	}
	b.cascaded++
	b.releaseCascade(n, epoch, val, size)
}

// releaseCascade forwards the release from tree node n to all its children
// as real messages (the exact-by-construction fallback).
func (b *barrier) releaseCascade(n int, epoch uint64, val interface{}, size int) {
	t := b.m.Tree
	src := b.proc(n)
	si := b.m.ShardOf(src)
	for _, child := range t.Nodes[n].Children {
		// A leaf's region is its single processor, so the embedding pins
		// the leaf to the processor whose process it releases.
		bm := b.msgs[si].Acquire()
		bm.node, bm.epoch, bm.val, bm.size = child, epoch, val, size
		b.m.Net.SendPooled(src, b.proc(child), BarrierBytes+size, KindBarrierRelease, bm)
	}
}

// relWake is a leaf release computed by the replay, deferred until the
// whole replay commits (an abort must not have woken anyone).
type relWake struct {
	proc int
	t    sim.Time
}

// releaseBatched speculatively replays the whole release multicast inline:
// every hop's send and receive charging happens through the network's
// journaled Inline helpers in global (time, schedule order) order, and on
// commit each leaf's future completes with a wakeup scheduled at its exact
// release time. It reports false — with all charges reverted — when a
// charge could have interleaved with an already-released process (see the
// type comment for the exactness argument).
func (b *barrier) releaseBatched(root int, val interface{}, size int) bool {
	tr := b.m.Tree
	nw := b.m.Net
	// The executing kernel is the root host's: its clock is the replay's
	// origin, and the leaf wakeups below route from it — cross-shard wakes
	// go through the cluster's injection path, which the quiescence gate in
	// release() makes exact.
	k := b.m.KernelAt(b.proc(root))
	h := b.relHeap[:0]
	wakes := b.wakeBuf[:0]
	minWoken := math.Inf(1)
	seq := int32(0)
	push := func(e relEvent) {
		h = append(h, e)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) >> 1
			if !relBefore(&h[i], &h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	fan := func(n int, now sim.Time) {
		src := b.proc(n)
		for _, child := range tr.Nodes[n].Children {
			arrive := nw.InlineSendAt(now, src, b.proc(child), BarrierBytes+size,
				KindBarrierRelease)
			push(relEvent{t: arrive, seq: seq, node: int32(child), arrive: true})
			seq++
		}
	}
	abort := func() bool {
		b.aborted++
		nw.InlineAbort()
		for _, w := range wakes {
			b.wokenAt[w.proc] = math.Inf(1)
		}
		b.relHeap, b.wakeBuf = h[:0], wakes[:0]
		return false
	}
	nw.InlineBegin()
	fan(root, k.Now())
	for len(h) > 0 {
		e := h[0]
		last := len(h) - 1
		h[0] = h[last]
		h = h[:last]
		for i := 0; ; {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && relBefore(&h[c+1], &h[c]) {
				c++
			}
			if !relBefore(&h[c], &h[i]) {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
		if e.arrive {
			dst := b.proc(int(e.node))
			// A released process may charge dst's CPU before this arrival:
			// directly once dst's own process woke, or via a message — which
			// cannot reach dst earlier than the sender's wake time plus one
			// send startup and its shortest route (deterministic routes are
			// shortest paths, so the bound survives relaying by the triangle
			// inequality; the transmission time > 0 keeps ties safe).
			if b.wokenAt[dst] < e.t {
				return abort()
			}
			// Fast accept: every sender's bound is at least the earliest
			// wake plus one startup and one hop (Dist >= 1 for a different
			// processor), so arrivals inside that window — the common case
			// of a committing epoch — skip the per-wake scan; this keeps
			// the gate's cost linear instead of O(arrivals x wakes).
			if e.t > minWoken+nw.P.StartupSendUS+nw.P.HopLatencyUS {
				for _, w := range wakes {
					if w.proc != dst &&
						w.t+nw.P.StartupSendUS+nw.P.HopLatencyUS*float64(b.m.Topo.Dist(w.proc, dst)) < e.t {
						return abort()
					}
				}
			}
			ready := nw.InlineRecvAt(dst, e.t)
			push(relEvent{t: ready, seq: seq, node: e.node})
			seq++
			continue
		}
		if node := &tr.Nodes[e.node]; node.Leaf() {
			proc := b.proc(int(e.node))
			wakes = append(wakes, relWake{proc: proc, t: e.t})
			b.wokenAt[proc] = e.t
			if e.t < minWoken {
				minWoken = e.t
			}
		} else {
			if minWoken < e.t {
				return abort()
			}
			fan(int(e.node), e.t)
		}
	}
	nw.InlineCommit()
	for _, w := range wakes {
		b.wokenAt[w.proc] = math.Inf(1)
		f := b.waiting[w.proc]
		b.waiting[w.proc] = nil
		f.CompleteAt(k, w.t, val)
	}
	b.relHeap, b.wakeBuf = h[:0], wakes[:0]
	return true
}

func (b *barrier) onRelease(m *mesh.Msg) {
	bm := m.Payload.(*barMsg)
	t := b.m.Tree
	node := &t.Nodes[bm.node]
	if node.Leaf() {
		proc := b.proc(bm.node)
		f := b.waiting[proc]
		b.waiting[proc] = nil
		f.Complete(b.m.KernelAt(proc), bm.val)
	} else {
		b.releaseCascade(bm.node, bm.epoch, bm.val, bm.size)
	}
	b.releaseMsg(b.m.ShardOf(m.Dst), bm)
}
