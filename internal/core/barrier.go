package core

import (
	"diva/internal/mesh"
	"diva/internal/sim"
)

// barrier implements the library's barrier synchronization (§2,
// "synchronization mechanisms"): arrivals are combined up the decomposition
// tree and the release is multicast down it, so no node ever handles more
// than its tree degree of messages. The same mechanism doubles as a global
// all-reduce (used, e.g., for the Barnes-Hut bounding-box phase).
//
// The barrier tree is the machine's decomposition tree under the modular
// embedding with one randomly placed root, chosen at machine construction.
type barrier struct {
	m   *Machine
	pos []int // embedding of every tree node: the simulating processor

	epoch   []uint64      // per processor: next epoch to enter
	waiting []*sim.Future // per processor: outstanding completion

	state map[barKey]*barState
}

type barKey struct {
	node  int
	epoch uint64
}

type barState struct {
	arrived int
	val     interface{}
	combine func(a, b interface{}) interface{}
	size    int
}

type barMsg struct {
	node    int // receiving tree node
	epoch   uint64
	val     interface{}
	size    int
	combine func(a, b interface{}) interface{}
}

func newBarrier(m *Machine) *barrier {
	b := &barrier{
		m:       m,
		epoch:   make([]uint64, m.P()),
		waiting: make([]*sim.Future, m.P()),
		state:   make(map[barKey]*barState),
	}
	b.pos = m.Tree.EmbedAll(m.Tree.RandomRoot(m.RNG))
	m.Net.Handle(KindBarrierArrive, b.onArrive)
	m.Net.Handle(KindBarrierRelease, b.onRelease)
	return b
}

// proc returns the processor simulating tree node n.
func (b *barrier) proc(n int) int { return b.pos[n] }

// wait enters the barrier from process p, optionally contributing a
// reduction value.
func (b *barrier) wait(p *Proc, val interface{}, combine func(a, b interface{}) interface{}, size int) interface{} {
	t := b.m.Tree
	leaf := t.LeafOfProc[p.ID]
	epoch := b.epoch[p.ID]
	b.epoch[p.ID]++
	if b.m.P() == 1 {
		return val
	}
	f := sim.NewFuture()
	if b.waiting[p.ID] != nil {
		panic("core: process entered barrier twice")
	}
	b.waiting[p.ID] = f
	parent := t.Nodes[leaf].Parent
	b.m.Net.SendPooled(p.ID, b.proc(parent), BarrierBytes+size, KindBarrierArrive,
		&barMsg{node: parent, epoch: epoch, val: val, size: size, combine: combine})
	return f.Await(p.Proc)
}

func (b *barrier) onArrive(m *mesh.Msg) {
	bm := m.Payload.(*barMsg)
	t := b.m.Tree
	key := barKey{node: bm.node, epoch: bm.epoch}
	st := b.state[key]
	if st == nil {
		st = &barState{val: bm.val, combine: bm.combine, size: bm.size}
		b.state[key] = st
	} else if st.combine != nil {
		st.val = st.combine(st.val, bm.val)
	}
	st.arrived++
	node := &t.Nodes[bm.node]
	if st.arrived < len(node.Children) {
		return
	}
	delete(b.state, key)
	if node.Parent == -1 {
		// Root complete: release downward.
		b.release(bm.node, bm.epoch, st.val, st.size)
		return
	}
	b.m.Net.SendPooled(b.proc(bm.node), b.proc(node.Parent), BarrierBytes+st.size,
		KindBarrierArrive, &barMsg{node: node.Parent, epoch: bm.epoch, val: st.val,
			size: st.size, combine: st.combine})
}

// release forwards the release from tree node n to all its children.
func (b *barrier) release(n int, epoch uint64, val interface{}, size int) {
	t := b.m.Tree
	src := b.proc(n)
	for _, child := range t.Nodes[n].Children {
		// A leaf's region is its single processor, so the embedding pins
		// the leaf to the processor whose process it releases.
		b.m.Net.SendPooled(src, b.proc(child), BarrierBytes+size, KindBarrierRelease,
			&barMsg{node: child, epoch: epoch, val: val, size: size})
	}
}

func (b *barrier) onRelease(m *mesh.Msg) {
	bm := m.Payload.(*barMsg)
	t := b.m.Tree
	node := &t.Nodes[bm.node]
	if node.Leaf() {
		proc := b.proc(bm.node)
		f := b.waiting[proc]
		b.waiting[proc] = nil
		f.Complete(b.m.K, bm.val)
		return
	}
	b.release(bm.node, bm.epoch, bm.val, bm.size)
}
