package core

// Message wire sizes in bytes, shared by all strategies so that congestion
// numbers are comparable. A data message carries the header plus the
// variable's payload.
const (
	// HeaderBytes is the fixed per-message header (kind, variable id,
	// sequence, source).
	HeaderBytes = 16
	// ReadReqBytes is a read request hop.
	ReadReqBytes = 24
	// InvalBytes is an invalidation message.
	InvalBytes = 16
	// AckBytes is an acknowledgment.
	AckBytes = 8
	// GrantBytes is a small completion/grant message.
	GrantBytes = 8
	// BarrierBytes is a barrier arrive/release message without reduction
	// payload.
	BarrierBytes = 8
	// LockBytes is a lock request/token/release message.
	LockBytes = 16
)

// Message kinds. Kind 0 is reserved by the mesh inbox.
const (
	KindBarrierArrive  uint8 = 1
	KindBarrierRelease uint8 = 2
	// Kinds 16.. are free for the data management strategies.
	KindStrategyBase uint8 = 16
)

// DataBytes returns the wire size of a message carrying a variable's
// payload.
func DataBytes(size int) int { return HeaderBytes + size }
