package core

import (
	"fmt"

	"diva/internal/mesh"
	"diva/internal/sim"
	"diva/internal/xrand"
)

// Wire forms of the machine snapshot, for on-disk persistence
// (diva/snapstore). A Snapshot pins the machine Config, which holds a
// Topology interface and a Strategy factory function — neither is
// serializable — so the wire form carries only the mutable simulated
// state; the store persists the machine's spec document alongside it and
// rebuilds an identically configured machine before converting back
// (SnapshotFromWire). Strategy blobs and cache keys cross the boundary
// through the StratWire/KeyWire indirection implemented by the built-in
// strategies.

// KeyWire is the serializable form of a strategy cache key: both built-in
// strategies key copies by (variable, node).
type KeyWire struct {
	Var  int32
	Node int
}

// WireKeyer is implemented by strategy cache key types that can convert to
// KeyWire; a snapshot whose cache keys do not implement it cannot be
// persisted.
type WireKeyer interface {
	WireKey() KeyWire
}

// StratWire is the exported, gob-encodable form of a strategy's snapshot
// blob. Implementations register their concrete types with encoding/gob.
type StratWire interface {
	// Blob converts back to the strategy's private snapshot blob (the
	// Forker.RestoreState input).
	Blob() interface{}
	// CacheKey converts a KeyWire back to the strategy's private cache key
	// type (the Forker.RestoreCacheEntry input).
	CacheKey(k KeyWire) interface{}
}

// WireSnapshotter is implemented by strategy snapshot blobs that can
// convert to a StratWire; a strategy whose blob does not implement it
// cannot be persisted (live snapshot/fork is unaffected).
type WireSnapshotter interface {
	Wire() StratWire
}

// SnapshotWire is the gob-encodable form of a machine Snapshot: everything
// but the Config. Variable payloads ride along as interface values; the
// concrete payload types are registered with gob by the packages defining
// them, and an unregistered payload surfaces as an encode error at save
// time.
type SnapshotWire struct {
	Kern    sim.KernelState
	Cluster *sim.ClusterState
	Net     *mesh.NetworkWire
	RNG     xrand.State
	Vars    []VarWire
	Barrier BarrierWire
	Caches  []CacheWire
	Strat   StratWire
}

// VarWire is one variable record.
type VarWire struct {
	Present bool
	Size    int
	Creator int
	Data    interface{}
	Local   []uint64
}

// BarrierWire is the barrier's epochs and commit counters.
type BarrierWire struct {
	Epoch    []uint64
	Batched  uint64
	Cascaded uint64
	Aborted  uint64
}

// CacheWire is one node cache: entry keys in LRU→MRU order plus the
// replacement counter.
type CacheWire struct {
	Keys      []KeyWire
	Evictions uint64
}

// Wire converts the snapshot to its serializable form. It fails when the
// strategy blob or a cache key has no wire representation.
func (s *Snapshot) Wire() (*SnapshotWire, error) {
	w := &SnapshotWire{Kern: s.kern, Cluster: s.cluster, Net: s.net.Wire(), RNG: s.rng}
	w.Vars = make([]VarWire, len(s.vars))
	for i := range s.vars {
		vs := &s.vars[i]
		w.Vars[i] = VarWire{
			Present: vs.present,
			Size:    vs.size,
			Creator: vs.creator,
			Data:    vs.data,
			Local:   append([]uint64(nil), vs.local[:]...),
		}
	}
	w.Barrier = BarrierWire{
		Epoch:    append([]uint64(nil), s.barrier.epoch...),
		Batched:  s.barrier.batched,
		Cascaded: s.barrier.cascaded,
		Aborted:  s.barrier.aborted,
	}
	w.Caches = make([]CacheWire, len(s.caches))
	for i := range s.caches {
		cs := &s.caches[i]
		cw := CacheWire{Evictions: cs.evictions}
		for _, key := range cs.keys {
			wk, ok := key.(WireKeyer)
			if !ok {
				return nil, fmt.Errorf("diva: cache key %T has no wire form", key)
			}
			cw.Keys = append(cw.Keys, wk.WireKey())
		}
		w.Caches[i] = cw
	}
	if s.strat != nil {
		ws, ok := s.strat.(WireSnapshotter)
		if !ok {
			return nil, fmt.Errorf("diva: strategy snapshot %T has no wire form", s.strat)
		}
		w.Strat = ws.Wire()
	}
	return w, nil
}

// SnapshotFromWire reconstructs a Snapshot from its wire form, pinning the
// Config of m — a machine freshly built from the same machine description
// the wire was captured under (the store keeps that description alongside
// the wire data). The wire's shape is validated against m: shard count,
// topology size, barrier width, strategy presence. m itself is not
// touched; it only donates the configuration.
func SnapshotFromWire(m *Machine, w *SnapshotWire) (*Snapshot, error) {
	if w.Net == nil {
		return nil, fmt.Errorf("diva: wire snapshot has no network state")
	}
	s := &Snapshot{rng: w.RNG}
	s.cfg = m.Cfg
	s.cfg.Shards = m.Shards()
	if w.Cluster != nil {
		if len(w.Cluster.Kernels) != s.cfg.Shards {
			return nil, fmt.Errorf("diva: wire snapshot has %d shards, machine resolves %d", len(w.Cluster.Kernels), s.cfg.Shards)
		}
		cs := *w.Cluster
		cs.Kernels = append([]sim.KernelState(nil), w.Cluster.Kernels...)
		s.cluster = &cs
	} else {
		if s.cfg.Shards != 1 {
			return nil, fmt.Errorf("diva: sequential wire snapshot, machine resolves %d shards", s.cfg.Shards)
		}
		s.kern = w.Kern
	}
	net, err := w.Net.State()
	if err != nil {
		return nil, err
	}
	s.net = net
	s.vars = make([]varSnap, len(w.Vars))
	for i := range w.Vars {
		vw := &w.Vars[i]
		vs := varSnap{present: vw.Present, size: vw.Size, creator: vw.Creator, data: vw.Data}
		if len(vw.Local) > len(vs.local) {
			return nil, fmt.Errorf("diva: wire variable %d has a %d-word local bitmap, max %d", i, len(vw.Local), len(vs.local))
		}
		copy(vs.local[:], vw.Local)
		s.vars[i] = vs
	}
	if len(w.Barrier.Epoch) != len(m.bar.epoch) {
		return nil, fmt.Errorf("diva: wire barrier has %d epochs, machine has %d", len(w.Barrier.Epoch), len(m.bar.epoch))
	}
	s.barrier = barrierSnap{
		epoch:    append([]uint64(nil), w.Barrier.Epoch...),
		batched:  w.Barrier.Batched,
		cascaded: w.Barrier.Cascaded,
		aborted:  w.Barrier.Aborted,
	}
	if len(w.Caches) != len(m.caches) {
		return nil, fmt.Errorf("diva: wire snapshot has %d caches, machine has %d", len(w.Caches), len(m.caches))
	}
	if w.Strat != nil && m.Strat == nil {
		return nil, fmt.Errorf("diva: wire snapshot has strategy state, machine has no strategy")
	}
	s.caches = make([]cacheSnap, len(w.Caches))
	for i := range w.Caches {
		cw := &w.Caches[i]
		cs := cacheSnap{evictions: cw.Evictions}
		for _, k := range cw.Keys {
			if w.Strat == nil {
				return nil, fmt.Errorf("diva: wire snapshot has cache keys but no strategy state")
			}
			cs.keys = append(cs.keys, w.Strat.CacheKey(k))
		}
		s.caches[i] = cs
	}
	if w.Strat != nil {
		s.strat = w.Strat.Blob()
	}
	return s, nil
}
