package core

import "diva/internal/sim"

// VarID names a global variable.
type VarID int32

// Variable is the machine-wide record of a global variable. Strategies hang
// their per-variable protocol state off State and LockState.
type Variable struct {
	ID      VarID
	Size    int // payload size in bytes (fixed at Alloc)
	Creator int
	// Data is the current committed value. Values are immutable by
	// convention; Write installs a fresh value.
	Data interface{}
	// State is owned by the data management strategy.
	State interface{}
	// LockState is owned by the strategy's lock implementation.
	LockState interface{}

	rw rwQueue

	// local is a per-processor valid-copy bitmap maintained by the
	// strategies (SetLocal/ClearLocal): bit p set means processor p can
	// serve a read from its local copy with no protocol action. It backs
	// the machine's read fast path on unbounded-cache machines — one load
	// next to the rw state instead of the pointer chase through State.
	// Processors >= localBits (larger machines than the paper ever
	// measures) simply never take the fast path.
	local [localBits / 64]uint64
}

// localBits caps the processors covered by the local-copy bitmap (the
// paper's largest configuration is 512).
const localBits = 512

// LocalBit reports whether processor p holds a locally readable copy.
func (v *Variable) LocalBit(p int) bool {
	return p < localBits && v.local[p>>6]>>(uint(p)&63)&1 == 1
}

// SetLocal marks processor p as holding a locally readable copy.
func (v *Variable) SetLocal(p int) {
	if p < localBits {
		v.local[p>>6] |= 1 << (uint(p) & 63)
	}
}

// ClearLocal removes processor p from the local-copy bitmap.
func (v *Variable) ClearLocal(p int) {
	if p < localBits {
		v.local[p>>6] &^= 1 << (uint(p) & 63)
	}
}

// ClearAllLocal empties the local-copy bitmap (write invalidation).
func (v *Variable) ClearAllLocal() {
	v.local = [localBits / 64]uint64{}
}

// rwQueue serializes transactions on one variable: concurrent readers are
// admitted together, writers are exclusive, and admission is FIFO (a queued
// writer blocks later readers, preventing starvation). This models the
// request queueing that a real DSM implementation performs at copy holders
// (DESIGN.md, D4) without charging extra messages.
type rwQueue struct {
	readers int
	writer  bool
	waiters []rwWaiter
}

type rwWaiter struct {
	write bool
	fut   *sim.Future
}

func (v *Variable) busy() bool {
	return v.rw.readers > 0 || v.rw.writer || len(v.rw.waiters) > 0
}

// Idle reports whether no transaction is active or queued on v. Used by
// the replacement machinery: only idle variables may lose copies.
func (v *Variable) Idle() bool { return !v.busy() }

func (v *Variable) acquireRead(p *Proc) {
	q := &v.rw
	if !q.writer && len(q.waiters) == 0 {
		q.readers++
		return
	}
	f := sim.NewFuture()
	q.waiters = append(q.waiters, rwWaiter{write: false, fut: f})
	f.Await(p.Proc)
	// The releaser admitted us: the reader count was already incremented.
}

func (v *Variable) releaseRead(k *sim.Kernel) {
	q := &v.rw
	q.readers--
	if q.readers < 0 {
		panic("core: read release without acquire")
	}
	q.pump(k)
}

func (v *Variable) acquireWrite(p *Proc) {
	q := &v.rw
	if !q.writer && q.readers == 0 && len(q.waiters) == 0 {
		q.writer = true
		return
	}
	f := sim.NewFuture()
	q.waiters = append(q.waiters, rwWaiter{write: true, fut: f})
	f.Await(p.Proc)
}

func (v *Variable) releaseWrite(k *sim.Kernel) {
	q := &v.rw
	if !q.writer {
		panic("core: write release without acquire")
	}
	q.writer = false
	q.pump(k)
}

// pump admits queued transactions in FIFO order: a writer when the variable
// is fully idle, then a maximal run of readers.
func (q *rwQueue) pump(k *sim.Kernel) {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		if w.write {
			if q.writer || q.readers > 0 {
				return
			}
			q.writer = true
			q.waiters = q.waiters[1:]
			w.fut.Complete(k, nil)
			return
		}
		if q.writer {
			return
		}
		q.readers++
		q.waiters = q.waiters[1:]
		w.fut.Complete(k, nil)
	}
}
