package core_test

import (
	"fmt"
	"testing"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/mesh"
)

// strategies under test, by name.
func testStrategies() map[string]core.Factory {
	return map[string]core.Factory{
		"fixedhome":  fixedhome.Factory(),
		"accesstree": accesstree.Factory(),
	}
}

func newTestMachine(t *testing.T, rows, cols int, f core.Factory, spec decomp.Spec) *core.Machine {
	t.Helper()
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols,
		Seed:     12345,
		Tree:     spec,
		Strategy: f,
	})
}

func TestReadAfterAllocLocal(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(3, 64, "initial")
			err := m.Run(func(p *core.Proc) {
				if p.ID != 3 {
					return
				}
				if got := p.Read(v); got != "initial" {
					t.Errorf("creator read %v", got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			// Creator's read must be a local hit: zero link traffic.
			if c := m.Net.Congestion(nil); c.TotalMsgs != 0 {
				t.Errorf("creator-local read produced %d link messages", c.TotalMsgs)
			}
		})
	}
}

func TestRemoteReadReturnsValue(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(0, 128, 777)
			got := make([]interface{}, m.P())
			err := m.Run(func(p *core.Proc) {
				got[p.ID] = p.Read(v)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, g := range got {
				if g != 777 {
					t.Fatalf("proc %d read %v, want 777", i, g)
				}
			}
		})
	}
}

func TestWriteInvalidatesAndPropagates(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(0, 64, 0)
			writer := 9
			results := make([]interface{}, m.P())
			err := m.Run(func(p *core.Proc) {
				// Everyone reads the initial value.
				if got := p.Read(v); got != 0 {
					t.Errorf("proc %d initial read %v", p.ID, got)
				}
				p.Barrier()
				if p.ID == writer {
					p.Read(v) // write preceded by read, as in the paper's apps
					p.Write(v, 42)
				}
				p.Barrier()
				results[p.ID] = p.Read(v)
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, g := range results {
				if g != 42 {
					t.Fatalf("proc %d read %v after write, want 42", i, g)
				}
			}
		})
	}
}

// TestRepeatedWriteReadRounds stresses copy creation/invalidation cycles
// with rotating writers.
func TestRepeatedWriteReadRounds(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary4)
			v := m.AllocAt(5, 32, -1)
			const rounds = 8
			err := m.Run(func(p *core.Proc) {
				for r := 0; r < rounds; r++ {
					writer := (r * 3) % m.P()
					if p.ID == writer {
						p.Read(v)
						p.Write(v, r)
					}
					p.Barrier()
					if got := p.Read(v); got != r {
						t.Errorf("round %d: proc %d read %v", r, p.ID, got)
					}
					p.Barrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWriteWithoutPriorRead: a write by a processor that never read the
// variable must still work (value travels to the nearest copy for the
// access tree; directory write for fixed home).
func TestWriteWithoutPriorRead(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(0, 64, "old")
			err := m.Run(func(p *core.Proc) {
				if p.ID == 15 {
					p.Write(v, "new")
				}
				p.Barrier()
				if got := p.Read(v); got != "new" {
					t.Errorf("proc %d read %v, want new", p.ID, got)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLocalHitsProduceNoTraffic: after everyone cached the value, repeated
// reads must not generate any messages (the 99% cache hit ratio phenomenon
// in the Barnes-Hut force phase relies on this).
func TestLocalHitsProduceNoTraffic(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(0, 64, 5)
			var snap []mesh.LinkLoad
			err := m.Run(func(p *core.Proc) {
				p.Read(v)
				p.Barrier()
				// Let all barrier release messages drain, then snapshot.
				p.Wait(50000)
				if p.ID == 0 {
					snap = m.Net.Loads()
				}
				p.Wait(1000) // everyone starts reading after the snapshot
				for i := 0; i < 10; i++ {
					if got := p.Read(v); got != 5 {
						t.Errorf("hit read %v", got)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if c := m.Net.Congestion(snap); c.TotalMsgs != 0 {
				t.Fatalf("local hits produced %d link messages", c.TotalMsgs)
			}
		})
	}
}

func TestAllStrategiesDistinctVars(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			ids := make([]core.VarID, m.P())
			for i := 0; i < m.P(); i++ {
				ids[i] = m.AllocAt(i, 16, i*10)
			}
			err := m.Run(func(p *core.Proc) {
				// Read your right neighbor's variable.
				r := (p.ID + 1) % m.P()
				if got := p.Read(ids[r]); got != r*10 {
					t.Errorf("proc %d read neighbor var %v, want %d", p.ID, got, r*10)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBarrierBlocksUntilAll(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			arrived := 0
			err := m.Run(func(p *core.Proc) {
				// Stagger arrivals: proc i arrives at time 100*i.
				p.Wait(float64(p.ID) * 100)
				arrived++
				p.Barrier()
				if arrived != m.P() {
					t.Errorf("proc %d passed the barrier with %d/%d arrived",
						p.ID, arrived, m.P())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBarrierRepeats(t *testing.T) {
	m := newTestMachine(t, 4, 4, accesstree.Factory(), decomp.Ary2)
	count := make([]int, m.P())
	err := m.Run(func(p *core.Proc) {
		for r := 0; r < 20; r++ {
			count[p.ID]++
			p.Barrier()
			// After barrier r, everyone must have counted r+1.
			for q := 0; q < m.P(); q++ {
				if count[q] != count[p.ID] {
					t.Errorf("round %d: proc %d sees count[%d]=%d != %d",
						r, p.ID, q, count[q], count[p.ID])
					return
				}
			}
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierReduceSum(t *testing.T) {
	m := newTestMachine(t, 4, 4, accesstree.Factory(), decomp.Ary4)
	want := 0
	for i := 0; i < m.P(); i++ {
		want += i
	}
	err := m.Run(func(p *core.Proc) {
		got := p.BarrierReduce(p.ID, 8, func(a, b interface{}) interface{} {
			return a.(int) + b.(int)
		})
		if got != want {
			t.Errorf("proc %d reduce = %v, want %d", p.ID, got, want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierOnSingleNode(t *testing.T) {
	m := newTestMachine(t, 1, 1, accesstree.Factory(), decomp.Ary2)
	err := m.Run(func(p *core.Proc) {
		p.Barrier()
		got := p.BarrierReduce(7, 8, func(a, b interface{}) interface{} {
			return a.(int) + b.(int)
		})
		if got != 7 {
			t.Errorf("single-node reduce = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(0, 16, 0)
			inside := 0
			maxInside := 0
			acquired := 0
			err := m.Run(func(p *core.Proc) {
				for r := 0; r < 5; r++ {
					p.Lock(v)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					acquired++
					p.Wait(13) // hold the lock across simulated time
					inside--
					p.Unlock(v)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if maxInside != 1 {
				t.Fatalf("%d processes in the critical section at once", maxInside)
			}
			if acquired != 5*m.P() {
				t.Fatalf("lock acquired %d times, want %d", acquired, 5*m.P())
			}
		})
	}
}

// TestLockProtectsReadModifyWrite: the canonical increment test.
func TestLockProtectsReadModifyWrite(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary4)
			v := m.AllocAt(0, 16, 0)
			const rounds = 3
			err := m.Run(func(p *core.Proc) {
				for r := 0; r < rounds; r++ {
					p.Lock(v)
					x := p.Read(v).(int)
					p.Write(v, x+1)
					p.Unlock(v)
				}
				p.Barrier()
				if got := p.Read(v).(int); got != rounds*m.P() {
					t.Errorf("counter = %d, want %d", got, rounds*m.P())
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestFreeVariable(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 2, 2, f, decomp.Ary2)
			v := m.AllocAt(0, 16, 1)
			err := m.Run(func(p *core.Proc) {
				p.Read(v)
				p.Barrier()
				if p.ID == 0 {
					m.Free(v)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if recover() == nil {
					t.Error("access to freed variable did not panic")
				}
			}()
			m.Var(v)
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			run := func() (float64, uint64) {
				m := newTestMachine(t, 4, 4, f, decomp.Ary2)
				vars := make([]core.VarID, 8)
				for i := range vars {
					vars[i] = m.AllocAt(i%m.P(), 64, i)
				}
				err := m.Run(func(p *core.Proc) {
					for r := 0; r < 4; r++ {
						x := p.Read(vars[(p.ID+r)%len(vars)])
						_ = x
						if p.ID%4 == r {
							p.Write(vars[p.ID%len(vars)], p.ID*r)
						}
						p.Barrier()
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				c := m.Net.Congestion(nil)
				return m.Elapsed(), c.TotalBytes
			}
			t1, b1 := run()
			t2, b2 := run()
			if t1 != t2 || b1 != b2 {
				t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
			}
		})
	}
}

// TestVariableRWQueue exercises the FIFO admission through concurrent
// readers and writers on one variable.
func TestVariableRWQueue(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			v := m.AllocAt(0, 256, 0)
			err := m.Run(func(p *core.Proc) {
				for r := 0; r < 3; r++ {
					if p.ID%3 == 0 {
						p.Write(v, p.ID*100+r)
					} else {
						_ = p.Read(v)
					}
				}
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCongestionATBeatsFHOnBroadcastPattern is a miniature of the paper's
// central claim: when one variable is read by everybody, the access tree
// multicasts along the tree while the fixed home serves everyone one by
// one, so the access tree's congestion is lower.
func TestCongestionATBeatsFHOnBroadcastPattern(t *testing.T) {
	congestion := func(f core.Factory) uint64 {
		m := core.MustNewMachine(core.Config{
			Rows: 8, Cols: 8, Seed: 7, Tree: decomp.Ary4, Strategy: f,
		})
		v := m.AllocAt(0, 1024, "blob")
		if err := m.Run(func(p *core.Proc) {
			p.Read(v)
		}); err != nil {
			t.Fatal(err)
		}
		return m.Net.Congestion(nil).MaxBytes
	}
	at := congestion(accesstree.Factory())
	fh := congestion(fixedhome.Factory())
	if at >= fh {
		t.Fatalf("access tree congestion %d not below fixed home %d", at, fh)
	}
}

func TestStrategyNames(t *testing.T) {
	m := newTestMachine(t, 4, 4, accesstree.Factory(), decomp.Ary4K16)
	if got := m.Strat.Name(); got != "4-16-ary access tree" {
		t.Errorf("access tree name %q", got)
	}
	m2 := newTestMachine(t, 4, 4, fixedhome.Factory(), decomp.Ary2)
	if got := m2.Strat.Name(); got != "fixed home" {
		t.Errorf("fixed home name %q", got)
	}
}

func TestAllocValidation(t *testing.T) {
	m := newTestMachine(t, 2, 2, fixedhome.Factory(), decomp.Ary2)
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc with size 0 did not panic")
		}
	}()
	m.AllocAt(0, 0, nil)
}

func ExampleMachine() {
	m := core.MustNewMachine(core.Config{
		Rows: 2, Cols: 2, Seed: 1,
		Tree:     decomp.Ary2,
		Strategy: accesstree.Factory(),
	})
	v := m.AllocAt(0, 8, "hello")
	_ = m.Run(func(p *core.Proc) {
		if p.ID == 3 {
			fmt.Println(p.Read(v))
		}
	})
	// Output: hello
}
