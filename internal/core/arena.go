package core

// TxnSlab is how many transaction records a TxnArena materializes per
// slab.
const TxnSlab = 64

// TxnArena slab-allocates the strategies' transaction records: one slab
// materializes TxnSlab records as a single contiguous block — the Init
// hook wires each record's companion state (its future, path buffer, ...)
// from sibling blocks it allocates alongside — so a transaction's whole
// lifetime state sits side by side and warm-up costs a few allocations
// per slab instead of a few per record. Records recycle through a free
// stack; the simulation is single-threaded, so no locking is needed.
// Callers reset record fields on acquire/release, the arena only manages
// storage.
type TxnArena[T any] struct {
	// Init prepares a freshly allocated slab (e.g. points every record at
	// its slot in a companion sim.Future block). May be nil.
	Init func(recs []T)

	free []*T
}

// Acquire returns a recycled record, growing the arena by one slab when
// empty.
func (a *TxnArena[T]) Acquire() *T {
	if len(a.free) == 0 {
		recs := make([]T, TxnSlab)
		if a.Init != nil {
			a.Init(recs)
		}
		for i := range recs {
			a.free = append(a.free, &recs[i])
		}
	}
	r := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	return r
}

// Release returns a record to the free stack. Safe only once nothing
// references it anymore (for the strategies: after the requester's Await
// returned).
func (a *TxnArena[T]) Release(r *T) {
	a.free = append(a.free, r)
}
