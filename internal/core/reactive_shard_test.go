package core_test

import (
	"errors"
	"sync/atomic"
	"testing"

	"diva/internal/apps/matmul"
	"diva/internal/apps/stencil"
	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/sim"
)

// Shard-invariance fuzz and cancellation semantics of the reactive mode.
// The workloads here are hand-optimized (no data management strategy), the
// only machines that run on more than one kernel shard — DSM machines are
// forced sequential — so they are where the reactive transport's cross-
// shard determinism claim is actually testable.

// reactiveTraj is everything a run exposes that must be shard-invariant.
type reactiveTraj struct {
	fp      uint64
	fs      mesh.FaultStats
	elapsed float64
}

// TestReactiveShardInvariance: randomized fault schedules × transport
// tunings × hand-optimized workloads, each run at 1, 2 and 4 kernel
// shards — fingerprints, transport counters and simulated times must be
// bit-identical. This is the fuzz leg of the determinism claim: timers,
// per-channel sequences and jitter draws all advance in node event order,
// which no shard partition may perturb.
func TestReactiveShardInvariance(t *testing.T) {
	cases := []struct {
		name           string
		seed           uint64
		gen            mesh.FaultGen
		ackUS, backoff float64
		retries        int
	}{
		{"links-fast", 41,
			mesh.FaultGen{LinkFailures: 2, MeanDownUS: 5000, HorizonUS: 40000}, 500, 2, 3},
		{"churn-mixed", 97,
			mesh.FaultGen{LinkFailures: 1, NodeChurn: 2, MeanDownUS: 8000, HorizonUS: 60000}, 1000, 1.5, 2},
		{"churn-patient", 7,
			mesh.FaultGen{NodeChurn: 1, MeanDownUS: 20000, HorizonUS: 30000}, 2000, 2, 5},
	}
	workloads := []struct {
		name string
		run  func(m *core.Machine) (float64, error)
	}{
		{"matmul", func(m *core.Machine) (float64, error) {
			res, err := matmul.RunHandOpt(m, matmul.Config{BlockInts: 16, Seed: 5, Check: true})
			return res.ElapsedUS, err
		}},
		{"stencil", func(m *core.Machine) (float64, error) {
			res, err := stencil.Run(m, stencil.Config{Iters: 3, HaloInts: 32, Check: true, Seed: 5})
			return res.ElapsedUS, err
		}},
	}
	for _, tc := range cases {
		for _, w := range workloads {
			t.Run(tc.name+"/"+w.name, func(t *testing.T) {
				run := func(shards int) reactiveTraj {
					gen := tc.gen
					m, err := core.NewMachine(core.Config{
						Rows: 4, Cols: 4, Seed: tc.seed, Tree: decomp.Ary4,
						FaultGen:     &gen,
						Recovery:     core.RecoveryReactive,
						AckTimeoutUS: tc.ackUS, MaxRetries: tc.retries, Backoff: tc.backoff,
						Shards: shards,
					})
					if err != nil {
						t.Fatal(err)
					}
					if got := m.Shards(); got != shards {
						t.Fatalf("machine runs on %d shards, want %d", got, shards)
					}
					elapsed, err := w.run(m)
					if err != nil {
						t.Fatal(err)
					}
					return reactiveTraj{m.K.Fingerprint(), m.Net.FaultStats(), elapsed}
				}
				base := run(1)
				if base.fs.AckMsgs == 0 {
					t.Fatalf("transport idle — the workload exercised nothing: %+v", base.fs)
				}
				for _, shards := range []int{2, 4} {
					if got := run(shards); got != base {
						t.Errorf("%d shards diverged from sequential:\n%+v\n%+v", shards, got, base)
					}
				}
			})
		}
	}
}

// TestReactiveDeterminismAfterCancel: canceling a reactive run mid-outage —
// with retransmission timers pending — reports a *CanceledError, leaves the
// machine un-snapshottable, and keeps a snapshot taken before the canceled
// run fully valid: two forks of it replay the remainder bit-identically.
func TestReactiveDeterminismAfterCancel(t *testing.T) {
	sched := mesh.FaultSchedule{
		{AtUS: 200, Kind: mesh.FaultNodeDown, A: 5},
		{AtUS: 500000, Kind: mesh.FaultNodeUp, A: 5},
	}
	m := newReactiveMachine(t, testStrategies()["fixedhome"], sched)
	v := m.AllocAt(0, 64, 0)
	workload := func(mm *core.Machine) error {
		return mm.Run(func(p *core.Proc) {
			for r := 0; r < 8; r++ {
				if p.ID == (r*5)%mm.P() {
					p.Read(v)
					p.Write(v, r+1)
				}
				p.Barrier()
				p.Read(v)
				p.Barrier()
			}
		})
	}

	// Snapshot the fresh (quiescent) machine, then cancel the run from an
	// event deep inside the outage: the flag is raised at t=5000 and the
	// kernel stops at the next checkpoint — with node 5 cut off and its
	// traffic outstanding on retransmission timers.
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var flag atomic.Bool
	m.K.SetCancel(&flag)
	m.K.At(5000, func() { flag.Store(true) })
	err = workload(m)
	var ce *sim.CanceledError
	if !errors.As(err, &ce) || !errors.Is(err, sim.ErrCanceled) {
		t.Fatalf("canceled run returned %v, want *sim.CanceledError", err)
	}
	if ce.Events == 0 {
		t.Fatalf("canceled at %d events, want > 0", ce.Events)
	}
	if n := m.K.PendingTimers(); n == 0 {
		t.Fatal("no retransmission timers pending at cancellation — the test lost its point")
	}
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("canceled (non-quiescent) machine produced a snapshot")
	}

	// The pre-cancel snapshot is untouched: two forks replay the full
	// workload (across the outage and its heal) identically.
	rest := func() (uint64, mesh.FaultStats) {
		fork, err := snap.Fork(core.ForkOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload(fork); err != nil {
			t.Fatal(err)
		}
		return fork.K.Fingerprint(), fork.Net.FaultStats()
	}
	fpA, fsA := rest()
	fpB, fsB := rest()
	if fpA != fpB || fsA != fsB {
		t.Errorf("forks of the pre-cancel snapshot diverged:\n%x %+v\n%x %+v", fpA, fsA, fpB, fsB)
	}
}
