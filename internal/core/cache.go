package core

import "container/list"

// Cache tracks the copies stored in one node's local memory module and
// implements the least-recently-used replacement the paper describes ("if
// the local memory module is full then data objects will be replaced in
// least recently used fashion").
//
// Entries are inserted by the data management strategy; the eviction
// callback gives the strategy the chance to refuse (for the access tree
// strategy, only copies whose removal keeps the copy component connected
// may go) and to send the required notification message.
//
// With capacity 0 (unbounded, the paper's default configuration) the cache
// is a no-op: nothing is tracked, nothing is ever replaced.
type Cache struct {
	capacity  int
	bytes     int
	lru       *list.List // front = most recent; values are *cacheEntry
	index     map[interface{}]*list.Element
	evictions uint64
}

type cacheEntry struct {
	key   interface{}
	size  int
	evict func() bool // try to drop the copy; false = not evictable now
}

// Bounded reports whether the cache enforces a capacity.
func (c *Cache) Bounded() bool { return c.capacity > 0 }

// Bytes returns the tracked copy bytes (0 for unbounded caches).
func (c *Cache) Bytes() int { return c.bytes }

// Len returns the number of tracked entries.
func (c *Cache) Len() int {
	if c.lru == nil {
		return 0
	}
	return c.lru.Len()
}

// Evictions counts successful replacements.
func (c *Cache) Evictions() uint64 { return c.evictions }

func (c *Cache) init() {
	if c.lru == nil {
		c.lru = list.New()
		c.index = make(map[interface{}]*list.Element)
	}
}

// Insert records a new copy of the given size. evict is invoked when the
// entry is selected for replacement; it must drop the copy and return true,
// or return false if the copy cannot be dropped right now. Inserting an
// existing key just refreshes it.
func (c *Cache) Insert(key interface{}, size int, evict func() bool) {
	if !c.Bounded() {
		return
	}
	c.init()
	if e, ok := c.index[key]; ok {
		c.lru.MoveToFront(e)
		return
	}
	e := c.lru.PushFront(&cacheEntry{key: key, size: size, evict: evict})
	c.index[key] = e
	c.bytes += size
	c.enforce()
}

// InsertRestored records an entry during snapshot restore: like Insert but
// it never triggers replacement, so the captured entry set is reinstated
// verbatim — even when it exceeds capacity (entries that refused eviction
// can leave a source cache over capacity; the fork must start in exactly
// that state, and its next real Insert enforces just as the source's would).
func (c *Cache) InsertRestored(key interface{}, size int, evict func() bool) {
	if !c.Bounded() {
		return
	}
	c.init()
	if _, ok := c.index[key]; ok {
		return
	}
	e := c.lru.PushFront(&cacheEntry{key: key, size: size, evict: evict})
	c.index[key] = e
	c.bytes += size
}

// Touch marks the copy as recently used.
func (c *Cache) Touch(key interface{}) {
	if !c.Bounded() || c.index == nil {
		return
	}
	if e, ok := c.index[key]; ok {
		c.lru.MoveToFront(e)
	}
}

// Remove forgets a copy (invalidation or Free). Unknown keys are ignored.
func (c *Cache) Remove(key interface{}) {
	if !c.Bounded() || c.index == nil {
		return
	}
	if e, ok := c.index[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.lru.Remove(e)
		delete(c.index, key)
		c.bytes -= ent.size
	}
}

// enforce drops least-recently-used evictable entries until the cache fits.
func (c *Cache) enforce() {
	if c.bytes <= c.capacity {
		return
	}
	// Walk from the back (least recently used). Entries that refuse
	// eviction are skipped this round; they will be retried on the next
	// insertion.
	for e := c.lru.Back(); e != nil && c.bytes > c.capacity; {
		prev := e.Prev()
		ent := e.Value.(*cacheEntry)
		if ent.evict() {
			// evict is expected to remove the entry (via Remove); guard
			// against implementations that do not.
			if _, still := c.index[ent.key]; still {
				c.lru.Remove(e)
				delete(c.index, ent.key)
				c.bytes -= ent.size
			}
			c.evictions++
		}
		e = prev
	}
}
