package core

import (
	"fmt"

	"diva/internal/mesh"
	"diva/internal/sim"
	"diva/internal/xrand"
)

// This file implements machine snapshot/fork: a deep copy of a quiescent
// machine's entire simulated state — kernel clock/sequence/fingerprint,
// network links and inboxes, variables, caches, barrier epochs, and the
// strategy's protocol state — from which any number of independent machines
// can be forked. A fork continues the run exactly where the snapshot was
// taken: fork-then-run is bit-identical (fingerprints and all simulated
// metrics) to continuing the original machine, which the A/B tests pin.
//
// Snapshots are only legal at quiescence: simulated processes are
// goroutines whose stacks cannot be copied, so every process must have
// finished, no event may be pending, and no transaction may be in flight.
// The practical shape is "run a warm-up workload to completion, snapshot,
// fork per query" — and the same capture doubles as a checkpoint for
// crash-consistent long runs.
//
// A fork is built by constructing a fresh machine from the pinned config
// (construction is deterministic: the same seed replays the same barrier
// root draw and strategy stream split) and then overwriting every piece of
// mutable state with deep copies from the snapshot. The snapshot itself is
// immutable after capture, so concurrent forks from one snapshot are safe —
// the serve layer relies on this.

// Forker is the optional interface a Strategy implements to support
// Machine.Snapshot and fork. Both built-in strategies (accesstree,
// fixedhome) implement it; a machine whose strategy does not cannot be
// snapshotted.
type Forker interface {
	// SnapshotState returns an immutable deep copy of the strategy's
	// mutable state, including the per-variable protocol state. vars
	// indexes the machine's variables by id (nil entries are freed). It
	// fails when protocol state that cannot be captured is live (pending
	// invalidations, queued lock requests, a held lock).
	SnapshotState(vars []*Variable) (interface{}, error)
	// RestoreState deep-copies a SnapshotState result onto this strategy
	// (bound to an identically configured machine), installing the
	// per-variable protocol state on the fork's variable records. The blob
	// is never mutated, so many forks can restore from one.
	RestoreState(state interface{}, vars []*Variable) error
	// RestoreCacheEntry re-registers one bounded-cache entry under the
	// strategy's own key type. The machine layer replays entries in the
	// source cache's LRU order; the insert must not trigger replacement
	// (Cache.InsertRestored).
	RestoreCacheEntry(vars []*Variable, key interface{}) error
	// Reseed re-derives the strategy's private random stream from a fresh
	// seed, so a fork diverges from its siblings in every future random
	// draw (new variable placements). State inherited from the snapshot is
	// unaffected.
	Reseed(seed uint64)
}

// seedSalt decorrelates the machine RNG from the raw user seed; InitVar
// streams are further split off per strategy. faultSalt splits off the
// fault-schedule draw entirely — it must not advance the machine RNG, or a
// machine given the drawn schedule explicitly would diverge.
// reactSalt splits off the reactive transport's jitter streams the same way.
const (
	seedSalt  = 0xd1b54a32d192ed03
	faultSalt = 0x9e6c63d0876a9a35
	reactSalt = 0xc2b2ae3d27d4eb4f
)

// Snapshot is a deep copy of a quiescent machine's simulated state.
// Immutable after capture; Fork any number of times, concurrently.
type Snapshot struct {
	cfg     Config
	kern    sim.KernelState
	cluster *sim.ClusterState
	net     *mesh.NetworkState
	rng     xrand.State
	vars    []varSnap
	barrier barrierSnap
	caches  []cacheSnap
	strat   interface{}
}

// varSnap captures one variable record. Data is shared by reference —
// values are immutable by the library-wide Write contract.
type varSnap struct {
	present bool
	size    int
	creator int
	data    interface{}
	local   [localBits / 64]uint64
}

type barrierSnap struct {
	epoch    []uint64
	batched  uint64
	cascaded uint64
	aborted  uint64
}

// cacheSnap is one node cache's entry keys in LRU→MRU order plus its
// replacement counter; entry sizes are re-derived from the variables.
type cacheSnap struct {
	keys      []interface{}
	evictions uint64
}

// ForkOptions tunes Snapshot.Fork.
type ForkOptions struct {
	// Reseed re-derives the fork's random streams (machine RNG and the
	// strategy's) from Seed: forks with distinct seeds diverge in every
	// future random draw while inheriting the snapshot's state unchanged.
	Reseed bool
	Seed   uint64
	// Concurrent, when non-nil, overrides the config's Concurrent flag —
	// the serve layer forks with true so concurrent queries do not fight
	// over the process-wide GOMAXPROCS pin. Simulated results are
	// unaffected either way.
	Concurrent *bool
}

// Snapshot captures the machine's state. The machine must be quiescent:
// every spawned process finished, no event pending, no transaction active.
// Machines with a strategy require it to implement Forker.
func (m *Machine) Snapshot() (*Snapshot, error) {
	if n := m.K.Pending(); n > 0 {
		return nil, fmt.Errorf("diva: snapshot of a non-quiescent machine: %d events pending", n)
	}
	for _, p := range m.procs {
		if !p.Done() {
			return nil, fmt.Errorf("diva: snapshot of a non-quiescent machine: process p%d still live", p.ID)
		}
	}
	for _, v := range m.vars {
		if v != nil && v.busy() {
			return nil, fmt.Errorf("diva: snapshot with an active transaction on variable %d", v.ID)
		}
	}
	for _, st := range m.bar.state {
		if len(st) > 0 {
			return nil, fmt.Errorf("diva: snapshot with a partial barrier arrival")
		}
	}
	for i, f := range m.bar.waiting {
		if f != nil {
			return nil, fmt.Errorf("diva: snapshot with process p%d blocked in a barrier", i)
		}
	}
	var forker Forker
	if m.Strat != nil {
		var ok bool
		if forker, ok = m.Strat.(Forker); !ok {
			return nil, fmt.Errorf("diva: strategy %q does not support snapshot/fork", m.Strat.Name())
		}
	}
	s := &Snapshot{rng: m.RNG.State()}
	// Pin the resolved shard count so a fork never re-reads DIVA_SHARDS.
	s.cfg = m.Cfg
	s.cfg.Shards = m.Shards()
	if m.cluster != nil {
		cs, err := m.cluster.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("diva: snapshot: %w", err)
		}
		s.cluster = &cs
	} else {
		ks, err := m.K.SnapshotState()
		if err != nil {
			return nil, fmt.Errorf("diva: snapshot: %w", err)
		}
		s.kern = ks
	}
	ns, err := m.Net.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("diva: snapshot: %w", err)
	}
	s.net = ns
	s.vars = make([]varSnap, len(m.vars))
	for i, v := range m.vars {
		if v == nil {
			continue
		}
		s.vars[i] = varSnap{present: true, size: v.Size, creator: v.Creator, data: v.Data, local: v.local}
	}
	s.barrier = barrierSnap{
		epoch:    append([]uint64(nil), m.bar.epoch...),
		batched:  m.bar.batched,
		cascaded: m.bar.cascaded,
		aborted:  m.bar.aborted,
	}
	s.caches = make([]cacheSnap, len(m.caches))
	for i := range m.caches {
		c := &m.caches[i]
		cs := cacheSnap{evictions: c.evictions}
		if c.lru != nil {
			for e := c.lru.Back(); e != nil; e = e.Prev() {
				cs.keys = append(cs.keys, e.Value.(*cacheEntry).key)
			}
		}
		s.caches[i] = cs
	}
	if forker != nil {
		blob, err := forker.SnapshotState(m.vars)
		if err != nil {
			return nil, fmt.Errorf("diva: snapshot: %w", err)
		}
		s.strat = blob
	}
	return s, nil
}

// Fork builds an independent machine resuming from the snapshot: running a
// workload on the fork is bit-identical to running it on the source
// machine. Any number of forks can be taken, concurrently.
func (s *Snapshot) Fork(o ForkOptions) (*Machine, error) {
	cfg := s.cfg
	if o.Concurrent != nil {
		cfg.Concurrent = *o.Concurrent
	}
	m, err := NewMachine(cfg)
	if err != nil {
		return nil, fmt.Errorf("diva: fork: %w", err)
	}
	if m.Shards() != cfg.Shards {
		return nil, fmt.Errorf("diva: fork resolved %d shards, snapshot has %d", m.Shards(), cfg.Shards)
	}
	if s.cluster != nil {
		if m.cluster == nil {
			return nil, fmt.Errorf("diva: fork of a sharded snapshot built a sequential machine")
		}
		if err := m.cluster.RestoreState(*s.cluster); err != nil {
			return nil, fmt.Errorf("diva: fork: %w", err)
		}
	} else if err := m.K.RestoreState(s.kern); err != nil {
		return nil, fmt.Errorf("diva: fork: %w", err)
	}
	if err := m.Net.RestoreState(s.net); err != nil {
		return nil, fmt.Errorf("diva: fork: %w", err)
	}
	m.RNG.SetState(s.rng)
	m.vars = make([]*Variable, len(s.vars))
	for i := range s.vars {
		vs := &s.vars[i]
		if !vs.present {
			continue
		}
		m.vars[i] = &Variable{
			ID:      VarID(i),
			Size:    vs.size,
			Creator: vs.creator,
			Data:    vs.data,
			local:   vs.local,
		}
	}
	copy(m.bar.epoch, s.barrier.epoch)
	m.bar.batched, m.bar.cascaded, m.bar.aborted = s.barrier.batched, s.barrier.cascaded, s.barrier.aborted
	if s.strat != nil {
		f := m.Strat.(Forker) // same config built the same strategy type
		if err := f.RestoreState(s.strat, m.vars); err != nil {
			return nil, fmt.Errorf("diva: fork: %w", err)
		}
		for node := range s.caches {
			for _, key := range s.caches[node].keys {
				if err := f.RestoreCacheEntry(m.vars, key); err != nil {
					return nil, fmt.Errorf("diva: fork: %w", err)
				}
			}
		}
	}
	for i := range s.caches {
		m.caches[i].evictions = s.caches[i].evictions
	}
	if o.Reseed {
		m.RNG = xrand.New(o.Seed ^ seedSalt)
		m.Net.ReactReseed(o.Seed ^ reactSalt)
		if s.strat != nil {
			m.Strat.(Forker).Reseed(o.Seed)
		}
	}
	return m, nil
}
