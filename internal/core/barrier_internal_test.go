package core

import (
	"testing"

	"diva/internal/decomp"
	"diva/internal/mesh"
)

// fastParams is a machine model with negligible startup costs: release
// fan-outs are not serialized by 100us startups, so the wake spread stays
// tight and the speculative batched release can prove itself exact.
func fastParams() mesh.Params {
	return mesh.Params{
		BytesPerUS:      100,
		HopLatencyUS:    1,
		StartupSendUS:   2,
		StartupRecvUS:   2,
		LocalDeliveryUS: 1,
	}
}

// barrierTrajectory runs rounds of barriers (with a reduction every other
// round) and returns everything observable about the run.
func barrierTrajectory(t *testing.T, cfg Config, rounds int, noBatch bool) (elapsed float64, cong mesh.Congestion, msgs [256]uint64, batched, cascaded uint64) {
	t.Helper()
	m := MustNewMachine(cfg)
	m.bar.noBatch = noBatch
	err := m.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			if r%2 == 1 {
				got := p.BarrierReduce(p.ID, 8, func(a, b interface{}) interface{} {
					return a.(int) + b.(int)
				})
				want := m.P() * (m.P() - 1) / 2
				if got != want {
					t.Errorf("round %d: reduce = %v, want %d", r, got, want)
				}
			} else {
				p.Barrier()
			}
			// A short compute keeps processes from re-entering instantly,
			// the regime where batching can commit.
			p.Compute(float64(50 + p.ID))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ = m.Net.SendStats()
	return m.Elapsed(), m.Net.Congestion(nil), msgs, m.bar.batched, m.bar.cascaded
}

// TestBatchedReleaseMatchesCascade: on machines where the speculative
// batched release commits, every simulated observable — elapsed time,
// congestion, per-kind send counts — must be bit-identical to the plain
// message cascade. This is the exactness contract of the batching gate.
func TestBatchedReleaseMatchesCascade(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"mesh4x4-ary2-gcel", Config{Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary2}},
		{"mesh4x4-ary4", Config{Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary4, Net: fastParams()}},
		{"mesh8x8-ary16", Config{Rows: 8, Cols: 8, Seed: 9, Tree: decomp.Ary16, Net: fastParams()}},
		{"mesh2x2-ary2", Config{Rows: 2, Cols: 2, Seed: 3, Tree: decomp.Ary2, Net: fastParams()}},
		{"mesh4x8-gcel", Config{Rows: 4, Cols: 8, Seed: 5, Tree: decomp.Ary4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const rounds = 12
			elA, congA, msgsA, batched, _ := barrierTrajectory(t, tc.cfg, rounds, false)
			elB, congB, msgsB, bB, _ := barrierTrajectory(t, tc.cfg, rounds, true)
			if bB != 0 {
				t.Fatalf("noBatch run still batched %d epochs", bB)
			}
			if elA != elB {
				t.Errorf("elapsed: batched-gate %v != cascade %v", elA, elB)
			}
			if congA != congB {
				t.Errorf("congestion: batched-gate %+v != cascade %+v", congA, congB)
			}
			if msgsA != msgsB {
				t.Errorf("send stats diverged: %v vs %v",
					msgsA[KindBarrierRelease], msgsB[KindBarrierRelease])
			}
			t.Logf("%s: %d/%d epochs batched", tc.name, batched, rounds)
		})
	}
}

// TestBatchedReleaseCommitsSomewhere guards the fast path against silently
// rotting: binary decomposition trees keep the release fan-outs (and thus
// the wake spread) tight enough that the gate commits even with the GCel's
// 100us startups.
func TestBatchedReleaseCommitsSomewhere(t *testing.T) {
	_, _, _, batched, cascaded := barrierTrajectory(t, Config{
		Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary2,
	}, 12, false)
	t.Logf("batched=%d cascaded=%d", batched, cascaded)
	if batched == 0 {
		t.Fatal("batched release never committed on the low-startup machine")
	}
}
