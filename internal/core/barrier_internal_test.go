package core

import (
	"testing"

	"diva/internal/decomp"
	"diva/internal/mesh"
)

// fastParams is a machine model with negligible startup costs: release
// fan-outs are not serialized by 100us startups, so the wake spread stays
// tight and the speculative batched release can prove itself exact.
func fastParams() mesh.Params {
	return mesh.Params{
		BytesPerUS:      100,
		HopLatencyUS:    1,
		StartupSendUS:   2,
		StartupRecvUS:   2,
		LocalDeliveryUS: 1,
	}
}

// barrierTrajectory runs rounds of barriers (with a reduction every other
// round) and returns everything observable about the run.
func barrierTrajectory(t *testing.T, cfg Config, rounds int, noBatch, twoStage bool) (elapsed float64, cong mesh.Congestion, msgs [256]uint64, b *barrier) {
	t.Helper()
	m := MustNewMachine(cfg)
	m.bar.noBatch = noBatch
	m.Net.SetTwoStageDelivery(twoStage)
	err := m.Run(func(p *Proc) {
		for r := 0; r < rounds; r++ {
			if r%2 == 1 {
				got := p.BarrierReduce(p.ID, 8, func(a, b interface{}) interface{} {
					return a.(int) + b.(int)
				})
				want := m.P() * (m.P() - 1) / 2
				if got != want {
					t.Errorf("round %d: reduce = %v, want %d", r, got, want)
				}
			} else {
				p.Barrier()
			}
			// A short compute keeps processes from re-entering instantly,
			// the regime where batching can commit.
			p.Compute(float64(50 + p.ID))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs, _ = m.Net.SendStats()
	return m.Elapsed(), m.Net.Congestion(nil), msgs, m.bar
}

// TestBatchedReleaseMatchesCascade: on machines where the speculative
// batched release commits, every simulated observable — elapsed time,
// congestion, per-kind send counts — must be bit-identical to the plain
// message cascade. This is the exactness contract of the batching gate.
func TestBatchedReleaseMatchesCascade(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"mesh4x4-ary2-gcel", Config{Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary2}},
		{"mesh4x4-ary4", Config{Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary4, Net: fastParams()}},
		{"mesh8x8-ary16", Config{Rows: 8, Cols: 8, Seed: 9, Tree: decomp.Ary16, Net: fastParams()}},
		{"mesh2x2-ary2", Config{Rows: 2, Cols: 2, Seed: 3, Tree: decomp.Ary2, Net: fastParams()}},
		{"mesh4x8-gcel", Config{Rows: 4, Cols: 8, Seed: 5, Tree: decomp.Ary4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const rounds = 12
			elA, congA, msgsA, barA := barrierTrajectory(t, tc.cfg, rounds, false, false)
			batched := barA.batched
			elB, congB, msgsB, barB := barrierTrajectory(t, tc.cfg, rounds, true, false)
			if barB.batched != 0 {
				t.Fatalf("noBatch run still batched %d epochs", barB.batched)
			}
			if elA != elB {
				t.Errorf("elapsed: batched-gate %v != cascade %v", elA, elB)
			}
			if congA != congB {
				t.Errorf("congestion: batched-gate %+v != cascade %+v", congA, congB)
			}
			if msgsA != msgsB {
				t.Errorf("send stats diverged: %v vs %v",
					msgsA[KindBarrierRelease], msgsB[KindBarrierRelease])
			}
			t.Logf("%s: %d/%d epochs batched", tc.name, batched, rounds)
		})
	}
}

// TestBatchedReleaseCommitsSomewhere guards the fast path against silently
// rotting: binary decomposition trees keep the release fan-outs (and thus
// the wake spread) tight enough that the gate commits even with the GCel's
// 100us startups.
func TestBatchedReleaseCommitsSomewhere(t *testing.T) {
	_, _, _, bar := barrierTrajectory(t, Config{
		Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary2,
	}, 12, false, false)
	batched, cascaded := bar.batched, bar.cascaded
	t.Logf("batched=%d cascaded=%d", batched, cascaded)
	if batched == 0 {
		t.Fatal("batched release never committed on the low-startup machine")
	}
}

// TestBarrierReleaseWithFusedDelivery is the delivery-pipeline A/B on the
// barrier's two release paths: with fused (single-event) delivery and
// with the two-stage oracle, every simulated observable and the
// batched/cascaded split must be bit-identical — on machines where the
// batch commits, and on machines where the speculative replay starts and
// the exactness gate rolls the InlineSendAt/InlineRecvAt journal back.
func TestBarrierReleaseWithFusedDelivery(t *testing.T) {
	for _, tc := range []struct {
		name      string
		cfg       Config
		wantAbort bool
	}{
		// Binary tree on GCel params: the batch commits (PR 4).
		{"commit-mesh4x4-ary2-gcel", Config{Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary2}, false},
		// Low-startup machine, tight binary fan-out: commits.
		{"commit-mesh2x2-ary2", Config{Rows: 2, Cols: 2, Seed: 3, Tree: decomp.Ary2, Net: fastParams()}, false},
		// Low-startup but 16-wide fan-out under this trajectory's compute
		// skew: the replay starts every epoch and rolls back.
		{"abort-mesh8x8-ary16", Config{Rows: 8, Cols: 8, Seed: 9, Tree: decomp.Ary16, Net: fastParams()}, true},
		// Ary4 on GCel params: the 100us startups serialize the fan-out
		// enough that the replay aborts and rolls back its journal.
		{"abort-mesh4x4-ary4-gcel", Config{Rows: 4, Cols: 4, Seed: 7, Tree: decomp.Ary4}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const rounds = 12
			elF, congF, msgsF, barF := barrierTrajectory(t, tc.cfg, rounds, false, false)
			batF, casF, abF, fusedF := barF.batched, barF.cascaded, barF.aborted, barF.m.K.Stat.FusedDeliveries
			elT, congT, msgsT, barT := barrierTrajectory(t, tc.cfg, rounds, false, true)
			batT, casT, abT, fusedT := barT.batched, barT.cascaded, barT.aborted, barT.m.K.Stat.FusedDeliveries
			if fusedF == 0 {
				t.Error("fused run delivered no fused hops")
			}
			if fusedT != 0 {
				t.Error("two-stage run still delivered fused hops")
			}
			if elF != elT || congF != congT || msgsF != msgsT {
				t.Errorf("observables diverged: fused (t=%v, %+v) vs two-stage (t=%v, %+v)",
					elF, congF, elT, congT)
			}
			if batF != batT || casF != casT || abF != abT {
				t.Errorf("release paths diverged: fused %d/%d batched/cascaded (%d aborts), two-stage %d/%d (%d aborts)",
					batF, casF, abF, batT, casT, abT)
			}
			if tc.wantAbort && abF == 0 {
				t.Errorf("expected the speculative replay to start and roll back, but no aborts happened (batched=%d cascaded=%d)", batF, casF)
			}
			if !tc.wantAbort && batF == 0 {
				t.Errorf("expected the batch to commit, got batched=0 (cascaded=%d, aborts=%d)", casF, abF)
			}
		})
	}
}
