package core_test

import (
	"testing"

	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/mesh"
)

// Tests of the reactive fault-tolerance mode end to end: timeout-based
// failure detection, ack/retransmit transport, and strategy-level recovery
// (fixedhome home failover, accesstree re-issue), under node-down windows
// that force real drops and give-ups.

// reactiveFaults is a schedule with two node outages long enough (vs the
// 2 ms default ack timeout x 5 retries) to trigger give-ups, healed well
// before any plausible end of the run.
func reactiveFaults() mesh.FaultSchedule {
	return mesh.FaultSchedule{
		{AtUS: 200, Kind: mesh.FaultNodeDown, A: 5},
		{AtUS: 60000, Kind: mesh.FaultNodeUp, A: 5},
		{AtUS: 400, Kind: mesh.FaultNodeDown, A: 10},
		{AtUS: 90000, Kind: mesh.FaultNodeUp, A: 10},
	}
}

func newReactiveMachine(t *testing.T, f core.Factory, sched mesh.FaultSchedule) *core.Machine {
	t.Helper()
	m, err := core.NewMachine(core.Config{
		Rows: 4, Cols: 4,
		Seed:     9001,
		Tree:     decomp.Ary4,
		Strategy: f,
		Faults:   sched,
		Recovery: core.RecoveryReactive,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// reactiveWorkload is a write/read rotation workload with a lock-guarded
// counter; the processes on the downed nodes keep running (only their
// network interfaces fail), so every message to or from them exercises the
// transport's recovery.
func reactiveWorkload(m *core.Machine, t *testing.T) {
	v := m.AllocAt(0, 64, 0)
	c := m.AllocAt(3, 16, 0)
	const rounds = 4
	err := m.Run(func(p *core.Proc) {
		for r := 0; r < rounds; r++ {
			writer := (r * 5) % m.P()
			if p.ID == writer {
				p.Read(v)
				p.Write(v, r+1)
			}
			p.Barrier()
			if got := p.Read(v); got != r+1 {
				t.Errorf("proc %d round %d read %v, want %d", p.ID, r, got, r+1)
			}
			p.Barrier()
		}
		if p.ID%3 == 0 {
			p.Lock(c)
			p.Write(c, p.Read(c).(int)+1)
			p.Unlock(c)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < m.P(); i += 3 {
		want++
	}
	if got := m.Var(c).Data; got != want {
		t.Errorf("lock-guarded counter = %v, want %d", got, want)
	}
}

// TestReactiveRecoveryBothStrategies: a reactive machine under node
// outages completes the workload with correct results for both strategies,
// and the transport's failure detection actually fired.
func TestReactiveRecoveryBothStrategies(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newReactiveMachine(t, f, reactiveFaults())
			reactiveWorkload(m, t)
			fs := m.Net.FaultStats()
			if fs.Dropped == 0 {
				t.Errorf("no drops under node outages: %+v", fs)
			}
			if fs.Retransmits == 0 {
				t.Errorf("no retransmissions under node outages: %+v", fs)
			}
			if fs.Detected == 0 {
				t.Errorf("no failure detections under node outages: %+v", fs)
			}
			if fs.AckMsgs == 0 {
				t.Errorf("transport sent no acks: %+v", fs)
			}
		})
	}
}

// TestReactiveDeterministic: two identical reactive runs produce identical
// kernel fingerprints and transport counters.
func TestReactiveDeterministic(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			run := func() (uint64, mesh.FaultStats) {
				m := newReactiveMachine(t, f, reactiveFaults())
				reactiveWorkload(m, t)
				return m.K.Fingerprint(), m.Net.FaultStats()
			}
			fp1, fs1 := run()
			fp2, fs2 := run()
			if fp1 != fp2 {
				t.Errorf("fingerprints differ: %x vs %x", fp1, fp2)
			}
			if fs1 != fs2 {
				t.Errorf("fault stats differ:\n%+v\n%+v", fs1, fs2)
			}
		})
	}
}

// TestReactiveOracleDiverge: the two recovery modes simulate different
// machines — under faults their fingerprints must differ (oracle holds,
// reactive drops), while fault-free reactive still differs from fault-free
// oracle (acks and timers are simulated traffic).
func TestReactiveOracleDiverge(t *testing.T) {
	build := func(recovery string, sched mesh.FaultSchedule) uint64 {
		m, err := core.NewMachine(core.Config{
			Rows: 4, Cols: 4, Seed: 9001, Tree: decomp.Ary4,
			Strategy: testStrategies()["fixedhome"],
			Faults:   sched, Recovery: recovery,
		})
		if err != nil {
			t.Fatal(err)
		}
		reactiveWorkload(m, t)
		return m.K.Fingerprint()
	}
	if o, r := build(core.RecoveryOracle, reactiveFaults()), build(core.RecoveryReactive, reactiveFaults()); o == r {
		t.Errorf("oracle and reactive runs under faults share fingerprint %x", o)
	}
	if o, r := build(core.RecoveryOracle, nil), build(core.RecoveryReactive, nil); o == r {
		t.Errorf("fault-free oracle and reactive runs share fingerprint %x", o)
	}
}

// TestReactiveConfigValidation: transport parameters are rejected without
// reactive recovery; unknown modes are rejected.
func TestReactiveConfigValidation(t *testing.T) {
	base := core.Config{Rows: 2, Cols: 2, Seed: 1}
	bad := base
	bad.AckTimeoutUS = 500
	if _, err := core.NewMachine(bad); err == nil {
		t.Error("ack timeout accepted without reactive recovery")
	}
	bad = base
	bad.Recovery = "psychic"
	if _, err := core.NewMachine(bad); err == nil {
		t.Error("unknown recovery mode accepted")
	}
	ok := base
	ok.Recovery = core.RecoveryOracle
	if _, err := core.NewMachine(ok); err != nil {
		t.Errorf("oracle mode rejected: %v", err)
	}
	ok = base
	ok.Recovery = core.RecoveryReactive
	ok.AckTimeoutUS, ok.MaxRetries, ok.Backoff = 1000, 3, 1.5
	if _, err := core.NewMachine(ok); err != nil {
		t.Errorf("reactive mode with explicit params rejected: %v", err)
	}
}

// TestReactiveForkAB: snapshot a reactive machine mid-run (between fault
// windows, with suspects possibly still recorded), then (a) continue the
// original and (b) run the same remainder on a fork — bit-identical
// fingerprints and transport counters.
func TestReactiveForkAB(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			sched := mesh.FaultSchedule{
				{AtUS: 200, Kind: mesh.FaultNodeDown, A: 5},
				{AtUS: 60000, Kind: mesh.FaultNodeUp, A: 5},
			}
			m := newReactiveMachine(t, f, sched)
			v := m.AllocAt(0, 64, 0)
			warm := func(mm *core.Machine) {
				err := mm.Run(func(p *core.Proc) {
					if p.ID == 5 {
						p.Read(v)
						p.Write(v, 1)
					}
					p.Barrier()
					p.Read(v)
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			rest := func(mm *core.Machine) (uint64, mesh.FaultStats) {
				err := mm.Run(func(p *core.Proc) {
					if p.ID == 11 {
						p.Read(v)
						p.Write(v, 2)
					}
					p.Barrier()
					if got := p.Read(v); got != 2 {
						t.Errorf("proc %d read %v, want 2", p.ID, got)
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				return mm.K.Fingerprint(), mm.Net.FaultStats()
			}
			warm(m)
			snap, err := m.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			fork, err := snap.Fork(core.ForkOptions{})
			if err != nil {
				t.Fatal(err)
			}
			fpA, fsA := rest(m)
			fpB, fsB := rest(fork)
			if fpA != fpB {
				t.Errorf("fork diverged: %x vs %x", fpA, fpB)
			}
			if fsA != fsB {
				t.Errorf("fork fault stats diverged:\n%+v\n%+v", fsA, fsB)
			}
		})
	}
}
