package accesstree

import (
	"fmt"

	"diva/internal/core"
	"diva/internal/sim"
	"diva/internal/xrand"
)

// core.Forker implementation: deep-copy capture and restore of the access
// tree strategy's state for machine snapshot/fork. Captured per variable:
// the embedding (root position / ablation seed), the dense node table
// (membership, directional pointers, edge bits, access counts), the lock
// arrows and token position, and the remap overrides. The transaction
// arena, the recycled node-table pool and the shared embedding tables are
// deliberately not captured — arenas hold no live transactions at
// quiescence, and the embedding tables are a pure function of the tree,
// rebuilt lazily per fork.

type snapState struct {
	rng    xrand.State
	remaps int
	vars   []*varSnapState // indexed by VarID; nil for freed variables
}

type varSnapState struct {
	rootPos     int
	seed        uint64
	creator     int
	nodes       []nodeState
	lock        *lockSnapState
	posOverride map[int]int
	remaps      int
}

// lockSnapState is a quiescent lock's persistent state: the arrows left by
// path reversal and the leaf the free token rests at. Everything else
// (queue, waiters, holder) must be empty/free at quiescence.
type lockSnapState struct {
	arrows  map[int]int32
	tokenAt int
}

// SnapshotState implements core.Forker.
func (s *strategy) SnapshotState(vars []*core.Variable) (interface{}, error) {
	st := &snapState{rng: s.rng.State(), remaps: s.remaps, vars: make([]*varSnapState, len(vars))}
	for i, v := range vars {
		if v == nil {
			continue
		}
		vs := vstate(v)
		if len(vs.pending) > 0 {
			return nil, fmt.Errorf("accesstree: variable %d has a pending invalidation", v.ID)
		}
		vsn := &varSnapState{
			rootPos: vs.rootPos,
			seed:    vs.seed,
			creator: vs.creator,
			nodes:   append([]nodeState(nil), vs.nodes...),
			remaps:  vs.remaps,
		}
		if ls := vs.lock; ls != nil {
			if ls.inFlight || len(ls.waiting) > 0 || ls.holder != -1 || len(ls.next) > 0 || !ls.tokenFree {
				return nil, fmt.Errorf("accesstree: variable %d has lock activity in flight", v.ID)
			}
			lsn := &lockSnapState{tokenAt: ls.tokenAt, arrows: make(map[int]int32, len(ls.arrows))}
			for k, a := range ls.arrows {
				lsn.arrows[k] = a
			}
			vsn.lock = lsn
		}
		if vs.posOverride != nil {
			vsn.posOverride = make(map[int]int, len(vs.posOverride))
			for k, p := range vs.posOverride {
				vsn.posOverride[k] = p
			}
		}
		st.vars[i] = vsn
	}
	return st, nil
}

// RestoreState implements core.Forker.
func (s *strategy) RestoreState(state interface{}, vars []*core.Variable) error {
	st, ok := state.(*snapState)
	if !ok {
		return fmt.Errorf("accesstree: foreign snapshot state %T", state)
	}
	if len(st.vars) != len(vars) {
		return fmt.Errorf("accesstree: snapshot has %d variables, machine has %d", len(st.vars), len(vars))
	}
	s.rng.SetState(st.rng)
	s.remaps = st.remaps
	for i, vsn := range st.vars {
		if vsn == nil {
			continue
		}
		v := vars[i]
		if v == nil {
			return fmt.Errorf("accesstree: snapshot has state for freed variable %d", i)
		}
		vs := &varState{
			rootPos: vsn.rootPos,
			seed:    vsn.seed,
			creator: vsn.creator,
			nodes:   append([]nodeState(nil), vsn.nodes...),
			remaps:  vsn.remaps,
		}
		if !s.opts.RandomEmbedding {
			vs.posTab = s.posTable(vs.rootPos)
		}
		if lsn := vsn.lock; lsn != nil {
			ls := &lockState{
				arrows:    make(map[int]int32, len(lsn.arrows)),
				next:      make(map[int]int),
				tokenAt:   lsn.tokenAt,
				tokenFree: true,
				waiting:   make(map[int]*sim.Future),
				holder:    -1,
			}
			for k, a := range lsn.arrows {
				ls.arrows[k] = a
			}
			vs.lock = ls
		}
		if vsn.posOverride != nil {
			vs.posOverride = make(map[int]int, len(vsn.posOverride))
			for k, p := range vsn.posOverride {
				vs.posOverride[k] = p
			}
		}
		v.State = vs
	}
	return nil
}

// RestoreCacheEntry implements core.Forker: re-registers one bounded-cache
// entry (an atKey from the source machine) with a fresh eviction closure.
func (s *strategy) RestoreCacheEntry(vars []*core.Variable, key interface{}) error {
	k, ok := key.(atKey)
	if !ok {
		return fmt.Errorf("accesstree: foreign cache key %T", key)
	}
	if int(k.v) < 0 || int(k.v) >= len(vars) || vars[k.v] == nil {
		return fmt.Errorf("accesstree: cache entry for unknown variable %d", k.v)
	}
	v := vars[k.v]
	node, proc := k.node, s.procOf(vstate(v), k.node)
	s.m.Cache(proc).InsertRestored(key, v.Size, func() bool {
		return s.tryEvict(v, node, proc)
	})
	return nil
}

// Reseed implements core.Forker: the strategy's private stream is re-derived
// from the fork seed, so future variable placements diverge between forks.
func (s *strategy) Reseed(seed uint64) {
	s.rng = xrand.New(seed ^ 0x1d8e4e27c47d124f)
}
