package accesstree

import (
	"testing"

	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/xrand"
)

// The tests in this file are white-box: after driving random read/write
// traffic through the protocol they inspect the per-variable tree state and
// verify the structural invariants the competitive analysis relies on:
//
//  1. the copy holders form a non-empty connected component of the tree;
//  2. every directional pointer chain leads to a copy holder;
//  3. component edge bits are symmetric and span the component;
//  4. the committed value is the last value written.

func newTestMachine(spec decomp.Spec, rows, cols int, seed uint64) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols, Seed: seed, Tree: spec,
		Strategy: Factory(),
	})
}

// members collects the member node set of a variable.
func members(s *strategy, v *core.Variable) map[int]bool {
	vs := vstate(v)
	set := make(map[int]bool)
	for id := range s.t.Nodes {
		if vs.nodes[id].member {
			set[id] = true
		}
	}
	return set
}

// checkInvariants validates the four protocol invariants for one variable.
func checkInvariants(t *testing.T, m *core.Machine, v *core.Variable, want interface{}) {
	t.Helper()
	s := m.Strat.(*strategy)
	vs := vstate(v)
	set := members(s, v)
	if len(set) == 0 {
		t.Fatal("no copy of the variable exists")
	}

	// 1. Connectivity: BFS through tree edges within the member set.
	var start int
	for id := range set {
		start = id
		break
	}
	visited := map[int]bool{start: true}
	queue := []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := &s.t.Nodes[cur]
		nbs := append([]int{}, n.Children...)
		if n.Parent != -1 {
			nbs = append(nbs, n.Parent)
		}
		for _, nb := range nbs {
			if set[nb] && !visited[nb] {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	if len(visited) != len(set) {
		t.Fatalf("copy component disconnected: %d members, %d reachable", len(set), len(visited))
	}

	// 2. Pointer chains terminate at members.
	for id := range s.t.Nodes {
		cur := id
		for steps := 0; ; steps++ {
			if steps > len(s.t.Nodes) {
				t.Fatalf("pointer chain from node %d does not terminate", id)
			}
			st := vs.nodes[cur]
			if st.member {
				break
			}
			switch st.toward {
			case towardUp:
				cur = s.t.Nodes[cur].Parent
				if cur == -1 {
					t.Fatalf("pointer chain from %d ran past the root", id)
				}
			case towardSelf:
				t.Fatalf("non-member node %d points to itself", cur)
			default:
				cur = s.t.Nodes[cur].Children[st.toward]
			}
		}
	}

	// 3. Edge bits: symmetric, only between members, spanning the component.
	for id := range set {
		st := vs.nodes[id]
		n := &s.t.Nodes[id]
		if st.edges&parentBit != 0 {
			if n.Parent == -1 {
				t.Fatalf("root node %d has a parent edge bit", id)
			}
			if !set[n.Parent] {
				t.Fatalf("edge bit from %d to non-member parent", id)
			}
			pst := vs.nodes[n.Parent]
			if pst.edges&childBit(n.ChildIndex) == 0 {
				t.Fatalf("asymmetric edge bits between %d and parent %d", id, n.Parent)
			}
		}
		for i, c := range n.Children {
			if st.edges&childBit(i) != 0 {
				if !set[c] {
					t.Fatalf("edge bit from %d to non-member child %d", id, c)
				}
				cst := vs.nodes[c]
				if cst.edges&parentBit == 0 {
					t.Fatalf("asymmetric edge bits between %d and child %d", id, c)
				}
			}
		}
	}
	// Spanning: BFS along edge bits only.
	visited = map[int]bool{start: true}
	queue = []int{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		st := vs.nodes[cur]
		n := &s.t.Nodes[cur]
		if st.edges&parentBit != 0 && !visited[n.Parent] {
			visited[n.Parent] = true
			queue = append(queue, n.Parent)
		}
		for i, c := range n.Children {
			if st.edges&childBit(i) != 0 && !visited[c] {
				visited[c] = true
				queue = append(queue, c)
			}
		}
	}
	if len(visited) != len(set) {
		t.Fatalf("edge bits do not span the component: %d of %d", len(visited), len(set))
	}

	// 4. Value.
	if v.Data != want {
		t.Fatalf("committed value %v, want %v", v.Data, want)
	}
}

func TestInvariantsAfterSingleRead(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 1)
	v := m.AllocAt(0, 64, "x")
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 15 {
			p.Read(v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, m, m.Var(v), "x")
	s := m.Strat.(*strategy)
	set := members(s, m.Var(v))
	// The component must contain both leaves.
	if !set[s.t.LeafOfProc[0]] || !set[s.t.LeafOfProc[15]] {
		t.Fatal("read did not leave copies at both endpoints")
	}
}

func TestInvariantsAfterWriteShrinksComponent(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 2)
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		_ = p.Read(v) // everyone holds a copy
		p.Barrier()
		if p.ID == 5 {
			p.Write(v, 99)
		}
	}); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, m, m.Var(v), 99)
	s := m.Strat.(*strategy)
	set := members(s, m.Var(v))
	// After the write the component is the path from the old nearest
	// member (the writer's own leaf, since it held a copy) — so just the
	// writer's leaf.
	if !set[s.t.LeafOfProc[5]] {
		t.Fatal("writer does not hold a copy after its write")
	}
	if len(set) != 1 {
		t.Fatalf("component has %d members after a write by a holder, want 1", len(set))
	}
}

func TestWriteByNonHolderLeavesPathCopies(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 3)
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 12 {
			p.Write(v, 7)
		}
	}); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, m, m.Var(v), 7)
	s := m.Strat.(*strategy)
	set := members(s, m.Var(v))
	// Component = tree path from the creator's leaf (nearest member) to
	// the writer's leaf.
	path := s.t.TreePath(s.t.LeafOfProc[0], s.t.LeafOfProc[12])
	if len(set) != len(path) {
		t.Fatalf("component size %d, want path length %d", len(set), len(path))
	}
	for _, n := range path {
		if !set[n] {
			t.Fatalf("path node %d missing from component", n)
		}
	}
}

// TestRandomTrafficInvariantsRandomEmbedding repeats the random-traffic
// invariant check under the theoretical analysis' embedding (ablation D1),
// with and without remapping.
func TestRandomTrafficInvariantsRandomEmbedding(t *testing.T) {
	for _, threshold := range []int{0, 6} {
		m := core.MustNewMachine(core.Config{
			Rows: 4, Cols: 4, Seed: 31, Tree: decomp.Ary2,
			Strategy: FactoryOpts(Options{RandomEmbedding: true, RemapThreshold: threshold}),
		})
		const nvars = 5
		vars := make([]core.VarID, nvars)
		for i := range vars {
			vars[i] = m.AllocAt(i%m.P(), 32, -1)
		}
		if err := m.Run(func(p *core.Proc) {
			r := xrand.New(uint64(p.ID)*3 + 7)
			for step := 0; step < 10; step++ {
				vi := r.Intn(nvars)
				if r.Intn(3) == 0 {
					p.Write(vars[vi], p.ID*100+step)
				} else {
					_ = p.Read(vars[vi])
				}
				if step%5 == 4 {
					p.Barrier()
				}
			}
		}); err != nil {
			t.Fatalf("threshold %d: %v", threshold, err)
		}
		for i := range vars {
			v := m.Var(vars[i])
			checkInvariants(t, m, v, v.Data)
		}
	}
}

// TestRandomTrafficInvariants drives random concurrent reads and writes and
// then checks every invariant, across arities and mesh shapes.
func TestRandomTrafficInvariants(t *testing.T) {
	specs := []decomp.Spec{decomp.Ary2, decomp.Ary4, decomp.Ary16, decomp.Ary2K4, decomp.Ary4K16}
	shapes := [][2]int{{4, 4}, {5, 3}, {2, 8}, {8, 8}}
	for si, spec := range specs {
		for hi, shape := range shapes {
			spec, shape := spec, shape
			name := spec.Name() + "/" + string(rune('a'+hi))
			t.Run(name, func(t *testing.T) {
				m := newTestMachine(spec, shape[0], shape[1], uint64(si*10+hi))
				const nvars = 6
				vars := make([]core.VarID, nvars)
				for i := range vars {
					vars[i] = m.AllocAt(i%m.P(), 32, -1)
				}
				last := make([]interface{}, nvars)
				for i := range last {
					last[i] = -1
				}
				if err := m.Run(func(p *core.Proc) {
					r := xrand.New(uint64(p.ID)*77 + 5)
					for step := 0; step < 12; step++ {
						vi := r.Intn(nvars)
						if r.Intn(3) == 0 {
							p.Write(vars[vi], p.ID*1000+step)
						} else {
							_ = p.Read(vars[vi])
						}
						// A uniform number of barriers per process keeps
						// the barrier well-formed while still mixing
						// transaction interleavings.
						if step%4 == 3 {
							p.Barrier()
						}
					}
				}); err != nil {
					t.Fatal(err)
				}
				for i := range vars {
					v := m.Var(vars[i])
					checkInvariants(t, m, v, v.Data) // value checked reflexively
				}
			})
		}
	}
}
