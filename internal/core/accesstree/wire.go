package accesstree

import (
	"encoding/gob"

	"diva/internal/core"
	"diva/internal/xrand"
)

// Wire form of the access-tree strategy snapshot (core.WireSnapshotter /
// core.StratWire), mirroring snapState with exported, gob-encodable
// fields.

// Wire is the serializable access-tree strategy state.
type Wire struct {
	RNG    xrand.State
	Remaps int
	Vars   []VarWire // indexed by VarID; Present=false for freed variables
}

// VarWire is one variable's tree state. Values, not pointers: gob rejects
// nil elements in pointer slices, and freed variables leave holes.
type VarWire struct {
	Present     bool
	RootPos     int
	Seed        uint64
	Creator     int
	Nodes       []NodeWire
	Lock        *LockWire
	PosOverride map[int]int
	Remaps      int
}

// NodeWire is one dense node-table entry.
type NodeWire struct {
	Member   bool
	Toward   int32
	Edges    uint32
	Accesses uint32
}

// LockWire is a quiescent lock: path-reversal arrows plus the leaf the
// free token rests at.
type LockWire struct {
	Arrows  map[int]int32
	TokenAt int
}

func init() {
	gob.RegisterName("diva/accesstree.Wire", &Wire{})
}

// Wire implements core.WireSnapshotter.
func (st *snapState) Wire() core.StratWire {
	w := &Wire{RNG: st.rng, Remaps: st.remaps, Vars: make([]VarWire, len(st.vars))}
	for i, vsn := range st.vars {
		if vsn == nil {
			continue
		}
		vw := VarWire{
			Present: true,
			RootPos: vsn.rootPos,
			Seed:    vsn.seed,
			Creator: vsn.creator,
			Nodes:   make([]NodeWire, len(vsn.nodes)),
			Remaps:  vsn.remaps,
		}
		for j, n := range vsn.nodes {
			vw.Nodes[j] = NodeWire{Member: n.member, Toward: n.toward, Edges: n.edges, Accesses: n.accesses}
		}
		if lsn := vsn.lock; lsn != nil {
			lw := &LockWire{TokenAt: lsn.tokenAt, Arrows: make(map[int]int32, len(lsn.arrows))}
			for k, a := range lsn.arrows {
				lw.Arrows[k] = a
			}
			vw.Lock = lw
		}
		if vsn.posOverride != nil {
			vw.PosOverride = make(map[int]int, len(vsn.posOverride))
			for k, p := range vsn.posOverride {
				vw.PosOverride[k] = p
			}
		}
		w.Vars[i] = vw
	}
	return w
}

// Blob implements core.StratWire.
func (w *Wire) Blob() interface{} {
	st := &snapState{rng: w.RNG, remaps: w.Remaps, vars: make([]*varSnapState, len(w.Vars))}
	for i := range w.Vars {
		vw := &w.Vars[i]
		if !vw.Present {
			continue
		}
		vsn := &varSnapState{
			rootPos: vw.RootPos,
			seed:    vw.Seed,
			creator: vw.Creator,
			nodes:   make([]nodeState, len(vw.Nodes)),
			remaps:  vw.Remaps,
		}
		for j, n := range vw.Nodes {
			vsn.nodes[j] = nodeState{member: n.Member, toward: n.Toward, edges: n.Edges, accesses: n.Accesses}
		}
		if lw := vw.Lock; lw != nil {
			lsn := &lockSnapState{tokenAt: lw.TokenAt, arrows: make(map[int]int32, len(lw.Arrows))}
			for k, a := range lw.Arrows {
				lsn.arrows[k] = a
			}
			vsn.lock = lsn
		}
		if vw.PosOverride != nil {
			vsn.posOverride = make(map[int]int, len(vw.PosOverride))
			for k, p := range vw.PosOverride {
				vsn.posOverride[k] = p
			}
		}
		st.vars[i] = vsn
	}
	return st
}

// CacheKey implements core.StratWire.
func (w *Wire) CacheKey(k core.KeyWire) interface{} {
	return atKey{v: core.VarID(k.Var), node: k.Node}
}

// WireKey implements core.WireKeyer.
func (k atKey) WireKey() core.KeyWire {
	return core.KeyWire{Var: int32(k.v), Node: k.node}
}
