package accesstree

import (
	"testing"

	"diva/internal/core"
	"diva/internal/decomp"
)

func remapMachine(threshold int) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 77, Tree: decomp.Ary2,
		Strategy: FactoryOpts(Options{RandomEmbedding: true, RemapThreshold: threshold}),
	})
}

func TestRemapRequiresRandomEmbedding(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RemapThreshold without RandomEmbedding accepted")
		}
	}()
	FactoryOpts(Options{RemapThreshold: 5})
}

// TestRemapTriggersAndStaysCorrect: heavy traffic on one variable must
// trigger migrations, and the protocol must stay correct afterwards.
func TestRemapTriggersAndStaysCorrect(t *testing.T) {
	m := remapMachine(8)
	v := m.AllocAt(0, 64, 0)
	const rounds = 12
	if err := m.Run(func(p *core.Proc) {
		for r := 0; r < rounds; r++ {
			if got := p.Read(v); got == nil {
				t.Error("nil read")
			}
			p.Barrier()
			if p.ID == (r*5)%m.P() {
				p.Write(v, r+1)
			}
			p.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := Remaps(m.Var(v)); got == 0 {
		t.Fatal("no remapping happened despite heavy traffic")
	}
	checkInvariants(t, m, m.Var(v), rounds)
}

// TestRemapOffByDefault: the paper's configuration performs no migrations.
func TestRemapOffByDefault(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 77, Tree: decomp.Ary2,
		Strategy: Factory(),
	})
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		for r := 0; r < 6; r++ {
			p.Read(v)
			p.Barrier()
			if p.ID == r {
				p.Write(v, r)
			}
			p.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	if got := Remaps(m.Var(v)); got != 0 {
		t.Fatalf("%d remaps with remapping disabled", got)
	}
}

// TestRemapMovesHotNode: after remapping, positions actually change (the
// override table is consulted).
func TestRemapMovesHotNode(t *testing.T) {
	m := remapMachine(4)
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		for r := 0; r < 10; r++ {
			p.Read(v)
			p.Barrier()
			if p.ID == 15 {
				p.Write(v, r)
			}
			p.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	vs := vstate(m.Var(v))
	if len(vs.posOverride) == 0 {
		t.Fatal("no position overrides recorded")
	}
	s := m.Strat.(*strategy)
	for id, pos := range vs.posOverride {
		if !s.t.Nodes[id].Region.ContainsProc(pos) {
			t.Fatalf("remapped node %d at processor %d outside its region %+v",
				id, pos, s.t.Nodes[id].Region)
		}
	}
}

// TestRemapChargesMessages: migrations are not free.
func TestRemapChargesMessages(t *testing.T) {
	run := func(threshold int) uint64 {
		m := remapMachine(threshold)
		v := m.AllocAt(0, 64, 0)
		if err := m.Run(func(p *core.Proc) {
			for r := 0; r < 10; r++ {
				p.Read(v)
				p.Barrier()
				if p.ID == 0 {
					p.Write(v, r)
				}
				p.Barrier()
			}
		}); err != nil {
			t.Fatal(err)
		}
		msgs, _ := m.Net.SendStats()
		return msgs[kindRemapMove] + msgs[kindRemapNote]
	}
	if with := run(4); with == 0 {
		t.Fatal("remapping sent no messages")
	}
	if without := run(0); without != 0 {
		t.Fatal("messages sent with remapping disabled")
	}
}

// TestRemapLeavesLeavesPinned: processor leaves can never move.
func TestRemapLeavesPinned(t *testing.T) {
	m := remapMachine(2)
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		for r := 0; r < 8; r++ {
			p.Read(v)
			p.Barrier()
			if p.ID == 3 {
				p.Write(v, r)
			}
			p.Barrier()
		}
	}); err != nil {
		t.Fatal(err)
	}
	vs := vstate(m.Var(v))
	s := m.Strat.(*strategy)
	for id := range vs.posOverride {
		if s.t.Nodes[id].Leaf() {
			t.Fatalf("leaf node %d was remapped", id)
		}
	}
}
