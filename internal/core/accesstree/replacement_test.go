package accesstree

import (
	"testing"

	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/xrand"
)

// TestBoundedCacheEvicts: with a capacity that cannot hold every copy, LRU
// replacement must kick in, the component invariants must survive, and all
// values must remain readable.
func TestBoundedCacheEvicts(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 42, Tree: decomp.Ary2,
		Strategy:      Factory(),
		CacheCapacity: 300, // under five 64-byte copies per node
	})
	const nvars = 24
	vars := make([]core.VarID, nvars)
	for i := range vars {
		vars[i] = m.AllocAt(i%m.P(), 64, i)
	}
	results := make(map[int]interface{})
	if err := m.Run(func(p *core.Proc) {
		if p.ID != 9 {
			return
		}
		// One processor reads everything; its cache cannot hold it all.
		for i, v := range vars {
			got := p.Read(v)
			results[i] = got
		}
		// Read them all again (some will be misses again after eviction).
		for i, v := range vars {
			if got := p.Read(v); got != results[i] {
				t.Errorf("second read of var %d = %v, want %v", i, got, results[i])
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	evictions := uint64(0)
	for n := 0; n < m.P(); n++ {
		evictions += m.Cache(n).Evictions()
	}
	if evictions == 0 {
		t.Fatal("no replacements despite bounded capacity")
	}
	for i, id := range vars {
		v := m.Var(id)
		if v.Data != i {
			t.Fatalf("var %d corrupted: %v", i, v.Data)
		}
		checkInvariants(t, m, v, i)
	}
}

// TestSoleCopyNeverEvicted: eviction must refuse to drop the last copy.
func TestSoleCopyNeverEvicted(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 2, Cols: 2, Seed: 1, Tree: decomp.Ary2,
		Strategy:      Factory(),
		CacheCapacity: 100, // a single 64-byte copy fits, two do not
	})
	v1 := m.AllocAt(0, 64, "one")
	v2 := m.AllocAt(0, 64, "two")
	if err := m.Run(func(p *core.Proc) {}); err != nil {
		t.Fatal(err)
	}
	// Both variables' sole copies live at node 0, over capacity — but a
	// sole copy is not evictable, so both must survive.
	for _, id := range []core.VarID{v1, v2} {
		s := m.Strat.(*strategy)
		set := members(s, m.Var(id))
		if len(set) == 0 {
			t.Fatalf("sole copy of %d was evicted", id)
		}
	}
}

// TestUnboundedCacheNeverEvicts matches the paper's default configuration.
func TestUnboundedCacheNeverEvicts(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 9)
	vars := make([]core.VarID, 64)
	for i := range vars {
		vars[i] = m.AllocAt(0, 4096, i)
	}
	if err := m.Run(func(p *core.Proc) {
		for _, v := range vars {
			_ = p.Read(v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < m.P(); n++ {
		if m.Cache(n).Evictions() != 0 {
			t.Fatal("unbounded cache evicted")
		}
	}
}

// --- Lock / arrow protocol white-box tests ---

func TestLockTokenStartsAtCreator(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 10)
	v := m.AllocAt(6, 16, nil)
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 6 {
			// The creator acquires its own lock without any messages.
			p.Lock(v)
			p.Unlock(v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if c := m.Net.Congestion(nil); c.TotalMsgs != 0 {
		t.Fatalf("creator lock acquisition produced %d messages", c.TotalMsgs)
	}
}

func TestLockTokenMovesToLastHolder(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 11)
	v := m.AllocAt(0, 16, nil)
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 13 {
			p.Lock(v)
			p.Unlock(v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s := m.Strat.(*strategy)
	ls := s.lockOf(m.Var(v))
	if ls.tokenAt != s.t.LeafOfProc[13] || !ls.tokenFree {
		t.Fatalf("token at node %d free=%v, want at proc 13's leaf, free", ls.tokenAt, ls.tokenFree)
	}
	// A re-acquisition by 13 is now free.
	if len(ls.next) != 0 || len(ls.waiting) != 0 {
		t.Fatal("lock queue not empty after release")
	}
}

// TestArrowPathReversal: after a lock migrates, the arrows route the next
// request to the new token position, not the creator.
func TestArrowPathReversal(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 12)
	v := m.AllocAt(0, 16, nil)
	var phase2 interface{}
	if err := m.Run(func(p *core.Proc) {
		if p.ID == 15 {
			p.Lock(v)
			p.Unlock(v)
		}
		p.Barrier()
		if p.ID == 15 {
			// Second acquisition by the same processor: token is local.
			phase2 = m.Net.Loads()
			p.Lock(v)
			p.Unlock(v)
		}
	}); err != nil {
		t.Fatal(err)
	}
	c := m.Net.Congestion(phase2.([]mesh.LinkLoad))
	if c.TotalMsgs != 0 {
		t.Fatalf("re-acquisition after migration cost %d messages", c.TotalMsgs)
	}
}

// TestLockContentionAllServed: heavy random contention; everyone who asks
// eventually holds the lock exactly the right number of times.
func TestLockContentionAllServed(t *testing.T) {
	for _, spec := range []decomp.Spec{decomp.Ary2, decomp.Ary4, decomp.Ary4K16} {
		t.Run(spec.Name(), func(t *testing.T) {
			m := newTestMachine(spec, 4, 4, 13)
			v := m.AllocAt(5, 16, nil)
			const rounds = 6
			inside, maxInside, total := 0, 0, 0
			if err := m.Run(func(p *core.Proc) {
				r := xrand.New(uint64(p.ID) + 99)
				for i := 0; i < rounds; i++ {
					p.Wait(float64(r.Intn(500)))
					p.Lock(v)
					inside++
					if inside > maxInside {
						maxInside = inside
					}
					total++
					p.Wait(float64(r.Intn(50)))
					inside--
					p.Unlock(v)
				}
			}); err != nil {
				t.Fatal(err)
			}
			if maxInside != 1 {
				t.Fatalf("mutual exclusion violated: %d inside", maxInside)
			}
			if total != rounds*m.P() {
				t.Fatalf("%d acquisitions, want %d", total, rounds*m.P())
			}
		})
	}
}

// TestManyLocksIndependent: locks on different variables do not interfere.
func TestManyLocksIndependent(t *testing.T) {
	m := newTestMachine(decomp.Ary4, 4, 4, 14)
	vars := make([]core.VarID, m.P())
	for i := range vars {
		vars[i] = m.AllocAt(i, 16, nil)
	}
	if err := m.Run(func(p *core.Proc) {
		// Everyone locks its own variable: fully parallel, no contention.
		for i := 0; i < 3; i++ {
			p.Lock(vars[p.ID])
			p.Wait(10)
			p.Unlock(vars[p.ID])
		}
	}); err != nil {
		t.Fatal(err)
	}
	if c := m.Net.Congestion(nil); c.TotalMsgs != 0 {
		t.Fatalf("uncontended local locks produced %d messages", c.TotalMsgs)
	}
}

// TestReadDuringLockHold: data transactions and lock traffic on the same
// variable coexist.
func TestReadDuringLockHold(t *testing.T) {
	m := newTestMachine(decomp.Ary2, 4, 4, 15)
	v := m.AllocAt(0, 64, 0)
	if err := m.Run(func(p *core.Proc) {
		if p.ID%2 == 0 {
			p.Lock(v)
			x := p.Read(v).(int)
			p.Write(v, x+1)
			p.Unlock(v)
		} else {
			_ = p.Read(v)
		}
		p.Barrier()
		if got := p.Read(v).(int); got != m.P()/2 {
			t.Errorf("counter %d, want %d", got, m.P()/2)
		}
	}); err != nil {
		t.Fatal(err)
	}
	checkInvariants(t, m, m.Var(v), m.P()/2)
}
