package accesstree

import (
	"math/bits"

	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/sim"
)

// reqMsg travels along the access tree. path records the visited tree
// nodes; path[0] is the requester's leaf and the last element the node the
// message is arriving at. The same payload object is threaded through all
// hops of one transaction (the simulation equivalent of the message body).
type reqMsg struct {
	v     *Variable
	write bool
	path  []int
	val   interface{} // write: the new value
	fut   *sim.Future
}

// dataMsg carries a copy back along the reversed request path. idx is the
// index in req.path the message is arriving at.
type dataMsg struct {
	req *reqMsg
	idx int
}

// invalMsg propagates the invalidation multicast.
type invalMsg struct {
	v    *Variable
	node int // receiving tree node
	from int // tree node the invalidation came from
}

// ackMsg acknowledges a completed invalidation subtree.
type ackMsg struct {
	v    *Variable
	node int // receiving tree node (the one waiting for acks)
}

// evictMsg tells a component neighbor that a copy was replaced.
type evictMsg struct {
	v    *Variable
	node int // receiving tree node
	gone int // evicted tree node
}

// Read implements core.Strategy. The caller holds the shared transaction
// slot, so pointer states can only be extended (by concurrent readers)
// while this transaction runs.
func (s *strategy) Read(p *core.Proc, v *Variable) interface{} {
	vs := vstate(v)
	leaf := s.t.LeafOfProc[p.ID]
	if st := s.node(vs, v, leaf); st.member {
		s.m.Cache(p.ID).Touch(atKey{v.ID, leaf})
		return v.Data
	}
	req := &reqMsg{v: v, path: []int{leaf}, fut: sim.NewFuture()}
	s.forward(req)
	return req.fut.Await(p.Proc)
}

// Write implements core.Strategy. The caller holds the exclusive slot: no
// other transaction on v is in flight.
func (s *strategy) Write(p *core.Proc, v *Variable, val interface{}) {
	vs := vstate(v)
	s.maybeRemap(vs, v)
	leaf := s.t.LeafOfProc[p.ID]
	st := s.node(vs, v, leaf)
	if st.member && st.edges == 0 {
		// Sole copy: a purely local write.
		v.Data = val
		s.m.Cache(p.ID).Touch(atKey{v.ID, leaf})
		return
	}
	fut := sim.NewFuture()
	if st.member {
		// The writer holds a copy (the common case: every write in the
		// paper's applications is preceded by a read): it is itself the
		// nearest member; invalidate everyone else directly.
		req := &reqMsg{v: v, write: true, path: []int{leaf}, val: val, fut: fut}
		s.serveWrite(req)
	} else {
		req := &reqMsg{v: v, write: true, path: []int{leaf}, val: val, fut: fut}
		s.forward(req)
	}
	fut.Await(p.Proc)
}

// forward sends req one hop further along the pointer chain. Called at the
// node that is the current end of req.path, which is not a member.
func (s *strategy) forward(req *reqMsg) {
	vs := vstate(req.v)
	cur := req.path[len(req.path)-1]
	st := s.node(vs, req.v, cur)
	var next int
	switch st.toward {
	case towardUp:
		next = s.t.Nodes[cur].Parent
		if next == -1 {
			panic("accesstree: pointer chain ran past the root")
		}
	case towardSelf:
		panic("accesstree: forwarding at a member node")
	default:
		next = s.t.Nodes[cur].Children[st.toward]
	}
	req.path = append(req.path, next)
	kind, size := kindReadReq, core.ReadReqBytes
	if req.write {
		kind, size = kindWriteReq, core.DataBytes(req.v.Size)
	}
	s.m.Net.Send(&mesh.Msg{
		Src: s.procOf(vs, cur), Dst: s.procOf(vs, next),
		Size: size, Kind: kind, Payload: req,
	})
}

// onReq handles a request hop arriving at req.path's last node: serve if it
// is a member, forward otherwise.
func (s *strategy) onReq(m *mesh.Msg) {
	req := m.Payload.(*reqMsg)
	vs := vstate(req.v)
	cur := req.path[len(req.path)-1]
	s.countAccess(vs, cur)
	st := s.node(vs, req.v, cur)
	if !st.member {
		s.forward(req)
		return
	}
	if req.write {
		s.serveWrite(req)
		return
	}
	// Member u serves the read: the copy travels back along the path.
	s.sendData(req, len(req.path)-1)
}

// serveWrite runs at the nearest member u (the last node of req.path): it
// starts the invalidation multicast; once all acknowledgments are in, the
// value is committed and the modified copy travels back to the writer.
func (s *strategy) serveWrite(req *reqMsg) {
	vs := vstate(req.v)
	u := req.path[len(req.path)-1]
	st := s.nodePtr(vs, u)
	edges := st.edges
	st.edges = 0
	done := func() {
		req.v.Data = req.val
		if len(req.path) == 1 {
			// u is the writer's leaf itself.
			st := s.nodePtr(vs, u)
			st.member = true
			st.toward = towardSelf
			s.cacheInsert(vs, req.v, u, s.procOf(vs, u))
			req.fut.Complete(s.m.K, req.val)
			return
		}
		s.sendData(req, len(req.path)-1)
	}
	if edges == 0 {
		done()
		return
	}
	vs.pending[u] = &invalWait{n: bits.OnesCount32(edges), ackNode: -1, done: done}
	s.multicastInval(vs, req.v, u, edges)
}

// multicastInval sends invalidations from node u along the member edges.
func (s *strategy) multicastInval(vs *varState, v *Variable, u int, edges uint32) {
	src := s.procOf(vs, u)
	n := &s.t.Nodes[u]
	if edges&parentBit != 0 {
		s.sendInval(vs, v, src, n.Parent, u)
	}
	for i := range n.Children {
		if edges&childBit(i) != 0 {
			s.sendInval(vs, v, src, n.Children[i], u)
		}
	}
}

func (s *strategy) sendInval(vs *varState, v *Variable, srcProc, to, from int) {
	s.m.Net.Send(&mesh.Msg{
		Src: srcProc, Dst: s.procOf(vs, to),
		Size: core.InvalBytes, Kind: kindInval,
		Payload: &invalMsg{v: v, node: to, from: from},
	})
}

// onInval invalidates the copy at the receiving node and forwards the
// multicast into the rest of the component.
func (s *strategy) onInval(m *mesh.Msg) {
	im := m.Payload.(*invalMsg)
	vs := vstate(im.v)
	st := s.nodePtr(vs, im.node)
	if !st.member {
		panic("accesstree: invalidation reached a non-member")
	}
	forward := st.edges &^ s.edgeBit(im.node, im.from)
	st.member = false
	st.toward = s.dirTo(im.node, im.from)
	st.edges = 0
	s.m.Cache(s.procOf(vs, im.node)).Remove(atKey{im.v.ID, im.node})
	if forward == 0 {
		s.sendAck(vs, im.v, im.node, im.from)
		return
	}
	vs.pending[im.node] = &invalWait{n: bits.OnesCount32(forward), ackNode: im.from}
	s.multicastInval(vs, im.v, im.node, forward)
}

func (s *strategy) sendAck(vs *varState, v *Variable, from, to int) {
	s.m.Net.Send(&mesh.Msg{
		Src: s.procOf(vs, from), Dst: s.procOf(vs, to),
		Size: core.AckBytes, Kind: kindAck,
		Payload: &ackMsg{v: v, node: to},
	})
}

// onAck aggregates acknowledgments back toward the multicast root.
func (s *strategy) onAck(m *mesh.Msg) {
	am := m.Payload.(*ackMsg)
	vs := vstate(am.v)
	w := vs.pending[am.node]
	if w == nil {
		panic("accesstree: stray invalidation ack")
	}
	w.n--
	if w.n > 0 {
		return
	}
	delete(vs.pending, am.node)
	if w.ackNode >= 0 {
		s.sendAck(vs, am.v, am.node, w.ackNode)
		return
	}
	w.done()
}

// sendData sends the copy one hop back along the request path, from
// path[idx] to path[idx-1].
func (s *strategy) sendData(req *reqMsg, idx int) {
	vs := vstate(req.v)
	from, to := req.path[idx], req.path[idx-1]
	// The sender records that its neighbor is about to become a member.
	st := s.nodePtr(vs, from)
	st.edges |= s.edgeBit(from, to)
	kind := kindReadData
	if req.write {
		kind = kindWriteData
	}
	s.m.Net.Send(&mesh.Msg{
		Src: s.procOf(vs, from), Dst: s.procOf(vs, to),
		Size: core.DataBytes(req.v.Size), Kind: kind,
		Payload: &dataMsg{req: req, idx: idx - 1},
	})
}

// onData installs a copy at the receiving path node and forwards the copy
// toward the requester; at the requester's leaf the transaction completes.
func (s *strategy) onData(m *mesh.Msg) {
	dm := m.Payload.(*dataMsg)
	req := dm.req
	vs := vstate(req.v)
	cur := req.path[dm.idx]
	s.countAccess(vs, cur)
	st := s.nodePtr(vs, cur)
	st.member = true
	st.toward = towardSelf
	st.edges |= s.edgeBit(cur, req.path[dm.idx+1])
	s.cacheInsert(vs, req.v, cur, m.Dst)
	if dm.idx == 0 {
		if req.write {
			req.fut.Complete(s.m.K, req.val)
		} else {
			req.fut.Complete(s.m.K, req.v.Data)
		}
		return
	}
	s.sendData(req, dm.idx)
}

// countAccess bumps the remapping counter of a node (only when remapping
// is enabled, to keep the default path allocation-free).
func (s *strategy) countAccess(vs *varState, node int) {
	if s.opts.RemapThreshold <= 0 {
		return
	}
	s.nodePtr(vs, node).accesses++
}

// edgeBit returns node's edge bit toward its tree neighbor nb.
func (s *strategy) edgeBit(node, nb int) uint32 {
	if s.t.Nodes[node].Parent == nb {
		return parentBit
	}
	if s.t.Nodes[nb].Parent != node {
		panic("accesstree: edgeBit between non-adjacent nodes")
	}
	return childBit(s.t.Nodes[nb].ChildIndex)
}

// dirTo returns the pointer value at node that leads to its neighbor nb.
func (s *strategy) dirTo(node, nb int) int32 {
	if s.t.Nodes[node].Parent == nb {
		return towardUp
	}
	if s.t.Nodes[nb].Parent != node {
		panic("accesstree: dirTo between non-adjacent nodes")
	}
	return int32(s.t.Nodes[nb].ChildIndex)
}

// atKey identifies a copy in a node cache.
type atKey struct {
	v    core.VarID
	node int
}

// cacheInsert registers the copy held for tree node `node` in the memory
// module of processor `proc`, wiring up the replacement callback. With
// unbounded caches (the paper's default) this is free: no closure is even
// constructed.
func (s *strategy) cacheInsert(vs *varState, v *Variable, node, proc int) {
	c := s.m.Cache(proc)
	if !c.Bounded() {
		return
	}
	key := atKey{v.ID, node}
	c.Insert(key, v.Size, func() bool {
		return s.tryEvict(v, node, proc)
	})
}

// tryEvict implements LRU replacement for the access tree strategy: a copy
// may only be dropped if the variable is idle and the copy is a leaf of the
// copy component (so the component stays connected and no data is lost).
// The one remaining component neighbor is notified with a small message.
func (s *strategy) tryEvict(v *Variable, node, proc int) bool {
	if v.State == nil || !v.Idle() {
		return false
	}
	vs := vstate(v)
	st, ok := vs.nodes[node]
	if !ok || !st.member {
		return false
	}
	if bits.OnesCount32(st.edges) != 1 {
		return false // sole copy or interior component node
	}
	nb := s.edgeNeighbor(node, st.edges)
	st.member = false
	st.toward = s.dirTo(node, nb)
	st.edges = 0
	// Clear the neighbor's edge bit immediately: if the notification were
	// only applied on delivery, two adjacent copies could each observe the
	// other as "remaining" and both evict, losing the last copy (a real
	// implementation prevents this with an eviction handshake; we model
	// the handshake's effect and charge its message below).
	s.nodePtr(vs, nb).edges &^= s.edgeBit(nb, node)
	s.m.Cache(proc).Remove(atKey{v.ID, node})
	s.m.Net.Send(&mesh.Msg{
		Src: proc, Dst: s.procOf(vs, nb),
		Size: core.AckBytes, Kind: kindEvict,
		Payload: &evictMsg{v: v, node: nb, gone: node},
	})
	return true
}

// edgeNeighbor maps a single-bit edge mask to the neighbor node id.
func (s *strategy) edgeNeighbor(node int, edges uint32) int {
	if edges == parentBit {
		return s.t.Nodes[node].Parent
	}
	i := bits.TrailingZeros32(edges) - 1
	return s.t.Nodes[node].Children[i]
}

// onEvict clears the component edge toward a replaced copy.
func (s *strategy) onEvict(m *mesh.Msg) {
	em := m.Payload.(*evictMsg)
	if em.v.State == nil {
		return // variable freed while the notification was in flight
	}
	vs := vstate(em.v)
	if st, ok := vs.nodes[em.node]; ok {
		st.edges &^= s.edgeBit(em.node, em.gone)
	}
}
