package accesstree

import (
	"math/bits"

	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/sim"
)

// reqMsg travels along the access tree. path records the visited tree
// nodes; path[0] is the requester's leaf and the last element the node the
// message is arriving at. The same payload object is threaded through all
// hops of one transaction (the simulation equivalent of the message body);
// it is recycled onto the strategy's free list — together with its path
// buffer and future — when the transaction completes.
type reqMsg struct {
	v     *Variable
	write bool
	path  []int
	val   interface{} // write: the new value
	fut   *sim.Future
}

// The smaller protocol messages carry no struct payload at all: the
// variable rides in Msg.Payload and the (small, dense) tree-node ids are
// packed into Msg.Tag, so every hop of the data-return, invalidation, ack
// and evict flows is allocation-free.
//
//   - data hop (kindRead/WriteData): Payload = *reqMsg, Tag = path index
//     the message arrives at;
//   - invalidation: Payload = *Variable, Tag = pack(receiving node, node
//     the invalidation came from);
//   - ack: Payload = *Variable, Tag = receiving node;
//   - evict note: Payload = *Variable, Tag = pack(receiving node, evicted
//     node).
//
// tagShift bounds the packable tree size to 2^21 nodes per field (beyond a
// 1024x1024 binary-decomposed mesh); newStrategy rejects larger trees up
// front rather than letting packTag silently corrupt ids.
const tagShift = 21

func packTag(a, b int) int       { return a<<tagShift | b }
func unpackTag(t int) (a, b int) { return t >> tagShift, t & (1<<tagShift - 1) }

// Read implements core.Strategy. The caller holds the shared transaction
// slot, so pointer states can only be extended (by concurrent readers)
// while this transaction runs.
func (s *strategy) Read(p *core.Proc, v *Variable) interface{} {
	vs := vstate(v)
	leaf := s.t.LeafOfProc[p.ID]
	if vs.nodes[leaf].member {
		// Touching the LRU only matters for bounded caches; skipping the
		// call (and the interface boxing of the key) keeps the 99%-hit
		// local read path to a few loads.
		if c := s.m.Cache(p.ID); c.Bounded() {
			c.Touch(atKey{v.ID, leaf})
		}
		return v.Data
	}
	req := s.acquireReq(v, leaf)
	s.forward(req)
	val := req.fut.Await(p.Proc)
	s.releaseReq(req)
	return val
}

// acquireReq returns a transaction record with path = [leaf] from the
// strategy's arena (a core.TxnArena slab: every record sits next to its
// future and its path buffer, carved from per-slab companion blocks). The
// path buffer has room for the longest possible pointer chain (a full
// tree path: up to the root and down to a leaf) so the per-hop appends
// never reallocate.
func (s *strategy) acquireReq(v *Variable, leaf int) *reqMsg {
	if s.txns.Init == nil {
		pathCap := 2*s.t.MaxDepth + 1
		s.txns.Init = func(recs []reqMsg) {
			futs := make([]sim.Future, len(recs))
			paths := make([]int, len(recs)*pathCap)
			for i := range recs {
				recs[i].fut = &futs[i]
				recs[i].path = paths[i*pathCap : i*pathCap : (i+1)*pathCap]
			}
		}
	}
	req := s.txns.Acquire()
	req.v = v
	req.path = append(req.path[:0], leaf)
	*req.fut = sim.Future{}
	return req
}

// releaseReq recycles a completed transaction record. Safe only after the
// requester's Await returned: at that point no message or event references
// req anymore.
func (s *strategy) releaseReq(req *reqMsg) {
	req.v = nil
	req.write = false
	req.val = nil
	s.txns.Release(req)
}

// Write implements core.Strategy. The caller holds the exclusive slot: no
// other transaction on v is in flight.
func (s *strategy) Write(p *core.Proc, v *Variable, val interface{}) {
	vs := vstate(v)
	s.maybeRemap(vs, v)
	leaf := s.t.LeafOfProc[p.ID]
	st := vs.nodes[leaf]
	if st.member && st.edges == 0 {
		// Sole copy: a purely local write.
		v.Data = val
		if c := s.m.Cache(p.ID); c.Bounded() {
			c.Touch(atKey{v.ID, leaf})
		}
		return
	}
	req := s.acquireReq(v, leaf)
	req.write = true
	req.val = val
	if st.member {
		// The writer holds a copy (the common case: every write in the
		// paper's applications is preceded by a read): it is itself the
		// nearest member; invalidate everyone else directly.
		s.serveWrite(req)
	} else {
		s.forward(req)
	}
	req.fut.Await(p.Proc)
	s.releaseReq(req)
}

// forward sends req one hop further along the pointer chain. Called at the
// node that is the current end of req.path, which is not a member.
func (s *strategy) forward(req *reqMsg) {
	vs := vstate(req.v)
	cur := req.path[len(req.path)-1]
	toward := vs.nodes[cur].toward
	var next int
	switch toward {
	case towardUp:
		next = s.t.Nodes[cur].Parent
		if next == -1 {
			panic("accesstree: pointer chain ran past the root")
		}
	case towardSelf:
		panic("accesstree: forwarding at a member node")
	default:
		next = s.t.Nodes[cur].Children[toward]
	}
	req.path = append(req.path, next)
	kind, size := kindReadReq, core.ReadReqBytes
	if req.write {
		kind, size = kindWriteReq, core.DataBytes(req.v.Size)
	}
	s.m.Net.SendPooled(s.procOf(vs, cur), s.procOf(vs, next), size, kind, req)
}

// onReq handles a request hop arriving at req.path's last node: serve if it
// is a member, forward otherwise.
func (s *strategy) onReq(m *mesh.Msg) {
	req := m.Payload.(*reqMsg)
	vs := vstate(req.v)
	cur := req.path[len(req.path)-1]
	s.countAccess(vs, cur)
	if !vs.nodes[cur].member {
		s.forward(req)
		return
	}
	if req.write {
		s.serveWrite(req)
		return
	}
	// Member u serves the read: the copy travels back along the path.
	s.sendData(req, len(req.path)-1)
}

// serveWrite runs at the nearest member u (the last node of req.path): it
// starts the invalidation multicast; once all acknowledgments are in, the
// value is committed and the modified copy travels back to the writer.
func (s *strategy) serveWrite(req *reqMsg) {
	vs := vstate(req.v)
	u := req.path[len(req.path)-1]
	st := s.nodePtr(vs, u)
	edges := st.edges
	st.edges = 0
	done := func() {
		req.v.Data = req.val
		if len(req.path) == 1 {
			// u is the writer's leaf itself.
			st := s.nodePtr(vs, u)
			st.member = true
			st.toward = towardSelf
			req.v.SetLocal(s.procOf(vs, u))
			s.cacheInsert(vs, req.v, u, s.procOf(vs, u))
			req.fut.Complete(s.m.K, req.val)
			return
		}
		s.sendData(req, len(req.path)-1)
	}
	if edges == 0 {
		done()
		return
	}
	s.addPending(vs, u, &invalWait{n: bits.OnesCount32(edges), ackNode: -1, done: done})
	s.multicastInval(vs, req.v, u, edges)
}

// addPending records an outstanding invalidation wait, creating the lazily
// allocated table on first use.
func (s *strategy) addPending(vs *varState, node int, w *invalWait) {
	if vs.pending == nil {
		vs.pending = make(map[int]*invalWait)
	}
	vs.pending[node] = w
}

// multicastInval sends invalidations from node u along the member edges.
func (s *strategy) multicastInval(vs *varState, v *Variable, u int, edges uint32) {
	src := s.procOf(vs, u)
	n := &s.t.Nodes[u]
	if edges&parentBit != 0 {
		s.sendInval(vs, v, src, n.Parent, u)
	}
	for i := range n.Children {
		if edges&childBit(i) != 0 {
			s.sendInval(vs, v, src, n.Children[i], u)
		}
	}
}

func (s *strategy) sendInval(vs *varState, v *Variable, srcProc, to, from int) {
	s.m.Net.SendPooledTag(srcProc, s.procOf(vs, to), core.InvalBytes, kindInval,
		packTag(to, from), v)
}

// onInval invalidates the copy at the receiving node and forwards the
// multicast into the rest of the component.
func (s *strategy) onInval(m *mesh.Msg) {
	v := m.Payload.(*Variable)
	node, from := unpackTag(m.Tag)
	vs := vstate(v)
	st := s.nodePtr(vs, node)
	if !st.member {
		panic("accesstree: invalidation reached a non-member")
	}
	forward := st.edges &^ s.edgeBit(node, from)
	st.member = false
	st.toward = s.dirTo(node, from)
	st.edges = 0
	if s.t.Nodes[node].Leaf() {
		v.ClearLocal(s.procOf(vs, node))
	}
	s.m.Cache(s.procOf(vs, node)).Remove(atKey{v.ID, node})
	if forward == 0 {
		s.sendAck(vs, v, node, from)
		return
	}
	s.addPending(vs, node, &invalWait{n: bits.OnesCount32(forward), ackNode: from})
	s.multicastInval(vs, v, node, forward)
}

func (s *strategy) sendAck(vs *varState, v *Variable, from, to int) {
	s.m.Net.SendPooledTag(s.procOf(vs, from), s.procOf(vs, to), core.AckBytes,
		kindAck, to, v)
}

// onAck aggregates acknowledgments back toward the multicast root.
func (s *strategy) onAck(m *mesh.Msg) {
	v := m.Payload.(*Variable)
	node := m.Tag
	vs := vstate(v)
	w := vs.pending[node]
	if w == nil {
		panic("accesstree: stray invalidation ack")
	}
	w.n--
	if w.n > 0 {
		return
	}
	delete(vs.pending, node)
	if w.ackNode >= 0 {
		s.sendAck(vs, v, node, w.ackNode)
		return
	}
	w.done()
}

// sendData sends the copy one hop back along the request path, from
// path[idx] to path[idx-1].
func (s *strategy) sendData(req *reqMsg, idx int) {
	vs := vstate(req.v)
	from, to := req.path[idx], req.path[idx-1]
	// The sender records that its neighbor is about to become a member.
	st := s.nodePtr(vs, from)
	st.edges |= s.edgeBit(from, to)
	kind := kindReadData
	if req.write {
		kind = kindWriteData
	}
	s.m.Net.SendPooledTag(s.procOf(vs, from), s.procOf(vs, to),
		core.DataBytes(req.v.Size), kind, idx-1, req)
}

// onData installs a copy at the receiving path node and forwards the copy
// toward the requester; at the requester's leaf the transaction completes.
func (s *strategy) onData(m *mesh.Msg) {
	req := m.Payload.(*reqMsg)
	idx := m.Tag
	vs := vstate(req.v)
	cur := req.path[idx]
	s.countAccess(vs, cur)
	st := s.nodePtr(vs, cur)
	st.member = true
	st.toward = towardSelf
	st.edges |= s.edgeBit(cur, req.path[idx+1])
	s.cacheInsert(vs, req.v, cur, m.Dst)
	if idx == 0 {
		// path[0] is the requester's leaf — the only leaf a request path
		// can install a copy at (interior path nodes are internal).
		req.v.SetLocal(m.Dst)
		if req.write {
			req.fut.Complete(s.m.K, req.val)
		} else {
			req.fut.Complete(s.m.K, req.v.Data)
		}
		return
	}
	s.sendData(req, idx)
}

// countAccess bumps the remapping counter of a node (only when remapping
// is enabled, to keep the default path allocation-free).
func (s *strategy) countAccess(vs *varState, node int) {
	if s.opts.RemapThreshold <= 0 {
		return
	}
	s.nodePtr(vs, node).accesses++
}

// edgeBit returns node's edge bit toward its tree neighbor nb.
func (s *strategy) edgeBit(node, nb int) uint32 {
	if s.t.Nodes[node].Parent == nb {
		return parentBit
	}
	if s.t.Nodes[nb].Parent != node {
		panic("accesstree: edgeBit between non-adjacent nodes")
	}
	return childBit(s.t.Nodes[nb].ChildIndex)
}

// dirTo returns the pointer value at node that leads to its neighbor nb.
func (s *strategy) dirTo(node, nb int) int32 {
	if s.t.Nodes[node].Parent == nb {
		return towardUp
	}
	if s.t.Nodes[nb].Parent != node {
		panic("accesstree: dirTo between non-adjacent nodes")
	}
	return int32(s.t.Nodes[nb].ChildIndex)
}

// atKey identifies a copy in a node cache.
type atKey struct {
	v    core.VarID
	node int
}

// cacheInsert registers the copy held for tree node `node` in the memory
// module of processor `proc`, wiring up the replacement callback. With
// unbounded caches (the paper's default) this is free: no closure is even
// constructed.
func (s *strategy) cacheInsert(vs *varState, v *Variable, node, proc int) {
	c := s.m.Cache(proc)
	if !c.Bounded() {
		return
	}
	key := atKey{v.ID, node}
	c.Insert(key, v.Size, func() bool {
		return s.tryEvict(v, node, proc)
	})
}

// tryEvict implements LRU replacement for the access tree strategy: a copy
// may only be dropped if the variable is idle and the copy is a leaf of the
// copy component (so the component stays connected and no data is lost).
// The one remaining component neighbor is notified with a small message.
func (s *strategy) tryEvict(v *Variable, node, proc int) bool {
	if v.State == nil || !v.Idle() {
		return false
	}
	vs := vstate(v)
	st := &vs.nodes[node]
	if !st.member {
		return false
	}
	if bits.OnesCount32(st.edges) != 1 {
		return false // sole copy or interior component node
	}
	nb := s.edgeNeighbor(node, st.edges)
	st.member = false
	st.toward = s.dirTo(node, nb)
	st.edges = 0
	if s.t.Nodes[node].Leaf() {
		v.ClearLocal(proc)
	}
	// Clear the neighbor's edge bit immediately: if the notification were
	// only applied on delivery, two adjacent copies could each observe the
	// other as "remaining" and both evict, losing the last copy (a real
	// implementation prevents this with an eviction handshake; we model
	// the handshake's effect and charge its message below).
	s.nodePtr(vs, nb).edges &^= s.edgeBit(nb, node)
	s.m.Cache(proc).Remove(atKey{v.ID, node})
	s.m.Net.SendPooledTag(proc, s.procOf(vs, nb), core.AckBytes, kindEvict,
		packTag(nb, node), v)
	return true
}

// edgeNeighbor maps a single-bit edge mask to the neighbor node id.
func (s *strategy) edgeNeighbor(node int, edges uint32) int {
	if edges == parentBit {
		return s.t.Nodes[node].Parent
	}
	i := bits.TrailingZeros32(edges) - 1
	return s.t.Nodes[node].Children[i]
}

// onEvict clears the component edge toward a replaced copy.
func (s *strategy) onEvict(m *mesh.Msg) {
	v := m.Payload.(*Variable)
	if v.State == nil {
		return // variable freed while the notification was in flight
	}
	node, gone := unpackTag(m.Tag)
	vs := vstate(v)
	vs.nodes[node].edges &^= s.edgeBit(node, gone)
}
