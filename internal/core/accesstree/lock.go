package accesstree

import (
	"diva/internal/core"
	"diva/internal/mesh"
	"diva/internal/sim"
)

// Locks on global variables are implemented with the arrow protocol
// (path-reversal) on the variable's own access tree: every tree node holds
// an arrow pointing toward the current tail of the distributed request
// queue; a lock request travels along arrows, flipping each one back toward
// the requester, and queues behind the tail it finds; the token (the lock
// itself) is then handed from holder to successor with a single direct
// message. This is one of the "elegant algorithms that use access trees,
// too" (§2 of the paper).
//
// Like the data pointers, arrows are materialized lazily: the default
// configuration has every arrow pointing toward the creator's leaf, where
// the token initially rests.

type lockState struct {
	arrows map[int]int32 // explicit deviations from the default arrows
	// next forms the distributed FIFO queue: tree leaf -> successor leaf.
	next map[int]int
	// tokenAt is the leaf where the token rests (meaningless while the
	// token is in flight).
	tokenAt   int
	tokenFree bool
	inFlight  bool
	waiting   map[int]*sim.Future // leaf -> future of the blocked process
	holder    int                 // leaf currently holding the lock (-1: none)
}

// lockReqMsg is one hop of a lock request along the access tree.
type lockReqMsg struct {
	v      *Variable
	node   int // receiving tree node
	from   int // tree node the request came from (-1: origin hop)
	origin int // requesting leaf
}

// lockTokenMsg hands the token to a successor leaf.
type lockTokenMsg struct {
	v  *Variable
	to int // receiving leaf
}

// lockOf returns (lazily creating) the lock state of v.
func (s *strategy) lockOf(v *Variable) *lockState {
	vs := vstate(v)
	if vs.lock == nil {
		vs.lock = &lockState{
			arrows:    make(map[int]int32),
			next:      make(map[int]int),
			tokenAt:   s.t.LeafOfProc[v.Creator],
			tokenFree: true,
			waiting:   make(map[int]*sim.Future),
			holder:    -1,
		}
	}
	return vs.lock
}

// arrow returns the arrow at a tree node (default: toward the creator).
func (s *strategy) arrow(v *Variable, ls *lockState, id int) int32 {
	if a, ok := ls.arrows[id]; ok {
		return a
	}
	return s.defaultToward(vstate(v), id)
}

// Lock implements core.Strategy.
func (s *strategy) Lock(p *core.Proc, v *Variable) {
	ls := s.lockOf(v)
	leaf := s.t.LeafOfProc[p.ID]
	if ls.holder == leaf {
		panic("accesstree: recursive lock")
	}
	a := s.arrow(v, ls, leaf)
	if a == towardSelf {
		// This leaf is the sink. Either the free token rests here, or the
		// process would queue behind itself (a double acquire).
		if ls.tokenFree && !ls.inFlight && ls.tokenAt == leaf {
			ls.tokenFree = false
			ls.holder = leaf
			return
		}
		panic("accesstree: lock re-acquired while queued")
	}
	f := sim.NewFuture()
	ls.waiting[leaf] = f
	ls.arrows[leaf] = towardSelf
	s.sendLockHop(v, ls, leaf, a, -1, leaf)
	f.Await(p.Proc)
	ls.holder = leaf
}

// sendLockHop forwards the request from tree node cur along direction a.
func (s *strategy) sendLockHop(v *Variable, ls *lockState, cur int, a int32, from, origin int) {
	vs := vstate(v)
	var next int
	if a == towardUp {
		next = s.t.Nodes[cur].Parent
	} else {
		next = s.t.Nodes[cur].Children[a]
	}
	s.m.Net.SendPooled(s.procOf(vs, cur), s.procOf(vs, next), core.LockBytes,
		kindLockReq, &lockReqMsg{v: v, node: next, from: cur, origin: origin})
}

// onLockReq performs one path-reversal step.
func (s *strategy) onLockReq(m *mesh.Msg) {
	lm := m.Payload.(*lockReqMsg)
	ls := s.lockOf(lm.v)
	cur := lm.node
	old := s.arrow(lm.v, ls, cur)
	ls.arrows[cur] = s.dirTo(cur, lm.from)
	if old != towardSelf {
		s.sendLockHop(lm.v, ls, cur, old, lm.from, lm.origin)
		return
	}
	// cur is the previous sink: a leaf that holds the token or waits in
	// the queue. The origin becomes its successor.
	if _, dup := ls.next[cur]; dup {
		panic("accesstree: queue tail already has a successor")
	}
	ls.next[cur] = lm.origin
	if ls.tokenFree && !ls.inFlight && ls.tokenAt == cur {
		s.passToken(lm.v, ls, cur)
	}
}

// passToken moves the token from leaf cur to its queued successor.
func (s *strategy) passToken(v *Variable, ls *lockState, cur int) {
	to := ls.next[cur]
	delete(ls.next, cur)
	ls.tokenFree = false
	ls.inFlight = true
	vs := vstate(v)
	s.m.Net.SendPooled(s.procOf(vs, cur), s.procOf(vs, to), core.LockBytes,
		kindLockToken, &lockTokenMsg{v: v, to: to})
}

// onLockToken delivers the token: the waiting process now holds the lock.
func (s *strategy) onLockToken(m *mesh.Msg) {
	tm := m.Payload.(*lockTokenMsg)
	ls := s.lockOf(tm.v)
	ls.inFlight = false
	ls.tokenAt = tm.to
	f := ls.waiting[tm.to]
	if f == nil {
		panic("accesstree: token delivered to a leaf with no waiter")
	}
	delete(ls.waiting, tm.to)
	f.Complete(s.m.K, nil)
}

// Unlock implements core.Strategy.
func (s *strategy) Unlock(p *core.Proc, v *Variable) {
	ls := s.lockOf(v)
	leaf := s.t.LeafOfProc[p.ID]
	if ls.holder != leaf {
		panic("accesstree: unlock by non-holder")
	}
	ls.holder = -1
	if _, ok := ls.next[leaf]; ok {
		s.passToken(v, ls, leaf)
		return
	}
	ls.tokenFree = true
}
