package accesstree

import (
	"diva/internal/core"
	"diva/internal/mesh"
)

// This file implements the remapping step of the theoretical access tree
// strategy, which the paper's implementation deliberately omits ("we omit
// this remapping as we believe that the constant overhead induced by this
// procedure will not be retained in practice", §2 — design decision D3 in
// DESIGN.md). With Options.RemapThreshold > 0, a tree node that has
// handled that many protocol messages is moved to a fresh random position
// in its submesh, restoring the granularity of the random experiments in
// the competitive analysis.
//
// The migration is paid for: the node's copy (or just its pointer state)
// travels to the new processor, and the tree neighbors are notified of the
// new address. Remapping executes at the start of a write transaction,
// when the exclusive transaction slot guarantees no data messages for the
// variable are in flight. Lock traffic may still be in flight; a real
// implementation forwards those few messages from the old address, which
// we approximate by delivering them against the logical node state.

// remapMsg carries a migration or an address notification.
type remapMsg struct {
	v    *Variable
	node int
}

// maybeRemap migrates every over-accessed node of v. Called with the
// exclusive transaction slot held.
func (s *strategy) maybeRemap(vs *varState, v *Variable) {
	if s.opts.RemapThreshold <= 0 {
		return
	}
	// The dense node table iterates in id order, which keeps the RNG
	// stream deterministic without sorting.
	for id := range vs.nodes {
		if int(vs.nodes[id].accesses) >= s.opts.RemapThreshold {
			s.remapNode(vs, v, id)
		}
	}
}

// remapNode moves one tree node to a fresh random position.
func (s *strategy) remapNode(vs *varState, v *Variable, id int) {
	st := &vs.nodes[id]
	st.accesses = 0
	oldProc := s.posOf(vs, id)
	region := s.t.Nodes[id].Region
	if region.Single() {
		return // a leaf is pinned to its processor
	}
	newProc := region.Draw(s.rng)
	if vs.posOverride == nil {
		vs.posOverride = make(map[int]int)
	}
	vs.posOverride[id] = newProc
	vs.remaps++
	s.remaps++

	// The node's state travels: a full copy if it is a member, pointer
	// state otherwise.
	size := core.ReadReqBytes
	if st.member {
		size = core.DataBytes(v.Size)
		s.m.Cache(oldProc).Remove(atKey{v.ID, id})
		s.cacheInsert(vs, v, id, newProc)
	}
	s.m.Net.Send(&mesh.Msg{
		Src: oldProc, Dst: newProc,
		Size: size, Kind: kindRemapMove,
		Payload: &remapMsg{v: v, node: id},
	})
	// Notify the tree neighbors of the new address.
	n := &s.t.Nodes[id]
	nbs := make([]int, 0, len(n.Children)+1)
	if n.Parent != -1 {
		nbs = append(nbs, n.Parent)
	}
	nbs = append(nbs, n.Children...)
	for _, nb := range nbs {
		s.m.Net.Send(&mesh.Msg{
			Src: newProc, Dst: s.procOf(vs, nb),
			Size: core.InvalBytes, Kind: kindRemapNote,
			Payload: &remapMsg{v: v, node: nb},
		})
	}
}

// Remaps reports how many node migrations v's access tree performed.
func Remaps(v *Variable) int {
	if vs, ok := v.State.(*varState); ok {
		return vs.remaps
	}
	return 0
}

// TotalRemaps reports the machine-wide number of node migrations, if the
// strategy is an access tree (0 otherwise).
func TotalRemaps(s core.Strategy) int {
	if st, ok := s.(*strategy); ok {
		return st.remaps
	}
	return 0
}

func (s *strategy) onRemapMove(m *mesh.Msg) {
	// State migration is applied at send time (the simulator holds the
	// authoritative state); the message exists for congestion and timing.
}

func (s *strategy) onRemapNote(m *mesh.Msg) {
	// Address update at a neighbor; positions are recomputed from the
	// override table, so nothing to do beyond the accounted delivery.
}
