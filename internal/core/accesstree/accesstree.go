// Package accesstree implements the access tree data management strategy of
// the paper (§2) — the primary contribution evaluated there.
//
// For each global variable, an access tree (a copy of the hierarchical mesh
// decomposition tree) is embedded into the mesh: the root is mapped to a
// uniformly random processor and every other node is derived from its
// parent by the paper's modular rule (decomp.EmbedChild), the "practical
// improvement" over the fully random embedding of the theoretical analysis
// (which remains available for the ablation study).
//
// On every access tree a simple caching protocol runs. The nodes holding a
// copy of a variable always form a connected component of the tree:
//
//   - Read: the requesting leaf sends a request along tree edges to the
//     nearest node holding a copy; the copy travels back along the same
//     path and every node on the path keeps a copy.
//   - Write: the new value travels to the nearest copy-holding node u; u
//     invalidates every other copy via a multicast along the component's
//     tree edges (acknowledged), then the modified copy travels back to
//     the writer, again leaving copies on the path.
//
// All communication — including the invalidation multicast and the
// lock/arrow traffic — follows the branches of the access tree; every tree
// hop is a real message between the processors simulating the two tree
// nodes (the source of the startup costs the paper analyzes).
//
// Copies are located with directional pointers ("data tracking"): every
// tree node knows the direction (parent or a child) of the copy component.
// Pointers are only materialized once they deviate from the initial
// configuration, in which all pointers lead to the creator's leaf.
package accesstree

import (
	"fmt"
	"math/bits"

	"diva/internal/core"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/xrand"
)

// Options tunes the strategy.
type Options struct {
	// RandomEmbedding switches from the paper's modular embedding to the
	// fully random embedding of the theoretical analysis (ablation D1).
	RandomEmbedding bool
	// RemapThreshold enables the remapping step of the theoretical
	// strategy that the paper's implementation omits ("the original
	// description of the access tree strategy intends that the embedding
	// of an access tree node is changed when too many accesses are
	// directed to the same node"): after RemapThreshold accesses, a tree
	// node is re-embedded at a fresh random position of its submesh, its
	// state migrates there (one data-sized message if it holds a copy,
	// one control message otherwise), and its tree neighbors are notified
	// of the new address (one control message each). Requires
	// RandomEmbedding (under the modular embedding, positions are derived
	// from the parent and cannot move independently). 0 disables
	// remapping, reproducing the paper's implementation (decision D3).
	RemapThreshold int
}

// Factory returns a core.Factory for the access tree strategy with default
// options. The tree arity is taken from the machine's decomposition spec.
func Factory() core.Factory { return FactoryOpts(Options{}) }

// FactoryOpts is Factory with explicit options.
func FactoryOpts(o Options) core.Factory {
	if o.RemapThreshold > 0 && !o.RandomEmbedding {
		panic("accesstree: RemapThreshold requires RandomEmbedding")
	}
	return func(m *core.Machine) core.Strategy { return newStrategy(m, o) }
}

// Message kinds.
const (
	kindReadReq   = core.KindStrategyBase + iota // request hop toward a copy
	kindReadData                                 // copy hop back to the reader
	kindWriteReq                                 // write request hop (carries the new value)
	kindWriteData                                // modified copy hop back to the writer
	kindInval                                    // invalidation hop
	kindAck                                      // invalidation acknowledgment hop
	kindEvict                                    // replacement notification
	kindLockReq                                  // arrow-protocol lock request hop
	kindLockToken                                // lock token transfer
	kindRemapMove                                // node migration (remapping, D3)
	kindRemapNote                                // new-address notification
)

// Directional pointer values; values >= 0 name a child index.
const (
	towardUp   = -1
	towardSelf = -2
)

type strategy struct {
	m    *core.Machine
	t    *decomp.Tree
	rng  *xrand.RNG
	opts Options
	// remaps counts node migrations across all variables (ablation D3).
	remaps int
	// txns arena-allocates transaction records (reqMsg + path buffer +
	// future) in slabs; nodeFree recycles dense node tables of freed
	// variables. The simulation is single-threaded, so plain slices suffice.
	txns     core.TxnArena[reqMsg]
	nodeFree [][]nodeState
	// posTabs caches the modular embedding per root position: the positions
	// of all tree nodes are a pure function of the root's processor, so all
	// variables rooted at the same processor share one table and posOf
	// becomes a slice lookup instead of an O(depth) arithmetic walk.
	posTabs [][]int
}

func newStrategy(m *core.Machine, o Options) *strategy {
	// Two packed node ids must fit the platform int: the low field is
	// tagShift bits, the high field gets whatever remains of the sign-free
	// int width (42 bits on 64-bit platforms, only 10 on 32-bit ones).
	// Reject oversized trees up front rather than corrupting ids silently.
	limit := 1 << tagShift
	if hi := bits.UintSize - 1 - tagShift; hi < tagShift {
		limit = 1 << hi
	}
	if len(m.Tree.Nodes) > limit {
		panic(fmt.Sprintf("accesstree: tree has %d nodes, exceeding the %d-node Msg.Tag packing limit",
			len(m.Tree.Nodes), limit))
	}
	s := &strategy{m: m, t: m.Tree, rng: m.RNG.Split(), opts: o}
	if !o.RandomEmbedding {
		s.posTabs = make([][]int, m.P())
	}
	net := m.Net
	net.Handle(kindReadReq, s.onReq)
	net.Handle(kindReadData, s.onData)
	net.Handle(kindWriteReq, s.onReq)
	net.Handle(kindWriteData, s.onData)
	net.Handle(kindInval, s.onInval)
	net.Handle(kindAck, s.onAck)
	net.Handle(kindEvict, s.onEvict)
	net.Handle(kindLockReq, s.onLockReq)
	net.Handle(kindLockToken, s.onLockToken)
	net.Handle(kindRemapMove, s.onRemapMove)
	net.Handle(kindRemapNote, s.onRemapNote)
	if net.Reactive() {
		// Reactive recovery: the tree embedding is fixed, so an
		// undeliverable hop has no alternative destination — the message
		// is re-issued on the same channel with a fresh detection cycle.
		// By then the mesh has re-embedded its spanning forest around the
		// failure (routes recompute lazily per topology epoch), so the
		// re-issued hop rides the re-routed path; the transport keeps the
		// channel sequence, so a late duplicate of the original delivery
		// is still deduplicated. Every protocol kind recovers this way.
		reissue := func(g *mesh.GiveUp) (int, mesh.GiveUpAction) {
			return g.Dst, mesh.GiveUpReissue
		}
		for _, k := range []uint8{
			kindReadReq, kindReadData, kindWriteReq, kindWriteData,
			kindInval, kindAck, kindEvict, kindLockReq, kindLockToken,
			kindRemapMove, kindRemapNote,
		} {
			net.OnGiveUp(k, reissue)
		}
	}
	return s
}

func (s *strategy) Name() string {
	name := fmt.Sprintf("%s access tree", s.t.Spec.Name())
	if s.opts.RandomEmbedding {
		name += " (random embedding)"
	}
	return name
}

// varState is the per-variable protocol state.
type varState struct {
	rootPos int    // processor the tree root is embedded at
	seed    uint64 // for the random-embedding ablation
	creator int    // processor that created the variable
	// posTab maps tree node id to simulating processor under the modular
	// embedding (shared per root position; nil for the random embedding).
	posTab []int
	// nodes holds the state of every tree node, indexed by tree node id.
	// The dense table replaces the old map of deviations: a protocol hop
	// touches it once per message, and the slice index beats the map hash
	// by a wide margin on that path (~15% of total CPU went to
	// mapaccess2_fast64 before).
	nodes []nodeState
	// pending tracks in-flight invalidation acknowledgments per tree node
	// (allocated lazily: most variables never multicast).
	pending map[int]*invalWait
	lock    *lockState
	// posOverride holds remapped node positions (random embedding with
	// Options.RemapThreshold only); remaps counts migrations.
	posOverride map[int]int
	remaps      int
}

type nodeState struct {
	member bool
	toward int32
	edges  uint32 // bit 0: parent is a member; bit i+1: child i is a member
	// accesses counts protocol messages handled at this node, driving the
	// optional remapping.
	accesses uint32
}

type invalWait struct {
	n       int // outstanding acks
	ackNode int // tree node to acknowledge to (-1: this is the multicast root)
	done    func()
}

const parentBit = uint32(1)

func childBit(i int) uint32 { return 1 << uint(i+1) }

// state returns the variable's strategy state.
func vstate(v *core.Variable) *varState { return v.State.(*varState) }

// nodePtr returns the mutable state of a tree node: a dense-table index.
func (s *strategy) nodePtr(vs *varState, id int) *nodeState {
	return &vs.nodes[id]
}

// initNodes fills the dense node table with the initial configuration:
// every pointer leads toward the creator's leaf, which holds the only
// copy. One linear fill plus one root-to-leaf walk — no per-node lazy
// materialization needed afterwards.
func (s *strategy) initNodes(vs *varState) {
	for i := range vs.nodes {
		vs.nodes[i] = nodeState{toward: towardUp}
	}
	cur := s.t.Root()
	for {
		n := &s.t.Nodes[cur]
		if n.Leaf() {
			vs.nodes[cur] = nodeState{member: true, toward: towardSelf}
			return
		}
		next := -1
		for i, c := range n.Children {
			if s.t.Nodes[c].Region.ContainsProc(vs.creator) {
				vs.nodes[cur].toward = int32(i)
				next = c
				break
			}
		}
		if next == -1 {
			panic("accesstree: no child contains the creator position")
		}
		cur = next
	}
}

// defaultToward: pointers lead toward the creator's leaf. (The data
// pointers live pre-materialized in the dense node table; this analytic
// form still backs the lazily-materialized lock arrows.)
func (s *strategy) defaultToward(vs *varState, id int) int32 {
	n := &s.t.Nodes[id]
	if !n.Region.ContainsProc(vs.creator) {
		return towardUp
	}
	if n.Leaf() {
		return towardSelf
	}
	for i, c := range n.Children {
		if s.t.Nodes[c].Region.ContainsProc(vs.creator) {
			return int32(i)
		}
	}
	panic("accesstree: no child contains the creator position")
}

// posOf computes the processor simulating a tree node under the
// variable's embedding: a table lookup for the modular embedding (the
// positions are a pure function of the root placement, precomputed once
// per root processor and shared by all its variables), a pure hash for the
// random embedding. No messages and no allocation either way: the
// embedding is globally known given the variable's root placement.
func (s *strategy) posOf(vs *varState, id int) int {
	if s.opts.RandomEmbedding {
		if vs.posOverride != nil {
			if pos, ok := vs.posOverride[id]; ok {
				return pos
			}
		}
		return s.t.RandomPos(vs.seed, id)
	}
	return vs.posTab[id]
}

// posTable returns the shared node→processor table for a root position,
// computing it on first use (one EmbedAll pass, identical to the old
// per-hop root-down walk).
func (s *strategy) posTable(rootPos int) []int {
	if tab := s.posTabs[rootPos]; tab != nil {
		return tab
	}
	tab := s.t.EmbedAll(rootPos)
	s.posTabs[rootPos] = tab
	return tab
}

// procOf returns the processor simulating tree node id.
func (s *strategy) procOf(vs *varState, id int) int {
	return s.posOf(vs, id)
}

func (s *strategy) InitVar(v *Variable) {
	vs := &varState{
		rootPos: s.t.RandomRoot(s.rng),
		seed:    s.rng.Uint64(),
		creator: v.Creator,
	}
	if !s.opts.RandomEmbedding {
		vs.posTab = s.posTable(vs.rootPos)
	}
	if n := len(s.nodeFree); n > 0 {
		vs.nodes = s.nodeFree[n-1]
		s.nodeFree = s.nodeFree[:n-1]
	} else {
		vs.nodes = make([]nodeState, len(s.t.Nodes))
	}
	s.initNodes(vs)
	v.State = vs
	v.SetLocal(v.Creator)
	s.cacheInsert(vs, v, s.t.LeafOfProc[v.Creator], v.Creator)
}

// Variable aliases core.Variable for readability.
type Variable = core.Variable

func (s *strategy) FreeVar(v *Variable) {
	vs := vstate(v)
	if s.m.CachesBounded() {
		// Unbounded caches track nothing, so the member scan (O(tree) per
		// freed variable — Barnes-Hut frees one per tree cell per step)
		// only runs when there are cache entries to drop.
		for id := range vs.nodes {
			if vs.nodes[id].member {
				s.m.Cache(s.procOf(vs, id)).Remove(atKey{v.ID, id})
			}
		}
	}
	s.nodeFree = append(s.nodeFree, vs.nodes)
	vs.nodes = nil
	vs.pending = nil
	v.State = nil
}
