package core

import (
	"testing"

	"diva/internal/sim"
)

// White-box tests of the LRU replacement machinery.

func TestCacheUnboundedIsNoop(t *testing.T) {
	var c Cache // capacity 0
	c.Insert("a", 100, func() bool { t.Fatal("evict called"); return false })
	c.Touch("a")
	c.Remove("a")
	if c.Bounded() || c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("unbounded cache tracked state")
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := Cache{capacity: 250}
	var evicted []string
	mk := func(name string) func() bool {
		return func() bool {
			evicted = append(evicted, name)
			c.Remove(name)
			return true
		}
	}
	c.Insert("a", 100, mk("a"))
	c.Insert("b", 100, mk("b"))
	c.Touch("a") // b is now least recently used
	c.Insert("c", 100, mk("c"))
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted %v, want [b]", evicted)
	}
	if c.Bytes() != 200 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d after eviction", c.Bytes(), c.Len())
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions=%d", c.Evictions())
	}
}

func TestCacheRefusedEvictionSkipped(t *testing.T) {
	c := Cache{capacity: 150}
	pinned := func() bool { return false }
	var evicted []string
	c.Insert("pinned", 100, pinned)
	c.Insert("free", 100, func() bool {
		evicted = append(evicted, "free")
		c.Remove("free")
		return true
	})
	// "pinned" is LRU but refuses; "free" must go instead.
	c.Insert("new", 100, pinned)
	if len(evicted) != 1 || evicted[0] != "free" {
		t.Fatalf("evicted %v, want [free]", evicted)
	}
	// The cache can stay over capacity when nothing is evictable.
	if c.Bytes() != 200 {
		t.Fatalf("bytes=%d", c.Bytes())
	}
}

func TestCacheDuplicateInsertRefreshes(t *testing.T) {
	c := Cache{capacity: 300}
	c.Insert("a", 100, func() bool { c.Remove("a"); return true })
	c.Insert("a", 100, func() bool { c.Remove("a"); return true })
	if c.Bytes() != 100 || c.Len() != 1 {
		t.Fatalf("duplicate insert double-counted: bytes=%d len=%d", c.Bytes(), c.Len())
	}
}

func TestCacheRemoveUnknownIgnored(t *testing.T) {
	c := Cache{capacity: 100}
	c.Remove("ghost") // must not panic
	c.Touch("ghost")
	if c.Len() != 0 {
		t.Fatal("phantom entry appeared")
	}
}

func TestCacheEvictorForgotRemoveGuard(t *testing.T) {
	c := Cache{capacity: 100}
	c.Insert("a", 80, func() bool { return true }) // does NOT call Remove
	c.Insert("b", 80, func() bool { return false })
	// enforce must have cleaned "a" up itself.
	if c.Bytes() != 80 || c.Len() != 1 {
		t.Fatalf("guard failed: bytes=%d len=%d", c.Bytes(), c.Len())
	}
}

func TestRWQueueWriterBlocksLaterReaders(t *testing.T) {
	// FIFO admission: two active readers, then a queued writer, then a
	// queued reader — the reader arriving after the writer must not be
	// admitted before it (no writer starvation).
	v := &Variable{}
	k := sim.New()
	v.rw.readers = 2 // two reads in flight
	wDone, rDone := false, false
	k.Spawn("w", func(sp *sim.Proc) {
		p := &Proc{Proc: sp}
		v.acquireWrite(p)
		wDone = true
		v.releaseWrite(k)
	})
	k.Spawn("r", func(sp *sim.Proc) {
		p := &Proc{Proc: sp}
		sp.Wait(1) // enqueue strictly after the writer
		v.acquireRead(p)
		rDone = true
		if !wDone {
			t.Error("reader admitted before the queued writer")
		}
		v.releaseRead(k)
	})
	k.At(10, func() { v.releaseRead(k) })
	k.At(20, func() { v.releaseRead(k) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !wDone || !rDone {
		t.Fatal("queue did not drain")
	}
}
