package core

import (
	"context"
	"sync/atomic"
)

// ArmCancel ties the machine's run to ctx: when ctx is canceled (or its
// deadline passes), a cooperative cancellation flag shared by every kernel
// shard is raised and the run stops at the kernel's next checkpoint,
// returning an error that unwraps to sim.ErrCanceled. The checkpoint is a
// counter increment per event plus one atomic load every 1024th — and
// nothing at all on machines that never arm — so arming is safe on hot
// paths.
//
// Cancellation leaves no partial observable state: every live process is
// killed, the machine is permanently stopped (it can never pass the
// quiescence check, so it cannot be snapshotted), and any snapshot taken
// before the run — including the one this machine may have been forked
// from — remains valid and replays identically.
//
// The returned release function detaches the watcher from ctx; call it
// once the run has returned so a later ctx cancellation cannot touch the
// flag (the flag itself stays installed but is only ever read by this
// machine's kernels).
func (m *Machine) ArmCancel(ctx context.Context) (release func()) {
	flag := new(atomic.Bool)
	if ctx.Err() != nil {
		// An already-done ctx (expired deadline) must cancel
		// deterministically before the first event; AfterFunc alone would
		// fire on its own goroutine and could lose the race with a short
		// run.
		flag.Store(true)
	}
	m.K.SetCancel(flag)
	stop := context.AfterFunc(ctx, func() { flag.Store(true) })
	return func() { stop() }
}

// RunContext is Run bound to ctx via ArmCancel: the SPMD program runs to
// completion unless ctx is canceled first, in which case the error unwraps
// to sim.ErrCanceled and carries the progress diagnostics
// (*sim.CanceledError).
func (m *Machine) RunContext(ctx context.Context, program func(p *Proc)) error {
	defer m.ArmCancel(ctx)()
	return m.Run(program)
}
