package core_test

import (
	"testing"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/xrand"
)

// This file checks the memory-consistency guarantees the DIVA library
// gives to its applications: per-variable transaction atomicity (reads
// never observe a half-finished write) and barrier-ordered visibility
// (after a barrier, every processor sees all writes issued before it).

// TestBarrierOrderedVisibility: the fundamental pattern all three paper
// applications rely on — write, barrier, read.
func TestBarrierOrderedVisibility(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary4)
			const vars = 8
			ids := make([]core.VarID, vars)
			for i := range ids {
				ids[i] = m.AllocAt(i, 16, 0)
			}
			if err := m.Run(func(p *core.Proc) {
				for round := 1; round <= 5; round++ {
					// Each round, processor (round*3+i) mod P writes
					// variable i; everyone reads all after the barrier.
					for i := range ids {
						if (round*3+i)%m.P() == p.ID {
							p.Write(ids[i], round)
						}
					}
					p.Barrier()
					for i := range ids {
						if got := p.Read(ids[i]); got != round {
							t.Errorf("round %d: proc %d read %v from var %d",
								round, p.ID, got, i)
							return
						}
					}
					p.Barrier()
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSnapshotAtomicity: concurrent readers either see the old or the new
// value — never a torn intermediate — because write transactions are
// exclusive per variable.
func TestSnapshotAtomicity(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2)
			type pair struct{ A, B int }
			v := m.AllocAt(0, 32, pair{0, 0})
			if err := m.Run(func(p *core.Proc) {
				r := xrand.New(uint64(p.ID) + 1)
				for i := 0; i < 10; i++ {
					if p.ID == 0 {
						// Writer keeps the invariant A == B.
						p.Write(v, pair{i + 1, i + 1})
					} else {
						got := p.Read(v).(pair)
						if got.A != got.B {
							t.Errorf("torn read: %+v", got)
							return
						}
					}
					p.Wait(float64(r.Intn(300)))
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMonotonicReads: per processor, observed round numbers of a variable
// written with increasing values never go backwards (transactions are
// serialized per variable).
func TestMonotonicReads(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary4)
			v := m.AllocAt(0, 16, 0)
			bad := false
			if err := m.Run(func(p *core.Proc) {
				last := -1
				for i := 0; i < 12; i++ {
					if p.ID == 5 {
						x := p.Read(v).(int)
						p.Write(v, x+1)
						continue
					}
					got := p.Read(v).(int)
					if got < last {
						bad = true
					}
					last = got
				}
			}); err != nil {
				t.Fatal(err)
			}
			if bad {
				t.Fatal("reads went backwards")
			}
		})
	}
}

// TestLockedReadModifyWriteManyVars: the Barnes-Hut tree-build pattern at
// high contention — many processors increment many variables under locks.
func TestLockedReadModifyWriteManyVars(t *testing.T) {
	for name, f := range testStrategies() {
		t.Run(name, func(t *testing.T) {
			m := newTestMachine(t, 4, 4, f, decomp.Ary2K4)
			const vars = 5
			ids := make([]core.VarID, vars)
			for i := range ids {
				ids[i] = m.AllocAt(i*3, 16, 0)
			}
			const rounds = 4
			if err := m.Run(func(p *core.Proc) {
				r := xrand.New(uint64(p.ID)*31 + 7)
				for i := 0; i < rounds; i++ {
					vi := (p.ID + i) % vars
					p.Lock(ids[vi])
					x := p.Read(ids[vi]).(int)
					p.Wait(float64(r.Intn(50)))
					p.Write(ids[vi], x+1)
					p.Unlock(ids[vi])
				}
				p.Barrier()
				total := 0
				for _, id := range ids {
					total += p.Read(id).(int)
				}
				if total != rounds*m.P() {
					t.Errorf("proc %d sees total %d, want %d", p.ID, total, rounds*m.P())
				}
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestMixedStrategiesSameResults: both strategies compute identical
// application-visible state for a deterministic program.
func TestMixedStrategiesSameResults(t *testing.T) {
	run := func(f core.Factory) []interface{} {
		m := core.MustNewMachine(core.Config{
			Rows: 4, Cols: 4, Seed: 12, Tree: decomp.Ary4, Strategy: f,
		})
		ids := make([]core.VarID, 6)
		for i := range ids {
			ids[i] = m.AllocAt(i, 16, i)
		}
		if err := m.Run(func(p *core.Proc) {
			for r := 0; r < 4; r++ {
				vi := (p.ID + r) % len(ids)
				if p.ID%4 == 0 {
					p.Lock(ids[vi])
					x := p.Read(ids[vi]).(int)
					p.Write(ids[vi], x*2+1)
					p.Unlock(ids[vi])
				} else {
					p.Read(ids[vi])
				}
				p.Barrier()
			}
		}); err != nil {
			t.Fatal(err)
		}
		out := make([]interface{}, len(ids))
		for i, id := range ids {
			out[i] = m.Var(id).Data
		}
		return out
	}
	at := run(accesstree.Factory())
	fh := run(fixedhome.Factory())
	for i := range at {
		if at[i] != fh[i] {
			t.Fatalf("var %d differs: accesstree=%v fixedhome=%v", i, at[i], fh[i])
		}
	}
}
