// Package core implements the DIVA (Distributed Variables) library: fully
// transparent access to global variables — shared data objects — from the
// individual nodes of a simulated mesh-connected parallel machine.
//
// A Machine ties together the event kernel, the mesh network, the
// hierarchical mesh decomposition and a data management strategy (the
// access tree strategy of the paper, or the fixed-home baseline). Programs
// are SPMD: the same function runs as one simulated process per processor
// and accesses shared state exclusively through
//
//	v := p.Alloc(size, value)   // create a global variable
//	x := p.Read(v)              // transparent read (may migrate copies)
//	p.Write(v, y)               // transparent write (invalidates copies)
//	p.Lock(v) / p.Unlock(v)     // per-variable mutual exclusion
//	p.Barrier()                 // global barrier synchronization
//
// Reads and writes of the same variable are serialized by a per-variable
// reader/writer queue (readers share, writers are exclusive, FIFO), which
// models the request queueing of a real implementation; see DESIGN.md, D4.
package core

import (
	"fmt"
	"os"
	"strconv"

	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/sim"
	"diva/internal/xrand"
)

// Strategy is a dynamic data management strategy: it decides how many
// copies of each variable exist, where they are placed, and how consistency
// is maintained. Implemented by internal/core/accesstree and
// internal/core/fixedhome.
type Strategy interface {
	// Name identifies the strategy in reports ("4-ary access tree", ...).
	Name() string
	// InitVar installs the initial configuration for a fresh variable: the
	// creator holds the only copy.
	InitVar(v *Variable)
	// Read performs a read transaction for process p; it may block p. The
	// caller holds the variable's shared transaction slot.
	Read(p *Proc, v *Variable) interface{}
	// Write performs a write transaction; it may block p. The caller holds
	// the variable's exclusive transaction slot.
	Write(p *Proc, v *Variable, val interface{})
	// FreeVar releases all protocol state of v (no messages; see DESIGN D6).
	FreeVar(v *Variable)
	// Lock acquires the mutual-exclusion lock attached to v; Unlock
	// releases it. Lock may block p.
	Lock(p *Proc, v *Variable)
	Unlock(p *Proc, v *Variable)
}

// Factory constructs a strategy bound to a machine. It is called once
// during NewMachine, after the network and decomposition tree exist.
type Factory func(*Machine) Strategy

// Config describes a simulated machine.
type Config struct {
	Rows, Cols int // mesh dimensions (used when Topology is nil)
	// Topology selects the interconnect. When nil, a Rows×Cols mesh (the
	// paper's platform) is built; any other mesh.Topology — torus,
	// hypercube, fat-tree, or one of your own — runs the same strategies
	// unchanged.
	Topology mesh.Topology
	Net      mesh.Params // timing; zero value means mesh.GCelParams()
	Seed     uint64      // master random seed
	Tree     decomp.Spec // decomposition for access trees and the barrier
	Strategy Factory     // data management strategy (nil: no shared vars)
	// CacheCapacity bounds the memory for copies per node, in bytes.
	// 0 means unbounded (the paper's default setting).
	CacheCapacity int
	// Concurrent marks a machine that runs concurrently with other
	// machines in the same process (parallel experiment sweeps): it
	// disables the kernel's GOMAXPROCS pin, which is a process-wide
	// setting and would serialize all of them. Simulation results are
	// unaffected — the pin is purely a wall-clock optimization for
	// single-machine runs.
	Concurrent bool
	// Shards partitions the processors across that many event-kernel
	// shards for conservative-parallel execution (sim.Cluster): same
	// simulated results bit for bit, less wall-clock on multicore hosts.
	// 0 reads the DIVA_SHARDS environment variable, defaulting to 1
	// (sequential). The count is clamped to the processor count; machines
	// with a data management strategy run sequentially regardless — DSM
	// request/response traffic has no lookahead to parallelize across.
	Shards int
	// Faults is an explicit fault schedule (link outages and node churn)
	// applied lazily in the network's global routing order; FaultGen, when
	// non-nil, additionally draws a randomized schedule from a seed-derived
	// RNG at construction (so the same seed always yields the same faults,
	// across re-runs and forks, without advancing the machine RNG). Both
	// empty means a fault-free machine on the exact pre-fault code path.
	//
	// Lookahead note for sharded runs: faults only ever remove links, and
	// shortest live routes over a sub-network are at least as long as the
	// healthy-net routes the lookahead window was derived from, so the
	// conservative window stays valid under every schedule — no dynamic
	// shrinking is needed. (Held messages retransmit with a full fresh
	// send startup, which is itself at least the window.)
	Faults mesh.FaultSchedule
	// FaultGen draws additional randomized faults from a seed-derived RNG.
	FaultGen *mesh.FaultGen
	// Recovery selects how the machine tolerates faults. "" or
	// RecoveryOracle is the default oracle mode: undeliverable messages
	// consult global link state and are held until the exact heal time —
	// no simulated protocol ever observes a failure, and every fault-free
	// run is on the exact pre-fault code path. RecoveryReactive switches
	// the network to lossy delivery with the ack/retransmit transport:
	// messages crossing a failure point are dropped, failures are detected
	// by ack timeouts, and the strategies recover at the protocol level
	// (fixedhome home failover, accesstree re-issue). Reactive runs are
	// deterministic — fingerprint-identical across shard counts and
	// fork/restore — but simulate a different (more faithful) machine than
	// oracle runs.
	Recovery string
	// AckTimeoutUS, MaxRetries and Backoff tune the reactive transport
	// (zero values take mesh.DefaultReactParams); setting any of them with
	// oracle recovery is a configuration error.
	AckTimeoutUS float64
	MaxRetries   int
	Backoff      float64
}

// Recovery modes for Config.Recovery.
const (
	RecoveryOracle   = "oracle"
	RecoveryReactive = "reactive"
)

// Machine is a simulated parallel machine running the DIVA library.
type Machine struct {
	K    *sim.Kernel
	Net  *mesh.Network
	Topo mesh.Topology
	Tree *decomp.Tree
	Cfg  Config
	RNG  *xrand.RNG

	Strat  Strategy
	vars   []*Variable
	caches []Cache
	// fastLocal enables the local-read fast path: unbounded caches mean a
	// local hit involves no replacement bookkeeping at all.
	fastLocal bool

	bar *barrier

	procs []*Proc

	// Sharded conservative-parallel execution (sim.Cluster); all nil on a
	// sequential machine. K is the cluster's first kernel then — the one
	// that carries the aggregated stats and fingerprint after Run.
	cluster *sim.Cluster
	kernels []*sim.Kernel
	shardOf []int
}

// NewMachine builds a machine from cfg. The configuration is validated:
// invalid setups — non-positive mesh dimensions, an unsupported
// decomposition spec, a negative cache capacity — are reported as errors,
// never as panics, so embedding applications can surface them.
func NewMachine(cfg Config) (*Machine, error) {
	topo := cfg.Topology
	if topo == nil {
		if cfg.Rows <= 0 || cfg.Cols <= 0 {
			return nil, fmt.Errorf("diva: mesh dimensions must be positive, have %dx%d", cfg.Rows, cfg.Cols)
		}
		topo = mesh.New(cfg.Rows, cfg.Cols)
	} else if topo.N() <= 0 {
		return nil, fmt.Errorf("diva: topology %v has no processors", topo)
	}
	if cfg.Net == (mesh.Params{}) {
		cfg.Net = mesh.GCelParams()
	} else if cfg.Net.BytesPerUS <= 0 {
		// Partially-specified params are not silently replaced by the
		// defaults: that would drop the fields the caller did set.
		return nil, fmt.Errorf("diva: link bandwidth must be positive, have %v bytes/us (start from GCelParams when overriding individual timings)", cfg.Net.BytesPerUS)
	}
	if cfg.Tree.Base == 0 {
		cfg.Tree = decomp.Ary4
	}
	if !cfg.Tree.Valid() {
		return nil, fmt.Errorf("diva: unsupported decomposition tree %s (base must be 2, 4 or 16; k must be 0 or >= base)", cfg.Tree.Name())
	}
	if cfg.CacheCapacity < 0 {
		return nil, fmt.Errorf("diva: cache capacity must be non-negative, have %d", cfg.CacheCapacity)
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("diva: shard count must be non-negative, have %d", cfg.Shards)
	}
	switch cfg.Recovery {
	case "", RecoveryOracle:
		if cfg.AckTimeoutUS != 0 || cfg.MaxRetries != 0 || cfg.Backoff != 0 {
			return nil, fmt.Errorf("diva: reactive transport parameters (ack timeout, max retries, backoff) require recovery %q", RecoveryReactive)
		}
	case RecoveryReactive:
		// Fill the unset transport parameters from the defaults now, so the
		// pinned fork config and a declared-back spec replay identically.
		def := mesh.DefaultReactParams()
		if cfg.AckTimeoutUS == 0 {
			cfg.AckTimeoutUS = def.AckTimeoutUS
		}
		if cfg.MaxRetries == 0 {
			cfg.MaxRetries = def.MaxRetries
		}
		if cfg.Backoff == 0 {
			cfg.Backoff = def.Backoff
		}
	default:
		return nil, fmt.Errorf("diva: unknown recovery mode %q (want %q or %q)", cfg.Recovery, RecoveryOracle, RecoveryReactive)
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = 1
		if s := os.Getenv("DIVA_SHARDS"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("diva: DIVA_SHARDS must be a positive integer, have %q", s)
			}
			shards = n
		}
	}
	// Effective shard count: clamped to the processor count, forced to 1
	// when a strategy is attached (DSM traffic has no lookahead window) or
	// when the timing parameters leave no positive lookahead.
	if shards > topo.N() {
		shards = topo.N()
	}
	if cfg.Strategy != nil {
		shards = 1
	}
	var shardOf []int
	var lookahead sim.Time
	if shards > 1 {
		shardOf = decomp.ShardBlocks(topo, shards)
		// The window lookahead is the minimum delay any cross-shard
		// interaction takes: one send startup plus the head latency of the
		// route. Any shard holding more than one node can issue node-local
		// cross-node sends through the shared wormhole links, so only the
		// all-singleton partition gets credit for longer minimum routes.
		d := 1
		if shards == topo.N() {
			d = minCrossShardDist(topo, shardOf)
		}
		lookahead = sim.Time(cfg.Net.StartupSendUS + cfg.Net.HopLatencyUS*float64(d))
		if lookahead <= 0 {
			shards, shardOf = 1, nil
		}
	}
	m := &Machine{
		Topo: topo,
		Cfg:  cfg,
		RNG:  xrand.New(cfg.Seed ^ seedSalt),
	}
	if shards > 1 {
		m.cluster = sim.NewCluster(shards, lookahead)
		m.kernels = m.cluster.Kernels()
		m.shardOf = shardOf
		m.K = m.kernels[0]
	} else {
		m.K = sim.New()
		m.K.SetPinned(!cfg.Concurrent)
	}
	m.Net = mesh.NewNetwork(m.K, m.Topo, cfg.Net)
	if m.cluster != nil {
		m.Net.Shard(m.cluster, m.shardOf)
	}
	// Fault schedule: explicit events first, then the seeded draw. The draw
	// uses its own seed-derived RNG — never the shared machine RNG — so a
	// machine given the drawn schedule explicitly (FaultSchedule() declared
	// back through the spec) replays bit-identically, and forks and
	// same-seed re-runs regenerate the identical schedule. An empty result
	// never touches the network.
	sched := append(mesh.FaultSchedule(nil), cfg.Faults...)
	if g := cfg.FaultGen; g != nil {
		drawn, err := g.Generate(m.Topo, xrand.New(cfg.Seed^faultSalt))
		if err != nil {
			return nil, err
		}
		sched = append(sched, drawn...)
	}
	if len(sched) > 0 {
		if err := m.Net.InstallFaults(sched); err != nil {
			return nil, err
		}
	}
	if cfg.Recovery == RecoveryReactive {
		// The transport seed is split off the run seed under a private salt
		// (the fault-draw pattern): per-node jitter streams never touch the
		// machine RNG, so oracle and reactive runs of the same seed share
		// every other random draw.
		p := mesh.ReactParams{AckTimeoutUS: cfg.AckTimeoutUS, MaxRetries: cfg.MaxRetries, Backoff: cfg.Backoff}
		if err := m.Net.EnableReactive(p, cfg.Seed^reactSalt); err != nil {
			return nil, err
		}
	}
	m.Tree = decomp.Build(m.Topo, cfg.Tree)
	m.caches = make([]Cache, m.Topo.N())
	for i := range m.caches {
		m.caches[i].capacity = cfg.CacheCapacity
	}
	m.fastLocal = cfg.CacheCapacity == 0
	m.bar = newBarrier(m)
	if cfg.Strategy != nil {
		m.Strat = cfg.Strategy(m)
	}
	return m, nil
}

// MustNewMachine is NewMachine for configurations known to be valid; it
// panics on a validation error. Tests and fixed internal setups use it.
func MustNewMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// minCrossShardDist returns the minimum route length between processors of
// different shards (the lookahead credit for all-singleton partitions).
func minCrossShardDist(t mesh.Topology, shardOf []int) int {
	best := t.Diameter()
	for a := 0; a < t.N(); a++ {
		for b := a + 1; b < t.N(); b++ {
			if shardOf[a] == shardOf[b] {
				continue
			}
			if d := t.Dist(a, b); d < best {
				best = d
			}
		}
	}
	return best
}

// P returns the number of processors.
func (m *Machine) P() int { return m.Topo.N() }

// Shards returns the number of event-kernel shards the machine runs on
// (1 for a sequential machine).
func (m *Machine) Shards() int {
	if m.cluster == nil {
		return 1
	}
	return len(m.kernels)
}

// ShardOf returns the shard index owning node (0 on a sequential machine).
func (m *Machine) ShardOf(node int) int {
	if m.shardOf == nil {
		return 0
	}
	return m.shardOf[node]
}

// KernelAt returns the kernel owning node: every event scheduled for a
// node — and every Now() read on its behalf — must go through its owner.
func (m *Machine) KernelAt(node int) *sim.Kernel {
	if m.cluster == nil {
		return m.K
	}
	return m.kernels[m.shardOf[node]]
}

// MeshTopo returns the machine's topology as a 2D mesh when it is one
// (the hand-optimized message passing programs and the link heatmaps are
// mesh-specific).
func (m *Machine) MeshTopo() (mesh.Mesh, bool) {
	mm, ok := m.Topo.(mesh.Mesh)
	return mm, ok
}

// Var returns the variable record for id. Freed or unknown ids panic.
func (m *Machine) Var(id VarID) *Variable {
	if int(id) < 0 || int(id) >= len(m.vars) || m.vars[id] == nil {
		panic(fmt.Sprintf("core: access to invalid variable %d", id))
	}
	return m.vars[id]
}

// Cache returns node's copy cache (used by strategies).
func (m *Machine) Cache(node int) *Cache { return &m.caches[node] }

// CachesBounded reports whether the machine's caches enforce a capacity
// (strategies skip all replacement bookkeeping when they do not).
func (m *Machine) CachesBounded() bool { return m.Cfg.CacheCapacity > 0 }

// Proc is a simulated application process pinned to one processor.
type Proc struct {
	*sim.Proc
	ID int // processor id, row-major
	M  *Machine
}

// Run spawns one process per processor executing program and runs the
// simulation to completion. It returns the kernel's error (deadlocks
// surface here).
func (m *Machine) Run(program func(p *Proc)) error {
	m.SpawnAll(program)
	return m.K.Run()
}

// SpawnAll spawns the SPMD processes without running the kernel; use
// together with m.K.Run when the caller schedules additional activity.
func (m *Machine) SpawnAll(program func(p *Proc)) {
	for i := 0; i < m.P(); i++ {
		p := &Proc{ID: i, M: m}
		m.procs = append(m.procs, p)
		p.Proc = m.KernelAt(i).Spawn(fmt.Sprintf("p%d", i), func(sp *sim.Proc) {
			program(p)
		})
	}
}

// Elapsed returns the current simulated time in microseconds.
func (m *Machine) Elapsed() sim.Time { return m.K.Now() }

// Compute charges d microseconds of application computation to p's CPU.
func (p *Proc) Compute(d float64) { p.M.Net.Compute(p.Proc, p.ID, d) }

// Alloc creates a global variable of the given payload size (bytes) with
// initial value val, owned by the calling process (the only copy lives in
// its cache). It is a purely local operation.
func (p *Proc) Alloc(size int, val interface{}) VarID {
	return p.M.alloc(p.ID, size, val)
}

// AllocAt creates a variable owned by the given processor from outside any
// process (setup code at time zero).
func (m *Machine) AllocAt(creator, size int, val interface{}) VarID {
	return m.alloc(creator, size, val)
}

func (m *Machine) alloc(creator, size int, val interface{}) VarID {
	if m.Strat == nil {
		panic("core: machine has no data management strategy")
	}
	if size <= 0 {
		panic("core: variable size must be positive")
	}
	v := &Variable{
		ID:      VarID(len(m.vars)),
		Size:    size,
		Creator: creator,
		Data:    val,
	}
	m.vars = append(m.vars, v)
	m.Strat.InitVar(v)
	return v.ID
}

// Free releases a variable's protocol state on all nodes. Local operation;
// the id must not be used afterwards.
func (m *Machine) Free(id VarID) {
	v := m.Var(id)
	if v.busy() {
		panic(fmt.Sprintf("core: freeing variable %d with active transactions", id))
	}
	m.Strat.FreeVar(v)
	m.vars[id] = nil
}

// Read returns the current value of v, migrating or replicating copies
// according to the machine's strategy. Blocks until the value is local.
func (p *Proc) Read(id VarID) interface{} {
	v := p.M.Var(id)
	// Local-hit fast path (the force phase of Barnes-Hut hits ~99%): with
	// unbounded caches a local read has no protocol action and no LRU
	// bookkeeping, and since it cannot block, the reader-count round-trip
	// through the rw queue is unobservable — one bitmap load replaces the
	// strategy dispatch and its pointer chase through the variable state.
	if p.M.fastLocal && !v.rw.writer && len(v.rw.waiters) == 0 && v.LocalBit(p.ID) {
		return v.Data
	}
	v.acquireRead(p)
	val := p.M.Strat.Read(p, v)
	v.releaseRead(p.M.K)
	return val
}

// Write replaces the value of v, invalidating remote copies according to
// the machine's strategy. Values must be treated as immutable: writers
// store fresh values, they never mutate a value obtained from Read.
func (p *Proc) Write(id VarID, val interface{}) {
	v := p.M.Var(id)
	v.acquireWrite(p)
	p.M.Strat.Write(p, v, val)
	v.releaseWrite(p.M.K)
}

// Lock acquires the mutual-exclusion lock attached to variable id.
func (p *Proc) Lock(id VarID) { p.M.Strat.Lock(p, p.M.Var(id)) }

// Unlock releases the lock attached to variable id.
func (p *Proc) Unlock(id VarID) { p.M.Strat.Unlock(p, p.M.Var(id)) }

// Barrier blocks until every processor has entered the barrier. The
// implementation combines arrivals up the decomposition tree and multicasts
// the release down it ("elegant algorithms that use access trees, too").
func (p *Proc) Barrier() { p.M.bar.wait(p, nil, nil, 0) }

// BarrierReduce is Barrier with an all-reduce: every process contributes
// val; combine must be associative and identical on all processes; the
// combined value (in leaf order) is returned to every process. size is the
// payload size in bytes added to the barrier messages.
func (p *Proc) BarrierReduce(val interface{}, size int, combine func(a, b interface{}) interface{}) interface{} {
	return p.M.bar.wait(p, val, combine, size)
}
