package core_test

import (
	"testing"
	"testing/quick"

	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/decomp"
)

// TestBarrierMessageComplexity: one barrier costs exactly two messages per
// tree edge (arrive up, release down) — the "elegant algorithm on the
// access tree" property that avoids any hotspot. (Messages between tree
// nodes that land on the same processor still count as sends here, since
// SendStats counts local deliveries too.)
func TestBarrierMessageComplexity(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 5, Tree: decomp.Ary2,
		Strategy: accesstree.Factory(),
	})
	if err := m.Run(func(p *core.Proc) {
		p.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	msgs, _ := m.Net.SendStats()
	// 2-ary tree over 16 processors: 31 nodes, 30 edges.
	wantPerDirection := uint64(30)
	if msgs[1] != wantPerDirection { // KindBarrierArrive
		t.Fatalf("%d arrive messages, want %d", msgs[1], wantPerDirection)
	}
	if msgs[2] != wantPerDirection { // KindBarrierRelease
		t.Fatalf("%d release messages, want %d", msgs[2], wantPerDirection)
	}
}

// TestBarrierReduceConcatOrder: the reduction combines values in leaf
// order when the combine function is order-sensitive, deterministically.
func TestBarrierReduceDeterministicOrder(t *testing.T) {
	run := func() string {
		m := core.MustNewMachine(core.Config{
			Rows: 2, Cols: 4, Seed: 9, Tree: decomp.Ary2,
			Strategy: accesstree.Factory(),
		})
		var got string
		if err := m.Run(func(p *core.Proc) {
			v := p.BarrierReduce(string(rune('a'+p.ID)), 8,
				func(a, b interface{}) interface{} { return a.(string) + b.(string) })
			if p.ID == 0 {
				got = v.(string)
			}
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}
	first := run()
	if len(first) != 8 {
		t.Fatalf("reduce lost contributions: %q", first)
	}
	for i := 0; i < 3; i++ {
		if run() != first {
			t.Fatal("reduce order not deterministic")
		}
	}
}

// TestBarrierReduceAssociativeProperty: for associative combines, the
// result equals the sequential fold regardless of tree shape.
func TestBarrierReduceAssociativeProperty(t *testing.T) {
	specs := []decomp.Spec{decomp.Ary2, decomp.Ary4, decomp.Ary16, decomp.Ary2K4}
	check := func(seedRaw uint16, specIdx uint8) bool {
		spec := specs[int(specIdx)%len(specs)]
		m := core.MustNewMachine(core.Config{
			Rows: 4, Cols: 4, Seed: uint64(seedRaw), Tree: spec,
			Strategy: accesstree.Factory(),
		})
		want := 0
		for i := 0; i < m.P(); i++ {
			want += i * i
		}
		ok := true
		if err := m.Run(func(p *core.Proc) {
			got := p.BarrierReduce(p.ID*p.ID, 8,
				func(a, b interface{}) interface{} { return a.(int) + b.(int) })
			if got != want {
				ok = false
			}
		}); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestBarrierManyRoundsManyShapes stresses epoch bookkeeping.
func TestBarrierManyRoundsManyShapes(t *testing.T) {
	for _, shape := range [][2]int{{1, 7}, {3, 5}, {8, 8}} {
		m := core.MustNewMachine(core.Config{
			Rows: shape[0], Cols: shape[1], Seed: 1, Tree: decomp.Ary4,
			Strategy: accesstree.Factory(),
		})
		rounds := 0
		if err := m.Run(func(p *core.Proc) {
			for r := 0; r < 25; r++ {
				p.Barrier()
				if p.ID == 0 {
					rounds++
				}
			}
		}); err != nil {
			t.Fatalf("%v: %v", shape, err)
		}
		if rounds != 25 {
			t.Fatalf("%v: %d rounds completed", shape, rounds)
		}
	}
}

// TestBarrierDoubleEntryPanics: a process must not be inside two barriers.
func TestBarrierDoubleEntryPanics(t *testing.T) {
	// Entering a barrier twice concurrently is impossible for a single
	// process by construction (Barrier blocks); this guards the internal
	// invariant through the machine's accounting instead: barrier epochs
	// advance once per call.
	m := core.MustNewMachine(core.Config{
		Rows: 2, Cols: 2, Seed: 2, Tree: decomp.Ary2,
		Strategy: accesstree.Factory(),
	})
	calls := make([]int, m.P())
	if err := m.Run(func(p *core.Proc) {
		for i := 0; i < 3; i++ {
			p.Barrier()
			calls[p.ID]++
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		if c != 3 {
			t.Fatalf("proc %d completed %d barriers", i, c)
		}
	}
}

// TestVariableIdleReporting exercises the transaction-state accessor the
// replacement machinery relies on.
func TestVariableIdleReporting(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 2, Cols: 2, Seed: 3, Tree: decomp.Ary2,
		Strategy: accesstree.Factory(),
	})
	v := m.AllocAt(0, 16, 1)
	if !m.Var(v).Idle() {
		t.Fatal("fresh variable not idle")
	}
	if err := m.Run(func(p *core.Proc) {
		p.Read(v)
	}); err != nil {
		t.Fatal(err)
	}
	if !m.Var(v).Idle() {
		t.Fatal("variable not idle after run")
	}
}
