package diva_test

import (
	"fmt"
	"strings"

	"diva"
	"diva/strategy"
	"diva/topology"
)

// Example is the quickstart: eight processors on a 2×4 mesh share one
// global variable through 2-ary access trees — everyone reads, one
// processor writes (invalidating the other copies along the tree), and
// everyone reads again. The simulation is deterministic: this output is
// bit-for-bit reproducible.
func Example() {
	m, err := diva.New(
		diva.WithMesh(2, 4),
		diva.WithSeed(42),
		diva.WithStrategyName("at2"),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	greeting := m.AllocAt(0, 64, "hello from processor 0")

	err = m.Run(func(p *diva.Proc) {
		v := p.Read(greeting)
		if p.ID == 3 {
			fmt.Printf("p%d read: %q at t=%.0fus\n", p.ID, v, p.Now())
		}
		p.Barrier()
		if p.ID == 5 {
			p.Write(greeting, "updated by processor 5")
		}
		p.Barrier()
		v = p.Read(greeting)
		if p.ID == 0 {
			fmt.Printf("p%d read: %q at t=%.0fus\n", p.ID, v, p.Now())
		}
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("simulated time: %.0fus on %s\n", m.Elapsed(), m.Topo)
	// Output:
	// p3 read: "hello from processor 0" at t=5426us
	// p0 read: "updated by processor 5" at t=16594us
	// simulated time: 18474us on 2x4 mesh
}

// ExampleNew_registries selects the interconnect and the data management
// strategy by name: the diva/topology and diva/strategy registries are the
// single source of truth behind every -topology/-strategy flag.
func ExampleNew_registries() {
	fmt.Println("strategies:", strings.Join(strategy.Names(), " "))
	fmt.Println("topologies:", strings.Join(topology.Names(), " "))

	m, err := diva.New(
		diva.WithTopologyName("torus", 4, 4),
		diva.WithStrategyName("at4"),
		diva.WithSeed(7),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s on a %s (%d processors)\n", m.Strat.Name(), m.Topo, m.P())
	// Output:
	// strategies: at16 at2 at2k4 at4 at4k16 at4k8 atrandom fixedhome
	// topologies: fattree graph:degraded graph:er graph:regular hypercube mesh torus
	// 4-ary access tree on a 4x4 torus (16 processors)
}

// ExampleWorkload runs one of the paper's applications through the
// unified workload driver: any application runs on any
// (topology × strategy) machine the same way.
func ExampleWorkload() {
	m, err := diva.New(
		diva.WithMesh(4, 4),
		diva.WithSeed(1),
		diva.WithStrategyName("at2k4"),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	w := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 64, Check: true, Seed: 9})
	res, err := w.Run(m, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s sorted %d keys: verified=%v\n", w.Name(), 64*m.P(), res.Verified)
	// Output:
	// bitonic sorted 1024 keys: verified=true
}

// ExampleFromSpec runs the serializable run description: one JSON-friendly
// diva.Spec names the machine and the workload, and FromSpec builds both.
// The divasim command line and the HTTP service funnel through the same
// Spec, so this document describes the identical run everywhere.
func ExampleFromSpec() {
	s := diva.Spec{
		Topology: "mesh", Rows: 4, Cols: 4,
		Strategy: "at4", Seed: 7,
		Workload: diva.WorkloadSpec{Name: "bitonic", Keys: 32, Check: true},
	}
	m, w, err := diva.FromSpec(s)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := w.Run(m, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s on %s with %s: verified=%v\n", w.Name(), m.Topo, m.Strat.Name(), res.Verified)
	// Output:
	// bitonic on 4x4 mesh with 4-ary access tree: verified=true
}

// ExampleFork snapshots a warmed-up machine and forks it per query: each
// fork resumes exactly where the snapshot was taken, and fork-then-run is
// bit-identical to continuing the source — the foundation of the
// simulation service (divasim serve).
func ExampleFork() {
	m := diva.MustNew(
		diva.WithMesh(4, 4),
		diva.WithStrategyName("at2"),
		diva.WithSeed(7),
	)
	warm := diva.Matmul(diva.MatmulConfig{BlockInts: 16, Seed: 1})
	if _, err := warm.Run(m, nil); err != nil {
		fmt.Println("error:", err)
		return
	}
	snap, err := m.Snapshot()
	if err != nil {
		fmt.Println("error:", err)
		return
	}

	query := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 8, Check: true, Seed: 2})
	fps := make([]uint64, 2)
	for i := range fps {
		f, err := diva.Fork(snap)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		if _, err := query.Run(f, nil); err != nil {
			fmt.Println("error:", err)
			return
		}
		fps[i] = f.K.Fingerprint()
	}
	fmt.Println("forks bit-identical:", fps[0] == fps[1])
	// Output:
	// forks bit-identical: true
}
