// Determinism regression tests for the allocation-free event kernel.
//
// The simulator's contract is bit-for-bit reproducibility: the same seed
// must produce the same event order, the same congestion counters and the
// same simulated time — across repeated runs, and across refactors of the
// kernel internals. The golden values below were captured from the seed
// implementation (container/heap kernel, closure-based delivery, map-based
// access tree state) and pin the simulated results through the hot-path
// rewrite.
package diva_test

import (
	"bytes"
	"testing"

	"diva/internal/apps/barneshut"
	"diva/internal/apps/matmul"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/experiments"
	"diva/internal/mesh"
	"diva/internal/metrics"
)

// detRun holds everything a simulation run exposes about its trajectory.
type detRun struct {
	fingerprint uint64
	elapsedUS   float64
	cong        mesh.Congestion
	sendMsgs    [256]uint64
	sendBytes   [256]uint64
}

// runMatmulDet runs the 8x8 matmul workload used as determinism probe.
func runMatmulDet(t *testing.T, f core.Factory) detRun {
	t.Helper()
	m := core.MustNewMachine(core.Config{
		Rows: 8, Cols: 8, Seed: 1999, Tree: decomp.Ary4, Strategy: f,
	})
	res, err := matmul.RunDSM(m, matmul.Config{BlockInts: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := detRun{
		fingerprint: m.K.Fingerprint(),
		elapsedUS:   res.ElapsedUS,
		cong:        m.Net.Congestion(nil),
	}
	r.sendMsgs, r.sendBytes = m.Net.SendStats()
	return r
}

// TestDeterminismTwoRunsIdentical: two runs of the same seed must execute
// the exact same event sequence (same kernel fingerprint) and produce the
// same metrics.
func TestDeterminismTwoRunsIdentical(t *testing.T) {
	a := runMatmulDet(t, accesstree.Factory())
	b := runMatmulDet(t, accesstree.Factory())
	if a.fingerprint == 0 {
		t.Fatal("kernel fingerprint not collected")
	}
	if a != b {
		t.Fatalf("two runs of the same seed diverged:\n  run1: %+v\n  run2: %+v", a, b)
	}
}

// TestGoldenSeedValues pins the simulated results to the values measured
// on the seed implementation, before the allocation-free kernel rewrite.
// A failure here means the simulation semantics changed, not just its
// speed.
func TestGoldenSeedValues(t *testing.T) {
	at := runMatmulDet(t, accesstree.Factory())
	if at.elapsedUS != 109496 {
		t.Errorf("matmul AT elapsed = %v us, want 109496 (seed golden)", at.elapsedUS)
	}
	want := mesh.Congestion{MaxMsgs: 118, MaxBytes: 39528, TotalMsgs: 12126, TotalBytes: 3493560}
	if at.cong != want {
		t.Errorf("matmul AT congestion = %+v, want %+v (seed golden)", at.cong, want)
	}
	var sm, sb uint64
	for i := range at.sendMsgs {
		sm += at.sendMsgs[i]
		sb += at.sendBytes[i]
	}
	if sm != 7136 || sb != 1956288 {
		t.Errorf("matmul AT send stats = %d msgs / %d bytes, want 7136 / 1956288 (seed golden)", sm, sb)
	}

	fh := runMatmulDet(t, fixedhome.Factory())
	if fh.elapsedUS != 153072 {
		t.Errorf("matmul FH elapsed = %v us, want 153072 (seed golden)", fh.elapsedUS)
	}
	wantFH := mesh.Congestion{MaxMsgs: 185, MaxBytes: 68440, TotalMsgs: 21256, TotalBytes: 5704896}
	if fh.cong != wantFH {
		t.Errorf("matmul FH congestion = %+v, want %+v (seed golden)", fh.cong, wantFH)
	}
}

// TestGoldenBarnesHut pins the Barnes-Hut workload (the paper's — and the
// profile's — main driver) to its seed-captured trajectory.
func TestGoldenBarnesHut(t *testing.T) {
	m := core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 1999, Tree: decomp.Ary4,
		Strategy: accesstree.Factory(),
	})
	col := metrics.New(m.Net)
	_, err := barneshut.Run(m, barneshut.Config{
		N: 400, Steps: 3, MeasureFrom: 1, Seed: 3, WithCompute: true,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	tot := col.Total()
	if tot.TimeUS != 4723514 {
		t.Errorf("barnes-hut time = %v us, want 4723514 (seed golden)", tot.TimeUS)
	}
	if tot.Cong.MaxMsgs != 1605 || tot.Cong.TotalMsgs != 58712 {
		t.Errorf("barnes-hut congestion = max %d / total %d msgs, want 1605 / 58712 (seed golden)",
			tot.Cong.MaxMsgs, tot.Cong.TotalMsgs)
	}
}

// TestParallelRunnerByteIdentical: the experiments runner must emit the
// exact same bytes whether figures run sequentially or on a worker pool.
func TestParallelRunnerByteIdentical(t *testing.T) {
	figs := []string{"1", "2", "5", "8", "ablation-embed", "ablation-arity"}
	if testing.Short() {
		figs = []string{"1", "2", "5", "ablation-embed"}
	}
	var seq bytes.Buffer
	rs := experiments.New(&seq, true, 1999)
	if err := rs.RunFigures(figs); err != nil {
		t.Fatal(err)
	}
	var par bytes.Buffer
	rp := experiments.New(&par, true, 1999)
	rp.Workers = 4
	if err := rp.RunFigures(figs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatalf("parallel runner output differs from sequential:\n--- sequential (%d bytes)\n%s\n--- parallel (%d bytes)\n%s",
			seq.Len(), seq.String(), par.Len(), par.String())
	}
}
