package diva_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPILock pins the exported surface of the public packages —
// diva, diva/experiments, diva/fault, diva/serve, diva/snapstore,
// diva/spec, diva/strategy and diva/topology — against testdata/api.txt. The
// public API is a compatibility promise to embedding applications: a
// failure here means an exported name or signature changed. If the change
// is intentional, regenerate the golden file with
//
//	DIVA_UPDATE_API=1 go test -run TestPublicAPILock .
//
// and review the diff like any other API change.
func TestPublicAPILock(t *testing.T) {
	pkgs := []struct{ name, dir string }{
		{"diva", "."},
		{"diva/experiments", "experiments"},
		{"diva/fault", "fault"},
		{"diva/serve", "serve"},
		{"diva/snapstore", "snapstore"},
		{"diva/spec", "spec"},
		{"diva/strategy", "strategy"},
		{"diva/topology", "topology"},
	}
	var got []string
	for _, p := range pkgs {
		got = append(got, exportedSurface(t, p.name, p.dir)...)
	}
	sort.Strings(got)
	surface := strings.Join(got, "\n") + "\n"

	const golden = "testdata/api.txt"
	if os.Getenv("DIVA_UPDATE_API") != "" {
		if err := os.WriteFile(golden, []byte(surface), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d declarations)", golden, len(got))
		return
	}
	wantRaw, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with DIVA_UPDATE_API=1 to create the golden file)", err)
	}
	want := strings.Split(strings.TrimRight(string(wantRaw), "\n"), "\n")
	wantSet := make(map[string]bool, len(want))
	for _, l := range want {
		wantSet[l] = true
	}
	gotSet := make(map[string]bool, len(got))
	for _, l := range got {
		gotSet[l] = true
	}
	for _, l := range want {
		if !gotSet[l] {
			t.Errorf("public API lost or changed:\n  %s", l)
		}
	}
	for _, l := range got {
		if !wantSet[l] {
			t.Errorf("public API gained undeclared surface:\n  %s", l)
		}
	}
	if t.Failed() {
		t.Log("if intentional: DIVA_UPDATE_API=1 go test -run TestPublicAPILock . && review the testdata/api.txt diff")
	}
}

// exportedSurface parses the package in dir (without type checking — the
// surface is a syntactic property of our own source) and returns one
// normalized line per exported declaration.
func exportedSurface(t *testing.T, pkgName, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			lines = append(lines, declSurface(fset, pkgName, decl)...)
		}
	}
	return lines
}

// declSurface renders the exported parts of one top-level declaration.
func declSurface(fset *token.FileSet, pkg string, decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		if d.Recv != nil {
			// Methods on unexported types are not public surface; the
			// public packages currently declare no exported concrete
			// types with methods (aliases carry theirs from internal).
			if !receiverExported(d.Recv) {
				return nil
			}
			out = append(out, pkg+": method "+render(fset, d.Recv.List[0].Type)+"."+d.Name.Name+strings.TrimPrefix(render(fset, d.Type), "func"))
			return out
		}
		out = append(out, pkg+": func "+d.Name.Name+strings.TrimPrefix(render(fset, d.Type), "func"))
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if !s.Name.IsExported() {
					continue
				}
				eq := " "
				if s.Assign.IsValid() {
					eq = " = "
				}
				out = append(out, pkg+": type "+s.Name.Name+eq+render(fset, s.Type))
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if !n.IsExported() {
						continue
					}
					kind := "var"
					if d.Tok == token.CONST {
						kind = "const"
					}
					out = append(out, pkg+": "+kind+" "+n.Name)
				}
			}
		}
	}
	return out
}

func receiverExported(recv *ast.FieldList) bool {
	typ := recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	id, ok := typ.(*ast.Ident)
	return ok && id.IsExported()
}

// render prints a syntax node on one line with collapsed whitespace.
func render(fset *token.FileSet, node ast.Node) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, node); err != nil {
		return "<render error>"
	}
	return strings.Join(strings.Fields(b.String()), " ")
}
