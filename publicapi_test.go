// Public-surface regression tests: the façade (diva.New + registries +
// Workload) must drive the exact same simulations as the internal
// construction path, validate configurations with errors instead of
// panics, and keep the golden determinism fingerprints unchanged.
package diva_test

import (
	"strings"
	"testing"

	"diva"
	"diva/internal/core"
	"diva/internal/decomp"
	"diva/strategy"
	"diva/topology"
)

// TestPublicAPIGoldenDeterminism: the golden seed values (captured on the
// seed implementation, see determinism_test.go) must be reproduced when
// the machine is built and the workload driven entirely through the
// public API. A failure here means the façade changed configuration
// defaults or simulation semantics.
func TestPublicAPIGoldenDeterminism(t *testing.T) {
	m, err := diva.New(
		diva.WithMesh(8, 8),
		diva.WithSeed(1999),
		diva.WithStrategyName("at4"),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := diva.Matmul(diva.MatmulConfig{BlockInts: 256, Seed: 1}).Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ElapsedUS != 109496 {
		t.Errorf("matmul AT elapsed = %v us, want 109496 (seed golden)", res.ElapsedUS)
	}
	want := diva.Congestion{MaxMsgs: 118, MaxBytes: 39528, TotalMsgs: 12126, TotalBytes: 3493560}
	if got := m.Net.Congestion(nil); got != want {
		t.Errorf("matmul AT congestion = %+v, want %+v (seed golden)", got, want)
	}
	if _, ok := res.Detail.(diva.MatmulResult); !ok {
		t.Errorf("matmul Detail is %T, want diva.MatmulResult", res.Detail)
	}

	// The event-order fingerprint must equal the internal construction
	// path's bit for bit: the façade is an alias surface, not a rebuild.
	direct := core.MustNewMachine(core.Config{
		Rows: 8, Cols: 8, Seed: 1999, Tree: decomp.Ary4,
		Strategy: strategy.MustGet("at4").Factory,
	})
	if _, err := diva.Matmul(diva.MatmulConfig{BlockInts: 256, Seed: 1}).Run(direct, nil); err != nil {
		t.Fatal(err)
	}
	if a, b := m.K.Fingerprint(), direct.K.Fingerprint(); a != b || a == 0 {
		t.Errorf("public-API fingerprint %#x != internal-path fingerprint %#x", a, b)
	}
}

// TestPublicAPIGoldenBarnesHut pins the Barnes-Hut workload driven through
// the public API to its seed-captured trajectory (cf. TestGoldenBarnesHut).
func TestPublicAPIGoldenBarnesHut(t *testing.T) {
	m := diva.MustNew(
		diva.WithMesh(4, 4),
		diva.WithSeed(1999),
		diva.WithStrategyName("at4"),
	)
	col := diva.NewCollector(m)
	_, err := diva.BarnesHut(diva.BarnesHutConfig{
		N: 400, Steps: 3, MeasureFrom: 1, Seed: 3, WithCompute: true,
	}).Run(m, col)
	if err != nil {
		t.Fatal(err)
	}
	tot := col.Total()
	if tot.TimeUS != 4723514 {
		t.Errorf("barnes-hut time = %v us, want 4723514 (seed golden)", tot.TimeUS)
	}
	if tot.Cong.MaxMsgs != 1605 || tot.Cong.TotalMsgs != 58712 {
		t.Errorf("barnes-hut congestion = max %d / total %d msgs, want 1605 / 58712 (seed golden)",
			tot.Cong.MaxMsgs, tot.Cong.TotalMsgs)
	}
}

// TestNewValidation: configuration mistakes must come back as errors
// naming the problem, never as panics.
func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []diva.Option
		want string
	}{
		{"no interconnect", nil, "dimensions must be positive"},
		{"zero rows", []diva.Option{diva.WithMesh(0, 4)}, "dimensions must be positive"},
		{"negative cols", []diva.Option{diva.WithMesh(4, -1)}, "dimensions must be positive"},
		{"nil topology", []diva.Option{diva.WithTopology(nil)}, "WithTopology(nil)"},
		{"unknown strategy", []diva.Option{diva.WithMesh(4, 4), diva.WithStrategyName("nope")}, `unknown strategy "nope"`},
		{"unknown topology", []diva.Option{diva.WithTopologyName("ring", 4, 4)}, `unknown topology "ring"`},
		{"non-pow2 hypercube", []diva.Option{diva.WithTopologyName("hypercube", 3, 3)}, "power-of-two"},
		{"bad tree", []diva.Option{diva.WithMesh(4, 4), diva.WithTree(diva.Tree{Base: 3})}, "unsupported decomposition tree"},
		{"bad term-k", []diva.Option{diva.WithMesh(4, 4), diva.WithTree(diva.Tree{Base: 4, TermK: 2})}, "unsupported decomposition tree"},
		{"negative capacity", []diva.Option{diva.WithMesh(4, 4), diva.WithCacheCapacity(-1)}, "cache capacity"},
		{"negative shards", []diva.Option{diva.WithMesh(4, 4), diva.WithShards(-1)}, "shard count"},
		{"partial net params", []diva.Option{diva.WithMesh(4, 4), diva.WithNetParams(diva.NetParams{HopLatencyUS: 5})}, "bandwidth must be positive"},
	}
	for _, tc := range cases {
		m, err := diva.New(tc.opts...)
		if err == nil {
			t.Errorf("%s: New succeeded (%v), want error containing %q", tc.name, m.Topo, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A DSM workload on a machine without a strategy is an error, not a
	// panic deep inside Alloc.
	m := diva.MustNew(diva.WithMesh(4, 4))
	if _, err := diva.Matmul(diva.MatmulConfig{BlockInts: 64}).Run(m, nil); err == nil ||
		!strings.Contains(err.Error(), "no data management strategy") {
		t.Errorf("matmul on strategy-less machine: err = %v, want strategy error", err)
	}
	if _, err := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16}).Run(m, nil); err == nil ||
		!strings.Contains(err.Error(), "no data management strategy") {
		t.Errorf("bitonic on strategy-less machine: err = %v, want strategy error", err)
	}
	if _, err := diva.BarnesHut(diva.BarnesHutConfig{N: 16}).Run(m, nil); err == nil ||
		!strings.Contains(err.Error(), "no data management strategy") {
		t.Errorf("barneshut on strategy-less machine: err = %v, want strategy error", err)
	}
}

// TestMustNewPanics: MustNew is the explicit panicking variant for tests
// and fixed setups.
func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(WithMesh(-1, 1)) did not panic")
		}
	}()
	diva.MustNew(diva.WithMesh(-1, 1))
}

// TestWithTreeOverridesRegistryDefault: an explicit WithTree wins over the
// strategy's registered tree, in either option order.
func TestWithTreeOverridesRegistryDefault(t *testing.T) {
	before := diva.MustNew(diva.WithMesh(4, 4), diva.WithTree(diva.Ary2), diva.WithStrategyName("at4"))
	after := diva.MustNew(diva.WithMesh(4, 4), diva.WithStrategyName("at4"), diva.WithTree(diva.Ary2))
	def := diva.MustNew(diva.WithMesh(4, 4), diva.WithStrategyName("at4"))
	if got := before.Cfg.Tree; got != diva.Ary2 {
		t.Errorf("WithTree before WithStrategyName: tree %+v, want Ary2", got)
	}
	if got := after.Cfg.Tree; got != diva.Ary2 {
		t.Errorf("WithTree after WithStrategyName: tree %+v, want Ary2", got)
	}
	if got := def.Cfg.Tree; got != diva.Ary4 {
		t.Errorf("registry default tree %+v, want Ary4", got)
	}
	// WithStrategy replaces an earlier strategy option entirely: the tree
	// a WithStrategyName recorded must not leak onto the new strategy.
	repl := diva.MustNew(diva.WithMesh(4, 4), diva.WithStrategyName("at2"),
		diva.WithStrategy(strategy.MustGet("at4").Factory))
	if got := repl.Cfg.Tree; got != diva.Ary4 {
		t.Errorf("replaced strategy inherited stale tree %+v, want the Ary4 default", got)
	}
}

// TestWorkloadsRunOnEveryRegistryCell: the Workload interface must run
// every application on every (topology × strategy) registry cell — the
// embeddability claim of the façade — at miniature scale.
func TestWorkloadsRunOnEveryRegistryCell(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry cross product in short mode")
	}
	workloads := []diva.Workload{
		diva.Matmul(diva.MatmulConfig{BlockInts: 16, Check: true, Seed: 5}),
		diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 5}),
		diva.BarnesHut(diva.BarnesHutConfig{N: 64, Steps: 2, MeasureFrom: 1, Seed: 5}),
	}
	for _, topoName := range topology.Names() {
		for _, stratName := range strategy.Names() {
			for _, w := range workloads {
				m, err := diva.New(
					diva.WithTopologyName(topoName, 4, 4),
					diva.WithStrategyName(stratName),
					diva.WithSeed(11),
					diva.WithConcurrent(true),
				)
				if err != nil {
					t.Fatalf("%s/%s: %v", topoName, stratName, err)
				}
				res, err := w.Run(m, nil)
				if err != nil {
					t.Fatalf("%s/%s/%s: %v", topoName, stratName, w.Name(), err)
				}
				if res.ElapsedUS <= 0 {
					t.Errorf("%s/%s/%s: non-positive simulated time %v", topoName, stratName, w.Name(), res.ElapsedUS)
				}
				if w.Name() != "barneshut" && !res.Verified {
					t.Errorf("%s/%s/%s: result not verified", topoName, stratName, w.Name())
				}
			}
		}
	}
}
