// A/B tests for the PR 6 sharded conservative-parallel event kernel: a
// machine split across K kernel shards must produce the bit-identical
// trajectory of the sequential kernel — the same executed-event-order
// fingerprint, simulated time, congestion and message counts — on every
// workload × topology cell. Hand-optimized workloads genuinely shard;
// machines with a DSM strategy run sequentially by design (no lookahead),
// and the matrix pins that requesting shards there is a no-op.
package diva_test

import (
	"fmt"
	"testing"

	"diva"
)

// shardRun is one shard count's trajectory.
type shardRun struct {
	shards      int // effective count, from Machine.Shards
	fingerprint uint64
	elapsedUS   float64
	congMax     uint64
	congTotal   uint64
	sendMsgs    uint64
	sendBytes   uint64
}

// runSharded builds a machine with the given shard request plus opts, runs
// w, and collects the trajectory.
func runSharded(t *testing.T, w diva.Workload, shards int, opts ...diva.Option) shardRun {
	t.Helper()
	opts = append(opts, diva.WithShards(shards), diva.WithConcurrent(true))
	m := diva.MustNew(opts...)
	res, err := w.Run(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Net.Congestion(nil)
	msgs, bytes := m.Net.SendStats()
	var sm, sb uint64
	for k := range msgs {
		sm += msgs[k]
		sb += bytes[k]
	}
	return shardRun{
		shards:      m.Shards(),
		fingerprint: m.K.Fingerprint(),
		elapsedUS:   res.ElapsedUS,
		congMax:     c.MaxMsgs,
		congTotal:   c.TotalMsgs,
		sendMsgs:    sm,
		sendBytes:   sb,
	}
}

// checkShardAB pins the trajectory of every requested shard count to the
// sequential baseline.
func checkShardAB(t *testing.T, w diva.Workload, counts []int, wantEff func(req int) int, opts ...diva.Option) {
	t.Helper()
	base := runSharded(t, w, 1, opts...)
	if base.fingerprint == 0 {
		t.Fatal("no fingerprint collected")
	}
	for _, n := range counts {
		got := runSharded(t, w, n, opts...)
		if want := wantEff(n); got.shards != want {
			t.Errorf("shards=%d: effective count %d, want %d", n, got.shards, want)
		}
		if got.fingerprint != base.fingerprint {
			t.Errorf("shards=%d: event-order fingerprint %#x != sequential %#x", n, got.fingerprint, base.fingerprint)
		}
		if got != (shardRun{shards: got.shards, fingerprint: got.fingerprint,
			elapsedUS: base.elapsedUS, congMax: base.congMax, congTotal: base.congTotal,
			sendMsgs: base.sendMsgs, sendBytes: base.sendBytes}) {
			t.Errorf("shards=%d: observables diverged: %+v vs %+v", n, got, base)
		}
	}
}

var shardTopologies = []string{"mesh", "torus", "hypercube", "fattree"}

// TestShardABHandOpt is the sharding matrix proper: the strategy-free
// workloads across every topology, shards 2 and 4 against sequential.
func TestShardABHandOpt(t *testing.T) {
	eff := func(req int) int { return req }
	for _, topo := range shardTopologies {
		topo := topo
		t.Run("stencil/"+topo, func(t *testing.T) {
			w := diva.Stencil(diva.StencilConfig{Iters: 4, HaloInts: 64, WithCompute: true, OpUS: 0.5, Check: true, Seed: 7})
			checkShardAB(t, w, []int{2, 4}, eff,
				diva.WithTopologyName(topo, 8, 8), diva.WithSeed(1999), diva.WithTree(diva.Ary2))
		})
		t.Run("bitonic-handopt/"+topo, func(t *testing.T) {
			w := diva.BitonicHandOpt(diva.BitonicConfig{KeysPerProc: 64, Check: true, Seed: 7})
			checkShardAB(t, w, []int{2, 4}, eff,
				diva.WithTopologyName(topo, 8, 8), diva.WithSeed(1999), diva.WithTree(diva.Ary2))
		})
	}
	t.Run("matmul-handopt/mesh", func(t *testing.T) {
		w := diva.MatmulHandOpt(diva.MatmulConfig{BlockInts: 256, WithCompute: true, OpUS: 3.45, Seed: 1})
		checkShardAB(t, w, []int{2, 4}, eff,
			diva.WithMesh(8, 8), diva.WithSeed(1999), diva.WithTree(diva.Ary2))
	})
}

// TestShardABDSM pins the strategy cells of the matrix: a DSM machine has
// no lookahead window, so a shard request must be an exact no-op — the
// machine reports one effective shard and the trajectory is untouched.
func TestShardABDSM(t *testing.T) {
	one := func(int) int { return 1 }
	for _, strat := range []string{"fixedhome", "at4"} {
		for _, topo := range shardTopologies {
			strat, topo := strat, topo
			t.Run("matmul/"+strat+"/"+topo, func(t *testing.T) {
				w := diva.Matmul(diva.MatmulConfig{BlockInts: 64, Seed: 1})
				checkShardAB(t, w, []int{4}, one,
					diva.WithTopologyName(topo, 8, 8), diva.WithSeed(1999), diva.WithStrategyName(strat))
			})
			t.Run("bitonic/"+strat+"/"+topo, func(t *testing.T) {
				w := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2})
				checkShardAB(t, w, []int{4}, one,
					diva.WithTopologyName(topo, 8, 8), diva.WithSeed(1999), diva.WithStrategyName(strat))
			})
			if testing.Short() {
				continue
			}
			t.Run("barneshut/"+strat+"/"+topo, func(t *testing.T) {
				w := diva.BarnesHut(diva.BarnesHutConfig{N: 128, Steps: 2, MeasureFrom: 1, Seed: 3, WithCompute: true})
				checkShardAB(t, w, []int{4}, one,
					diva.WithTopologyName(topo, 4, 4), diva.WithSeed(1999), diva.WithStrategyName(strat))
			})
		}
	}
}

// TestShardFuzzFingerprints is the randomized determinism sweep: stencil
// configurations drawn from a seeded generator must fingerprint-match
// across shards ∈ {1, 2, 4, 8}.
func TestShardFuzzFingerprints(t *testing.T) {
	cases := 6
	if testing.Short() {
		cases = 2
	}
	rng := uint64(0x1999)
	next := func(n int) int {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return int(rng % uint64(n))
	}
	for i := 0; i < cases; i++ {
		topo := shardTopologies[next(len(shardTopologies))]
		rows, cols := 4+4*next(2), 8
		iters := 2 + next(4)
		halo := 16 << next(3)
		seed := uint64(1 + next(1_000_000))
		name := fmt.Sprintf("%s_%dx%d_it%d_h%d_s%d", topo, rows, cols, iters, halo, seed)
		t.Run(name, func(t *testing.T) {
			w := diva.Stencil(diva.StencilConfig{Iters: iters, HaloInts: halo, WithCompute: next(2) == 0, OpUS: 0.5, Check: true, Seed: seed})
			checkShardAB(t, w, []int{2, 4, 8}, func(req int) int { return req },
				diva.WithTopologyName(topo, rows, cols), diva.WithSeed(seed), diva.WithTree(diva.Ary2))
		})
	}
}
