// Benchmarks: one per figure of the paper's evaluation (plus the ablations
// of DESIGN.md and a few protocol micro-benchmarks). Each benchmark runs a
// representative — scaled-down — configuration of the corresponding
// experiment; cmd/experiments regenerates the figures at full scale.
//
// The metric being benchmarked is the simulator's wall-clock throughput;
// the simulated results (congestion, simulated time) of every figure are
// reported via b.ReportMetric so `go test -bench` output documents the
// experiment outcomes alongside.
package diva_test

import (
	"os"
	"strings"
	"testing"

	"diva/internal/apps/barneshut"
	"diva/internal/apps/bitonic"
	"diva/internal/apps/matmul"
	"diva/internal/apps/stencil"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/mesh"
	"diva/internal/metrics"
	"diva/internal/sim"
)

// TestMain warms the process before benchmarking. The first benchmark in
// file order (Fig3MatMulHandOpt) used to pay the cold-process costs —
// first-touch page faults, runtime arena growth, branch-predictor and
// frequency ramp-up — inflating its ns/op relative to every later
// benchmark in the same run. One throwaway workload up front moves those
// costs out of all measured regions. Plain `go test` runs skip it.
func TestMain(m *testing.M) {
	for _, arg := range os.Args[1:] {
		if strings.HasPrefix(arg, "-test.bench=") || arg == "-test.bench" {
			warm := machine(8, 8, accesstree.Factory(), decomp.Ary4)
			if _, err := matmul.RunDSM(warm, matmul.Config{BlockInts: 256, Seed: 1}); err != nil {
				panic(err)
			}
			break
		}
	}
	os.Exit(m.Run())
}

func machine(rows, cols int, f core.Factory, spec decomp.Spec) *core.Machine {
	return core.MustNewMachine(core.Config{
		Rows: rows, Cols: cols, Seed: 1999, Tree: spec, Strategy: f,
	})
}

// --- Figure 3: matrix multiplication, 16x16 mesh, block-size sweep ---

func benchMatmul(b *testing.B, side, block int, f core.Factory, spec decomp.Spec) {
	var lastCong uint64
	var lastTime float64
	for i := 0; i < b.N; i++ {
		m := machine(side, side, f, spec)
		var (
			res matmul.Result
			err error
		)
		if f == nil {
			res, err = matmul.RunHandOpt(m, matmul.Config{BlockInts: block, Seed: 1})
		} else {
			res, err = matmul.RunDSM(m, matmul.Config{BlockInts: block, Seed: 1})
		}
		if err != nil {
			b.Fatal(err)
		}
		lastCong = m.Net.Congestion(nil).MaxBytes
		lastTime = res.ElapsedUS
	}
	b.ReportMetric(float64(lastCong), "congestion-bytes")
	b.ReportMetric(lastTime/1000, "simulated-ms")
}

func BenchmarkFig3MatMulHandOpt(b *testing.B) {
	benchMatmul(b, 16, 256, nil, decomp.Ary2)
}

func BenchmarkFig3MatMulAccessTree4(b *testing.B) {
	benchMatmul(b, 16, 256, accesstree.Factory(), decomp.Ary4)
}

func BenchmarkFig3MatMulFixedHome(b *testing.B) {
	benchMatmul(b, 16, 256, fixedhome.Factory(), decomp.Ary4)
}

// --- Figure 4: matrix multiplication network scaling ---

func BenchmarkFig4MatMulScale32x32AccessTree(b *testing.B) {
	benchMatmul(b, 32, 256, accesstree.Factory(), decomp.Ary4)
}

func BenchmarkFig4MatMulScale32x32FixedHome(b *testing.B) {
	benchMatmul(b, 32, 256, fixedhome.Factory(), decomp.Ary4)
}

// --- Figures 6/7: bitonic sorting ---

func benchBitonic(b *testing.B, side, keys int, f core.Factory, spec decomp.Spec) {
	var lastCong uint64
	var lastTime float64
	for i := 0; i < b.N; i++ {
		m := machine(side, side, f, spec)
		cfg := bitonic.Config{KeysPerProc: keys, WithCompute: true, CompareUS: 1, Seed: 2}
		var (
			res bitonic.Result
			err error
		)
		if f == nil {
			res, err = bitonic.RunHandOpt(m, cfg)
		} else {
			res, err = bitonic.RunDSM(m, cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		lastCong = m.Net.Congestion(nil).MaxBytes
		lastTime = res.ElapsedUS
	}
	b.ReportMetric(float64(lastCong), "congestion-bytes")
	b.ReportMetric(lastTime/1000, "simulated-ms")
}

func BenchmarkFig6BitonicHandOpt(b *testing.B) {
	benchBitonic(b, 8, 1024, nil, decomp.Ary2)
}

func BenchmarkFig6BitonicAccessTree24(b *testing.B) {
	benchBitonic(b, 8, 1024, accesstree.Factory(), decomp.Ary2K4)
}

func BenchmarkFig6BitonicFixedHome(b *testing.B) {
	benchBitonic(b, 8, 1024, fixedhome.Factory(), decomp.Ary2)
}

func BenchmarkFig7BitonicScale16x16AccessTree24(b *testing.B) {
	benchBitonic(b, 16, 1024, accesstree.Factory(), decomp.Ary2K4)
}

// --- Figures 8/9/10: Barnes-Hut on one mesh, strategy sweep ---

func benchBarnesHut(b *testing.B, rows, cols, n int, f core.Factory, spec decomp.Spec) {
	var total, build, force metrics.Result
	for i := 0; i < b.N; i++ {
		m := machine(rows, cols, f, spec)
		col := metrics.New(m.Net)
		_, err := barneshut.Run(m, barneshut.Config{
			N: n, Steps: 4, MeasureFrom: 2, Seed: 3, WithCompute: true,
		}, col)
		if err != nil {
			b.Fatal(err)
		}
		total = col.Total()
		build, _ = col.Phase(barneshut.PhaseBuild)
		force, _ = col.Phase(barneshut.PhaseForce)
	}
	b.ReportMetric(float64(total.Cong.MaxMsgs), "fig8-congestion-msgs")
	b.ReportMetric(total.TimeUS/1000, "fig8-simulated-ms")
	b.ReportMetric(float64(build.Cong.MaxMsgs), "fig9-build-congestion-msgs")
	b.ReportMetric(float64(force.Cong.MaxMsgs), "fig10-force-congestion-msgs")
	b.ReportMetric(force.MaxComputeUS/1000, "fig10-local-compute-ms")
}

func BenchmarkFig8BarnesHutFixedHome(b *testing.B) {
	benchBarnesHut(b, 8, 8, 1500, fixedhome.Factory(), decomp.Ary4)
}

func BenchmarkFig8BarnesHutAccessTree16(b *testing.B) {
	benchBarnesHut(b, 8, 8, 1500, accesstree.Factory(), decomp.Ary16)
}

func BenchmarkFig8BarnesHutAccessTree4K16(b *testing.B) {
	benchBarnesHut(b, 8, 8, 1500, accesstree.Factory(), decomp.Ary4K16)
}

func BenchmarkFig8BarnesHutAccessTree4(b *testing.B) {
	benchBarnesHut(b, 8, 8, 1500, accesstree.Factory(), decomp.Ary4)
}

func BenchmarkFig8BarnesHutAccessTree2(b *testing.B) {
	benchBarnesHut(b, 8, 8, 1500, accesstree.Factory(), decomp.Ary2)
}

// Figures 9 and 10 are phase views of the same runs; their metrics are
// reported by the Fig8 benchmarks above (fig9-*/fig10-* metrics).

// --- Topologies sweep: the Fig-8 workload on non-mesh networks ---

// benchTopoBarnesHut tracks the routing cost of the non-mesh topologies:
// the same Barnes-Hut cell the "topologies" sweep runs, one benchmark per
// network family.
func benchTopoBarnesHut(b *testing.B, topo mesh.Topology) {
	var cong uint64
	var simTime float64
	for i := 0; i < b.N; i++ {
		m := core.MustNewMachine(core.Config{
			Topology: topo, Seed: 1999, Tree: decomp.Ary4,
			Strategy: accesstree.Factory(),
		})
		col := metrics.New(m.Net)
		_, err := barneshut.Run(m, barneshut.Config{
			N: 600, Steps: 4, MeasureFrom: 2, Seed: 1999, WithCompute: true,
		}, col)
		if err != nil {
			b.Fatal(err)
		}
		tot := col.Total()
		cong, simTime = tot.Cong.MaxMsgs, tot.TimeUS
	}
	b.ReportMetric(float64(cong), "congestion-msgs")
	b.ReportMetric(simTime/1000, "simulated-ms")
}

func BenchmarkFigTopologiesTorusAccessTree4(b *testing.B) {
	benchTopoBarnesHut(b, mesh.NewTorus(4, 4))
}

func BenchmarkFigTopologiesHypercubeAccessTree4(b *testing.B) {
	benchTopoBarnesHut(b, mesh.NewHypercube(4))
}

func BenchmarkFigTopologiesFatTreeAccessTree4(b *testing.B) {
	benchTopoBarnesHut(b, mesh.NewFatTree(4))
}

// --- Graph routing and fault re-routing ---

// benchGraphRoute measures a full pooled send-route-deliver cycle between
// two diameter-distant nodes of a 64-node random-regular graph. The
// healthy variant exercises the precomputed BFS route tables; the rerouted
// variant takes the first link of that route down for the whole run, so
// every delivery pays the fault-sync and routes over the live spanning
// forest instead — the slow path every faulty simulation hits.
func benchGraphRoute(b *testing.B, faulty bool) {
	g, err := mesh.NewRandomRegular(64, 4, 1999)
	if err != nil {
		b.Fatal(err)
	}
	src, dst := 0, 1
	for v := range g.N() {
		if g.Dist(src, v) > g.Dist(src, dst) {
			dst = v
		}
	}
	k := sim.New()
	nw := mesh.NewNetwork(k, g, mesh.GCelParams())
	if faulty {
		ends := make(map[int]int, g.NumLinks())
		g.ForEachLink(func(link, from, to int) { ends[link] = to })
		first := ends[g.AppendRoute(nil, src, dst)[0]]
		err := nw.InstallFaults(mesh.FaultSchedule{
			{AtUS: 0, Kind: mesh.FaultLinkDown, A: src, B: first},
			{AtUS: 1e15, Kind: mesh.FaultLinkUp, A: src, B: first},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	n := 0
	const kind = 7
	nw.Handle(kind, func(m *mesh.Msg) {
		n++
		if n < b.N {
			nw.SendPooled(m.Dst, m.Src, 64, kind, nil)
		}
	})
	nw.SendPooled(src, dst, 64, kind, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(g.Dist(src, dst)), "healthy-hops")
	if faulty {
		st := nw.FaultStats()
		b.ReportMetric(float64(st.ReroutedHops)/float64(st.Rerouted), "rerouted-hops")
	}
}

func BenchmarkGraphRouteHealthy(b *testing.B)  { benchGraphRoute(b, false) }
func BenchmarkGraphRouteRerouted(b *testing.B) { benchGraphRoute(b, true) }

// --- Reactive transport ---

// benchReactiveTransport measures a ping-pong message cycle between two
// corner nodes of an 8x8 mesh with the reactive-mode reliable transport
// on: every message is sequenced, timer-armed at the sender, acknowledged
// at the receiver and timer-canceled on the ack — the standing per-message
// cost of timeout-based failure detection on a healthy network. ackUS is
// the initial retransmission timeout: comfortably above the round trip in
// the steady variant (acks always win; the timer is pure schedule/cancel
// overhead), below it in the storm variant, so every message is
// retransmitted and deduplicated — the false-timeout slow path.
func benchReactiveTransport(b *testing.B, ackUS float64) {
	k := sim.New()
	nw := mesh.NewNetwork(k, mesh.New(8, 8), mesh.GCelParams())
	p := mesh.ReactParams{AckTimeoutUS: ackUS, MaxRetries: 1 << 20, Backoff: 2}
	if err := nw.EnableReactive(p, 1999); err != nil {
		b.Fatal(err)
	}
	n := 0
	const kind = 7
	nw.Handle(kind, func(m *mesh.Msg) {
		n++
		if n < b.N {
			nw.SendPooled(m.Dst, m.Src, 64, kind, nil)
		}
	})
	nw.SendPooled(0, 63, 64, kind, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	st := nw.FaultStats()
	b.ReportMetric(float64(st.AckMsgs)/float64(b.N), "acks/msg")
	b.ReportMetric(float64(st.Retransmits)/float64(b.N), "retransmits/msg")
}

func BenchmarkReactiveTransportSteady(b *testing.B) { benchReactiveTransport(b, 5000) }
func BenchmarkReactiveTransportStorm(b *testing.B)  { benchReactiveTransport(b, 100) }

// --- Figure 11: Barnes-Hut scaling with N = 200·P ---

func BenchmarkFig11BarnesHutScale8x16AccessTree4K8(b *testing.B) {
	benchBarnesHut(b, 8, 16, 200*8*16/4, accesstree.Factory(), decomp.Ary4K8)
}

func BenchmarkFig11BarnesHutScale8x16FixedHome(b *testing.B) {
	benchBarnesHut(b, 8, 16, 200*8*16/4, fixedhome.Factory(), decomp.Ary4)
}

// --- Kernel-shard scaling (PR 6) ---

// benchShardScaling runs the stencil halo exchange — the canonical
// shard-scaling workload: nearest-neighbor traffic stays inside a shard's
// topology block except at block boundaries — split across `shards` kernel
// shards. Strong scaling holds the machine at the Fig-11 network size
// (8x16) while the shard count grows; weak scaling grows the machine with
// the shard count (32 processors per shard). The simulated trajectory is
// bit-identical at every shard count (pinned by TestShardAB*); only the
// wall clock may differ, and only when the host grants the runners real
// parallelism — see PERF.md for measured numbers and the single-CPU caveat.
func benchShardScaling(b *testing.B, rows, cols, shards int) {
	var lastTime float64
	for i := 0; i < b.N; i++ {
		m := core.MustNewMachine(core.Config{
			Rows: rows, Cols: cols, Seed: 1999, Tree: decomp.Ary2,
			Shards: shards, Concurrent: true,
		})
		res, err := stencil.Run(m, stencil.Config{
			Iters: 32, HaloInts: 256, WithCompute: true, OpUS: 0.5, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		lastTime = res.ElapsedUS
	}
	b.ReportMetric(lastTime/1000, "simulated-ms")
	b.ReportMetric(float64(shards), "shards")
}

func BenchmarkShardScalingStrong1(b *testing.B) { benchShardScaling(b, 8, 16, 1) }
func BenchmarkShardScalingStrong2(b *testing.B) { benchShardScaling(b, 8, 16, 2) }
func BenchmarkShardScalingStrong4(b *testing.B) { benchShardScaling(b, 8, 16, 4) }

func BenchmarkShardScalingWeak1(b *testing.B) { benchShardScaling(b, 4, 8, 1) }
func BenchmarkShardScalingWeak2(b *testing.B) { benchShardScaling(b, 8, 8, 2) }
func BenchmarkShardScalingWeak4(b *testing.B) { benchShardScaling(b, 8, 16, 4) }

// --- Ablations (DESIGN.md) ---

// D1: modular vs fully random access tree embedding.
func BenchmarkAblationEmbeddingModular(b *testing.B) {
	benchMatmul(b, 8, 256, accesstree.Factory(), decomp.Ary4)
}

func BenchmarkAblationEmbeddingRandom(b *testing.B) {
	benchMatmul(b, 8, 256,
		accesstree.FactoryOpts(accesstree.Options{RandomEmbedding: true}), decomp.Ary4)
}

// D2: tree arity sweep (2-ary vs 16-ary extremes; see ablation-arity in
// cmd/experiments for the full table).
func BenchmarkAblationArity2(b *testing.B) {
	benchMatmul(b, 8, 256, accesstree.Factory(), decomp.Ary2)
}

func BenchmarkAblationArity16(b *testing.B) {
	benchMatmul(b, 8, 256, accesstree.Factory(), decomp.Ary16)
}

// D7: wormhole backpressure on/off.
func benchBackpressure(b *testing.B, off bool) {
	params := mesh.GCelParams()
	params.NoBackpressure = off
	var lastTime float64
	for i := 0; i < b.N; i++ {
		m := core.MustNewMachine(core.Config{
			Rows: 8, Cols: 8, Seed: 5, Tree: decomp.Ary4,
			Net: params, Strategy: fixedhome.Factory(),
		})
		res, err := matmul.RunDSM(m, matmul.Config{BlockInts: 256, Seed: 5})
		if err != nil {
			b.Fatal(err)
		}
		lastTime = res.ElapsedUS
	}
	b.ReportMetric(lastTime/1000, "simulated-ms")
}

func BenchmarkAblationBackpressureOn(b *testing.B)  { benchBackpressure(b, false) }
func BenchmarkAblationBackpressureOff(b *testing.B) { benchBackpressure(b, true) }

// --- Simulator micro-benchmarks (the event hot path itself) ---

// BenchmarkKernelEventChurn measures raw event-queue throughput: one
// schedule + pop + dispatch per iteration through the 4-ary heap. The
// closure is long-lived, so the steady state allocates nothing.
func BenchmarkKernelEventChurn(b *testing.B) {
	k := sim.New()
	n := 0
	var fn func()
	fn = func() {
		n++
		if n < b.N {
			k.After(1, fn)
		}
	}
	k.At(0, fn)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// benchKernelQueue measures pure schedule/pop churn through the ladder
// event queue at a standing population of `size` events: the queue is
// pre-filled with uniformly spread timestamps and every executed event
// reschedules itself `size` microseconds ahead, so each iteration is one
// push + one pop at that depth. The heap oracle pays O(log n) sifts here;
// the ladder's amortized cost stays flat as size grows (compare the
// BenchmarkKernelQueue* ns/op against each other in BENCH_*.json).
func benchKernelQueue(b *testing.B, size int) {
	k := sim.New()
	n := 0
	var fn func(interface{})
	fn = func(x interface{}) {
		n++
		if n <= b.N {
			k.AtCall(k.Now()+float64(size), fn, nil)
		}
	}
	for i := 0; i < size; i++ {
		k.AtCall(sim.Time(i+1), fn, nil)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkKernelQueue256(b *testing.B)   { benchKernelQueue(b, 256) }
func BenchmarkKernelQueue4096(b *testing.B)  { benchKernelQueue(b, 4096) }
func BenchmarkKernelQueue65536(b *testing.B) { benchKernelQueue(b, 65536) }

// BenchmarkMessageHop measures ONE end-to-end message hop between two
// adjacent mesh nodes — send startup, routing, the fused arrive stage and
// the handler dispatch — the unit the fused delivery pipeline reduced to
// a single regular kernel event.
func BenchmarkMessageHop(b *testing.B) {
	k := sim.New()
	nw := mesh.NewNetwork(k, mesh.New(1, 2), mesh.GCelParams())
	n := 0
	const kind = 7
	nw.Handle(kind, func(m *mesh.Msg) {
		n++
		if n < b.N {
			nw.SendPooled(m.Dst, m.Src, 64, kind, nil)
		}
	})
	nw.SendPooled(0, 1, 64, kind, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkMessageDelivery measures a full pooled send-route-deliver cycle
// between two corner nodes of a 4x4 mesh: routing, both delivery stages
// and the handler dispatch, with the Msg recycled through the free list —
// zero allocations per message in steady state.
func BenchmarkMessageDelivery(b *testing.B) {
	k := sim.New()
	nw := mesh.NewNetwork(k, mesh.New(4, 4), mesh.GCelParams())
	n := 0
	const kind = 7
	nw.Handle(kind, func(m *mesh.Msg) {
		n++
		if n < b.N {
			nw.SendPooled(m.Dst, m.Src, 64, kind, nil)
		}
	})
	nw.SendPooled(0, 15, 64, kind, nil)
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// --- Protocol micro-benchmarks ---

// BenchmarkReadLocalHit measures the fast path: reading a variable whose
// copy is already local (the 99%-hit case of the Barnes-Hut force phase).
func BenchmarkReadLocalHit(b *testing.B) {
	m := machine(4, 4, accesstree.Factory(), decomp.Ary4)
	v := m.AllocAt(0, 64, 1)
	err := m.Run(func(p *core.Proc) {
		if p.ID != 0 {
			return
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_ = p.Read(v)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkRemoteReadAT measures full remote read transactions through the
// access tree (write-invalidate between reads so every read misses).
func BenchmarkRemoteReadAT(b *testing.B) {
	benchRemoteRead(b, accesstree.Factory(), decomp.Ary4)
}

// BenchmarkRemoteReadFH is the same through the fixed home strategy.
func BenchmarkRemoteReadFH(b *testing.B) {
	benchRemoteRead(b, fixedhome.Factory(), decomp.Ary4)
}

func benchRemoteRead(b *testing.B, f core.Factory, spec decomp.Spec) {
	m := machine(4, 4, f, spec)
	v := m.AllocAt(0, 1024, 1)
	err := m.Run(func(p *core.Proc) {
		if p.ID == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			if p.ID == 0 {
				p.Write(v, i) // invalidate the reader's copy
			}
			p.Barrier()
			if p.ID == 15 {
				_ = p.Read(v) // guaranteed remote miss
			}
			p.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier measures one full tree barrier on 64 processors.
func BenchmarkBarrier(b *testing.B) {
	m := machine(8, 8, accesstree.Factory(), decomp.Ary4)
	err := m.Run(func(p *core.Proc) {
		if p.ID == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			p.Barrier()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkLockHandoff measures the arrow-protocol lock fast path: each of
// two corner processors acquires in long local streaks with a token
// migration when the other corner takes over.
func BenchmarkLockHandoff(b *testing.B) {
	m := machine(4, 4, accesstree.Factory(), decomp.Ary4)
	v := m.AllocAt(0, 16, nil)
	err := m.Run(func(p *core.Proc) {
		if p.ID != 0 && p.ID != 15 {
			return
		}
		if p.ID == 0 {
			b.ResetTimer()
		}
		for i := 0; i < b.N; i++ {
			p.Lock(v)
			p.Unlock(v)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}
