// Package serve is the public façade over the simulation service: an HTTP
// server answering serialized run descriptions (diva/spec documents) with
// simulated results and event-order fingerprints. divasim's serve mode and
// embedders drive it identically:
//
//	srv, err := serve.New(serve.Options{Workers: 4, SnapshotDir: "snapshots"})
//	if err != nil {
//		log.Fatal(err)
//	}
//	log.Fatal(http.ListenAndServe(":8080", srv.Handler()))
//
// Endpoints: POST /v1/run (Spec in, result + fingerprint out; with
// ?snapshot=<handle>, forked from a stored snapshot), POST/GET
// /v1/snapshots (warm a machine once, persist it, answer its handle),
// GET /v1/registries (registered strategies, topologies, workloads,
// trees), GET /v1/healthz (liveness, admission and hardening counters).
//
// Every request runs on an independent fork of a cached, snapshotted base
// machine, so concurrent queries return bit-identical results to
// sequential ones; beyond the worker pool and wait queue the server sheds
// load with 429 and a queue-depth Retry-After.
//
// Operationally, every run is tied to its request: client disconnects and
// deadlines (the spec's timeout_ms, capped by Options.RunTimeout) cancel
// the simulation cooperatively at a kernel checkpoint — expired deadlines
// answer 504 with progress diagnostics. A panicking run answers 500 and
// leaves the worker pool healthy. Server.Drain stops admission (503 +
// Retry-After) and waits for in-flight runs, cancelling stragglers at the
// drain deadline. Snapshots persisted under Options.SnapshotDir are
// crash-consistent and survive restarts (see diva/snapstore).
package serve

import iserve "diva/internal/serve"

// Server handles the /v1 simulation API.
type Server = iserve.Server

// Options configures a Server; zero values select the defaults
// (4 workers, a wait queue of 2×workers, 8 cached machine snapshots, no
// snapshot directory, no server-side run timeout).
type Options = iserve.Options

// RunResponse is the /v1/run answer.
type RunResponse = iserve.RunResponse

// SnapshotResponse is the POST /v1/snapshots answer.
type SnapshotResponse = iserve.SnapshotResponse

// Cong is the congestion summary inside a RunResponse.
type Cong = iserve.Cong

// New returns a server with the given options. It fails only when
// Options.SnapshotDir is set but unusable.
func New(o Options) (*Server, error) { return iserve.New(o) }
