// Package serve is the public façade over the simulation service: an HTTP
// server answering serialized run descriptions (diva/spec documents) with
// simulated results and event-order fingerprints. divasim's serve mode and
// embedders drive it identically:
//
//	srv := serve.New(serve.Options{Workers: 4})
//	log.Fatal(http.ListenAndServe(":8080", srv.Handler()))
//
// Endpoints: POST /v1/run (Spec in, result + fingerprint out),
// GET /v1/registries (registered strategies, topologies, workloads,
// trees), GET /v1/healthz (liveness and admission counters).
//
// Every request runs on an independent fork of a cached, snapshotted base
// machine, so concurrent queries return bit-identical results to
// sequential ones; beyond the worker pool and wait queue the server sheds
// load with 429.
package serve

import iserve "diva/internal/serve"

// Server handles the /v1 simulation API.
type Server = iserve.Server

// Options configures a Server; zero values select the defaults
// (4 workers, a wait queue of 2×workers, 8 cached machine snapshots).
type Options = iserve.Options

// RunResponse is the /v1/run answer.
type RunResponse = iserve.RunResponse

// Cong is the congestion summary inside a RunResponse.
type Cong = iserve.Cong

// New returns a server with the given options.
func New(o Options) *Server { return iserve.New(o) }
