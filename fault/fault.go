// Package fault is the public façade over the simulator's fault-injection
// subsystem: deterministic schedules of link outages and node churn,
// applied lazily in the network's global routing order so faulty runs stay
// bit-reproducible, fingerprint-stable across kernel shard counts, and
// snapshot/fork-able like every other run.
//
// A schedule is either declared explicitly (a fault.Schedule of timed
// events, e.g. from a diva/spec document) or drawn at construction from a
// dedicated RNG derived from the machine seed via fault.Gen — the same
// seed always yields the same faults, and the draw leaves the machine's
// own random streams untouched, so a drawn schedule and the identical
// declared schedule build bit-identical machines. Install one with
// diva.WithFaults or diva.WithFaultGen; read the
// degradation counters back from metrics.Result.Faults (availability,
// re-route path stretch, recovery traffic).
//
// While faults are active, messages whose shortest path crosses a dead
// link are re-routed over a spanning tree of the live sub-network (rebuilt
// lazily per fault event, parents preferred by live degree); messages
// between disconnected or dead endpoints are held and retransmitted —
// with a fresh send startup — when the schedule reconnects them.
package fault

import "diva/internal/mesh"

// The fault types, re-exported by alias so embedders never import
// diva/internal/... directly.
type (
	// Kind classifies a schedule event: LinkDown, LinkUp, NodeDown, NodeUp.
	Kind = mesh.FaultKind
	// Event is one timed fault: at AtUS, the links named by (Kind, A, B)
	// change state (B is ignored for node events).
	Event = mesh.FaultEvent
	// Schedule is a deterministic sequence of events. Every down event
	// needs a matching up event; installation validates and sorts.
	Schedule = mesh.FaultSchedule
	// Gen describes a randomized schedule drawn at construction from a
	// seed-derived RNG: LinkFailures link outages and NodeChurn node
	// churns starting uniformly in [0, HorizonUS), lasting
	// MeanDownUS·[0.5, 1.5).
	Gen = mesh.FaultGen
	// Stats holds the degradation counters of a faulty run; see
	// Availability, Stretch and the Retry fields.
	Stats = mesh.FaultStats
)

// The event kinds.
const (
	// LinkDown takes down every link between nodes A and B (both
	// directions, all parallel links); LinkUp heals it.
	LinkDown = mesh.FaultLinkDown
	LinkUp   = mesh.FaultLinkUp
	// NodeDown takes down node A's network interface — every incident
	// link; the CPU keeps running (churn, not crash). NodeUp heals it.
	NodeDown = mesh.FaultNodeDown
	NodeUp   = mesh.FaultNodeUp
)
