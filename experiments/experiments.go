// Package experiments is the public façade over the figure harness that
// regenerates the paper's evaluation (§3): the matrix multiplication and
// bitonic sorting ratio studies, the Barnes-Hut curves and scaling study,
// the illustrative figures, the ablations of DESIGN.md, and the
// cross-topology strategy sweep. Embedders drive it exactly like
// cmd/experiments does:
//
//	r := experiments.New(os.Stdout, true /* quick */, 1999)
//	r.Workers = 4
//	err := r.RunAll()
package experiments

import (
	"io"

	iexp "diva/internal/experiments"
)

// Runner executes figures: Run one by name, RunFigures a subset, RunAll
// everything. Quick mode shrinks meshes and inputs so the full suite
// completes in seconds; Workers > 1 fans independent simulations across a
// worker pool with byte-identical output.
type Runner = iexp.Runner

// New returns a runner writing figures to w.
func New(w io.Writer, quick bool, seed uint64) *Runner { return iexp.New(w, quick, seed) }

// Figures returns the available figure names, in order.
func Figures() []string { return append([]string(nil), iexp.Figures...) }
