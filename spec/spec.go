// Package spec defines the serializable run description of the diva
// simulator: one JSON-friendly Spec names the machine (topology, strategy,
// decomposition tree, network timing, seed, shards, cache capacity) and
// the workload with its knobs. It is the single funnel every run
// description flows through — the divasim command line, embedding
// applications, and the HTTP service all build the same Spec and hand it
// to diva.FromSpec.
//
// The package is pure data plus validation: it imports only the public
// registries (diva/strategy, diva/topology), so it can be vendored into
// clients that never link the simulator itself.
package spec

import (
	"fmt"
	"strings"

	"diva/strategy"
	"diva/topology"
)

// Spec describes one simulation run: the machine and the workload. The
// zero value of every field selects the documented default, so a minimal
// JSON document like {"workload":{"name":"matmul"}} is a complete run
// description.
type Spec struct {
	// Topology is the interconnect's registry name (see diva/topology).
	// Empty means "mesh".
	Topology string `json:"topology,omitempty"`
	// Rows, Cols are the machine dimensions. Both zero means 8×8.
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Strategy is the data management strategy's registry name (see
	// diva/strategy). Empty or "handopt" builds a machine without shared
	// variables, for the hand-optimized message passing workloads.
	Strategy string `json:"strategy,omitempty"`
	// Tree overrides the decomposition-tree variant by the paper's name:
	// "2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary" or "4-16-ary".
	// Empty keeps the strategy's registered default ("2-ary" for
	// hand-optimized machines).
	Tree string `json:"tree,omitempty"`
	// Seed is the master random seed. Identical specs give bit-identical
	// runs.
	Seed uint64 `json:"seed,omitempty"`
	// Shards is the event-kernel shard count for conservative-parallel
	// execution; results are identical for every count. 0 means
	// sequential (unlike diva.WithShards, a Spec never reads the
	// environment: a serialized run description must not depend on it).
	Shards int `json:"shards,omitempty"`
	// CacheCapacity bounds the copy memory per node in bytes; 0 means
	// unbounded (the paper's default).
	CacheCapacity int `json:"cache_capacity,omitempty"`
	// Net overrides the network timing; nil means the GCel calibration.
	Net *Net `json:"net,omitempty"`
	// Fault injects link outages and node churn into the run; nil means a
	// fault-free machine (the exact pre-fault code path).
	Fault *Fault `json:"fault,omitempty"`
	// Recovery selects the fault-tolerance mode, one of RecoveryModes():
	// "oracle" (the default: the network holds in-flight messages across
	// outages and strategies re-route instantaneously) or "reactive"
	// (timeout-based failure detection over an ack/retransmit transport,
	// with strategy-level recovery). Empty means "oracle".
	Recovery string `json:"recovery,omitempty"`
	// AckTimeoutUS is the reactive transport's initial retransmission
	// timeout in simulated microseconds (default 2000). Setting it
	// requires recovery "reactive".
	AckTimeoutUS float64 `json:"ack_timeout_us,omitempty"`
	// MaxRetries is how many times the reactive transport retransmits an
	// unacknowledged message before giving up and handing it to the
	// strategy (default 5). Setting it requires recovery "reactive".
	MaxRetries int `json:"max_retries,omitempty"`
	// Backoff is the reactive transport's exponential backoff multiplier
	// between retransmission attempts, at least 1 (default 2). Setting it
	// requires recovery "reactive".
	Backoff float64 `json:"backoff,omitempty"`
	// TimeoutMS bounds the run's wall-clock time in milliseconds: when it
	// expires the simulation is canceled cooperatively at the kernel's
	// next checkpoint (diva.ErrCanceled; the service answers 504). 0 means
	// no per-run bound. The timeout is operational, not part of the
	// machine description — two specs differing only in timeout_ms
	// describe the same machine and the same simulated run.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Workload selects the application and its knobs.
	Workload Workload `json:"workload"`
}

// Net is the serializable form of diva.NetParams. A nil Net in a Spec
// means the GCel calibration; a non-nil Net is used verbatim (all fields,
// including zeros).
type Net struct {
	BytesPerUS      float64 `json:"bytes_per_us"`
	HopLatencyUS    float64 `json:"hop_latency_us"`
	StartupSendUS   float64 `json:"startup_send_us"`
	StartupRecvUS   float64 `json:"startup_recv_us"`
	LocalDeliveryUS float64 `json:"local_delivery_us"`
	NoBackpressure  bool    `json:"no_backpressure,omitempty"`
}

// Fault describes the fault injection of a run: an explicit event list,
// a seeded random draw, or both. Schedules are deterministic — the same
// spec always produces the same faults — and every down event must have a
// matching up event, so the run always heals.
type Fault struct {
	// Events are explicit timed faults, applied in at_us order (ties in
	// declaration order).
	Events []FaultEvent `json:"events,omitempty"`
	// LinkFailures and NodeChurn additionally draw that many randomized
	// link outages / node churns from the machine seed.
	LinkFailures int `json:"link_failures,omitempty"`
	NodeChurn    int `json:"node_churn,omitempty"`
	// MeanDownUS is the mean outage duration of drawn faults (actual
	// durations are uniform in [0.5, 1.5)×mean; default 20000).
	MeanDownUS float64 `json:"mean_down_us,omitempty"`
	// HorizonUS is the window drawn outages start in (default 100000).
	HorizonUS float64 `json:"horizon_us,omitempty"`
}

// FaultEvent is one explicit timed fault. Kind is one of FaultKinds():
// "link-down"/"link-up" affect every link between nodes A and B;
// "node-down"/"node-up" affect node A's whole network interface (B is
// ignored; the node's CPU keeps running — churn, not crash).
type FaultEvent struct {
	AtUS float64 `json:"at_us"`
	Kind string  `json:"kind"`
	A    int     `json:"a"`
	B    int     `json:"b,omitempty"`
}

// FaultKinds lists the event kind names a FaultEvent accepts.
func FaultKinds() []string {
	return []string{"link-down", "link-up", "node-down", "node-up"}
}

// FaultFields documents the fault-schedule spec fields for listings
// (-list, the service's /v1/registries).
func FaultFields() []Registered {
	return []Registered{
		{Name: "fault.events", Summary: "explicit timed faults: {at_us, kind: " + strings.Join(FaultKinds(), "|") + ", a, b}"},
		{Name: "fault.link_failures", Summary: "randomized link outages drawn from the machine seed"},
		{Name: "fault.node_churn", Summary: "randomized node churns drawn from the machine seed"},
		{Name: "fault.mean_down_us", Summary: "mean outage duration of drawn faults (default 20000)"},
		{Name: "fault.horizon_us", Summary: "start window of drawn faults (default 100000)"},
	}
}

// The fault-tolerance mode names Spec.Recovery accepts.
const (
	RecoveryOracle   = "oracle"
	RecoveryReactive = "reactive"
)

// RecoveryModes lists the fault-tolerance modes Spec.Recovery accepts.
func RecoveryModes() []string {
	return []string{RecoveryOracle, RecoveryReactive}
}

// RecoveryFields documents the recovery spec fields for listings
// (-list, the service's /v1/registries).
func RecoveryFields() []Registered {
	return []Registered{
		{Name: "recovery", Summary: "fault-tolerance mode: " + strings.Join(RecoveryModes(), "|") + " (default oracle)"},
		{Name: "ack_timeout_us", Summary: "reactive transport's initial retransmission timeout (default 2000)"},
		{Name: "max_retries", Summary: "reactive transport's retransmissions before giving up (default 5)"},
		{Name: "backoff", Summary: "reactive transport's exponential backoff multiplier (default 2)"},
	}
}

// Workload selects the application by name plus its knobs. Knobs that do
// not apply to the named workload are ignored; zero values select the
// documented defaults.
type Workload struct {
	// Name is one of WorkloadNames(): "matmul", "bitonic", "barneshut",
	// "matmul-handopt", "bitonic-handopt" or "stencil".
	Name string `json:"name"`
	// Block is matmul's block size in integers (perfect square;
	// default 1024).
	Block int `json:"block,omitempty"`
	// Keys is bitonic's keys per processor (default 4096).
	Keys int `json:"keys,omitempty"`
	// Bodies is barneshut's body count (default 4000).
	Bodies int `json:"bodies,omitempty"`
	// Steps is barneshut's time steps (default 7).
	Steps int `json:"steps,omitempty"`
	// MeasureFrom is barneshut's first measured step (default 2).
	MeasureFrom int `json:"measure_from,omitempty"`
	// Iters is stencil's iteration count (default 4).
	Iters int `json:"iters,omitempty"`
	// Halo is stencil's halo size in integers (default 64).
	Halo int `json:"halo,omitempty"`
	// Compute charges local computation costs (matmul, bitonic, stencil;
	// barneshut always computes).
	Compute bool `json:"compute,omitempty"`
	// Check verifies the workload's output against a sequential reference
	// (matmul, bitonic, stencil); the Result reports Verified.
	Check bool `json:"check,omitempty"`
	// Seed is the workload's own random seed; 0 inherits the Spec seed.
	Seed uint64 `json:"seed,omitempty"`
}

// Registered describes one registered name for listings (-list, the
// service's /v1/registries).
type Registered struct {
	Name    string `json:"name"`
	Summary string `json:"summary"`
}

// workloads is the workload registry: every diva workload builder, with
// the hand-optimized variants marked — they need a strategy-free machine.
var workloads = []Registered{
	{Name: "matmul", Summary: "blocked matrix square through the data management strategy (§3.1)"},
	{Name: "matmul-handopt", Summary: "matrix square, hand-optimized message passing (needs strategy \"handopt\" and a 2D mesh)"},
	{Name: "bitonic", Summary: "bitonic sorting through the data management strategy (§3.2)"},
	{Name: "bitonic-handopt", Summary: "bitonic sorting, hand-optimized message passing (needs strategy \"handopt\")"},
	{Name: "barneshut", Summary: "SPLASH-2 derived N-body simulation with per-phase metrics (§3.3)"},
	{Name: "stencil", Summary: "iterative halo exchange, hand-optimized message passing (needs strategy \"handopt\")"},
}

// handopt marks the workloads that run without a data management strategy.
var handopt = map[string]bool{"matmul-handopt": true, "bitonic-handopt": true, "stencil": true}

// Workloads lists the registered workloads for help texts and the service
// registry endpoint.
func Workloads() []Registered {
	return append([]Registered(nil), workloads...)
}

// WorkloadNames lists the registered workload names in registration order.
func WorkloadNames() []string {
	names := make([]string, len(workloads))
	for i, w := range workloads {
		names[i] = w.Name
	}
	return names
}

// TreeNames lists the decomposition-tree variant names Spec.Tree accepts,
// in the paper's order.
func TreeNames() []string {
	return []string{"2-ary", "4-ary", "16-ary", "2-4-ary", "4-8-ary", "4-16-ary"}
}

// HandOptimized reports whether the named workload runs without a data
// management strategy (Spec.Strategy must be empty or "handopt").
func HandOptimized(name string) bool { return handopt[name] }

// FieldError is one invalid Spec field. Field is the JSON path of the
// offending field ("workload.name", "topology", ...).
type FieldError struct {
	Field string `json:"field"`
	Msg   string `json:"msg"`
}

func (e FieldError) Error() string { return e.Field + ": " + e.Msg }

// ValidationError aggregates every invalid field of a Spec, so a caller
// (the service's 400 response, the CLI) can report them all at once.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	msgs := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		msgs[i] = f.Error()
	}
	return "invalid spec: " + strings.Join(msgs, "; ")
}

// Normalized returns a copy with every defaultable zero field filled in:
// the canonical form of the run description. Validate, the CLI, the
// service and diva.FromSpec all operate on the normalized form, so two
// specs that normalize equally describe the same run.
func (s Spec) Normalized() Spec {
	n := s
	if n.Topology == "" {
		n.Topology = "mesh"
	}
	if n.Rows == 0 && n.Cols == 0 {
		n.Rows, n.Cols = 8, 8
	}
	if n.Strategy == "handopt" {
		n.Strategy = ""
	}
	if n.Recovery == "oracle" {
		n.Recovery = "" // the default mode, like strategy "handopt"
	}
	if n.Recovery == "reactive" {
		if n.AckTimeoutUS == 0 {
			n.AckTimeoutUS = 2000
		}
		if n.MaxRetries == 0 {
			n.MaxRetries = 5
		}
		if n.Backoff == 0 {
			n.Backoff = 2
		}
	}
	w := &n.Workload
	if w.Seed == 0 {
		w.Seed = n.Seed
	}
	if w.Block == 0 {
		w.Block = 1024
	}
	if w.Keys == 0 {
		w.Keys = 4096
	}
	if w.Bodies == 0 {
		w.Bodies = 4000
	}
	if w.Steps == 0 {
		w.Steps = 7
	}
	if w.MeasureFrom == 0 {
		w.MeasureFrom = 2
	}
	if w.Iters == 0 {
		w.Iters = 4
	}
	if w.Halo == 0 {
		w.Halo = 64
	}
	if s.Fault != nil {
		f := *s.Fault
		f.Events = append([]FaultEvent(nil), f.Events...)
		if f.LinkFailures > 0 || f.NodeChurn > 0 {
			if f.MeanDownUS == 0 {
				f.MeanDownUS = 20000
			}
			if f.HorizonUS == 0 {
				f.HorizonUS = 100000
			}
		}
		n.Fault = &f
	}
	return n
}

// Validate checks the spec and returns nil or a *ValidationError listing
// every offending field. It validates the normalized form, so zero values
// that have defaults never fail.
func (s Spec) Validate() error {
	n := s.Normalized()
	var errs []FieldError
	errs = append(errs, n.machineErrors()...)
	errs = append(errs, n.workloadErrors()...)
	if len(errs) > 0 {
		return &ValidationError{Fields: errs}
	}
	return nil
}

// ValidateMachine checks only the machine-describing fields, ignoring the
// workload — for embedders that build the machine from a Spec but drive
// their own programs.
func (s Spec) ValidateMachine() error {
	if errs := s.Normalized().machineErrors(); len(errs) > 0 {
		return &ValidationError{Fields: errs}
	}
	return nil
}

// machineErrors validates the machine fields of a normalized spec.
func (s Spec) machineErrors() []FieldError {
	var errs []FieldError
	if !knownName(topology.Names(), s.Topology) {
		errs = append(errs, FieldError{"topology",
			fmt.Sprintf("unknown topology %q (have %s)", s.Topology, strings.Join(topology.Names(), ", "))})
	}
	if s.Rows <= 0 {
		errs = append(errs, FieldError{"rows", fmt.Sprintf("must be positive, got %d", s.Rows)})
	}
	if s.Cols <= 0 {
		errs = append(errs, FieldError{"cols", fmt.Sprintf("must be positive, got %d", s.Cols)})
	}
	if s.Strategy != "" && !knownName(strategy.Names(), s.Strategy) {
		errs = append(errs, FieldError{"strategy",
			fmt.Sprintf("unknown strategy %q (have %s, or \"handopt\")", s.Strategy, strings.Join(strategy.Names(), ", "))})
	}
	if s.Tree != "" && !knownName(TreeNames(), s.Tree) {
		errs = append(errs, FieldError{"tree",
			fmt.Sprintf("unknown tree %q (have %s)", s.Tree, strings.Join(TreeNames(), ", "))})
	}
	if s.Shards < 0 {
		errs = append(errs, FieldError{"shards", fmt.Sprintf("must be non-negative, got %d", s.Shards)})
	}
	if s.CacheCapacity < 0 {
		errs = append(errs, FieldError{"cache_capacity", fmt.Sprintf("must be non-negative, got %d", s.CacheCapacity)})
	}
	if s.TimeoutMS < 0 {
		errs = append(errs, FieldError{"timeout_ms", fmt.Sprintf("must be non-negative, got %d", s.TimeoutMS)})
	}
	switch s.Recovery {
	case "", "oracle", "reactive":
	default:
		errs = append(errs, FieldError{"recovery",
			fmt.Sprintf("unknown mode %q (have %s)", s.Recovery, strings.Join(RecoveryModes(), ", "))})
	}
	if s.Recovery == "reactive" {
		if s.AckTimeoutUS <= 0 {
			errs = append(errs, FieldError{"ack_timeout_us", "must be positive"})
		}
		if s.MaxRetries <= 0 {
			errs = append(errs, FieldError{"max_retries", fmt.Sprintf("must be positive, got %d", s.MaxRetries)})
		}
		if s.Backoff < 1 {
			errs = append(errs, FieldError{"backoff", fmt.Sprintf("must be at least 1, got %g", s.Backoff)})
		}
	} else {
		for _, f := range []struct {
			name string
			set  bool
		}{
			{"ack_timeout_us", s.AckTimeoutUS != 0},
			{"max_retries", s.MaxRetries != 0},
			{"backoff", s.Backoff != 0},
		} {
			if f.set {
				errs = append(errs, FieldError{f.name, `requires recovery "reactive"`})
			}
		}
	}
	if f := s.Fault; f != nil {
		if len(f.Events) == 0 && f.LinkFailures == 0 && f.NodeChurn == 0 {
			errs = append(errs, FieldError{"fault", "set but empty: declare events or a link_failures/node_churn draw (or omit the section)"})
		}
		if f.LinkFailures < 0 {
			errs = append(errs, FieldError{"fault.link_failures", fmt.Sprintf("must be non-negative, got %d", f.LinkFailures)})
		}
		if f.NodeChurn < 0 {
			errs = append(errs, FieldError{"fault.node_churn", fmt.Sprintf("must be non-negative, got %d", f.NodeChurn)})
		}
		if f.LinkFailures > 0 || f.NodeChurn > 0 {
			if f.MeanDownUS <= 0 {
				errs = append(errs, FieldError{"fault.mean_down_us", "must be positive"})
			}
			if f.HorizonUS <= 0 {
				errs = append(errs, FieldError{"fault.horizon_us", "must be positive"})
			}
		}
		for i, ev := range f.Events {
			if !knownName(FaultKinds(), ev.Kind) {
				errs = append(errs, FieldError{fmt.Sprintf("fault.events[%d].kind", i),
					fmt.Sprintf("unknown kind %q (have %s)", ev.Kind, strings.Join(FaultKinds(), ", "))})
			}
			if ev.AtUS < 0 {
				errs = append(errs, FieldError{fmt.Sprintf("fault.events[%d].at_us", i), "must be non-negative"})
			}
			if ev.A < 0 || ev.B < 0 {
				errs = append(errs, FieldError{fmt.Sprintf("fault.events[%d]", i), "node ids must be non-negative"})
			}
		}
	}
	if p := s.Net; p != nil {
		if p.BytesPerUS <= 0 {
			errs = append(errs, FieldError{"net.bytes_per_us", "must be positive"})
		}
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"net.hop_latency_us", p.HopLatencyUS},
			{"net.startup_send_us", p.StartupSendUS},
			{"net.startup_recv_us", p.StartupRecvUS},
			{"net.local_delivery_us", p.LocalDeliveryUS},
		} {
			if f.v < 0 {
				errs = append(errs, FieldError{f.name, "must be non-negative"})
			}
		}
	}
	return errs
}

// workloadErrors validates the workload fields of a normalized spec,
// including the cross rules tying workloads to strategies.
func (s Spec) workloadErrors() []FieldError {
	var errs []FieldError
	w := s.Workload
	if w.Name == "" {
		return append(errs, FieldError{"workload.name", "required (have " + strings.Join(WorkloadNames(), ", ") + ")"})
	}
	if !knownName(WorkloadNames(), w.Name) {
		return append(errs, FieldError{"workload.name",
			fmt.Sprintf("unknown workload %q (have %s)", w.Name, strings.Join(WorkloadNames(), ", "))})
	}
	if HandOptimized(w.Name) {
		if s.Strategy != "" {
			errs = append(errs, FieldError{"strategy",
				fmt.Sprintf("workload %q is hand-optimized message passing; strategy must be empty or \"handopt\", got %q", w.Name, s.Strategy)})
		}
	} else if s.Strategy == "" {
		errs = append(errs, FieldError{"strategy",
			fmt.Sprintf("workload %q needs a data management strategy (have %s)", w.Name, strings.Join(strategy.Names(), ", "))})
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"workload.block", w.Block},
		{"workload.keys", w.Keys},
		{"workload.bodies", w.Bodies},
		{"workload.steps", w.Steps},
		{"workload.iters", w.Iters},
		{"workload.halo", w.Halo},
	} {
		if f.v <= 0 {
			errs = append(errs, FieldError{f.name, fmt.Sprintf("must be positive, got %d", f.v)})
		}
	}
	if w.MeasureFrom < 0 || w.MeasureFrom >= w.Steps {
		errs = append(errs, FieldError{"workload.measure_from",
			fmt.Sprintf("must be in [0, steps), got %d with %d steps", w.MeasureFrom, w.Steps)})
	}
	return errs
}

func knownName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
