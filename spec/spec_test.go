package spec

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestMinimalSpecValid pins that the documented minimal documents are
// complete run descriptions.
func TestMinimalSpecValid(t *testing.T) {
	for _, doc := range []string{
		`{"workload":{"name":"matmul"},"strategy":"at4"}`,
		`{"workload":{"name":"stencil"}}`,
		`{"workload":{"name":"barneshut"},"strategy":"fixedhome","topology":"torus"}`,
	} {
		var s Spec
		if err := json.Unmarshal([]byte(doc), &s); err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", doc, err)
		}
	}
}

// TestNormalizedDefaults pins the canonical defaults.
func TestNormalizedDefaults(t *testing.T) {
	n := Spec{Workload: Workload{Name: "matmul"}, Strategy: "at4", Seed: 7}.Normalized()
	if n.Topology != "mesh" || n.Rows != 8 || n.Cols != 8 {
		t.Errorf("machine defaults: %q %dx%d", n.Topology, n.Rows, n.Cols)
	}
	w := n.Workload
	if w.Block != 1024 || w.Keys != 4096 || w.Bodies != 4000 || w.Steps != 7 ||
		w.MeasureFrom != 2 || w.Iters != 4 || w.Halo != 64 {
		t.Errorf("workload defaults: %+v", w)
	}
	if w.Seed != 7 {
		t.Errorf("workload seed must inherit the spec seed, got %d", w.Seed)
	}
	if h := (Spec{Strategy: "handopt"}).Normalized(); h.Strategy != "" {
		t.Errorf("handopt must normalize to the empty strategy, got %q", h.Strategy)
	}
}

// TestValidateFieldErrors pins that every offending field is reported,
// under its JSON path, in one pass.
func TestValidateFieldErrors(t *testing.T) {
	s := Spec{
		Topology:      "ring",
		Rows:          -1,
		Cols:          8,
		Strategy:      "nope",
		Tree:          "3-ary",
		Shards:        -2,
		CacheCapacity: -3,
		Net:           &Net{BytesPerUS: 0},
		Workload:      Workload{Name: "matmul", Block: -5},
	}
	err := s.Validate()
	if err == nil {
		t.Fatal("want validation errors")
	}
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("want *ValidationError, got %T", err)
	}
	got := map[string]bool{}
	for _, f := range ve.Fields {
		got[f.Field] = true
	}
	for _, want := range []string{
		"topology", "rows", "strategy", "tree", "shards",
		"cache_capacity", "net.bytes_per_us", "workload.block",
	} {
		if !got[want] {
			t.Errorf("missing field error %q in %v", want, ve.Fields)
		}
	}
	if got["cols"] {
		t.Error("cols is valid, must not be reported")
	}
}

// TestStrategyWorkloadCrossRules pins the handopt/DSM pairing rules.
func TestStrategyWorkloadCrossRules(t *testing.T) {
	cases := []struct {
		strat, work string
		ok          bool
	}{
		{"at4", "matmul", true},
		{"", "matmul", false},         // DSM workload needs a strategy
		{"at4", "stencil", false},     // hand-optimized workload refuses one
		{"handopt", "stencil", true},  // explicit handopt
		{"", "bitonic-handopt", true}, // empty means handopt
		{"fixedhome", "barneshut", true},
	}
	for _, c := range cases {
		s := Spec{Strategy: c.strat, Workload: Workload{Name: c.work}}
		err := s.Validate()
		if (err == nil) != c.ok {
			t.Errorf("strategy=%q workload=%q: err=%v, want ok=%v", c.strat, c.work, err, c.ok)
		}
	}
}

// TestValidateMachineIgnoresWorkload pins the machine-only entry point.
func TestValidateMachineIgnoresWorkload(t *testing.T) {
	s := Spec{Workload: Workload{Name: "no-such-workload"}}
	if err := s.ValidateMachine(); err != nil {
		t.Errorf("ValidateMachine must ignore the workload: %v", err)
	}
	if err := s.Validate(); err == nil {
		t.Error("Validate must reject the unknown workload")
	}
}

// TestJSONRoundTrip pins that a normalized spec survives JSON intact, and
// that the wire names stay snake_case.
func TestJSONRoundTrip(t *testing.T) {
	s := Spec{
		Topology: "hypercube", Rows: 4, Cols: 8, Strategy: "at2k4",
		Tree: "2-4-ary", Seed: 42, Shards: 4, CacheCapacity: 1 << 20,
		Net:      &Net{BytesPerUS: 1, HopLatencyUS: 2, StartupSendUS: 3, StartupRecvUS: 4, LocalDeliveryUS: 5, NoBackpressure: true},
		Workload: Workload{Name: "bitonic", Keys: 128, Compute: true, Check: true, Seed: 9},
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cache_capacity"`, `"bytes_per_us"`, `"measure_from"`} {
		if key == `"measure_from"` {
			continue // omitted: zero value
		}
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form missing %s: %s", key, b)
		}
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Net == nil || *back.Net != *s.Net {
		t.Errorf("net did not round-trip: %+v", back.Net)
	}
	back.Net, s.Net = nil, nil
	if back != s {
		t.Errorf("spec did not round-trip:\n got %+v\nwant %+v", back, s)
	}
}

// TestRegistryListings pins the listing helpers.
func TestRegistryListings(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 6 {
		t.Fatalf("want 6 workloads, got %v", names)
	}
	ho := 0
	for _, w := range Workloads() {
		if w.Summary == "" {
			t.Errorf("workload %q has no summary", w.Name)
		}
		if HandOptimized(w.Name) {
			ho++
		}
	}
	if ho != 3 {
		t.Errorf("want 3 hand-optimized workloads, got %d", ho)
	}
	if len(TreeNames()) != 6 {
		t.Errorf("want 6 tree variants, got %v", TreeNames())
	}
}
