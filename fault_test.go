// A/B tests for the fault-injection subsystem: faulty runs must stay
// bit-reproducible — the same executed-event-order fingerprint at every
// kernel shard count, for a schedule drawn from the machine seed vs. the
// same schedule declared explicitly in the spec, and for a mid-schedule
// fork vs. running straight through.
package diva_test

import (
	"fmt"
	"testing"

	"diva"
	"diva/fault"
	"diva/spec"
)

// faultGen is the randomized schedule used by the degradation matrices:
// outages land inside the stencil warm phase (which ends around 20–27 ms
// of simulated time on the 8x8 machines).
var faultGen = fault.Gen{LinkFailures: 6, NodeChurn: 2, MeanDownUS: 3000, HorizonUS: 15000}

// TestFaultShardInvariance: a faulty stencil run fingerprints identically
// across kernel shards 1, 2 and 4, on the grid and on an irregular graph
// topology. The schedule is drawn from the machine seed, so every machine
// of a cell sees the identical fault sequence.
func TestFaultShardInvariance(t *testing.T) {
	for _, topo := range []string{"mesh", "torus", "graph:degraded", "graph:regular"} {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			w := diva.Stencil(diva.StencilConfig{Iters: 4, HaloInts: 64, WithCompute: true, OpUS: 0.5, Check: true, Seed: 7})
			opts := []diva.Option{
				diva.WithTopologyName(topo, 8, 8), diva.WithSeed(1999),
				diva.WithTree(diva.Ary2), diva.WithFaultGen(faultGen),
			}
			checkShardAB(t, w, []int{2, 4}, func(req int) int { return req }, opts...)

			// The cell must actually degrade, or the matrix is vacuous.
			m := diva.MustNew(opts...)
			if _, err := w.Run(m, nil); err != nil {
				t.Fatal(err)
			}
			st := m.Net.FaultStats()
			if st.Routed == 0 || st.Rerouted+st.Held == 0 {
				t.Fatalf("faults never engaged: %+v", st)
			}
		})
	}
}

// TestFaultSpecVsSeedFingerprint is the serialization fuzz: for several
// seeds, a run whose schedule is drawn from the machine RNG must
// fingerprint-match the same run with that schedule declared event-by-event
// in the spec — FaultSchedule() is a complete description of the faulty run.
func TestFaultSpecVsSeedFingerprint(t *testing.T) {
	seeds := []uint64{1999, 7, 424242}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			gen := diva.Spec{
				Topology: "mesh", Rows: 8, Cols: 8, Seed: seed,
				Workload: diva.WorkloadSpec{Name: "stencil", Iters: 3, Halo: 32, Compute: true, Check: true, Seed: 7},
				Fault:    &spec.Fault{LinkFailures: 3, NodeChurn: 1, MeanDownUS: 3000, HorizonUS: 12000},
			}
			mg, wg, err := diva.FromSpec(gen)
			if err != nil {
				t.Fatal(err)
			}
			sched := mg.Net.FaultSchedule()
			if len(sched) != 2*(3+1) {
				t.Fatalf("drawn schedule has %d events, want 8", len(sched))
			}
			if _, err := wg.Run(mg, nil); err != nil {
				t.Fatal(err)
			}

			decl := gen
			decl.Fault = &spec.Fault{Events: make([]spec.FaultEvent, len(sched))}
			for i, ev := range sched {
				decl.Fault.Events[i] = spec.FaultEvent{AtUS: ev.AtUS, Kind: ev.Kind.String(), A: ev.A, B: ev.B}
			}
			md, wd, err := diva.FromSpec(decl)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := wd.Run(md, nil); err != nil {
				t.Fatal(err)
			}
			if gf, df := mg.K.Fingerprint(), md.K.Fingerprint(); gf != df {
				t.Errorf("declared-schedule fingerprint %#x != drawn-schedule %#x", df, gf)
			}
			if gs, ds := mg.Net.FaultStats(), md.Net.FaultStats(); gs != ds {
				t.Errorf("fault stats diverged: drawn %+v, declared %+v", gs, ds)
			}
		})
	}
}

// TestFaultForkAB pins the mid-schedule fork contract: with a schedule
// spanning both the warm and the query phase, forking at quiescence
// between fault events and running the query must match running straight
// through — trajectory and fault counters both.
func TestFaultForkAB(t *testing.T) {
	// Warm stencil ends near 20 ms, the bitonic query near 30 ms: the link
	// outage lands in the warm phase, the churn in the query phase, so the
	// snapshot is taken with the schedule cursor strictly mid-way.
	sched := fault.Schedule{
		{AtUS: 2000, Kind: fault.LinkDown, A: 0, B: 1},
		{AtUS: 9000, Kind: fault.LinkUp, A: 0, B: 1},
		{AtUS: 21000, Kind: fault.NodeDown, A: 5},
		{AtUS: 25000, Kind: fault.NodeUp, A: 5},
	}
	warm := diva.Stencil(diva.StencilConfig{Iters: 4, HaloInts: 64, WithCompute: true, OpUS: 0.5, Check: true, Seed: 7})
	query := diva.BitonicHandOpt(diva.BitonicConfig{KeysPerProc: 32, Check: true, Seed: 9})
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			opts := []diva.Option{
				diva.WithMesh(8, 8), diva.WithSeed(1999),
				diva.WithTree(diva.Ary2), diva.WithShards(shards),
				diva.WithFaults(sched), diva.WithConcurrent(true),
			}

			// Baseline: straight through.
			a := diva.MustNew(opts...)
			mustRun(t, a, warm)
			warmStats := a.Net.FaultStats()
			if warmStats.Routed == 0 || warmStats.Rerouted+warmStats.Held == 0 {
				t.Fatalf("warm phase never degraded: %+v", warmStats)
			}
			base := capture(t, a, mustRun(t, a, query))
			baseStats := a.Net.FaultStats()
			if baseStats == warmStats {
				t.Fatal("query phase saw no fault activity; schedule does not span the fork point")
			}

			// Fork at quiescence between the schedule's halves.
			b := diva.MustNew(opts...)
			mustRun(t, b, warm)
			snap, err := b.Snapshot()
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			f, err := diva.Fork(snap, diva.ForkConcurrent(true))
			if err != nil {
				t.Fatalf("Fork: %v", err)
			}
			if got := f.Net.FaultStats(); got != warmStats {
				t.Errorf("fork did not restore warm-phase fault stats: %+v vs %+v", got, warmStats)
			}
			traj := capture(t, f, mustRun(t, f, query))
			if traj != base {
				t.Errorf("fork trajectory diverged:\n fork: %+v\n base: %+v", traj, base)
			}
			if got := f.Net.FaultStats(); got != baseStats {
				t.Errorf("fork fault stats diverged: %+v vs %+v", got, baseStats)
			}

			// The snapshot must not have disturbed the source machine.
			cont := capture(t, b, mustRun(t, b, query))
			if cont != base || b.Net.FaultStats() != baseStats {
				t.Errorf("source machine diverged after snapshot: %+v vs %+v", cont, base)
			}
		})
	}
}

// TestFaultKindNamesLockstep: every kind name the spec layer admits builds
// a machine whose installed schedule round-trips to the same name — the
// spec name table and the library's kind constants stay in lockstep.
func TestFaultKindNamesLockstep(t *testing.T) {
	kinds := spec.FaultKinds()
	if len(kinds) != 4 {
		t.Fatalf("spec.FaultKinds() = %v, want 4 kinds", kinds)
	}
	for _, down := range []string{"link-down", "node-down"} {
		up := map[string]string{"link-down": "link-up", "node-down": "node-up"}[down]
		s := diva.Spec{
			Rows: 2, Cols: 2, Seed: 1,
			Workload: diva.WorkloadSpec{Name: "bitonic", Keys: 4},
			Fault: &spec.Fault{Events: []spec.FaultEvent{
				{AtUS: 1, Kind: down, A: 0, B: 1},
				{AtUS: 2, Kind: up, A: 0, B: 1},
			}},
		}
		m, err := diva.MachineFromSpec(s)
		if err != nil {
			t.Fatalf("kind %q: %v", down, err)
		}
		sched := m.Net.FaultSchedule()
		if len(sched) != 2 || sched[0].Kind.String() != down || sched[1].Kind.String() != up {
			t.Errorf("kind %q: schedule round-trips as %v", down, sched)
		}
	}
	// Unknown kinds must be rejected by validation, not silently mapped.
	bad := diva.Spec{
		Rows: 2, Cols: 2,
		Workload: diva.WorkloadSpec{Name: "bitonic", Keys: 4},
		Fault: &spec.Fault{Events: []spec.FaultEvent{
			{AtUS: 1, Kind: "link-flaky", A: 0, B: 1},
		}},
	}
	if _, err := diva.MachineFromSpec(bad); err == nil {
		t.Error("unknown fault kind accepted")
	}
}
