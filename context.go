package diva

import (
	"context"

	"diva/internal/sim"
)

// ErrCanceled is the sentinel a canceled run unwraps to: a run stopped by
// a context — RunContext, WorkloadContext, or a serve deadline — returns
// an error for which errors.Is(err, ErrCanceled) holds. The concrete
// *CanceledError carries the progress diagnostics.
//
// Cancellation is cooperative and quiescence-safe: the kernel polls a flag
// at a fixed executed-event period (zero cost when no context is armed),
// kills every live process when it fires, and leaves the machine
// permanently stopped — it can never be snapshotted, so no partial state
// is observable, and any snapshot taken before the run replays
// identically.
var ErrCanceled = sim.ErrCanceled

// CanceledError reports a canceled run: the simulated time it reached and
// the number of events it executed before the checkpoint fired.
type CanceledError = sim.CanceledError

// WorkloadContext binds w to ctx: the returned workload arms the machine's
// cancellation checkpoint (Machine.ArmCancel) for the duration of the run,
// so canceling ctx — or its deadline passing — stops the simulation at the
// next checkpoint with an error unwrapping to ErrCanceled. The wrapped
// workload is otherwise identical, including its Name.
func WorkloadContext(ctx context.Context, w Workload) Workload {
	return workload{name: w.Name(), run: func(m *Machine, col *Collector) (Result, error) {
		defer m.ArmCancel(ctx)()
		return w.Run(m, col)
	}}
}
