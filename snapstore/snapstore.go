// Package snapstore persists machine snapshots to disk, crash-consistently.
//
// A stored snapshot is one file: the machine's normalized spec document
// (the serializable run description of diva/spec) followed by the
// gob-encoded wire form of the simulated state, under a versioned magic
// header and over an FNV-1a checksum. Writes are atomic — temp file,
// fsync, rename, directory fsync — so a crash mid-save leaves either the
// previous version or nothing, never a torn file; a torn or tampered file
// fails the checksum at load time instead of resurrecting corrupt state.
//
// Load rebuilds a machine from the stored spec and grafts the wire state
// onto its configuration, returning a Snapshot that forks bit-identically
// to one captured live — across process restarts, which is the point: a
// service can warm a machine once, persist the handle, and keep serving
// forks from it after a crash or deploy.
//
// The store holds the machine's simulated state only. Variable payloads
// and strategy state cross the gob boundary through concrete types
// registered by their defining packages; a workload that allocates an
// unregistered payload type surfaces as a descriptive Save error, not a
// torn file.
package snapstore

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"diva"
	"diva/internal/core"
	"diva/spec"
)

// magic is the file format version header. Bump the trailing digit on any
// incompatible layout change; old files then fail with a clear error
// instead of a gob decode panic.
const magic = "DIVASNP1"

const fileExt = ".snap"

// Store is a directory of snapshot files, keyed by handle. A Store is
// cheap — it holds only the path — and safe for concurrent use: Save is
// atomic per file and Load reads an immutable file.
type Store struct {
	dir string
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Handle derives the canonical handle for a run description: an FNV-64a
// hash of the normalized spec JSON with the operational timeout field
// zeroed, so the same machine + warm-up workload always maps to the same
// handle regardless of request deadlines. Sixteen lowercase hex digits,
// safe in filenames and URLs.
func Handle(sp spec.Spec) string {
	n := sp.Normalized()
	n.TimeoutMS = 0
	b, err := json.Marshal(n)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic("snapstore: marshal spec: " + err.Error())
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func checkHandle(handle string) error {
	if len(handle) != 16 {
		return fmt.Errorf("snapstore: invalid handle %q", handle)
	}
	for _, c := range handle {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("snapstore: invalid handle %q", handle)
		}
	}
	return nil
}

func (s *Store) path(handle string) string {
	return filepath.Join(s.dir, handle+fileExt)
}

// Save persists snap under handle, atomically: the file appears complete
// or not at all, and an existing file under the same handle is replaced
// atomically. sp must be the run description the snapshot was captured
// under; its shard count is pinned to the snapshot's actual shape so a
// later Load — possibly in a different environment — rebuilds the same
// machine.
func (s *Store) Save(handle string, sp spec.Spec, snap *diva.Snapshot) error {
	if err := checkHandle(handle); err != nil {
		return err
	}
	w, err := snap.Wire()
	if err != nil {
		return err
	}
	sp = sp.Normalized()
	if w.Cluster != nil {
		sp.Shards = len(w.Cluster.Kernels)
	} else {
		sp.Shards = 1
	}
	specJSON, err := json.Marshal(sp)
	if err != nil {
		return fmt.Errorf("snapstore: marshal spec: %w", err)
	}
	var blob bytes.Buffer
	if err := gob.NewEncoder(&blob).Encode(w); err != nil {
		return fmt.Errorf("snapstore: encode snapshot: %w", err)
	}

	var buf bytes.Buffer
	buf.WriteString(magic)
	var uv [binary.MaxVarintLen64]byte
	buf.Write(uv[:binary.PutUvarint(uv[:], uint64(len(specJSON)))])
	buf.Write(specJSON)
	buf.Write(uv[:binary.PutUvarint(uv[:], uint64(blob.Len()))])
	buf.Write(blob.Bytes())
	h := fnv.New64a()
	h.Write(buf.Bytes())
	var sum [8]byte
	binary.BigEndian.PutUint64(sum[:], h.Sum64())
	buf.Write(sum[:])

	return s.writeAtomic(handle, buf.Bytes())
}

func (s *Store) writeAtomic(handle string, data []byte) error {
	f, err := os.CreateTemp(s.dir, "."+handle+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	tmp := f.Name()
	cleanup := func() { f.Close(); os.Remove(tmp) }
	if _, err := f.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := os.Rename(tmp, s.path(handle)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("snapstore: %w", err)
	}
	// fsync the directory so the rename itself survives a crash.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// Has reports whether a snapshot file exists under handle.
func (s *Store) Has(handle string) bool {
	if checkHandle(handle) != nil {
		return false
	}
	_, err := os.Stat(s.path(handle))
	return err == nil
}

// Load reads the snapshot stored under handle, verifying the checksum,
// rebuilding the machine from the stored spec, and grafting the persisted
// state onto it. The returned snapshot forks bit-identically to the live
// snapshot Save was given, and the returned spec is the stored run
// description (shard count pinned). extra machine options are applied
// after the spec-derived ones; servers pass diva.WithConcurrent(true).
func (s *Store) Load(handle string, extra ...diva.Option) (spec.Spec, *diva.Snapshot, error) {
	var sp spec.Spec
	if err := checkHandle(handle); err != nil {
		return sp, nil, err
	}
	data, err := os.ReadFile(s.path(handle))
	if err != nil {
		return sp, nil, fmt.Errorf("snapstore: %w", err)
	}
	specJSON, blob, err := parseFile(data)
	if err != nil {
		return sp, nil, fmt.Errorf("snapstore: %s%s: %w", handle, fileExt, err)
	}
	if err := json.Unmarshal(specJSON, &sp); err != nil {
		return sp, nil, fmt.Errorf("snapstore: %s%s: spec: %w", handle, fileExt, err)
	}
	var w core.SnapshotWire
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&w); err != nil {
		return sp, nil, fmt.Errorf("snapstore: %s%s: decode snapshot: %w", handle, fileExt, err)
	}
	m, err := diva.MachineFromSpec(sp, extra...)
	if err != nil {
		return sp, nil, fmt.Errorf("snapstore: %s%s: rebuild machine: %w", handle, fileExt, err)
	}
	snap, err := core.SnapshotFromWire(m, &w)
	if err != nil {
		return sp, nil, fmt.Errorf("snapstore: %s%s: %w", handle, fileExt, err)
	}
	return sp, snap, nil
}

func parseFile(data []byte) (specJSON, blob []byte, err error) {
	if len(data) < len(magic)+8 {
		return nil, nil, fmt.Errorf("truncated file (%d bytes)", len(data))
	}
	if got := string(data[:len(magic)]); got != magic {
		return nil, nil, fmt.Errorf("bad magic %q, want %q", got, magic)
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	if got := binary.BigEndian.Uint64(sum); got != h.Sum64() {
		return nil, nil, fmt.Errorf("checksum mismatch: file %016x, computed %016x", got, h.Sum64())
	}
	rest := body[len(magic):]
	specJSON, rest, err = lengthPrefixed(rest, "spec")
	if err != nil {
		return nil, nil, err
	}
	blob, rest, err = lengthPrefixed(rest, "snapshot")
	if err != nil {
		return nil, nil, err
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%d trailing bytes", len(rest))
	}
	return specJSON, blob, nil
}

func lengthPrefixed(data []byte, what string) (field, rest []byte, err error) {
	n, k := binary.Uvarint(data)
	if k <= 0 || n > uint64(len(data)-k) {
		return nil, nil, fmt.Errorf("truncated %s section", what)
	}
	return data[k : k+int(n)], data[k+int(n):], nil
}

// Entry describes one stored snapshot.
type Entry struct {
	Handle string    `json:"handle"`
	Spec   spec.Spec `json:"spec"`
}

// List returns every readable snapshot in the store, sorted by handle.
// Files that fail the checksum or format checks are skipped, not fatal:
// after a crash the directory may hold stray temp files.
func (s *Store) List() ([]Entry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	var out []Entry
	for _, de := range des {
		name := de.Name()
		if !strings.HasSuffix(name, fileExt) {
			continue
		}
		handle := strings.TrimSuffix(name, fileExt)
		if checkHandle(handle) != nil {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			continue
		}
		specJSON, _, err := parseFile(data)
		if err != nil {
			continue
		}
		var sp spec.Spec
		if err := json.Unmarshal(specJSON, &sp); err != nil {
			continue
		}
		out = append(out, Entry{Handle: handle, Spec: sp})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out, nil
}
