// Disk A/B tests for the snapshot store: a snapshot saved to disk, loaded
// back — through a fresh Store, as after a process restart — and forked
// must replay the query workload bit-identically to a fork of the live
// snapshot, across the topology × strategy matrix, under kernel sharding,
// with bounded caches, and with pointer-heavy variable payloads
// (Barnes-Hut). Plus the crash-consistency format checks: checksum,
// truncation, stray temp files.
package snapstore_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"diva"
	"diva/snapstore"
	"diva/spec"
)

// traj is one run's observable trajectory after the query workload.
type traj struct {
	fingerprint uint64
	events      uint64
	elapsedUS   float64
	congMax     uint64
	congTotal   uint64
	sendMsgs    uint64
	sendBytes   uint64
	evictions   uint64
	verified    bool
}

func capture(t *testing.T, m *diva.Machine, res diva.Result) traj {
	t.Helper()
	c := m.Net.Congestion(nil)
	msgs, bytes := m.Net.SendStats()
	var sm, sb uint64
	for k := range msgs {
		sm += msgs[k]
		sb += bytes[k]
	}
	return traj{
		fingerprint: m.K.Fingerprint(),
		events:      m.K.Stat.Events,
		elapsedUS:   res.ElapsedUS,
		congMax:     c.MaxMsgs,
		congTotal:   c.TotalMsgs,
		sendMsgs:    sm,
		sendBytes:   sb,
		evictions:   diva.TotalEvictions(m),
		verified:    res.Verified,
	}
}

func mustRun(t *testing.T, m *diva.Machine, w diva.Workload) diva.Result {
	t.Helper()
	res, err := w.Run(m, nil)
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return res
}

func forkQuery(t *testing.T, snap *diva.Snapshot, query diva.Workload) traj {
	t.Helper()
	f, err := diva.Fork(snap, diva.ForkConcurrent(true))
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	return capture(t, f, mustRun(t, f, query))
}

// checkDiskAB pins the store contract for one cell: warm a machine from
// sp, snapshot it, and compare a fork of the live snapshot against a fork
// of the snapshot after a save/load round trip through a fresh Store
// instance (a process restart in miniature).
func checkDiskAB(t *testing.T, sp spec.Spec, query diva.Workload) {
	t.Helper()
	m, warm, err := diva.FromSpec(sp, diva.WithConcurrent(true))
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	mustRun(t, m, warm)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	base := forkQuery(t, snap, query)
	if base.fingerprint == 0 {
		t.Fatal("no fingerprint collected")
	}

	dir := t.TempDir()
	st, err := snapstore.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	handle := snapstore.Handle(sp)
	if err := st.Save(handle, sp, snap); err != nil {
		t.Fatalf("Save: %v", err)
	}

	// A fresh Store on the same directory stands in for a restarted
	// process: nothing survives but the file.
	st2, err := snapstore.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	spLoaded, snap2, err := st2.Load(handle, diva.WithConcurrent(true))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got := forkQuery(t, snap2, query); got != base {
		t.Errorf("fork from disk diverged from fork from live snapshot:\n disk: %+v\n live: %+v", got, base)
	}

	// The stored spec pins the resolved shard count, so a reload in any
	// environment rebuilds the same machine shape.
	wantShards := sp.Normalized().Shards
	if wantShards == 0 {
		wantShards = 1
	}
	if spLoaded.Shards != wantShards {
		t.Errorf("stored spec has shards=%d, want %d", spLoaded.Shards, wantShards)
	}

	// Saving the same snapshot again replaces the file atomically and
	// loads identically.
	if err := st2.Save(handle, sp, snap); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if _, snap3, err := st2.Load(handle, diva.WithConcurrent(true)); err != nil {
		t.Fatalf("re-Load: %v", err)
	} else if got := forkQuery(t, snap3, query); got != base {
		t.Errorf("fork after re-save diverged:\n disk: %+v\n live: %+v", got, base)
	}
}

func machineSpec(topo, strat string, rows, cols int) spec.Spec {
	return spec.Spec{Topology: topo, Rows: rows, Cols: cols, Strategy: strat, Seed: 1999}
}

// TestDiskABDSM is the disk round-trip matrix over topology × strategy
// cells, mirroring the live fork A/B matrix.
func TestDiskABDSM(t *testing.T) {
	cells := []struct{ topo, strat string }{
		{"mesh", "at4"},
		{"torus", "fixedhome"},
		{"hypercube", "at2"},
		{"fattree", "at4k8"},
	}
	query := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2})
	for _, cell := range cells {
		cell := cell
		t.Run(cell.topo+"/"+cell.strat, func(t *testing.T) {
			sp := machineSpec(cell.topo, cell.strat, 8, 8)
			sp.Workload = spec.Workload{Name: "matmul", Block: 64, Seed: 1}
			checkDiskAB(t, sp, query)
		})
	}
}

// TestDiskABHandOpt pins the disk round trip on strategy-free machines
// under kernel sharding: the wire form carries the full cluster state.
func TestDiskABHandOpt(t *testing.T) {
	query := diva.BitonicHandOpt(diva.BitonicConfig{KeysPerProc: 32, Check: true, Seed: 9})
	for _, shards := range []int{1, 4} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sp := spec.Spec{Topology: "mesh", Rows: 8, Cols: 8, Tree: "2-ary", Seed: 1999, Shards: shards}
			sp.Workload = spec.Workload{Name: "stencil", Iters: 3, Halo: 32, Compute: true, Check: true, Seed: 7}
			checkDiskAB(t, sp, query)
		})
	}
}

// TestDiskABBoundedCache pins the disk round trip with a bounded cache:
// the entry set and eviction counters survive serialization.
func TestDiskABBoundedCache(t *testing.T) {
	sp := machineSpec("mesh", "at4", 4, 4)
	sp.CacheCapacity = 2048
	sp.Workload = spec.Workload{Name: "matmul", Block: 64, Seed: 1}
	checkDiskAB(t, sp, diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2}))
}

// TestDiskABBarnesHut exercises pointer-heavy variable payloads (bodies,
// tree cells, the root record) through the gob boundary.
func TestDiskABBarnesHut(t *testing.T) {
	sp := machineSpec("mesh", "at4", 4, 4)
	sp.Workload = spec.Workload{Name: "barneshut", Bodies: 32, Steps: 2, MeasureFrom: 1}
	checkDiskAB(t, sp, diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2}))
}

// TestDiskABReactive pins the disk round trip for reactive-mode machines:
// the transport's wire capture (per-node RNG positions, channel sequence
// counters, receiver dedup floors, suspect sets) must survive the
// save/load boundary so forks from disk replay the query — including its
// retransmissions and give-ups — bit-identically. The warm workload runs
// across a node outage, so the captured state is genuinely mid-recovery
// shaped, not pristine.
func TestDiskABReactive(t *testing.T) {
	outage := &spec.Fault{Events: []spec.FaultEvent{
		{AtUS: 200, Kind: "node-down", A: 5},
		{AtUS: 30000, Kind: "node-up", A: 5},
	}}
	t.Run("dsm", func(t *testing.T) {
		sp := machineSpec("mesh", "at4", 4, 4)
		sp.Fault = outage
		sp.Recovery = spec.RecoveryReactive
		sp.AckTimeoutUS, sp.MaxRetries, sp.Backoff = 500, 3, 2
		sp.Workload = spec.Workload{Name: "matmul", Block: 64, Seed: 1}
		checkDiskAB(t, sp, diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2}))
	})
	t.Run("handopt-sharded", func(t *testing.T) {
		sp := spec.Spec{Topology: "mesh", Rows: 4, Cols: 4, Tree: "2-ary", Seed: 1999, Shards: 2}
		sp.Fault = outage
		sp.Recovery = spec.RecoveryReactive
		sp.Workload = spec.Workload{Name: "stencil", Iters: 3, Halo: 32, Compute: true, Check: true, Seed: 7}
		checkDiskAB(t, sp, diva.BitonicHandOpt(diva.BitonicConfig{KeysPerProc: 32, Check: true, Seed: 9}))
	})
}

// TestHandleStability pins the handle derivation: operational fields
// (timeout) do not change identity, machine fields do.
func TestHandleStability(t *testing.T) {
	sp := machineSpec("mesh", "at4", 8, 8)
	sp.Workload = spec.Workload{Name: "matmul", Block: 64, Seed: 1}
	h := snapstore.Handle(sp)
	if len(h) != 16 {
		t.Fatalf("Handle = %q, want 16 hex digits", h)
	}
	withTimeout := sp
	withTimeout.TimeoutMS = 5000
	if got := snapstore.Handle(withTimeout); got != h {
		t.Errorf("timeout changed the handle: %q vs %q", got, h)
	}
	otherSeed := sp
	otherSeed.Seed = 2000
	if got := snapstore.Handle(otherSeed); got == h {
		t.Errorf("seed change did not change the handle: both %q", h)
	}
}

// TestLoadRejectsCorruption pins the crash-consistency checks: a flipped
// byte, a truncated file and a bad handle all fail loudly; stray temp
// files are invisible to List.
func TestLoadRejectsCorruption(t *testing.T) {
	sp := machineSpec("mesh", "at4", 4, 4)
	sp.Workload = spec.Workload{Name: "matmul", Block: 64, Seed: 1}
	m, warm, err := diva.FromSpec(sp, diva.WithConcurrent(true))
	if err != nil {
		t.Fatalf("FromSpec: %v", err)
	}
	mustRun(t, m, warm)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	dir := t.TempDir()
	st, err := snapstore.Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	handle := snapstore.Handle(sp)
	if err := st.Save(handle, sp, snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	path := filepath.Join(dir, handle+".snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one byte mid-file: checksum mismatch.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x40
	if err := os.WriteFile(path, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(handle); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupted file loaded: err = %v, want checksum mismatch", err)
	}

	// Truncate: a torn write must not decode.
	if err := os.WriteFile(path, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(handle); err == nil {
		t.Error("truncated file loaded")
	}

	// Restore and confirm the original still loads.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Load(handle, diva.WithConcurrent(true)); err != nil {
		t.Errorf("pristine file failed to load: %v", err)
	}

	// Handles are validated before touching the filesystem.
	if _, _, err := st.Load("../escape"); err == nil {
		t.Error("path-traversal handle accepted")
	}
	if _, _, err := st.Load("0123456789abcdeF"); err == nil {
		t.Error("non-canonical handle accepted")
	}

	// A stray temp file (crash mid-save) is skipped by List.
	if err := os.WriteFile(filepath.Join(dir, "."+handle+".tmp-123"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(entries) != 1 || entries[0].Handle != handle {
		t.Errorf("List = %+v, want exactly [%s]", entries, handle)
	}
	if entries[0].Spec.Workload.Name != "matmul" {
		t.Errorf("List entry spec lost the workload: %+v", entries[0].Spec)
	}
}
