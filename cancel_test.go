// Cancellation contract at the public surface: a canceled run returns the
// typed ErrCanceled and leaves no partial observable state — the canceled
// machine can never be snapshotted, while the snapshot it was forked from
// (and its source machine) replay bit-identically afterwards.
package diva_test

import (
	"context"
	"errors"
	"testing"

	"diva"
)

func TestCancelNoPartialState(t *testing.T) {
	warm := diva.Matmul(diva.MatmulConfig{BlockInts: 64, Seed: 1})
	query := diva.Bitonic(diva.BitonicConfig{KeysPerProc: 16, Check: true, Seed: 2})
	m := diva.MustNew(diva.WithMesh(8, 8), diva.WithStrategyName("at4"),
		diva.WithSeed(1999), diva.WithConcurrent(true))
	mustRun(t, m, warm)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	fbase, err := diva.Fork(snap, diva.ForkConcurrent(true))
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	base := capture(t, fbase, mustRun(t, fbase, query))

	// A fork canceled before its first event: typed error, no snapshot.
	fc, err := diva.Fork(snap, diva.ForkConcurrent(true))
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = diva.WorkloadContext(ctx, query).Run(fc, nil)
	if !errors.Is(err, diva.ErrCanceled) {
		t.Fatalf("canceled run returned %v, want ErrCanceled", err)
	}
	var ce *diva.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("canceled run returned %T, want *CanceledError", err)
	}
	if _, err := fc.Snapshot(); err == nil {
		t.Fatal("a canceled machine must not be snapshottable")
	}

	// The cancellation is invisible to every sibling of the snapshot: a
	// fresh fork and the continued source both replay the baseline exactly.
	f2, err := diva.Fork(snap, diva.ForkConcurrent(true))
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if traj := capture(t, f2, mustRun(t, f2, query)); traj != base {
		t.Errorf("fork after cancellation diverged:\n got: %+v\nwant: %+v", traj, base)
	}
	if cont := capture(t, m, mustRun(t, m, query)); cont != base {
		t.Errorf("source machine diverged after cancellation:\n got: %+v\nwant: %+v", cont, base)
	}
}

// TestRunContextMidRunCancel cancels the context from inside the simulated
// program, long before the run could finish: RunContext must stop at a
// checkpoint with the typed error and progress diagnostics.
func TestRunContextMidRunCancel(t *testing.T) {
	m := diva.MustNew(diva.WithMesh(8, 8), diva.WithSeed(7), diva.WithConcurrent(true))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := m.RunContext(ctx, func(p *diva.Proc) {
		for i := 0; i < 5000; i++ {
			if p.ID == 0 && i == 10 {
				cancel()
			}
			p.Wait(1)
		}
	})
	if !errors.Is(err, diva.ErrCanceled) {
		t.Fatalf("RunContext returned %v, want ErrCanceled", err)
	}
	var ce *diva.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("RunContext returned %T, want *CanceledError", err)
	}
	if ce.Events == 0 {
		t.Error("CanceledError.Events = 0, want mid-run progress")
	}
}
