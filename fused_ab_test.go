// A/B tests for the PR 5 kernel frontier: the ladder event queue vs the
// retained 4-ary heap oracle, and the fused single-event delivery vs the
// classic two-stage pipeline — on full DSM workloads. All four
// combinations must produce bit-identical simulated results AND the
// bit-identical executed event order (kernel fingerprint): the ladder pops
// in the heap's exact (t, seq) order, and the fused arrive stage runs at
// the exact queue position of the arrive event it replaces.
package diva_test

import (
	"testing"

	"diva/internal/apps/barneshut"
	"diva/internal/apps/matmul"
	"diva/internal/core"
	"diva/internal/core/accesstree"
	"diva/internal/core/fixedhome"
	"diva/internal/decomp"
	"diva/internal/metrics"
	"diva/internal/sim"
)

// abRun is one (queue, delivery pipeline) combination's trajectory.
type abRun struct {
	fingerprint uint64
	elapsedUS   float64
	congMax     uint64
	congTotal   uint64
	sendMsgs    uint64
	stat        sim.Stats
}

func runMatmulAB(t *testing.T, f core.Factory, useHeap, twoStage bool) abRun {
	t.Helper()
	m := core.MustNewMachine(core.Config{
		Rows: 8, Cols: 8, Seed: 1999, Tree: decomp.Ary4, Strategy: f,
	})
	m.K.SetHeapQueue(useHeap)
	m.Net.SetTwoStageDelivery(twoStage)
	res, err := matmul.RunDSM(m, matmul.Config{BlockInts: 256, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := m.Net.Congestion(nil)
	msgs, _ := m.Net.SendStats()
	var sm uint64
	for _, n := range msgs {
		sm += n
	}
	return abRun{
		fingerprint: m.K.Fingerprint(),
		elapsedUS:   res.ElapsedUS,
		congMax:     c.MaxMsgs,
		congTotal:   c.TotalMsgs,
		sendMsgs:    sm,
		stat:        m.K.Stat,
	}
}

func runBarnesHutAB(t *testing.T, useHeap, twoStage bool) abRun {
	t.Helper()
	m := core.MustNewMachine(core.Config{
		Rows: 4, Cols: 4, Seed: 1999, Tree: decomp.Ary4,
		Strategy: accesstree.Factory(),
	})
	m.K.SetHeapQueue(useHeap)
	m.Net.SetTwoStageDelivery(twoStage)
	col := metrics.New(m.Net)
	_, err := barneshut.Run(m, barneshut.Config{
		N: 200, Steps: 2, MeasureFrom: 1, Seed: 3, WithCompute: true,
	}, col)
	if err != nil {
		t.Fatal(err)
	}
	tot := col.Total()
	return abRun{
		fingerprint: m.K.Fingerprint(),
		elapsedUS:   tot.TimeUS,
		congMax:     tot.Cong.MaxMsgs,
		congTotal:   tot.Cong.TotalMsgs,
		stat:        m.K.Stat,
	}
}

// checkAB runs all four (queue, pipeline) combinations and demands full
// equality — including the executed-event-order fingerprint.
func checkAB(t *testing.T, run func(t *testing.T, useHeap, twoStage bool) abRun) {
	t.Helper()
	base := run(t, false, false) // ladder + fused: the default build
	if base.fingerprint == 0 {
		t.Fatal("no fingerprint collected")
	}
	if base.stat.FusedDeliveries == 0 || base.stat.TwoStageDeliveries != 0 {
		t.Errorf("default build delivery stats %+v: want every hop fused", base.stat)
	}
	for _, tc := range []struct {
		name              string
		useHeap, twoStage bool
	}{
		{"heap+fused", true, false},
		{"ladder+two-stage", false, true},
		{"heap+two-stage", true, true},
	} {
		got := run(t, tc.useHeap, tc.twoStage)
		if got.fingerprint != base.fingerprint {
			t.Errorf("%s: event-order fingerprint %#x != default %#x", tc.name, got.fingerprint, base.fingerprint)
		}
		if got.elapsedUS != base.elapsedUS || got.congMax != base.congMax ||
			got.congTotal != base.congTotal || got.sendMsgs != base.sendMsgs {
			t.Errorf("%s: observables diverged: %+v vs %+v", tc.name, got, base)
		}
		if tc.twoStage && got.stat.FusedDeliveries != 0 {
			t.Errorf("%s: fused hops counted in two-stage mode: %+v", tc.name, got.stat)
		}
		if got.stat.FusedDeliveries+got.stat.TwoStageDeliveries !=
			base.stat.FusedDeliveries+base.stat.TwoStageDeliveries {
			t.Errorf("%s: total hop count differs: %+v vs %+v", tc.name, got.stat, base.stat)
		}
	}
}

func TestQueueAndDeliveryABMatmulAT(t *testing.T) {
	checkAB(t, func(t *testing.T, useHeap, twoStage bool) abRun {
		return runMatmulAB(t, accesstree.Factory(), useHeap, twoStage)
	})
}

func TestQueueAndDeliveryABMatmulFH(t *testing.T) {
	checkAB(t, func(t *testing.T, useHeap, twoStage bool) abRun {
		return runMatmulAB(t, fixedhome.Factory(), useHeap, twoStage)
	})
}

func TestQueueAndDeliveryABBarnesHut(t *testing.T) {
	checkAB(t, runBarnesHutAB)
}
