package diva

import (
	"diva/internal/apps/barneshut"
	"diva/internal/apps/bitonic"
	"diva/internal/apps/matmul"
	"diva/internal/apps/stencil"
)

// Workload is an application that runs on a simulated machine. The three
// applications of the paper's evaluation — matrix multiplication, bitonic
// sorting, Barnes-Hut — implement it, so any of them runs on any
// (topology × strategy) machine through one driver:
//
//	m, err := diva.New(diva.WithTopologyName("torus", 8, 8),
//		diva.WithStrategyName("at4"))
//	...
//	res, err := diva.BarnesHut(diva.BarnesHutConfig{N: 4000}).Run(m, nil)
type Workload interface {
	// Name identifies the workload in reports ("matmul", ...).
	Name() string
	// Run executes the workload to completion on m and reports the
	// simulated outcome. col may be nil; when non-nil, workloads with
	// phases record per-phase metrics into it.
	Run(m *Machine, col *Collector) (Result, error)
}

// Result is the part of a run's outcome every workload reports.
type Result struct {
	// ElapsedUS is the simulated execution time in microseconds.
	ElapsedUS float64
	// Verified is set when the workload's Check knob was on and the
	// output matched the sequential reference. Workloads without a check
	// (Barnes-Hut) leave it false.
	Verified bool
	// Detail holds the workload-specific result: a MatmulResult,
	// BitonicResult or BarnesHutResult.
	Detail interface{}
}

// The workload configuration and result types, re-exported by alias.
type (
	// MatmulConfig parameterizes the matrix square (§3.1 of the paper).
	MatmulConfig = matmul.Config
	// MatmulResult is the matrix square's detailed result.
	MatmulResult = matmul.Result
	// BitonicConfig parameterizes bitonic sorting (§3.2).
	BitonicConfig = bitonic.Config
	// BitonicResult is the sorting run's detailed result.
	BitonicResult = bitonic.Result
	// Comparator is one compare-exchange of the bitonic circuit.
	Comparator = bitonic.Comparator
	// BarnesHutConfig parameterizes the N-body simulation (§3.3).
	BarnesHutConfig = barneshut.Config
	// BarnesHutResult is the N-body run's detailed result (octree depth,
	// interactions, costzones balance, final body variables).
	BarnesHutResult = barneshut.Result
	// Body is one N-body particle (position, velocity, mass).
	Body = barneshut.Body
	// Vec3 is the 3-vector of the N-body model.
	Vec3 = barneshut.Vec3
	// StencilConfig parameterizes the iterative halo exchange.
	StencilConfig = stencil.Config
	// StencilResult is the halo exchange's detailed result.
	StencilResult = stencil.Result
)

// workload implements Workload from a name and a run closure.
type workload struct {
	name string
	run  func(m *Machine, col *Collector) (Result, error)
}

func (w workload) Name() string { return w.name }

func (w workload) Run(m *Machine, col *Collector) (Result, error) {
	return w.run(m, col)
}

// Matmul returns the paper's first application: the blocked matrix square,
// communicating through the machine's data management strategy.
func Matmul(cfg MatmulConfig) Workload {
	return workload{name: "matmul", run: func(m *Machine, _ *Collector) (Result, error) {
		res, err := matmul.RunDSM(m, cfg)
		if err != nil {
			return Result{}, err
		}
		return Result{ElapsedUS: res.ElapsedUS, Verified: res.Verified, Detail: res}, nil
	}}
}

// MatmulHandOpt is Matmul with the hand-optimized message passing program
// of the paper's comparison (full knowledge of the access pattern, no
// shared variables; the machine needs no strategy, but a 2D mesh).
func MatmulHandOpt(cfg MatmulConfig) Workload {
	return workload{name: "matmul-handopt", run: func(m *Machine, _ *Collector) (Result, error) {
		res, err := matmul.RunHandOpt(m, cfg)
		if err != nil {
			return Result{}, err
		}
		return Result{ElapsedUS: res.ElapsedUS, Verified: res.Verified, Detail: res}, nil
	}}
}

// Bitonic returns the paper's second application: bitonic sorting, one
// circuit wire per processor, keys in global variables.
func Bitonic(cfg BitonicConfig) Workload {
	return workload{name: "bitonic", run: func(m *Machine, _ *Collector) (Result, error) {
		res, err := bitonic.RunDSM(m, cfg)
		if err != nil {
			return Result{}, err
		}
		return Result{ElapsedUS: res.ElapsedUS, Verified: res.Verified, Detail: res}, nil
	}}
}

// BitonicHandOpt is Bitonic with the hand-optimized message passing
// program (direct partner exchanges, no shared variables).
func BitonicHandOpt(cfg BitonicConfig) Workload {
	return workload{name: "bitonic-handopt", run: func(m *Machine, _ *Collector) (Result, error) {
		res, err := bitonic.RunHandOpt(m, cfg)
		if err != nil {
			return Result{}, err
		}
		return Result{ElapsedUS: res.ElapsedUS, Verified: res.Verified, Detail: res}, nil
	}}
}

// BarnesHut returns the paper's third application: the SPLASH-2 derived
// N-body simulation (octree under per-cell locks, costzones partitioning).
// It records per-phase metrics into col when one is passed.
func BarnesHut(cfg BarnesHutConfig) Workload {
	return workload{name: "barneshut", run: func(m *Machine, col *Collector) (Result, error) {
		if col == nil {
			col = NewCollector(m)
		}
		res, err := barneshut.Run(m, cfg, col)
		if err != nil {
			return Result{}, err
		}
		return Result{ElapsedUS: res.ElapsedUS, Detail: res}, nil
	}}
}

// Stencil returns the iterative halo-exchange kernel: nearest-neighbor
// messages plus a global barrier per iteration, hand-optimized message
// passing only (the machine needs no strategy). It is the canonical
// workload of the kernel-shard scaling benchmarks.
func Stencil(cfg StencilConfig) Workload {
	return workload{name: "stencil", run: func(m *Machine, _ *Collector) (Result, error) {
		res, err := stencil.Run(m, cfg)
		if err != nil {
			return Result{}, err
		}
		return Result{ElapsedUS: res.ElapsedUS, Verified: res.Verified, Detail: res}, nil
	}}
}

// BitonicCircuit returns Batcher's bitonic sorting circuit for p wires
// (p a power of two) as steps of parallel comparators.
func BitonicCircuit(p int) [][]Comparator { return bitonic.Circuit(p) }

// Plummer samples n bodies from the Plummer model (the paper's initial
// condition), deterministically from seed.
func Plummer(n int, seed uint64) []Body { return barneshut.Plummer(n, seed) }

// UniformSphere samples n bodies uniformly from a ball, deterministically
// from seed.
func UniformSphere(n int, seed uint64) []Body { return barneshut.UniformSphere(n, seed) }

// Energy returns the total energy (kinetic + softened potential) of a
// body snapshot; approximately conserved by the integrator for small Dt.
func Energy(bodies []Body, eps float64) float64 { return barneshut.Energy(bodies, eps) }

// FinalBodies extracts the body state after a Barnes-Hut run, in initial
// order.
func FinalBodies(m *Machine, res BarnesHutResult) []Body { return barneshut.FinalBodies(m, res) }
