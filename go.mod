module diva

go 1.24
