module diva

go 1.23
